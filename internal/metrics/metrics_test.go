package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleBasics(t *testing.T) {
	s := NewSample()
	if s.Mean() != 0 || s.Median() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Fatal("empty sample must report zeros")
	}
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("Mean = %v", got)
	}
	if got := s.Median(); got != 50*time.Millisecond {
		t.Fatalf("Median = %v", got)
	}
	if got := s.P99(); got != 99*time.Millisecond {
		t.Fatalf("P99 = %v", got)
	}
	if s.Min() != time.Millisecond || s.Max() != 100*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestPercentileEdges(t *testing.T) {
	s := NewSample()
	s.Add(5 * time.Millisecond)
	if s.Percentile(0) != 5*time.Millisecond || s.Percentile(100) != 5*time.Millisecond {
		t.Fatal("single-element percentiles broken")
	}
	s.AddAll([]time.Duration{time.Millisecond, 9 * time.Millisecond})
	if got := s.Percentile(50); got != 5*time.Millisecond {
		t.Fatalf("P50 of {1,5,9} = %v", got)
	}
}

func TestTailRatio(t *testing.T) {
	s := NewSample()
	for i := 0; i < 97; i++ {
		s.Add(10 * time.Millisecond)
	}
	for i := 0; i < 3; i++ {
		s.Add(100 * time.Millisecond)
	}
	r := s.TailRatio()
	if r < 5 || r > 12 {
		t.Fatalf("TailRatio = %.2f", r)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		s := NewSample()
		for _, v := range vals {
			s.Add(time.Duration(v) * time.Microsecond)
		}
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev || v < s.Min() || v > s.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10 * time.Millisecond)
	h.Add(5 * time.Millisecond)
	h.Add(15 * time.Millisecond)
	h.Add(15 * time.Millisecond)
	h.Add(-time.Millisecond) // clamps to bin 0
	bins := h.Bins()
	if len(bins) != 2 {
		t.Fatalf("bins = %+v", bins)
	}
	if bins[0].Count != 2 || bins[1].Count != 2 {
		t.Fatalf("counts = %+v", bins)
	}
	if bins[0].Freq != 0.5 {
		t.Fatalf("freq = %v", bins[0].Freq)
	}
	if h.Total() != 4 {
		t.Fatalf("Total = %d", h.Total())
	}
	if bins[1].Start != 10*time.Millisecond {
		t.Fatalf("bin start = %v", bins[1].Start)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 42)
	tb.Row("beta", 3.14159)
	tb.Row("gamma", 1500*time.Microsecond)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "42") {
		t.Fatalf("table missing cells:\n%s", out)
	}
	if !strings.Contains(out, "3.14") {
		t.Fatalf("float formatting broken:\n%s", out)
	}
	if !strings.Contains(out, "1.50ms") {
		t.Fatalf("duration formatting broken:\n%s", out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Fatalf("CSV header broken:\n%s", csv)
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 4 {
		t.Fatalf("CSV rows broken:\n%s", csv)
	}
}
