// Package metrics provides the latency statistics used throughout the
// evaluation harness: duration samples, percentiles, histograms and simple
// fixed-width table rendering for figure regeneration.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample accumulates duration observations.
type Sample struct {
	vals   []time.Duration
	sorted bool
}

// NewSample returns an empty sample.
func NewSample() *Sample { return &Sample{} }

// Add records one observation.
func (s *Sample) Add(d time.Duration) {
	s.vals = append(s.vals, d)
	s.sorted = false
}

// AddAll records many observations.
func (s *Sample) AddAll(ds []time.Duration) {
	s.vals = append(s.vals, ds...)
	s.sorted = false
}

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.vals) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Sample) Mean() time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range s.vals {
		sum += v
	}
	return sum / time.Duration(len(s.vals))
}

// Percentile returns the p-th percentile (p in [0, 100]) using
// nearest-rank on the sorted sample.
func (s *Sample) Percentile(p float64) time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.vals[0]
	}
	if p >= 100 {
		return s.vals[len(s.vals)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.vals))))
	if rank < 1 {
		rank = 1
	}
	return s.vals[rank-1]
}

// Median returns the 50th percentile.
func (s *Sample) Median() time.Duration { return s.Percentile(50) }

// P99 returns the 99th percentile.
func (s *Sample) P99() time.Duration { return s.Percentile(99) }

// Max returns the maximum observation.
func (s *Sample) Max() time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	s.sort()
	return s.vals[len(s.vals)-1]
}

// Min returns the minimum observation.
func (s *Sample) Min() time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	s.sort()
	return s.vals[0]
}

// StdDev returns the population standard deviation (0 when empty) — the
// failover experiment reports it alongside the mean so detection-latency
// jitter across trials is visible.
func (s *Sample) StdDev() time.Duration {
	if len(s.vals) == 0 {
		return 0
	}
	mean := float64(s.Mean())
	var ss float64
	for _, v := range s.vals {
		d := float64(v) - mean
		ss += d * d
	}
	return time.Duration(math.Sqrt(ss / float64(len(s.vals))))
}

// TailRatio returns p99/mean — the skew metric the paper uses to argue
// against WCET-driven execution (§2.2, Fig. 3).
func (s *Sample) TailRatio() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return float64(s.P99()) / float64(m)
}

// Values returns a copy of the raw observations.
func (s *Sample) Values() []time.Duration {
	return append([]time.Duration(nil), s.vals...)
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Slice(s.vals, func(i, j int) bool { return s.vals[i] < s.vals[j] })
		s.sorted = true
	}
}

// Histogram buckets duration observations into fixed-width bins, as Fig. 12
// renders response-time distributions.
type Histogram struct {
	Width   time.Duration
	buckets map[int]int
	total   int
}

// NewHistogram returns a histogram with the given bin width.
func NewHistogram(width time.Duration) *Histogram {
	return &Histogram{Width: width, buckets: make(map[int]int)}
}

// Add records one observation.
func (h *Histogram) Add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[int(d/h.Width)]++
	h.total++
}

// Bins returns (binStart, relativeFrequency) pairs in ascending order.
func (h *Histogram) Bins() []Bin {
	idx := make([]int, 0, len(h.buckets))
	for i := range h.buckets {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make([]Bin, 0, len(idx))
	for _, i := range idx {
		out = append(out, Bin{
			Start: time.Duration(i) * h.Width,
			Count: h.buckets[i],
			Freq:  float64(h.buckets[i]) / float64(h.total),
		})
	}
	return out
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Bin is one histogram bucket.
type Bin struct {
	Start time.Duration
	Count int
	Freq  float64
}

// Table renders aligned rows for figure output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; cells are rendered with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.2fms", float64(v)/float64(time.Millisecond))
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
