package policy

import (
	"time"

	"github.com/erdos-go/erdos/internal/core/comm"
)

// EnvironmentCodecID identifies policy.Environment frames on the wire (the
// perception→pDP env-info stream).
const EnvironmentCodecID uint64 = 3

func init() {
	comm.RegisterPayload(Environment{})
	comm.RegisterCodec(comm.Codec{
		ID:      EnvironmentCodecID,
		Name:    "policy.Environment",
		Version: 1,
		Unmarshal: func(body []byte, _ uint8) (any, error) {
			r := comm.ReaderOf(body)
			var e Environment
			e.Speed = r.Float64()
			e.AgentDistance = r.Float64()
			e.HasAgent = r.Bool()
			e.CurrentResponse = time.Duration(r.Varint())
			return e, r.Err()
		},
	})
}

// FrameCodec implements comm.FramePayload.
func (e Environment) FrameCodec() uint64 { return EnvironmentCodecID }

// MarshalFrame appends the environment's wire encoding to dst.
func (e Environment) MarshalFrame(dst []byte) []byte {
	dst = comm.AppendFloat64(dst, e.Speed)
	dst = comm.AppendFloat64(dst, e.AgentDistance)
	dst = comm.AppendBool(dst, e.HasAgent)
	return comm.AppendVarint(dst, int64(e.CurrentResponse))
}
