// Package policy implements deadline policies pDP (§3, §5.2, §7.4 of the
// paper). A policy receives the state of the environment and computes the
// end-to-end deadline D that keeps the vehicle safe without forcing
// unnecessarily-fast (and therefore low-accuracy) computation; the runtime
// splits D across operators.
//
// The headline policy is the paper's §7.4 baseline: it computes the AV's
// reaction time (the time to accumulate enough sensor readings for a
// trajectory prediction plus the current configuration's end-to-end
// runtime), estimates the stopping distance from the reaction time and
// speed, and tightens the end-to-end deadline as other agents fall inside
// that envelope.
package policy

import (
	"time"

	"github.com/erdos-go/erdos/internal/av/braking"
)

// Environment is the policy's input: the slice of world state it samples.
type Environment struct {
	// Speed is the AV's speed (m/s).
	Speed float64
	// AgentDistance is the distance to the nearest tracked agent ahead
	// (meters); valid only when HasAgent.
	AgentDistance float64
	HasAgent      bool
	// CurrentResponse is the measured end-to-end runtime of the currently
	// deployed configuration.
	CurrentResponse time.Duration
}

// Policy computes an end-to-end deadline from the environment.
type Policy interface {
	Decide(env Environment) time.Duration
}

// StaticPolicy always returns the same deadline (the paper's static
// configurations: 125, 200, 250, 400 and 500 ms).
type StaticPolicy time.Duration

// Decide implements Policy.
func (s StaticPolicy) Decide(Environment) time.Duration { return time.Duration(s) }

// StaticConfigs lists the static end-to-end deadlines evaluated in §7.4.
var StaticConfigs = []time.Duration{
	125 * time.Millisecond,
	200 * time.Millisecond,
	250 * time.Millisecond,
	400 * time.Millisecond,
	500 * time.Millisecond,
}

// StoppingDistancePolicy is the paper's §7.4 deadline allocation policy.
type StoppingDistancePolicy struct {
	// SensorPeriod and Readings define the sensing half of the reaction
	// time: the policy waits for Readings sensor messages (enough to build
	// a trajectory prediction) arriving every SensorPeriod.
	SensorPeriod time.Duration
	Readings     int
	// Min and Max bound the deadline D.
	Min, Max time.Duration
	// Deceleration is the braking model used for the stopping distance.
	Deceleration float64
	// Headroom (meters) is subtracted from the agent distance before
	// computing the affordable response budget.
	Headroom float64
}

// NewStoppingDistance returns the policy with the paper's parameters.
func NewStoppingDistance() *StoppingDistancePolicy {
	return &StoppingDistancePolicy{
		SensorPeriod: 100 * time.Millisecond,
		Readings:     8,
		Min:          125 * time.Millisecond,
		Max:          500 * time.Millisecond,
		Deceleration: braking.Deceleration,
		Headroom:     2.0,
	}
}

// ReactionTime returns the sensing-plus-compute reaction time for the
// current configuration. The receiver is a value: the policy is pure
// configuration, and deciding must not mutate anything an operator captured.
func (p StoppingDistancePolicy) ReactionTime(currentResponse time.Duration) time.Duration {
	return time.Duration(p.Readings)*p.SensorPeriod + currentResponse
}

// Decide implements Policy: with no agent in the stopping envelope the AV
// can afford its most accurate (slowest) configuration; as an agent closes
// in, the deadline tightens toward the response budget that still permits
// stopping short of it.
func (p StoppingDistancePolicy) Decide(env Environment) time.Duration {
	if !env.HasAgent || env.Speed <= 0 {
		return p.Max
	}
	reaction := p.ReactionTime(env.CurrentResponse)
	stop := braking.StoppingDistance(env.Speed, reaction, p.Deceleration)
	if env.AgentDistance > stop+p.Headroom {
		// The agent is beyond the stopping envelope even for the current
		// (possibly slow) configuration: stay accurate.
		return p.Max
	}
	// Inside the envelope: the affordable response budget is what remains
	// of the distance after the physical braking distance, minus headroom.
	budget := braking.ResponseBudget(env.Speed, env.AgentDistance-p.Headroom, p.Deceleration)
	if budget < p.Min {
		return p.Min
	}
	if budget > p.Max {
		return p.Max
	}
	// Quantize to 5 ms so pDP output is stable frame to frame.
	q := 5 * time.Millisecond
	return budget / q * q
}

// BackupTrigger decides when the safety backup mode (§3, §5.2) engages: too
// many consecutive missed deadlines mean the pipeline can no longer perform
// its function and the vehicle should execute a minimal-risk maneuver.
type BackupTrigger struct {
	// Threshold is the number of consecutive misses that trips the backup.
	Threshold int
	misses    int
	engaged   bool
}

// NewBackupTrigger returns a trigger with the given threshold.
func NewBackupTrigger(threshold int) *BackupTrigger {
	if threshold < 1 {
		threshold = 1
	}
	return &BackupTrigger{Threshold: threshold}
}

// Observe records the outcome of one pipeline iteration and reports whether
// the backup mode is engaged.
func (b *BackupTrigger) Observe(missed bool) bool {
	if b.engaged {
		return true
	}
	if missed {
		b.misses++
		if b.misses >= b.Threshold {
			b.engaged = true
		}
	} else {
		b.misses = 0
	}
	return b.engaged
}

// Engaged reports the trigger state.
func (b *BackupTrigger) Engaged() bool { return b.engaged }

// Reset re-arms the trigger after the vehicle recovers.
func (b *BackupTrigger) Reset() { b.misses, b.engaged = 0, false }
