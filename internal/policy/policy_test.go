package policy

import (
	"testing"
	"time"
)

func TestStaticPolicy(t *testing.T) {
	p := StaticPolicy(250 * time.Millisecond)
	if p.Decide(Environment{Speed: 20, HasAgent: true, AgentDistance: 1}) != 250*time.Millisecond {
		t.Fatal("static policy must ignore the environment")
	}
}

func TestNoAgentMeansMaxAccuracy(t *testing.T) {
	p := NewStoppingDistance()
	if d := p.Decide(Environment{Speed: 15}); d != p.Max {
		t.Fatalf("clear road deadline = %v, want max %v", d, p.Max)
	}
	if d := p.Decide(Environment{Speed: 0, HasAgent: true, AgentDistance: 1}); d != p.Max {
		t.Fatalf("stationary AV deadline = %v, want max", d)
	}
}

func TestFarAgentKeepsMax(t *testing.T) {
	p := NewStoppingDistance()
	env := Environment{Speed: 10, HasAgent: true, AgentDistance: 200, CurrentResponse: 400 * time.Millisecond}
	if d := p.Decide(env); d != p.Max {
		t.Fatalf("far-agent deadline = %v, want max", d)
	}
}

func TestCloseAgentTightens(t *testing.T) {
	p := NewStoppingDistance()
	far := p.Decide(Environment{Speed: 12, HasAgent: true, AgentDistance: 80, CurrentResponse: 400 * time.Millisecond})
	near := p.Decide(Environment{Speed: 12, HasAgent: true, AgentDistance: 25, CurrentResponse: 400 * time.Millisecond})
	veryNear := p.Decide(Environment{Speed: 12, HasAgent: true, AgentDistance: 15, CurrentResponse: 400 * time.Millisecond})
	if !(veryNear <= near && near <= far) {
		t.Fatalf("deadline not monotone in agent distance: %v, %v, %v", far, near, veryNear)
	}
	if veryNear != p.Min {
		t.Fatalf("agent inside braking distance should force the minimum, got %v", veryNear)
	}
}

func TestHigherSpeedTightens(t *testing.T) {
	p := NewStoppingDistance()
	slow := p.Decide(Environment{Speed: 8, HasAgent: true, AgentDistance: 30, CurrentResponse: 300 * time.Millisecond})
	fast := p.Decide(Environment{Speed: 14, HasAgent: true, AgentDistance: 30, CurrentResponse: 300 * time.Millisecond})
	if fast > slow {
		t.Fatalf("deadline must tighten with speed: %v at 8 m/s, %v at 14 m/s", slow, fast)
	}
}

func TestDeadlineWithinBounds(t *testing.T) {
	p := NewStoppingDistance()
	for dist := 1.0; dist < 120; dist += 3 {
		for speed := 1.0; speed < 30; speed += 2 {
			d := p.Decide(Environment{Speed: speed, HasAgent: true, AgentDistance: dist, CurrentResponse: 200 * time.Millisecond})
			if d < p.Min || d > p.Max {
				t.Fatalf("deadline %v out of [%v, %v] at speed %.0f dist %.0f", d, p.Min, p.Max, speed, dist)
			}
		}
	}
}

func TestReactionTime(t *testing.T) {
	p := NewStoppingDistance()
	got := p.ReactionTime(200 * time.Millisecond)
	if got != 8*100*time.Millisecond+200*time.Millisecond {
		t.Fatalf("ReactionTime = %v", got)
	}
}

func TestBackupTrigger(t *testing.T) {
	b := NewBackupTrigger(3)
	if b.Observe(true) || b.Observe(true) {
		t.Fatal("engaged before threshold")
	}
	if !b.Observe(true) {
		t.Fatal("did not engage at threshold")
	}
	if !b.Observe(false) {
		t.Fatal("backup must stay engaged until reset")
	}
	b.Reset()
	if b.Engaged() {
		t.Fatal("reset did not disengage")
	}
	// Successes clear the consecutive count.
	b.Observe(true)
	b.Observe(true)
	b.Observe(false)
	b.Observe(true)
	b.Observe(true)
	if b.Engaged() {
		t.Fatal("non-consecutive misses must not engage")
	}
}

func TestBackupTriggerMinThreshold(t *testing.T) {
	b := NewBackupTrigger(0)
	if !b.Observe(true) {
		t.Fatal("threshold must clamp to 1")
	}
}
