// Package trace provides the seeded randomness and runtime-distribution
// models that drive the synthetic workloads: component runtimes in an AV
// pipeline are not constant but environment-dependent (§2.2 of the paper),
// with heavy right tails. Every generator is deterministic under a seed so
// experiments reproduce exactly.
package trace

import (
	"math"
	"math/rand"
	"time"
)

// Rand wraps a seeded source with the samplers the workload models need.
type Rand struct{ *rand.Rand }

// New returns a deterministic generator for the given seed.
func New(seed int64) *Rand {
	return &Rand{Rand: rand.New(rand.NewSource(seed))}
}

// Uniform samples uniformly from [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}

// Normal samples a normal with the given mean and standard deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + r.NormFloat64()*stddev
}

// LogNormalDur samples a right-skewed duration with the given median and a
// shape parameter sigma (sigma ~0.25 gives mild skew, ~0.8 gives the heavy
// tails Fig. 3 shows for perception).
func (r *Rand) LogNormalDur(median time.Duration, sigma float64) time.Duration {
	mu := math.Log(float64(median))
	v := math.Exp(mu + sigma*r.NormFloat64())
	return time.Duration(v)
}

// JitterDur samples median scaled by a normal factor with relative standard
// deviation rel, clamped to [median/4, 4*median].
func (r *Rand) JitterDur(median time.Duration, rel float64) time.Duration {
	f := r.Normal(1, rel)
	if f < 0.25 {
		f = 0.25
	}
	if f > 4 {
		f = 4
	}
	return time.Duration(float64(median) * f)
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool { return r.Float64() < p }

// Poisson samples a Poisson-distributed count with mean lambda (Knuth's
// method; adequate for the small lambdas used by scene generators).
func (r *Rand) Poisson(lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// Exponential samples an exponential with the given mean.
func (r *Rand) Exponential(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Pick returns a uniformly random element index weighted by weights.
func (r *Rand) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}
