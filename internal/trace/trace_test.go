package trace

import (
	"math"
	"testing"
	"time"
)

func TestDeterministicUnderSeed(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Uniform(0, 1) != b.Uniform(0, 1) {
			t.Fatal("Uniform not deterministic")
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(1)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(2)
	var sum, sq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("mean = %.3f", mean)
	}
	if math.Abs(std-2) > 0.1 {
		t.Fatalf("std = %.3f", std)
	}
}

func TestLogNormalMedianAndSkew(t *testing.T) {
	r := New(3)
	const n = 20001
	vals := make([]time.Duration, n)
	var sum time.Duration
	for i := range vals {
		vals[i] = r.LogNormalDur(100*time.Millisecond, 0.5)
		sum += vals[i]
	}
	// Median should be near the parameter; mean above it (right skew).
	count := 0
	for _, v := range vals {
		if v < 100*time.Millisecond {
			count++
		}
	}
	frac := float64(count) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("median off: %.2f below the parameter", frac)
	}
	if sum/time.Duration(n) <= 100*time.Millisecond {
		t.Fatal("log-normal mean must exceed the median (right skew)")
	}
}

func TestJitterDurClamped(t *testing.T) {
	r := New(4)
	for i := 0; i < 5000; i++ {
		v := r.JitterDur(100*time.Millisecond, 2.0) // huge rel stddev
		if v < 25*time.Millisecond || v > 400*time.Millisecond {
			t.Fatalf("JitterDur out of clamp: %v", v)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(5)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bernoulli(0.3) = %.3f", frac)
	}
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) fired")
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(6)
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Poisson(3.5)
	}
	mean := float64(sum) / n
	if math.Abs(mean-3.5) > 0.1 {
		t.Fatalf("Poisson mean = %.3f", mean)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(7)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Exponential(5)
	}
	if math.Abs(sum/n-5) > 0.2 {
		t.Fatalf("Exponential mean = %.3f", sum/n)
	}
}

func TestPickWeighted(t *testing.T) {
	r := New(8)
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Pick([]float64{1, 2, 7})]++
	}
	if f := float64(counts[2]) / n; f < 0.65 || f > 0.75 {
		t.Fatalf("heavy option picked %.2f, want ~0.7", f)
	}
	if f := float64(counts[0]) / n; f < 0.07 || f > 0.13 {
		t.Fatalf("light option picked %.2f, want ~0.1", f)
	}
}
