package tlight

import (
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/metrics"
	"github.com/erdos-go/erdos/internal/trace"
)

func TestRuntimeGrowsWithLights(t *testing.T) {
	r1, r2 := trace.New(1), trace.New(1)
	d1, d2 := NewDetector(), NewDetector()
	var quiet, busy time.Duration
	for i := 0; i < 300; i++ {
		quiet += d1.Runtime(r1, Scene{Lights: 0, Camera: 0})
		busy += d2.Runtime(r2, Scene{Lights: 6, Camera: 0})
	}
	if busy < 2*quiet {
		t.Fatalf("busy intersections must be much slower: %v vs %v", busy, quiet)
	}
}

func TestCameraSwitchPenalty(t *testing.T) {
	r := trace.New(2)
	d := NewDetector()
	_ = d.Runtime(r, Scene{Lights: 0, Camera: 0})
	var same, switched time.Duration
	n := 200
	for i := 0; i < n; i++ {
		same += d.Runtime(r, Scene{Lights: 2, Camera: 0})
	}
	for i := 0; i < n; i++ {
		switched += d.Runtime(r, Scene{Lights: 2, Camera: i % 2}) // alternates
	}
	if switched < same {
		t.Fatalf("camera switching must cost: %v vs %v", switched, same)
	}
}

func TestFig3TailSkew(t *testing.T) {
	// The paper reports a p99/mean response-time ratio of ~3.3x for
	// Apollo's perception; require a clearly heavy tail (>2x) with the
	// same mechanism (camera choice + number of lights).
	tr := Simulate(11, 40*time.Second, 100*time.Millisecond)
	s := metrics.NewSample()
	s.AddAll(tr.Runtimes)
	ratio := s.TailRatio()
	if ratio < 2.0 {
		t.Fatalf("p99/mean = %.2f, want a heavy tail (>2)", ratio)
	}
	if ratio > 6.0 {
		t.Fatalf("p99/mean = %.2f, implausibly heavy", ratio)
	}
}

func TestFig3DropsMessages(t *testing.T) {
	tr := Simulate(11, 40*time.Second, 100*time.Millisecond)
	if tr.Dropped == 0 {
		t.Fatal("a 10 Hz sensor with multi-hundred-ms detections must drop messages")
	}
	if len(tr.Times) == 0 {
		t.Fatal("no invocations recorded")
	}
	if tr.Dropped >= 400 {
		t.Fatalf("dropped %d of 400 — everything dropped", tr.Dropped)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(5, 10*time.Second, 100*time.Millisecond)
	b := Simulate(5, 10*time.Second, 100*time.Millisecond)
	if len(a.Runtimes) != len(b.Runtimes) || a.Dropped != b.Dropped {
		t.Fatal("simulation not deterministic under seed")
	}
	for i := range a.Runtimes {
		if a.Runtimes[i] != b.Runtimes[i] {
			t.Fatal("runtime traces differ under the same seed")
		}
	}
}

func TestDriveSceneAlternates(t *testing.T) {
	r := trace.New(9)
	road := DriveScene(r, 0)
	intersection := DriveScene(r, 9*time.Second)
	if road.Camera != 0 {
		t.Fatalf("open road should use the wide camera: %+v", road)
	}
	if intersection.Lights < 3 {
		t.Fatalf("intersection should have several lights: %+v", intersection)
	}
}
