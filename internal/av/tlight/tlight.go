// Package tlight models Baidu Apollo's traffic-light perception (Fig. 3 of
// the paper): the detector uses the map and the vehicle's location to pick
// between multiple cameras, obtains bounding-box proposals, and refines and
// classifies each proposal with per-light neural networks. Its response
// time therefore depends on both the camera choice and the number of lights
// in view, producing a p99/mean skew of ~3.3x and forcing the pipeline to
// drop sensor messages when a slow detection keeps resources busy.
package tlight

import (
	"time"

	"github.com/erdos-go/erdos/internal/trace"
)

// Detector is the Apollo-style traffic-light detector model.
type Detector struct {
	// BaseRuntime is the proposal stage's fixed cost.
	BaseRuntime time.Duration
	// PerLight is the refinement+classification cost per visible light.
	PerLight time.Duration
	// CameraSwitchPenalty is paid whenever the detector changes cameras
	// (telephoto vs wide, per the Apollo design).
	CameraSwitchPenalty time.Duration

	lastCamera int
}

// NewDetector returns a detector calibrated so that a busy intersection
// scene (6+ lights, camera switching) runs ~3x the quiet-road mean.
func NewDetector() *Detector {
	return &Detector{
		BaseRuntime:         28 * time.Millisecond,
		PerLight:            24 * time.Millisecond,
		CameraSwitchPenalty: 55 * time.Millisecond,
	}
}

// Scene describes the environment at one detection invocation.
type Scene struct {
	// Lights is the number of traffic lights in view.
	Lights int
	// Camera selects the active camera (0 = wide, 1 = telephoto); Apollo
	// picks by projecting map lights through each camera.
	Camera int
}

// Runtime samples one invocation's response time.
func (d *Detector) Runtime(r *trace.Rand, s Scene) time.Duration {
	med := float64(d.BaseRuntime) + float64(d.PerLight)*float64(s.Lights)
	if s.Camera != d.lastCamera {
		med += float64(d.CameraSwitchPenalty)
		d.lastCamera = s.Camera
	}
	return r.LogNormalDur(time.Duration(med), 0.35)
}

// DriveScene generates the scene at time t of a simulated urban drive:
// stretches of open road (0-1 lights, wide camera) punctuated by
// intersections (3-8 lights, telephoto camera) roughly every 8 seconds.
func DriveScene(r *trace.Rand, t time.Duration) Scene {
	phase := int(t / (8 * time.Second))
	inIntersection := phase%2 == 1
	if !inIntersection {
		return Scene{Lights: r.Intn(2), Camera: 0}
	}
	return Scene{Lights: 3 + r.Intn(6), Camera: 1}
}

// Trace is one simulated drive's detector timeline.
type Trace struct {
	// Times are the invocation instants; Runtimes the matching response
	// times.
	Times    []time.Duration
	Runtimes []time.Duration
	// Dropped counts sensor messages discarded because the detector was
	// still busy when they arrived (the pipeline's Fig. 3 behaviour).
	Dropped int
}

// Simulate runs the detector over a drive of the given length with sensors
// arriving at the given period (Apollo processes at 10 Hz). A message that
// arrives while the previous invocation is still running is dropped.
func Simulate(seed int64, length, period time.Duration) Trace {
	r := trace.New(seed)
	d := NewDetector()
	var tr Trace
	busyUntil := time.Duration(0)
	for t := time.Duration(0); t < length; t += period {
		if t < busyUntil {
			tr.Dropped++
			continue
		}
		rt := d.Runtime(r, DriveScene(r, t))
		tr.Times = append(tr.Times, t)
		tr.Runtimes = append(tr.Runtimes, rt)
		busyUntil = t + rt
	}
	return tr
}
