package braking

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPaperCalibration(t *testing.T) {
	// §2.1: at 7 m/s the AV needs 7.66 m with the EDet2 configuration
	// (~0.15 s response) and 11.14 m with EDet6 (~0.65 s); at 17 m/s the
	// EDet2 configuration needs 43.43 m. Allow 10% tolerance on the backed
	// out calibration.
	cases := []struct {
		speed float64
		resp  time.Duration
		want  float64
	}{
		{7, 150 * time.Millisecond, 7.66},
		{7, 650 * time.Millisecond, 11.14},
		{17, 150 * time.Millisecond, 43.43},
	}
	for _, c := range cases {
		got := StoppingDistance(c.speed, c.resp, Deceleration)
		if math.Abs(got-c.want)/c.want > 0.10 {
			t.Errorf("StoppingDistance(%.0f m/s, %v) = %.2f, want ~%.2f",
				c.speed, c.resp, got, c.want)
		}
	}
}

func TestCollisionSpeedZeroWhenStoppable(t *testing.T) {
	if v := CollisionSpeed(10, 200*time.Millisecond, 100, Deceleration); v != 0 {
		t.Fatalf("collision speed = %.2f with ample distance", v)
	}
}

func TestCollisionSpeedFullWhenNoRoom(t *testing.T) {
	if v := CollisionSpeed(15, time.Second, 10, Deceleration); v != 15 {
		t.Fatalf("hitting during reaction time must collide at full speed: %.2f", v)
	}
}

func TestCollisionSpeedPartialBraking(t *testing.T) {
	v := CollisionSpeed(15, 200*time.Millisecond, 20, Deceleration)
	if v <= 0 || v >= 15 {
		t.Fatalf("partial braking collision speed = %.2f, want in (0, 15)", v)
	}
	// Shorter response time must reduce impact speed.
	v2 := CollisionSpeed(15, 100*time.Millisecond, 20, Deceleration)
	if v2 >= v {
		t.Fatalf("faster response must reduce impact: %.2f vs %.2f", v2, v)
	}
}

func TestMaxSafeSpeedMonotoneInDistance(t *testing.T) {
	near := MaxSafeSpeed(300*time.Millisecond, 15, Deceleration)
	far := MaxSafeSpeed(300*time.Millisecond, 60, Deceleration)
	if near >= far {
		t.Fatalf("more room must allow more speed: %.2f vs %.2f", near, far)
	}
	if v := CollisionSpeed(near*0.99, 300*time.Millisecond, 15, Deceleration); v > 0 {
		t.Fatalf("MaxSafeSpeed not safe: collision at %.2f", v)
	}
}

func TestResponseBudget(t *testing.T) {
	b := ResponseBudget(10, 30, Deceleration)
	// 30 m available, braking needs 100/7 = 14.3 m, slack 15.7 m at
	// 10 m/s -> ~1.57 s.
	if b < 1500*time.Millisecond || b > 1650*time.Millisecond {
		t.Fatalf("ResponseBudget = %v, want ~1.57s", b)
	}
	if ResponseBudget(20, 10, Deceleration) != 0 {
		t.Fatal("insufficient distance must yield zero budget")
	}
	if ResponseBudget(0, 10, Deceleration) < time.Minute {
		t.Fatal("stationary AV has unbounded budget")
	}
	// Consistency: braking after exactly the budget must just barely stop.
	b2 := ResponseBudget(12, 40, Deceleration)
	if v := CollisionSpeed(12, b2, 40, Deceleration); v > 0.2 {
		t.Fatalf("braking at the budget must stop: collision at %.2f", v)
	}
}

func TestEmergencyDecelShortensStopping(t *testing.T) {
	soft := StoppingDistance(15, 100*time.Millisecond, Deceleration)
	hard := StoppingDistance(15, 100*time.Millisecond, EmergencyDeceleration)
	if hard >= soft {
		t.Fatalf("emergency braking must stop shorter: %.2f vs %.2f", hard, soft)
	}
}

// Property: collision speed is monotone — more available distance, a faster
// response, or a lower approach speed never worsens the impact.
func TestQuickCollisionSpeedMonotone(t *testing.T) {
	f := func(v8, d8, r8 uint8) bool {
		v := 1 + float64(v8%30)
		d := 1 + float64(d8%120)
		r := time.Duration(r8%150) * 10 * time.Millisecond
		base := CollisionSpeed(v, r, d, Deceleration)
		if CollisionSpeed(v, r, d+5, Deceleration) > base+1e-9 {
			return false
		}
		if CollisionSpeed(v, r+50*time.Millisecond, d, Deceleration) < base-1e-9 {
			return false
		}
		if CollisionSpeed(v+1, r, d, Deceleration) < base-1e-9 {
			return false
		}
		return base >= 0 && base <= v+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ResponseBudget is consistent with CollisionSpeed — responding
// within the budget always stops short.
func TestQuickResponseBudgetSafe(t *testing.T) {
	f := func(v8, d8 uint8) bool {
		v := 1 + float64(v8%25)
		d := 5 + float64(d8%100)
		b := ResponseBudget(v, d, Deceleration)
		if b <= 0 {
			return true // no budget: nothing to check
		}
		if b > time.Minute {
			b = time.Minute
		}
		return CollisionSpeed(v, b, d, Deceleration) < 0.3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
