// Package braking implements the stopping-sight-distance kinematics the
// paper uses throughout (§2.1, §7.4): the distance an AV needs to come to a
// halt is the distance covered during the pipeline's response time plus the
// physical braking distance.
//
// Calibration: §2.1 reports that at 7 m/s the AV needs 7.66 m to stop with
// EDet2 and 11.14 m with EDet6, and at 17 m/s it needs 43.43 m with EDet2.
// Solving those constraints gives a comfortable deceleration of ~3.5 m/s^2
// and end-to-end response times of ~0.15 s (EDet2 configuration) and
// ~0.65 s (EDet6 configuration), which this package adopts as defaults.
package braking

import (
	"math"
	"time"
)

// Deceleration is the braking deceleration in m/s^2 backed out from the
// paper's §2.1 numbers.
const Deceleration = 3.5

// EmergencyDeceleration is available under hard braking (used by the safety
// backup mode).
const EmergencyDeceleration = 8.0

// StoppingDistance returns the total distance (meters) needed to stop from
// speed (m/s) given the pipeline's end-to-end response time: the reaction
// distance v*t plus the braking distance v^2/(2a).
func StoppingDistance(speed float64, response time.Duration, decel float64) float64 {
	if decel <= 0 {
		decel = Deceleration
	}
	return speed*response.Seconds() + speed*speed/(2*decel)
}

// CollisionSpeed returns the speed (m/s) at which the AV hits an obstacle
// `available` meters away if it brakes after `response` — 0 when it stops
// in time (the paper's Fig. 13 metric).
func CollisionSpeed(speed float64, response time.Duration, available, decel float64) float64 {
	if decel <= 0 {
		decel = Deceleration
	}
	remaining := available - speed*response.Seconds()
	if remaining <= 0 {
		return speed // hits before braking even begins
	}
	v2 := speed*speed - 2*decel*remaining
	if v2 <= 0 {
		return 0
	}
	return math.Sqrt(v2)
}

// MaxSafeSpeed returns the highest speed from which the AV can stop within
// `available` meters given the response time (bisection over CollisionSpeed).
func MaxSafeSpeed(response time.Duration, available, decel float64) float64 {
	lo, hi := 0.0, 60.0
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if CollisionSpeed(mid, response, available, decel) > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

// ResponseBudget returns the largest end-to-end response time that still
// permits stopping within `available` meters from the given speed — the
// quantity a deadline policy (§7.4) computes when it tightens the pipeline
// deadline as obstacles close in.
func ResponseBudget(speed float64, available, decel float64) time.Duration {
	if decel <= 0 {
		decel = Deceleration
	}
	if speed <= 0 {
		return time.Hour
	}
	braking := speed * speed / (2 * decel)
	slack := available - braking
	if slack <= 0 {
		return 0
	}
	return time.Duration(slack / speed * float64(time.Second))
}
