package prediction

import (
	"time"

	"github.com/erdos-go/erdos/internal/core/comm"
)

// Frame codec helpers for the comm typed fast path.

// MarshalFrame appends the waypoint's wire encoding to dst.
func (w Waypoint) MarshalFrame(dst []byte) []byte {
	dst = comm.AppendVarint(dst, int64(w.T))
	dst = comm.AppendFloat64(dst, w.X)
	return comm.AppendFloat64(dst, w.Y)
}

// UnmarshalFrame decodes the fields MarshalFrame wrote.
func (w *Waypoint) UnmarshalFrame(r *comm.FrameReader) {
	w.T = time.Duration(r.Varint())
	w.X = r.Float64()
	w.Y = r.Float64()
}

// MarshalFrame appends the trajectory's wire encoding to dst.
func (t Trajectory) MarshalFrame(dst []byte) []byte {
	dst = comm.AppendVarint(dst, int64(t.TrackID))
	dst = comm.AppendUvarint(dst, uint64(len(t.Waypoints)))
	for _, w := range t.Waypoints {
		dst = w.MarshalFrame(dst)
	}
	return dst
}

// UnmarshalFrame decodes the fields MarshalFrame wrote.
func (t *Trajectory) UnmarshalFrame(r *comm.FrameReader) {
	t.TrackID = int(r.Varint())
	n := r.Len(17) // varint T + two float64s per waypoint
	if n > 0 {
		t.Waypoints = make([]Waypoint, n)
		for i := range t.Waypoints {
			t.Waypoints[i].UnmarshalFrame(r)
		}
	}
}
