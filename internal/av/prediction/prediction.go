// Package prediction models Pylot's trajectory-prediction component
// (Fig. 2c of the paper): recurrent predictors such as MFP and R2P2-MA have
// runtimes linear in the prediction horizon, and the required horizon grows
// with the AV's own speed (§2.2) — faster driving demands looking further
// ahead, coupling the environment to the component's runtime.
//
// A working constant-velocity/constant-turn predictor is included so the
// pipeline produces real predicted trajectories.
package prediction

import (
	"fmt"
	"time"

	"github.com/erdos-go/erdos/internal/av/tracking"
	"github.com/erdos-go/erdos/internal/trace"
)

// Model is one predictor's runtime profile.
type Model struct {
	Name string
	// Base is the fixed cost; PerSecond the marginal cost per second of
	// prediction horizon. Calibrated to Fig. 2c (runtimes 50-200 ms over
	// 1-5 s horizons, MFP steeper than R2P2-MA).
	Base      time.Duration
	PerSecond time.Duration
	// PerAgent is the marginal cost per predicted agent.
	PerAgent time.Duration
	// Accuracy in [0, 1] scales downstream planning quality.
	Accuracy float64
}

// The predictors evaluated in Fig. 2c, plus the lightweight linear
// extrapolator Pylot deploys inside tight end-to-end budgets.
var (
	MFP    = Model{Name: "MFP", Base: 25 * time.Millisecond, PerSecond: 36 * time.Millisecond, PerAgent: 2 * time.Millisecond, Accuracy: 0.92}
	R2P2MA = Model{Name: "R2P2-MA", Base: 38 * time.Millisecond, PerSecond: 21 * time.Millisecond, PerAgent: 1500 * time.Microsecond, Accuracy: 0.88}
	Linear = Model{Name: "linear", Base: 3 * time.Millisecond, PerSecond: 1500 * time.Microsecond, PerAgent: 300 * time.Microsecond, Accuracy: 0.72}
)

// All lists the predictors in Fig. 2c order.
var All = []Model{MFP, R2P2MA, Linear}

// ByName returns the named predictor profile.
func ByName(name string) (Model, error) {
	for _, m := range All {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("prediction: unknown predictor %q", name)
}

// HorizonForSpeed returns the prediction horizon an AV moving at speed
// (m/s) requires: enough to cover its own stopping time plus a safety
// margin, clamped to [1 s, 5 s] as in Fig. 2c.
func HorizonForSpeed(speed float64) time.Duration {
	h := 0.8 + speed/5.0
	if h < 1 {
		h = 1
	}
	if h > 5 {
		h = 5
	}
	return time.Duration(h * float64(time.Second))
}

// Runtime samples the latency for predicting n agents over the horizon.
func (m Model) Runtime(r *trace.Rand, horizon time.Duration, n int) time.Duration {
	med := float64(m.Base) +
		float64(m.PerSecond)*horizon.Seconds() +
		float64(m.PerAgent)*float64(n)
	return r.LogNormalDur(time.Duration(med), 0.15)
}

// MedianRuntime returns the distribution median.
func (m Model) MedianRuntime(horizon time.Duration, n int) time.Duration {
	return m.Base +
		time.Duration(float64(m.PerSecond)*horizon.Seconds()) +
		time.Duration(n)*m.PerAgent
}

// Waypoint is one predicted future position.
type Waypoint struct {
	T    time.Duration
	X, Y float64
}

// Trajectory is one agent's predicted path.
type Trajectory struct {
	TrackID   int
	Waypoints []Waypoint
}

// Predict extrapolates each track with a constant-velocity model sampled at
// dt over the horizon — the working substitute for the learned predictors.
func Predict(tracks []*tracking.Track, horizon, dt time.Duration) []Trajectory {
	if dt <= 0 {
		dt = 250 * time.Millisecond
	}
	out := make([]Trajectory, 0, len(tracks))
	for _, tr := range tracks {
		var wps []Waypoint
		for t := dt; t <= horizon; t += dt {
			s := t.Seconds()
			wps = append(wps, Waypoint{T: t, X: tr.X + tr.VX*s, Y: tr.Y + tr.VY*s})
		}
		out = append(out, Trajectory{TrackID: tr.ID, Waypoints: wps})
	}
	return out
}
