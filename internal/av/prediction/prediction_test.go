package prediction

import (
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/av/tracking"
	"github.com/erdos-go/erdos/internal/trace"
)

func TestRuntimeLinearInHorizon(t *testing.T) {
	// Fig. 2c: runtimes grow linearly with the prediction horizon.
	for _, m := range All {
		h1 := m.MedianRuntime(1*time.Second, 5)
		h3 := m.MedianRuntime(3*time.Second, 5)
		h5 := m.MedianRuntime(5*time.Second, 5)
		d1 := h3 - h1
		d2 := h5 - h3
		diff := d1 - d2
		if diff < 0 {
			diff = -diff
		}
		if diff > time.Millisecond {
			t.Fatalf("%s: non-linear growth: %v vs %v", m.Name, d1, d2)
		}
		if h5 <= h1 {
			t.Fatalf("%s: runtime must grow with horizon", m.Name)
		}
	}
}

func TestFig2cRange(t *testing.T) {
	// The paper's Fig. 2c spans roughly 50-200 ms across 1-5 s horizons.
	lo := R2P2MA.MedianRuntime(1*time.Second, 5)
	hi := MFP.MedianRuntime(5*time.Second, 5)
	if lo < 40*time.Millisecond || lo > 80*time.Millisecond {
		t.Fatalf("low end = %v, want ~50-60ms", lo)
	}
	if hi < 150*time.Millisecond || hi > 250*time.Millisecond {
		t.Fatalf("high end = %v, want ~200ms", hi)
	}
}

func TestHorizonForSpeed(t *testing.T) {
	slow := HorizonForSpeed(2)
	fast := HorizonForSpeed(20)
	if slow < time.Second || slow >= fast {
		t.Fatalf("horizons: slow %v, fast %v", slow, fast)
	}
	if fast > 5*time.Second {
		t.Fatalf("horizon must clamp at 5s, got %v", fast)
	}
}

func TestByName(t *testing.T) {
	if m, err := ByName("MFP"); err != nil || m.Name != "MFP" {
		t.Fatalf("ByName: %+v, %v", m, err)
	}
	if _, err := ByName("GPT"); err == nil {
		t.Fatal("unknown predictor must error")
	}
}

func TestPredictExtrapolatesVelocity(t *testing.T) {
	tracks := []*tracking.Track{{ID: 1, X: 0, Y: 0, VX: 10, VY: 0}}
	trajs := Predict(tracks, 2*time.Second, 500*time.Millisecond)
	if len(trajs) != 1 {
		t.Fatalf("trajectories = %d", len(trajs))
	}
	wps := trajs[0].Waypoints
	if len(wps) != 4 {
		t.Fatalf("waypoints = %d, want 4", len(wps))
	}
	last := wps[len(wps)-1]
	if last.X < 19.9 || last.X > 20.1 {
		t.Fatalf("extrapolated X = %.2f, want 20", last.X)
	}
}

func TestRuntimeSamplingDeterministic(t *testing.T) {
	a := MFP.Runtime(trace.New(5), 3*time.Second, 4)
	b := MFP.Runtime(trace.New(5), 3*time.Second, 4)
	if a != b {
		t.Fatalf("sampling not deterministic: %v vs %v", a, b)
	}
}
