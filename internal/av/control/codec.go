package control

import "github.com/erdos-go/erdos/internal/core/comm"

// CommandCodecID identifies control.Command frames on the wire; Command is
// a top-level stream payload (the pipeline's commands stream), so it
// implements comm.FramePayload directly.
const CommandCodecID uint64 = 2

func init() {
	comm.RegisterPayload(Command{})
	comm.RegisterCodec(comm.Codec{
		ID:      CommandCodecID,
		Name:    "control.Command",
		Version: 1,
		Unmarshal: func(body []byte, _ uint8) (any, error) {
			r := comm.ReaderOf(body)
			var c Command
			c.Steer = r.Float64()
			c.Throttle = r.Float64()
			c.Brake = r.Float64()
			return c, r.Err()
		},
	})
}

// FrameCodec implements comm.FramePayload.
func (c Command) FrameCodec() uint64 { return CommandCodecID }

// MarshalFrame appends the command's wire encoding to dst.
func (c Command) MarshalFrame(dst []byte) []byte {
	dst = comm.AppendFloat64(dst, c.Steer)
	dst = comm.AppendFloat64(dst, c.Throttle)
	return comm.AppendFloat64(dst, c.Brake)
}

// MarshalFrame appends the waypoint's wire encoding to dst.
func (w Waypoint) MarshalFrame(dst []byte) []byte {
	dst = comm.AppendFloat64(dst, w.X)
	return comm.AppendFloat64(dst, w.Y)
}

// UnmarshalFrame decodes the fields MarshalFrame wrote.
func (w *Waypoint) UnmarshalFrame(r *comm.FrameReader) {
	w.X = r.Float64()
	w.Y = r.Float64()
}
