// Package control implements Pylot's control module (Fig. 1 of the paper):
// it converts planned waypoints into steering and acceleration commands
// with a PID longitudinal controller and a pure-pursuit lateral controller.
// Control runs at 100 Hz, an order of magnitude faster than the rest of the
// pipeline, and consumes whatever plan (coarse or refined) is newest —
// which is what makes the intermediate-result mechanism of §5.3 useful.
package control

import (
	"math"
	"time"
)

// Command is one actuation output.
type Command struct {
	// Steer is the steering angle in radians (positive left).
	Steer float64
	// Throttle in [0, 1]; Brake in [0, 1].
	Throttle, Brake float64
}

// PID is a scalar PID controller.
type PID struct {
	KP, KI, KD float64
	integral   float64
	lastErr    float64
	hasLast    bool
}

// Update advances the controller with error e over dt and returns the
// control effort.
func (p *PID) Update(e float64, dt float64) float64 {
	if dt <= 0 {
		return p.KP * e
	}
	p.integral += e * dt
	d := 0.0
	if p.hasLast {
		d = (e - p.lastErr) / dt
	}
	p.lastErr, p.hasLast = e, true
	return p.KP*e + p.KI*p.integral + p.KD*d
}

// Reset clears the controller's memory.
func (p *PID) Reset() {
	p.integral, p.lastErr, p.hasLast = 0, 0, false
}

// Controller combines longitudinal PID speed control with pure-pursuit
// steering over a waypoint list.
type Controller struct {
	Speed PID
	// Lookahead is the pure-pursuit lookahead distance (meters).
	Lookahead float64
	// Wheelbase is the vehicle wheelbase (meters).
	Wheelbase float64
}

// NewController returns a controller with sedan-scale defaults.
func NewController() *Controller {
	return &Controller{
		Speed:     PID{KP: 0.6, KI: 0.05, KD: 0.1},
		Lookahead: 6.0,
		Wheelbase: 2.85,
	}
}

// Waypoint is one target point in the vehicle frame (x ahead, y left).
type Waypoint struct{ X, Y float64 }

// Step computes the actuation for the current speed, target speed and plan.
func (c *Controller) Step(speed, targetSpeed float64, plan []Waypoint, dt time.Duration) Command {
	var cmd Command
	// Longitudinal: PID on speed error, mapped to throttle or brake.
	u := c.Speed.Update(targetSpeed-speed, dt.Seconds())
	if u >= 0 {
		cmd.Throttle = math.Min(u, 1)
	} else {
		cmd.Brake = math.Min(-u, 1)
	}
	// Lateral: pure pursuit toward the first waypoint at or beyond the
	// lookahead distance.
	if len(plan) > 0 {
		wp := plan[len(plan)-1]
		for _, p := range plan {
			if math.Hypot(p.X, p.Y) >= c.Lookahead {
				wp = p
				break
			}
		}
		ld := math.Hypot(wp.X, wp.Y)
		if ld > 1e-6 {
			alpha := math.Atan2(wp.Y, wp.X)
			cmd.Steer = math.Atan2(2*c.Wheelbase*math.Sin(alpha), ld)
		}
	}
	return cmd
}

// EmergencyBrake is the safety backup mode's actuation (§3): full braking,
// straight wheel.
func EmergencyBrake() Command { return Command{Brake: 1} }

// Runtime is the control module's modeled per-iteration latency: control is
// compute-light (~1 ms) compared to perception and planning.
const Runtime = time.Millisecond
