package control

import (
	"testing"
	"time"
)

func TestPIDConvergesOnStep(t *testing.T) {
	p := PID{KP: 0.8, KI: 0.2, KD: 0.05}
	setpoint, value := 10.0, 0.0
	for i := 0; i < 400; i++ {
		u := p.Update(setpoint-value, 0.05)
		value += u * 0.05 * 3 // simple first-order plant
	}
	if value < 9.0 || value > 11.0 {
		t.Fatalf("PID settled at %.2f, want ~10", value)
	}
}

func TestPIDReset(t *testing.T) {
	p := PID{KP: 1, KI: 1}
	p.Update(5, 1)
	p.Reset()
	if u := p.Update(0, 1); u != 0 {
		t.Fatalf("after Reset, zero error must give zero effort, got %v", u)
	}
}

func TestThrottleVsBrake(t *testing.T) {
	c := NewController()
	cmd := c.Step(5, 15, nil, 100*time.Millisecond)
	if cmd.Throttle <= 0 || cmd.Brake != 0 {
		t.Fatalf("accelerating: %+v", cmd)
	}
	c2 := NewController()
	cmd = c2.Step(15, 5, nil, 100*time.Millisecond)
	if cmd.Brake <= 0 || cmd.Throttle != 0 {
		t.Fatalf("decelerating: %+v", cmd)
	}
}

func TestPurePursuitSteersTowardOffsetWaypoint(t *testing.T) {
	c := NewController()
	left := c.Step(10, 10, []Waypoint{{X: 10, Y: 3}}, 50*time.Millisecond)
	if left.Steer <= 0 {
		t.Fatalf("waypoint to the left must steer left: %+v", left)
	}
	c2 := NewController()
	right := c2.Step(10, 10, []Waypoint{{X: 10, Y: -3}}, 50*time.Millisecond)
	if right.Steer >= 0 {
		t.Fatalf("waypoint to the right must steer right: %+v", right)
	}
	c3 := NewController()
	straight := c3.Step(10, 10, []Waypoint{{X: 10, Y: 0}}, 50*time.Millisecond)
	if straight.Steer != 0 {
		t.Fatalf("straight waypoint must not steer: %+v", straight)
	}
}

func TestLookaheadSelection(t *testing.T) {
	c := NewController()
	// First waypoint is inside the lookahead radius; the controller must
	// aim at the farther one.
	cmd := c.Step(10, 10, []Waypoint{{X: 1, Y: 1}, {X: 10, Y: -2}}, 50*time.Millisecond)
	if cmd.Steer >= 0 {
		t.Fatalf("controller aimed at the near waypoint: %+v", cmd)
	}
}

func TestEmergencyBrake(t *testing.T) {
	cmd := EmergencyBrake()
	if cmd.Brake != 1 || cmd.Throttle != 0 || cmd.Steer != 0 {
		t.Fatalf("EmergencyBrake = %+v", cmd)
	}
}
