// Package planning implements Pylot's trajectory planners (§7.1 of the
// paper). The workhorse is an anytime Frenet Optimal Trajectory (FOT)
// planner: it discretizes the configuration space (lateral offsets ×
// maneuver durations), scores quintic-polynomial candidates, and refines
// the discretization iteratively — coarse grids are fast but produce
// higher-jerk trajectories, finer grids need more time and yield more
// comfortable rides (Fig. 2d). The planner is interruptible at candidate
// granularity, making it a true anytime algorithm (§5.3): it can be stopped
// when the deadline expires and always holds the best trajectory found.
//
// RRT*- and Hybrid-A*-style alternatives live in rrtstar.go and
// hybridastar.go.
package planning

import (
	"math"
	"time"
)

// VehicleState is the AV's state in a lane-aligned frame: x longitudinal
// (meters ahead), y lateral (meters left of lane center).
type VehicleState struct {
	Speed float64 // m/s
	Y     float64 // current lateral offset
}

// Obstacle is an object the trajectory must clear, in the same frame.
type Obstacle struct {
	X, Y   float64 // position when the AV would pass it
	Radius float64 // required lateral clearance (meters)
}

// Trajectory is a planned lateral maneuver: a quintic rest-to-rest
// polynomial from the current offset to Target completed in Duration.
type Trajectory struct {
	Target   float64
	Duration float64 // seconds
	// MaxJerk is the maximum absolute lateral jerk along the trajectory
	// (m/s^3) — the comfort metric of Fig. 2d.
	MaxJerk float64
	Cost    float64
	// Feasible reports whether the trajectory clears every obstacle.
	Feasible bool
}

// quinticMaxJerk returns the peak |jerk| of a rest-to-rest quintic covering
// displacement d in T seconds: the minimum-effort quintic has jerk
// j(s) = d/T^3 * (60 - 360 s + 360 s^2), peaking at 60 d / T^3.
func quinticMaxJerk(d, T float64) float64 {
	if T <= 0 {
		return math.Inf(1)
	}
	return 60 * math.Abs(d) / (T * T * T)
}

// quinticOffset evaluates the lateral offset at fraction s of the maneuver.
func quinticOffset(y0, yT, s float64) float64 {
	if s <= 0 {
		return y0
	}
	if s >= 1 {
		return yT
	}
	blend := 10*s*s*s - 15*s*s*s*s + 6*s*s*s*s*s
	return y0 + (yT-y0)*blend
}

// Config parameterizes the FOT search grid.
type Config struct {
	// MaxOffset bounds the lateral deviation (meters).
	MaxOffset float64
	// MaxDuration bounds the maneuver time (seconds).
	MaxDuration float64
	// LateralStep is the base (coarsest) lateral discretization; the
	// paper's Fig. 2d varies it from 0.7 m (fast, uncomfortable) to 0.3 m.
	LateralStep float64
	// TimeStep is the base maneuver-duration discretization (seconds).
	TimeStep float64
	// Weights for the candidate cost.
	JerkWeight, OffsetWeight, TimeWeight float64
	// SamplesPerCandidate controls collision-check resolution.
	SamplesPerCandidate int
}

// DefaultConfig returns the configuration used by the evaluation.
func DefaultConfig() Config {
	return Config{
		MaxOffset:   3.5,
		MaxDuration: 6.0,
		LateralStep: 0.7,
		TimeStep:    1.0,
		// Jerk dominates the cost so anytime refinement drives comfort
		// (Fig. 2d); offset and time are tie-breakers among equal-jerk
		// candidates.
		JerkWeight:          1.0,
		OffsetWeight:        0.05,
		TimeWeight:          0.02,
		SamplesPerCandidate: 20,
	}
}

// Planner is the anytime FOT search. Construct with NewPlanner, then call
// Step until the budget expires or Done reports true; Best always returns
// the best trajectory found so far.
type Planner struct {
	cfg   Config
	state VehicleState
	obs   []Obstacle

	level      int
	maxLevel   int
	queue      []candidate
	evaluated  int
	best       Trajectory
	haveResult bool
}

type candidate struct {
	target   float64
	duration float64
}

// NewPlanner prepares an anytime search for the given scene. maxLevel
// bounds the refinement depth (level k halves both discretizations k
// times); 3 reproduces Fig. 2d's spread.
func NewPlanner(cfg Config, st VehicleState, obs []Obstacle, maxLevel int) *Planner {
	if maxLevel < 0 {
		maxLevel = 0
	}
	p := &Planner{cfg: cfg, state: st, obs: obs, maxLevel: maxLevel}
	p.best = Trajectory{Cost: math.Inf(1)}
	p.fillLevel()
	return p
}

// fillLevel enqueues the candidate grid for the current refinement level.
func (p *Planner) fillLevel() {
	latStep := p.cfg.LateralStep / math.Pow(2, float64(p.level))
	tStep := p.cfg.TimeStep / math.Pow(2, float64(p.level))
	p.queue = p.queue[:0]
	for target := -p.cfg.MaxOffset; target <= p.cfg.MaxOffset+1e-9; target += latStep {
		for dur := tStep; dur <= p.cfg.MaxDuration+1e-9; dur += tStep {
			p.queue = append(p.queue, candidate{target: target, duration: dur})
		}
	}
}

// Step evaluates up to n candidates, returning how many were evaluated
// (0 once the search is exhausted).
func (p *Planner) Step(n int) int {
	done := 0
	for done < n {
		if len(p.queue) == 0 {
			if p.level >= p.maxLevel {
				return done
			}
			p.level++
			p.fillLevel()
			continue
		}
		c := p.queue[0]
		p.queue = p.queue[1:]
		p.evaluate(c)
		done++
	}
	return done
}

// Done reports whether every candidate at every level was evaluated.
func (p *Planner) Done() bool {
	return len(p.queue) == 0 && p.level >= p.maxLevel
}

// Evaluated returns the number of candidates scored so far.
func (p *Planner) Evaluated() int { return p.evaluated }

// Best returns the best trajectory found so far; ok is false while no
// feasible candidate has been seen.
func (p *Planner) Best() (Trajectory, bool) { return p.best, p.haveResult }

func (p *Planner) evaluate(c candidate) {
	p.evaluated++
	tr := Trajectory{Target: c.target, Duration: c.duration}
	tr.MaxJerk = quinticMaxJerk(c.target-p.state.Y, c.duration)
	tr.Feasible = p.clears(c)
	if !tr.Feasible {
		return
	}
	tr.Cost = p.cfg.JerkWeight*tr.MaxJerk +
		p.cfg.OffsetWeight*math.Abs(c.target) +
		p.cfg.TimeWeight/c.duration
	if tr.Cost < p.best.Cost {
		p.best = tr
		p.haveResult = true
	}
}

// clears samples the candidate and checks clearance against each obstacle
// at the moment the AV passes it.
func (p *Planner) clears(c candidate) bool {
	v := p.state.Speed
	for _, o := range p.obs {
		if o.X < 0 {
			continue // already behind
		}
		tPass := math.Inf(1)
		if v > 0.1 {
			tPass = o.X / v
		}
		var yAt float64
		if tPass >= c.duration {
			yAt = c.target
		} else {
			yAt = quinticOffset(p.state.Y, c.target, tPass/c.duration)
		}
		if math.Abs(yAt-o.Y) < o.Radius {
			return false
		}
		// The maneuver must also be completable before reaching a blocking
		// obstacle when no lateral escape exists at all (checked by the
		// caller via Feasible == false across the grid).
	}
	// Collision-check intermediate samples against obstacles the AV passes
	// mid-maneuver.
	n := p.cfg.SamplesPerCandidate
	if n < 2 {
		n = 2
	}
	for i := 0; i <= n; i++ {
		s := float64(i) / float64(n)
		tAt := s * c.duration
		xAt := v * tAt
		yAt := quinticOffset(p.state.Y, c.target, s)
		for _, o := range p.obs {
			if math.Abs(o.X-xAt) < 1.0 && math.Abs(yAt-o.Y) < o.Radius {
				return false
			}
		}
	}
	return true
}

// PerCandidateCost is the modeled evaluation cost of one FOT candidate on
// the paper's hardware (trajectory generation plus collision checks against
// the predicted scene), used to convert candidate counts into virtual-time
// runtimes: a 125 ms budget covers the coarse grids, a 500 ms budget the
// fine ones.
const PerCandidateCost = 150 * time.Microsecond

// PlanWithBudget runs the anytime search until the modeled runtime budget
// is exhausted, returning the best trajectory, whether one was found, and
// the modeled runtime actually consumed.
func PlanWithBudget(cfg Config, st VehicleState, obs []Obstacle, budget time.Duration, maxLevel int) (Trajectory, bool, time.Duration) {
	p := NewPlanner(cfg, st, obs, maxLevel)
	allowed := int(budget / PerCandidateCost)
	if allowed < 1 {
		allowed = 1
	}
	for p.Evaluated() < allowed {
		if p.Step(64) == 0 {
			break
		}
	}
	tr, ok := p.Best()
	return tr, ok, time.Duration(p.Evaluated()) * PerCandidateCost
}
