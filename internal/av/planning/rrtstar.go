package planning

import (
	"math"

	"github.com/erdos-go/erdos/internal/trace"
)

// RRTStar is a compact RRT* planner in the 2D lane frame: it grows a tree
// from the AV toward a goal point, rewiring nodes within a radius to keep
// near-optimal path costs, and avoids circular obstacles. Pylot uses RRT*
// for unstructured maneuvers where the Frenet lattice fits poorly (§7.1).
type RRTStar struct {
	// StepSize is the tree-extension distance (meters).
	StepSize float64
	// RewireRadius bounds the neighbourhood considered for rewiring.
	RewireRadius float64
	// GoalTolerance ends the search when a node lands this close.
	GoalTolerance float64
	// Bounds limit sampling: x in [0, XMax], y in [-YMax, YMax].
	XMax, YMax float64
}

// NewRRTStar returns a planner with lane-scale defaults.
func NewRRTStar() *RRTStar {
	return &RRTStar{StepSize: 2.0, RewireRadius: 4.0, GoalTolerance: 1.5, XMax: 60, YMax: 6}
}

type rrtNode struct {
	x, y   float64
	parent int
	cost   float64
}

// Path is a sequence of 2D points.
type Path struct {
	X, Y []float64
	Cost float64
}

// Plan searches for a path from (0, y0) to the goal, using at most
// maxIterations samples. RRT* is an anytime algorithm: more iterations
// yield monotonically better (cheaper) paths. It returns the best path and
// whether the goal was reached.
func (r *RRTStar) Plan(rnd *trace.Rand, y0, goalX, goalY float64, obs []Obstacle, maxIterations int) (Path, bool) {
	nodes := []rrtNode{{x: 0, y: y0, parent: -1, cost: 0}}
	bestGoal := -1
	bestCost := math.Inf(1)
	for it := 0; it < maxIterations; it++ {
		// Goal-biased sampling.
		var sx, sy float64
		if rnd.Bernoulli(0.1) {
			sx, sy = goalX, goalY
		} else {
			sx, sy = rnd.Uniform(0, r.XMax), rnd.Uniform(-r.YMax, r.YMax)
		}
		// Nearest node.
		ni := 0
		nd := math.Inf(1)
		for i, n := range nodes {
			d := math.Hypot(n.x-sx, n.y-sy)
			if d < nd {
				nd, ni = d, i
			}
		}
		// Steer.
		nx, ny := nodes[ni].x, nodes[ni].y
		d := math.Hypot(sx-nx, sy-ny)
		if d < 1e-9 {
			continue
		}
		step := math.Min(r.StepSize, d)
		px, py := nx+(sx-nx)/d*step, ny+(sy-ny)/d*step
		if r.collides(nx, ny, px, py, obs) {
			continue
		}
		// Choose the cheapest collision-free parent in the neighbourhood.
		parent := ni
		cost := nodes[ni].cost + step
		for i, n := range nodes {
			dd := math.Hypot(n.x-px, n.y-py)
			if dd <= r.RewireRadius && n.cost+dd < cost && !r.collides(n.x, n.y, px, py, obs) {
				parent, cost = i, n.cost+dd
			}
		}
		nodes = append(nodes, rrtNode{x: px, y: py, parent: parent, cost: cost})
		newIdx := len(nodes) - 1
		// Rewire neighbours through the new node when cheaper.
		for i := range nodes {
			if i == newIdx {
				continue
			}
			dd := math.Hypot(nodes[i].x-px, nodes[i].y-py)
			if dd <= r.RewireRadius && cost+dd < nodes[i].cost && !r.collides(px, py, nodes[i].x, nodes[i].y, obs) {
				nodes[i].parent = newIdx
				nodes[i].cost = cost + dd
			}
		}
		// Track best goal-reaching node.
		if math.Hypot(px-goalX, py-goalY) <= r.GoalTolerance && cost < bestCost {
			bestGoal, bestCost = newIdx, cost
		}
	}
	if bestGoal < 0 {
		return Path{}, false
	}
	var xs, ys []float64
	for i := bestGoal; i >= 0; i = nodes[i].parent {
		xs = append(xs, nodes[i].x)
		ys = append(ys, nodes[i].y)
	}
	// Reverse into start-to-goal order.
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
		ys[i], ys[j] = ys[j], ys[i]
	}
	return Path{X: xs, Y: ys, Cost: bestCost}, true
}

// collides samples the segment against the obstacle discs.
func (r *RRTStar) collides(x0, y0, x1, y1 float64, obs []Obstacle) bool {
	steps := int(math.Hypot(x1-x0, y1-y0)/0.5) + 1
	for i := 0; i <= steps; i++ {
		s := float64(i) / float64(steps)
		x, y := x0+(x1-x0)*s, y0+(y1-y0)*s
		for _, o := range obs {
			if math.Hypot(x-o.X, y-o.Y) < o.Radius {
				return true
			}
		}
	}
	return false
}
