package planning

import (
	"container/heap"
	"math"
)

// HybridAStar is a compact Hybrid-A*-style planner: A* over a grid of
// (x, y, heading) states expanded with kinematically-feasible arc motions,
// suited to tightly-constrained maneuvers such as parking or threading
// between stopped vehicles (§7.1 of the paper).
type HybridAStar struct {
	// Resolution is the grid cell size (meters).
	Resolution float64
	// Headings is the number of discretized heading bins.
	Headings int
	// TurnRadius is the minimum turning radius (meters).
	TurnRadius float64
	// XMax/YMax bound the search area: x in [0, XMax], y in [-YMax, YMax].
	XMax, YMax float64
	// MaxExpansions bounds the search effort.
	MaxExpansions int
}

// NewHybridAStar returns a planner with lane-scale defaults.
func NewHybridAStar() *HybridAStar {
	return &HybridAStar{
		Resolution:    1.0,
		Headings:      16,
		TurnRadius:    6.0,
		XMax:          60,
		YMax:          6,
		MaxExpansions: 20000,
	}
}

type haState struct {
	x, y, theta float64
	g, f        float64
	parent      int
	self        int
	idx         int
}

type haHeap []*haState

func (h haHeap) Len() int           { return len(h) }
func (h haHeap) Less(i, j int) bool { return h[i].f < h[j].f }
func (h haHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx, h[j].idx = i, j }
func (h *haHeap) Push(x any)        { s := x.(*haState); s.idx = len(*h); *h = append(*h, s) }
func (h *haHeap) Pop() any          { old := *h; n := len(old); s := old[n-1]; *h = old[:n-1]; return s }

// Plan searches from (0, y0, heading 0) to within tolerance of the goal.
// It returns the path and whether the goal was reached.
func (p *HybridAStar) Plan(y0, goalX, goalY float64, obs []Obstacle) (Path, bool) {
	const stepLen = 2.0
	tol := 1.5 * p.Resolution
	curvatures := []float64{0, 1 / p.TurnRadius, -1 / p.TurnRadius, 0.5 / p.TurnRadius, -0.5 / p.TurnRadius}
	start := &haState{x: 0, y: y0, theta: 0, parent: -1, self: 0}
	start.f = math.Hypot(goalX, goalY-y0)
	all := []*haState{start}
	open := haHeap{}
	heap.Init(&open)
	heap.Push(&open, start)
	visited := make(map[[3]int]bool)
	key := func(s *haState) [3]int {
		hb := int(math.Mod(s.theta+2*math.Pi, 2*math.Pi) / (2 * math.Pi) * float64(p.Headings))
		return [3]int{int(s.x / p.Resolution), int(math.Floor(s.y / p.Resolution)), hb}
	}
	expansions := 0
	for open.Len() > 0 && expansions < p.MaxExpansions {
		cur := heap.Pop(&open).(*haState)
		k := key(cur)
		if visited[k] {
			continue
		}
		visited[k] = true
		expansions++
		if math.Hypot(cur.x-goalX, cur.y-goalY) <= tol {
			return p.extract(all, cur), true
		}
		for _, kappa := range curvatures {
			nx, ny, nth := arcStep(cur.x, cur.y, cur.theta, kappa, stepLen)
			if nx < -1 || nx > p.XMax || ny < -p.YMax || ny > p.YMax {
				continue
			}
			if p.hit(cur.x, cur.y, nx, ny, obs) {
				continue
			}
			ns := &haState{
				x: nx, y: ny, theta: nth,
				g:      cur.g + stepLen + 0.5*math.Abs(kappa)*stepLen,
				parent: cur.self,
			}
			ns.f = ns.g + math.Hypot(nx-goalX, ny-goalY)
			ns.self = len(all)
			all = append(all, ns)
			heap.Push(&open, ns)
		}
	}
	return Path{}, false
}

func arcStep(x, y, theta, kappa, ds float64) (float64, float64, float64) {
	if math.Abs(kappa) < 1e-9 {
		return x + ds*math.Cos(theta), y + ds*math.Sin(theta), theta
	}
	nth := theta + kappa*ds
	return x + (math.Sin(nth)-math.Sin(theta))/kappa,
		y - (math.Cos(nth)-math.Cos(theta))/kappa,
		nth
}

func (p *HybridAStar) hit(x0, y0, x1, y1 float64, obs []Obstacle) bool {
	steps := 4
	for i := 0; i <= steps; i++ {
		s := float64(i) / float64(steps)
		x, y := x0+(x1-x0)*s, y0+(y1-y0)*s
		for _, o := range obs {
			if math.Hypot(x-o.X, y-o.Y) < o.Radius {
				return true
			}
		}
	}
	return false
}

func (p *HybridAStar) extract(all []*haState, goal *haState) Path {
	var xs, ys []float64
	for s := goal; s != nil; {
		xs = append(xs, s.x)
		ys = append(ys, s.y)
		if s.parent < 0 {
			break
		}
		s = all[s.parent]
	}
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
		ys[i], ys[j] = ys[j], ys[i]
	}
	return Path{X: xs, Y: ys, Cost: goal.g}
}
