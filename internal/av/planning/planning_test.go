package planning

import (
	"math"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/trace"
)

func TestQuinticMaxJerkClosedForm(t *testing.T) {
	if j := quinticMaxJerk(2, 2); math.Abs(j-15) > 1e-9 {
		t.Fatalf("maxJerk(2m, 2s) = %v, want 60*2/8 = 15", j)
	}
	if j := quinticMaxJerk(-2, 2); math.Abs(j-15) > 1e-9 {
		t.Fatalf("maxJerk must use |d|: %v", j)
	}
	if !math.IsInf(quinticMaxJerk(1, 0), 1) {
		t.Fatal("zero-duration maneuver must have infinite jerk")
	}
}

func TestQuinticOffsetBoundaries(t *testing.T) {
	if quinticOffset(0, 3, 0) != 0 || quinticOffset(0, 3, 1) != 3 {
		t.Fatal("quintic boundary conditions violated")
	}
	mid := quinticOffset(0, 3, 0.5)
	if mid < 1.4 || mid > 1.6 {
		t.Fatalf("midpoint = %.3f, want 1.5", mid)
	}
	// Monotone for a rest-to-rest quintic.
	prev := 0.0
	for s := 0.0; s <= 1.0; s += 0.05 {
		y := quinticOffset(0, 3, s)
		if y < prev-1e-9 {
			t.Fatalf("offset regressed at s=%.2f", s)
		}
		prev = y
	}
}

func TestPlannerAvoidsObstacle(t *testing.T) {
	cfg := DefaultConfig()
	st := VehicleState{Speed: 10, Y: 0}
	obs := []Obstacle{{X: 20, Y: 0, Radius: 1.2}} // blocking our lane
	p := NewPlanner(cfg, st, obs, 2)
	for p.Step(256) > 0 {
	}
	tr, ok := p.Best()
	if !ok {
		t.Fatal("no feasible trajectory found")
	}
	if math.Abs(tr.Target) < 1.2 {
		t.Fatalf("best trajectory target %.2f does not clear the obstacle", tr.Target)
	}
}

func TestAnytimeMonotoneImprovement(t *testing.T) {
	// More evaluation budget must never worsen the best cost (§5.3:
	// anytime algorithms monotonically increase accuracy with deadline).
	cfg := DefaultConfig()
	st := VehicleState{Speed: 12, Y: 0}
	obs := []Obstacle{{X: 25, Y: 0, Radius: 1.0}}
	var lastCost = math.Inf(1)
	for _, budget := range []int{50, 200, 1000, 5000} {
		p := NewPlanner(cfg, st, obs, 3)
		for p.Evaluated() < budget {
			if p.Step(50) == 0 {
				break
			}
		}
		tr, ok := p.Best()
		if !ok {
			continue
		}
		if tr.Cost > lastCost+1e-9 {
			t.Fatalf("cost regressed with larger budget: %.3f after %.3f", tr.Cost, lastCost)
		}
		lastCost = tr.Cost
	}
	if math.IsInf(lastCost, 1) {
		t.Fatal("no budget produced a feasible plan")
	}
}

func TestFig2dJerkDecreasesWithBudget(t *testing.T) {
	// Fig. 2d: 125 ms planning produces high lateral jerk, 500 ms low.
	cfg := DefaultConfig()
	st := VehicleState{Speed: 12, Y: 0}
	obs := []Obstacle{{X: 18, Y: 0, Radius: 1.0}} // forces a swerve
	jerkAt := func(budget time.Duration) float64 {
		tr, ok, _ := PlanWithBudget(cfg, st, obs, budget, 3)
		if !ok {
			t.Fatalf("no plan within %v", budget)
		}
		return tr.MaxJerk
	}
	j125 := jerkAt(125 * time.Millisecond)
	j500 := jerkAt(500 * time.Millisecond)
	if j500 > j125 {
		t.Fatalf("jerk should not increase with budget: %0.1f @125ms vs %0.1f @500ms", j125, j500)
	}
}

func TestPlanWithBudgetRespectsBudget(t *testing.T) {
	cfg := DefaultConfig()
	st := VehicleState{Speed: 10}
	_, _, used := PlanWithBudget(cfg, st, nil, 10*time.Millisecond, 3)
	if used > 10*time.Millisecond+64*PerCandidateCost {
		t.Fatalf("modeled runtime %v exceeds the 10ms budget beyond step granularity", used)
	}
}

func TestInfeasibleWhenFullyBlocked(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxOffset = 1.0 // cannot swerve wide enough
	st := VehicleState{Speed: 10, Y: 0}
	obs := []Obstacle{{X: 15, Y: 0, Radius: 3.0}}
	p := NewPlanner(cfg, st, obs, 2)
	for p.Step(512) > 0 {
	}
	if _, ok := p.Best(); ok {
		t.Fatal("fully blocked scene must yield no feasible trajectory")
	}
}

func TestRRTStarReachesGoal(t *testing.T) {
	r := NewRRTStar()
	rnd := trace.New(42)
	obs := []Obstacle{{X: 20, Y: 0, Radius: 2}}
	path, ok := r.Plan(rnd, 0, 45, 0, obs, 3000)
	if !ok {
		t.Fatal("RRT* did not reach the goal")
	}
	if len(path.X) < 2 {
		t.Fatalf("degenerate path: %v", path)
	}
	// The path must avoid the obstacle disc.
	for i := range path.X {
		if math.Hypot(path.X[i]-20, path.Y[i]) < 2 {
			t.Fatalf("path enters the obstacle at node %d", i)
		}
	}
}

func TestRRTStarAnytimeImproves(t *testing.T) {
	obs := []Obstacle{{X: 20, Y: 0, Radius: 2}}
	r := NewRRTStar()
	short, ok1 := r.Plan(trace.New(7), 0, 45, 0, obs, 500)
	long, ok2 := r.Plan(trace.New(7), 0, 45, 0, obs, 5000)
	if !ok1 || !ok2 {
		t.Skip("sampling did not reach the goal at the small budget")
	}
	if long.Cost > short.Cost*1.05 {
		t.Fatalf("more iterations worsened the path: %.2f -> %.2f", short.Cost, long.Cost)
	}
}

func TestHybridAStarThreadsGap(t *testing.T) {
	p := NewHybridAStar()
	obs := []Obstacle{
		{X: 20, Y: 2.5, Radius: 2},
		{X: 20, Y: -2.5, Radius: 2},
	}
	path, ok := p.Plan(0, 40, 0, obs)
	if !ok {
		t.Fatal("Hybrid A* failed to thread the gap")
	}
	for i := range path.X {
		for _, o := range obs {
			if math.Hypot(path.X[i]-o.X, path.Y[i]-o.Y) < o.Radius {
				t.Fatalf("path collides at node %d", i)
			}
		}
	}
}

func TestHybridAStarRespectsExpansionBound(t *testing.T) {
	p := NewHybridAStar()
	p.MaxExpansions = 10 // starve the search
	obs := []Obstacle{{X: 10, Y: 0, Radius: 5.5}}
	if _, ok := p.Plan(0, 55, 0, obs); ok {
		t.Fatal("starved search should not reach a far goal behind a wall")
	}
}
