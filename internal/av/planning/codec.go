package planning

import "github.com/erdos-go/erdos/internal/core/comm"

// Frame codec helpers for the comm typed fast path.

// MarshalFrame appends the trajectory's wire encoding to dst.
func (t Trajectory) MarshalFrame(dst []byte) []byte {
	dst = comm.AppendFloat64(dst, t.Target)
	dst = comm.AppendFloat64(dst, t.Duration)
	dst = comm.AppendFloat64(dst, t.MaxJerk)
	dst = comm.AppendFloat64(dst, t.Cost)
	return comm.AppendBool(dst, t.Feasible)
}

// UnmarshalFrame decodes the fields MarshalFrame wrote.
func (t *Trajectory) UnmarshalFrame(r *comm.FrameReader) {
	t.Target = r.Float64()
	t.Duration = r.Float64()
	t.MaxJerk = r.Float64()
	t.Cost = r.Float64()
	t.Feasible = r.Bool()
}
