// Package tracking models Pylot's object trackers (Fig. 2b of the paper):
// SORT is cheap and scales gently with the number of tracked agents but has
// lower association accuracy; DeepSORT and DaSiamRPN are accurate but their
// runtimes grow steeply with agent count — the canonical example of
// environment-dependent runtime (C2, §2.2).
//
// Beyond the runtime models, the package implements a working SORT-style
// tracker (constant-velocity Kalman-like prediction + greedy nearest-
// neighbour association) so the pipeline produces real tracks.
package tracking

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"time"

	"github.com/erdos-go/erdos/internal/trace"
)

// Model is one tracker's runtime-accuracy profile.
type Model struct {
	Name string
	// Base is the fixed per-frame cost; PerAgent the marginal cost per
	// tracked agent. Calibrated to Fig. 2b: at 10 agents SORT stays ~5 ms,
	// DeepSORT reaches ~150 ms, DaSiamRPN ~600 ms.
	Base     time.Duration
	PerAgent time.Duration
	// Accuracy is the association quality in [0, 1] used by the pipeline
	// to decide how often tracks fragment.
	Accuracy float64
}

// The trackers evaluated in Fig. 2b.
var (
	SORT      = Model{Name: "SORT", Base: 2 * time.Millisecond, PerAgent: 300 * time.Microsecond, Accuracy: 0.70}
	DeepSORT  = Model{Name: "DeepSORT", Base: 10 * time.Millisecond, PerAgent: 14 * time.Millisecond, Accuracy: 0.90}
	DaSiamRPN = Model{Name: "DaSiamRPN", Base: 15 * time.Millisecond, PerAgent: 58 * time.Millisecond, Accuracy: 0.93}
)

// All lists the trackers in Fig. 2b order.
var All = []Model{SORT, DeepSORT, DaSiamRPN}

// ByName returns the named tracker profile.
func ByName(name string) (Model, error) {
	for _, m := range All {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("tracking: unknown tracker %q", name)
}

// Runtime samples the per-frame latency for tracking n agents.
func (m Model) Runtime(r *trace.Rand, n int) time.Duration {
	med := float64(m.Base) + float64(m.PerAgent)*float64(n)
	return r.LogNormalDur(time.Duration(med), 0.18)
}

// MedianRuntime returns the distribution median for n agents.
func (m Model) MedianRuntime(n int) time.Duration {
	return m.Base + time.Duration(n)*m.PerAgent
}

// --- a working SORT-style tracker ---

// Observation is one detected object position at a frame.
type Observation struct {
	X, Y float64
}

// Track is one maintained identity.
type Track struct {
	ID         int
	X, Y       float64
	VX, VY     float64
	Age        int
	Misses     int
	LastUpdate uint64

	// lastX, lastY hold the position at the last associated observation,
	// so velocity is estimated against a measured point rather than the
	// predicted one (which would bias the estimate low).
	lastX, lastY float64
	lastFrame    uint64
	hasLast      bool
}

// Tracker maintains tracks across frames with constant-velocity prediction
// and greedy nearest-neighbour association, in the spirit of SORT.
type Tracker struct {
	// GateDistance is the maximum association distance (meters).
	GateDistance float64
	// MaxMisses drops a track after this many unmatched frames.
	MaxMisses int

	nextID int
	tracks []*Track
}

// NewTracker returns a tracker with SORT-like defaults.
func NewTracker() *Tracker {
	return &Tracker{GateDistance: 4.0, MaxMisses: 3, nextID: 1}
}

// Tracks returns the live tracks.
func (t *Tracker) Tracks() []*Track { return t.tracks }

// Clone returns a deep copy: the copy's tracks are independent of the
// original's, so a versioned-state commit can be read (checkpointed,
// rolled back to) while the live tracker keeps mutating.
func (t *Tracker) Clone() *Tracker {
	c := &Tracker{GateDistance: t.GateDistance, MaxMisses: t.MaxMisses, nextID: t.nextID}
	if len(t.tracks) > 0 {
		c.tracks = make([]*Track, len(t.tracks))
		for i, tr := range t.tracks {
			cp := *tr
			c.tracks[i] = &cp
		}
	}
	return c
}

// trackGob flattens a Track's unexported velocity-estimation fields so a
// checkpointed tracker resumes with identical dynamics, not just identical
// positions.
type trackGob struct {
	Track
	LastX, LastY float64
	LastFrame    uint64
	HasLast      bool
}

// trackerGob is the wire form of a Tracker for state checkpoints.
type trackerGob struct {
	GateDistance float64
	MaxMisses    int
	NextID       int
	Tracks       []trackGob
}

// GobEncode serializes the tracker — including track identity allocation
// and the velocity-estimation anchors — so operator-state checkpoints
// carry it across a worker migration.
func (t *Tracker) GobEncode() ([]byte, error) {
	s := trackerGob{GateDistance: t.GateDistance, MaxMisses: t.MaxMisses, NextID: t.nextID}
	for _, tr := range t.tracks {
		s.Tracks = append(s.Tracks, trackGob{
			Track: *tr, LastX: tr.lastX, LastY: tr.lastY,
			LastFrame: tr.lastFrame, HasLast: tr.hasLast,
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode restores a tracker serialized by GobEncode.
func (t *Tracker) GobDecode(b []byte) error {
	var s trackerGob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s); err != nil {
		return err
	}
	t.GateDistance, t.MaxMisses, t.nextID = s.GateDistance, s.MaxMisses, s.NextID
	t.tracks = t.tracks[:0]
	for _, tg := range s.Tracks {
		tr := tg.Track
		tr.lastX, tr.lastY = tg.LastX, tg.LastY
		tr.lastFrame, tr.hasLast = tg.LastFrame, tg.HasLast
		t.tracks = append(t.tracks, &tr)
	}
	return nil
}

// Update advances every track by dt, associates the frame's observations,
// spawns tracks for unmatched observations and retires stale tracks. It
// returns the live tracks after the update.
func (t *Tracker) Update(frame uint64, dt float64, obs []Observation) []*Track {
	// Predict.
	for _, tr := range t.tracks {
		tr.X += tr.VX * dt
		tr.Y += tr.VY * dt
		tr.Age++
	}
	matched := make([]bool, len(obs))
	// Greedy association: repeatedly match the globally closest pair.
	type pair struct {
		ti, oi int
		d      float64
	}
	for {
		best := pair{ti: -1, oi: -1, d: t.GateDistance}
		for ti, tr := range t.tracks {
			if tr.LastUpdate == frame {
				continue
			}
			for oi, o := range obs {
				if matched[oi] {
					continue
				}
				d := math.Hypot(tr.X-o.X, tr.Y-o.Y)
				if d < best.d {
					best = pair{ti: ti, oi: oi, d: d}
				}
			}
		}
		if best.ti < 0 {
			break
		}
		tr := t.tracks[best.ti]
		o := obs[best.oi]
		if tr.hasLast && dt > 0 && frame > tr.lastFrame {
			elapsed := dt * float64(frame-tr.lastFrame)
			vx := (o.X - tr.lastX) / elapsed
			vy := (o.Y - tr.lastY) / elapsed
			tr.VX = 0.5*tr.VX + 0.5*vx
			tr.VY = 0.5*tr.VY + 0.5*vy
		}
		tr.X, tr.Y = o.X, o.Y
		tr.lastX, tr.lastY, tr.lastFrame, tr.hasLast = o.X, o.Y, frame, true
		tr.Misses = 0
		tr.LastUpdate = frame
		matched[best.oi] = true
	}
	// Spawn new tracks.
	for oi, o := range obs {
		if matched[oi] {
			continue
		}
		t.tracks = append(t.tracks, &Track{
			ID: t.nextID, X: o.X, Y: o.Y, LastUpdate: frame,
			lastX: o.X, lastY: o.Y, lastFrame: frame, hasLast: true,
		})
		t.nextID++
	}
	// Retire stale tracks.
	live := t.tracks[:0]
	for _, tr := range t.tracks {
		if tr.LastUpdate != frame {
			tr.Misses++
		}
		if tr.Misses <= t.MaxMisses {
			live = append(live, tr)
		}
	}
	t.tracks = live
	return t.tracks
}
