package tracking

import (
	"testing"

	"github.com/erdos-go/erdos/internal/trace"
)

func TestRuntimeGrowsWithAgents(t *testing.T) {
	for _, m := range All {
		if m.MedianRuntime(10) <= m.MedianRuntime(1) {
			t.Fatalf("%s: runtime must grow with agents", m.Name)
		}
	}
}

func TestFig2bShape(t *testing.T) {
	// At 10 agents: SORT stays cheap, DeepSORT mid, DaSiamRPN most
	// expensive (Fig. 2b).
	s := SORT.MedianRuntime(10)
	d := DeepSORT.MedianRuntime(10)
	z := DaSiamRPN.MedianRuntime(10)
	if !(s < d && d < z) {
		t.Fatalf("ordering at 10 agents: %v, %v, %v", s, d, z)
	}
	if z < 400_000_000 { // ~600ms in the paper; require at least 400ms
		t.Fatalf("DaSiamRPN at 10 agents = %v, want heavy", z)
	}
	if s > 20_000_000 {
		t.Fatalf("SORT at 10 agents = %v, want light", s)
	}
	if SORT.Accuracy >= DeepSORT.Accuracy {
		t.Fatal("SORT must trade accuracy for speed")
	}
}

func TestByName(t *testing.T) {
	if m, err := ByName("DeepSORT"); err != nil || m.Name != "DeepSORT" {
		t.Fatalf("ByName: %v, %v", m, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown tracker must error")
	}
}

func TestRuntimeSampling(t *testing.T) {
	r := trace.New(1)
	d := DeepSORT.Runtime(r, 5)
	if d <= 0 {
		t.Fatalf("sampled runtime %v", d)
	}
}

func TestTrackerMaintainsIdentity(t *testing.T) {
	tr := NewTracker()
	// An object moving +1 m per frame in x.
	for f := uint64(0); f < 10; f++ {
		tr.Update(f, 0.1, []Observation{{X: float64(f), Y: 0}})
	}
	tracks := tr.Tracks()
	if len(tracks) != 1 {
		t.Fatalf("tracks = %d, want 1 stable identity", len(tracks))
	}
	if tracks[0].ID != 1 {
		t.Fatalf("identity churned: ID %d", tracks[0].ID)
	}
	if tracks[0].VX <= 5 { // ~10 m/s with dt=0.1
		t.Fatalf("velocity estimate %v, want ~10", tracks[0].VX)
	}
}

func TestTrackerSeparatesTwoAgents(t *testing.T) {
	tr := NewTracker()
	for f := uint64(0); f < 8; f++ {
		tr.Update(f, 0.1, []Observation{
			{X: float64(f), Y: 0},
			{X: float64(f), Y: 10},
		})
	}
	if n := len(tr.Tracks()); n != 2 {
		t.Fatalf("tracks = %d, want 2", n)
	}
}

func TestTrackerRetiresLostTracks(t *testing.T) {
	tr := NewTracker()
	tr.Update(0, 0.1, []Observation{{X: 0, Y: 0}})
	for f := uint64(1); f <= 5; f++ {
		tr.Update(f, 0.1, nil)
	}
	if n := len(tr.Tracks()); n != 0 {
		t.Fatalf("tracks = %d after disappearance, want 0", n)
	}
}

func TestTrackerSpawnsOnNewObservations(t *testing.T) {
	tr := NewTracker()
	tr.Update(0, 0.1, []Observation{{X: 0, Y: 0}})
	tr.Update(1, 0.1, []Observation{{X: 0.2, Y: 0}, {X: 30, Y: 5}})
	if n := len(tr.Tracks()); n != 2 {
		t.Fatalf("tracks = %d, want 2 (existing + new)", n)
	}
}
