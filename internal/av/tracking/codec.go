package tracking

import "github.com/erdos-go/erdos/internal/core/comm"

// Frame codec helpers for the comm typed fast path. Only exported fields
// travel — matching what the gob fallback would encode — so the tracker's
// private velocity-estimation state stays worker-local.

// MarshalFrame appends the track's wire encoding to dst.
func (t *Track) MarshalFrame(dst []byte) []byte {
	dst = comm.AppendVarint(dst, int64(t.ID))
	dst = comm.AppendFloat64(dst, t.X)
	dst = comm.AppendFloat64(dst, t.Y)
	dst = comm.AppendFloat64(dst, t.VX)
	dst = comm.AppendFloat64(dst, t.VY)
	dst = comm.AppendVarint(dst, int64(t.Age))
	dst = comm.AppendVarint(dst, int64(t.Misses))
	return comm.AppendUvarint(dst, t.LastUpdate)
}

// UnmarshalFrame decodes the fields MarshalFrame wrote.
func (t *Track) UnmarshalFrame(r *comm.FrameReader) {
	t.ID = int(r.Varint())
	t.X = r.Float64()
	t.Y = r.Float64()
	t.VX = r.Float64()
	t.VY = r.Float64()
	t.Age = int(r.Varint())
	t.Misses = int(r.Varint())
	t.LastUpdate = r.Uvarint()
}

// MarshalFrame appends the observation's wire encoding to dst.
func (o Observation) MarshalFrame(dst []byte) []byte {
	dst = comm.AppendFloat64(dst, o.X)
	return comm.AppendFloat64(dst, o.Y)
}

// UnmarshalFrame decodes the fields MarshalFrame wrote.
func (o *Observation) UnmarshalFrame(r *comm.FrameReader) {
	o.X = r.Float64()
	o.Y = r.Float64()
}
