package detection

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/erdos-go/erdos/internal/trace"
)

func TestFamilyOrderedByRuntimeAndAccuracy(t *testing.T) {
	for i := 1; i < len(EfficientDet); i++ {
		if EfficientDet[i].MedianRuntime <= EfficientDet[i-1].MedianRuntime {
			t.Fatalf("runtime not increasing at %s", EfficientDet[i].Name)
		}
		if EfficientDet[i].MAP <= EfficientDet[i-1].MAP {
			t.Fatalf("accuracy not increasing at %s", EfficientDet[i].Name)
		}
	}
}

func TestPaperAnchors(t *testing.T) {
	e2, err := ByName("EDet2")
	if err != nil {
		t.Fatal(err)
	}
	e6, err := ByName("EDet6")
	if err != nil {
		t.Fatal(err)
	}
	if e2.MedianRuntime != 20*time.Millisecond || e6.MedianRuntime != 262*time.Millisecond {
		t.Fatalf("anchor runtimes: %v, %v", e2.MedianRuntime, e6.MedianRuntime)
	}
	// §2.1: EDet6 detects the pedestrian at 72 m, EDet2 at 40 m.
	if r := e2.Range(); r < 39 || r > 41 {
		t.Fatalf("EDet2 range = %.1f, want ~40", r)
	}
	if r := e6.Range(); r < 71 || r > 73 {
		t.Fatalf("EDet6 range = %.1f, want ~72", r)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("YOLO"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestRuntimeGrowsWithAgents(t *testing.T) {
	m := EfficientDet[4]
	r1 := trace.New(1)
	r2 := trace.New(1)
	var few, many time.Duration
	for i := 0; i < 500; i++ {
		few += m.Runtime(r1, 0)
		many += m.Runtime(r2, 20)
	}
	if many <= few {
		t.Fatalf("runtime should grow with agents: %v vs %v", few, many)
	}
}

func TestRuntimeDeterministicUnderSeed(t *testing.T) {
	m := EfficientDet[2]
	a := m.Runtime(trace.New(7), 3)
	b := m.Runtime(trace.New(7), 3)
	if a != b {
		t.Fatalf("runtime not deterministic: %v vs %v", a, b)
	}
}

func TestOcclusionPunishesLowAccuracyMore(t *testing.T) {
	e2, _ := ByName("EDet2")
	e6, _ := ByName("EDet6")
	occ := 0.7
	lossLow := 1 - e2.EffectiveRange(occ)/e2.Range()
	lossHigh := 1 - e6.EffectiveRange(occ)/e6.Range()
	if lossLow <= lossHigh {
		t.Fatalf("occlusion loss: EDet2 %.2f should exceed EDet6 %.2f", lossLow, lossHigh)
	}
}

func TestBestWithin(t *testing.T) {
	m, ok := BestWithin(100 * time.Millisecond)
	if !ok || m.Name != "EDet4" {
		t.Fatalf("BestWithin(100ms) = %s, %v; want EDet4", m.Name, ok)
	}
	m, ok = BestWithin(500 * time.Millisecond)
	if !ok || m.Name != "EDet7" {
		t.Fatalf("BestWithin(500ms) = %s, want EDet7", m.Name)
	}
	if _, ok := BestWithin(time.Millisecond); ok {
		t.Fatal("nothing fits 1ms")
	}
	m, ok = BestWithinP99(100 * time.Millisecond)
	if !ok || m.Name != "EDet3" {
		t.Fatalf("BestWithinP99(100ms) = %s, want EDet3 (conservative)", m.Name)
	}
}

func TestDetectRespectsEffectiveRange(t *testing.T) {
	e6, _ := ByName("EDet6")
	r := trace.New(3)
	if _, ok := e6.Detect(r, 100, 0); ok {
		t.Fatal("detected beyond range")
	}
	hits := 0
	for i := 0; i < 200; i++ {
		if _, ok := e6.Detect(r, 30, 0); ok {
			hits++
		}
	}
	if hits != 200 {
		t.Fatalf("close unoccluded object detected %d/200 times, want always", hits)
	}
}

func TestDetectConfidenceDropsWithDistance(t *testing.T) {
	e6, _ := ByName("EDet6")
	r := trace.New(4)
	near, _ := e6.Detect(r, 10, 0)
	far, _ := e6.Detect(r, 55, 0)
	if near.Confidence <= far.Confidence {
		t.Fatalf("confidence: near %.2f <= far %.2f", near.Confidence, far.Confidence)
	}
}

// Property: effective range is monotone in occlusion and never exceeds the
// clear-view range; detection probability is monotone in distance.
func TestQuickEffectiveRangeMonotone(t *testing.T) {
	f := func(mi, o8 uint8) bool {
		m := EfficientDet[int(mi)%len(EfficientDet)]
		occ := float64(o8%100) / 100
		er := m.EffectiveRange(occ)
		if er > m.Range()+1e-9 {
			return false
		}
		if m.EffectiveRange(occ+0.05) > er+1e-9 {
			return false
		}
		return er >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDetectProbMonotoneInDistance(t *testing.T) {
	f := func(mi, d8 uint8) bool {
		m := EfficientDet[int(mi)%len(EfficientDet)]
		d := 1 + float64(d8%70)
		p1 := m.DetectProb(d, 0.3)
		p2 := m.DetectProb(d+2, 0.3)
		return p2 <= p1+1e-9 && p1 >= 0 && p1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMoreAccurateSeesFarther(t *testing.T) {
	f := func(o8 uint8) bool {
		occ := float64(o8%95) / 100
		for i := 1; i < len(EfficientDet); i++ {
			if EfficientDet[i].EffectiveRange(occ) < EfficientDet[i-1].EffectiveRange(occ)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
