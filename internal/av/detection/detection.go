// Package detection models Pylot's object-detection component: the
// EfficientDet family (§7.1 of the paper) spans a runtime-accuracy tradeoff
// from EDet0 (fast, low accuracy) to EDet7 (slow, high accuracy). The paper
// uses EDet2 (20 ms, 39.6 mAP) through EDet6 (262 ms, 51.7 mAP).
//
// The substitution for the GPU models (see DESIGN.md): a detector here is a
// calibrated runtime-accuracy model. Its runtime is sampled from a seeded,
// scene-complexity-dependent distribution; its detection behaviour (how far
// away and how reliably it perceives an object, especially under occlusion)
// derives from its accuracy. The calibration anchors are the paper's §2.1
// experiment: EDet6 detects the pedestrian replica 72 m away, EDet2 only
// 40 m away.
package detection

import (
	"fmt"
	"time"

	"github.com/erdos-go/erdos/internal/trace"
)

// Model is one point on the runtime-accuracy tradeoff curve.
type Model struct {
	// Name identifies the model (EDet0..EDet7).
	Name string
	// MedianRuntime is the typical inference latency on the paper's
	// hardware (2x Titan-RTX).
	MedianRuntime time.Duration
	// MAP is the COCO mean average precision reported by the
	// EfficientDet paper.
	MAP float64
}

// EfficientDet is the family used by Pylot, ordered by increasing accuracy
// and runtime. Runtimes interpolate the paper's anchors (EDet2 = 20 ms,
// EDet6 = 262 ms); mAPs are the published EfficientDet numbers.
var EfficientDet = []Model{
	{Name: "EDet0", MedianRuntime: 9 * time.Millisecond, MAP: 33.8},
	{Name: "EDet1", MedianRuntime: 13 * time.Millisecond, MAP: 39.6 - 2.7},
	{Name: "EDet2", MedianRuntime: 20 * time.Millisecond, MAP: 39.6},
	{Name: "EDet3", MedianRuntime: 42 * time.Millisecond, MAP: 43.0},
	{Name: "EDet4", MedianRuntime: 84 * time.Millisecond, MAP: 45.8},
	{Name: "EDet5", MedianRuntime: 160 * time.Millisecond, MAP: 48.6},
	{Name: "EDet6", MedianRuntime: 262 * time.Millisecond, MAP: 51.7},
	{Name: "EDet7", MedianRuntime: 360 * time.Millisecond, MAP: 52.6},
}

// ByName returns the family member with the given name.
func ByName(name string) (Model, error) {
	for _, m := range EfficientDet {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("detection: unknown model %q", name)
}

// Runtime samples one inference latency. Latency grows mildly with the
// number of agents in frame (post-processing, NMS) and carries a right
// tail, reproducing the environment-dependent runtimes of §2.2.
func (m Model) Runtime(r *trace.Rand, numAgents int) time.Duration {
	base := float64(m.MedianRuntime)
	base *= 1 + 0.015*float64(numAgents)
	return r.LogNormalDur(time.Duration(base), 0.12)
}

// Detection-range calibration from §2.1: range(mAP) interpolates the
// anchors (39.6 mAP -> 40 m, 51.7 mAP -> 72 m).
const (
	anchorLowMAP    = 39.6
	anchorLowRange  = 40.0
	anchorHighMAP   = 51.7
	anchorHighRange = 72.0
)

// Range returns the distance (meters) at which the model reliably detects
// an unoccluded pedestrian-sized object.
func (m Model) Range() float64 {
	slope := (anchorHighRange - anchorLowRange) / (anchorHighMAP - anchorLowMAP)
	d := anchorLowRange + (m.MAP-anchorLowMAP)*slope
	if d < 5 {
		d = 5
	}
	return d
}

// EffectiveRange returns the detection distance for an object with the
// given occlusion fraction in [0, 1]. Occlusion punishes low-accuracy
// models disproportionately: a partially-occluded motorcycle that EDet6
// still perceives from afar is missed by EDet2 until very close (§7.4.2).
func (m Model) EffectiveRange(occlusion float64) float64 {
	if occlusion < 0 {
		occlusion = 0
	}
	if occlusion >= 0.99 {
		return 0 // fully occluded objects are invisible to every model
	}
	if occlusion > 1 {
		occlusion = 1
	}
	// Normalized accuracy in [0,1] over the family's span.
	acc := (m.MAP - 30.0) / (55.0 - 30.0)
	if acc < 0 {
		acc = 0
	}
	if acc > 1 {
		acc = 1
	}
	// Full accuracy loses up to 35% of range at full occlusion; the least
	// accurate model loses up to 85%.
	loss := occlusion * (0.85 - 0.5*acc)
	return m.Range() * (1 - loss)
}

// BestWithin returns the most accurate family member whose median runtime
// fits within budget — the "changing the implementation" proactive strategy
// of §5.3. ok is false when even the fastest model does not fit (callers
// then run it anyway or skip, per policy).
func BestWithin(budget time.Duration) (Model, bool) {
	best := EfficientDet[0]
	ok := false
	for _, m := range EfficientDet {
		if m.MedianRuntime <= budget {
			best = m
			ok = true
		}
	}
	return best, ok
}

// BestWithinP99 is BestWithin with a conservative margin: it requires the
// model's approximate p99 runtime (1.45x median under the family's runtime
// distribution) to fit, trading accuracy for fewer deadline misses.
func BestWithinP99(budget time.Duration) (Model, bool) {
	best := EfficientDet[0]
	ok := false
	for _, m := range EfficientDet {
		if time.Duration(float64(m.MedianRuntime)*1.45) <= budget {
			best = m
			ok = true
		}
	}
	return best, ok
}

// Detection is one perceived object.
type Detection struct {
	// Distance is the range to the object in meters.
	Distance float64
	// Class labels the object ("pedestrian", "vehicle", ...).
	Class string
	// Confidence is the model's score in [0, 1].
	Confidence float64
}

// DetectProb returns the per-frame probability that the model perceives an
// object at the given distance and occlusion. Inside 60% of the effective
// range detection is certain; toward the boundary the probability decays,
// and low-accuracy models decay much faster — which is why the paper's
// fastest configuration first sees the §7.4.2 pedestrian only 12 m away
// while accurate models see them the moment they emerge.
func (m Model) DetectProb(distance, occlusion float64) float64 {
	er := m.EffectiveRange(occlusion)
	if distance <= 0 || er <= 0 {
		return 0
	}
	frac := distance / er
	if frac > 1 {
		return 0
	}
	if frac < 0.6 {
		return 1
	}
	acc := (m.MAP - 30.0) / (55.0 - 30.0)
	if acc < 0 {
		acc = 0
	}
	p := (1 - frac) / 0.4 * (0.6 + 2.4*acc)
	if p > 1 {
		p = 1
	}
	return p
}

// Detect reports whether the model perceives an object at the given
// distance and occlusion, and with what confidence. Detection is
// deterministic at 85% of effective range and degrades linearly to zero at
// the effective range boundary, with seeded noise.
func (m Model) Detect(r *trace.Rand, distance, occlusion float64) (Detection, bool) {
	er := m.EffectiveRange(occlusion)
	if distance > er {
		return Detection{}, false
	}
	margin := distance / er // 0 near, 1 at the boundary
	p := 1.0
	if margin > 0.85 {
		p = (1 - margin) / 0.15
	}
	if !r.Bernoulli(p) {
		return Detection{}, false
	}
	conf := 0.5 + 0.5*(1-margin)
	return Detection{Distance: distance, Class: "object", Confidence: conf}, true
}
