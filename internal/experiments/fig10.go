package experiments

import (
	"fmt"
	"sync"
	"time"

	"github.com/erdos-go/erdos/internal/baselines"
	"github.com/erdos-go/erdos/internal/core/deadline"
	"github.com/erdos-go/erdos/internal/metrics"
	"github.com/erdos-go/erdos/internal/pipeline"
	"github.com/erdos-go/erdos/internal/sim"
)

// Fig10LeftResult compares deadline-exception-handler invocation delay:
// ERDOS' timer-driven priority queue vs a ROS-actionlib-style polling
// monitor (Fig. 10 left; the paper reports 0.1 ms vs ~0.5 ms).
type Fig10LeftResult struct {
	ErdosMedian, ErdosP99         time.Duration
	ActionlibMedian, ActionlibP99 time.Duration
	Speedup                       float64
	Samples                       int
}

// Fig10HandlerDelay measures both mechanisms on the wall clock.
func Fig10HandlerDelay(samples int) Fig10LeftResult {
	if samples <= 0 {
		samples = 200
	}
	res := Fig10LeftResult{Samples: samples}

	// ERDOS: single-timer monitor over the armed-deadline heap.
	mon := deadline.NewMonitor(deadline.Real{})
	es := metrics.NewSample()
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := make(chan time.Time, 1)
	for i := 0; i < samples; i++ {
		_, expiry := mon.Arm(2*time.Millisecond, func(at time.Time) { fired <- at })
		at := <-fired
		d := at.Sub(expiry)
		if d < 0 {
			d = 0
		}
		es.Add(d)
	}
	mon.Stop()
	res.ErdosMedian, res.ErdosP99 = es.Median(), es.P99()

	// Actionlib-style polling enforcement at an aggressive 250 Hz monitor
	// rate (most deployments poll far slower).
	al := baselines.NewActionlib(4 * time.Millisecond)
	as := metrics.NewSample()
	for i := 0; i < samples; i++ {
		wg.Add(1)
		al.Arm(2*time.Millisecond, func(d time.Duration) {
			if d < 0 {
				d = 0
			}
			mu.Lock()
			as.Add(d)
			mu.Unlock()
			wg.Done()
		})
		time.Sleep(3 * time.Millisecond)
	}
	wg.Wait()
	al.Stop()
	res.ActionlibMedian, res.ActionlibP99 = as.Median(), as.P99()
	if res.ErdosMedian > 0 {
		res.Speedup = float64(res.ActionlibMedian) / float64(res.ErdosMedian)
	}
	return res
}

// Render prints the Fig. 10 left comparison.
func (r Fig10LeftResult) Render() string {
	t := metrics.NewTable("mechanism", "median delay", "p99 delay")
	t.Row("erdos (timer + deadline queue)", r.ErdosMedian, r.ErdosP99)
	t.Row("ros actionlib (polling)", r.ActionlibMedian, r.ActionlibP99)
	t.Row("speedup", fmt.Sprintf("%.1fx (paper: 5x)", r.Speedup), "")
	return t.String()
}

// Fig10RightResult compares the pipeline's end-to-end deadline behaviour
// with and without deadline exception handlers over the challenge drive
// (Fig. 10 right): without DEH the data-driven execution occasionally
// overruns the end-to-end deadline; with DEH the deadline is always met.
type Fig10RightResult struct {
	Deadline                  time.Duration
	WithoutMissRatio          float64
	WithMissRatio             float64
	WithoutP99, WithP99       time.Duration
	WithoutMedian, WithMedian time.Duration
	Frames                    int
}

// Fig10DEHEffect replays the drive under both settings.
func Fig10DEHEffect(seed int64, km float64) Fig10RightResult {
	const d = 200 * time.Millisecond
	suite := sim.ChallengeSuite(seed, km)
	res := Fig10RightResult{Deadline: d}

	// Without DEH: data-driven execution of the same configuration; an
	// "end-to-end deadline miss" is a frame whose response exceeds d.
	without := sim.RunSuite(pipeline.StaticConfig(pipeline.DataDriven, d), suite, 1)
	ws := metrics.NewSample()
	misses := 0
	for _, sec := range without.Responses {
		rt := time.Duration(sec * float64(time.Second))
		ws.Add(rt)
		if rt > d {
			misses++
		}
	}
	res.WithoutMissRatio = float64(misses) / float64(len(without.Responses))
	res.WithoutMedian, res.WithoutP99 = ws.Median(), ws.P99()

	// With DEH: the D3 static execution bounds every response at d.
	with := sim.RunSuite(pipeline.StaticConfig(pipeline.D3Static, d), suite, 1)
	hs := metrics.NewSample()
	misses = 0
	for _, sec := range with.Responses {
		rt := time.Duration(sec * float64(time.Second))
		hs.Add(rt)
		if rt > d {
			misses++
		}
	}
	res.WithMissRatio = float64(misses) / float64(len(with.Responses))
	res.WithMedian, res.WithP99 = hs.Median(), hs.P99()
	res.Frames = len(with.Responses)
	return res
}

// Render prints the Fig. 10 right comparison.
func (r Fig10RightResult) Render() string {
	t := metrics.NewTable("setting", "median", "p99", "e2e deadline misses")
	t.Row("without DEH (data-driven)", r.WithoutMedian, r.WithoutP99,
		fmt.Sprintf("%.2f%% (paper: 0.6%%)", r.WithoutMissRatio*100))
	t.Row("with DEH (D3)", r.WithMedian, r.WithP99,
		fmt.Sprintf("%.2f%% (paper: 0%%)", r.WithMissRatio*100))
	return t.String()
}
