package experiments

import (
	"fmt"
	"time"

	"github.com/erdos-go/erdos/internal/metrics"
	"github.com/erdos-go/erdos/internal/pipeline"
	"github.com/erdos-go/erdos/internal/policy"
	"github.com/erdos-go/erdos/internal/sim"
)

// Fig11Result reports collisions over the 50 km challenge drive under the
// four execution models (Fig. 11), using the best static configuration.
type Fig11Result struct {
	Periodic, DataDriven, BestStatic, Dynamic int
	BestStaticDeadline                        time.Duration
	PerStatic                                 map[time.Duration]int
	// ReductionVsPeriodic is the headline number (paper: 68%).
	ReductionVsPeriodic float64
}

// Fig11Collisions runs the suite under every execution model.
func Fig11Collisions(seed int64, km float64) Fig11Result {
	suite := sim.ChallengeSuite(seed, km)
	res := Fig11Result{PerStatic: map[time.Duration]int{}}
	res.Periodic = sim.RunSuite(pipeline.StaticConfig(pipeline.Periodic, 200*time.Millisecond), suite, 1).Collisions
	res.DataDriven = sim.RunSuite(pipeline.StaticConfig(pipeline.DataDriven, 200*time.Millisecond), suite, 1).Collisions
	res.Dynamic = sim.RunSuite(pipeline.DynamicConfig(), suite, 1).Collisions
	res.BestStatic = 1 << 30
	for _, d := range policy.StaticConfigs {
		c := sim.RunSuite(pipeline.StaticConfig(pipeline.D3Static, d), suite, 1).Collisions
		res.PerStatic[d] = c
		if c < res.BestStatic {
			res.BestStatic, res.BestStaticDeadline = c, d
		}
	}
	if res.Periodic > 0 {
		res.ReductionVsPeriodic = 1 - float64(res.Dynamic)/float64(res.Periodic)
	}
	return res
}

// Render prints the Fig. 11 bars.
func (r Fig11Result) Render() string {
	t := metrics.NewTable("execution model", "collisions", "vs periodic")
	row := func(name string, c int) {
		factor := "-"
		if c > 0 {
			factor = fmt.Sprintf("%.1fx", float64(r.Periodic)/float64(c))
		}
		t.Row(name, c, factor)
	}
	row("periodic (WCET)", r.Periodic)
	row("data-driven", r.DataDriven)
	row(fmt.Sprintf("d3 static (%v)", r.BestStaticDeadline), r.BestStatic)
	row("d3 dynamic", r.Dynamic)
	t.Row("collision reduction", fmt.Sprintf("%.0f%%", r.ReductionVsPeriodic*100), "(paper: 68%)")
	return t.String()
}

// Fig12Result is the response-time histogram, static vs dynamic (Fig. 12).
type Fig12Result struct {
	Static, Dynamic    *metrics.Histogram
	StaticMed, DynMed  time.Duration
	StaticP99, DynP99  time.Duration
	StaticDeadline     time.Duration
	DynFastShare       float64 // fraction of frames faster than 300 ms
	StaticFastShare    float64
	StaticN, DynN      int
	DynamicMinDeadline time.Duration
	DynamicMaxDeadline time.Duration
}

// Fig12ResponseHistogram collects per-frame responses over the drive for
// the best static configuration and the dynamic policy.
func Fig12ResponseHistogram(seed int64, km float64, bestStatic time.Duration) Fig12Result {
	suite := sim.ChallengeSuite(seed, km)
	stat := sim.RunSuite(pipeline.StaticConfig(pipeline.D3Static, bestStatic), suite, 1)
	dyn := sim.RunSuite(pipeline.DynamicConfig(), suite, 1)
	res := Fig12Result{
		Static:         metrics.NewHistogram(25 * time.Millisecond),
		Dynamic:        metrics.NewHistogram(25 * time.Millisecond),
		StaticDeadline: bestStatic,
	}
	ss, ds := metrics.NewSample(), metrics.NewSample()
	fast := 0
	for _, sec := range stat.Responses {
		d := time.Duration(sec * float64(time.Second))
		res.Static.Add(d)
		ss.Add(d)
		if d < 300*time.Millisecond {
			fast++
		}
	}
	res.StaticFastShare = float64(fast) / float64(len(stat.Responses))
	fast = 0
	for _, sec := range dyn.Responses {
		d := time.Duration(sec * float64(time.Second))
		res.Dynamic.Add(d)
		ds.Add(d)
		if d < 300*time.Millisecond {
			fast++
		}
	}
	res.DynFastShare = float64(fast) / float64(len(dyn.Responses))
	res.StaticMed, res.DynMed = ss.Median(), ds.Median()
	res.StaticP99, res.DynP99 = ss.P99(), ds.P99()
	res.StaticN, res.DynN = ss.Len(), ds.Len()
	return res
}

// Render prints both histograms side by side.
func (r Fig12Result) Render() string {
	t := metrics.NewTable("bin start", "static freq", "dynamic freq")
	sBins := map[time.Duration]float64{}
	for _, b := range r.Static.Bins() {
		sBins[b.Start] = b.Freq
	}
	dBins := map[time.Duration]float64{}
	for _, b := range r.Dynamic.Bins() {
		dBins[b.Start] = b.Freq
	}
	for start := time.Duration(0); start <= 550*time.Millisecond; start += 25 * time.Millisecond {
		t.Row(start, fmt.Sprintf("%.3f", sBins[start]), fmt.Sprintf("%.3f", dBins[start]))
	}
	t.Row("median", r.StaticMed, r.DynMed)
	t.Row("share under 300ms", fmt.Sprintf("%.0f%%", r.StaticFastShare*100), fmt.Sprintf("%.0f%%", r.DynFastShare*100))
	return t.String()
}

// Fig13Result is the §7.4.2 scenario grid.
type Fig13Result struct {
	PersonBehindTruck []sim.GridCell
	TrafficJam        []sim.GridCell
	PBTSpeeds         []float64
	JamSpeeds         []float64
}

// Fig13ScenarioGrid evaluates both scenarios across speeds and
// configurations.
func Fig13ScenarioGrid(seed int64) Fig13Result {
	return Fig13Result{
		PersonBehindTruck: sim.ScenarioGrid(sim.PersonBehindTruck, []float64{11, 12, 13}, seed),
		TrafficJam:        sim.ScenarioGrid(sim.TrafficJam, []float64{8, 10, 12}, seed),
		PBTSpeeds:         []float64{11, 12, 13},
		JamSpeeds:         []float64{8, 10, 12},
	}
}

// Render prints the two grids in the paper's layout (collision speed in
// m/s; 0 denotes an avoided collision).
func (r Fig13Result) Render() string {
	out := "Person Behind Truck (driving speed m/s ->)\n"
	out += renderGrid(r.PersonBehindTruck, r.PBTSpeeds)
	out += "Traffic Jam (driving speed m/s ->)\n"
	out += renderGrid(r.TrafficJam, r.JamSpeeds)
	return out
}

func renderGrid(cells []sim.GridCell, speeds []float64) string {
	t := headerForSpeeds(speeds)
	byDeadline := map[time.Duration][]sim.GridCell{}
	var order []time.Duration
	for _, c := range cells {
		if _, ok := byDeadline[c.Deadline]; !ok {
			order = append(order, c.Deadline)
		}
		byDeadline[c.Deadline] = append(byDeadline[c.Deadline], c)
	}
	for _, d := range order {
		label := "D3"
		if d > 0 {
			label = d.String()
		}
		cellsAny := []any{label}
		for _, c := range byDeadline[d] {
			if c.CollisionSpeed > 0 {
				cellsAny = append(cellsAny, fmt.Sprintf("%.1f", c.CollisionSpeed))
			} else {
				cellsAny = append(cellsAny, fmt.Sprintf("0 (%s)", c.Avoided))
			}
		}
		t.Row(cellsAny...)
	}
	return t.String()
}

func headerForSpeeds(speeds []float64) *metrics.Table {
	hdr := []string{"deadline"}
	for _, v := range speeds {
		hdr = append(hdr, fmt.Sprintf("%.0f m/s", v))
	}
	return metrics.NewTable(hdr...)
}

// Fig14Result is one person-behind-truck encounter's timeline under the
// dynamic policy (Fig. 14): the response time drops once the person becomes
// visible and the policy tightens the deadline.
type Fig14Result struct {
	FrameTimes []time.Duration
	Responses  []time.Duration
	Deadlines  []time.Duration
	Detectors  []string
	Outcome    sim.Outcome
}

// Fig14AdaptTimeline runs the encounter and extracts the timeline.
func Fig14AdaptTimeline(seed int64) Fig14Result {
	cfg := pipeline.DynamicConfig()
	out := sim.RunEncounter(pipeline.New(cfg, seed), sim.PersonBehindTruck(12), seed)
	res := Fig14Result{Outcome: out}
	for i := range out.Responses {
		res.FrameTimes = append(res.FrameTimes, time.Duration(i)*cfg.SensorPeriod)
		res.Responses = append(res.Responses, out.Responses[i])
		res.Deadlines = append(res.Deadlines, out.Deadlines[i])
		res.Detectors = append(res.Detectors, out.Detectors[i])
	}
	return res
}

// Render prints the timeline.
func (r Fig14Result) Render() string {
	t := metrics.NewTable("t", "deadline", "response", "detector")
	for i := range r.FrameTimes {
		t.Row(r.FrameTimes[i], r.Deadlines[i], r.Responses[i], r.Detectors[i])
	}
	out := t.String()
	if r.Outcome.Collided {
		out += fmt.Sprintf("outcome: collision at %.1f m/s\n", r.Outcome.CollisionSpeed)
	} else {
		out += fmt.Sprintf("outcome: avoided (%s)\n", r.Outcome.Avoided)
	}
	return out
}
