// End-to-end scheduling benchmarks, recorded to BENCH_e2e.json by
// `erdos-bench -bench e2e`. Two measurements matter for the deadline-aware
// scheduler: the Fig. 8c sensor-scaling trajectory (did end-to-end response
// regress while the dispatch path grew richer?) and the urgency-inversion
// profile (how long does a short-deadline control callback queue behind a
// slack-rich perception backlog under FIFO versus EDF dispatch?).
package experiments

import (
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"github.com/erdos-go/erdos/internal/core/lattice"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// UrgencyInversionResult compares control-callback queueing delay under
// FIFO (the pre-EDF run queues: logical-time order, deadline-blind) and EDF
// dispatch on an identical saturated single-worker lattice.
type UrgencyInversionResult struct {
	Rounds     int     `json:"rounds"`
	Backlog    int     `json:"backlog"`
	FifoP50Ms  float64 `json:"fifo_p50_ms"`
	FifoP99Ms  float64 `json:"fifo_p99_ms"`
	EdfP50Ms   float64 `json:"edf_p50_ms"`
	EdfP99Ms   float64 `json:"edf_p99_ms"`
	P99Speedup float64 `json:"p99_speedup"`
}

// inversionBacklog is how many slack-rich "perception" callbacks sit ahead
// of the control callback, and inversionWork how long each one computes.
// 24 x 100us matches the shape of a loaded AV pipeline tick: a few
// milliseconds of queued perception work in front of a reflex deadline.
const (
	inversionBacklog = 24
	inversionWork    = 100 * time.Microsecond
)

// UrgencyInversion measures both dispatch disciplines over `rounds`
// saturated scheduling rounds each.
func UrgencyInversion(rounds int) UrgencyInversionResult {
	if rounds <= 0 {
		rounds = 200
	}
	fifo := measureInversion(false, rounds)
	edf := measureInversion(true, rounds)
	res := UrgencyInversionResult{
		Rounds:    rounds,
		Backlog:   inversionBacklog,
		FifoP50Ms: percentileMs(fifo, 50),
		FifoP99Ms: percentileMs(fifo, 99),
		EdfP50Ms:  percentileMs(edf, 50),
		EdfP99Ms:  percentileMs(edf, 99),
	}
	if res.EdfP99Ms > 0 {
		res.P99Speedup = res.FifoP99Ms / res.EdfP99Ms
	}
	return res
}

// measureInversion runs one discipline: pin the single pool goroutine,
// queue the perception backlog at early logical times, then submit a
// control callback at a later logical time and record how long it waits
// for dispatch once the pool is released. Under FIFO every submission is
// deadline-blind, so the control callback drains last; under EDF the
// perception backlog carries distant deadlines and the control callback a
// near one, so it overtakes the backlog.
func measureInversion(edf bool, rounds int) []time.Duration {
	delays := make([]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		l := lattice.New(1)
		gate := make(chan struct{})
		var pinned atomic.Bool
		blocker := l.NewOpQueue(lattice.ModeSequential)
		l.SubmitDeadline(blocker, lattice.KindMessage, timestamp.New(1), lattice.NoDeadline, func() {
			pinned.Store(true)
			<-gate
		})
		for !pinned.Load() {
			runtime.Gosched()
		}

		work := func() {
			t0 := time.Now()
			for time.Since(t0) < inversionWork {
			}
		}
		for i := 0; i < inversionBacklog; i++ {
			q := l.NewOpQueue(lattice.ModeSequential)
			ts := timestamp.New(uint64(i + 1))
			if edf {
				// Distant deadline: lots of slack.
				l.SubmitDeadline(q, lattice.KindMessage, ts, 1_000_000_000, work)
			} else {
				//erdos:allow deadlinehint models the pre-EDF deadline-blind run queue
				l.Submit(q, lattice.KindMessage, ts, work)
			}
		}

		ctrlDone := make(chan time.Duration, 1)
		var start time.Time
		record := func() { ctrlDone <- time.Since(start) }
		ctrl := l.NewOpQueue(lattice.ModeSequential)
		ctrlTs := timestamp.New(uint64(inversionBacklog + 10))
		if edf {
			// Near deadline: the reflex path.
			l.SubmitDeadline(ctrl, lattice.KindMessage, ctrlTs, 1_000, record)
		} else {
			//erdos:allow deadlinehint models the pre-EDF deadline-blind run queue
			l.Submit(ctrl, lattice.KindMessage, ctrlTs, record)
		}

		start = time.Now()
		close(gate)
		delays = append(delays, <-ctrlDone)
		l.Quiesce()
		l.Stop()
	}
	return delays
}

// percentileMs returns the p-th percentile of ds in milliseconds.
func percentileMs(ds []time.Duration, p int) float64 {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return float64(s[idx].Nanoseconds()) / 1e6
}
