// Package experiments regenerates every figure of the paper's evaluation:
// each FigN function runs the corresponding workload and returns a result
// that renders the same rows/series the paper reports. cmd/figures and the
// root bench_test.go are thin wrappers over this package.
package experiments

import (
	"fmt"
	"time"

	"github.com/erdos-go/erdos/internal/av/detection"
	"github.com/erdos-go/erdos/internal/av/planning"
	"github.com/erdos-go/erdos/internal/av/prediction"
	"github.com/erdos-go/erdos/internal/av/tracking"
	"github.com/erdos-go/erdos/internal/metrics"
	"github.com/erdos-go/erdos/internal/trace"
)

// Fig2aResult reports, per scenario and 2-second interval, the detector
// with the best latency-adjusted accuracy (Fig. 2a: "no silver bullet" —
// the optimum varies both within and across scenarios).
type Fig2aResult struct {
	Scenarios int
	Intervals int
	// Best[s][i] is the best detector's name in scenario s, interval i.
	Best [][]string
	// Distinct counts how many different detectors are optimal somewhere.
	Distinct int
}

// Fig2aDetectorChoice evaluates the EfficientDet family over 12 synthetic
// driving scenarios split into 2 s intervals. The latency-adjusted accuracy
// follows the streaming-perception metric the paper cites: a detector's
// useful accuracy degrades with its response time scaled by how fast the
// scene changes (ego speed, agent dynamism).
func Fig2aDetectorChoice(seed int64) Fig2aResult {
	r := trace.New(seed)
	const scenarios = 12
	const intervals = 15 // 30 s / 2 s
	res := Fig2aResult{Scenarios: scenarios, Intervals: intervals}
	seen := map[string]bool{}
	for s := 0; s < scenarios; s++ {
		// Scenario character: urban scenarios are slow but dense; highway
		// scenarios are fast but sparse.
		urban := s%2 == 0
		var row []string
		for i := 0; i < intervals; i++ {
			var speed, density float64
			if urban {
				speed = r.Uniform(0, 12) // includes stop-and-go traffic
				density = r.Uniform(0, 14)
			} else {
				speed = r.Uniform(15, 30)
				density = r.Uniform(0, 5)
			}
			// Scene dynamism: how stale a slow detection becomes.
			dynamism := speed/30 + density/28 + r.Uniform(0, 0.1)
			best, bestU := "", -1e18
			for _, m := range detection.EfficientDet {
				latencyMS := float64(m.MedianRuntime) / float64(time.Millisecond)
				u := m.MAP - dynamism*latencyMS*0.12
				if u > bestU {
					bestU, best = u, m.Name
				}
			}
			row = append(row, best)
			seen[best] = true
		}
		res.Best = append(res.Best, row)
	}
	res.Distinct = len(seen)
	return res
}

// Render prints the per-interval optimum, one scenario per row.
func (r Fig2aResult) Render() string {
	t := metrics.NewTable("scenario", "per-2s-interval optimum (first 8 intervals)")
	for s, row := range r.Best {
		line := ""
		for i, b := range row {
			if i == 8 {
				break
			}
			if i > 0 {
				line += " "
			}
			line += b
		}
		t.Row(fmt.Sprintf("S%02d", s+1), line)
	}
	t.Row("distinct optima", fmt.Sprintf("%d models", r.Distinct))
	return t.String()
}

// Fig2bResult is the tracker runtime vs agent-count matrix (Fig. 2b).
type Fig2bResult struct {
	Agents   []int
	Trackers []string
	// MedianMS[t][a] is tracker t's median runtime at Agents[a].
	MedianMS [][]float64
}

// Fig2bTrackerRuntime sweeps the trackers over 1-10 agents.
func Fig2bTrackerRuntime(seed int64) Fig2bResult {
	res := Fig2bResult{Agents: []int{1, 4, 7, 10}}
	for _, m := range tracking.All {
		res.Trackers = append(res.Trackers, m.Name)
		var row []float64
		for _, n := range res.Agents {
			r := trace.New(seed)
			s := metrics.NewSample()
			for i := 0; i < 300; i++ {
				s.Add(m.Runtime(r, n))
			}
			row = append(row, float64(s.Median())/float64(time.Millisecond))
		}
		res.MedianMS = append(res.MedianMS, row)
	}
	return res
}

// Render prints the Fig. 2b series.
func (r Fig2bResult) Render() string {
	t := metrics.NewTable("tracker", "1 agent", "4 agents", "7 agents", "10 agents")
	for i, name := range r.Trackers {
		t.Row(name,
			fmt.Sprintf("%.1fms", r.MedianMS[i][0]),
			fmt.Sprintf("%.1fms", r.MedianMS[i][1]),
			fmt.Sprintf("%.1fms", r.MedianMS[i][2]),
			fmt.Sprintf("%.1fms", r.MedianMS[i][3]))
	}
	return t.String()
}

// Fig2cResult is the prediction runtime vs horizon matrix (Fig. 2c).
type Fig2cResult struct {
	Horizons   []time.Duration
	Predictors []string
	MedianMS   [][]float64
}

// Fig2cPredictionHorizon sweeps MFP and R2P2-MA over 1-5 s horizons.
func Fig2cPredictionHorizon(seed int64) Fig2cResult {
	res := Fig2cResult{}
	for h := 1; h <= 5; h++ {
		res.Horizons = append(res.Horizons, time.Duration(h)*time.Second)
	}
	for _, m := range []prediction.Model{prediction.MFP, prediction.R2P2MA} {
		res.Predictors = append(res.Predictors, m.Name)
		var row []float64
		for _, h := range res.Horizons {
			r := trace.New(seed)
			s := metrics.NewSample()
			for i := 0; i < 300; i++ {
				s.Add(m.Runtime(r, h, 10))
			}
			row = append(row, float64(s.Median())/float64(time.Millisecond))
		}
		res.MedianMS = append(res.MedianMS, row)
	}
	return res
}

// Render prints the Fig. 2c series.
func (r Fig2cResult) Render() string {
	t := metrics.NewTable("predictor", "1s", "2s", "3s", "4s", "5s")
	for i, name := range r.Predictors {
		cells := make([]any, 0, 6)
		cells = append(cells, name)
		for _, v := range r.MedianMS[i] {
			cells = append(cells, fmt.Sprintf("%.0fms", v))
		}
		t.Row(cells...)
	}
	return t.String()
}

// Fig2dResult maps planner configurations to ride comfort (Fig. 2d): each
// configuration is a space/time discretization (the paper varies the space
// discretization from 0.7 m down to 0.3 m), run to completion; its runtime
// is the modeled evaluation cost of its candidate grid.
type Fig2dResult struct {
	// Runtimes are the modeled planning runtimes per configuration.
	Runtimes []time.Duration
	// MaxJerk is the best trajectory's maximum lateral jerk per config.
	MaxJerk []float64
	// Candidates evaluated by each configuration.
	Candidates []int
	// Steps labels the lateral discretization of each configuration.
	Steps []float64
}

// Fig2dPlanningComfort runs three FOT discretizations on a swerve scene:
// configurations with longer runtimes (finer discretization) produce lower
// lateral jerk and therefore more comfortable rides.
func Fig2dPlanningComfort() Fig2dResult {
	var res Fig2dResult
	// A tight swerve: the obstacle is close enough that the maneuver must
	// complete quickly, so the feasible region is narrow and coarse grids
	// only find high-jerk escapes.
	cfg := planning.DefaultConfig()
	st := planning.VehicleState{Speed: 14}
	obs := []planning.Obstacle{{X: 12, Y: 0, Radius: 1.0}}
	for _, level := range []int{1, 2, 3} {
		p := planning.NewPlanner(cfg, st, obs, level)
		for p.Step(4096) > 0 {
		}
		tr, _ := p.Best()
		res.MaxJerk = append(res.MaxJerk, tr.MaxJerk)
		res.Candidates = append(res.Candidates, p.Evaluated())
		res.Runtimes = append(res.Runtimes, time.Duration(p.Evaluated())*planning.PerCandidateCost)
		res.Steps = append(res.Steps, cfg.LateralStep/float64(int(1)<<level))
	}
	return res
}

// Render prints the Fig. 2d series.
func (r Fig2dResult) Render() string {
	t := metrics.NewTable("planning runtime", "lateral step", "abs lateral jerk [m/s^3]", "candidates")
	for i, rt := range r.Runtimes {
		t.Row(rt, fmt.Sprintf("%.2fm", r.Steps[i]), fmt.Sprintf("%.1f", r.MaxJerk[i]), r.Candidates[i])
	}
	return t.String()
}
