// Fleet demo driven by `av-sim -fleet N`: N pylot tenants hosted on an
// elastic two-worker cluster backed by an in-process autoscaling pool.
// Tenant t0 runs under an unmeetable 1ms static deadline with bursty
// ingest — the overloaded tenant — while the rest run the default dynamic
// policy at a steady cadence. One run walks the whole elastic story:
// multi-tenant admission, congestion-driven scale-up, live migration of
// the hot tenant onto the spawned worker, and deadline isolation (urgency
// misses stay confined to t0).
package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/erdos-go/erdos/internal/core/cluster"
	"github.com/erdos-go/erdos/internal/core/cluster/elastic"
	"github.com/erdos-go/erdos/internal/core/erdos"
	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/worker"
	"github.com/erdos-go/erdos/internal/policy"
	"github.com/erdos-go/erdos/internal/pylot"
)

// FleetReport summarizes one elastic fleet run for cmd/av-sim.
type FleetReport struct {
	// Tenants is the number of pipelines hosted (first one overloaded).
	Tenants int
	// Workers is the final member set, autoscaled workers included.
	Workers []string
	// ScaleUps / Migrations / Joins / Drains count the elastic events the
	// leader recorded over the run.
	ScaleUps   int
	Migrations int
	Joins      int
	Drains     int
	// TenantMisses is the leader's per-tenant urgency-miss ledger; with
	// isolation working, only the overloaded tenant's entry is non-zero.
	TenantMisses map[string]uint64
	// ControlP50Ms / ControlP99Ms pool camera-to-command latency across
	// the healthy tenants only — the number overload must not inflate.
	ControlP50Ms float64
	ControlP99Ms float64
}

// Fleet-run shape: the hot tenant's burst pattern queues frames against a
// 1ms deadline without saturating the CPU, so urgency misses (and the
// congestion scores they feed) come from queueing delay, not starvation.
const (
	fleetHotFrames  = 240
	fleetWarmFrames = 20
	fleetFrames     = 60
)

// RunFleet hosts n pylot tenants (n >= 2) on an elastic cluster and
// drives them to completion, returning the run's elastic-event counts,
// per-tenant misses, and healthy-tenant latency percentiles.
func RunFleet(n int) (FleetReport, error) {
	rep := FleetReport{Tenants: n}
	if n < 2 {
		return rep, fmt.Errorf("fleet needs at least 2 tenants (1 hot + 1 healthy), got %d", n)
	}

	// Base graph every worker boots with; tenants arrive via Submit.
	base := erdos.NewGraph()
	baseIn := erdos.IngestStream[int](base, "base-in")
	noop := base.Operator("base-noop")
	erdos.Input(noop, baseIn, func(ctx *erdos.Context, ts erdos.Timestamp, v int) {})
	noop.Build()
	if err := base.Err(); err != nil {
		return rep, err
	}
	baseRaw := base.Raw()
	var baseID stream.ID
	for _, s := range baseRaw.Streams() {
		if s.Name == "base-in" {
			baseID = s.ID
		}
	}

	var mu sync.Mutex
	lats := make([]time.Duration, 0, (n-1)*fleetFrames)
	sent := make([][]time.Time, n)
	var hotSeen atomic.Int64
	type rig struct {
		name string
		raw  *graph.Graph
		cam  stream.ID
	}
	rigs := make([]rig, n)
	registry := make(map[string]*graph.Graph, n)
	for i := 0; i < n; i++ {
		i := i
		prefix := fmt.Sprintf("t%d-", i)
		cfg := pylot.Config{Prefix: prefix, TimeScale: 200, TargetSpeed: 12, Seed: int64(17 + i)}
		frames := fleetFrames
		if i == 0 {
			// The overloaded tenant: a pipeline fast enough (~0.5ms per
			// frame) that bursts queue behind each other, against a static
			// deadline no queued frame can meet.
			cfg.TimeScale = 40
			cfg.Policy = policy.StaticPolicy(time.Millisecond)
			cfg.Seed = 7
			frames = fleetHotFrames
		}
		sent[i] = make([]time.Time, frames)
		g := erdos.NewGraph()
		h := pylot.Build(g, cfg)
		sink := g.Operator(prefix + "sink")
		erdos.Input(sink, h.Commands, func(ctx *erdos.Context, ts erdos.Timestamp, c pylot.Command) {})
		sink.OnWatermark(func(ctx *erdos.Context) {
			l := ctx.Timestamp.L
			if l < 1 || l > uint64(frames) {
				return
			}
			if i == 0 {
				hotSeen.Add(1)
				return
			}
			lat := time.Since(sent[i][l-1]) //erdos:allow wallclock wall-clock camera-to-command latency IS the measurement; the harness sink is never replayed
			mu.Lock()
			lats = append(lats, lat) //erdos:allow statetxn lats is harness output read after the cluster quiesces, not operator state that restores
			mu.Unlock()
		})
		sink.Build()
		if err := g.Err(); err != nil {
			return rep, err
		}
		raw := g.Raw()
		r := rig{name: fmt.Sprintf("t%d", i), raw: raw}
		for _, s := range raw.Streams() {
			if s.Name == prefix+"camera" {
				r.cam = s.ID
			}
		}
		rigs[i] = r
		registry[r.name] = raw
	}
	resolve := func(name string) *graph.Graph { return registry[name] }

	pool := &cluster.ProcPool{
		Graph:    baseRaw,
		Opts:     worker.Options{Threads: 4},
		JoinOpts: []cluster.JoinOption{cluster.WithTenantResolver(resolve)},
	}
	defer pool.Close()
	names := []string{"w1", "w2"}
	l, err := cluster.NewLeader("127.0.0.1:0", names, baseRaw,
		map[stream.ID]string{baseID: "w1"}, nil,
		cluster.WithHeartbeat(200*time.Millisecond, 300*time.Millisecond),
		cluster.WithAutoscale(pool, elastic.Config{
			HighWater: 100, LowWater: 0,
			SustainTicks: 2, CooldownTicks: 8,
			MinWorkers: 2, MaxWorkers: 3,
		}))
	if err != nil {
		return rep, err
	}
	defer l.Stop()
	pool.Addr = l.Addr()

	// The leader releases schedules only once every expected worker has
	// registered, so the initial joins must run concurrently.
	nodes := make(map[string]*cluster.Node, len(names))
	joined := make([]*cluster.Node, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			joined[i], errs[i] = cluster.Join(l.Addr(), name, baseRaw,
				worker.Options{Threads: 4}, cluster.WithTenantResolver(resolve))
		}(i, name)
	}
	wg.Wait()
	for i, name := range names {
		if errs[i] != nil {
			return rep, errs[i]
		}
		defer joined[i].Close()
		nodes[name] = joined[i]
	}
	if err := l.Wait(); err != nil {
		return rep, err
	}

	// Submit a healthy tenant first to learn its home, then ingest the hot
	// tenant there: its frames always cross a forwarding link, whose
	// replay ring covers them through the scale-up migration.
	if err := l.Submit(cluster.Tenant{Name: rigs[1].name, Graph: rigs[1].raw}); err != nil {
		return rep, err
	}
	anyNode := nodes[names[0]]
	homeHealthy := anyNode.Schedule().Assignments["t1-control"]
	if err := l.Submit(cluster.Tenant{Name: rigs[0].name, Graph: rigs[0].raw,
		IngestAt: map[stream.ID]string{rigs[0].cam: homeHealthy}}); err != nil {
		return rep, err
	}
	for i := 2; i < n; i++ {
		if err := l.Submit(cluster.Tenant{Name: rigs[i].name, Graph: rigs[i].raw}); err != nil {
			return rep, err
		}
	}
	inj := make([]*cluster.Node, n)
	inj[0] = nodes[homeHealthy]
	for i := 1; i < n; i++ {
		home := anyNode.Schedule().Assignments[fmt.Sprintf("t%d-control", i)]
		node := nodes[home]
		if node == nil {
			return rep, fmt.Errorf("tenant %s homed on unknown worker %q", rigs[i].name, home)
		}
		inj[i] = node
	}

	push := func(i, f int) error {
		ts := erdos.T(uint64(f))
		frame := pylot.CameraFrame{Seq: uint64(f), EgoSpeed: 12}
		if i != 0 {
			mu.Lock()
			sent[i][f-1] = time.Now()
			mu.Unlock()
		}
		if err := inj[i].Worker.Inject(rigs[i].cam, message.Data(ts, frame)); err != nil {
			return err
		}
		return inj[i].Worker.Inject(rigs[i].cam, message.Watermark(ts))
	}

	injErrs := make([]error, 2)
	var injWg sync.WaitGroup
	injWg.Add(2)
	go func() {
		// Hot tenant: a warm-up at steady cadence, then back-to-back
		// bursts of 8 — tail frames dispatch more than 1ms after arrival,
		// missing the static deadline at ~10% CPU.
		defer injWg.Done()
		for f := 1; f <= fleetHotFrames; f++ {
			if err := push(0, f); err != nil {
				injErrs[0] = err
				return
			}
			if f <= fleetWarmFrames {
				time.Sleep(20 * time.Millisecond)
			} else if f%8 == 0 {
				time.Sleep(50 * time.Millisecond)
			}
		}
	}()
	go func() {
		defer injWg.Done()
		for f := 1; f <= fleetFrames; f++ {
			for i := 1; i < n; i++ {
				if err := push(i, f); err != nil {
					injErrs[1] = err
					return
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()
	injWg.Wait()
	for _, err := range injErrs {
		if err != nil {
			return rep, err
		}
	}

	deadline := time.Now().Add(90 * time.Second)
	want := (n - 1) * fleetFrames
	for {
		mu.Lock()
		got := len(lats)
		mu.Unlock()
		if got >= want && hotSeen.Load() >= fleetHotFrames {
			break
		}
		if time.Now().After(deadline) {
			return rep, fmt.Errorf("timed out with %d/%d healthy commands, %d/%d hot",
				got, want, hotSeen.Load(), fleetHotFrames)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Give an in-flight scale-up migration a moment to land so the report
	// reflects it; a run whose congestion never tripped proceeds at once.
	settle := time.Now().Add(10 * time.Second)
	for time.Now().Before(settle) {
		migrated := false
		for _, e := range l.Events() {
			if e.Kind == cluster.EventMigrated {
				migrated = true
			}
		}
		if migrated {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	for _, e := range l.Events() {
		switch e.Kind {
		case cluster.EventScaleUp:
			rep.ScaleUps++
		case cluster.EventMigrated:
			rep.Migrations++
		case cluster.EventJoined:
			rep.Joins++
		case cluster.EventDrained:
			rep.Drains++
		}
	}
	rep.Workers = l.Members()
	rep.TenantMisses = l.TenantMisses()
	mu.Lock()
	rep.ControlP50Ms = percentileMs(lats, 50)
	rep.ControlP99Ms = percentileMs(lats, 99)
	mu.Unlock()
	return rep, nil
}
