package experiments

import (
	"fmt"
	"time"

	"github.com/erdos-go/erdos/internal/core/cluster"
	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/state"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
	"github.com/erdos-go/erdos/internal/core/worker"
	"github.com/erdos-go/erdos/internal/metrics"
)

// failoverRow aggregates the trials for one heartbeat period.
type failoverRow struct {
	Heartbeat time.Duration
	Detect    *metrics.Sample // kill -> failure-detected
	Recover   *metrics.Sample // failure-detected -> recovered (reschedule + replay barrier)
	Trials    int
	Failed    int
}

// FailoverResult holds the reaction-time sweep across heartbeat periods.
type FailoverResult struct {
	Rows []failoverRow
}

type failoverCount struct{ Sum int }

func init() { state.RegisterState(&failoverCount{}) }

// failoverGraph is the minimal stateful topology for a failover trial:
// ingest -> stateful count (pinned to the victim) -> sink on a survivor.
func failoverGraph() (*graph.Graph, stream.ID, error) {
	g := graph.New()
	in := g.AddStream("in", "int")
	out := g.AddStream("out", "int")
	if err := g.MarkIngest(in); err != nil {
		return nil, 0, err
	}
	err := g.AddOperator(&operator.Spec{
		Name: "count", Placement: "w2",
		Inputs: []stream.ID{in}, Outputs: []stream.ID{out},
		AutoWatermark: true,
		NewState: func() state.Store {
			return state.NewVersioned(&failoverCount{}, func(v any) any {
				c := *v.(*failoverCount)
				return &c
			})
		},
		OnData: func(ctx *operator.Context, _ int, m message.Message) {
			ctx.State().(*failoverCount).Sum += m.Payload.(int)
		},
		OnWatermark: func(ctx *operator.Context) {
			_ = ctx.Send(0, ctx.Timestamp, ctx.State().(*failoverCount).Sum) //erdos:allow zerogob the harness counter is off the measured path; detection latency is what fig. 9 times
		},
	})
	if err != nil {
		return nil, 0, err
	}
	err = g.AddOperator(&operator.Spec{
		Name: "sink", Placement: "w1",
		Inputs: []stream.ID{out}, AutoWatermark: true,
	})
	if err != nil {
		return nil, 0, err
	}
	return g, in, nil
}

// failoverTrial runs one kill-and-recover cycle and returns the detection
// and recovery latencies taken from the leader's event log.
func failoverTrial(hb time.Duration) (detect, recover time.Duration, err error) {
	g, in, err := failoverGraph()
	if err != nil {
		return 0, 0, err
	}
	names := []string{"w1", "w2", "w3"}
	l, err := cluster.NewLeader("127.0.0.1:0", names, g,
		map[stream.ID]string{in: "w1"}, nil,
		cluster.WithHeartbeat(hb, 3*hb/2))
	if err != nil {
		return 0, 0, err
	}
	defer l.Stop()

	nodes := make([]*cluster.Node, len(names))
	errs := make([]error, len(names))
	done := make(chan int, len(names))
	for i, name := range names {
		go func(i int, name string) {
			nodes[i], errs[i] = cluster.Join(l.Addr(), name, g, worker.Options{})
			done <- i
		}(i, name)
	}
	for range names {
		<-done
	}
	for i := range errs {
		if errs[i] != nil {
			return 0, 0, errs[i]
		}
		defer nodes[i].Close()
	}
	if err := l.Wait(); err != nil {
		return 0, 0, err
	}

	// Warm traffic, then a heartbeat cycle so a checkpoint ships.
	for ts := uint64(1); ts <= 5; ts++ {
		if err := nodes[0].Worker.Inject(in, message.Data(timestamp.New(ts), 1)); err != nil {
			return 0, 0, err
		}
		if err := nodes[0].Worker.Inject(in, message.Watermark(timestamp.New(ts))); err != nil {
			return 0, 0, err
		}
	}
	time.Sleep(2 * hb)

	killed := time.Now()
	nodes[1].Kill()
	deadline := time.Now().Add(20*hb + 2*time.Second)
	for {
		var detectedAt, recoveredAt time.Time
		for _, e := range l.Events() {
			switch e.Kind {
			case cluster.EventFailureDetected:
				detectedAt = e.At
			case cluster.EventRecovered:
				recoveredAt = e.At
			}
		}
		if !recoveredAt.IsZero() {
			return detectedAt.Sub(killed), recoveredAt.Sub(detectedAt), nil
		}
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("no recovery within %v (events %+v)", time.Since(killed), l.Events())
		}
		time.Sleep(time.Millisecond)
	}
}

// FailoverReaction sweeps the heartbeat period and measures, per period,
// how fast the resident leader detects an ungraceful worker crash
// (heartbeat silence crossing FailAfter = 1.5x the period) and how fast
// the cluster completes recovery (reschedule push, state restore at the
// consistent cut, replay barrier). Detection cost scales with the period;
// recovery is period-independent, so short heartbeats buy reaction time at
// the price of control-plane traffic.
func FailoverReaction(trials int) FailoverResult {
	if trials <= 0 {
		trials = 5
	}
	periods := []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
	}
	var res FailoverResult
	for _, hb := range periods {
		row := failoverRow{Heartbeat: hb, Detect: metrics.NewSample(), Recover: metrics.NewSample(), Trials: trials}
		for i := 0; i < trials; i++ {
			d, r, err := failoverTrial(hb)
			if err != nil {
				row.Failed++
				continue
			}
			row.Detect.Add(d)
			row.Recover.Add(r)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render prints the reaction-time sweep.
func (r FailoverResult) Render() string {
	t := metrics.NewTable("heartbeat", "fail window", "detect median", "detect stddev", "detect max", "recover median", "trials")
	for _, row := range r.Rows {
		trials := fmt.Sprintf("%d", row.Trials)
		if row.Failed > 0 {
			trials = fmt.Sprintf("%d (%d failed)", row.Trials, row.Failed)
		}
		t.Row(row.Heartbeat, 3*row.Heartbeat/2,
			row.Detect.Median(), row.Detect.StdDev(), row.Detect.Max(),
			row.Recover.Median(), trials)
	}
	return t.String()
}
