package experiments

import (
	"fmt"
	"time"

	"github.com/erdos-go/erdos/internal/av/tlight"
	"github.com/erdos-go/erdos/internal/metrics"
)

// Fig3Result reproduces the Apollo traffic-light response-time variability
// study (Fig. 3): a heavy-tailed perception response that forces the
// pipeline to drop sensor messages when a slow detection keeps resources
// busy, with a p99/mean skew of ~3.3x.
type Fig3Result struct {
	// Timeline holds (time, response) samples for the plotted drive.
	Times     []time.Duration
	Responses []time.Duration
	Mean, P99 time.Duration
	TailRatio float64
	Dropped   int
	Total     int
}

// Fig3ResponseVariability replays a 40 s drive at Apollo's 10 Hz.
func Fig3ResponseVariability(seed int64) Fig3Result {
	tr := tlight.Simulate(seed, 40*time.Second, 100*time.Millisecond)
	s := metrics.NewSample()
	s.AddAll(tr.Runtimes)
	return Fig3Result{
		Times:     tr.Times,
		Responses: tr.Runtimes,
		Mean:      s.Mean(),
		P99:       s.P99(),
		TailRatio: s.TailRatio(),
		Dropped:   tr.Dropped,
		Total:     tr.Dropped + len(tr.Runtimes),
	}
}

// Render prints the Fig. 3 summary plus a coarse timeline.
func (r Fig3Result) Render() string {
	t := metrics.NewTable("metric", "value")
	t.Row("perception mean", r.Mean)
	t.Row("perception p99", r.P99)
	t.Row("p99/mean (paper: ~3.3x)", fmt.Sprintf("%.1fx", r.TailRatio))
	t.Row("sensor messages dropped", fmt.Sprintf("%d of %d", r.Dropped, r.Total))
	out := t.String()
	out += "timeline (one column per 2s, mean response):\n  "
	bucket := map[int][]time.Duration{}
	for i, at := range r.Times {
		bucket[int(at/(2*time.Second))] = append(bucket[int(at/(2*time.Second))], r.Responses[i])
	}
	for b := 0; b < 20; b++ {
		s := metrics.NewSample()
		s.AddAll(bucket[b])
		out += fmt.Sprintf("%4.0f", float64(s.Mean())/float64(time.Millisecond))
	}
	out += " ms\n"
	return out
}
