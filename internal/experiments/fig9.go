package experiments

import (
	"fmt"
	"time"

	"github.com/erdos-go/erdos/internal/av/detection"
	"github.com/erdos-go/erdos/internal/metrics"
	"github.com/erdos-go/erdos/internal/trace"
)

// Fig9Result shows components adapting to deadline allocations that change
// every second (Fig. 9): detection picks the most accurate model that fits
// its allocation — a discrete family, so it often underutilizes the
// allotment — while the anytime planner consumes its allocation fully.
type Fig9Result struct {
	// Seconds holds one entry per wall-clock second of the drive.
	Seconds []Fig9Second
	// DetectionMisses counts frames where detection overran its
	// allocation; PlanningMisses likewise (should stay ~0).
	DetectionMisses, PlanningMisses int
	Frames                          int
}

// Fig9Second aggregates one second of the drive.
type Fig9Second struct {
	DetectionDeadline time.Duration
	PlanningDeadline  time.Duration
	DetectionMedian   time.Duration
	PlanningMedian    time.Duration
	Detector          string
}

// Fig9MeetingDeadlines randomizes the per-component deadline every second
// for 15 s at 10 Hz and records both components' responses.
func Fig9MeetingDeadlines(seed int64) Fig9Result {
	r := trace.New(seed)
	var res Fig9Result
	for sec := 0; sec < 15; sec++ {
		detDL := time.Duration(r.Uniform(30, 250)) * time.Millisecond
		planDL := time.Duration(r.Uniform(50, 250)) * time.Millisecond
		model, ok := detection.BestWithinP99(detDL)
		if !ok {
			model = detection.EfficientDet[0]
		}
		ds, ps := metrics.NewSample(), metrics.NewSample()
		for f := 0; f < 10; f++ {
			res.Frames++
			dr := model.Runtime(r, 6)
			ds.Add(dr)
			if dr > detDL {
				res.DetectionMisses++
			}
			// The anytime planner stops at candidate granularity just
			// inside its allocation.
			pr := time.Duration(float64(planDL) * r.Uniform(0.93, 0.995))
			ps.Add(pr)
			if pr > planDL {
				res.PlanningMisses++
			}
		}
		res.Seconds = append(res.Seconds, Fig9Second{
			DetectionDeadline: detDL,
			PlanningDeadline:  planDL,
			DetectionMedian:   ds.Median(),
			PlanningMedian:    ps.Median(),
			Detector:          model.Name,
		})
	}
	return res
}

// Render prints the two series.
func (r Fig9Result) Render() string {
	t := metrics.NewTable("second", "det deadline", "det response", "model", "plan deadline", "plan response", "plan util")
	for i, s := range r.Seconds {
		util := float64(s.PlanningMedian) / float64(s.PlanningDeadline) * 100
		t.Row(i, s.DetectionDeadline, s.DetectionMedian, s.Detector,
			s.PlanningDeadline, s.PlanningMedian, fmt.Sprintf("%.0f%%", util))
	}
	t.Row("misses", r.DetectionMisses, "", "", r.PlanningMisses, "", "")
	return t.String()
}

// DetectionUtilization returns the mean fraction of the detection
// allocation actually used (Fig. 9's observation: detection underutilizes
// because the model family is discrete).
func (r Fig9Result) DetectionUtilization() float64 {
	if len(r.Seconds) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range r.Seconds {
		sum += float64(s.DetectionMedian) / float64(s.DetectionDeadline)
	}
	return sum / float64(len(r.Seconds))
}

// PlanningUtilization returns the planner's mean allocation usage (close
// to 1: the anytime algorithm fills its allotment).
func (r Fig9Result) PlanningUtilization() float64 {
	if len(r.Seconds) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range r.Seconds {
		sum += float64(s.PlanningMedian) / float64(s.PlanningDeadline)
	}
	return sum / float64(len(r.Seconds))
}
