// Elastic multi-tenant density benchmark, recorded to BENCH_e2e.json by
// `erdos-bench -bench elastic`: how does the p99 camera-to-command latency
// of a pylot tenant degrade as the leader packs more tenants onto the same
// two-worker cluster? This is the tenancy edge of the elastic-membership
// subsystem — admission and placement must keep co-hosted pipelines
// near-independent until the fleet genuinely runs out of headroom.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"github.com/erdos-go/erdos/internal/core/cluster"
	"github.com/erdos-go/erdos/internal/core/erdos"
	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/worker"
	"github.com/erdos-go/erdos/internal/pylot"
)

// ElasticTenantPoint is one tenant-density measurement: N pylot pipelines
// submitted as tenants of a fixed two-worker cluster, camera-to-command
// latency pooled across all of them.
type ElasticTenantPoint struct {
	Tenants         int     `json:"tenants"`
	Workers         int     `json:"workers"`
	FramesPerTenant int     `json:"frames_per_tenant"`
	ControlP50Ms    float64 `json:"control_p50_ms"`
	ControlP99Ms    float64 `json:"control_p99_ms"`
}

// ElasticTenantDensity sweeps the tenant counts, building a fresh cluster
// per point so the measurements are independent.
func ElasticTenantDensity(counts []int, frames int) ([]ElasticTenantPoint, error) {
	out := make([]ElasticTenantPoint, 0, len(counts))
	for _, n := range counts {
		p, err := measureTenantDensity(n, frames)
		if err != nil {
			return out, fmt.Errorf("tenants=%d: %w", n, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// measureTenantDensity hosts n pylot tenants on a two-worker cluster and
// injects `frames` camera frames into each at a fixed cadence, timing every
// frame from injection to its command sink's watermark.
func measureTenantDensity(n, frames int) (ElasticTenantPoint, error) {
	point := ElasticTenantPoint{Tenants: n, Workers: 2, FramesPerTenant: frames}

	// The base graph every worker boots with; tenants arrive afterwards
	// through Submit, exactly as they would on a long-lived cluster.
	base := erdos.NewGraph()
	baseIn := erdos.IngestStream[int](base, "base-in")
	noop := base.Operator("base-noop")
	erdos.Input(noop, baseIn, func(ctx *erdos.Context, ts erdos.Timestamp, v int) {})
	noop.Build()
	if err := base.Err(); err != nil {
		return point, err
	}
	baseRaw := base.Raw()
	var baseID stream.ID
	for _, s := range baseRaw.Streams() {
		if s.Name == "base-in" {
			baseID = s.ID
		}
	}

	var mu sync.Mutex
	lats := make([]time.Duration, 0, n*frames)
	sent := make([][]time.Time, n)
	type rig struct {
		name string
		raw  *graph.Graph
		cam  stream.ID
	}
	rigs := make([]rig, n)
	registry := make(map[string]*graph.Graph, n)
	for i := 0; i < n; i++ {
		i := i
		sent[i] = make([]time.Time, frames)
		prefix := fmt.Sprintf("t%d-", i)
		g := erdos.NewGraph()
		h := pylot.Build(g, pylot.Config{Prefix: prefix, TimeScale: 200, TargetSpeed: 12, Seed: int64(17 + i)})
		sink := g.Operator(prefix + "sink")
		erdos.Input(sink, h.Commands, func(ctx *erdos.Context, ts erdos.Timestamp, c pylot.Command) {})
		sink.OnWatermark(func(ctx *erdos.Context) {
			l := ctx.Timestamp.L
			if l < 1 || l > uint64(frames) {
				return
			}
			lat := time.Since(sent[i][l-1]) //erdos:allow wallclock wall-clock camera-to-command latency IS the measurement; the harness sink is never replayed
			mu.Lock()
			lats = append(lats, lat) //erdos:allow statetxn lats is harness output read after the cluster quiesces, not operator state that restores
			mu.Unlock()
		})
		sink.Build()
		if err := g.Err(); err != nil {
			return point, err
		}
		raw := g.Raw()
		r := rig{name: fmt.Sprintf("t%d", i), raw: raw}
		for _, s := range raw.Streams() {
			if s.Name == prefix+"camera" {
				r.cam = s.ID
			}
		}
		rigs[i] = r
		registry[r.name] = raw
	}
	resolve := func(name string) *graph.Graph { return registry[name] }

	names := []string{"w1", "w2"}
	l, err := cluster.NewLeader("127.0.0.1:0", names, baseRaw,
		map[stream.ID]string{baseID: "w1"}, nil,
		cluster.WithHeartbeat(200*time.Millisecond, 300*time.Millisecond))
	if err != nil {
		return point, err
	}
	defer l.Stop()
	// The leader releases schedules only once every expected worker has
	// registered, so the initial joins must run concurrently.
	nodes := make(map[string]*cluster.Node, len(names))
	joined := make([]*cluster.Node, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			joined[i], errs[i] = cluster.Join(l.Addr(), name, baseRaw,
				worker.Options{Threads: 4}, cluster.WithTenantResolver(resolve))
		}(i, name)
	}
	wg.Wait()
	for i, name := range names {
		if errs[i] != nil {
			return point, errs[i]
		}
		defer joined[i].Close()
		nodes[name] = joined[i]
	}
	if err := l.Wait(); err != nil {
		return point, err
	}

	// Submit every tenant and locate its home worker: frames ingest there,
	// so the measured path is the in-cluster pipeline, not an extra hop.
	inj := make([]*cluster.Node, n)
	anyNode := nodes[names[0]]
	for i, r := range rigs {
		if err := l.Submit(cluster.Tenant{Name: r.name, Graph: r.raw}); err != nil {
			return point, err
		}
		home := anyNode.Schedule().Assignments[fmt.Sprintf("t%d-control", i)]
		node := nodes[home]
		if node == nil {
			return point, fmt.Errorf("tenant %s homed on unknown worker %q", r.name, home)
		}
		inj[i] = node
	}

	for f := 1; f <= frames; f++ {
		ts := erdos.T(uint64(f))
		for i, r := range rigs {
			frame := pylot.CameraFrame{Seq: uint64(f), EgoSpeed: 12}
			mu.Lock()
			sent[i][f-1] = time.Now()
			mu.Unlock()
			if err := inj[i].Worker.Inject(r.cam, message.Data(ts, frame)); err != nil {
				return point, err
			}
			if err := inj[i].Worker.Inject(r.cam, message.Watermark(ts)); err != nil {
				return point, err
			}
		}
		time.Sleep(20 * time.Millisecond)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		mu.Lock()
		got := len(lats)
		mu.Unlock()
		if got >= n*frames {
			break
		}
		if time.Now().After(deadline) {
			return point, fmt.Errorf("timed out with %d/%d commands", got, n*frames)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	point.ControlP50Ms = percentileMs(lats, 50)
	point.ControlP99Ms = percentileMs(lats, 99)
	mu.Unlock()
	return point, nil
}
