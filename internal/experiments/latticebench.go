// Scheduler and data-plane micro-benchmarks, recorded to BENCH_lattice.json
// by `erdos-bench -bench lattice` so successive PRs accumulate a performance
// trajectory for the worker hot path. The workloads mirror the Benchmark*
// functions in internal/core/lattice and internal/core/comm but run through
// testing.Benchmark so a plain binary can measure them.
package experiments

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/lattice"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// MicroBenchResult is one micro-benchmark measurement. NsPerOp is the
// fastest of Runs repetitions (the standard low-noise estimator on shared
// single-CPU machines); NsMean and NsStddev summarize the same repetitions
// so the recorded trajectory carries its own error bars. Goroutines is the
// process goroutine count right after the measured run, and GoroutineRuns
// holds the count after each repetition — a count that climbs with every
// repetition means the workload leaks goroutines per setup/teardown cycle
// (GoroutineGrowth turns that pattern into a hard failure).
type MicroBenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	N           int     `json:"iterations"`
	NsMean      float64 `json:"ns_mean,omitempty"`
	NsStddev    float64 `json:"ns_stddev,omitempty"`
	Runs        int     `json:"runs,omitempty"`
	Goroutines  int     `json:"goroutines,omitempty"`
	// GoroutineRuns is runtime.NumGoroutine() after each repetition, in
	// run order.
	GoroutineRuns []int `json:"goroutine_runs,omitempty"`
}

// GoroutineGrowth returns the names of results whose per-run goroutine
// counts grew strictly monotonically across every repetition. One noisy
// step is normal (the runtime parks helper goroutines lazily); climbing on
// every single run of an identical workload is the signature of a harness
// that leaks goroutines per setup/teardown cycle.
func GoroutineGrowth(rs []MicroBenchResult) []string {
	var leaking []string
	for _, r := range rs {
		if len(r.GoroutineRuns) < 2 {
			continue
		}
		grew := true
		for i := 1; i < len(r.GoroutineRuns); i++ {
			if r.GoroutineRuns[i] <= r.GoroutineRuns[i-1] {
				grew = false
				break
			}
		}
		if grew {
			leaking = append(leaking, r.Name)
		}
	}
	return leaking
}

func toResult(name string, r testing.BenchmarkResult) MicroBenchResult {
	ns := float64(r.NsPerOp())
	ops := 0.0
	if ns > 0 {
		ops = 1e9 / ns
	}
	return MicroBenchResult{
		Name:        name,
		NsPerOp:     ns,
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		OpsPerSec:   ops,
		N:           r.N,
		Goroutines:  runtime.NumGoroutine(),
	}
}

// PreChangeLatticeBaseline is the measurement of the seed scheduler (global
// mutex + single ready heap + cond.Broadcast) and gob-only data plane, taken
// on the same machine immediately before the sharded rewrite landed. It is
// kept as the fixed "before" edge of the perf trajectory.
var PreChangeLatticeBaseline = []MicroBenchResult{
	{Name: "LatticeSubmitExecute", NsPerOp: 874.7, AllocsPerOp: 1, BytesPerOp: 92, OpsPerSec: 1143249},
	{Name: "LatticeThroughput", NsPerOp: 108673, AllocsPerOp: 1, BytesPerOp: 347, OpsPerSec: 9202},
	{Name: "LatticeContention", NsPerOp: 48748, AllocsPerOp: 1, BytesPerOp: 341, OpsPerSec: 20514},
	{Name: "CommInterWorkerSend64KB", NsPerOp: 72912, AllocsPerOp: 7, BytesPerOp: 139478, OpsPerSec: 13715},
	{Name: "CommRawRoundtrip4KB", NsPerOp: 16901, AllocsPerOp: 15, BytesPerOp: 18536, OpsPerSec: 59168},
}

// LatticeMicroBench measures the current scheduler and data plane with the
// same workloads as the pre-change baseline.
func LatticeMicroBench() []MicroBenchResult {
	return []MicroBenchResult{
		benchStats("LatticeSubmitExecute", benchSubmitExecute),
		benchStats("LatticeThroughput", benchLatticeThroughput),
		benchStats("LatticeContention", benchLatticeContention),
		benchStats("CommInterWorkerSend64KB", benchCommSend64KB),
		benchStats("CommRawRoundtrip4KB", benchCommRawRoundtrip),
	}
}

func benchSubmitExecute(b *testing.B) {
	l := lattice.New(4)
	defer l.Stop()
	q := l.NewOpQueue(lattice.ModeSequential)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		//erdos:allow deadlinehint benchmark measures the undeadlined fast path
		l.Submit(q, lattice.KindMessage, timestamp.New(uint64(i)), func() {})
	}
	l.Quiesce()
}

func benchLatticeThroughput(b *testing.B) {
	l := lattice.New(4)
	defer l.Stop()
	const numOps = 16
	qs := make([]*lattice.OpQueue, numOps)
	for i := range qs {
		qs[i] = l.NewOpQueue(lattice.ModeParallelMessages)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		//erdos:allow deadlinehint benchmark measures the undeadlined fast path
		l.Submit(qs[i%numOps], lattice.KindMessage, timestamp.New(uint64(i)), func() {})
	}
	l.Quiesce()
}

func benchLatticeContention(b *testing.B) {
	l := lattice.New(8)
	defer l.Stop()
	const numOps = 32
	qs := make([]*lattice.OpQueue, numOps)
	for i := range qs {
		qs[i] = l.NewOpQueue(lattice.ModeParallelMessages)
	}
	var next atomic.Uint64
	b.ReportAllocs()
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			//erdos:allow deadlinehint benchmark measures the undeadlined fast path
			l.Submit(qs[i%numOps], lattice.KindMessage, timestamp.New(i), func() {})
		}
	})
	l.Quiesce()
}

func benchCommSend64KB(b *testing.B) {
	var received atomic.Int64
	a, err := comm.Listen("bench-a", "127.0.0.1:0", func(string, stream.ID, message.Message) {
		received.Add(1)
	})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	c, err := comm.Listen("bench-c", "127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Dial(a.Addr()); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	id := stream.NewID()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		//erdos:allow deadlinehint the benchmark measures the unhinted flush path on purpose
		if err := c.Send("bench-a", id, message.Data(timestamp.New(uint64(i+1)), payload)); err != nil {
			b.Fatal(err)
		}
	}
	for received.Load() < int64(b.N) {
		time.Sleep(100 * time.Microsecond)
	}
}

func benchCommRawRoundtrip(b *testing.B) {
	var echoTo atomic.Pointer[comm.Transport]
	done := make(chan struct{}, 1)
	// Both hops manage payload ownership explicitly: the echo relinquishes
	// the pooled body once it is on the wire (SendRelease) and the client
	// recycles it after consumption, so the steady-state round trip reuses
	// the same size-classed buffers instead of allocating per frame.
	a, err := comm.Listen("bench-echo", "127.0.0.1:0", func(_ string, id stream.ID, m message.Message) {
		_ = echoTo.Load().SendRelease("bench-cli", id, m, comm.FlushHint{})
	})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	echoTo.Store(a)
	c, err := comm.Listen("bench-cli", "127.0.0.1:0", func(_ string, _ stream.ID, m message.Message) {
		comm.ReleaseMessage(m)
		done <- struct{}{}
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Dial(a.Addr()); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096)
	id := stream.NewID()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		//erdos:allow deadlinehint the benchmark measures the unhinted flush path on purpose
		if err := c.Send("bench-echo", id, message.Data(timestamp.New(uint64(i+1)), payload)); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}
