package experiments

import (
	"fmt"
	"time"

	"github.com/erdos-go/erdos/internal/core/erdos"
	"github.com/erdos-go/erdos/internal/metrics"
)

// PolicyOverheadResult measures the latency added by the pDP mechanism
// (§7.3): a no-operation policy operator that receives pipeline data and
// emits static deadline allocations. The paper reports < 1% added response
// time (median +0.9 ms, p90 +2.3 ms).
type PolicyOverheadResult struct {
	WithoutMedian, WithMedian time.Duration
	WithoutP90, WithP90       time.Duration
	MedianDelta, P90Delta     time.Duration
	OverheadPct               float64
	Frames                    int
}

// PolicyMechanismOverhead runs a four-stage pipeline on the real ERDOS
// runtime twice — without and with a no-op pDP subgraph wired in — and
// compares end-to-end response times.
func PolicyMechanismOverhead(frames int) PolicyOverheadResult {
	if frames <= 0 {
		frames = 300
	}
	without := runChain(frames, false)
	with := runChain(frames, true)
	res := PolicyOverheadResult{
		WithoutMedian: without.Median(), WithMedian: with.Median(),
		WithoutP90: without.Percentile(90), WithP90: with.Percentile(90),
		Frames: frames,
	}
	res.MedianDelta = res.WithMedian - res.WithoutMedian
	res.P90Delta = res.WithP90 - res.WithoutP90
	if res.WithoutMedian > 0 {
		res.OverheadPct = float64(res.MedianDelta) / float64(res.WithoutMedian) * 100
	}
	return res
}

// runChain builds sensor -> A -> B -> C -> sink; when withPolicy is set, a
// no-op pDP operator receives A's output and publishes a static deadline on
// a deadline stream consumed by C.
func runChain(frames int, withPolicy bool) *metrics.Sample {
	g := erdos.NewGraph()
	in := erdos.IngestStream[[]byte](g, "sensor")
	a := erdos.AddStream[[]byte](g, "a")
	b := erdos.AddStream[[]byte](g, "b")
	out := erdos.AddStream[[]byte](g, "out")

	// Each stage performs ~2 ms of compute so the overhead ratio is
	// measured against a realistic per-frame pipeline cost (the paper's
	// baseline is a full Pylot frame of hundreds of milliseconds).
	const stageWork = 2 * time.Millisecond

	opA := g.Operator("A")
	aOut := erdos.Output(opA, a)
	erdos.Input(opA, in, func(ctx *erdos.Context, t erdos.Timestamp, v []byte) {
		spin(stageWork)
		_ = ctx.Send(aOut, t, v)
	})
	opA.Build()

	opB := g.Operator("B")
	bOut := erdos.Output(opB, b)
	erdos.Input(opB, a, func(ctx *erdos.Context, t erdos.Timestamp, v []byte) {
		spin(stageWork)
		_ = ctx.Send(bOut, t, v)
	})
	opB.Build()

	opC := g.Operator("C")
	cOut := erdos.Output(opC, out)
	erdos.Input(opC, b, func(ctx *erdos.Context, t erdos.Timestamp, v []byte) {
		spin(stageWork)
		_ = ctx.Send(cOut, t, v)
	})
	if withPolicy {
		// The no-op pDP: receives A's output, computes nothing, emits a
		// static allocation on its deadline stream, which feeds C's
		// dynamic deadline source.
		dls := erdos.AddStream[time.Duration](g, "deadlines")
		pdp := g.Operator("pDP")
		dOut := erdos.Output(pdp, dls)
		erdos.Input(pdp, a, func(ctx *erdos.Context, t erdos.Timestamp, v []byte) {
			_ = ctx.Send(dOut, t, 200*time.Millisecond)
		})
		pdp.Build()
		dyn := erdos.DynamicDeadline(g, dls, 200*time.Millisecond)
		opC.TimestampDeadline("resp", dyn, erdos.Continue, nil)
	}
	opC.Build()

	rt, err := g.RunLocal(erdos.WithThreads(4))
	if err != nil {
		return metrics.NewSample()
	}
	defer rt.Stop()
	done := make(chan struct{}, 1)
	sink, err := erdos.Collect(rt, out)
	if err != nil {
		return metrics.NewSample()
	}
	sink.OnData(func(erdos.Timestamped[[]byte]) { done <- struct{}{} })
	w, err := erdos.Writer(rt, in)
	if err != nil {
		return metrics.NewSample()
	}
	payload := make([]byte, 64<<10)
	s := metrics.NewSample()
	for f := 1; f <= frames; f++ {
		ts := erdos.T(uint64(f))
		start := time.Now()
		_ = w.Send(ts, payload)
		_ = w.SendWatermark(ts)
		<-done
		s.Add(time.Since(start))
	}
	return s
}

// spin busy-waits for d, emulating compute without the jitter of the
// scheduler's sleep granularity.
func spin(d time.Duration) {
	start := time.Now() //erdos:allow wallclock the spin IS the modeled compute; it burns real CPU time, it does not schedule anything
	for time.Since(start) < d {
	}
}

// Render prints the §7.3 policy-mechanism comparison.
func (r PolicyOverheadResult) Render() string {
	t := metrics.NewTable("setting", "median", "p90")
	t.Row("without pDP", r.WithoutMedian, r.WithoutP90)
	t.Row("with no-op pDP", r.WithMedian, r.WithP90)
	t.Row("delta", r.MedianDelta, r.P90Delta)
	t.Row("overhead", fmt.Sprintf("%.2f%% (paper: <1%%)", r.OverheadPct), "")
	return t.String()
}
