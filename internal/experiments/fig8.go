package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/erdos-go/erdos/internal/baselines"
	"github.com/erdos-go/erdos/internal/core/erdos"
	streampkg "github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/metrics"
)

// Fig8Systems lists the systems compared in §7.2.
var Fig8Systems = []string{"erdos", "ros", "ros2", "flink"}

// intraFactory builds an intra-process publisher for a system.
func intraFactory(system string, recvs []baselines.Receiver) baselines.Publisher {
	switch system {
	case "erdos":
		return baselines.NewErdosIntra(recvs)
	case "erdos-copy":
		return baselines.NewCopyIntra(recvs)
	case "ros2":
		return baselines.NewRos2Intra(recvs)
	case "flink":
		return baselines.NewFlinkIntra(recvs)
	default:
		return nil
	}
}

// interFactory builds a TCP publisher for a system.
func interFactory(system string, n int, recv baselines.Receiver) (baselines.Publisher, error) {
	switch system {
	case "erdos":
		return baselines.NewErdosInter(n, recv)
	case "ros":
		return baselines.NewRosInter(n, recv)
	case "ros2":
		return baselines.NewRos2Inter(n, recv)
	case "flink":
		return baselines.NewFlinkInter(n, recv)
	default:
		return nil, fmt.Errorf("unknown system %q", system)
	}
}

// measureIntra returns the median callback-invocation delay for one
// intra-process publisher at the given payload size.
func measureIntra(system string, size, msgs int) time.Duration {
	done := make(chan struct{}, 1)
	var sentAt time.Time
	s := metrics.NewSample()
	pub := intraFactory(system, []baselines.Receiver{func(uint64, []byte) {
		s.Add(time.Since(sentAt))
		done <- struct{}{}
	}})
	if pub == nil {
		return 0
	}
	defer pub.Close()
	payload := make([]byte, size)
	for i := 0; i < msgs; i++ {
		sentAt = time.Now()
		_ = pub.Publish(payload)
		<-done
	}
	return s.Median()
}

// measureInter returns the median callback-invocation delay over TCP.
func measureInter(system string, size, msgs int) (time.Duration, error) {
	done := make(chan struct{}, 1)
	var mu sync.Mutex
	var sentAt time.Time
	s := metrics.NewSample()
	pub, err := interFactory(system, 1, func(uint64, []byte) {
		mu.Lock()
		s.Add(time.Since(sentAt))
		mu.Unlock()
		done <- struct{}{}
	})
	if err != nil {
		return 0, err
	}
	defer pub.Close()
	payload := make([]byte, size)
	for i := 0; i < msgs; i++ {
		mu.Lock()
		sentAt = time.Now()
		mu.Unlock()
		if err := pub.Publish(payload); err != nil {
			return 0, err
		}
		<-done
	}
	return s.Median(), nil
}

// Fig8aResult is the message-size sweep (Fig. 8a).
type Fig8aResult struct {
	Sizes []int
	// IntraMedian[system][size] and InterMedian[system][size]; intra has
	// no "ros" entry (ROS1 nodes are separate processes), matching the
	// paper's plot.
	IntraMedian map[string][]time.Duration
	InterMedian map[string][]time.Duration
}

// Fig8aMessageDelay sweeps 10 KB - 10 MB payloads.
func Fig8aMessageDelay(msgs int) Fig8aResult {
	if msgs <= 0 {
		msgs = 50
	}
	res := Fig8aResult{
		Sizes:       []int{10 << 10, 100 << 10, 1 << 20, 10 << 20},
		IntraMedian: map[string][]time.Duration{},
		InterMedian: map[string][]time.Duration{},
	}
	for _, sys := range []string{"erdos", "ros2", "flink"} {
		for _, size := range res.Sizes {
			res.IntraMedian[sys] = append(res.IntraMedian[sys], measureIntra(sys, size, msgs))
		}
	}
	for _, sys := range Fig8Systems {
		for _, size := range res.Sizes {
			d, err := measureInter(sys, size, msgs)
			if err != nil {
				d = -1
			}
			res.InterMedian[sys] = append(res.InterMedian[sys], d)
		}
	}
	return res
}

// Render prints the Fig. 8a series.
func (r Fig8aResult) Render() string {
	t := metrics.NewTable("placement", "system", "10KB", "100KB", "1MB", "10MB")
	for _, sys := range []string{"erdos", "ros2", "flink"} {
		cells := []any{"intra-worker", sys}
		for _, d := range r.IntraMedian[sys] {
			cells = append(cells, d)
		}
		t.Row(cells...)
	}
	for _, sys := range Fig8Systems {
		cells := []any{"inter-worker", sys}
		for _, d := range r.InterMedian[sys] {
			cells = append(cells, d)
		}
		t.Row(cells...)
	}
	return t.String()
}

// Fig8bResult is the operator-fanout sweep (Fig. 8b) with a 6 MB camera
// image broadcast to 2-5 receivers; the delay is until the last receiver's
// callback runs.
type Fig8bResult struct {
	Receivers   []int
	IntraMedian map[string][]time.Duration
	InterMedian map[string][]time.Duration
}

// Fig8bFanout sweeps the receiver counts.
func Fig8bFanout(msgs int) Fig8bResult {
	if msgs <= 0 {
		msgs = 30
	}
	const size = 6 << 20
	res := Fig8bResult{
		Receivers:   []int{2, 3, 4, 5},
		IntraMedian: map[string][]time.Duration{},
		InterMedian: map[string][]time.Duration{},
	}
	for _, sys := range []string{"erdos", "ros2", "flink"} {
		for _, n := range res.Receivers {
			res.IntraMedian[sys] = append(res.IntraMedian[sys], measureIntraFanout(sys, size, n, msgs))
		}
	}
	for _, sys := range Fig8Systems {
		for _, n := range res.Receivers {
			d, err := measureInterFanout(sys, size, n, msgs)
			if err != nil {
				d = -1
			}
			res.InterMedian[sys] = append(res.InterMedian[sys], d)
		}
	}
	return res
}

func measureIntraFanout(system string, size, n, msgs int) time.Duration {
	var pending atomic.Int32
	done := make(chan struct{}, 1)
	var sentAt time.Time
	s := metrics.NewSample()
	recv := func(uint64, []byte) {
		if pending.Add(-1) == 0 {
			s.Add(time.Since(sentAt))
			done <- struct{}{}
		}
	}
	recvs := make([]baselines.Receiver, n)
	for i := range recvs {
		recvs[i] = recv
	}
	pub := intraFactory(system, recvs)
	if pub == nil {
		return 0
	}
	defer pub.Close()
	payload := make([]byte, size)
	for i := 0; i < msgs; i++ {
		pending.Store(int32(n))
		sentAt = time.Now()
		_ = pub.Publish(payload)
		<-done
	}
	return s.Median()
}

func measureInterFanout(system string, size, n, msgs int) (time.Duration, error) {
	var pending atomic.Int32
	done := make(chan struct{}, 1)
	var mu sync.Mutex
	var sentAt time.Time
	s := metrics.NewSample()
	pub, err := interFactory(system, n, func(uint64, []byte) {
		if pending.Add(-1) == 0 {
			mu.Lock()
			s.Add(time.Since(sentAt))
			mu.Unlock()
			done <- struct{}{}
		}
	})
	if err != nil {
		return 0, err
	}
	defer pub.Close()
	payload := make([]byte, size)
	for i := 0; i < msgs; i++ {
		pending.Store(int32(n))
		mu.Lock()
		sentAt = time.Now()
		mu.Unlock()
		if err := pub.Publish(payload); err != nil {
			return 0, err
		}
		<-done
	}
	return s.Median(), nil
}

// Fig8cResult is the synthetic-pipeline scaling study (Fig. 8c): an
// emulated Pylot with 4-10 cameras and 2-5 LiDARs fanning into 5 operators
// per sensor (75 operators at full scale, ~925 MB/s), every operator with a
// 0 ms runtime, measuring end-to-end response from sensor injection to the
// merged output.
type Fig8cResult struct {
	Configs []Fig8cConfig
}

// Fig8cConfig is one pipeline size's measurement.
type Fig8cConfig struct {
	Cameras, Lidars int
	Operators       int
	ErdosIntra      time.Duration
	ErdosRuntime    time.Duration // full ERDOS runtime with watermarks
	Ros2Intra       time.Duration
	FlinkIntra      time.Duration
}

// Fig8cSensorScaling measures each pipeline size.
func Fig8cSensorScaling(frames int) Fig8cResult {
	if frames <= 0 {
		frames = 20
	}
	var res Fig8cResult
	sizes := []struct{ cams, lidars int }{{4, 2}, {6, 3}, {8, 4}, {10, 5}}
	for _, sz := range sizes {
		cfg := Fig8cConfig{
			Cameras: sz.cams, Lidars: sz.lidars,
			Operators: (sz.cams + sz.lidars) * 5,
		}
		cfg.ErdosIntra = pipelineDelay("erdos", sz.cams, sz.lidars, frames)
		cfg.Ros2Intra = pipelineDelay("ros2", sz.cams, sz.lidars, frames)
		cfg.FlinkIntra = pipelineDelay("flink", sz.cams, sz.lidars, frames)
		cfg.ErdosRuntime = erdosRuntimePipelineDelay(sz.cams, sz.lidars, frames)
		res.Configs = append(res.Configs, cfg)
	}
	return res
}

// Fig8cErdosRuntimePoint measures one sensor-scaling configuration on the
// full ERDOS runtime only, skipping the baseline harnesses. The e2e bench
// uses it to isolate the runtime's own scheduling trajectory from the
// allocation noise the ros2/flink serializers generate in the full sweep.
func Fig8cErdosRuntimePoint(cams, lidars, frames int) time.Duration {
	return erdosRuntimePipelineDelay(cams, lidars, frames)
}

// pipelineDelay builds the synthetic topology over a system's intra-process
// publishers: each sensor broadcasts its frame to 5 operators; each
// operator immediately publishes a 10 KB result to the merger; the frame is
// complete when the merger has one result per operator.
func pipelineDelay(system string, cams, lidars, frames int) time.Duration {
	const camSize = 6 << 20
	const lidarSize = 1 << 20
	const resultSize = 10 << 10

	ops := (cams + lidars) * 5
	var remaining atomic.Int32
	frameDone := make(chan struct{}, 1)
	merger := func(uint64, []byte) {
		if remaining.Add(-1) == 0 {
			frameDone <- struct{}{}
		}
	}
	// Each operator owns a publisher to the merger.
	opPubs := make([]baselines.Publisher, ops)
	for i := range opPubs {
		opPubs[i] = intraFactory(system, []baselines.Receiver{merger})
	}
	result := make([]byte, resultSize)
	// Each sensor broadcasts to its 5 operators, which forward.
	sensorPubs := make([]baselines.Publisher, cams+lidars)
	opIdx := 0
	for s := range sensorPubs {
		recvs := make([]baselines.Receiver, 5)
		for j := 0; j < 5; j++ {
			pub := opPubs[opIdx]
			opIdx++
			recvs[j] = func(uint64, []byte) { _ = pub.Publish(result) }
		}
		sensorPubs[s] = intraFactory(system, recvs)
	}
	defer func() {
		for _, p := range sensorPubs {
			p.Close()
		}
		for _, p := range opPubs {
			p.Close()
		}
	}()

	camFrame := make([]byte, camSize)
	lidarFrame := make([]byte, lidarSize)
	sample := metrics.NewSample()
	for f := 0; f < frames; f++ {
		remaining.Store(int32(ops))
		start := time.Now()
		for s, pub := range sensorPubs {
			if s < cams {
				_ = pub.Publish(camFrame)
			} else {
				_ = pub.Publish(lidarFrame)
			}
		}
		<-frameDone
		sample.Add(time.Since(start))
	}
	return sample.Median()
}

// erdosRuntimePipelineDelay builds the same topology on the full ERDOS
// runtime (graph, lattice, watermarks) rather than the bare messaging path,
// so the measurement includes the system's scheduling overheads.
func erdosRuntimePipelineDelay(cams, lidars, frames int) time.Duration {
	g := erdos.NewGraph()
	type sensor struct {
		stream erdos.Stream[[]byte]
		size   int
	}
	var sensors []sensor
	for i := 0; i < cams; i++ {
		sensors = append(sensors, sensor{erdos.IngestStream[[]byte](g, fmt.Sprintf("cam-%d", i)), 6 << 20})
	}
	for i := 0; i < lidars; i++ {
		sensors = append(sensors, sensor{erdos.IngestStream[[]byte](g, fmt.Sprintf("lidar-%d", i)), 1 << 20})
	}
	merged := erdos.AddStream[int](g, "merged")
	mergeOp := g.Operator("merger")
	mergeOut := erdos.Output(mergeOp, merged)
	var opStreams []erdos.Stream[[]byte]
	for si, s := range sensors {
		for j := 0; j < 5; j++ {
			out := erdos.AddStream[[]byte](g, fmt.Sprintf("det-%d-%d", si, j))
			opStreams = append(opStreams, out)
			op := g.Operator(fmt.Sprintf("op-%d-%d", si, j))
			oi := erdos.Output(op, out)
			erdos.Input(op, s.stream, func(ctx *erdos.Context, t erdos.Timestamp, v []byte) {
				_ = ctx.Send(oi, t, []byte(nil)) // 0 ms runtime operator
			})
			op.Build()
		}
	}
	total := len(opStreams)
	for _, os := range opStreams {
		erdos.Input(mergeOp, os, nil)
	}
	mergeOp.OnWatermark(func(ctx *erdos.Context) {
		_ = ctx.Send(mergeOut, ctx.Timestamp, total) //erdos:allow zerogob single-process figure harness; the merge total never crosses a transport
	})
	mergeOp.Build()

	rt, err := g.RunLocal(erdos.WithThreads(8))
	if err != nil {
		return -1
	}
	defer rt.Stop()
	frameDone := make(chan struct{}, 1)
	sink, err := erdos.Collect(rt, merged)
	if err != nil {
		return -1
	}
	sink.OnData(func(erdos.Timestamped[int]) { frameDone <- struct{}{} })
	writers := make([]streampkg.WriteStream[[]byte], len(sensors))
	// Sensors reuse their frame buffers, exactly like the messaging-path
	// harness (pipelineDelay) does: a camera driver recycles DMA buffers, and
	// allocating+zeroing ~52 MB inside the measured window swamps the
	// runtime's own overhead with allocator noise.
	frameBufs := make([][]byte, len(sensors))
	for i, s := range sensors {
		w, err := erdos.Writer(rt, s.stream)
		if err != nil {
			return -1
		}
		writers[i] = w
		frameBufs[i] = make([]byte, s.size)
	}
	sample := metrics.NewSample()
	for f := 1; f <= frames; f++ {
		ts := erdos.T(uint64(f))
		start := time.Now()
		for i := range sensors {
			_ = writers[i].Send(ts, frameBufs[i])
			_ = writers[i].SendWatermark(ts)
		}
		<-frameDone
		sample.Add(time.Since(start))
	}
	return sample.Median()
}

// Render prints the Fig. 8c series.
func (r Fig8cResult) Render() string {
	t := metrics.NewTable("pipeline", "operators", "erdos-msg", "erdos-runtime", "ros2", "flink")
	for _, c := range r.Configs {
		t.Row(fmt.Sprintf("%d cams + %d lidars", c.Cameras, c.Lidars),
			c.Operators, c.ErdosIntra, c.ErdosRuntime, c.Ros2Intra, c.FlinkIntra)
	}
	return t.String()
}

// Render prints the Fig. 8b series.
func (r Fig8bResult) Render() string {
	t := metrics.NewTable("placement", "system", "2 recv", "3 recv", "4 recv", "5 recv")
	for _, sys := range []string{"erdos", "ros2", "flink"} {
		cells := []any{"intra-worker", sys}
		for _, d := range r.IntraMedian[sys] {
			cells = append(cells, d)
		}
		t.Row(cells...)
	}
	for _, sys := range Fig8Systems {
		cells := []any{"inter-worker", sys}
		for _, d := range r.InterMedian[sys] {
			cells = append(cells, d)
		}
		t.Row(cells...)
	}
	return t.String()
}
