// The fanout edge of the comm perf trajectory: one producer, N
// subscribers, 4KB raw frames, measured across the four data paths a
// fanout send can take. tcp-per-link is the naive baseline (one encode
// and one socket write per subscriber); tcp-multicast shares one encoded
// refcounted frame across every link's write loop; shm-broadcast covers
// every same-host subscriber with a single publish onto an SPMC broadcast
// ring; inproc hands same-process subscribers the payload value with no
// serialization at all. WireBytesPerOp is what the producer actually
// encoded onto its links and rings per fanout — the number the single-
// encode work exists to flatten: per-link grows linearly in N, the ring
// stays one frame regardless of N, and inproc stays zero.
package experiments

import (
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/comm/inproc"
	"github.com/erdos-go/erdos/internal/core/comm/shm"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// fanPayload is the fanout frame body size: one camera-frame-metadata-ish
// message, matching the 4KB round-trip benches.
const fanPayload = 4096

// FanoutPoint is one (config, subscriber-count) measurement of the
// fanout edge. For the relay-fanout config, HostWireBytes breaks the
// producer's wire bytes per op down by simulated remote host — the
// numbers that show the wire cost is O(hosts), flat in subscribers per
// host.
type FanoutPoint struct {
	Config         string             `json:"config"`
	Subscribers    int                `json:"subscribers"`
	NsPerOp        float64            `json:"ns_per_op"`
	OpsPerSec      float64            `json:"ops_per_sec"`
	AllocsPerOp    int64              `json:"allocs_per_op"`
	WireBytesPerOp float64            `json:"wire_bytes_per_op"`
	Goroutines     int                `json:"goroutines,omitempty"`
	HostWireBytes  map[string]float64 `json:"host_wire_bytes_per_op,omitempty"`
}

// FanoutBench measures the fanout edge. The full run sweeps N subscribers
// in {1,2,4,8} with the five-run statistics of the recorded bench; short
// is the CI smoke shape — N in {4,8}, one run per config, enough to catch
// a broken fast path without the full sweep's wall time. hosts simulates
// a cluster spread for the relay-fanout config: subscribers divide
// round-robin over hosts-1 remote host groups, each with its own relay
// transport, and the producer ships one tagRelay envelope per group; with
// hosts < 2 the relay config is skipped.
func FanoutBench(short bool, hosts int) []FanoutPoint {
	subs := []int{1, 2, 4, 8}
	if short {
		subs = []int{4, 8}
	}
	configs := []struct {
		name string
		f    func(n int, wire *float64, hostWire *map[string]float64) func(*testing.B)
	}{
		{"tcp-per-link", benchFanoutPerLink},
		{"tcp-multicast", benchFanoutMulticast},
		{"shm-broadcast", benchFanoutShmBroadcast},
		{"inproc", benchFanoutInproc},
	}
	if hosts >= 2 {
		configs = append(configs, struct {
			name string
			f    func(n int, wire *float64, hostWire *map[string]float64) func(*testing.B)
		}{"relay-fanout", func(n int, wire *float64, hostWire *map[string]float64) func(*testing.B) {
			return benchFanoutRelay(n, hosts, wire, hostWire)
		}})
	}
	var out []FanoutPoint
	for _, n := range subs {
		for _, cfg := range configs {
			// wire is written by the final (largest-N) measured run.
			var wire float64
			var hostWire map[string]float64
			name := fmt.Sprintf("Fanout_%s_%dsub", cfg.name, n)
			bench := cfg.f(n, &wire, &hostWire)
			var r MicroBenchResult
			if short {
				r = toResult(name, testing.Benchmark(bench))
			} else {
				r = benchStats(name, bench)
			}
			out = append(out, FanoutPoint{
				Config:         cfg.name,
				Subscribers:    n,
				NsPerOp:        r.NsPerOp,
				OpsPerSec:      r.OpsPerSec,
				AllocsPerOp:    r.AllocsPerOp,
				WireBytesPerOp: wire,
				Goroutines:     r.Goroutines,
				HostWireBytes:  hostWire,
			})
		}
	}
	return out
}

// fanoutTCPRig builds the pairwise half of a fanout rig: a source
// transport dialed into n receivers over loopback TCP, each receiver
// recycling what it gets and bumping recvd.
func fanoutTCPRig(b *testing.B, n int, recvd *atomic.Int64) (src *comm.Transport, names []string) {
	src, err := comm.Listen("fan-src", "127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { src.Close() })
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("fan-r%d", i)
		r, err := comm.Listen(name, "127.0.0.1:0",
			func(_ string, _ stream.ID, m message.Message) {
				comm.ReleaseMessage(m)
				recvd.Add(1)
			})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { r.Close() })
		if err := src.Dial(r.Addr()); err != nil {
			b.Fatal(err)
		}
		names = append(names, name)
	}
	return src, names
}

// linkBytes sums the encoded bytes the transport has put on its links to
// the named peers.
func linkBytes(t *comm.Transport, names []string) uint64 {
	stats := t.PeerCoalesceStats()
	var sum uint64
	for _, n := range names {
		sum += stats[n].Bytes
	}
	return sum
}

func waitFanout(b *testing.B, recvd *atomic.Int64, want int64) {
	deadline := time.Now().Add(time.Minute)
	for recvd.Load() < want {
		if time.Now().After(deadline) {
			b.Fatalf("fanout stalled: %d of %d deliveries", recvd.Load(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// benchFanoutPerLink is the baseline every other config is judged
// against: one SendBytes per subscriber, so encode work and wire bytes
// both scale linearly with N.
func benchFanoutPerLink(n int, wire *float64, _ *map[string]float64) func(*testing.B) {
	return func(b *testing.B) {
		var recvd atomic.Int64
		src, names := fanoutTCPRig(b, n, &recvd)
		payload := make([]byte, fanPayload)
		id := stream.NewID()
		b.SetBytes(fanPayload)
		b.ReportAllocs()
		b.ResetTimer()
		start := linkBytes(src, names)
		for i := 0; i < b.N; i++ {
			ts := timestamp.New(uint64(i + 1))
			for _, name := range names {
				if err := src.SendBytes(name, id, ts, payload, comm.FlushHint{}, false); err != nil {
					b.Fatal(err)
				}
			}
		}
		waitFanout(b, &recvd, int64(n)*int64(b.N))
		b.StopTimer()
		*wire = float64(linkBytes(src, names)-start) / float64(b.N)
	}
}

// benchFanoutMulticast shares one encoded refcounted frame across every
// link's write loop: the encode happens once, the wire bytes still scale
// with N (each link carries its own copy of the shared frame).
func benchFanoutMulticast(n int, wire *float64, _ *map[string]float64) func(*testing.B) {
	return func(b *testing.B) {
		var recvd atomic.Int64
		src, names := fanoutTCPRig(b, n, &recvd)
		payload := make([]byte, fanPayload)
		id := stream.NewID()
		b.SetBytes(fanPayload)
		b.ReportAllocs()
		b.ResetTimer()
		start := linkBytes(src, names)
		for i := 0; i < b.N; i++ {
			m := message.Data(timestamp.New(uint64(i+1)), payload)
			if _, err := src.MulticastWithHint(names, id, m, comm.FlushHint{}); err != nil {
				b.Fatal(err)
			}
		}
		waitFanout(b, &recvd, int64(n)*int64(b.N))
		b.StopTimer()
		*wire = float64(linkBytes(src, names)-start) / float64(b.N)
	}
}

// benchFanoutShmBroadcast publishes each fanout once onto a real SPMC
// broadcast ring; every subscriber reads the same ring record, so wire
// bytes per op are one frame regardless of N. The TCP links exist as the
// fallback path and should stay silent.
func benchFanoutShmBroadcast(n int, wire *float64, _ *map[string]float64) func(*testing.B) {
	return func(b *testing.B) {
		dir, err := os.MkdirTemp("", "erdos-fanout-shm-*")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { os.RemoveAll(dir) })
		sb := shm.New()
		sb.Dir = dir
		group, err := sb.NewBroadcastGroup(8)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { group.Close() })
		// No bench reader is deliberately slow; don't let single-CPU
		// scheduler jitter evict one mid-measurement.
		group.EvictAfter = time.Minute
		bus := comm.NewBus(group.Sink(), 0)

		var recvd atomic.Int64
		src, names := fanoutTCPRig(b, n, &recvd)
		for _, name := range names {
			rd, err := shm.JoinBroadcast(group.Addr(), name)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { rd.Close() })
			go func(rd *shm.BusReader) {
				for {
					_, m, err := comm.ReadFrame(rd)
					if err != nil {
						return
					}
					comm.ReleaseMessage(m)
					recvd.Add(1)
				}
			}(rd)
		}
		payload := make([]byte, fanPayload)
		id := stream.NewID()
		b.SetBytes(fanPayload)
		b.ReportAllocs()
		b.ResetTimer()
		_, startBus := bus.Stats()
		startLinks := linkBytes(src, names)
		for i := 0; i < b.N; i++ {
			m := message.Data(timestamp.New(uint64(i+1)), payload)
			if _, err := src.MulticastBus(bus, names, nil, id, m, comm.FlushHint{}); err != nil {
				b.Fatal(err)
			}
		}
		waitFanout(b, &recvd, int64(n)*int64(b.N))
		b.StopTimer()
		_, endBus := bus.Stats()
		*wire = float64((endBus-startBus)+(linkBytes(src, names)-startLinks)) / float64(b.N)
	}
}

// benchFanoutInproc fans the payload value out to same-process peers over
// the inproc backend: no frame is ever encoded (the lazy shared encode
// never fires when every destination is a ValueConn), so the op cost is
// one pooled acquire plus N-1 payload copies and N queue handoffs.
// Ownership transfers to the receivers, which recycle, so the pool stays
// balanced across the run.
func benchFanoutInproc(n int, wire *float64, _ *map[string]float64) func(*testing.B) {
	return func(b *testing.B) {
		var recvd atomic.Int64
		src, err := comm.Listen("fan-ip-src", "127.0.0.1:0", nil,
			comm.WithBackend(inproc.New(), ""))
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { src.Close() })
		var names []string
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("fan-ip-r%d", i)
			r, err := comm.Listen(name, "127.0.0.1:0",
				func(_ string, _ stream.ID, m message.Message) {
					comm.ReleaseMessage(m)
					recvd.Add(1)
				}, comm.WithBackend(inproc.New(), ""))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { r.Close() })
			if err := src.Dial("inproc://" + r.AddrOf("inproc")); err != nil {
				b.Fatal(err)
			}
			names = append(names, name)
		}
		id := stream.NewID()
		b.SetBytes(fanPayload)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := comm.AcquirePayload(fanPayload)
			m := message.Data(timestamp.New(uint64(i+1)), p)
			if _, err := src.MulticastWithHint(names, id, m, comm.FlushHint{}); err != nil {
				b.Fatal(err)
			}
		}
		waitFanout(b, &recvd, int64(n)*int64(b.N))
		b.StopTimer()
		*wire = 0
	}
}

// benchFanoutRelay simulates the cross-host relay tree on loopback: the n
// subscribers divide round-robin over hosts-1 remote host groups, each
// group fronted by its own relay transport (a distinct simulated HostID)
// with a local SPMC broadcast ring, and the producer ships exactly one
// tagRelay envelope per group — so its wire bytes per op are O(hosts),
// flat in subscribers per host, while every subscriber still receives
// every frame from its relay's single ring append.
func benchFanoutRelay(n, hosts int, wire *float64, hostWire *map[string]float64) func(*testing.B) {
	return func(b *testing.B) {
		remote := hosts - 1
		var recvd atomic.Int64
		src, err := comm.Listen("fan-src", "127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { src.Close() })

		// Subscriber names round-robin across the remote hosts; each
		// host's relay covers its own group via the ring.
		covers := make([][]string, remote)
		for i := 0; i < n; i++ {
			h := i % remote
			covers[h] = append(covers[h], fmt.Sprintf("fan-h%d-r%d", h+1, i))
		}

		// One relay transport per simulated remote host, fronting a real
		// shm broadcast ring — the same local republish path a cluster
		// relay uses for same-host ring members. The handler appends the
		// verbatim frame once; every covered subscriber reads that record.
		// The transport pointer is published atomically because the read
		// goroutine that invokes the handler outlives this setup code.
		relayNames := make([]string, remote)
		relayT := make([]atomic.Pointer[comm.Transport], remote)
		for h := 0; h < remote; h++ {
			h := h
			dir, err := os.MkdirTemp("", "erdos-fanout-relay-*")
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { os.RemoveAll(dir) })
			sb := shm.New()
			sb.Dir = dir
			group, err := sb.NewBroadcastGroup(8)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { group.Close() })
			group.EvictAfter = time.Minute
			bus := comm.NewBus(group.Sink(), 0)

			name := fmt.Sprintf("fan-relay-h%d", h+1)
			relayNames[h] = name
			rt, err := comm.Listen(name, "127.0.0.1:0", nil,
				comm.WithRelayHandler(func(_ string, id stream.ID, cover []string, _ func() (message.Message, error), frame []byte, typed bool, hint comm.FlushHint) {
					if _, err := relayT[h].Load().RepublishWithHint(bus, cover, nil, frame, typed, id, hint); err != nil {
						b.Errorf("republish: %v", err)
					}
				}))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { rt.Close() })
			relayT[h].Store(rt)
			if err := src.Dial(rt.Addr()); err != nil {
				b.Fatal(err)
			}

			for _, sub := range covers[h] {
				rd, err := shm.JoinBroadcast(group.Addr(), sub)
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { rd.Close() })
				go func(rd *shm.BusReader) {
					for {
						_, m, err := comm.ReadFrame(rd)
						if err != nil {
							return
						}
						comm.ReleaseMessage(m)
						recvd.Add(1)
					}
				}(rd)
			}
		}
		var relays []comm.RelayDest
		for h := 0; h < remote; h++ {
			if len(covers[h]) > 0 {
				relays = append(relays, comm.RelayDest{Relay: relayNames[h], Cover: covers[h]})
			}
		}

		payload := make([]byte, fanPayload)
		id := stream.NewID()
		b.SetBytes(fanPayload)
		b.ReportAllocs()
		b.ResetTimer()
		start := linkBytes(src, relayNames)
		startPer := src.PeerCoalesceStats()
		for i := 0; i < b.N; i++ {
			m := message.Data(timestamp.New(uint64(i+1)), payload)
			if _, err := src.MulticastTree(nil, nil, nil, relays, id, m, comm.FlushHint{}); err != nil {
				b.Fatal(err)
			}
		}
		waitFanout(b, &recvd, int64(n)*int64(b.N))
		b.StopTimer()
		*wire = float64(linkBytes(src, relayNames)-start) / float64(b.N)
		per := src.PeerCoalesceStats()
		hw := make(map[string]float64, remote)
		for h, name := range relayNames {
			hw[fmt.Sprintf("host%d", h+1)] = float64(per[name].Bytes-startPer[name].Bytes) / float64(b.N)
		}
		*hostWire = hw
	}
}
