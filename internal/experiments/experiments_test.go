package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFig2aNoSilverBullet(t *testing.T) {
	r := Fig2aDetectorChoice(42)
	if r.Distinct < 3 {
		t.Fatalf("only %d distinct optima; the point of Fig. 2a is that the optimum varies", r.Distinct)
	}
	// The optimum must also vary within at least one scenario.
	within := false
	for _, row := range r.Best {
		for i := 1; i < len(row); i++ {
			if row[i] != row[0] {
				within = true
			}
		}
	}
	if !within {
		t.Fatal("the optimum never varied within a scenario")
	}
	if !strings.Contains(r.Render(), "distinct optima") {
		t.Fatal("render missing summary")
	}
}

func TestFig2bOrdering(t *testing.T) {
	r := Fig2bTrackerRuntime(1)
	if len(r.Trackers) != 3 {
		t.Fatalf("trackers = %v", r.Trackers)
	}
	for i, name := range r.Trackers {
		row := r.MedianMS[i]
		for j := 1; j < len(row); j++ {
			if row[j] <= row[j-1] {
				t.Fatalf("%s runtime not increasing with agents: %v", name, row)
			}
		}
	}
	// DaSiamRPN at 10 agents must dominate SORT by a large factor.
	if r.MedianMS[2][3] < 20*r.MedianMS[0][3] {
		t.Fatalf("DaSiamRPN/SORT factor too small: %v vs %v", r.MedianMS[2][3], r.MedianMS[0][3])
	}
}

func TestFig2cLinearGrowth(t *testing.T) {
	r := Fig2cPredictionHorizon(1)
	for i, name := range r.Predictors {
		row := r.MedianMS[i]
		for j := 1; j < len(row); j++ {
			if row[j] <= row[j-1] {
				t.Fatalf("%s runtime not increasing with horizon: %v", name, row)
			}
		}
	}
}

func TestFig2dComfortImproves(t *testing.T) {
	r := Fig2dPlanningComfort()
	if len(r.MaxJerk) != 3 {
		t.Fatalf("configs = %v", r.Runtimes)
	}
	if r.MaxJerk[2] >= r.MaxJerk[0] {
		t.Fatalf("fine-grid jerk (%.1f) must beat coarse-grid jerk (%.1f)",
			r.MaxJerk[2], r.MaxJerk[0])
	}
	if r.Candidates[2] <= r.Candidates[0] || r.Runtimes[2] <= r.Runtimes[0] {
		t.Fatal("finer configurations must cost more")
	}
}

func TestFig3Shape(t *testing.T) {
	r := Fig3ResponseVariability(11)
	if r.TailRatio < 2.0 {
		t.Fatalf("p99/mean = %.1f, want heavy tail (paper: 3.3x)", r.TailRatio)
	}
	if r.Dropped == 0 {
		t.Fatal("expected dropped sensor messages")
	}
	if !strings.Contains(r.Render(), "p99/mean") {
		t.Fatal("render missing tail ratio")
	}
}

func TestFig9Utilization(t *testing.T) {
	r := Fig9MeetingDeadlines(5)
	det := r.DetectionUtilization()
	plan := r.PlanningUtilization()
	if plan < 0.9 {
		t.Fatalf("planning utilization %.2f, want ~1 (anytime fills its allotment)", plan)
	}
	if det >= plan {
		t.Fatalf("detection utilization (%.2f) must trail planning (%.2f): the model family is discrete", det, plan)
	}
	if r.PlanningMisses != 0 {
		t.Fatalf("planning missed %d deadlines; the anytime planner must fit", r.PlanningMisses)
	}
	frac := float64(r.DetectionMisses) / float64(r.Frames)
	if frac > 0.08 {
		t.Fatalf("detection missed %.0f%% of frames; conservative selection should rarely miss", frac*100)
	}
}

func TestFig10HandlerDelayShape(t *testing.T) {
	r := Fig10HandlerDelay(40)
	if r.ErdosMedian <= 0 || r.ActionlibMedian <= 0 {
		t.Fatalf("degenerate measurement: %+v", r)
	}
	if r.ErdosMedian >= r.ActionlibMedian {
		t.Fatalf("erdos handler delay (%v) must beat actionlib polling (%v)",
			r.ErdosMedian, r.ActionlibMedian)
	}
	if r.ErdosMedian > 2*time.Millisecond {
		t.Fatalf("erdos handler delay %v implausibly large", r.ErdosMedian)
	}
}

func TestFig10DEHEffect(t *testing.T) {
	r := Fig10DEHEffect(42, 10)
	if r.WithMissRatio != 0 {
		t.Fatalf("with DEH the end-to-end deadline must always be met, got %.3f%%", r.WithMissRatio*100)
	}
	if r.WithoutMissRatio <= 0 {
		t.Fatal("without DEH some end-to-end deadlines must be missed")
	}
	if r.WithoutMissRatio > 0.25 {
		t.Fatalf("without-DEH miss ratio %.1f%% too high for the best configuration", r.WithoutMissRatio*100)
	}
	if r.WithP99 > r.Deadline {
		t.Fatalf("with DEH p99 %v exceeds the deadline %v", r.WithP99, r.Deadline)
	}
}

func TestFig11Headline(t *testing.T) {
	r := Fig11Collisions(42, 50)
	if !(r.Dynamic < r.BestStatic && r.BestStatic <= r.DataDriven+3 && r.DataDriven < r.Periodic) {
		t.Fatalf("ordering violated: %+v", r)
	}
	if r.ReductionVsPeriodic < 0.5 || r.ReductionVsPeriodic > 0.85 {
		t.Fatalf("reduction %.0f%%, want in [50, 85] (paper: 68%%)", r.ReductionVsPeriodic*100)
	}
	if !strings.Contains(r.Render(), "collision reduction") {
		t.Fatal("render missing headline")
	}
}

func TestFig12Bimodality(t *testing.T) {
	f11 := Fig11Collisions(42, 20)
	r := Fig12ResponseHistogram(42, 20, f11.BestStaticDeadline)
	if r.StaticN == 0 || r.DynN == 0 {
		t.Fatal("no samples collected")
	}
	// The static configuration's responses concentrate near its deadline;
	// the dynamic execution spends most frames slower (more accurate) but
	// adapts to fast responses when the environment demands it (Fig. 12).
	if r.DynMed <= r.StaticMed {
		t.Fatalf("dynamic median (%v) should exceed the best static's (%v): it usually affords accuracy",
			r.DynMed, r.StaticMed)
	}
	if r.DynFastShare <= 0 {
		t.Fatal("dynamic execution must show a fast mode under pressure")
	}
}

func TestFig13Render(t *testing.T) {
	r := Fig13ScenarioGrid(3)
	out := r.Render()
	if !strings.Contains(out, "Person Behind Truck") || !strings.Contains(out, "Traffic Jam") {
		t.Fatal("render incomplete")
	}
	if len(r.PersonBehindTruck) != 18 || len(r.TrafficJam) != 18 {
		t.Fatalf("grid sizes: %d, %d (want 6 configs x 3 speeds)",
			len(r.PersonBehindTruck), len(r.TrafficJam))
	}
}

func TestFig14Timeline(t *testing.T) {
	r := Fig14AdaptTimeline(6)
	if len(r.Responses) < 3 {
		t.Fatalf("timeline too short: %d frames", len(r.Responses))
	}
	first, minD := r.Deadlines[0], r.Deadlines[0]
	for _, d := range r.Deadlines {
		if d < minD {
			minD = d
		}
	}
	if minD >= first {
		t.Fatal("deadline never tightened during the encounter")
	}
	if r.Outcome.Collided {
		t.Fatalf("the adapted pipeline should avoid the 12 m/s person-behind-truck: %+v", r.Outcome)
	}
}

func TestPolicyOverheadSmall(t *testing.T) {
	r := PolicyMechanismOverhead(120)
	if r.WithoutMedian <= 0 || r.WithMedian <= 0 {
		t.Fatalf("degenerate measurement: %+v", r)
	}
	// The paper reports < 1%; allow slack for CI noise but insist the
	// mechanism is cheap.
	if r.OverheadPct > 25 {
		t.Fatalf("policy mechanism overhead %.1f%%, want small", r.OverheadPct)
	}
}

func TestFig8aShape(t *testing.T) {
	r := Fig8aMessageDelay(15)
	// ERDOS' zero-copy intra path must stay roughly flat across sizes and
	// beat the copying systems at 1MB+.
	e := r.IntraMedian["erdos"]
	ros2 := r.IntraMedian["ros2"]
	flink := r.IntraMedian["flink"]
	if e[3] > 50*time.Microsecond && e[3] > e[0]*100 {
		t.Fatalf("erdos intra delay grew with size: %v", e)
	}
	if !(e[2] < ros2[2] && e[2] < flink[2]) {
		t.Fatalf("erdos must win intra at 1MB: erdos=%v ros2=%v flink=%v", e[2], ros2[2], flink[2])
	}
	// Inter-worker at 1MB: erdos fastest.
	ei := r.InterMedian["erdos"][2]
	for _, sys := range []string{"ros", "ros2", "flink"} {
		if ei >= r.InterMedian[sys][2] {
			t.Fatalf("erdos inter (%v) must beat %s (%v) at 1MB", ei, sys, r.InterMedian[sys][2])
		}
	}
}

func TestFig8bShape(t *testing.T) {
	r := Fig8bFanout(8)
	e := r.IntraMedian["erdos"]
	ros2 := r.IntraMedian["ros2"]
	if e[3] >= ros2[3] {
		t.Fatalf("erdos 5-way fanout (%v) must beat ros2 (%v): zero copy vs 3 conversions", e[3], ros2[3])
	}
	// ERDOS broadcast latency stays far below a camera frame budget.
	if e[3] > 5*time.Millisecond {
		t.Fatalf("erdos 6MB 5-way intra fanout = %v, implausibly slow", e[3])
	}
}

func TestFig8cShape(t *testing.T) {
	r := Fig8cSensorScaling(6)
	if len(r.Configs) != 4 {
		t.Fatalf("configs = %d", len(r.Configs))
	}
	last := r.Configs[len(r.Configs)-1]
	if last.Operators != 75 {
		t.Fatalf("full-scale pipeline has %d operators, want 75", last.Operators)
	}
	if last.ErdosIntra >= last.Ros2Intra {
		t.Fatalf("erdos (%v) must beat ros2 (%v) at full scale", last.ErdosIntra, last.Ros2Intra)
	}
	if last.ErdosRuntime <= 0 {
		t.Fatal("runtime measurement failed")
	}
}
