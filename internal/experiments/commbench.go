// Data-plane micro-benchmarks for the typed-codec wire format, recorded to
// BENCH_comm.json by `erdos-bench -bench comm`. The pre-change baseline was
// measured on the same machine immediately before the typed binary codecs,
// deadline-aware coalescing, and pre-park spin landed, when every non-raw
// payload crossed the socket as a gob Envelope.
package experiments

import (
	"math"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/av/tracking"
	"github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/comm/shm"
	"github.com/erdos-go/erdos/internal/core/lattice"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
	"github.com/erdos-go/erdos/internal/pylot"
)

// PreChangeCommBaseline fixes the "before" edge of the data-plane perf
// trajectory: the gob envelope path for struct payloads, flush-per-frame
// writes, and the PR 1 scheduler without the pre-park spin. The raw
// round-trip figure is the one recorded in BENCH_lattice.json when that
// code landed; the rest were measured immediately before this change on
// the same machine. Burst sends have no pre-change entry: the old harness
// spin-waited on the receive counter, so its number measured the netpoll
// wakeup tick rather than the data plane.
var PreChangeCommBaseline = []MicroBenchResult{
	{Name: "CommTypedObstaclesRoundtrip", NsPerOp: 21328, AllocsPerOp: 21, BytesPerOp: 4203, OpsPerSec: 46887},
	{Name: "CommSmallFrameSend1KB", NsPerOp: 1442, AllocsPerOp: 3, BytesPerOp: 1072, OpsPerSec: 693481},
	{Name: "CommRawRoundtrip4KB", NsPerOp: 17549, AllocsPerOp: 5, BytesPerOp: 8264, OpsPerSec: 56983},
	{Name: "LatticePingPong", NsPerOp: 658, AllocsPerOp: 1, BytesPerOp: 24, OpsPerSec: 1519757},
}

// PrePoolingCommBaseline fixes the "before" edge of the zero-copy receive
// work: typed codecs and deadline-aware coalescing had landed, but every
// received frame still made one allocation for its body ([]byte payload on
// the raw path, transient codec input on the typed path). Measured on the
// same machine immediately before the size-classed payload pools landed.
var PrePoolingCommBaseline = []MicroBenchResult{
	{Name: "CommTypedObstaclesRoundtrip", NsPerOp: 10710, AllocsPerOp: 9, BytesPerOp: 3354, OpsPerSec: 93371},
	{Name: "CommSmallFrameSend1KB", NsPerOp: 1149, AllocsPerOp: 3, BytesPerOp: 1072, OpsPerSec: 870322},
	{Name: "CommRawRoundtrip4KB", NsPerOp: 13302, AllocsPerOp: 5, BytesPerOp: 8264, OpsPerSec: 75177},
}

// PreShmTransportCommBaseline fixes the "before" edge of the transport
// backend work: the seam split had not landed and every link — including
// same-host ones — rode loopback TCP through the out-queue and writeLoop.
// Measured on the same machine immediately before the shared-memory
// backend and the direct ring send path landed.
var PreShmTransportCommBaseline = []MicroBenchResult{
	{Name: "CommTypedObstaclesRoundtrip", NsPerOp: 11991, AllocsPerOp: 7, BytesPerOp: 2459, OpsPerSec: 83396, NsMean: 13282.6, NsStddev: 1027.5, Runs: 5},
	{Name: "CommSmallFrameSend1KB", NsPerOp: 1302, AllocsPerOp: 3, BytesPerOp: 1072, OpsPerSec: 768049, NsMean: 1344.4, NsStddev: 38.1, Runs: 5},
	{Name: "CommRawRoundtrip4KB", NsPerOp: 9900, AllocsPerOp: 3, BytesPerOp: 72, OpsPerSec: 101010, NsMean: 10205.8, NsStddev: 254.3, Runs: 5},
	{Name: "CommBurstSend32x1KB", NsPerOp: 100155, AllocsPerOp: 32, BytesPerOp: 768, OpsPerSec: 9985, NsMean: 113107.2, NsStddev: 14570.6, Runs: 5},
	{Name: "CommHintedBurstSend32x1KB", NsPerOp: 37746, AllocsPerOp: 32, BytesPerOp: 768, OpsPerSec: 26493, NsMean: 43849.4, NsStddev: 4550.3, Runs: 5},
	{Name: "LatticePingPong", NsPerOp: 595, AllocsPerOp: 3, BytesPerOp: 72, OpsPerSec: 1680672, NsMean: 703.6, NsStddev: 84.2, Runs: 5},
}

// Fig8cPoint is one synthetic-pipeline sensor-scaling measurement.
type Fig8cPoint struct {
	Cameras      int     `json:"cameras"`
	Lidars       int     `json:"lidars"`
	Operators    int     `json:"operators"`
	ErdosRuntime float64 `json:"erdos_runtime_ms"`
}

// PreChangeFig8c is the sensor-scaling run (10 frames per config) taken with
// the gob data plane, for the same configurations Fig8cSensorScaling uses.
var PreChangeFig8c = []Fig8cPoint{
	{Cameras: 4, Lidars: 2, Operators: 30, ErdosRuntime: 3.348},
	{Cameras: 6, Lidars: 3, Operators: 45, ErdosRuntime: 5.592},
	{Cameras: 8, Lidars: 4, Operators: 60, ErdosRuntime: 8.469},
	{Cameras: 10, Lidars: 5, Operators: 75, ErdosRuntime: 12.670},
}

// PostFig8c reruns the sensor-scaling pipeline on the current data plane.
func PostFig8c(frames int) []Fig8cPoint {
	r := Fig8cSensorScaling(frames)
	pts := make([]Fig8cPoint, 0, len(r.Configs))
	for _, c := range r.Configs {
		pts = append(pts, Fig8cPoint{
			Cameras: c.Cameras, Lidars: c.Lidars, Operators: c.Operators,
			ErdosRuntime: float64(c.ErdosRuntime.Microseconds()) / 1e3,
		})
	}
	return pts
}

// benchRuns is how many times each micro-benchmark repeats. Single-CPU
// machines sharing a host show 30%+ run-to-run swing on socket round
// trips; the minimum over >=5 repetitions is the standard low-noise
// estimator for that regime, and the mean/stddev of the same repetitions
// are recorded alongside it so every number ships its own error bar.
const benchRuns = 5

// benchStats runs f benchRuns times and folds the repetitions into one
// result: NsPerOp/allocs/bytes from the fastest run, mean and stddev over
// all runs.
func benchStats(name string, f func(*testing.B)) MicroBenchResult {
	ns := make([]float64, 0, benchRuns)
	goroutines := make([]int, 0, benchRuns)
	best := testing.Benchmark(f)
	ns = append(ns, float64(best.NsPerOp()))
	goroutines = append(goroutines, runtime.NumGoroutine())
	for i := 1; i < benchRuns; i++ {
		r := testing.Benchmark(f)
		ns = append(ns, float64(r.NsPerOp()))
		goroutines = append(goroutines, runtime.NumGoroutine())
		if r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	var sum float64
	for _, v := range ns {
		sum += v
	}
	mean := sum / float64(len(ns))
	var sq float64
	for _, v := range ns {
		sq += (v - mean) * (v - mean)
	}
	out := toResult(name, best)
	out.NsMean = mean
	out.NsStddev = math.Sqrt(sq / float64(len(ns)-1))
	out.Runs = len(ns)
	out.GoroutineRuns = goroutines
	return out
}

// LeakDriftBench repeats harness-heavy workloads — each repetition builds
// and tears down a full transport or scheduler — purely for the per-run
// goroutine telemetry: a leak in any Close path shows up as a count that
// climbs with every repetition. The ns numbers are incidental; callers
// feed the results to GoroutineGrowth and fail on a non-empty answer.
func LeakDriftBench() []MicroBenchResult {
	return []MicroBenchResult{
		benchStats("LeakDriftCommRawRoundtrip", benchCommRawRoundtrip),
		benchStats("LeakDriftShmRoundtrip", benchShmRawRoundtrip),
		benchStats("LeakDriftLatticeSubmit", benchSubmitExecute),
	}
}

// CommMicroBench measures the current data plane with the same workloads as
// the pre-change baseline, plus the hinted burst the coalescer exists for.
func CommMicroBench() []MicroBenchResult {
	return []MicroBenchResult{
		benchStats("CommTypedObstaclesRoundtrip", benchTypedObstaclesRoundtrip),
		benchStats("CommSmallFrameSend1KB", benchSmallFrameSend1KB),
		benchStats("CommRawRoundtrip4KB", benchCommRawRoundtrip),
		benchStats("CommShmRoundtrip4KB", benchShmRawRoundtrip),
		benchStats("CommBurstSend32x1KB", benchBurstSend(false)),
		benchStats("CommHintedBurstSend32x1KB", benchBurstSend(true)),
		benchStats("LatticePingPong", benchLatticePingPong),
	}
}

// ShmSmokeBench is the CI smoke variant of the shm fast-path benchmark:
// one run each of the loopback-TCP and shm-ring 4KB round-trips, enough to
// catch ring harness rot or a silent TCP fallback without the five-run
// statistics of the recorded bench.
func ShmSmokeBench() (tcp, shm MicroBenchResult) {
	return toResult("CommRawRoundtrip4KB", testing.Benchmark(benchCommRawRoundtrip)),
		toResult("CommShmRoundtrip4KB", testing.Benchmark(benchShmRawRoundtrip))
}

func benchObstacles() pylot.Obstacles {
	o := pylot.Obstacles{Detector: "edet4"}
	for i := 0; i < 12; i++ {
		o.Tracks = append(o.Tracks, tracking.Track{
			ID: i, X: float64(i) * 3.5, Y: -1.25, VX: 0.5, VY: 0.1,
			Age: 10 + i, LastUpdate: 42,
		})
	}
	return o
}

// benchTypedObstaclesRoundtrip echoes a 12-track Obstacles payload between
// two transports. Pre-change this was a gob Envelope in both directions; it
// now rides the registered typed codec.
func benchTypedObstaclesRoundtrip(b *testing.B) {
	var echoTo atomic.Pointer[comm.Transport]
	done := make(chan struct{}, 1)
	a, err := comm.Listen("cb-echo", "127.0.0.1:0", func(_ string, id stream.ID, m message.Message) {
		_ = echoTo.Load().Send("cb-cli", id, m) //erdos:allow deadlinehint the benchmark measures the unhinted flush path on purpose
	})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	echoTo.Store(a)
	c, err := comm.Listen("cb-cli", "127.0.0.1:0", func(string, stream.ID, message.Message) {
		done <- struct{}{}
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Dial(a.Addr()); err != nil {
		b.Fatal(err)
	}
	payload := benchObstacles()
	id := stream.NewID()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		//erdos:allow deadlinehint the benchmark measures the unhinted flush path on purpose
		if err := c.Send("cb-echo", id, message.Data(timestamp.New(uint64(i+1)), payload)); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}

func benchSmallFrameSend1KB(b *testing.B) {
	var received atomic.Int64
	a, err := comm.Listen("cb-a", "127.0.0.1:0", func(string, stream.ID, message.Message) {
		received.Add(1)
	})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	c, err := comm.Listen("cb-c", "127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Dial(a.Addr()); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	id := stream.NewID()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		//erdos:allow deadlinehint the benchmark measures the unhinted flush path on purpose
		if err := c.Send("cb-a", id, message.Data(timestamp.New(uint64(i+1)), payload)); err != nil {
			b.Fatal(err)
		}
	}
	for received.Load() < int64(b.N) {
		time.Sleep(100 * time.Microsecond)
	}
}

// benchBurstSend sends 32 one-KB frames back to back and blocks until all
// of them arrive (channel-signalled, so the waiting goroutine parks and
// socket readiness is delivered immediately instead of on the next netpoll
// tick). The sender rides the no-boxing SendBytes path and the receiver
// recycles each body, so the profile measures the wire, not the heap. The
// yield between sends hands the write loop the frames one at a time, the
// way an operator callback produces them (without it the out-queue itself
// batches the whole burst and both variants degenerate to one identical
// flush). With a zero hint every frame then flushes on queue drain — one
// syscall per frame; a deadline hint lets the adaptive coalescer hold for
// company bounded by the observed inter-arrival gap and put the burst on
// the socket as a single frame train.
func benchBurstSend(hinted bool) func(b *testing.B) {
	const burst = 32
	return func(b *testing.B) {
		var received atomic.Int64
		done := make(chan struct{}, 1)
		a, err := comm.Listen("cb-ba", "127.0.0.1:0", func(_ string, _ stream.ID, m message.Message) {
			comm.ReleaseMessage(m)
			if received.Add(1)%burst == 0 {
				done <- struct{}{}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		defer a.Close()
		c, err := comm.Listen("cb-bc", "127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		if err := c.Dial(a.Addr()); err != nil {
			b.Fatal(err)
		}
		payload := make([]byte, 1024)
		id := stream.NewID()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var h comm.FlushHint
			if hinted {
				h.FlushBy = time.Now().Add(5 * time.Millisecond)
			}
			for j := 0; j < burst; j++ {
				ts := timestamp.New(uint64(i*burst + j + 1))
				if err := c.SendBytes("cb-ba", id, ts, payload, h, false); err != nil {
					b.Fatal(err)
				}
				runtime.Gosched()
			}
			<-done
		}
	}
}

// benchShmRawRoundtrip echoes the same 4KB payload as
// benchCommRawRoundtrip, but over the shared-memory ring backend with the
// pooled hot-path discipline end to end: the client sends via SendBytes
// (no interface boxing), the echo relinquishes the pooled body once it is
// in the ring, and the client recycles what it receives. This is the
// same-host edge the locality-aware placement scorer steers affinity
// groups onto.
func benchShmRawRoundtrip(b *testing.B) {
	dir, err := os.MkdirTemp("", "erdos-bench-shm-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	backend := func() *shm.Backend {
		sb := shm.New()
		sb.Dir = dir
		return sb
	}
	var echoTo atomic.Pointer[comm.Transport]
	done := make(chan struct{}, 1)
	a, err := comm.Listen("bench-shm-echo", "127.0.0.1:0", func(_ string, id stream.ID, m message.Message) {
		_ = echoTo.Load().SendRelease("bench-shm-cli", id, m, comm.FlushHint{})
	}, comm.WithBackend(backend(), ""))
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	echoTo.Store(a)
	c, err := comm.Listen("bench-shm-cli", "127.0.0.1:0", func(_ string, _ stream.ID, m message.Message) {
		comm.ReleaseMessage(m)
		done <- struct{}{}
	}, comm.WithBackend(backend(), ""))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Dial("shm://" + a.AddrOf("shm")); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096)
	id := stream.NewID()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Ring sends publish synchronously, so the buffer is reusable as
		// soon as SendBytes returns.
		if err := c.SendBytes("bench-shm-echo", id, timestamp.New(uint64(i+1)), payload, comm.FlushHint{}, false); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}

func benchLatticePingPong(b *testing.B) {
	l := lattice.New(4)
	defer l.Stop()
	q := l.NewOpQueue(lattice.ModeSequential)
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		want := uint64(i + 1)
		//erdos:allow deadlinehint benchmark measures the undeadlined fast path
		l.Submit(q, lattice.KindMessage, timestamp.New(want), func() { seq.Store(want) })
		for seq.Load() != want {
			runtime.Gosched()
		}
	}
}
