package pylot

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/av/control"
	"github.com/erdos-go/erdos/internal/av/planning"
	"github.com/erdos-go/erdos/internal/av/prediction"
	"github.com/erdos-go/erdos/internal/av/tracking"
	"github.com/erdos-go/erdos/internal/core/cluster"
	"github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/erdos"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/worker"
	"github.com/erdos-go/erdos/internal/policy"
)

// codecFixtures returns one representative value per typed-frame payload,
// with every exported field non-zero so round-trip equality is meaningful.
func codecFixtures() []struct {
	name    string
	codecID uint64
	payload comm.FramePayload
} {
	tracks := []tracking.Track{
		{ID: 1, X: 40.5, Y: -1.25, VX: -3.5, VY: 0.25, Age: 12, Misses: 1, LastUpdate: 9},
		{ID: 2, X: 18.25, Y: 2.5, VX: 0.5, VY: -0.75, Age: 3, Misses: 0, LastUpdate: 9},
	}
	return []struct {
		name    string
		codecID uint64
		payload comm.FramePayload
	}{
		{"CameraFrame", CameraFrameCodecID, CameraFrame{
			Seq: 7, EgoSpeed: 11.5,
			Agents: []tracking.Observation{{X: 40, Y: -1}, {X: 18, Y: 2}},
		}},
		{"Obstacles", ObstaclesCodecID, Obstacles{Tracks: tracks, Detector: "edet4"}},
		{"Predictions", PredictionsCodecID, Predictions{
			Horizon: 3 * time.Second,
			Trajectories: []prediction.Trajectory{
				{TrackID: 1, Waypoints: []prediction.Waypoint{
					{T: 250 * time.Millisecond, X: 39.6, Y: -1.2},
					{T: 500 * time.Millisecond, X: 38.8, Y: -1.1},
				}},
				{TrackID: 2},
			},
		}},
		{"Plan", PlanCodecID, Plan{
			Trajectory: planning.Trajectory{Target: 1.5, Duration: 3.25, MaxJerk: 0.8, Cost: 2.25, Feasible: true},
			Waypoints:  []control.Waypoint{{X: 3, Y: 0.5}, {X: 6, Y: 1.0}},
			Candidates: 17,
		}},
		{"Command", control.CommandCodecID, Command{Steer: -0.125, Throttle: 0.6, Brake: 0.1}},
		{"Environment", policy.EnvironmentCodecID, policy.Environment{
			Speed: 12.5, AgentDistance: 34.25, HasAgent: true, CurrentResponse: 180 * time.Millisecond,
		}},
	}
}

// TestPayloadCodecRoundTrip checks that every pipeline payload decodes to a
// value equal to the original through the registered codec — the same
// guarantee the gob fallback gave for exported fields.
func TestPayloadCodecRoundTrip(t *testing.T) {
	for _, f := range codecFixtures() {
		body := f.payload.MarshalFrame(nil)
		got, err := comm.DecodeFrameBody(f.codecID, 1, body)
		if err != nil {
			t.Fatalf("%s: decode: %v", f.name, err)
		}
		if !reflect.DeepEqual(got, any(f.payload)) {
			t.Fatalf("%s: round trip mismatch:\n got %+v\nwant %+v", f.name, got, f.payload)
		}
		if f.payload.FrameCodec() != f.codecID {
			t.Fatalf("%s: FrameCodec = %d, want %d", f.name, f.payload.FrameCodec(), f.codecID)
		}
	}
}

// TestPayloadCodecTruncation feeds every strict prefix of each encoded body
// to its codec: all must error (the decoders always consume the complete
// structure) and none may panic or over-allocate.
func TestPayloadCodecTruncation(t *testing.T) {
	for _, f := range codecFixtures() {
		body := f.payload.MarshalFrame(nil)
		for n := 0; n < len(body); n++ {
			if _, err := comm.DecodeFrameBody(f.codecID, 1, body[:n]); err == nil {
				t.Fatalf("%s: prefix of %d/%d bytes decoded without error", f.name, n, len(body))
			}
		}
	}
}

// TestPayloadCodecVersionSkew: frames claiming a newer codec version than
// the local build must be rejected, never mis-decoded.
func TestPayloadCodecVersionSkew(t *testing.T) {
	for _, f := range codecFixtures() {
		body := f.payload.MarshalFrame(nil)
		if _, err := comm.DecodeFrameBody(f.codecID, 2, body); err == nil {
			t.Fatalf("%s: version 2 frame accepted by version 1 codec", f.name)
		}
	}
}

// TestZeroGobPylotCluster is the steady-state acceptance test: a pylot
// pipeline split across two workers, with every boundary stream forwarded
// across the wire, must send zero gob envelopes on the data plane — every
// payload type rides a raw or typed binary frame.
func TestZeroGobPylotCluster(t *testing.T) {
	g := erdos.NewGraph()
	Build(g, Config{TimeScale: 50, TargetSpeed: 12, Seed: 7})
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	raw := g.Raw()

	// Ingest on w1; extract every boundary stream on both workers so each
	// payload type (CameraFrame, Obstacles, Predictions, Plan, Command,
	// plus the Environment and Duration policy streams) crosses the socket
	// in some direction.
	var camID, cmdID stream.ID
	extract := map[stream.ID][]string{}
	for _, s := range raw.Streams() {
		extract[s.ID] = []string{"w1", "w2"}
		switch s.Name {
		case "camera":
			camID = s.ID
		case "commands":
			cmdID = s.ID
		}
	}
	ingestAt := map[stream.ID]string{camID: "w1"}

	l, err := cluster.NewLeader("127.0.0.1:0", []string{"w1", "w2"}, raw, ingestAt, extract)
	if err != nil {
		t.Fatal(err)
	}
	var nodes [2]*cluster.Node
	var wg sync.WaitGroup
	var errs [2]error
	for i, name := range []string{"w1", "w2"} {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			nodes[i], errs[i] = cluster.Join(l.Addr(), name, raw, worker.Options{Threads: 4})
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	defer nodes[0].Close()
	defer nodes[1].Close()
	if err := l.Wait(); err != nil {
		t.Fatal(err)
	}

	// The affinity group keeps perception→prediction→planning on one
	// worker even though only perception would land there round-robin.
	assign := nodes[0].Schedule().Assignments
	if assign["perception"] != assign["prediction"] || assign["perception"] != assign["planning"] {
		t.Fatalf("affinity chain split across workers: %v", assign)
	}

	var mu sync.Mutex
	var commands []Command
	if err := nodes[1].Worker.Subscribe(cmdID, func(m message.Message) {
		if !m.IsData() {
			return
		}
		mu.Lock()
		commands = append(commands, m.Payload.(Command))
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	const frames = 12
	for f := 1; f <= frames; f++ {
		ts := erdos.T(uint64(f))
		frame := CameraFrame{Seq: uint64(f), EgoSpeed: 12,
			Agents: []tracking.Observation{{X: 80 - 2*float64(f), Y: 0}}}
		if err := nodes[0].Worker.Inject(camID, message.Data(ts, frame)); err != nil {
			t.Fatal(err)
		}
		if err := nodes[0].Worker.Inject(camID, message.Watermark(ts)); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(20 * time.Second)
	for {
		mu.Lock()
		n := len(commands)
		mu.Unlock()
		if n >= frames {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("got %d commands, want %d", n, frames)
		}
		time.Sleep(time.Millisecond)
	}

	for i, n := range nodes {
		sent := n.Transport.SentFrames()
		recv := n.Transport.ReceivedFrames()
		if sent.Gob != 0 || recv.Gob != 0 {
			t.Fatalf("node %d: gob frames on the data plane: sent %+v recv %+v", i, sent, recv)
		}
	}
	// The boundary payloads all cross from w1, so its typed counter must
	// be busy (Commands, Obstacles, Predictions, Plans, Environment) and
	// w2 forwards typed Duration allocations back.
	if s := nodes[0].Transport.SentFrames(); s.Typed == 0 {
		t.Fatalf("w1 sent no typed frames: %+v", s)
	}
	if s := nodes[1].Transport.SentFrames(); s.Typed == 0 {
		t.Fatalf("w2 sent no typed frames: %+v", s)
	}
}
