package pylot

import (
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/av/tracking"
	"github.com/erdos-go/erdos/internal/core/erdos"
)

// drive feeds frames of an agent approaching from ahead and returns the
// collected outputs.
func drive(t *testing.T, frames int, startDist, closing float64) (*erdos.Collector[Command], *erdos.Collector[Plan], *erdos.Collector[time.Duration]) {
	t.Helper()
	g := erdos.NewGraph()
	h := Build(g, Config{TimeScale: 50, TargetSpeed: 12, Seed: 7})
	rt, err := g.RunLocal(erdos.WithThreads(8))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	cmds, err := erdos.Collect(rt, h.Commands)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := erdos.Collect(rt, h.Plans)
	if err != nil {
		t.Fatal(err)
	}
	dls, err := erdos.Collect(rt, h.Deadlines)
	if err != nil {
		t.Fatal(err)
	}
	cam, err := erdos.Writer(rt, h.Camera)
	if err != nil {
		t.Fatal(err)
	}
	for f := 1; f <= frames; f++ {
		ts := erdos.T(uint64(f))
		dist := startDist - closing*float64(f-1)
		frame := CameraFrame{Seq: uint64(f), EgoSpeed: 12}
		if dist > 0 {
			frame.Agents = []tracking.Observation{{X: dist, Y: 0}}
		}
		if err := cam.Send(ts, frame); err != nil {
			t.Fatal(err)
		}
		if err := cam.SendWatermark(ts); err != nil {
			t.Fatal(err)
		}
	}
	rt.Quiesce()
	return cmds, plans, dls
}

func TestPipelineProducesCommandsEndToEnd(t *testing.T) {
	cmds, plans, _ := drive(t, 6, 80, 2)
	if cmds.Len() == 0 {
		t.Fatal("no control commands produced")
	}
	if plans.Len() != 6 {
		t.Fatalf("plans = %d, want one per frame", plans.Len())
	}
	for _, p := range plans.Data() {
		if p.Value.Trajectory.Duration <= 0 {
			t.Fatalf("degenerate plan: %+v", p.Value)
		}
		if len(p.Value.Waypoints) == 0 {
			t.Fatal("plan without waypoints")
		}
	}
}

func TestDeadlineTightensAsAgentCloses(t *testing.T) {
	_, _, dls := drive(t, 10, 90, 9) // agent closes from 90 m to ~9 m
	data := dls.Data()
	if len(data) < 5 {
		t.Fatalf("too few policy decisions: %d", len(data))
	}
	first := data[0].Value
	last := data[len(data)-1].Value
	if last >= first {
		t.Fatalf("pDP never tightened: first %v, last %v", first, last)
	}
	if last > 200*time.Millisecond {
		t.Fatalf("final allocation %v too lax with an agent ~9 m ahead", last)
	}
}

func TestClearRoadKeepsAccurateConfiguration(t *testing.T) {
	_, _, dls := drive(t, 5, 500, 0) // agent far beyond the envelope
	for _, d := range dls.Data() {
		if d.Value < 400*time.Millisecond {
			t.Fatalf("policy tightened to %v on a clear road", d.Value)
		}
	}
}

func TestPlannerSwervesAroundPredictedObstacle(t *testing.T) {
	_, plans, _ := drive(t, 6, 25, 1) // stationary-ish obstacle in lane, close
	data := plans.Data()
	swerved := false
	for _, p := range data {
		if p.Value.Trajectory.Target > 0.9 || p.Value.Trajectory.Target < -0.9 {
			swerved = true
		}
	}
	if !swerved {
		t.Fatal("planner never planned around the in-lane obstacle")
	}
}
