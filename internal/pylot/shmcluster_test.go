package pylot

import (
	"sync"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/av/tracking"
	"github.com/erdos-go/erdos/internal/core/cluster"
	"github.com/erdos-go/erdos/internal/core/erdos"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/worker"
)

// TestMixedBackendPylotCluster drives the full pylot pipeline on a
// three-worker cluster where w1 and w2 share a host (their edge rides the
// shared-memory ring) while w3 is host-remote (plain TCP edges): every
// injected frame must yield exactly one control command — nothing lost,
// nothing duplicated — and the data plane must stay zero-gob on ring and
// TCP links alike.
func TestMixedBackendPylotCluster(t *testing.T) {
	const frames = 40

	g := erdos.NewGraph()
	Build(g, Config{TimeScale: 50, TargetSpeed: 12, Seed: 7})
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	raw := g.Raw()

	var camID, cmdID stream.ID
	for _, s := range raw.Streams() {
		switch s.Name {
		case "camera":
			camID = s.ID
		case "commands":
			cmdID = s.ID
		}
	}
	ingestAt := map[stream.ID]string{camID: "w3"}
	extract := map[stream.ID][]string{cmdID: {"w3"}}

	names := []string{"w1", "w2", "w3"}
	l, err := cluster.NewLeader("127.0.0.1:0", names, raw, ingestAt, extract)
	if err != nil {
		t.Fatal(err)
	}

	jopts := map[string][]cluster.JoinOption{
		"w1": {cluster.WithHostLocality("hostA", t.TempDir())},
		"w2": {cluster.WithHostLocality("hostA", t.TempDir())},
		"w3": nil,
	}
	nodes := make([]*cluster.Node, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			nodes[i], errs[i] = cluster.Join(l.Addr(), name, raw,
				worker.Options{Threads: 4}, jopts[name]...)
		}(i, name)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("join %d: %v", i, errs[i])
		}
		defer nodes[i].Close()
	}
	if err := l.Wait(); err != nil {
		t.Fatal(err)
	}

	wantSchemes := map[string]map[string]string{
		"w1": {"w2": "shm", "w3": "tcp"},
		"w2": {"w1": "shm", "w3": "tcp"},
		"w3": {"w1": "tcp", "w2": "tcp"},
	}
	for i, name := range names {
		got := nodes[i].Transport.PeerSchemes()
		for peer, scheme := range wantSchemes[name] {
			if got[peer] != scheme {
				t.Fatalf("%s->%s scheme = %q, want %q (all: %v)", name, peer, got[peer], scheme, got)
			}
		}
	}

	var mu sync.Mutex
	got := make(map[uint64]int)
	if err := nodes[2].Worker.Subscribe(cmdID, func(m message.Message) {
		if !m.IsData() {
			return
		}
		mu.Lock()
		got[m.Timestamp.L]++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	for f := 1; f <= frames; f++ {
		ts := erdos.T(uint64(f))
		frame := CameraFrame{Seq: uint64(f), EgoSpeed: 12,
			Agents: []tracking.Observation{{X: 80 - 0.5*float64(f), Y: 0}}}
		if err := nodes[2].Worker.Inject(camID, message.Data(ts, frame)); err != nil {
			t.Fatal(err)
		}
		if err := nodes[2].Worker.Inject(camID, message.Watermark(ts)); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= frames {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d command timestamps arrived", n, frames)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	for f := uint64(1); f <= frames; f++ {
		if got[f] != 1 {
			mu.Unlock()
			t.Fatalf("frame %d produced %d commands, want exactly 1", f, got[f])
		}
	}
	mu.Unlock()

	for i, name := range names {
		s, r := nodes[i].Transport.SentFrames(), nodes[i].Transport.ReceivedFrames()
		if s.Gob != 0 || r.Gob != 0 {
			t.Fatalf("%s: gob data-plane frames: sent %+v recv %+v", name, s, r)
		}
	}
}
