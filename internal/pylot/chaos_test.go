package pylot

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/av/tracking"
	"github.com/erdos-go/erdos/internal/core/cluster"
	"github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/erdos"
	"github.com/erdos-go/erdos/internal/core/faults"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/worker"
)

// TestChaosWorkerCrash drives the full pylot pipeline on a three-worker
// cluster while a seeded fault schedule (1) ungracefully kills the worker
// running the perception→prediction→planning affinity group mid-stream and
// (2) stalls the re-homed planner after recovery. It asserts the failover
// contract end to end:
//
//   - the leader detects the crash within 2x the heartbeat period;
//   - the affinity group migrates as a unit, with perception's tracker
//     restored from its last shipped checkpoint;
//   - every injected frame yields exactly one control command — frames
//     retained during the outage are replayed, and re-processed timestamps
//     are fenced at the consumer, so nothing is lost or duplicated;
//   - the post-recovery stall surfaces as deadline-exception-handler
//     activations, not a hang.
func TestChaosWorkerCrash(t *testing.T) {
	const (
		// A generous heartbeat keeps the false-positive margin wide: a race-
		// instrumented run under load can delay a healthy worker's heartbeat
		// by well over 100ms, and a falsely-declared-dead survivor would sink
		// the whole test. FailAfter at 1.5x the period still detects a real
		// crash within the 2x-period budget asserted below.
		hb          = 200 * time.Millisecond
		failAfter   = 300 * time.Millisecond
		frames      = 100
		framePeriod = 20 * time.Millisecond
		killAt      = 500 * time.Millisecond
		stallAt     = 1400 * time.Millisecond
		// Longer than the stopping-distance policy's Max deadline (500ms),
		// so a stalled planning timestamp is guaranteed to miss.
		stallFor = 700 * time.Millisecond
	)

	var misses atomic.Uint64
	g := erdos.NewGraph()
	Build(g, Config{TimeScale: 50, TargetSpeed: 12, Seed: 7,
		OnMiss: func(*erdos.HandlerContext) { misses.Add(1) }})
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	raw := g.Raw()

	var camID, cmdID stream.ID
	for _, s := range raw.Streams() {
		switch s.Name {
		case "camera":
			camID = s.ID
		case "commands":
			cmdID = s.ID
		}
	}
	// Frames enter and commands leave on w3, which survives the crash: the
	// outage must not take the sensor or the actuator down with it.
	ingestAt := map[stream.ID]string{camID: "w3"}
	extract := map[stream.ID][]string{cmdID: {"w3"}}

	sch := faults.NewSchedule(41).
		Kill(killAt, "w1").
		Stall(stallAt, "w2", "planning", stallFor)
	inj := faults.NewInjector(sch)
	defer inj.Stop()

	names := []string{"w1", "w2", "w3"}
	l, err := cluster.NewLeader("127.0.0.1:0", names, raw, ingestAt, extract,
		cluster.WithHeartbeat(hb, failAfter))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Stop()

	nodes := make([]*cluster.Node, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			nodes[i], errs[i] = cluster.Join(l.Addr(), name, raw,
				worker.Options{Threads: 4, WrapCallback: inj.CallbackWrapper(name)},
				cluster.WithCommOptions(comm.WithConnHook(inj.Hook(name))))
		}(i, name)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("join %d: %v", i, errs[i])
		}
		defer nodes[i].Close()
	}
	if err := l.Wait(); err != nil {
		t.Fatal(err)
	}

	// The fault plan assumes the initial placement: the affinity chain on
	// w1 (the victim), pDP on w2 (the stall target after adoption), control
	// on w3.
	assign := nodes[2].Schedule().Assignments
	if assign["perception"] != "w1" || assign["planning"] != "w1" || assign["control"] != "w3" {
		t.Fatalf("unexpected initial placement: %v", assign)
	}
	inj.RegisterKiller("w1", nodes[0].Kill)

	var mu sync.Mutex
	got := make(map[uint64]int)
	if err := nodes[2].Worker.Subscribe(cmdID, func(m message.Message) {
		if !m.IsData() {
			return
		}
		mu.Lock()
		got[m.Timestamp.L]++
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	// Frames flow for the whole test (~2s) while the fault schedule plays
	// out underneath: kill at 0.5s, recovery ~0.7s, stall 1.3s–2.0s.
	inj.Arm()
	injectDone := make(chan error, 1)
	go func() {
		for f := 1; f <= frames; f++ {
			ts := erdos.T(uint64(f))
			frame := CameraFrame{Seq: uint64(f), EgoSpeed: 12,
				Agents: []tracking.Observation{{X: 80 - 0.5*float64(f), Y: 0}}}
			if err := nodes[2].Worker.Inject(camID, message.Data(ts, frame)); err != nil {
				injectDone <- err
				return
			}
			if err := nodes[2].Worker.Inject(camID, message.Watermark(ts)); err != nil {
				injectDone <- err
				return
			}
			time.Sleep(framePeriod)
		}
		injectDone <- nil
	}()

	waitFor := func(what string, d time.Duration, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(d)
		for !ok() {
			if time.Now().After(deadline) {
				mu.Lock()
				n := len(got)
				mu.Unlock()
				t.Fatalf("timed out waiting for %s (events %+v, %d timestamps seen)",
					what, l.Events(), n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor("recovery", 10*time.Second, func() bool {
		for _, e := range l.Events() {
			if e.Kind == cluster.EventRecovered {
				return true
			}
		}
		return false
	})
	missesAtRecovery := misses.Load()

	// Detection latency: from the injector's recorded kill instant to the
	// leader's failure event.
	var killedAt, detectedAt time.Time
	for _, f := range inj.Fired() {
		if f.Fault.Kind == faults.KindKill {
			killedAt = inj.ArmedAt().Add(f.At)
		}
	}
	for _, e := range l.Events() {
		if e.Kind == cluster.EventFailureDetected && e.Worker == "w1" {
			detectedAt = e.At
		}
	}
	if killedAt.IsZero() || detectedAt.IsZero() {
		t.Fatalf("missing kill record or detection event (fired %+v, events %+v)",
			inj.Fired(), l.Events())
	}
	if lat := detectedAt.Sub(killedAt); lat > 2*hb {
		t.Fatalf("detection latency %v exceeds 2x heartbeat period (%v)", lat, 2*hb)
	}

	// The affinity group moved as a unit to w2, and the adopter carries
	// perception's checkpointed tracker, not a cold start.
	newAssign := nodes[1].Schedule().Assignments
	for _, op := range []string{"perception", "prediction", "planning"} {
		if newAssign[op] != "w2" {
			t.Fatalf("%s re-placed on %q, want w2 (assign %v)", op, newAssign[op], newAssign)
		}
		if !nodes[1].Worker.Has(op) {
			t.Fatalf("w2 did not adopt %s", op)
		}
	}
	if cp, ok := nodes[1].Worker.Checkpoint("perception"); !ok || !cp.HasState {
		t.Fatalf("adopted perception has no committed state (ok=%v cp=%+v)", ok, cp)
	}

	if err := <-injectDone; err != nil {
		t.Fatalf("inject: %v", err)
	}

	// Every frame — before, during and after the outage — produces exactly
	// one command: the producer-side ring replays what the dead worker
	// never processed, and the control operator's watermark fence drops the
	// re-processed duplicates.
	waitFor("all commands", 30*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= frames
	})
	mu.Lock()
	defer mu.Unlock()
	for f := uint64(1); f <= frames; f++ {
		if n := got[f]; n != 1 {
			t.Fatalf("frame %d produced %d commands, want exactly 1", f, n)
		}
	}

	// The stalled planner missed deadlines after recovery and the misses
	// arrived through the DEH path while the pipeline kept running.
	if final := misses.Load(); final <= missesAtRecovery {
		t.Fatalf("no post-recovery deadline-exception activations (before %d, after %d)",
			missesAtRecovery, final)
	}
}
