package pylot

import (
	"time"

	"github.com/erdos-go/erdos/internal/av/control"
	"github.com/erdos-go/erdos/internal/av/prediction"
	"github.com/erdos-go/erdos/internal/av/tracking"
	"github.com/erdos-go/erdos/internal/core/comm"
)

// Typed frame codecs for every pylot boundary payload, completing the
// zero-gob data plane: with these (plus control.Command, policy.Environment
// and the built-in time.Duration codec) no steady-state pipeline message
// falls back to a gob Envelope. IDs 16+ are reserved for pipeline-level
// payloads; core/av-level codecs use low IDs.
const (
	CameraFrameCodecID uint64 = 16
	ObstaclesCodecID   uint64 = 17
	PredictionsCodecID uint64 = 18
	PlanCodecID        uint64 = 19
)

func init() {
	// Gob registrations back the negotiation fallback: a peer whose build
	// lacks one of these codecs receives the payload as a gob Envelope.
	comm.RegisterPayload(CameraFrame{})
	comm.RegisterPayload(Obstacles{})
	comm.RegisterPayload(Predictions{})
	comm.RegisterPayload(Plan{})
	comm.RegisterCodec(comm.Codec{
		ID:      CameraFrameCodecID,
		Name:    "pylot.CameraFrame",
		Version: 1,
		Unmarshal: func(body []byte, _ uint8) (any, error) {
			r := comm.ReaderOf(body)
			var f CameraFrame
			f.Seq = r.Uvarint()
			f.EgoSpeed = r.Float64()
			if n := r.Len(16); n > 0 {
				f.Agents = make([]tracking.Observation, n)
				for i := range f.Agents {
					f.Agents[i].UnmarshalFrame(&r)
				}
			}
			return f, r.Err()
		},
	})
	comm.RegisterCodec(comm.Codec{
		ID:      ObstaclesCodecID,
		Name:    "pylot.Obstacles",
		Version: 1,
		Unmarshal: func(body []byte, _ uint8) (any, error) {
			r := comm.ReaderOf(body)
			var o Obstacles
			o.Detector = r.String()
			if n := r.Len(36); n > 0 { // 4 floats + 3 varints + 1 uvarint
				o.Tracks = make([]tracking.Track, n)
				for i := range o.Tracks {
					o.Tracks[i].UnmarshalFrame(&r)
				}
			}
			return o, r.Err()
		},
	})
	comm.RegisterCodec(comm.Codec{
		ID:      PredictionsCodecID,
		Name:    "pylot.Predictions",
		Version: 1,
		Unmarshal: func(body []byte, _ uint8) (any, error) {
			r := comm.ReaderOf(body)
			var p Predictions
			p.Horizon = time.Duration(r.Varint())
			if n := r.Len(2); n > 0 { // varint id + uvarint count per trajectory
				p.Trajectories = make([]prediction.Trajectory, n)
				for i := range p.Trajectories {
					p.Trajectories[i].UnmarshalFrame(&r)
				}
			}
			return p, r.Err()
		},
	})
	comm.RegisterCodec(comm.Codec{
		ID:      PlanCodecID,
		Name:    "pylot.Plan",
		Version: 1,
		Unmarshal: func(body []byte, _ uint8) (any, error) {
			r := comm.ReaderOf(body)
			var p Plan
			p.Trajectory.UnmarshalFrame(&r)
			if n := r.Len(16); n > 0 {
				p.Waypoints = make([]control.Waypoint, n)
				for i := range p.Waypoints {
					p.Waypoints[i].UnmarshalFrame(&r)
				}
			}
			p.Candidates = int(r.Varint())
			return p, r.Err()
		},
	})
}

// FrameCodec implements comm.FramePayload.
func (f CameraFrame) FrameCodec() uint64 { return CameraFrameCodecID }

// MarshalFrame appends the frame's wire encoding to dst.
func (f CameraFrame) MarshalFrame(dst []byte) []byte {
	dst = comm.AppendUvarint(dst, f.Seq)
	dst = comm.AppendFloat64(dst, f.EgoSpeed)
	dst = comm.AppendUvarint(dst, uint64(len(f.Agents)))
	for _, a := range f.Agents {
		dst = a.MarshalFrame(dst)
	}
	return dst
}

// FrameCodec implements comm.FramePayload.
func (o Obstacles) FrameCodec() uint64 { return ObstaclesCodecID }

// MarshalFrame appends the obstacles' wire encoding to dst.
func (o Obstacles) MarshalFrame(dst []byte) []byte {
	dst = comm.AppendString(dst, o.Detector)
	dst = comm.AppendUvarint(dst, uint64(len(o.Tracks)))
	for i := range o.Tracks {
		dst = o.Tracks[i].MarshalFrame(dst)
	}
	return dst
}

// FrameCodec implements comm.FramePayload.
func (p Predictions) FrameCodec() uint64 { return PredictionsCodecID }

// MarshalFrame appends the predictions' wire encoding to dst.
func (p Predictions) MarshalFrame(dst []byte) []byte {
	dst = comm.AppendVarint(dst, int64(p.Horizon))
	dst = comm.AppendUvarint(dst, uint64(len(p.Trajectories)))
	for _, t := range p.Trajectories {
		dst = t.MarshalFrame(dst)
	}
	return dst
}

// FrameCodec implements comm.FramePayload.
func (p Plan) FrameCodec() uint64 { return PlanCodecID }

// MarshalFrame appends the plan's wire encoding to dst.
func (p Plan) MarshalFrame(dst []byte) []byte {
	dst = p.Trajectory.MarshalFrame(dst)
	dst = comm.AppendUvarint(dst, uint64(len(p.Waypoints)))
	for _, w := range p.Waypoints {
		dst = w.MarshalFrame(dst)
	}
	return comm.AppendVarint(dst, int64(p.Candidates))
}
