// Package pylot assembles the paper's AV pipeline (Fig. 1) as real
// operators on the ERDOS runtime: camera frames flow through detection,
// tracking, prediction and planning to control commands, with the deadline
// policy pDP running as an operator subgraph that closes the feedback loop
// of Fig. 4. The driving *evaluation* uses the virtual-time model in
// internal/pipeline for reproducibility; this package is the
// wall-clock-executable pipeline — what you would deploy — and is exercised
// by the integration tests and the quickstart-style demos.
//
// Component compute is emulated by busy-waiting for the calibrated model
// runtimes (scaled down by Config.TimeScale so tests run fast); the
// planner, tracker, predictor and controller are the real implementations
// from internal/av.
package pylot

import (
	"time"

	"github.com/erdos-go/erdos/internal/av/control"
	"github.com/erdos-go/erdos/internal/av/detection"
	"github.com/erdos-go/erdos/internal/av/planning"
	"github.com/erdos-go/erdos/internal/av/prediction"
	"github.com/erdos-go/erdos/internal/av/tracking"
	"github.com/erdos-go/erdos/internal/core/erdos"
	"github.com/erdos-go/erdos/internal/core/state"
	"github.com/erdos-go/erdos/internal/policy"
	"github.com/erdos-go/erdos/internal/trace"
)

// CameraFrame is the sensor input: the positions of visible agents plus
// ego state, as a simulator or sensor bridge would produce.
type CameraFrame struct {
	Seq    uint64
	Agents []tracking.Observation
	// EgoSpeed is the vehicle's speed (m/s).
	EgoSpeed float64
}

// Obstacles is the perception module's output.
type Obstacles struct {
	Tracks   []tracking.Track
	Detector string
}

// Predictions is the prediction module's output.
type Predictions struct {
	Trajectories []prediction.Trajectory
	Horizon      time.Duration
}

// Plan is the planning module's output.
type Plan struct {
	Trajectory planning.Trajectory
	Waypoints  []control.Waypoint
	Candidates int
}

// Command is the control module's output.
type Command = control.Command

// Config parameterizes the pipeline.
type Config struct {
	// TimeScale divides every emulated compute time (10 = ten times
	// faster than real time). 0 means 10.
	TimeScale float64
	// Policy computes the end-to-end deadline; nil uses the §7.4
	// stopping-distance policy.
	Policy policy.Policy
	// Deadline is the initial end-to-end deadline.
	Deadline time.Duration
	// TargetSpeed is the cruise speed handed to control.
	TargetSpeed float64
	// Seed drives the emulated runtime distributions.
	Seed int64
	// OnMiss, when non-nil, runs inside the deadline-exception handler of
	// every timestamp deadline in the pipeline (perception, planning), so
	// callers observe DEH activations — chaos tests assert that an outage
	// surfaces as deadline exceptions rather than silent hangs.
	OnMiss func(h *erdos.HandlerContext)
	// Prefix namespaces every operator, stream and deadline label (e.g.
	// "a-" yields "a-perception", "a-camera"), so several pipelines can be
	// built into one process and submitted as tenants of one cluster —
	// operator names must be unique across a cluster's composite graph.
	Prefix string
}

// Handles exposes the pipeline's boundary streams.
type Handles struct {
	Camera   erdos.Stream[CameraFrame]
	Commands erdos.Stream[Command]
	Plans    erdos.Stream[Plan]
	// Deadlines carries pDP's end-to-end allocations (observable for
	// diagnostics and tests).
	Deadlines erdos.Stream[time.Duration]
}

// perceptionState carries the tracker across timestamps.
type perceptionState struct {
	Tracker *tracking.Tracker
	LastObs []tracking.Observation
	Ego     float64
}

func clonePerception(s *perceptionState) *perceptionState {
	// The tracker must be deep-copied: committed versions are read outside
	// the operator's serial execution — checkpointed by the heartbeat loop,
	// handed to DEHs — while the working tracker keeps mutating.
	c := *s
	c.Tracker = s.Tracker.Clone()
	return &c
}

// predState carries the newest obstacles into prediction's watermark
// callback.
type predState struct{ Last Obstacles }

// planState carries the newest predictions into planning's watermark
// callback.
type planState struct{ Last Predictions }

// ctlState carries the newest plan and the PID/pure-pursuit controller into
// control's watermark callback. The controller lives in the store — not in a
// closure — because its PID integrator is operator state: after a failover
// the adopting worker restores it with RestoreAt, so replayed plans land on
// the checkpointed controller instead of a fresh one applying double effect.
type ctlState struct {
	Last Plan
	Ctl  *control.Controller
}

// clone produces an independent copy for the versioned store: the controller
// is copied by value so parallel views never share a PID integrator.
func (s *ctlState) clone() *ctlState {
	c := *s
	if c.Ctl != nil {
		ctl := *c.Ctl
		c.Ctl = &ctl
	}
	return &c
}

func init() {
	// Operator state crosses worker migrations as gob checkpoints
	// (state.Snapshot); register every concrete state type the pipeline
	// commits.
	state.RegisterState(&perceptionState{})
	state.RegisterState(&predState{})
	state.RegisterState(&planState{})
	state.RegisterState(&ctlState{})
}

// Build assembles the graph. Call g.RunLocal (or run it on a cluster)
// afterwards.
func Build(g *erdos.Graph, cfg Config) Handles {
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 10
	}
	if cfg.Policy == nil {
		cfg.Policy = policy.NewStoppingDistance()
	}
	if cfg.Deadline == 0 {
		cfg.Deadline = 200 * time.Millisecond
	}
	if cfg.TargetSpeed == 0 {
		cfg.TargetSpeed = 12
	}
	// One generator per operator: watermark callbacks of different
	// operators run concurrently on the lattice pool, and *trace.Rand is
	// not safe for concurrent use. Distinct streams also keep each
	// operator's modeled runtimes deterministic under a seed regardless
	// of how callbacks interleave across operators.
	perceptionRng := trace.New(cfg.Seed)
	predictionRng := trace.New(cfg.Seed + 1)

	// pn namespaces every graph-visible name under Config.Prefix.
	pn := func(s string) string { return cfg.Prefix + s }

	camera := erdos.IngestStream[CameraFrame](g, pn("camera"))
	obstacles := erdos.AddStream[Obstacles](g, pn("obstacles"))
	predictions := erdos.AddStream[Predictions](g, pn("predictions"))
	plans := erdos.AddStream[Plan](g, pn("plans"))
	commands := erdos.AddStream[Command](g, pn("commands"))
	envInfo := erdos.AddStream[policy.Environment](g, pn("env-info"))
	deadlines := erdos.AddStream[time.Duration](g, pn("deadlines"))

	dyn := erdos.DynamicDeadline(g, deadlines, cfg.Deadline)
	scale := cfg.TimeScale
	var onMiss erdos.HandlerCallback
	if cfg.OnMiss != nil {
		onMiss = cfg.OnMiss
	}

	// Perception: detection (emulated runtime, budget-driven model
	// choice) + the real SORT-style tracker.
	perception := g.Operator(pn("perception"))
	pOut := erdos.Output(perception, obstacles)
	envOut := erdos.Output(perception, envInfo)
	erdos.WithState(perception, &perceptionState{Tracker: tracking.NewTracker()}, clonePerception)
	erdos.Input(perception, camera, func(ctx *erdos.Context, t erdos.Timestamp, f CameraFrame) {
		st := erdos.StateOf[*perceptionState](ctx)
		st.LastObs = f.Agents
		st.Ego = f.EgoSpeed
	})
	perception.OnWatermark(func(ctx *erdos.Context) {
		st := erdos.StateOf[*perceptionState](ctx)
		rel, _, ok := ctx.Deadline()
		det := detection.EfficientDet[3]
		if ok {
			if m, fits := detection.BestWithin(rel * 30 / 100); fits {
				det = m
			} else {
				det = detection.EfficientDet[0]
			}
		}
		emulate(det.Runtime(perceptionRng, len(st.LastObs)), scale, ctx)
		tracks := st.Tracker.Update(ctx.Timestamp.L, 0.1, st.LastObs)
		emulate(tracking.SORT.Runtime(perceptionRng, len(tracks)), scale, ctx)
		out := Obstacles{Detector: det.Name}
		nearest, hasAgent := 0.0, false
		for _, tr := range tracks {
			out.Tracks = append(out.Tracks, *tr)
			if !hasAgent || tr.X < nearest {
				nearest, hasAgent = tr.X, true
			}
		}
		_ = ctx.Send(pOut, ctx.Timestamp, out)
		_ = ctx.Send(envOut, ctx.Timestamp, policy.Environment{
			Speed:         st.Ego,
			AgentDistance: nearest,
			HasAgent:      hasAgent,
			CurrentResponse: func() time.Duration {
				if ok {
					return rel
				}
				return cfg.Deadline
			}(),
		})
	})
	perception.TimestampDeadline(pn("perception"), dyn, erdos.Continue, onMiss)
	perception.Build()

	// pDP: the deadline policy as an operator subgraph (Fig. 4): consumes
	// the environment info perception shares, publishes allocations.
	pdp := g.Operator(pn("pDP"))
	dOut := erdos.Output(pdp, deadlines)
	pol := cfg.Policy
	erdos.Input(pdp, envInfo, func(ctx *erdos.Context, t erdos.Timestamp, env policy.Environment) {
		_ = ctx.Send(dOut, t, pol.Decide(env))
	})
	pdp.Build()

	// Prediction: the real constant-velocity predictor with the emulated
	// lightweight model runtime. The newest obstacles live in operator
	// state (not a closure) so they checkpoint and restore with the
	// operator on migration.
	predict := g.Operator(pn("prediction"))
	prOut := erdos.Output(predict, predictions)
	erdos.WithState(predict, &predState{}, func(s *predState) *predState { c := *s; return &c })
	erdos.Input(predict, obstacles, func(ctx *erdos.Context, t erdos.Timestamp, o Obstacles) {
		erdos.StateOf[*predState](ctx).Last = o
	})
	predict.OnWatermark(func(ctx *erdos.Context) {
		last := erdos.StateOf[*predState](ctx).Last
		horizon := prediction.HorizonForSpeed(cfg.TargetSpeed)
		emulate(prediction.Linear.Runtime(predictionRng, horizon, len(last.Tracks)), scale, ctx)
		tracks := make([]*tracking.Track, len(last.Tracks))
		for i := range last.Tracks {
			tracks[i] = &last.Tracks[i]
		}
		_ = ctx.Send(prOut, ctx.Timestamp, Predictions{
			Trajectories: prediction.Predict(tracks, horizon, 250*time.Millisecond),
			Horizon:      horizon,
		})
	})
	predict.Build()

	// Planning: the real anytime FOT planner consuming its remaining
	// allocation (§5.3).
	planOp := g.Operator(pn("planning"))
	plOut := erdos.Output(planOp, plans)
	erdos.WithState(planOp, &planState{}, func(s *planState) *planState { c := *s; return &c })
	erdos.Input(planOp, predictions, func(ctx *erdos.Context, t erdos.Timestamp, p Predictions) {
		erdos.StateOf[*planState](ctx).Last = p
	})
	planOp.OnWatermark(func(ctx *erdos.Context) {
		lastPred := erdos.StateOf[*planState](ctx).Last
		var obs []planning.Obstacle
		for _, tr := range lastPred.Trajectories {
			if len(tr.Waypoints) > 0 {
				w := tr.Waypoints[0]
				obs = append(obs, planning.Obstacle{X: w.X, Y: w.Y, Radius: 1.0})
			}
		}
		budget := 40 * time.Millisecond
		if rel, _, ok := ctx.Deadline(); ok {
			budget = rel * 53 / 100
		}
		st := planning.VehicleState{Speed: cfg.TargetSpeed}
		trj, ok, used := planning.PlanWithBudget(planning.DefaultConfig(), st, obs, budget, 2)
		emulate(used, scale, ctx)
		if !ok {
			trj = planning.Trajectory{Target: 0, Duration: 2}
		}
		plan := Plan{Trajectory: trj, Candidates: int(used / planning.PerCandidateCost)}
		for s := 0.25; s <= 1.0; s += 0.25 {
			plan.Waypoints = append(plan.Waypoints, control.Waypoint{
				X: cfg.TargetSpeed * trj.Duration * s,
				Y: trj.Target * s,
			})
		}
		_ = ctx.Send(plOut, ctx.Timestamp, plan)
	})
	planOp.TimestampDeadline(pn("planning"), dyn, erdos.Continue, onMiss)
	planOp.Build()

	// Control: the real PID + pure-pursuit controller at the end of the
	// chain. Commands are emitted from the watermark callback, not per
	// data message: the runtime drops regressed watermarks, so a replayed
	// plan after a failover produces no second command for a timestamp the
	// controller already acted on (exactly-once effects at watermark
	// granularity).
	ctl := g.Operator(pn("control"))
	cOut := erdos.Output(ctl, commands)
	erdos.WithState(ctl, &ctlState{Ctl: control.NewController()}, (*ctlState).clone)
	erdos.Input(ctl, plans, func(ctx *erdos.Context, t erdos.Timestamp, p Plan) {
		erdos.StateOf[*ctlState](ctx).Last = p
	})
	ctl.OnWatermark(func(ctx *erdos.Context) {
		st := erdos.StateOf[*ctlState](ctx)
		emulate(control.Runtime, scale, ctx)
		if st.Ctl == nil {
			// A checkpoint decoded on an adopting worker may omit the
			// controller (gob drops what it cannot express); degrade to a
			// fresh controller rather than dropping the command.
			st.Ctl = control.NewController()
		}
		cmd := st.Ctl.Step(cfg.TargetSpeed*0.95, cfg.TargetSpeed, st.Last.Waypoints, 100*time.Millisecond)
		_ = ctx.Send(cOut, ctx.Timestamp, cmd)
	})
	ctl.Build()

	// The perception→prediction→planning chain dominates the critical path
	// of every frame; co-locating it keeps each timestamp's cascade of
	// callbacks on one lattice shard (and, on a cluster, one worker) so
	// intermediate payloads never cross a cache line or a socket.
	g.Affinity(pn("perception"), pn("prediction"), pn("planning"))

	return Handles{Camera: camera, Commands: commands, Plans: plans, Deadlines: deadlines}
}

// emulate busy-waits for the modeled runtime scaled down, respecting
// aborts so DEHs can take over promptly.
func emulate(d time.Duration, scale float64, ctx *erdos.Context) {
	d = time.Duration(float64(d) / scale)
	deadline := time.Now().Add(d) //erdos:allow wallclock the spin IS the modeled compute; it burns real CPU time, it does not schedule anything
	for time.Now().Before(deadline) {
		if ctx != nil && ctx.Aborted() {
			return
		}
	}
}
