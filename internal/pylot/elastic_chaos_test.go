package pylot

import (
	"sync"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/av/tracking"
	"github.com/erdos-go/erdos/internal/core/cluster"
	"github.com/erdos-go/erdos/internal/core/cluster/elastic"
	"github.com/erdos-go/erdos/internal/core/erdos"
	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/state"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/worker"
	"github.com/erdos-go/erdos/internal/policy"
)

// seenState is the commands-sink state: how many times each timestamp's
// watermark fired. It lives in versioned operator state — not only in an
// external map — so the count migrates inside the tenant's consistent cut:
// a fence failure shows up as Seen[l] == 2 in committed state, while a
// re-fire after an epoch restore (whose first fire never committed) cleanly
// re-counts from the restored state.
type seenState struct{ Seen map[uint64]int }

func cloneSeen(s *seenState) *seenState {
	c := make(map[uint64]int, len(s.Seen))
	for k, v := range s.Seen {
		c[k] = v
	}
	return &seenState{Seen: c}
}

// buildTenant assembles one pylot pipeline under prefix plus a stateful
// commands sink that reports (timestamp, committed fire count) to record.
// It returns the raw graph and the camera ingest stream.
func buildTenant(t *testing.T, prefix string, scale float64, pol policy.Policy, seed int64, record func(l uint64, n int)) (*graph.Graph, stream.ID) {
	t.Helper()
	state.RegisterState(&seenState{})
	g := erdos.NewGraph()
	h := Build(g, Config{Prefix: prefix, TimeScale: scale, Policy: pol, TargetSpeed: 12, Seed: seed})
	sink := g.Operator(prefix + "sink")
	erdos.WithState(sink, &seenState{Seen: map[uint64]int{}}, cloneSeen)
	erdos.Input(sink, h.Commands, func(ctx *erdos.Context, ts erdos.Timestamp, c Command) {})
	sink.OnWatermark(func(ctx *erdos.Context) {
		st := erdos.StateOf[*seenState](ctx)
		st.Seen[ctx.Timestamp.L]++
		record(ctx.Timestamp.L, st.Seen[ctx.Timestamp.L])
	})
	sink.Build()
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	raw := g.Raw()
	for _, s := range raw.Streams() {
		if s.Name == prefix+"camera" {
			return raw, s.ID
		}
	}
	t.Fatalf("no %scamera stream", prefix)
	return nil, 0
}

// TestElasticChaosJoinDrainScaleUp drives the elastic-membership machinery
// end to end on a live two-tenant cluster:
//
//   - two pylot pipelines run as tenants of a two-worker cluster, each on
//     its own home worker, with cross-placed camera ingest;
//   - a worker joins gracefully mid-stream and is then drained back out,
//     without disturbing either tenant;
//   - tenant A is overloaded (a 1 ms static deadline and an injection rate
//     above its emulated service rate), so its urgency misses push its home
//     worker's congestion score over the autoscaler's high-water mark: the
//     leader spawns a pool worker and migrates tenant A onto it;
//   - every injected frame of both tenants yields exactly one committed
//     command-sink activation (exactly-once across join, drain and the
//     scale-up migration);
//   - deadline isolation holds: tenant A's misses are attributed to tenant
//     A alone — the healthy tenant B's miss count stays zero even while A
//     saturates its worker.
func TestElasticChaosJoinDrainScaleUp(t *testing.T) {
	const (
		hb        = 200 * time.Millisecond
		failAfter = 300 * time.Millisecond
		// Phase 1 (join + drain under light load) frame counts, then phase
		// 2 ramps tenant A hard while B keeps cruising.
		warmFrames = 20
		framesA    = 240
		framesB    = 120
	)

	var muA, muB sync.Mutex
	gotA := make(map[uint64]int)
	gotB := make(map[uint64]int)
	// Tenant A: a deadline no dispatch can meet once a queue forms (1 ms,
	// against ~0.5 ms/frame of emulated compute at TimeScale 40 — burst
	// injection below queues frames past it without saturating the CPU,
	// which would starve heartbeats on small machines). Tenant B: generous
	// deadline — it must never miss.
	rawA, aCam := buildTenant(t, "a-", 40, policy.StaticPolicy(time.Millisecond), 7, func(l uint64, n int) {
		muA.Lock()
		gotA[l] = n
		muA.Unlock()
	})
	rawB, bCam := buildTenant(t, "b-", 100, policy.StaticPolicy(500*time.Millisecond), 11, func(l uint64, n int) {
		muB.Lock()
		gotB[l] = n
		muB.Unlock()
	})
	registry := map[string]*graph.Graph{"tenant-a": rawA, "tenant-b": rawB}
	resolve := func(name string) *graph.Graph { return registry[name] }

	// The base graph every worker boots with; tenants extend it at runtime.
	gb := erdos.NewGraph()
	baseIn := erdos.IngestStream[int](gb, "base-in")
	noop := gb.Operator("base-noop")
	erdos.Input(noop, baseIn, func(ctx *erdos.Context, ts erdos.Timestamp, v int) {})
	noop.Build()
	if err := gb.Err(); err != nil {
		t.Fatal(err)
	}
	baseRaw := gb.Raw()
	var baseID stream.ID
	for _, s := range baseRaw.Streams() {
		if s.Name == "base-in" {
			baseID = s.ID
		}
	}

	pool := &cluster.ProcPool{
		Graph:    baseRaw,
		Opts:     worker.Options{Threads: 4},
		JoinOpts: []cluster.JoinOption{cluster.WithTenantResolver(resolve)},
	}
	names := []string{"w1", "w2"}
	l, err := cluster.NewLeader("127.0.0.1:0", names, baseRaw,
		map[stream.ID]string{baseID: "w1"}, nil,
		cluster.WithHeartbeat(hb, failAfter),
		// LowWater 0 keeps the cluster from ever reading as cold (this test
		// exercises scale-up); MaxWorkers caps the fleet at one spawn.
		cluster.WithAutoscale(pool, elastic.Config{
			HighWater: 100, LowWater: 0,
			SustainTicks: 2, CooldownTicks: 8,
			MinWorkers: 2, MaxWorkers: 3,
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Stop()
	// The pool dials the leader's ephemeral port; it is only read at spawn
	// time, long after this write is ordered by the joins below.
	pool.Addr = l.Addr()
	defer pool.Close()

	nodes := make(map[string]*cluster.Node, 2)
	errs := make([]error, 2)
	nn := make([]*cluster.Node, 2)
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			nn[i], errs[i] = cluster.Join(l.Addr(), name, baseRaw,
				worker.Options{Threads: 4}, cluster.WithTenantResolver(resolve))
		}(i, name)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("join %d: %v", i, errs[i])
		}
		defer nn[i].Close()
		nodes[names[i]] = nn[i]
	}
	if err := l.Wait(); err != nil {
		t.Fatal(err)
	}

	// Tenant B first (the leader homes it on the emptier worker), then A,
	// which lands on the other static. A's camera ingests at B's home so
	// its frames always cross a forwarding link whose replay ring covers
	// the scale-up migration.
	if err := l.Submit(cluster.Tenant{Name: "tenant-b", Graph: rawB,
		IngestAt: map[stream.ID]string{bCam: ""}}); err != nil {
		t.Fatal(err)
	}
	homeB := nodes["w1"].Schedule().Assignments["b-control"]
	if homeB == "" {
		t.Fatalf("tenant-b not placed: %v", nodes["w1"].Schedule().Assignments)
	}
	if err := l.Submit(cluster.Tenant{Name: "tenant-a", Graph: rawA,
		IngestAt: map[stream.ID]string{aCam: homeB}}); err != nil {
		t.Fatal(err)
	}
	homeA := nodes["w1"].Schedule().Assignments["a-perception"]
	if homeA == "" || homeA == homeB {
		t.Fatalf("tenant-a homed on %q (tenant-b on %q), want distinct homes", homeA, homeB)
	}
	injNode := nodes[homeB]

	waitForEvent := func(kind cluster.EventKind, d time.Duration) cluster.Event {
		t.Helper()
		deadline := time.Now().Add(d)
		for {
			for _, e := range l.Events() {
				if e.Kind == kind {
					return e
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %v; events: %+v", kind, l.Events())
			}
			time.Sleep(time.Millisecond)
		}
	}
	inject := func(cam stream.ID, f uint64) error {
		ts := erdos.T(f)
		frame := CameraFrame{Seq: f, EgoSpeed: 12,
			Agents: []tracking.Observation{{X: 60 - 0.1*float64(f), Y: 0}}}
		if err := injNode.Worker.Inject(cam, message.Data(ts, frame)); err != nil {
			return err
		}
		return injNode.Worker.Inject(cam, message.Watermark(ts))
	}

	// Phase 1: light traffic for both tenants while a worker joins and is
	// drained back out underneath the stream.
	warmDone := make(chan error, 1)
	go func() {
		for f := uint64(1); f <= warmFrames; f++ {
			if err := inject(aCam, f); err != nil {
				warmDone <- err
				return
			}
			if err := inject(bCam, f); err != nil {
				warmDone <- err
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		warmDone <- nil
	}()

	n4, err := cluster.Join(l.Addr(), "w4", baseRaw,
		worker.Options{Threads: 2}, cluster.WithTenantResolver(resolve))
	if err != nil {
		t.Fatalf("runtime join: %v", err)
	}
	waitForEvent(cluster.EventJoined, 10*time.Second)
	if got := l.Members(); len(got) != 3 {
		t.Fatalf("members after join = %v, want 3", got)
	}
	if err := l.Drain("w4"); err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitForEvent(cluster.EventDrained, 10*time.Second)
	n4.Close()
	if got := l.Members(); len(got) != 2 {
		t.Fatalf("members after drain = %v, want 2", got)
	}
	if err := <-warmDone; err != nil {
		t.Fatalf("warm inject: %v", err)
	}

	// Phase 2: overload tenant A — bursts of 8 back-to-back frames every
	// 50 ms: the tail of each burst dispatches multiple service times
	// (~0.5 ms each) after arrival, past the 1 ms deadline, so most burst
	// frames count urgency misses while aggregate CPU stays low; B cruises.
	doneA := make(chan error, 1)
	doneB := make(chan error, 1)
	go func() {
		for f := uint64(warmFrames + 1); f <= framesA; f++ {
			if err := inject(aCam, f); err != nil {
				doneA <- err
				return
			}
			if (f-warmFrames)%8 == 0 {
				time.Sleep(50 * time.Millisecond)
			}
		}
		doneA <- nil
	}()
	go func() {
		for f := uint64(warmFrames + 1); f <= framesB; f++ {
			if err := inject(bCam, f); err != nil {
				doneB <- err
				return
			}
			time.Sleep(40 * time.Millisecond)
		}
		doneB <- nil
	}()

	up := waitForEvent(cluster.EventScaleUp, 30*time.Second)
	if up.Worker != homeA {
		t.Fatalf("scale-up triggered by %q, want tenant A's home %q", up.Worker, homeA)
	}
	mig := waitForEvent(cluster.EventMigrated, 30*time.Second)
	if mig.Worker != "w-elastic-1" {
		t.Fatalf("migration target %q, want w-elastic-1", mig.Worker)
	}
	if err := <-doneA; err != nil {
		t.Fatalf("inject A: %v", err)
	}
	if err := <-doneB; err != nil {
		t.Fatalf("inject B: %v", err)
	}

	// Every frame of both tenants lands exactly once, across the join, the
	// drain and the live migration.
	waitFor := func(what string, d time.Duration, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(d)
		for !ok() {
			if time.Now().After(deadline) {
				muA.Lock()
				na := len(gotA)
				muA.Unlock()
				muB.Lock()
				nb := len(gotB)
				muB.Unlock()
				t.Fatalf("timed out waiting for %s (A %d/%d, B %d/%d, events %+v)",
					what, na, framesA, nb, framesB, l.Events())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor("all commands", 60*time.Second, func() bool {
		muA.Lock()
		na := len(gotA)
		muA.Unlock()
		muB.Lock()
		nb := len(gotB)
		muB.Unlock()
		return na >= framesA && nb >= framesB
	})
	muA.Lock()
	for f := uint64(1); f <= framesA; f++ {
		if n := gotA[f]; n != 1 {
			muA.Unlock()
			t.Fatalf("tenant A frame %d committed %d times, want exactly 1", f, n)
		}
	}
	muA.Unlock()
	muB.Lock()
	for f := uint64(1); f <= framesB; f++ {
		if n := gotB[f]; n != 1 {
			muB.Unlock()
			t.Fatalf("tenant B frame %d committed %d times, want exactly 1", f, n)
		}
	}
	muB.Unlock()

	// Tenant A moved wholesale onto the spawned worker; B never moved.
	assign := nodes["w1"].Schedule().Assignments
	for _, op := range []string{"a-perception", "a-prediction", "a-planning", "a-pDP", "a-control", "a-sink"} {
		if assign[op] != "w-elastic-1" {
			t.Fatalf("%s on %q after scale-up, want w-elastic-1 (assign %v, events %+v)", op, assign[op], assign, l.Events())
		}
	}
	if assign["b-control"] != homeB {
		t.Fatalf("tenant B re-placed on %q, want %q", assign["b-control"], homeB)
	}
	spawned := pool.Node("w-elastic-1")
	if spawned == nil || !spawned.Worker.Has("a-perception") {
		t.Fatal("pool worker w-elastic-1 did not adopt tenant A")
	}

	// Deadline isolation: the overload is attributed to tenant A alone.
	misses := l.TenantMisses()
	if misses["tenant-a"] < 20 {
		t.Fatalf("tenant A urgency misses = %d, want >= 20 (misses %v)", misses["tenant-a"], misses)
	}
	if misses["tenant-b"] != 0 {
		t.Fatalf("healthy tenant B charged %d urgency misses, want 0 (misses %v)", misses["tenant-b"], misses)
	}
	// The drain was graceful: no worker was ever declared dead.
	for _, e := range l.Events() {
		if e.Kind == cluster.EventFailureDetected {
			t.Fatalf("failure detected during graceful membership changes: %+v", l.Events())
		}
	}
}
