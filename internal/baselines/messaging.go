// Package baselines reimplements the messaging paths of the systems the
// paper compares against in §7.2 (ROS, ROS2, Flink) plus an
// actionlib-style preemption baseline (§7.3, Fig. 10 left).
//
// These are not full reimplementations of those systems; they reproduce the
// cost structure of each system's communication path, per the paper's own
// overhead attribution: "Flink and ROS have additional data copies and a
// more inefficient networking path accounting for 80% of the overhead, and
// slower serialization/deserialization responsible for 20%", and ROS2's
// overhead stems from the Data Distribution Service's extra data
// conversions. Every copy and conversion below is genuinely performed, so
// the benchmarks measure real work.
package baselines

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Publisher is a one-to-many channel under test: Publish delivers payload
// to every subscriber's callback.
type Publisher interface {
	// Name identifies the system being modeled.
	Name() string
	// Publish sends one message to all subscribers.
	Publish(payload []byte) error
	// Close releases resources.
	Close()
}

// Receiver consumes delivered payloads; seq increments per message.
type Receiver func(seq uint64, payload []byte)

// --- intra-process publishers ---

// ErdosIntra delivers by reference: subscribers receive the same backing
// array (zero copy), exactly as ERDOS' intra-worker path shares heap
// references over in-process channels (§6.1).
type ErdosIntra struct {
	subs []Receiver
	seq  atomic.Uint64
}

// NewErdosIntra returns the zero-copy intra-process publisher.
func NewErdosIntra(subs []Receiver) *ErdosIntra { return &ErdosIntra{subs: subs} }

// Name implements Publisher.
func (e *ErdosIntra) Name() string { return "erdos" }

// Publish implements Publisher.
func (e *ErdosIntra) Publish(payload []byte) error {
	seq := e.seq.Add(1)
	for _, s := range e.subs {
		s(seq, payload)
	}
	return nil
}

// Close implements Publisher.
func (e *ErdosIntra) Close() {}

// CopyIntra is the copy-per-subscriber ablation of the zero-copy path:
// identical delivery, but every subscriber gets a private copy (what a
// system without shared immutable messages must do).
type CopyIntra struct {
	subs []Receiver
	seq  atomic.Uint64
}

// NewCopyIntra returns the copying intra-process publisher.
func NewCopyIntra(subs []Receiver) *CopyIntra { return &CopyIntra{subs: subs} }

// Name implements Publisher.
func (c *CopyIntra) Name() string { return "erdos-copy" }

// Publish implements Publisher.
func (c *CopyIntra) Publish(payload []byte) error {
	seq := c.seq.Add(1)
	for _, s := range c.subs {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		s(seq, cp)
	}
	return nil
}

// Close implements Publisher.
func (c *CopyIntra) Close() {}

// Ros2Intra models ROS2's intra-process path through the DDS layer: the
// message is serialized (copy 1), converted to the wire representation
// (copy 2 plus per-chunk processing), and converted back on the receive
// side (copy 3) — the data conversions Maruyama et al. identify as ROS2's
// dominant cost, which apply even between nodes in one process unless
// intra-process bypass is configured.
type Ros2Intra struct {
	subs []Receiver
	seq  atomic.Uint64
}

// NewRos2Intra returns the DDS-conversion intra-process publisher.
func NewRos2Intra(subs []Receiver) *Ros2Intra { return &Ros2Intra{subs: subs} }

// Name implements Publisher.
func (r *Ros2Intra) Name() string { return "ros2" }

// Publish implements Publisher.
func (r *Ros2Intra) Publish(payload []byte) error {
	seq := r.seq.Add(1)
	for _, s := range r.subs {
		serialized := cdrSerialize(payload)
		wire := ddsConvert(serialized)
		out := cdrDeserialize(wire)
		s(seq, out)
	}
	return nil
}

// Close implements Publisher.
func (r *Ros2Intra) Close() {}

// FlinkIntra models Flink's operator boundary inside one task manager
// without operator chaining: records are serialized into fixed-size network
// buffers and deserialized by the consumer.
type FlinkIntra struct {
	subs []Receiver
	seq  atomic.Uint64
}

// NewFlinkIntra returns the buffer-segmented intra-process publisher.
func NewFlinkIntra(subs []Receiver) *FlinkIntra { return &FlinkIntra{subs: subs} }

// Name implements Publisher.
func (f *FlinkIntra) Name() string { return "flink" }

// Publish implements Publisher.
func (f *FlinkIntra) Publish(payload []byte) error {
	seq := f.seq.Add(1)
	for _, s := range f.subs {
		segs := segment(payload, flinkBufferSize)
		out := reassemble(segs, len(payload))
		s(seq, out)
	}
	return nil
}

// Close implements Publisher.
func (f *FlinkIntra) Close() {}

// --- wire-format helpers (real work, modeled after each system) ---

const flinkBufferSize = 32 << 10

// cdrSerialize produces a CDR-style buffer: 4-byte length plus payload.
func cdrSerialize(p []byte) []byte {
	out := make([]byte, 4+len(p))
	binary.LittleEndian.PutUint32(out, uint32(len(p)))
	copy(out[4:], p)
	return out
}

// ddsConvert re-frames a serialized buffer into RTPS-style submessages,
// touching every byte again.
func ddsConvert(p []byte) []byte {
	const sub = 16 << 10
	n := (len(p) + sub - 1) / sub
	out := make([]byte, 0, len(p)+8*n)
	var hdr [8]byte
	for off := 0; off < len(p); off += sub {
		end := off + sub
		if end > len(p) {
			end = len(p)
		}
		binary.LittleEndian.PutUint32(hdr[:4], uint32(end-off))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(off))
		out = append(out, hdr[:]...)
		out = append(out, p[off:end]...)
	}
	return out
}

// cdrDeserialize undoes ddsConvert + cdrSerialize into a fresh buffer.
func cdrDeserialize(p []byte) []byte {
	var out []byte
	for off := 0; off+8 <= len(p); {
		n := int(binary.LittleEndian.Uint32(p[off : off+4]))
		off += 8
		if off+n > len(p) {
			break
		}
		out = append(out, p[off:off+n]...)
		off += n
	}
	if len(out) >= 4 {
		return out[4:]
	}
	return out
}

// segment copies a payload into fixed-size buffers.
func segment(p []byte, size int) [][]byte {
	var segs [][]byte
	for off := 0; off < len(p); off += size {
		end := off + size
		if end > len(p) {
			end = len(p)
		}
		seg := make([]byte, end-off)
		copy(seg, p[off:end])
		segs = append(segs, seg)
	}
	if len(segs) == 0 {
		segs = append(segs, []byte{})
	}
	return segs
}

// reassemble concatenates segments into a fresh buffer.
func reassemble(segs [][]byte, total int) []byte {
	out := make([]byte, 0, total)
	for _, s := range segs {
		out = append(out, s...)
	}
	return out
}

// --- inter-process publishers over real TCP ---

// tcpFanout is the shared machinery: one TCP connection per subscriber on
// the loopback interface, a framed stream, and a per-system transform
// applied on the send and receive paths.
type tcpFanout struct {
	name     string
	conns    []net.Conn
	writers  []*bufio.Writer
	mu       sync.Mutex
	seq      uint64
	sendPrep func([]byte) []byte
	recvPost func([]byte) []byte
	wg       sync.WaitGroup
	closed   atomic.Bool
}

// newTCPFanout wires `n` loopback connections, delivering to recv.
func newTCPFanout(name string, n int, recv Receiver, sendPrep, recvPost func([]byte) []byte) (*tcpFanout, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	t := &tcpFanout{name: name, sendPrep: sendPrep, recvPost: recvPost}
	type accepted struct {
		conn net.Conn
		err  error
	}
	acceptCh := make(chan accepted, n)
	go func() {
		for i := 0; i < n; i++ {
			c, err := ln.Accept()
			acceptCh <- accepted{c, err}
		}
	}()
	for i := 0; i < n; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Close()
			return nil, err
		}
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		t.conns = append(t.conns, c)
		t.writers = append(t.writers, bufio.NewWriterSize(c, 1<<16))
	}
	for i := 0; i < n; i++ {
		a := <-acceptCh
		if a.err != nil {
			t.Close()
			return nil, a.err
		}
		if tc, ok := a.conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		t.conns = append(t.conns, a.conn)
		conn := a.conn
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			br := bufio.NewReaderSize(conn, 1<<16)
			var hdr [12]byte
			for {
				if _, err := readFull(br, hdr[:]); err != nil {
					return
				}
				seq := binary.LittleEndian.Uint64(hdr[:8])
				n := int(binary.LittleEndian.Uint32(hdr[8:]))
				buf := make([]byte, n)
				if _, err := readFull(br, buf); err != nil {
					return
				}
				if t.recvPost != nil {
					buf = t.recvPost(buf)
				}
				recv(seq, buf)
			}
		}()
	}
	return t, nil
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Name implements Publisher.
func (t *tcpFanout) Name() string { return t.name }

// Publish implements Publisher.
func (t *tcpFanout) Publish(payload []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed.Load() {
		return fmt.Errorf("baselines: %s publisher closed", t.name)
	}
	t.seq++
	wire := payload
	if t.sendPrep != nil {
		wire = t.sendPrep(payload)
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[:8], t.seq)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(wire)))
	for _, w := range t.writers {
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(wire); err != nil {
			return err
		}
		//erdos:allow lockhold the baseline deliberately models naive lock-held fan-out; its cost is what fig. 8 measures
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Publisher.
func (t *tcpFanout) Close() {
	if t.closed.Swap(true) {
		return
	}
	for _, c := range t.conns {
		c.Close()
	}
	t.wg.Wait()
}

// NewErdosInter returns ERDOS' inter-worker path: one framing pass, no
// extra copies beyond the socket (§6.1).
func NewErdosInter(n int, recv Receiver) (Publisher, error) {
	return newTCPFanout("erdos", n, recv, nil, nil)
}

// NewRosInter returns the ROS-style path: an extra full copy into a
// message object on send, an extra copy out of the connection buffer on
// receive, and a header serialization pass — the "additional data copies
// and more inefficient networking path" of §7.2.
func NewRosInter(n int, recv Receiver) (Publisher, error) {
	prep := func(p []byte) []byte {
		msg := make([]byte, len(p)) // copy into the message object
		copy(msg, p)
		return cdrSerialize(msg) // header + second pass
	}
	post := func(p []byte) []byte {
		out := make([]byte, len(p)) // copy out of the connection buffer
		copy(out, p)
		if len(out) >= 4 {
			return out[4:]
		}
		return out
	}
	return newTCPFanout("ros", n, recv, prep, post)
}

// NewRos2Inter returns the ROS2/DDS path: CDR serialization, RTPS
// conversion and the reverse conversions on receive.
func NewRos2Inter(n int, recv Receiver) (Publisher, error) {
	prep := func(p []byte) []byte { return ddsConvert(cdrSerialize(p)) }
	post := cdrDeserialize
	return newTCPFanout("ros2", n, recv, prep, post)
}

// NewFlinkInter returns the Flink-style path: records are copied into
// fixed-size network buffers on send and reassembled from them on receive.
func NewFlinkInter(n int, recv Receiver) (Publisher, error) {
	prep := func(p []byte) []byte {
		return reassemble(segment(cdrSerialize(p), flinkBufferSize), len(p)+4)
	}
	post := func(p []byte) []byte {
		segs := segment(p, flinkBufferSize)
		out := reassemble(segs, len(p))
		if len(out) >= 4 {
			return out[4:]
		}
		return out
	}
	return newTCPFanout("flink", n, recv, prep, post)
}
