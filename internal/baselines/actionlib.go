package baselines

import (
	"container/heap"
	"sync"
	"time"
)

// ActionlibEnforcer models deadline-miss handling built on ROS' actionlib
// (the baseline of Fig. 10 left): a preemptible-task library whose client
// monitors goal timeouts from a fixed-rate polling loop. The handler
// therefore fires up to one poll period after the deadline actually
// expired — an average delay of half the period — whereas ERDOS' worker
// keeps a timer on the head of its deadline priority queue and fires
// within scheduler latency (§6.3).
type ActionlibEnforcer struct {
	// PollPeriod is the monitoring loop's period (actionlib clients
	// typically poll at ~1 kHz when configured aggressively).
	PollPeriod time.Duration

	mu      sync.Mutex
	queue   alHeap
	stopped bool
	done    chan struct{}
}

type alGoal struct {
	expires time.Time
	fire    func(delay time.Duration)
	idx     int
	stopped bool
}

// NewActionlib starts the polling enforcer.
func NewActionlib(poll time.Duration) *ActionlibEnforcer {
	if poll <= 0 {
		poll = time.Millisecond
	}
	a := &ActionlibEnforcer{PollPeriod: poll, done: make(chan struct{})}
	go a.loop()
	return a
}

// Arm registers a goal deadline d from now; fire receives the delay
// between the true expiry and the handler invocation.
func (a *ActionlibEnforcer) Arm(d time.Duration, fire func(delay time.Duration)) *ActionlibGoal {
	g := &alGoal{expires: time.Now().Add(d), fire: fire}
	a.mu.Lock()
	heap.Push(&a.queue, g)
	a.mu.Unlock()
	return &ActionlibGoal{a: a, g: g}
}

// ActionlibGoal is a handle to one armed goal.
type ActionlibGoal struct {
	a *ActionlibEnforcer
	g *alGoal
}

// Cancel resolves the goal before expiry.
func (h *ActionlibGoal) Cancel() {
	h.a.mu.Lock()
	if !h.g.stopped && h.g.idx >= 0 {
		h.g.stopped = true
		heap.Remove(&h.a.queue, h.g.idx)
	}
	h.a.mu.Unlock()
}

// Stop terminates the polling loop.
func (a *ActionlibEnforcer) Stop() {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	a.stopped = true
	a.mu.Unlock()
	close(a.done)
}

func (a *ActionlibEnforcer) loop() {
	ticker := time.NewTicker(a.PollPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-a.done:
			return
		case now := <-ticker.C:
			for {
				a.mu.Lock()
				if len(a.queue) == 0 || a.queue[0].expires.After(now) {
					a.mu.Unlock()
					break
				}
				g := heap.Pop(&a.queue).(*alGoal)
				a.mu.Unlock()
				if g.fire != nil {
					g.fire(now.Sub(g.expires))
				}
			}
		}
	}
}

type alHeap []*alGoal

func (h alHeap) Len() int           { return len(h) }
func (h alHeap) Less(i, j int) bool { return h[i].expires.Before(h[j].expires) }
func (h alHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx, h[j].idx = i, j }
func (h *alHeap) Push(x any)        { g := x.(*alGoal); g.idx = len(*h); *h = append(*h, g) }
func (h *alHeap) Pop() any {
	old := *h
	n := len(old)
	g := old[n-1]
	old[n-1] = nil
	g.idx = -1
	*h = old[:n-1]
	return g
}
