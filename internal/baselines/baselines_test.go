package baselines

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func payload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i * 31)
	}
	return p
}

func collectors(n int) ([]Receiver, *sync.WaitGroup, *[][]byte) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	got := make([][]byte, 0, n)
	recvs := make([]Receiver, n)
	for i := 0; i < n; i++ {
		recvs[i] = func(_ uint64, p []byte) {
			mu.Lock()
			got = append(got, p)
			mu.Unlock()
			wg.Done()
		}
	}
	return recvs, &wg, &got
}

func TestIntraPublishersDeliverIntact(t *testing.T) {
	data := payload(100_000)
	for _, mk := range []func([]Receiver) Publisher{
		func(r []Receiver) Publisher { return NewErdosIntra(r) },
		func(r []Receiver) Publisher { return NewCopyIntra(r) },
		func(r []Receiver) Publisher { return NewRos2Intra(r) },
		func(r []Receiver) Publisher { return NewFlinkIntra(r) },
	} {
		recvs, wg, got := collectors(3)
		pub := mk(recvs)
		wg.Add(3)
		if err := pub.Publish(data); err != nil {
			t.Fatalf("%s: %v", pub.Name(), err)
		}
		wg.Wait()
		for i, g := range *got {
			if !bytes.Equal(g, data) {
				t.Fatalf("%s: subscriber %d payload corrupted (%d vs %d bytes)",
					pub.Name(), i, len(g), len(data))
			}
		}
		pub.Close()
	}
}

func TestErdosIntraIsZeroCopy(t *testing.T) {
	data := payload(1024)
	var gotPtr *byte
	pub := NewErdosIntra([]Receiver{func(_ uint64, p []byte) { gotPtr = &p[0] }})
	_ = pub.Publish(data)
	if gotPtr != &data[0] {
		t.Fatal("erdos intra path must deliver the same backing array")
	}
}

func TestCopyIntraIsNotZeroCopy(t *testing.T) {
	data := payload(1024)
	var gotPtr *byte
	pub := NewCopyIntra([]Receiver{func(_ uint64, p []byte) { gotPtr = &p[0] }})
	_ = pub.Publish(data)
	if gotPtr == &data[0] {
		t.Fatal("copy ablation must deliver a private copy")
	}
}

func TestRos2IntraDeliversCopies(t *testing.T) {
	data := payload(64 << 10)
	var ptrs []*byte
	recv := func(_ uint64, p []byte) { ptrs = append(ptrs, &p[0]) }
	pub := NewRos2Intra([]Receiver{recv, recv})
	_ = pub.Publish(data)
	if len(ptrs) != 2 {
		t.Fatalf("deliveries = %d", len(ptrs))
	}
	if ptrs[0] == &data[0] || ptrs[1] == &data[0] || ptrs[0] == ptrs[1] {
		t.Fatal("DDS path must produce distinct converted buffers")
	}
}

func TestInterPublishersDeliverIntact(t *testing.T) {
	data := payload(300_000) // spans multiple flink buffers and DDS submessages
	for _, mk := range []func(int, Receiver) (Publisher, error){
		NewErdosInter, NewRosInter, NewRos2Inter, NewFlinkInter,
	} {
		done := make(chan []byte, 4)
		pub, err := mk(2, func(_ uint64, p []byte) { done <- p })
		if err != nil {
			t.Fatal(err)
		}
		if err := pub.Publish(data); err != nil {
			t.Fatalf("%s: %v", pub.Name(), err)
		}
		for i := 0; i < 2; i++ {
			select {
			case got := <-done:
				if !bytes.Equal(got, data) {
					t.Fatalf("%s: payload corrupted over TCP (%d vs %d bytes)",
						pub.Name(), len(got), len(data))
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("%s: delivery %d timed out", pub.Name(), i)
			}
		}
		pub.Close()
	}
}

func TestInterSequenceNumbers(t *testing.T) {
	var last atomic.Uint64
	var bad atomic.Bool
	pub, err := NewErdosInter(1, func(seq uint64, _ []byte) {
		if seq != last.Add(1) {
			bad.Store(true)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	for i := 0; i < 100; i++ {
		if err := pub.Publish(payload(256)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for last.Load() < 100 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if bad.Load() || last.Load() != 100 {
		t.Fatalf("sequence broken: last=%d bad=%v", last.Load(), bad.Load())
	}
}

func TestPublishAfterCloseFails(t *testing.T) {
	pub, err := NewErdosInter(1, func(uint64, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	pub.Close()
	if err := pub.Publish(payload(8)); err == nil {
		t.Fatal("publish after close must fail")
	}
}

func TestCDRRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 100, 16 << 10, 100 << 10} {
		data := payload(n)
		got := cdrDeserialize(ddsConvert(cdrSerialize(data)))
		if !bytes.Equal(got, data) {
			t.Fatalf("CDR round trip broken at %d bytes: got %d", n, len(got))
		}
	}
}

func TestSegmentReassemble(t *testing.T) {
	data := payload(100_001)
	segs := segment(data, flinkBufferSize)
	if len(segs) != 4 {
		t.Fatalf("segments = %d, want 4", len(segs))
	}
	if !bytes.Equal(reassemble(segs, len(data)), data) {
		t.Fatal("reassembly corrupted the payload")
	}
	if got := segment(nil, 10); len(got) != 1 || len(got[0]) != 0 {
		t.Fatal("empty payload must produce one empty segment")
	}
}

func TestActionlibFiresWithPollDelay(t *testing.T) {
	a := NewActionlib(time.Millisecond)
	defer a.Stop()
	ch := make(chan time.Duration, 1)
	a.Arm(5*time.Millisecond, func(d time.Duration) { ch <- d })
	select {
	case d := <-ch:
		if d < 0 || d > 50*time.Millisecond {
			t.Fatalf("handler delay %v implausible", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("actionlib goal never fired")
	}
}

func TestActionlibCancelPreventsFire(t *testing.T) {
	a := NewActionlib(time.Millisecond)
	defer a.Stop()
	var fired atomic.Bool
	g := a.Arm(5*time.Millisecond, func(time.Duration) { fired.Store(true) })
	g.Cancel()
	time.Sleep(20 * time.Millisecond)
	if fired.Load() {
		t.Fatal("cancelled goal fired")
	}
}

func TestActionlibOrdering(t *testing.T) {
	a := NewActionlib(500 * time.Microsecond)
	defer a.Stop()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	wg.Add(3)
	add := func(i int, d time.Duration) {
		a.Arm(d, func(time.Duration) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			wg.Done()
		})
	}
	add(2, 10*time.Millisecond)
	add(1, 4*time.Millisecond)
	add(3, 16*time.Millisecond)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v", order)
	}
}
