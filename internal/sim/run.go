package sim

import (
	"time"

	"github.com/erdos-go/erdos/internal/pipeline"
)

// RunSuite drives every hazard of the suite under the given pipeline
// configuration, returning aggregate collision and response statistics
// (Figs. 11 and 12).
func RunSuite(cfg pipeline.Config, s Suite, seed int64) SuiteResult {
	var res SuiteResult
	var speedSum float64
	for i, h := range s.Hazards {
		p := pipeline.New(cfg, seed+int64(i)*7919)
		out := RunEncounter(p, h, seed+int64(i)*104729)
		res.Encounters++
		res.Frames += out.Frames
		for _, r := range out.Responses {
			res.Responses = append(res.Responses, r.Seconds())
		}
		res.Misses += out.Misses
		if out.Collided {
			res.Collisions++
			speedSum += out.CollisionSpeed
		}
	}
	if res.Collisions > 0 {
		res.CollisionSpeed = speedSum / float64(res.Collisions)
	}
	return res
}

// GridCell is one cell of the Fig. 13 matrix.
type GridCell struct {
	Deadline       time.Duration // 0 marks the dynamic policy row
	Speed          float64
	CollisionSpeed float64
	Avoided        Avoidance
}

// ScenarioGrid evaluates one scenario across driving speeds for every
// static configuration plus the dynamic policy (Fig. 13). make returns the
// hazard for a given speed.
func ScenarioGrid(make func(speed float64) Hazard, speeds []float64, seed int64) []GridCell {
	var cells []GridCell
	for _, d := range staticDeadlines() {
		for _, v := range speeds {
			cfg := pipeline.StaticConfig(pipeline.D3Static, d)
			out := RunEncounter(pipeline.New(cfg, seed), make(v), seed)
			cells = append(cells, GridCell{
				Deadline: d, Speed: v,
				CollisionSpeed: out.CollisionSpeed, Avoided: out.Avoided,
			})
		}
	}
	for _, v := range speeds {
		cfg := pipeline.DynamicConfig()
		out := RunEncounter(pipeline.New(cfg, seed), make(v), seed)
		cells = append(cells, GridCell{
			Deadline: 0, Speed: v,
			CollisionSpeed: out.CollisionSpeed, Avoided: out.Avoided,
		})
	}
	return cells
}

func staticDeadlines() []time.Duration {
	return []time.Duration{
		125 * time.Millisecond,
		200 * time.Millisecond,
		250 * time.Millisecond,
		400 * time.Millisecond,
		500 * time.Millisecond,
	}
}
