package sim

import (
	"github.com/erdos-go/erdos/internal/trace"
)

// PersonBehindTruck is the §7.4.2 scenario: a person illegally enters the
// AV's lane from behind a parked truck that occludes them until they step
// out. Visibility is short (20 m), the person emerges over about a second,
// crosses the lane (leaving the AV's path again), and an emergency swerve
// can avoid them — so configurations that minimize response time win.
func PersonBehindTruck(speed float64) Hazard {
	return Hazard{
		Name:       "person-behind-truck",
		Distance:   20,
		Occlusion:  0.30,
		EmergeTime: 1.0,
		// The person enters the AV's path shortly after stepping out and
		// clears it once across the lane.
		PathEnter:      0.35,
		PathExit:       2.15,
		SwervePossible: true,
		SwerveTime:     1.33,
		Agents:         4,
		Speed:          speed,
	}
}

// TrafficJam is the §7.4.2 opposite scenario: the AV merges into a stopped
// queue behind a vehicle and a partially-occluded motorcycle, with the
// adjacent lane full (no swerve escape). The motorcycle must be perceived
// from afar, so accurate (slow) configurations win and fast, low-accuracy
// models perform poorly.
func TrafficJam(speed float64) Hazard {
	return Hazard{
		Name:      "traffic-jam",
		Distance:  55,
		Occlusion: 0.82,
		Agents:    9,
		Speed:     speed,
	}
}

// Jaywalker is an unoccluded mid-block crossing at urban speed.
func Jaywalker(speed float64) Hazard {
	return Hazard{
		Name:           "jaywalker",
		Distance:       32,
		Occlusion:      0.1,
		PathEnter:      0.3,
		PathExit:       2.4,
		SwervePossible: true,
		SwerveTime:     1.5,
		Agents:         6,
		Speed:          speed,
	}
}

// FreewayObstacle is debris appearing at high speed with good visibility.
func FreewayObstacle(speed float64) Hazard {
	return Hazard{
		Name:           "freeway-obstacle",
		Distance:       75,
		Occlusion:      0.35,
		SwervePossible: true,
		SwerveTime:     1.1,
		Agents:         3,
		Speed:          speed,
	}
}

// OccludedCyclist is a cyclist materializing from behind parked cars.
func OccludedCyclist(speed float64) Hazard {
	return Hazard{
		Name:       "occluded-cyclist",
		Distance:   26,
		Occlusion:  0.55,
		EmergeTime: 0.8,
		PathEnter:  0.3,
		PathExit:   3.0,
		Agents:     5,
		Speed:      speed,
	}
}

// Suite is a sequence of hazards standing in for a long benchmark drive.
type Suite struct {
	Name    string
	Km      float64
	Hazards []Hazard
}

// ChallengeSuite generates the extended CARLA-challenge-style benchmark
// (§7, "Methodology"): km kilometers of driving with a mix of challenging
// hazards whose parameters are jittered under the seed. The paper's 50 km
// drive maps to roughly 4 hazards per km.
func ChallengeSuite(seed int64, km float64) Suite {
	r := trace.New(seed)
	n := int(km * 4)
	s := Suite{Name: "carla-challenge-extended", Km: km}
	for i := 0; i < n; i++ {
		var h Hazard
		switch r.Pick([]float64{0.22, 0.20, 0.26, 0.16, 0.16}) {
		case 0:
			h = PersonBehindTruck(r.Uniform(10.5, 14.5))
		case 1:
			h = TrafficJam(r.Uniform(8, 13.5))
		case 2:
			h = Jaywalker(r.Uniform(9, 14))
		case 3:
			h = FreewayObstacle(r.Uniform(18, 26))
		default:
			h = OccludedCyclist(r.Uniform(8, 12))
		}
		// Jitter geometry so no two encounters are identical.
		h.Distance *= r.Uniform(0.86, 1.12)
		h.Occlusion *= r.Uniform(0.9, 1.1)
		if h.Occlusion > 0.95 {
			h.Occlusion = 0.95
		}
		if h.PathExit > 0 {
			h.PathExit *= r.Uniform(0.92, 1.1)
		}
		h.Agents += r.Intn(4)
		s.Hazards = append(s.Hazards, h)
	}
	return s
}

// SuiteResult aggregates a suite run.
type SuiteResult struct {
	Collisions     int
	CollisionSpeed float64 // mean over collisions, m/s
	Encounters     int
	// Responses aggregates every frame's end-to-end response (Fig. 12).
	Responses []float64 // seconds
	// Misses counts frames whose raw computation overran the deadline.
	Misses int
	Frames int
}
