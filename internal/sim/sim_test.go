package sim

import (
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/pipeline"
)

func staticP(exec pipeline.ExecModel, d time.Duration, seed int64) *pipeline.Pipeline {
	return pipeline.New(pipeline.StaticConfig(exec, d), seed)
}

func TestEncounterDeterministicUnderSeed(t *testing.T) {
	h := PersonBehindTruck(12)
	a := RunEncounter(staticP(pipeline.D3Static, 250*time.Millisecond, 1), h, 9)
	b := RunEncounter(staticP(pipeline.D3Static, 250*time.Millisecond, 1), h, 9)
	if a.Collided != b.Collided || a.CollisionSpeed != b.CollisionSpeed || a.Frames != b.Frames {
		t.Fatalf("encounter not deterministic: %+v vs %+v", a, b)
	}
}

func TestSlowEnoughAlwaysStops(t *testing.T) {
	// A crawl-speed approach to a permanent obstacle must always stop.
	h := TrafficJam(4)
	out := RunEncounter(staticP(pipeline.D3Static, 500*time.Millisecond, 2), h, 2)
	if out.Collided || out.Avoided != AvoidedStopped {
		t.Fatalf("crawl approach outcome: %+v", out)
	}
}

func TestUndetectableAlwaysCollides(t *testing.T) {
	// Full occlusion with no emergence: the object is never perceived.
	h := Hazard{Name: "invisible", Distance: 30, Occlusion: 1.0, Speed: 10, Agents: 2}
	out := RunEncounter(staticP(pipeline.D3Static, 400*time.Millisecond, 3), h, 3)
	if !out.Collided || out.CollisionSpeed < 9.9 {
		t.Fatalf("undetectable hazard outcome: %+v", out)
	}
	if out.DetectionDistance != 0 {
		t.Fatalf("phantom detection at %v", out.DetectionDistance)
	}
}

func TestCrossingHazardClearsForSlowArrival(t *testing.T) {
	// With a path window, arriving after PathExit avoids the collision.
	h := Hazard{
		Name: "crosser", Distance: 40, Occlusion: 1.0, // never detected
		PathEnter: 0.1, PathExit: 2.0, Speed: 10, Agents: 2,
	}
	out := RunEncounter(staticP(pipeline.D3Static, 400*time.Millisecond, 4), h, 4)
	if out.Collided || out.Avoided != AvoidedCleared {
		t.Fatalf("crossing outcome: %+v (arrival at 4s is after the window)", out)
	}
}

func TestFasterResponseNeverHurts(t *testing.T) {
	// Identical physics, tighter deadline: the collision speed must not
	// increase when only the response time shrinks and detection stays
	// fixed (use an unoccluded, certain-detection hazard).
	h := Hazard{Name: "wall", Distance: 26, Occlusion: 0, Speed: 13, Agents: 2}
	slow := RunEncounter(staticP(pipeline.D3Static, 500*time.Millisecond, 5), h, 5)
	fast := RunEncounter(staticP(pipeline.D3Static, 200*time.Millisecond, 5), h, 5)
	if fast.CollisionSpeed > slow.CollisionSpeed+0.2 {
		t.Fatalf("faster response collided harder: %.2f vs %.2f",
			fast.CollisionSpeed, slow.CollisionSpeed)
	}
}

// --- Fig. 13 shape: the two opposite scenarios of §7.4.2 ---

func gridLookup(cells []GridCell, d time.Duration, speed float64) GridCell {
	for _, c := range cells {
		if c.Deadline == d && c.Speed == speed {
			return c
		}
	}
	return GridCell{}
}

func TestFig13PersonBehindTruckShape(t *testing.T) {
	cells := ScenarioGrid(PersonBehindTruck, []float64{11, 12, 13}, 3)
	// At 11 m/s every configuration avoids the person.
	for _, d := range append([]time.Duration{0}, staticDeadlines()...) {
		if c := gridLookup(cells, d, 11); c.CollisionSpeed > 0 {
			t.Errorf("deadline %v collided at 11 m/s (%.1f)", d, c.CollisionSpeed)
		}
	}
	// At 12 m/s the 200 ms configuration and the dynamic policy swerve in
	// time; the slow accurate configurations and the low-accuracy 125 ms
	// configuration collide (§7.4.2).
	if c := gridLookup(cells, 200*time.Millisecond, 12); c.CollisionSpeed > 0 {
		t.Errorf("200ms collided at 12 m/s (%.1f), should swerve", c.CollisionSpeed)
	}
	if c := gridLookup(cells, 0, 12); c.CollisionSpeed > 0 {
		t.Errorf("dynamic policy collided at 12 m/s (%.1f), should adapt and swerve", c.CollisionSpeed)
	}
	for _, d := range []time.Duration{125 * time.Millisecond, 400 * time.Millisecond, 500 * time.Millisecond} {
		if c := gridLookup(cells, d, 12); c.CollisionSpeed == 0 {
			t.Errorf("deadline %v avoided at 12 m/s, expected a collision", d)
		}
	}
	// Among the slow configurations, impact grows with the response time.
	c400 := gridLookup(cells, 400*time.Millisecond, 12)
	c500 := gridLookup(cells, 500*time.Millisecond, 12)
	if c500.CollisionSpeed < c400.CollisionSpeed-0.5 {
		t.Errorf("500ms impact (%.1f) should be >= 400ms impact (%.1f)",
			c500.CollisionSpeed, c400.CollisionSpeed)
	}
	// At 13 m/s everything collides, and the dynamic policy's impact is
	// no worse than any static configuration's.
	dyn := gridLookup(cells, 0, 13)
	if dyn.CollisionSpeed == 0 {
		t.Error("13 m/s should exceed every configuration's envelope")
	}
	for _, d := range staticDeadlines() {
		if c := gridLookup(cells, d, 13); c.CollisionSpeed > 0 && c.CollisionSpeed < dyn.CollisionSpeed-0.8 {
			t.Errorf("dynamic impact %.1f worse than static %v's %.1f at 13 m/s",
				dyn.CollisionSpeed, d, c.CollisionSpeed)
		}
	}
}

func TestFig13TrafficJamShape(t *testing.T) {
	cells := ScenarioGrid(TrafficJam, []float64{8, 10, 12}, 3)
	// At 8 m/s everyone stops.
	for _, d := range append([]time.Duration{0}, staticDeadlines()...) {
		if c := gridLookup(cells, d, 8); c.CollisionSpeed > 0 {
			t.Errorf("deadline %v collided at 8 m/s (%.1f)", d, c.CollisionSpeed)
		}
	}
	// At 10 m/s the fast, low-accuracy configuration perceives the
	// occluded motorcycle too late; accurate configurations and the
	// dynamic policy stop reliably (the opposite of person-behind-truck).
	if c := gridLookup(cells, 125*time.Millisecond, 10); c.CollisionSpeed == 0 {
		t.Error("125ms avoided at 10 m/s, expected a late-perception collision")
	}
	for _, d := range []time.Duration{0, 400 * time.Millisecond, 500 * time.Millisecond} {
		if c := gridLookup(cells, d, 10); c.CollisionSpeed > 0 {
			t.Errorf("deadline %v collided at 10 m/s (%.1f), accurate configs must stop", d, c.CollisionSpeed)
		}
	}
	// At 12 m/s the fast configurations collide harder than at 10.
	c10 := gridLookup(cells, 125*time.Millisecond, 10)
	c12 := gridLookup(cells, 125*time.Millisecond, 12)
	if c12.CollisionSpeed <= c10.CollisionSpeed {
		t.Errorf("125ms impact at 12 (%.1f) should exceed impact at 10 (%.1f)",
			c12.CollisionSpeed, c10.CollisionSpeed)
	}
}

// --- Fig. 11 shape: collisions under the four execution models ---

func TestFig11CollisionOrdering(t *testing.T) {
	suite := ChallengeSuite(42, 50)
	periodic := RunSuite(pipeline.StaticConfig(pipeline.Periodic, 200*time.Millisecond), suite, 1)
	dataDriven := RunSuite(pipeline.StaticConfig(pipeline.DataDriven, 200*time.Millisecond), suite, 1)
	dynamic := RunSuite(pipeline.DynamicConfig(), suite, 1)
	bestStatic := 1 << 30
	for _, d := range staticDeadlines() {
		r := RunSuite(pipeline.StaticConfig(pipeline.D3Static, d), suite, 1)
		if r.Collisions < bestStatic {
			bestStatic = r.Collisions
		}
	}
	if !(dynamic.Collisions < bestStatic &&
		bestStatic <= dataDriven.Collisions+3 &&
		dataDriven.Collisions < periodic.Collisions) {
		t.Fatalf("ordering violated: periodic=%d data=%d static=%d dynamic=%d",
			periodic.Collisions, dataDriven.Collisions, bestStatic, dynamic.Collisions)
	}
	// The paper's headline: a ~68% reduction over periodic execution.
	reduction := 1 - float64(dynamic.Collisions)/float64(periodic.Collisions)
	if reduction < 0.5 || reduction > 0.85 {
		t.Fatalf("collision reduction vs periodic = %.0f%%, want in [50%%, 85%%] (paper: 68%%)",
			reduction*100)
	}
	// And roughly 2.2x fewer under data-driven than periodic.
	ratio := float64(periodic.Collisions) / float64(dataDriven.Collisions)
	if ratio < 1.5 || ratio > 3.0 {
		t.Fatalf("periodic/data-driven = %.1fx, want ~2.2x", ratio)
	}
}

func TestChallengeSuiteDeterministic(t *testing.T) {
	a := ChallengeSuite(7, 10)
	b := ChallengeSuite(7, 10)
	if len(a.Hazards) != len(b.Hazards) {
		t.Fatal("suite generation not deterministic")
	}
	for i := range a.Hazards {
		if a.Hazards[i] != b.Hazards[i] {
			t.Fatalf("hazard %d differs under same seed", i)
		}
	}
	c := ChallengeSuite(8, 10)
	same := true
	for i := range a.Hazards {
		if a.Hazards[i] != c.Hazards[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical suites")
	}
	if len(a.Hazards) != 40 {
		t.Fatalf("10 km should yield 40 hazards, got %d", len(a.Hazards))
	}
}

func TestSuiteResultAggregation(t *testing.T) {
	suite := ChallengeSuite(3, 5)
	r := RunSuite(pipeline.StaticConfig(pipeline.D3Static, 250*time.Millisecond), suite, 1)
	if r.Encounters != len(suite.Hazards) {
		t.Fatalf("encounters = %d, want %d", r.Encounters, len(suite.Hazards))
	}
	if r.Frames == 0 || len(r.Responses) != r.Frames {
		t.Fatalf("frames = %d, responses = %d", r.Frames, len(r.Responses))
	}
	if r.Collisions > 0 && r.CollisionSpeed <= 0 {
		t.Fatal("collision speed not aggregated")
	}
}

// Fig. 14: during a person-behind-truck encounter, the dynamic policy must
// visibly tighten the end-to-end deadline once the person is detected.
func TestFig14DeadlineTightensOnDetection(t *testing.T) {
	out := RunEncounter(pipeline.New(pipeline.DynamicConfig(), 6), PersonBehindTruck(12), 6)
	if len(out.Deadlines) < 2 {
		t.Fatalf("too few frames: %d", len(out.Deadlines))
	}
	first := out.Deadlines[0]
	min := first
	for _, d := range out.Deadlines {
		if d < min {
			min = d
		}
	}
	if min >= first {
		t.Fatalf("deadline never tightened: first %v, min %v (deadlines %v)", first, min, out.Deadlines)
	}
	if min > 200*time.Millisecond {
		t.Fatalf("tightened deadline %v, want <= 200ms once the person is close", min)
	}
}

func TestSafetyBackupModeEngagesOnChronicMisses(t *testing.T) {
	// Pin an oversized detector into a tiny deadline: every frame misses,
	// the backup trigger fires after the threshold, and the vehicle stops
	// even though the hazard is never perceived (full occlusion).
	cfg := pipeline.StaticConfig(pipeline.D3Static, 40*time.Millisecond)
	cfg.Detector = pipeline.StaticConfig(pipeline.D3Static, 500*time.Millisecond).Detector
	h := Hazard{Name: "invisible", Distance: 60, Occlusion: 1.0, Speed: 10, Agents: 12}
	out := RunEncounter(pipeline.New(cfg, 9), h, 9)
	if !out.BackupEngaged {
		t.Fatalf("backup mode did not engage: %d misses over %d frames", out.Misses, out.Frames)
	}
	if out.Collided {
		t.Fatalf("backup mode engaged but still collided at %.1f m/s", out.CollisionSpeed)
	}
	if out.Avoided != AvoidedStopped {
		t.Fatalf("expected a minimal-risk stop, got %q", out.Avoided)
	}
}

func TestSafetyBackupModeStaysOffForHealthyPipelines(t *testing.T) {
	out := RunEncounter(staticP(pipeline.D3Static, 200*time.Millisecond, 4), TrafficJam(10), 4)
	if out.BackupEngaged {
		t.Fatal("healthy pipeline engaged the backup mode")
	}
}
