// Package sim is the driving simulator substituting for CARLA (see
// DESIGN.md): lane-frame kinematics, occlusion-aware visibility, hazard
// scenarios and collision outcomes. The paper's driving evaluation (§7.4)
// is, mechanically, the interaction of five quantities — visibility
// distance, detection range (accuracy- and occlusion-dependent), end-to-end
// response time, vehicle speed and braking capability — and this package
// reproduces exactly that interaction, frame by frame, in virtual time.
package sim

import (
	"time"

	braking2 "github.com/erdos-go/erdos/internal/av/braking"
	"github.com/erdos-go/erdos/internal/pipeline"
	"github.com/erdos-go/erdos/internal/policy"
	"github.com/erdos-go/erdos/internal/trace"
)

// Hazard describes one safety-critical encounter.
type Hazard struct {
	// Name labels the hazard kind.
	Name string
	// Distance is the range (meters) at which the hazard appears or first
	// becomes physically visible.
	Distance float64
	// Occlusion is the steady-state occlusion fraction in [0, 1].
	Occlusion float64
	// EmergeTime, when positive, models an object emerging from behind an
	// occluder: occlusion decays linearly from 1.0 to Occlusion over this
	// many seconds after appearance (the person stepping out from behind
	// the truck, §7.4.2).
	EmergeTime float64
	// PathWindow, when non-zero, bounds the interval (seconds after
	// appearance) during which the hazard occupies the AV's path — a
	// crossing pedestrian enters and then leaves the lane. Zero means the
	// hazard is permanent (a stopped queue).
	PathEnter, PathExit float64
	// SwervePossible marks hazards an emergency swerve can avoid;
	// SwerveTime is the maneuver time the swerve needs.
	SwervePossible bool
	SwerveTime     float64
	// Agents is the scene's agent count (drives component runtimes).
	Agents int
	// Speed is the AV's approach speed (m/s).
	Speed float64
	// Decel is the braking deceleration available (m/s^2); zero selects
	// the comfortable default.
	Decel float64
}

// Avoidance classifies how an encounter ended without collision.
type Avoidance string

// Avoidance outcomes.
const (
	AvoidedStopped Avoidance = "stopped"
	AvoidedCleared Avoidance = "cleared"
	AvoidedSwerved Avoidance = "swerved"
	AvoidedNone    Avoidance = ""
)

// Outcome is the result of one encounter.
type Outcome struct {
	Collided       bool
	CollisionSpeed float64 // m/s at impact
	Avoided        Avoidance
	// DetectionDistance is the range at which the hazard was first
	// perceived (0 when never detected).
	DetectionDistance float64
	// BrakeLatency is the end-to-end response of the frame that issued
	// the braking command.
	BrakeLatency time.Duration
	// Responses and Deadlines record the per-frame pipeline behaviour
	// during the encounter (Figs. 12 and 14).
	Responses []time.Duration
	Deadlines []time.Duration
	Detectors []string
	// Frames is the number of pipeline iterations simulated.
	Frames int
	// Misses counts frames whose computation overran the deadline.
	Misses int
	// BackupEngaged reports that the safety backup mode (§3) took over
	// after repeated deadline misses and executed a minimal-risk maneuver.
	BackupEngaged bool
}

// backupMissThreshold is the number of consecutive missed deadlines after
// which the safety backup mode engages (§5.2: pDP invokes the backup mode
// when the application can no longer perform its function).
const backupMissThreshold = 5

const defaultDecel = 3.5 // m/s^2, the §2.1 calibration (package braking)

// RunEncounter simulates one hazard encounter under the pipeline's
// execution model, with detection sampled per frame under the given seed.
// The simulation advances in sensor frames; between frames, kinematics
// integrate at a fine step.
func RunEncounter(p *pipeline.Pipeline, h Hazard, seed int64) Outcome {
	decel := h.Decel
	if decel == 0 {
		decel = defaultDecel
	}
	rng := trace.New(seed ^ 0x5eed)
	period := p.Cfg.SensorPeriod.Seconds()
	backup := policy.NewBackupTrigger(backupMissThreshold)
	var out Outcome

	v := h.Speed
	x := 0.0 // distance travelled since the hazard appeared
	t := 0.0
	braking := false
	brakeAt := -1.0 // wall time the braking command takes effect
	detected := false
	prevRaw := false
	prevDetected := false
	prevDist := 0.0
	nextFrame := 0.0

	const dt = 0.005
	maxT := 40.0

	for t < maxT {
		// One pipeline frame at each sensor period boundary.
		if t >= nextFrame {
			nextFrame += period
			d := h.Distance - x
			resp := p.Step(pipeline.Frame{
				Agents:       h.Agents,
				Speed:        v,
				NearestAgent: prevDist,
				HasAgent:     prevDetected,
			})
			out.Responses = append(out.Responses, resp.Total)
			out.Deadlines = append(out.Deadlines, resp.Deadline)
			out.Detectors = append(out.Detectors, resp.Detector.Name)
			out.Frames++
			if resp.Missed {
				out.Misses++
			}
			// Safety backup mode (§3): repeated consecutive misses mean
			// the pipeline can no longer perform its function; execute a
			// minimal-risk maneuver (hard braking) regardless of
			// perception.
			if backup.Observe(resp.Missed) && !out.BackupEngaged {
				out.BackupEngaged = true
				braking = true
				decel = braking2.EmergencyDeceleration
			}

			occ := h.Occlusion
			if h.EmergeTime > 0 {
				emerged := 1 - t/h.EmergeTime
				if emerged > occ {
					occ = emerged
				}
				if occ > 1 {
					occ = 1
				}
			}
			// Per-frame probabilistic sighting: accurate models perceive
			// the object almost as soon as physics allows; low-accuracy
			// models need the object to get considerably closer.
			raw := false
			if d > 0 {
				raw = rng.Bernoulli(resp.Detector.DetectProb(d, occ))
			}
			// A missed deadline's DEH releases the previous frame's
			// perception (§5.4), staling the sighting by one frame.
			effective := raw
			if resp.StaleDetection {
				effective = prevRaw
			}
			if effective && !detected {
				detected = true
				out.DetectionDistance = d
				out.BrakeLatency = resp.Total
			}
			if detected {
				// Once the object is tracked, every frame issues a
				// command (the tracker coasts through missed sightings);
				// an adapted, faster configuration lands its command
				// earlier than the in-flight slow one (§5.3).
				cmd := t + resp.Total.Seconds()
				if brakeAt < 0 || cmd < brakeAt {
					brakeAt = cmd
				}
			}
			prevRaw = raw
			// The policy observes the previous frame's tracking output.
			prevDetected = detected
			if detected {
				prevDist = h.Distance - x
			}
		}

		// Swerve or brake once the command lands.
		if detected && !braking && brakeAt >= 0 && t >= brakeAt {
			remaining := h.Distance - x
			if h.SwervePossible && v > 0.1 && remaining/v >= h.SwerveTime {
				out.Avoided = AvoidedSwerved
				return out
			}
			braking = true
		}

		// Integrate kinematics.
		if braking {
			v -= decel * dt
			if v <= 0 {
				out.Avoided = AvoidedStopped
				return out
			}
		}
		x += v * dt
		t += dt

		// Collision / clearing check.
		if x >= h.Distance {
			inPath := true
			if h.PathExit > 0 {
				inPath = t >= h.PathEnter && t <= h.PathExit
			}
			if inPath {
				out.Collided = true
				out.CollisionSpeed = v
				return out
			}
			out.Avoided = AvoidedCleared
			return out
		}
	}
	// Never reached the hazard (e.g. it was far and the AV stopped for
	// other reasons) — treat as avoided.
	if out.Avoided == AvoidedNone {
		out.Avoided = AvoidedStopped
	}
	return out
}
