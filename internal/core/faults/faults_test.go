package faults

import (
	"bytes"
	"encoding/gob"
	"net"
	"reflect"
	"testing"
	"time"
)

// buildJittered builds the same jittered schedule from a seed.
func buildJittered(seed int64) *Schedule {
	return NewSchedule(seed).Jitter(50*time.Millisecond).
		Kill(100*time.Millisecond, "w1").
		Sever(200*time.Millisecond, "w2", "w3").
		Delay(300*time.Millisecond, "w1", "", 5*time.Millisecond).
		Corrupt(400*time.Millisecond, "w3", "w1").
		Stall(500*time.Millisecond, "w2", "planning", time.Second)
}

// TestScheduleDeterminism: the same seed replays the exact same plan —
// including jitter — while a different seed explores a different one.
func TestScheduleDeterminism(t *testing.T) {
	a, b := buildJittered(7).Faults(), buildJittered(7).Faults()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%+v\n%+v", a, b)
	}
	c := buildJittered(8).Faults()
	same := true
	for i := range a {
		if a[i].At != c[i].At {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical jitter: %+v", a)
	}
	// Jitter only moves fault times forward, within its bound.
	base := []time.Duration{100, 200, 300, 400, 500}
	for i, f := range a {
		lo := base[i] * time.Millisecond
		if f.At < lo || f.At >= lo+50*time.Millisecond {
			t.Fatalf("fault %d at %v outside jitter window [%v, %v)", i, f.At, lo, lo+50*time.Millisecond)
		}
	}
}

// TestInjectorKillAndFiredLog: a kill fault invokes the registered killer
// exactly once and is recorded with its injection time; Stop cancels
// not-yet-fired faults.
func TestInjectorKillAndFiredLog(t *testing.T) {
	sch := NewSchedule(1).
		Kill(5*time.Millisecond, "w1").
		Kill(time.Hour, "w2") // must never fire
	inj := NewInjector(sch)
	defer inj.Stop()

	killed := make(chan string, 2)
	inj.RegisterKiller("w1", func() { killed <- "w1" })
	inj.RegisterKiller("w2", func() { killed <- "w2" })
	armedAt := time.Now()
	inj.Arm()

	select {
	case w := <-killed:
		if w != "w1" {
			t.Fatalf("killed %q, want w1", w)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("kill fault never fired")
	}
	fired := inj.Fired()
	if len(fired) != 1 || fired[0].Fault.Kind != KindKill || fired[0].Fault.Worker != "w1" {
		t.Fatalf("fired log = %+v, want one w1 kill", fired)
	}
	if fired[0].At != fired[0].Fault.At {
		t.Fatalf("fired offset %v diverges from the schedule's %v", fired[0].At, fired[0].Fault.At)
	}
	if inj.ArmedAt().Before(armedAt) {
		t.Fatalf("ArmedAt %v precedes arming %v", inj.ArmedAt(), armedAt)
	}
	inj.Stop()
	select {
	case w := <-killed:
		t.Fatalf("fault for %q fired after Stop", w)
	case <-time.After(20 * time.Millisecond):
	}
}

// TestInjectorDeterministicReplay: two injectors armed from the same seed
// produce byte-identical fault schedules and byte-identical Fired logs, even
// though their timer goroutines run at unrelated wall-clock instants.
func TestInjectorDeterministicReplay(t *testing.T) {
	build := func() *Schedule {
		return NewSchedule(42).Jitter(3*time.Millisecond).
			Kill(1*time.Millisecond, "w1").
			Stall(2*time.Millisecond, "w1", "planning", 5*time.Millisecond).
			Sever(3*time.Millisecond, "w2", "w3").
			Delay(4*time.Millisecond, "w1", "w2", time.Millisecond).
			Corrupt(5*time.Millisecond, "w3", "w1")
	}
	run := func() ([]Fault, []byte) {
		sch := build()
		inj := NewInjector(sch)
		defer inj.Stop()
		inj.RegisterKiller("w1", func() {})
		inj.Arm()
		deadline := time.Now().Add(5 * time.Second)
		for len(inj.Fired()) < len(sch.Faults()) {
			if time.Now().After(deadline) {
				t.Fatalf("only %d/%d faults fired", len(inj.Fired()), len(sch.Faults()))
			}
			time.Sleep(time.Millisecond)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(inj.Fired()); err != nil {
			t.Fatal(err)
		}
		return sch.Faults(), buf.Bytes()
	}
	faultsA, logA := run()
	faultsB, logB := run()
	if !reflect.DeepEqual(faultsA, faultsB) {
		t.Fatalf("same seed produced different schedules:\n%+v\n%+v", faultsA, faultsB)
	}
	if !bytes.Equal(logA, logB) {
		t.Fatalf("same seed produced different Fired logs:\n% x\n% x", logA, logB)
	}
}

// TestCallbackWrapperStall: wrapped callbacks block while the stall window
// for their (worker, op) is active; other operators are untouched.
func TestCallbackWrapperStall(t *testing.T) {
	const stall = 150 * time.Millisecond
	sch := NewSchedule(1).Stall(0, "w1", "planning", stall)
	inj := NewInjector(sch)
	defer inj.Stop()
	wrap := inj.CallbackWrapper("w1")

	inj.Arm()
	// Let the t=0 stall timer fire before invoking the wrapped callbacks.
	for len(inj.Fired()) == 0 {
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	ran := false
	wrap("planning", func() { ran = true })()
	if !ran {
		t.Fatal("stalled callback never ran")
	}
	if d := time.Since(start); d < stall/2 {
		t.Fatalf("stalled callback returned after %v, want ~%v", d, stall)
	}
	start = time.Now()
	wrap("control", func() {})()
	if d := time.Since(start); d > stall/2 {
		t.Fatalf("unrelated operator stalled for %v", d)
	}
}

// pipeConns returns the two ends of an in-memory connection, the w1 side
// wrapped by the injector's hook and handshake-named as talking to peer.
func pipeConns(t *testing.T, inj *Injector, peer string) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	h := inj.Hook("w1")
	wrapped := h.WrapConn(a)
	h.NamePeer(wrapped, peer)
	return wrapped, b
}

// TestFaultConnMatchingAndCorrupt: link faults reach only the matching
// worker↔peer connection; a corrupt fault flips a byte in exactly one
// frame without touching the caller's buffer.
func TestFaultConnMatchingAndCorrupt(t *testing.T) {
	sch := NewSchedule(1).Corrupt(0, "w1", "w2")
	inj := NewInjector(sch)
	defer inj.Stop()

	toW2, w2End := pipeConns(t, inj, "w2")
	toW3, w3End := pipeConns(t, inj, "w3")

	inj.Arm()
	for len(inj.Fired()) == 0 {
		time.Sleep(time.Millisecond)
	}

	payload := []byte{1, 2, 3, 4, 5}
	read := func(c net.Conn) []byte {
		buf := make([]byte, len(payload))
		if _, err := c.Read(buf); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	go func() { toW2.Write(payload); toW2.Write(payload) }()
	first, second := read(w2End), read(w2End)
	if reflect.DeepEqual(first, payload) {
		t.Fatalf("corrupt fault did not mangle the w1→w2 frame: % x", first)
	}
	if !reflect.DeepEqual(second, payload) {
		t.Fatalf("corruption leaked past one frame: % x", second)
	}
	if !reflect.DeepEqual(payload, []byte{1, 2, 3, 4, 5}) {
		t.Fatalf("caller's buffer was mangled in place: % x", payload)
	}
	go func() { toW3.Write(payload) }()
	if got := read(w3End); !reflect.DeepEqual(got, payload) {
		t.Fatalf("corrupt fault for w1↔w2 hit the w1↔w3 link: % x", got)
	}
}

// TestFaultConnSeverAndDelay: sever closes the matching link; delay adds
// the configured latency to every write on it.
func TestFaultConnSeverAndDelay(t *testing.T) {
	const lag = 30 * time.Millisecond
	sch := NewSchedule(1).
		Sever(0, "w1", "w2").
		Delay(0, "w1", "w3", lag)
	inj := NewInjector(sch)
	defer inj.Stop()

	toW2, _ := pipeConns(t, inj, "w2")
	toW3, w3End := pipeConns(t, inj, "w3")

	inj.Arm()
	for len(inj.Fired()) < 2 {
		time.Sleep(time.Millisecond)
	}

	if _, err := toW2.Write([]byte{1}); err == nil {
		t.Fatal("write on severed link succeeded")
	}
	start := time.Now()
	go func() { toW3.Write([]byte{1}) }()
	buf := make([]byte, 1)
	if _, err := w3End.Read(buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < lag/2 {
		t.Fatalf("delayed link delivered after %v, want ~%v", d, lag)
	}
}
