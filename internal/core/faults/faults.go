// Package faults is a deterministic, seeded fault-injection harness for the
// cluster runtime (§3.4 of the paper treats failures as missed deadlines;
// this package manufactures the failures). A Schedule is built once from a
// seed — kill this worker at t=300ms, sever that link at t=500ms — and an
// Injector arms it against a running cluster through two small hooks:
//
//   - comm.ConnHook / comm.PeerNamer: every data-plane connection is wrapped
//     in a faultConn that can be severed, write-delayed, or corrupted when
//     the matching link fault fires;
//   - RegisterKiller: worker processes register a kill function (ungraceful
//     teardown) invoked when a kill fault fires;
//   - CallbackWrapper: worker runtimes wrap operator callbacks so a stall
//     fault can hold a specific operator for a fixed duration.
//
// All randomness (optional jitter on fault times) comes from the schedule's
// seed, and all timing is schedule-relative: the injector reads the wall
// clock exactly once (at Arm, its monotonic origin) and everything else —
// stall-window expiry, the Fired log — is an offset from it. Two injectors
// armed from the same seed therefore produce byte-identical Fired logs no
// matter how loaded the machine is. Detection-latency tests anchor offsets
// back to wall time with ArmedAt.
package faults

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable fault types.
type Kind int

const (
	// KindKill ungracefully terminates a worker process.
	KindKill Kind = iota
	// KindSever closes the data-plane connection(s) of a link.
	KindSever
	// KindDelay adds a fixed delay to every write on a link.
	KindDelay
	// KindCorrupt flips bytes in the next frame written on a link.
	KindCorrupt
	// KindStall holds one operator's callbacks for a fixed duration.
	KindStall
)

func (k Kind) String() string {
	switch k {
	case KindKill:
		return "kill"
	case KindSever:
		return "sever"
	case KindDelay:
		return "delay"
	case KindCorrupt:
		return "corrupt"
	case KindStall:
		return "stall"
	}
	return "unknown"
}

// Fault is one scheduled injection.
type Fault struct {
	Kind Kind
	// At is the offset from Injector.Arm at which the fault fires
	// (including any seeded jitter applied at schedule build time).
	At time.Duration
	// Worker is the kill/stall target, or one endpoint of a link fault.
	Worker string
	// Peer is the other endpoint of a link fault; empty matches any peer.
	Peer string
	// Op is the operator name for stall faults.
	Op string
	// Duration is the per-write delay (KindDelay) or stall length
	// (KindStall).
	Duration time.Duration
}

// Fired records one injected fault at its schedule-relative offset. At is
// the fault's (jittered) schedule offset from Arm — a pure function of the
// seed, identical across replays — not a wall-clock read at firing time.
// Anchor it with Injector.ArmedAt to correlate against wall-clocked event
// logs (e.g. the leader's failure-detection events).
type Fired struct {
	Fault Fault
	At    time.Duration
}

// Schedule is a seeded, deterministic fault plan. Builder methods append
// faults; the seed drives optional jitter so distinct seeds explore
// distinct interleavings while any one seed replays exactly.
type Schedule struct {
	seed   int64
	rng    *rand.Rand
	jitter time.Duration
	faults []Fault
}

// NewSchedule returns an empty schedule seeded with seed.
func NewSchedule(seed int64) *Schedule {
	return &Schedule{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Seed returns the schedule's seed (for logging a reproducible run).
func (s *Schedule) Seed() int64 { return s.seed }

// Jitter makes subsequent builder calls smear their fault time by a
// seeded-uniform offset in [0, max). Call before adding faults.
func (s *Schedule) Jitter(max time.Duration) *Schedule {
	s.jitter = max
	return s
}

func (s *Schedule) at(t time.Duration) time.Duration {
	if s.jitter > 0 {
		t += time.Duration(s.rng.Int63n(int64(s.jitter)))
	}
	return t
}

// Kill schedules an ungraceful worker termination at offset t.
func (s *Schedule) Kill(t time.Duration, worker string) *Schedule {
	s.faults = append(s.faults, Fault{Kind: KindKill, At: s.at(t), Worker: worker})
	return s
}

// Sever schedules closing the data-plane connections between worker and
// peer (either direction; empty peer matches all of worker's links).
func (s *Schedule) Sever(t time.Duration, worker, peer string) *Schedule {
	s.faults = append(s.faults, Fault{Kind: KindSever, At: s.at(t), Worker: worker, Peer: peer})
	return s
}

// Delay schedules adding d to every write on the worker↔peer link.
func (s *Schedule) Delay(t time.Duration, worker, peer string, d time.Duration) *Schedule {
	s.faults = append(s.faults, Fault{Kind: KindDelay, At: s.at(t), Worker: worker, Peer: peer, Duration: d})
	return s
}

// Corrupt schedules flipping bytes in the next frame written on the
// worker↔peer link; the receiver sees protocol corruption and drops the
// connection.
func (s *Schedule) Corrupt(t time.Duration, worker, peer string) *Schedule {
	s.faults = append(s.faults, Fault{Kind: KindCorrupt, At: s.at(t), Worker: worker, Peer: peer})
	return s
}

// Stall schedules holding operator op on worker for d: callbacks wrapped by
// CallbackWrapper block until the stall window passes, modeling a straggler
// that the deadline machinery must surface as misses.
func (s *Schedule) Stall(t time.Duration, worker, op string, d time.Duration) *Schedule {
	s.faults = append(s.faults, Fault{Kind: KindStall, At: s.at(t), Worker: worker, Op: op, Duration: d})
	return s
}

// Faults returns the planned faults in insertion order.
func (s *Schedule) Faults() []Fault { return append([]Fault(nil), s.faults...) }

// Injector arms a Schedule against a running cluster.
type Injector struct {
	sched *Schedule

	mu       sync.Mutex
	killers  map[string]func()
	conns    []*faultConn
	stalls   map[string]time.Duration // worker "/" op -> stall-end offset from base
	timers   []*time.Timer
	fired    []Fired
	firedSeq []int // schedule position of each fired entry, for stable order
	base     time.Time
	armed    bool
	stopped  bool
}

// NewInjector prepares sched for arming.
func NewInjector(sched *Schedule) *Injector {
	return &Injector{
		sched:   sched,
		killers: map[string]func(){},
		stalls:  map[string]time.Duration{},
	}
}

// RegisterKiller installs the ungraceful-teardown function for worker,
// invoked (once, on its own goroutine) when a kill fault fires.
func (inj *Injector) RegisterKiller(worker string, kill func()) {
	inj.mu.Lock()
	inj.killers[worker] = kill
	inj.mu.Unlock()
}

// Hook returns the comm.ConnHook for one worker's transport: connections
// are wrapped so link faults targeting that worker can reach them. The
// returned value also implements comm.PeerNamer.
func (inj *Injector) Hook(worker string) *Hook {
	return &Hook{inj: inj, worker: worker}
}

// CallbackWrapper returns a worker-runtime callback wrapper: wrapped
// callbacks block while a stall fault for (worker, op) is active.
func (inj *Injector) CallbackWrapper(worker string) func(op string, f func()) func() {
	return func(op string, f func()) func() {
		key := worker + "/" + op
		return func() {
			for {
				inj.mu.Lock()
				until, ok := inj.stalls[key]
				base := inj.base
				inj.mu.Unlock()
				if !ok {
					break
				}
				// The stall window closes at a schedule offset from the arm
				// origin; time.Since(base) rides Go's monotonic clock, so a
				// wall-clock step cannot stretch or shrink the stall.
				remaining := until - time.Since(base) //erdos:allow wallclock monotonic elapsed-time read against the Arm origin
				if remaining <= 0 {
					break
				}
				time.Sleep(remaining) //erdos:allow wallclock the stall fault must block the callback for real
			}
			f()
		}
	}
}

// Arm starts the schedule's timers; offsets are measured from now.
func (inj *Injector) Arm() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.armed {
		return
	}
	inj.armed = true
	// The injector's single wall-clock read: the monotonic origin every
	// stall window and Fired offset is measured from.
	inj.base = time.Now() //erdos:allow wallclock the one anchoring read; all fault timing is schedule offsets from it
	for i, f := range inj.sched.faults {
		i, f := i, f
		inj.timers = append(inj.timers, time.AfterFunc(f.At, func() { inj.fire(f, i) }))
	}
}

// ArmedAt returns the wall-clock instant the schedule was armed — the origin
// all Fired offsets are measured from — or the zero time before Arm.
func (inj *Injector) ArmedAt() time.Time {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.base
}

// Stop cancels pending faults; already-fired faults are not undone.
func (inj *Injector) Stop() {
	inj.mu.Lock()
	inj.stopped = true
	timers := inj.timers
	inj.timers = nil
	inj.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
}

// Fired returns the faults injected so far with their schedule offsets, in
// (offset, schedule position) order. The order is a function of the schedule
// alone — timer-goroutine skew between nearby faults cannot reorder it — so
// completed same-seed runs yield byte-identical logs.
func (inj *Injector) Fired() []Fired {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]Fired(nil), inj.fired...)
}

func (inj *Injector) fire(f Fault, seq int) {
	inj.mu.Lock()
	if inj.stopped {
		inj.mu.Unlock()
		return
	}
	// Insertion sort by (offset, schedule position): under load two timers
	// may fire out of order, but the log must not care.
	i := len(inj.fired)
	for i > 0 && (inj.fired[i-1].At > f.At || (inj.fired[i-1].At == f.At && inj.firedSeq[i-1] > seq)) {
		i--
	}
	inj.fired = append(inj.fired, Fired{})
	copy(inj.fired[i+1:], inj.fired[i:])
	inj.fired[i] = Fired{Fault: f, At: f.At}
	inj.firedSeq = append(inj.firedSeq, 0)
	copy(inj.firedSeq[i+1:], inj.firedSeq[i:])
	inj.firedSeq[i] = seq
	var kill func()
	var links []*faultConn
	switch f.Kind {
	case KindKill:
		kill = inj.killers[f.Worker]
	case KindSever, KindDelay, KindCorrupt:
		for _, fc := range inj.conns {
			if fc.matches(f.Worker, f.Peer) {
				links = append(links, fc)
			}
		}
	case KindStall:
		// Stall-window end as a schedule offset: fire time plus duration,
		// independent of when this timer goroutine actually ran.
		inj.stalls[f.Worker+"/"+f.Op] = f.At + f.Duration
	}
	inj.mu.Unlock()
	if kill != nil {
		go kill()
	}
	for _, fc := range links {
		switch f.Kind {
		case KindSever:
			fc.sever()
		case KindDelay:
			fc.delay.Store(int64(f.Duration))
		case KindCorrupt:
			fc.corrupt.Store(true)
		}
	}
}

func (inj *Injector) register(fc *faultConn) {
	inj.mu.Lock()
	inj.conns = append(inj.conns, fc)
	inj.mu.Unlock()
}

// Hook wraps one worker's data-plane connections for fault injection; it
// implements comm.ConnHook and comm.PeerNamer.
type Hook struct {
	inj    *Injector
	worker string
}

// WrapConn implements comm.ConnHook.
func (h *Hook) WrapConn(c net.Conn) net.Conn {
	fc := &faultConn{Conn: c, local: h.worker}
	h.inj.register(fc)
	return fc
}

// NamePeer implements comm.PeerNamer: the transport reports which worker
// the wrapped connection talks to once the handshake completes.
func (h *Hook) NamePeer(c net.Conn, peer string) {
	if fc, ok := c.(*faultConn); ok {
		fc.peer.Store(&peer)
	}
}

// faultConn is a net.Conn with injectable misbehavior. The zero state is
// fully transparent.
type faultConn struct {
	net.Conn
	local   string
	peer    atomic.Pointer[string]
	delay   atomic.Int64 // per-write delay, ns
	corrupt atomic.Bool  // flip bytes in the next write
}

func (fc *faultConn) matches(worker, peer string) bool {
	p := ""
	if pp := fc.peer.Load(); pp != nil {
		p = *pp
	}
	if fc.local == worker {
		return peer == "" || p == peer
	}
	if p == worker {
		return peer == "" || fc.local == peer
	}
	return false
}

func (fc *faultConn) sever() { fc.Conn.Close() }

func (fc *faultConn) Write(b []byte) (int, error) {
	if d := fc.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d)) //erdos:allow wallclock the delay fault must add real latency to the link
	}
	if fc.corrupt.CompareAndSwap(true, false) && len(b) > 0 {
		// Flip a byte mid-buffer on a copy: the caller's slice (often a
		// bufio buffer that will be reused) must stay intact.
		mangled := make([]byte, len(b))
		copy(mangled, b)
		mangled[len(mangled)/2] ^= 0xFF
		return fc.Conn.Write(mangled)
	}
	return fc.Conn.Write(b)
}
