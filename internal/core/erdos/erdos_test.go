package erdos

import (
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/deadline"
	"github.com/erdos-go/erdos/internal/core/state"
)

func TestTypedPipelineEndToEnd(t *testing.T) {
	g := NewGraph()
	nums := IngestStream[int](g, "nums")
	doubled := AddStream[int](g, "doubled")

	op := g.Operator("double")
	out := Output(op, doubled)
	Input(op, nums, func(ctx *Context, ts Timestamp, v int) {
		_ = ctx.Send(out, ts, v*2)
	})
	op.OnWatermark(func(ctx *Context) {}).Build()

	rt, err := g.RunLocal()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	sink, err := Collect(rt, doubled)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Writer(rt, nums)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := w.Send(T(uint64(i)), i); err != nil {
			t.Fatal(err)
		}
		if err := w.SendWatermark(T(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	rt.Quiesce()
	data := sink.Data()
	if len(data) != 4 {
		t.Fatalf("collected %d messages, want 4", len(data))
	}
	for i, d := range data {
		if d.Value != (i+1)*2 {
			t.Fatalf("data[%d] = %d", i, d.Value)
		}
	}
	if len(sink.Watermarks()) != 4 {
		t.Fatalf("collected %d watermarks", len(sink.Watermarks()))
	}
}

func TestTypedStateAndDeadline(t *testing.T) {
	type planState struct{ Plans []string }
	clk := deadline.NewManual(time.Unix(0, 0))
	g := NewGraph()
	in := IngestStream[string](g, "in")
	plans := AddStream[string](g, "plans")

	op := g.Operator("planner")
	out := Output(op, plans)
	Input(op, in, func(ctx *Context, ts Timestamp, v string) {
		st := StateOf[*planState](ctx)
		st.Plans = append(st.Plans, v)
	})
	WithState(op, &planState{}, func(s *planState) *planState {
		return &planState{Plans: append([]string(nil), s.Plans...)}
	})
	block := make(chan struct{})
	op.OnWatermark(func(ctx *Context) {
		if ctx.Timestamp.L == 2 {
			<-block // runtime variability on t=2
		}
		st := StateOf[*planState](ctx)
		if len(st.Plans) > 0 {
			_ = ctx.Send(out, ctx.Timestamp, st.Plans[len(st.Plans)-1])
		}
	})
	op.TimestampDeadline("resp", Static(20*time.Millisecond), Abort, func(h *HandlerContext) {
		// Reactive measure: release the previous plan (§5.3 "skipping").
		prev := "none"
		if c, ok := h.Committed.(*planState); ok && len(c.Plans) > 0 {
			prev = c.Plans[len(c.Plans)-1] + "-amended"
		}
		_ = h.Send(out, h.Miss.Timestamp, prev)
		_ = h.SendWatermark(out, h.Miss.Timestamp)
	})
	op.Build()
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}

	rt, err := g.RunLocal(WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	sink, _ := Collect(rt, plans)
	w, _ := Writer(rt, in)

	_ = w.Send(T(1), "plan-1")
	_ = w.SendWatermark(T(1))
	rt.Quiesce() // t=1 completes in time
	_ = w.Send(T(2), "plan-2")
	_ = w.SendWatermark(T(2))
	clk.Advance(25 * time.Millisecond) // t=2 misses its deadline
	rt.WaitHandlers()
	close(block)
	rt.Quiesce()

	data := sink.Data()
	if len(data) != 2 {
		t.Fatalf("collected %v, want 2 messages", data)
	}
	if data[0].Value != "plan-1" {
		t.Fatalf("data[0] = %q", data[0].Value)
	}
	if data[1].Value != "plan-1-amended" {
		t.Fatalf("data[1] = %q, want the handler's amended previous plan", data[1].Value)
	}
	if rt.Stats().DeadlineMisses != 1 {
		t.Fatalf("DeadlineMisses = %d", rt.Stats().DeadlineMisses)
	}
}

func TestFrequencyDeadlineFacade(t *testing.T) {
	clk := deadline.NewManual(time.Unix(0, 0))
	g := NewGraph()
	obstacles := IngestStream[int](g, "obstacles")
	lights := IngestStream[int](g, "lights")
	plans := AddStream[int](g, "plans")

	op := g.Operator("planner")
	out := Output(op, plans)
	Input(op, obstacles, nil)
	lightsIdx := Input(op, lights, nil)
	op.OnWatermark(func(ctx *Context) {
		_ = ctx.Send(out, ctx.Timestamp, int(ctx.Timestamp.L))
	})
	op.FrequencyDeadline("lights-gap", lightsIdx, Static(30*time.Millisecond), nil)
	op.Build()

	rt, err := g.RunLocal(WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	sink, _ := Collect(rt, plans)
	ow, _ := Writer(rt, obstacles)
	lw, _ := Writer(rt, lights)

	_ = ow.SendWatermark(T(0))
	_ = lw.SendWatermark(T(0))
	rt.Quiesce()
	_ = ow.SendWatermark(T(1)) // lights silent for t=1
	rt.Quiesce()
	if sink.Len() != 1 {
		t.Fatalf("len = %d before gap, want 1 (t=0 only)", sink.Len())
	}
	clk.Advance(31 * time.Millisecond)
	rt.Quiesce()
	if sink.Len() != 2 {
		t.Fatalf("len = %d after gap, want 2 (eager partial-input execution)", sink.Len())
	}
	if rt.Stats().InsertedWMs != 1 {
		t.Fatalf("InsertedWMs = %d", rt.Stats().InsertedWMs)
	}
}

func TestGraphErrorsSurface(t *testing.T) {
	g := NewGraph()
	s := AddStream[int](g, "s")
	op := g.Operator("bad")
	Input(op, s, nil) // reads a stream that nothing writes
	op.Build()
	if _, err := g.RunLocal(); err == nil {
		t.Fatal("RunLocal must fail validation for a writer-less stream")
	}
}

func TestBuildTwiceErrors(t *testing.T) {
	g := NewGraph()
	in := IngestStream[int](g, "in")
	op := g.Operator("op")
	Input(op, in, nil)
	op.OnWatermark(func(ctx *Context) {})
	op.Build()
	op.Build()
	if err := g.Err(); err == nil {
		t.Fatal("double Build must be reported")
	}
}

func TestDynamicDeadlineFacade(t *testing.T) {
	g := NewGraph()
	dls := IngestStream[time.Duration](g, "deadlines")
	dyn := DynamicDeadline(g, dls, 100*time.Millisecond)
	in := IngestStream[int](g, "in")
	op := g.Operator("op")
	Input(op, in, nil)
	op.OnWatermark(func(ctx *Context) {})
	op.TimestampDeadline("resp", dyn, Continue, nil)
	op.Build()
	rt, err := g.RunLocal()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w, _ := Writer(rt, dls)
	_ = w.Send(T(5), 42*time.Millisecond)
	rt.Quiesce()
	if got := dyn.For(T(9)); got != 42*time.Millisecond {
		t.Fatalf("dynamic deadline = %v, want 42ms", got)
	}
}

func TestCustomLogStateStore(t *testing.T) {
	// §5.4's custom-state interface: a planner logging waypoint additions
	// (CRDT-style) instead of snapshotting the full plan per timestamp.
	g := NewGraph()
	in := IngestStream[int](g, "in")
	op := g.Operator("planner")
	Input(op, in, func(ctx *Context, ts Timestamp, v int) {
		lv := ctx.State().(*state.LogView)
		lv.Record(v)
	})
	st := state.NewLog(
		func() any { return &[]int{} },
		func(s, op any) {
			sl := s.(*[]int)
			*sl = append(*sl, op.(int))
		},
	)
	op.WithStore(func() state.Store { return st })
	op.OnWatermark(func(ctx *Context) {})
	op.Build()
	rt, err := g.RunLocal()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w, _ := Writer(rt, in)
	for l := uint64(1); l <= 3; l++ {
		_ = w.Send(T(l), int(l)*100)
		_ = w.SendWatermark(T(l))
	}
	rt.Quiesce()
	got, _, ok := st.Last()
	if !ok {
		t.Fatal("no committed state")
	}
	pts := *got.(*[]int)
	if len(pts) != 3 || pts[0] != 100 || pts[2] != 300 {
		t.Fatalf("logged state = %v", pts)
	}
}
