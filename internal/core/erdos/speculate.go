package erdos

import (
	"time"
)

// Accuracy coordinates used by the speculative-execution helpers: outputs
// are annotated with ĉ so the lattice prioritizes higher-accuracy inputs
// downstream (§5.3, "Intermediate Results").
const (
	// CoarseResult tags the fast, low-accuracy release.
	CoarseResult uint64 = 1
	// RefinedResult tags the accurate release for the same logical time.
	RefinedResult uint64 = 2
)

// Speculate implements §5.3's "executing multiple versions" proactive
// strategy for one timestamp: it immediately runs fast, releases its result
// on output `out` tagged with a low accuracy coordinate (unblocking
// downstream computation), and concurrently runs accurate. If the accurate
// implementation completes before the timestamp's deadline expires (and the
// invocation is not aborted by a DEH), its result is released with a higher
// accuracy coordinate and returned; otherwise the fast result stands.
//
// The returned bool reports whether the accurate version won. The runtime
// automatically prioritizes the higher-ĉ messages downstream, so consumers
// transparently compute on the best available input.
func Speculate[T any](ctx *Context, out int, fast, accurate func() T) (T, bool) {
	fastRes := fast()
	_ = ctx.Send(out, ctx.Timestamp.WithCoordinates(CoarseResult), fastRes)

	accCh := make(chan T, 1)
	go func() { accCh <- accurate() }()

	var expire <-chan time.Time
	if _, abs, ok := ctx.Deadline(); ok {
		d := time.Until(abs)
		if d <= 0 {
			return fastRes, false
		}
		t := time.NewTimer(d)
		defer t.Stop()
		expire = t.C
	}
	select {
	case accRes := <-accCh:
		if ctx.Aborted() {
			return fastRes, false
		}
		_ = ctx.Send(out, ctx.Timestamp.WithCoordinates(RefinedResult), accRes)
		return accRes, true
	case <-expire:
		return fastRes, false
	case <-ctx.Done():
		return fastRes, false
	}
}

// Anytime implements §5.3's anytime-algorithm strategy: step is called
// repeatedly until it reports no further refinement, the deadline expires,
// or the invocation is aborted; each refined result is released with an
// increasing accuracy coordinate so downstream computation can begin on the
// coarse result and transparently upgrade.
//
// step returns the current best result and whether another refinement round
// remains. Anytime returns the last released result and the number of
// refinement rounds released.
func Anytime[T any](ctx *Context, out int, step func(round int) (T, bool)) (T, int) {
	var last T
	rounds := 0
	var deadline time.Time
	hasDL := false
	if _, abs, ok := ctx.Deadline(); ok {
		deadline, hasDL = abs, true
	}
	for {
		res, more := step(rounds)
		last = res
		rounds++
		_ = ctx.Send(out, ctx.Timestamp.WithCoordinates(uint64(rounds)), res)
		if !more || ctx.Aborted() {
			return last, rounds
		}
		if hasDL && !time.Now().Before(deadline) {
			return last, rounds
		}
	}
}
