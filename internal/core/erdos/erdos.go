// Package erdos is the public façade of the runtime: a typed, ergonomic API
// for building and running D3 dataflow graphs (§4 of the paper).
//
// A program builds a Graph of typed streams and operators, registers
// callbacks and deadlines, and runs it either locally (every operator in one
// worker) or across a cluster (package cluster). Example:
//
//	g := erdos.NewGraph()
//	frames := erdos.IngestStream[Frame](g, "camera")
//	detections := erdos.AddStream[[]Obstacle](g, "obstacles")
//	op := g.Operator("detector")
//	in := erdos.Input(op, frames, func(ctx *erdos.Context, t erdos.Timestamp, f Frame) { ... })
//	out := erdos.Output(op, detections)
//	op.OnWatermark(func(ctx *erdos.Context) { ... })
//	op.Build()
//	rt, _ := g.RunLocal()
//	defer rt.Stop()
package erdos

import (
	"fmt"
	"reflect"
	"sync"
	"time"

	"github.com/erdos-go/erdos/internal/core/deadline"
	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/lattice"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/state"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
	"github.com/erdos-go/erdos/internal/core/worker"
)

// Re-exported core types, so applications import a single package.
type (
	// Timestamp is the extended timestamp t = (l, ĉ).
	Timestamp = timestamp.Timestamp
	// Context is passed to data and watermark callbacks.
	Context = operator.Context
	// HandlerContext is passed to deadline exception handlers.
	HandlerContext = operator.HandlerContext
	// HandlerCallback is a deadline exception handler.
	HandlerCallback = operator.HandlerCallback
	// Message is an untyped stream message.
	Message = message.Message
	// Miss describes a missed deadline.
	Miss = deadline.Miss
)

// Deadline policies (§5.4).
const (
	// Abort terminates the proactive strategy and lets the handler amend
	// the dirty state.
	Abort = deadline.Abort
	// Continue runs the handler in parallel with the proactive strategy.
	Continue = deadline.Continue
)

// T constructs a timestamp with logical time l and optional accuracy
// coordinates.
func T(l uint64, c ...uint64) Timestamp { return timestamp.New(l, c...) }

// Graph is a dataflow graph under construction.
type Graph struct {
	g    *graph.Graph
	errs []error
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{g: graph.New()} }

// Stream is a typed handle to a dataflow stream.
type Stream[T any] struct {
	id stream.ID
}

// ID returns the raw stream identifier.
func (s Stream[T]) ID() stream.ID { return s.id }

// AddStream registers a stream carrying values of type T, to be written by
// exactly one operator.
func AddStream[T any](g *Graph, name string) Stream[T] {
	var zero T
	id := g.g.AddStream(name, reflect.TypeOf(&zero).Elem().String())
	return Stream[T]{id: id}
}

// IngestStream registers a stream written by the application (a source of
// the graph, e.g. a sensor).
func IngestStream[T any](g *Graph, name string) Stream[T] {
	s := AddStream[T](g, name)
	if err := g.g.MarkIngest(s.id); err != nil {
		g.errs = append(g.errs, err)
	}
	return s
}

// Affinity declares the named operators — typically a producer→consumer
// chain — as a co-location group: they share a lattice home shard within a
// worker, and unpinned members are scheduled onto the same worker in a
// cluster. Call after the operators are built.
func (g *Graph) Affinity(ops ...string) *Graph {
	if err := g.g.WithAffinity(ops...); err != nil {
		g.errs = append(g.errs, err)
	}
	return g
}

// DynamicDeadline declares that stream s carries relative-deadline updates
// from the deadline policy pDP and returns the deadline source that tracks
// them (§5.2). The source can be passed to OpBuilder.TimestampDeadline.
func DynamicDeadline(g *Graph, s Stream[time.Duration], def time.Duration) *deadline.Dynamic {
	dyn := deadline.NewDynamic(def)
	if err := g.g.AddDeadlineFeed(s.id, dyn); err != nil {
		g.errs = append(g.errs, err)
	}
	return dyn
}

// Static returns a static relative-deadline source.
func Static(d time.Duration) deadline.Source { return deadline.Static(d) }

// OpBuilder accumulates one operator's registration.
type OpBuilder struct {
	g        *Graph
	spec     *operator.Spec
	handlers []func(ctx *operator.Context, m message.Message)
	built    bool
}

// Operator starts building an operator.
func (g *Graph) Operator(name string) *OpBuilder {
	return &OpBuilder{
		g: g,
		spec: &operator.Spec{
			Name:          name,
			AutoWatermark: true,
		},
	}
}

// Input registers s as the next input of b's operator and binds fn to its
// data messages. fn may be nil for inputs consumed only via the watermark
// callback. It returns the input's positional index.
func Input[T any](b *OpBuilder, s Stream[T], fn func(ctx *Context, t Timestamp, v T)) int {
	idx := len(b.spec.Inputs)
	b.spec.Inputs = append(b.spec.Inputs, s.id)
	if fn == nil {
		b.handlers = append(b.handlers, nil)
	} else {
		b.handlers = append(b.handlers, func(ctx *operator.Context, m message.Message) {
			fn(ctx, m.Timestamp, stream.Payload[T](m))
		})
	}
	return idx
}

// Output registers s as the next output of b's operator and returns its
// positional index for Context.Send.
func Output[T any](b *OpBuilder, s Stream[T]) int {
	idx := len(b.spec.Outputs)
	b.spec.Outputs = append(b.spec.Outputs, s.id)
	return idx
}

// WithState registers the operator's system-managed state (§5.4): the
// default time-versioned snapshot store seeded with initial and cloned by
// clone.
func WithState[S any](b *OpBuilder, initial S, clone func(S) S) *OpBuilder {
	b.spec.NewState = func() state.Store { return state.Typed(initial, clone) }
	return b
}

// WithStore registers a custom state store factory (e.g. state.NewLog).
func (b *OpBuilder) WithStore(factory func() state.Store) *OpBuilder {
	b.spec.NewState = factory
	return b
}

// StateOf extracts the typed working view from a callback context.
func StateOf[S any](ctx *Context) S {
	v, ok := ctx.State().(S)
	if !ok {
		panic(fmt.Sprintf("erdos: operator %q state is %T, not %T", ctx.Operator, ctx.State(), v))
	}
	return v
}

// OnWatermark registers the timestamp-ordered watermark callback.
func (b *OpBuilder) OnWatermark(fn operator.WatermarkCallback) *OpBuilder {
	b.spec.OnWatermark = fn
	return b
}

// ParallelMessages lets the operator's data callbacks run concurrently; the
// operator takes over synchronization of any shared structures (§6.2).
func (b *OpBuilder) ParallelMessages() *OpBuilder {
	b.spec.Mode = lattice.ModeParallelMessages
	return b
}

// NoAutoWatermark disables the automatic forwarding of completed
// watermarks; the operator must release watermarks itself.
func (b *OpBuilder) NoAutoWatermark() *OpBuilder {
	b.spec.AutoWatermark = false
	return b
}

// Place pins the operator to a named worker.
func (b *OpBuilder) Place(workerName string) *OpBuilder {
	b.spec.Placement = workerName
	return b
}

// TimestampDeadline registers a timestamp deadline (§5.1) with the default
// DSC (first received message for t) and DEC (first sent watermark for
// t' >= t), returning a DeadlineBuilder for customization.
func (b *OpBuilder) TimestampDeadline(name string, value deadline.Source, policy deadline.Policy, handler operator.HandlerCallback) *DeadlineBuilder {
	b.spec.Deadlines = append(b.spec.Deadlines, operator.TimestampDeadlineSpec{
		Name:    name,
		Output:  operator.AllOutputs,
		Value:   value,
		Policy:  policy,
		Handler: handler,
	})
	return &DeadlineBuilder{spec: &b.spec.Deadlines[len(b.spec.Deadlines)-1]}
}

// FrequencyDeadline registers a frequency deadline (§5.1) on input index
// `input`: if its next watermark does not arrive within the gap supplied by
// value, the runtime inserts one so downstream computation proceeds with
// partial input.
func (b *OpBuilder) FrequencyDeadline(name string, input int, value deadline.Source, onInsert func(Timestamp)) *OpBuilder {
	b.spec.FrequencyDeadlines = append(b.spec.FrequencyDeadlines, operator.FrequencyDeadlineSpec{
		Name:     name,
		Input:    input,
		Value:    value,
		OnInsert: onInsert,
	})
	return b
}

// DeadlineBuilder customizes one timestamp deadline.
type DeadlineBuilder struct {
	spec *operator.TimestampDeadlineSpec
}

// WithStartCondition replaces the DSC.
func (d *DeadlineBuilder) WithStartCondition(c deadline.Condition) *DeadlineBuilder {
	d.spec.Start = c
	return d
}

// WithEndCondition replaces the DEC (e.g. deadline.MessageCount(1) to bound
// the time to the first released message, as the Planner in Lst. 1 does).
func (d *DeadlineBuilder) WithEndCondition(c deadline.Condition) *DeadlineBuilder {
	d.spec.End = c
	return d
}

// OnOutput narrows the DEC to a single output stream index.
func (d *DeadlineBuilder) OnOutput(i int) *DeadlineBuilder {
	d.spec.Output = i
	return d
}

// Build registers the operator with the graph.
func (b *OpBuilder) Build() *Graph {
	if b.built {
		b.g.errs = append(b.g.errs, fmt.Errorf("erdos: operator %q built twice", b.spec.Name))
		return b.g
	}
	b.built = true
	handlers := b.handlers
	hasAny := false
	for _, h := range handlers {
		if h != nil {
			hasAny = true
		}
	}
	if hasAny {
		b.spec.OnData = func(ctx *operator.Context, input int, m message.Message) {
			if input < len(handlers) && handlers[input] != nil {
				handlers[input](ctx, m)
			}
		}
	}
	if err := b.g.g.AddOperator(b.spec); err != nil {
		b.g.errs = append(b.g.errs, err)
	}
	return b.g
}

// Err returns the accumulated construction errors, if any.
func (g *Graph) Err() error {
	if len(g.errs) == 0 {
		return nil
	}
	return fmt.Errorf("erdos: %d graph construction errors, first: %w", len(g.errs), g.errs[0])
}

// Raw exposes the underlying graph for the cluster and worker layers.
func (g *Graph) Raw() *graph.Graph { return g.g }

// RunOption customizes RunLocal.
type RunOption func(*worker.Options)

// WithThreads sizes the lattice goroutine pool.
func WithThreads(n int) RunOption {
	return func(o *worker.Options) { o.Threads = n }
}

// WithClock injects the deadline-enforcement clock (tests, simulation).
func WithClock(c deadline.Clock) RunOption {
	return func(o *worker.Options) { o.Clock = c }
}

// Runtime is a running local instantiation of a graph.
type Runtime struct {
	W *worker.Worker
}

// RunLocal validates the graph and runs every operator in one worker.
func (g *Graph) RunLocal(opts ...RunOption) (*Runtime, error) {
	if err := g.Err(); err != nil {
		return nil, err
	}
	wo := worker.Options{Local: true}
	for _, o := range opts {
		o(&wo)
	}
	w, err := worker.New(g.g, wo)
	if err != nil {
		return nil, err
	}
	return &Runtime{W: w}, nil
}

// Quiesce waits until every scheduled callback has completed.
func (r *Runtime) Quiesce() { r.W.Quiesce() }

// WaitHandlers waits for in-flight deadline exception handlers.
func (r *Runtime) WaitHandlers() { r.W.WaitHandlers() }

// Stop tears the runtime down.
func (r *Runtime) Stop() { r.W.Stop() }

// Stats returns the worker counters.
func (r *Runtime) Stats() worker.Stats { return r.W.Stats() }

// Writer returns a typed writer for an ingest stream.
func Writer[T any](r *Runtime, s Stream[T]) (stream.WriteStream[T], error) {
	b, ok := r.W.Broadcaster(s.id)
	if !ok {
		var zero stream.WriteStream[T]
		return zero, fmt.Errorf("erdos: unknown stream %d", s.id)
	}
	return stream.Wrap[T](b), nil
}

// Collector gathers the traffic of one stream for extraction.
type Collector[T any] struct {
	mu   sync.Mutex
	data []Timestamped[T]
	wms  []Timestamp
	subs []func(Timestamped[T])
}

// Timestamped pairs a payload with its timestamp.
type Timestamped[T any] struct {
	Time  Timestamp
	Value T
}

// Collect subscribes a typed collector to stream s.
func Collect[T any](r *Runtime, s Stream[T]) (*Collector[T], error) {
	c := &Collector[T]{}
	err := r.W.Subscribe(s.id, func(m message.Message) {
		if m.IsWatermark() {
			c.mu.Lock()
			c.wms = append(c.wms, m.Timestamp)
			c.mu.Unlock()
			return
		}
		tv := Timestamped[T]{Time: m.Timestamp, Value: stream.Payload[T](m)}
		c.mu.Lock()
		c.data = append(c.data, tv)
		subs := c.subs
		c.mu.Unlock()
		for _, fn := range subs {
			fn(tv)
		}
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Data returns the collected data messages.
func (c *Collector[T]) Data() []Timestamped[T] {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Timestamped[T](nil), c.data...)
}

// Watermarks returns the collected watermark timestamps.
func (c *Collector[T]) Watermarks() []Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Timestamp(nil), c.wms...)
}

// OnData registers a live subscriber invoked for each data message.
func (c *Collector[T]) OnData(fn func(Timestamped[T])) {
	c.mu.Lock()
	c.subs = append(c.subs, fn)
	c.mu.Unlock()
}

// Len returns the number of collected data messages.
func (c *Collector[T]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.data)
}
