package erdos

import (
	"testing"
	"time"
)

// buildSpecGraph wires source -> detector -> consumer, with the detector
// running a fast and an accurate implementation speculatively.
func runSpeculation(t *testing.T, accurateDelay time.Duration, deadline time.Duration) (*Collector[string], *Runtime) {
	t.Helper()
	g := NewGraph()
	frames := IngestStream[int](g, "frames")
	dets := AddStream[string](g, "detections")

	op := g.Operator("detector")
	out := Output(op, dets)
	Input(op, frames, func(ctx *Context, ts Timestamp, v int) {
		Speculate(ctx, out,
			func() string { return "fast" },
			func() string {
				time.Sleep(accurateDelay)
				return "accurate"
			})
	})
	op.OnWatermark(func(ctx *Context) {})
	if deadline > 0 {
		op.TimestampDeadline("det", Static(deadline), Continue, nil)
	}
	op.Build()

	rt, err := g.RunLocal()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	sink, err := Collect(rt, dets)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Writer(rt, frames)
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Send(T(1), 1)
	_ = w.SendWatermark(T(1))
	rt.Quiesce()
	return sink, rt
}

func TestSpeculateAccurateWinsInTime(t *testing.T) {
	sink, _ := runSpeculation(t, time.Millisecond, 500*time.Millisecond)
	data := sink.Data()
	if len(data) != 2 {
		t.Fatalf("got %d results, want fast + accurate", len(data))
	}
	if data[0].Value != "fast" || data[0].Time.Coordinate(0) != CoarseResult {
		t.Fatalf("first release = %+v, want coarse fast result", data[0])
	}
	if data[1].Value != "accurate" || data[1].Time.Coordinate(0) != RefinedResult {
		t.Fatalf("second release = %+v, want refined accurate result", data[1])
	}
	if !data[0].Time.Less(data[1].Time) {
		t.Fatal("refined result must order after the coarse one")
	}
}

func TestSpeculateDeadlineKeepsFastResult(t *testing.T) {
	sink, _ := runSpeculation(t, 300*time.Millisecond, 20*time.Millisecond)
	data := sink.Data()
	if len(data) != 1 {
		t.Fatalf("got %d results, want only the fast one (accurate missed the deadline)", len(data))
	}
	if data[0].Value != "fast" {
		t.Fatalf("release = %+v", data[0])
	}
}

func TestSpeculateNoDeadlineWaitsForAccurate(t *testing.T) {
	sink, _ := runSpeculation(t, 5*time.Millisecond, 0)
	data := sink.Data()
	if len(data) != 2 || data[1].Value != "accurate" {
		t.Fatalf("got %+v, want the accurate result without a deadline", data)
	}
}

func TestAnytimeReleasesRefinements(t *testing.T) {
	g := NewGraph()
	in := IngestStream[int](g, "in")
	outS := AddStream[int](g, "out")
	op := g.Operator("planner")
	out := Output(op, outS)
	var rounds int
	op.OnWatermark(func(ctx *Context) {
		_, rounds = Anytime(ctx, out, func(round int) (int, bool) {
			return round * 10, round < 3
		})
	})
	Input(op, in, nil)
	op.Build()
	rt, err := g.RunLocal()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	sink, _ := Collect(rt, outS)
	w, _ := Writer(rt, in)
	_ = w.SendWatermark(T(1))
	rt.Quiesce()
	if rounds != 4 {
		t.Fatalf("rounds = %d, want 4", rounds)
	}
	data := sink.Data()
	if len(data) != 4 {
		t.Fatalf("releases = %d, want one per round", len(data))
	}
	for i, d := range data {
		if d.Time.Coordinate(0) != uint64(i+1) {
			t.Fatalf("release %d has ĉ=%d", i, d.Time.Coordinate(0))
		}
		if d.Value != i*10 {
			t.Fatalf("release %d = %d", i, d.Value)
		}
	}
}

func TestAnytimeStopsAtDeadline(t *testing.T) {
	g := NewGraph()
	in := IngestStream[int](g, "in")
	outS := AddStream[int](g, "out")
	op := g.Operator("planner")
	out := Output(op, outS)
	var rounds int
	op.OnWatermark(func(ctx *Context) {
		_, rounds = Anytime(ctx, out, func(round int) (int, bool) {
			time.Sleep(10 * time.Millisecond)
			return round, true // would refine forever
		})
	})
	Input(op, in, nil)
	op.TimestampDeadline("plan", Static(35*time.Millisecond), Continue, nil)
	op.Build()
	rt, err := g.RunLocal()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	w, _ := Writer(rt, in)
	_ = w.SendWatermark(T(1))
	rt.Quiesce()
	if rounds < 1 || rounds > 8 {
		t.Fatalf("rounds = %d, want a handful before the 35ms deadline", rounds)
	}
}
