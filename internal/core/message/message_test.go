package message

import (
	"testing"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

func TestConstructors(t *testing.T) {
	d := Data(timestamp.New(3), "payload")
	if !d.IsData() || d.IsWatermark() || d.IsTop() {
		t.Fatalf("Data kind wrong: %+v", d)
	}
	if d.Payload.(string) != "payload" || d.Timestamp.L != 3 {
		t.Fatalf("Data contents wrong: %+v", d)
	}
	w := Watermark(timestamp.New(5))
	if !w.IsWatermark() || w.IsData() || w.Payload != nil {
		t.Fatalf("Watermark wrong: %+v", w)
	}
	top := Top()
	if !top.IsTop() || !top.IsWatermark() {
		t.Fatalf("Top wrong: %+v", top)
	}
	if Watermark(timestamp.New(1)).IsTop() {
		t.Fatal("ordinary watermark reported as Top")
	}
}

func TestKindString(t *testing.T) {
	if KindData.String() != "data" || KindWatermark.String() != "watermark" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}

func TestMessageString(t *testing.T) {
	if s := Data(timestamp.New(2), 7).String(); s != "MT[2](int)" {
		t.Fatalf("String = %q", s)
	}
	if s := Watermark(timestamp.New(2)).String(); s != "WT[2]" {
		t.Fatalf("String = %q", s)
	}
}
