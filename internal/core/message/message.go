// Package message defines the two kinds of messages that flow along ERDOS
// streams (§4.2 of the paper):
//
//   - DataMessage Mt: a payload of the stream's type annotated with a
//     timestamp t.
//   - WatermarkMessage Wt: a timestamp t conveying that all messages with
//     t' <= t have been sent on the stream, which unlocks computation that
//     requires synchronized, complete input.
//
// The runtime is untyped internally (payloads travel as `any`); the typed
// stream API in package stream restores compile-time type checking at the
// operator boundary.
package message

import (
	"fmt"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// Kind discriminates data messages from watermark messages.
type Kind uint8

const (
	// KindData identifies a DataMessage (Mt).
	KindData Kind = iota
	// KindWatermark identifies a WatermarkMessage (Wt).
	KindWatermark
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindWatermark:
		return "watermark"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Message is a single unit of communication on a stream: either a data
// message carrying a payload or a watermark. Messages are immutable once
// sent; intra-worker communication passes them by reference (zero copy).
type Message struct {
	Kind      Kind
	Timestamp timestamp.Timestamp
	// Payload is nil for watermark messages. For data messages it holds a
	// value of the stream's element type.
	Payload any
}

// Data returns a data message Mt with payload p and timestamp t.
func Data(t timestamp.Timestamp, p any) Message {
	return Message{Kind: KindData, Timestamp: t, Payload: p}
}

// Watermark returns a watermark message Wt for timestamp t.
func Watermark(t timestamp.Timestamp) Message {
	return Message{Kind: KindWatermark, Timestamp: t}
}

// Top returns the final watermark, closing the stream.
func Top() Message { return Watermark(timestamp.Top()) }

// IsData reports whether m is a data message.
func (m Message) IsData() bool { return m.Kind == KindData }

// IsWatermark reports whether m is a watermark message.
func (m Message) IsWatermark() bool { return m.Kind == KindWatermark }

// IsTop reports whether m is the final watermark.
func (m Message) IsTop() bool {
	return m.Kind == KindWatermark && m.Timestamp.IsTop()
}

// String renders the message for diagnostics.
func (m Message) String() string {
	if m.IsWatermark() {
		return fmt.Sprintf("W%v", m.Timestamp)
	}
	return fmt.Sprintf("M%v(%T)", m.Timestamp, m.Payload)
}
