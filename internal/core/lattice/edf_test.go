package lattice

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShortDeadlineOvertakesSlackRichBacklog is the priority-inversion
// regression guard for EDF dispatch: with the pool saturated and a backlog
// of slack-rich "perception" callbacks queued ahead of it, a short-deadline
// "control" callback must be dispatched first. Pre-EDF the run queues were
// FIFO-by-priority on logical time only, so the control callback would wait
// out the entire backlog.
func TestShortDeadlineOvertakesSlackRichBacklog(t *testing.T) {
	l := New(1)
	defer l.Stop()

	// Pin the single pool goroutine so every later submission piles up in
	// the shard run queue instead of dispatching immediately.
	gate := make(chan struct{})
	var blocked atomic.Bool
	blocker := l.NewOpQueue(ModeSequential)
	l.Submit(blocker, KindMessage, ts(1), func() {
		blocked.Store(true)
		<-gate
	})
	for !blocked.Load() {
		runtime.Gosched()
	}

	var mu sync.Mutex
	var order []string
	record := func(name string) func() {
		return func() {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
	}

	// Slack-rich perception backlog: early logical times, distant deadlines.
	// Deadlines are opaque virtual instants; only their order matters.
	const backlog = 16
	for i := 0; i < backlog; i++ {
		q := l.NewOpQueue(ModeSequential)
		l.SubmitDeadline(q, KindMessage, ts(uint64(i+1)), 1_000_000, record("perception"))
	}
	// A no-deadline callback must order after every deadline-bearing one.
	l.Submit(l.NewOpQueue(ModeSequential), KindMessage, ts(1), record("logging"))
	// The urgent control callback arrives last, at a *later* logical time —
	// exactly the shape FIFO/timestamp order would bury at the back.
	control := l.NewOpQueue(ModeSequential)
	l.SubmitDeadline(control, KindMessage, ts(backlog+10), 1_000, record("control"))

	close(gate)
	l.Quiesce()

	if len(order) != backlog+2 {
		t.Fatalf("ran %d callbacks, want %d", len(order), backlog+2)
	}
	if order[0] != "control" {
		t.Fatalf("short-deadline control callback dispatched at position %v, want first (order %v)", indexOf(order, "control"), order)
	}
	if order[len(order)-1] != "logging" {
		t.Fatalf("no-deadline callback dispatched at position %d, want last (order %v)", indexOf(order, "logging"), order)
	}
}

func indexOf(ss []string, want string) int {
	for i, s := range ss {
		if s == want {
			return i
		}
	}
	return -1
}

// TestStealTakesMostUrgentVictim drives the lock-free victim scan directly:
// with work parked on two foreign shards, a thief must take the head with
// the earlier absolute deadline even when the other victim comes first in
// the steal order.
func TestStealTakesMostUrgentVictim(t *testing.T) {
	// A bare lattice with no pool goroutines: pushShard/steal are driven by
	// hand so the scan's choice is deterministic.
	l2 := &Lattice{shards: []*shard{{}, {}, {}}}
	for _, s := range l2.shards {
		s.headDl.Store(shardEmpty)
	}
	mk := func(dl int64, seq uint64) *Item {
		return &Item{dl: dl, seq: seq, idx: -1, runIdx: -1}
	}
	l2.pushShard(1, mk(5_000, 1))
	l2.pushShard(2, mk(1_000, 2))
	l2.pushShard(2, mk(9_000, 3))

	it := l2.steal([]int{1, 2})
	if it == nil || it.dl != 1_000 {
		t.Fatalf("steal took deadline %v, want the most urgent (1000)", it)
	}
	// Ties (and victims left with only later deadlines) fall back to steal
	// order: shard 1's 5000 head beats shard 2's 9000 head.
	it = l2.steal([]int{1, 2})
	if it == nil || it.dl != 5_000 {
		t.Fatalf("steal took deadline %v, want 5000", it)
	}
	it = l2.steal([]int{1, 2})
	if it == nil || it.dl != 9_000 {
		t.Fatalf("steal took deadline %v, want 9000", it)
	}
	if it = l2.steal([]int{1, 2}); it != nil {
		t.Fatalf("steal on dry shards returned %v, want nil", it)
	}
}
