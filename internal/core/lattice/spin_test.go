package lattice

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

func TestNewOpQueuePinnedSharesHomeShard(t *testing.T) {
	l := New(4)
	defer l.Stop()
	a := l.NewOpQueuePinned(ModeSequential, 3)
	b := l.NewOpQueuePinned(ModeSequential, 3)
	c := l.NewOpQueuePinned(ModeSequential, 7) // 7 % 4 == 3 as well
	if a.home != b.home || a.home != c.home {
		t.Fatalf("homes differ: %d %d %d", a.home, b.home, c.home)
	}
	d := l.NewOpQueuePinned(ModeSequential, 2)
	if d.home == a.home {
		t.Fatalf("distinct keys mapped to same shard: %d", d.home)
	}
	// Negative keys must not panic and must stay in range.
	e := l.NewOpQueuePinned(ModeSequential, -1)
	if e.home < 0 || e.home >= 4 {
		t.Fatalf("negative key home out of range: %d", e.home)
	}
}

func TestPinnedQueuesStillExecute(t *testing.T) {
	l := New(2)
	defer l.Stop()
	q := l.NewOpQueuePinned(ModeSequential, 5)
	var ran atomic.Int32
	for i := 0; i < 100; i++ {
		l.Submit(q, KindMessage, ts(uint64(i+1)), func() { ran.Add(1) })
	}
	l.Quiesce()
	if ran.Load() != 100 {
		t.Fatalf("ran %d of 100", ran.Load())
	}
}

// TestSequentialPingPongLatency is the regression guard for the PR 1
// single-item ping-pong slowdown: a lone in-flight item bouncing between
// the submitting goroutine and the pool must complete in well under a
// park/unpark round trip thanks to the pre-park spin. The bound is loose
// (200µs mean on a box where the spin path runs in under 1µs) so the test
// stays robust on loaded CI machines while still catching a return to
// futex-per-item behavior (tens of µs) with two orders of magnitude of
// headroom over the regression it guards.
func TestSequentialPingPongLatency(t *testing.T) {
	l := New(4)
	defer l.Stop()
	q := l.NewOpQueue(ModeSequential)
	var seq atomic.Uint64

	const rounds = 5000
	start := time.Now()
	for i := 0; i < rounds; i++ {
		want := uint64(i + 1)
		l.Submit(q, KindMessage, ts(want), func() { seq.Store(want) })
		for seq.Load() != want {
			runtime.Gosched()
		}
	}
	mean := time.Since(start) / rounds
	if mean > 200*time.Microsecond {
		t.Fatalf("sequential ping-pong mean latency %v, want < 200µs", mean)
	}
}

// BenchmarkLatticePingPong measures single-item submit→execute latency with
// one in-flight callback — the workload the pre-park spin exists for.
func BenchmarkLatticePingPong(b *testing.B) {
	l := New(4)
	defer l.Stop()
	q := l.NewOpQueue(ModeSequential)
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		want := uint64(i + 1)
		l.Submit(q, KindMessage, timestamp.New(want), func() { seq.Store(want) })
		for seq.Load() != want {
			runtime.Gosched()
		}
	}
}
