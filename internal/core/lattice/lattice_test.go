package lattice

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

func ts(l uint64, c ...uint64) timestamp.Timestamp { return timestamp.New(l, c...) }

func TestWatermarkCallbacksRunInTimestampOrder(t *testing.T) {
	l := New(4)
	defer l.Stop()
	q := l.NewOpQueue(ModeSequential)
	var mu sync.Mutex
	var order []uint64
	for i := 0; i < 50; i++ {
		i := uint64(i)
		l.Submit(q, KindWatermark, ts(i), func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	l.Quiesce()
	if len(order) != 50 {
		t.Fatalf("ran %d callbacks, want 50", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("watermark callbacks out of order: %v", order)
		}
	}
}

func TestSequentialModeNeverOverlaps(t *testing.T) {
	l := New(8)
	defer l.Stop()
	q := l.NewOpQueue(ModeSequential)
	var running, maxRunning atomic.Int32
	for i := 0; i < 100; i++ {
		kind := KindMessage
		if i%3 == 0 {
			kind = KindWatermark
		}
		l.Submit(q, kind, ts(uint64(i)), func() {
			n := running.Add(1)
			for {
				old := maxRunning.Load()
				if n <= old || maxRunning.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(50 * time.Microsecond)
			running.Add(-1)
		})
	}
	l.Quiesce()
	if maxRunning.Load() != 1 {
		t.Fatalf("sequential operator overlapped: max concurrency %d", maxRunning.Load())
	}
}

func TestParallelMessagesOverlap(t *testing.T) {
	l := New(8)
	defer l.Stop()
	q := l.NewOpQueue(ModeParallelMessages)
	var running, maxRunning atomic.Int32
	var wg sync.WaitGroup
	wg.Add(16)
	for i := 0; i < 16; i++ {
		l.Submit(q, KindMessage, ts(uint64(i)), func() {
			defer wg.Done()
			n := running.Add(1)
			for {
				old := maxRunning.Load()
				if n <= old || maxRunning.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			running.Add(-1)
		})
	}
	wg.Wait()
	l.Quiesce()
	if maxRunning.Load() < 2 {
		t.Fatalf("parallel-messages operator never overlapped (max %d)", maxRunning.Load())
	}
}

func TestWatermarkWaitsForEarlierMessages(t *testing.T) {
	l := New(8)
	defer l.Stop()
	q := l.NewOpQueue(ModeParallelMessages)
	var msgDone atomic.Bool
	var wmSawMsgDone atomic.Bool
	l.Submit(q, KindMessage, ts(5), func() {
		time.Sleep(5 * time.Millisecond)
		msgDone.Store(true)
	})
	l.Submit(q, KindWatermark, ts(5), func() {
		wmSawMsgDone.Store(msgDone.Load())
	})
	l.Quiesce()
	if !wmSawMsgDone.Load() {
		t.Fatal("watermark callback ran before an earlier-or-equal message callback completed")
	}
}

func TestLaterMessagesMayOvertakeWatermarkOfEarlierTime(t *testing.T) {
	// A message callback for t=10 must not be blocked behind a slow
	// watermark callback queue for t<=5 forever; it simply needs no
	// ordering guarantee. We only assert that everything completes.
	l := New(4)
	defer l.Stop()
	q := l.NewOpQueue(ModeParallelMessages)
	var count atomic.Int32
	l.Submit(q, KindWatermark, ts(5), func() {
		time.Sleep(time.Millisecond)
		count.Add(1)
	})
	l.Submit(q, KindMessage, ts(10), func() { count.Add(1) })
	l.Quiesce()
	if count.Load() != 2 {
		t.Fatalf("completed %d callbacks, want 2", count.Load())
	}
}

func TestCrossOperatorParallelism(t *testing.T) {
	l := New(8)
	defer l.Stop()
	var running, maxRunning atomic.Int32
	var wg sync.WaitGroup
	for op := 0; op < 8; op++ {
		q := l.NewOpQueue(ModeSequential)
		wg.Add(1)
		l.Submit(q, KindWatermark, ts(0), func() {
			defer wg.Done()
			n := running.Add(1)
			for {
				old := maxRunning.Load()
				if n <= old || maxRunning.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(3 * time.Millisecond)
			running.Add(-1)
		})
	}
	wg.Wait()
	l.Quiesce()
	if maxRunning.Load() < 2 {
		t.Fatalf("operators did not run in parallel (max %d)", maxRunning.Load())
	}
}

func TestAccuracyCoordinatePriority(t *testing.T) {
	// Among ready message callbacks of the same logical time, the lattice
	// prefers higher ĉ (§5.3). Use a single worker held by a gate so the
	// items below — each on its own operator so all are dispatchable — sit
	// in the ready heap together before any runs.
	l := New(1)
	defer l.Stop()
	gate := l.NewOpQueue(ModeSequential)
	release := make(chan struct{})
	l.Submit(gate, KindMessage, ts(0), func() { <-release })
	var mu sync.Mutex
	var order []uint64
	for _, c := range []uint64{1, 3, 2} {
		c := c
		l.Submit(l.NewOpQueue(ModeSequential), KindMessage, ts(7, c), func() {
			mu.Lock()
			order = append(order, c)
			mu.Unlock()
		})
	}
	close(release)
	l.Quiesce()
	want := []uint64{3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("accuracy priority order = %v, want %v", order, want)
		}
	}
}

func TestQuiesceOnEmptyLattice(t *testing.T) {
	l := New(2)
	defer l.Stop()
	done := make(chan struct{})
	go func() { l.Quiesce(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Quiesce on an empty lattice blocked")
	}
}

func TestStopDropsPendingAndReturns(t *testing.T) {
	l := New(1)
	q := l.NewOpQueue(ModeSequential)
	started := make(chan struct{})
	block := make(chan struct{})
	l.Submit(q, KindMessage, ts(0), func() { close(started); <-block })
	for i := 0; i < 10; i++ {
		l.Submit(q, KindMessage, ts(uint64(i+1)), func() {})
	}
	<-started
	done := make(chan struct{})
	go func() { l.Stop(); close(done) }()
	close(block)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not return")
	}
}

func TestSubmitAfterStopIsNoop(t *testing.T) {
	l := New(1)
	l.Stop()
	q := l.NewOpQueue(ModeSequential)
	l.Submit(q, KindMessage, ts(0), func() { t.Error("callback ran after Stop") })
	time.Sleep(10 * time.Millisecond)
}

// Regression for the Stop/Quiesce deadlock: Stop used to subtract only the
// globally-ready items from pending, leaving callbacks still blocked in
// per-operator pending heaps counted forever, so a concurrent Quiesce never
// woke. Stop must drain the operator heaps and wake idle waiters.
func TestStopWakesConcurrentQuiesce(t *testing.T) {
	l := New(1)
	q := l.NewOpQueue(ModeSequential)
	started := make(chan struct{})
	block := make(chan struct{})
	l.Submit(q, KindMessage, ts(0), func() { close(started); <-block })
	// These stay in the op's pending heap: the running callback blocks
	// promotion in ModeSequential, so none of them reach a run queue.
	for i := 0; i < 10; i++ {
		l.Submit(q, KindMessage, ts(uint64(i+1)), func() {})
	}
	<-started
	quiesced := make(chan struct{})
	go func() { l.Quiesce(); close(quiesced) }()
	stopped := make(chan struct{})
	go func() { l.Stop(); close(stopped) }()
	close(block)
	select {
	case <-stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop did not return")
	}
	select {
	case <-quiesced:
	case <-time.After(2 * time.Second):
		t.Fatal("Quiesce hung across Stop: dropped pending-heap items still counted")
	}
}

// Stress test for ModeParallelMessages under -race: many operators receive
// concurrent message submissions and monotone watermarks from independent
// producers. Whenever a watermark callback for t runs, every already-enqueued
// message callback with ts <= t must have completed and none may be running.
func TestParallelMessagesWatermarkBarrierStress(t *testing.T) {
	const (
		numOps  = 16
		maxL    = 40
		msgsPer = 120
	)
	l := New(8)
	defer l.Stop()

	type opState struct {
		q         *OpQueue
		submitted [maxL + 1]atomic.Int64 // messages enqueued at each logical time
		done      [maxL + 1]atomic.Int64 // message callbacks completed
		running   [maxL + 1]atomic.Int64 // message callbacks currently executing
		wmActive  atomic.Int32           // watermark callbacks in flight (must be <= 1)
		violation atomic.Pointer[string]
	}
	fail := func(s *opState, msg string) {
		s.violation.CompareAndSwap(nil, &msg)
	}
	ops := make([]*opState, numOps)
	for i := range ops {
		ops[i] = &opState{q: l.NewOpQueue(ModeParallelMessages)}
	}

	var wg sync.WaitGroup
	for i, s := range ops {
		s := s
		seed := int64(i + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			wm := uint64(0) // high watermark submitted so far; only grows
			for n := 0; n < msgsPer; n++ {
				if wm < maxL {
					// Messages go strictly above the submitted watermark, so
					// every message with ts <= a watermark's timestamp was
					// enqueued before that watermark (single submitter).
					lt := wm + 1 + uint64(r.Intn(int(maxL-wm)))
					s.submitted[lt].Add(1)
					l.Submit(s.q, KindMessage, ts(lt), func() {
						s.running[lt].Add(1)
						s.done[lt].Add(1) // before running drops; barrier check reads running first
						s.running[lt].Add(-1)
					})
				}
				if r.Intn(4) == 0 && wm < maxL {
					wm += uint64(1 + r.Intn(3))
					if wm > maxL {
						wm = maxL
					}
					wmv := wm
					l.Submit(s.q, KindWatermark, ts(wmv), func() {
						if s.wmActive.Add(1) != 1 {
							fail(s, "watermark callbacks overlapped")
						}
						for t := uint64(0); t <= wmv; t++ {
							if s.running[t].Load() != 0 {
								fail(s, "message callback with ts <= watermark still running")
							}
							if s.submitted[t].Load() != s.done[t].Load() {
								fail(s, "enqueued message with ts <= watermark not completed")
							}
						}
						s.wmActive.Add(-1)
					})
				}
			}
		}()
	}
	wg.Wait()
	l.Quiesce()
	for i, s := range ops {
		if p := s.violation.Load(); p != nil {
			t.Fatalf("op %d: %s", i, *p)
		}
		for t2 := uint64(0); t2 <= maxL; t2++ {
			if s.submitted[t2].Load() != s.done[t2].Load() {
				t.Fatalf("op %d: %d messages at t=%d never ran", i,
					s.submitted[t2].Load()-s.done[t2].Load(), t2)
			}
		}
	}
}

// Property: under random submission of messages and watermarks across many
// operators, per-operator watermark order is always monotone and every
// callback runs exactly once.
func TestQuickRandomTrafficInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		l := New(1 + r.Intn(8))
		type opState struct {
			q      *OpQueue
			nextWM uint64 // watermarks are submitted monotonically, as real streams produce them
			mu     sync.Mutex
			wm     []uint64
		}
		ops := make([]*opState, 5)
		for i := range ops {
			mode := ModeSequential
			if r.Intn(2) == 0 {
				mode = ModeParallelMessages
			}
			ops[i] = &opState{q: l.NewOpQueue(mode)}
		}
		var ran atomic.Int32
		n := 200
		for i := 0; i < n; i++ {
			op := ops[r.Intn(len(ops))]
			tsv := uint64(r.Intn(20))
			if r.Intn(3) == 0 {
				op.nextWM += uint64(r.Intn(3))
				tsv = op.nextWM
				l.Submit(op.q, KindWatermark, ts(tsv), func() {
					op.mu.Lock()
					op.wm = append(op.wm, tsv)
					op.mu.Unlock()
					ran.Add(1)
				})
			} else {
				l.Submit(op.q, KindMessage, ts(tsv), func() { ran.Add(1) })
			}
		}
		l.Quiesce()
		if int(ran.Load()) != n {
			t.Fatalf("trial %d: ran %d, want %d", trial, ran.Load(), n)
		}
		for i, op := range ops {
			for j := 1; j < len(op.wm); j++ {
				if op.wm[j] < op.wm[j-1] {
					t.Fatalf("trial %d op %d: watermark order regressed: %v", trial, i, op.wm)
				}
			}
		}
		l.Stop()
	}
}
