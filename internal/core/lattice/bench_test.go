package lattice

import (
	"sync/atomic"
	"testing"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// BenchmarkSubmitExecute measures the lattice's per-callback scheduling
// overhead (submit -> dispatch -> run -> complete) for a no-op callback.
func BenchmarkSubmitExecute(b *testing.B) {
	l := New(4)
	defer l.Stop()
	q := l.NewOpQueue(ModeSequential)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Submit(q, KindMessage, timestamp.New(uint64(i)), func() {})
	}
	l.Quiesce()
}

// BenchmarkLatticeThroughput measures end-to-end scheduling throughput for a
// single producer fanning no-op message callbacks across 16 parallel
// operators — the steady-state shape of a sensor pipeline's hot path.
func BenchmarkLatticeThroughput(b *testing.B) {
	l := New(4)
	defer l.Stop()
	const numOps = 16
	qs := make([]*OpQueue, numOps)
	for i := range qs {
		qs[i] = l.NewOpQueue(ModeParallelMessages)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Submit(qs[i%numOps], KindMessage, timestamp.New(uint64(i)), func() {})
	}
	l.Quiesce()
}

// BenchmarkLatticeContention measures the dispatcher under N concurrent
// producers × M operators, the §7.2 scaling scenario: every Submit and every
// completion contends on the scheduler's synchronization.
func BenchmarkLatticeContention(b *testing.B) {
	l := New(8)
	defer l.Stop()
	const numOps = 32
	qs := make([]*OpQueue, numOps)
	for i := range qs {
		qs[i] = l.NewOpQueue(ModeParallelMessages)
	}
	var next atomic.Uint64
	b.ReportAllocs()
	b.SetParallelism(4) // 4×GOMAXPROCS producer goroutines
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			l.Submit(qs[i%numOps], KindMessage, timestamp.New(i), func() {})
		}
	})
	l.Quiesce()
}
