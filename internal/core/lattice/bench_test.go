package lattice

import (
	"testing"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// BenchmarkSubmitExecute measures the lattice's per-callback scheduling
// overhead (submit -> dispatch -> run -> complete) for a no-op callback.
func BenchmarkSubmitExecute(b *testing.B) {
	l := New(4)
	defer l.Stop()
	q := l.NewOpQueue(ModeSequential)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Submit(q, KindMessage, timestamp.New(uint64(i)), func() {})
	}
	l.Quiesce()
}
