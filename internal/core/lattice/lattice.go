// Package lattice implements the execution lattice of §6.2: a dependency
// graph of bound callbacks that serves as the run queue for a worker's
// multi-threaded runtime.
//
// The lattice guarantees, per operator:
//
//   - watermark callbacks execute sequentially in timestamp order;
//   - a watermark callback for t executes only after every already-enqueued
//     message callback with timestamp <= t of the same operator completes;
//   - message callbacks may execute out of order — concurrently when the
//     operator opts into ModeParallelMessages, otherwise serialized with
//     every other callback of the operator (lock-free state access).
//
// Across operators the lattice is fully parallel. Ready callbacks are
// dispatched to a fixed pool of goroutines in EDF order: each callback
// carries the absolute deadline Di of its operator's current timestamp (pDP
// allocations plumbed down by the worker), shard run queues are min-heaps
// keyed on that deadline, and within a deadline the lattice prioritizes
// lower logical times first and, within a logical time, higher accuracy
// coordinates ĉ first, implementing §5.3's preference for higher-accuracy
// intermediate results. Callbacks without a deadline (NoDeadline) order
// after every deadline-bearing callback, in submission order. Deadlines are
// opaque virtual instants (int64 nanoseconds on whatever clock the caller
// uses); the lattice itself never reads a clock, so deterministic virtual
// time drives it exactly like the wall clock.
//
// Scalability: there is no global run-queue lock. Each operator guards its
// own pending heap and running set, dispatchable callbacks are pushed onto
// the submitting operator's home shard — one priority queue per pool
// goroutine — and idle goroutines steal the most-urgent head among the
// other shards (ties broken by the affinity-aware victim order, so a
// co-located chain rebalances onto warm caches first). Producers wake at
// most one parked goroutine per promoted callback (Signal, never a
// thundering-herd Broadcast), Items are recycled through a sync.Pool, and an
// operator's running message callbacks are tracked in an indexed min-heap so
// the watermark-barrier check is O(1) and completion is O(log n).
package lattice

import (
	"container/heap"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// NoDeadline marks a callback with no deadline pressure: it orders after
// every deadline-bearing callback. Deadlines are absolute instants in
// nanoseconds on an arbitrary (wall or virtual) clock epoch.
const NoDeadline int64 = math.MaxInt64

// maxDeadline is the largest storable deadline; shardEmpty is reserved to
// publish "no head" on an empty shard's headDl.
const (
	maxDeadline int64 = math.MaxInt64 - 1
	shardEmpty  int64 = math.MaxInt64
)

// Kind classifies a bound callback.
type Kind uint8

const (
	// KindMessage is an out-of-order data-message callback.
	KindMessage Kind = iota
	// KindWatermark is a timestamp-ordered watermark callback.
	KindWatermark
)

// Mode selects an operator's intra-operator parallelism.
type Mode uint8

const (
	// ModeSequential serializes all of the operator's callbacks; this is
	// the default and provides lock-free access to operator state.
	ModeSequential Mode = iota
	// ModeParallelMessages lets message callbacks run concurrently with
	// one another; watermark callbacks remain timestamp-ordered barriers.
	ModeParallelMessages
)

// Item is one bound callback.
type Item struct {
	op     *OpQueue
	ts     timestamp.Timestamp
	kind   Kind
	run    func()
	seq    uint64
	dl     int64 // absolute deadline (ns); NoDeadline when unconstrained
	idx    int   // heap index within a pending/shard heap, -1 when dispatched
	runIdx int   // heap index within the op's running heap, -1 when not running
}

// shard is one pool goroutine's local run queue. Shards are individually
// heap-allocated so their hot mutexes do not share a cache line.
type shard struct {
	mu sync.Mutex
	q  shardHeap
	// headDl publishes the deadline at the heap's root (shardEmpty when the
	// shard is dry) so thieves can pick the most-urgent victim without
	// taking every shard lock.
	headDl atomic.Int64
}

// publishHead refreshes the shard's advertised head deadline. Caller holds
// s.mu.
func (s *shard) publishHead() {
	if len(s.q) == 0 {
		s.headDl.Store(shardEmpty)
		return
	}
	s.headDl.Store(s.q[0].dl)
}

// Lattice is the worker-wide run queue.
type Lattice struct {
	shards []*shard

	// parked counts goroutines blocked on parkCond; producers check it
	// without the lock so an all-busy pool never pays for a wakeup.
	parkMu   sync.Mutex
	parkCond *sync.Cond
	parked   atomic.Int32
	// spinning counts goroutines in the pre-park polling loop; producers
	// subtract them from the wakeups they issue, since each spinner will
	// absorb one promoted callback without a futex.
	spinning atomic.Int32

	// ready counts callbacks sitting in shard queues; pending counts
	// callbacks submitted but not yet completed (queued, promoted or
	// in-flight).
	ready   atomic.Int64
	pending atomic.Int64

	idleMu   sync.Mutex
	idleCond *sync.Cond

	stopped  atomic.Bool
	seq      atomic.Uint64
	nextHome atomic.Uint32

	opsMu sync.Mutex
	ops   []*OpQueue

	// stealOrder is a per-shard victim ordering rebuilt whenever a pinned
	// operator registers: shards sharing an affinity group with the thief
	// come first, so a co-located chain rebalances onto goroutines whose
	// caches already hold its state before spilling to foreign shards. Nil
	// until the first pinned registration (plain round-robin applies).
	stealOrder  atomic.Pointer[[][]int]
	affinityMu  sync.Mutex
	shardGroups []map[int]struct{} // affinity keys homed on each shard

	itemPool sync.Pool
	wg       sync.WaitGroup
}

// New returns a lattice executing callbacks on `workers` goroutines.
func New(workers int) *Lattice {
	if workers < 1 {
		workers = 1
	}
	l := &Lattice{shards: make([]*shard, workers)}
	l.parkCond = sync.NewCond(&l.parkMu)
	l.idleCond = sync.NewCond(&l.idleMu)
	l.itemPool.New = func() any { return &Item{idx: -1, runIdx: -1} }
	for i := range l.shards {
		l.shards[i] = &shard{}
		l.shards[i].headDl.Store(shardEmpty)
	}
	l.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go l.worker(i)
	}
	return l
}

// NewOpQueue registers a new operator with the given parallelism mode. Its
// home shard is assigned round-robin.
func (l *Lattice) NewOpQueue(mode Mode) *OpQueue {
	return l.newOpQueue(mode, int(l.nextHome.Add(1)-1)%len(l.shards))
}

// NewOpQueuePinned registers an operator whose home shard is derived from
// an affinity key: every operator registered with the same key lands on the
// same shard, keeping a producer→consumer chain's callbacks on one
// goroutine's queue (work stealing may still rebalance under load). Keys
// are arbitrary; callers typically pass a graph affinity-group index.
// Registration also records the key against the home shard so idle
// goroutines steal same-group work first.
func (l *Lattice) NewOpQueuePinned(mode Mode, affinity int) *OpQueue {
	home := affinity % len(l.shards)
	if home < 0 {
		home += len(l.shards)
	}
	l.noteAffinity(home, affinity)
	return l.newOpQueue(mode, home)
}

// noteAffinity records that shard home hosts operators of the given
// affinity group and rebuilds the steal order snapshot.
func (l *Lattice) noteAffinity(home, affinity int) {
	l.affinityMu.Lock()
	defer l.affinityMu.Unlock()
	if l.shardGroups == nil {
		l.shardGroups = make([]map[int]struct{}, len(l.shards))
	}
	if l.shardGroups[home] == nil {
		l.shardGroups[home] = map[int]struct{}{}
	}
	l.shardGroups[home][affinity] = struct{}{}
	order := make([][]int, len(l.shards))
	for i := range l.shards {
		var same, other []int
		for off := 1; off < len(l.shards); off++ {
			j := (i + off) % len(l.shards)
			if sharesGroup(l.shardGroups[i], l.shardGroups[j]) {
				same = append(same, j)
			} else {
				other = append(other, j)
			}
		}
		order[i] = append(same, other...)
	}
	l.stealOrder.Store(&order)
}

func sharesGroup(a, b map[int]struct{}) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for k := range a {
		if _, ok := b[k]; ok {
			return true
		}
	}
	return false
}

// StealOrder returns the victim ordering shard id uses when it runs dry,
// or nil while no pinned operator has registered (plain round-robin).
// Exposed for tests and diagnostics.
func (l *Lattice) StealOrder(id int) []int {
	ord := l.stealOrder.Load()
	if ord == nil || id < 0 || id >= len(*ord) {
		return nil
	}
	return append([]int(nil), (*ord)[id]...)
}

func (l *Lattice) newOpQueue(mode Mode, home int) *OpQueue {
	q := &OpQueue{lat: l, mode: mode, home: home}
	l.opsMu.Lock()
	l.ops = append(l.ops, q)
	l.opsMu.Unlock()
	return q
}

// Submit enqueues a bound callback for op at timestamp ts with no deadline
// pressure (it orders after every deadline-bearing callback). Runtime code
// should prefer SubmitDeadline so EDF dispatch sees the operator's Di.
func (l *Lattice) Submit(op *OpQueue, kind Kind, ts timestamp.Timestamp, run func()) {
	l.SubmitDeadline(op, kind, ts, NoDeadline, run)
}

// SubmitDeadline enqueues a bound callback for op at timestamp ts whose
// operator must finish ts by the absolute instant deadline (nanoseconds on
// the caller's clock; pass NoDeadline when no deadline applies). Shard run
// queues dispatch earliest-deadline-first, so under saturation an urgent
// control callback overtakes slack-rich perception work instead of queueing
// behind it. Per-operator ordering guarantees are unaffected: the dispatch
// gate (canDispatchLocked) never lets two items that must be ordered coexist
// on shard heaps.
func (l *Lattice) SubmitDeadline(op *OpQueue, kind Kind, ts timestamp.Timestamp, deadline int64, run func()) {
	if l.stopped.Load() {
		return
	}
	if deadline > maxDeadline {
		deadline = maxDeadline
	}
	it := l.itemPool.Get().(*Item)
	it.op, it.ts, it.kind, it.run = op, ts, kind, run
	it.seq = l.seq.Add(1)
	it.dl = deadline
	it.idx, it.runIdx = -1, -1

	op.mu.Lock()
	if l.stopped.Load() {
		op.mu.Unlock()
		l.recycle(it)
		return
	}
	l.pending.Add(1)
	heap.Push(&op.pendingHeap, it)
	woke := l.promoteLocked(op)
	op.mu.Unlock()
	l.wake(woke)
}

// Quiesce blocks until every submitted callback has completed.
func (l *Lattice) Quiesce() {
	l.idleMu.Lock()
	for l.pending.Load() > 0 {
		l.idleCond.Wait()
	}
	l.idleMu.Unlock()
}

// Stop drains in-flight callbacks and shuts the worker pool down. Pending
// callbacks that were not yet dispatched are dropped — both the ones on
// shard run queues and the ones still blocked in per-operator pending heaps
// — and any concurrent Quiesce observes the drained count immediately.
func (l *Lattice) Stop() {
	l.stopped.Store(true)

	// Drop undispatched work from every operator's pending heap. Without
	// this, items blocked behind a running callback would stay counted in
	// pending forever and a concurrent Quiesce would never wake.
	l.opsMu.Lock()
	ops := append([]*OpQueue(nil), l.ops...)
	l.opsMu.Unlock()
	var dropped int64
	for _, op := range ops {
		op.mu.Lock()
		dropped += int64(len(op.pendingHeap))
		op.pendingHeap = nil
		op.mu.Unlock()
	}
	// Drop promoted-but-unclaimed work from the shard run queues.
	for _, s := range l.shards {
		s.mu.Lock()
		n := int64(len(s.q))
		s.q = nil
		s.publishHead()
		s.mu.Unlock()
		dropped += n
		l.ready.Add(-n)
	}
	l.pending.Add(-dropped)

	l.parkMu.Lock()
	l.parkCond.Broadcast()
	l.parkMu.Unlock()
	l.idleMu.Lock()
	l.idleCond.Broadcast()
	l.idleMu.Unlock()
	l.wg.Wait()
}

func (l *Lattice) worker(id int) {
	defer l.wg.Done()
	for {
		it := l.findWork(id)
		if it == nil {
			if l.stopped.Load() {
				return
			}
			if it = l.spin(id); it == nil {
				l.park()
				continue
			}
		}
		it.run()
		l.complete(it)
	}
}

// spinRounds bounds the pre-park polling loop. Each round yields the
// processor, so on a loaded box the spin degrades into a handful of
// scheduler passes rather than burned cycles.
const spinRounds = 64

// spin polls briefly for newly promoted work before parking. A lone item
// ping-ponging between a producer and the pool would otherwise pay a futex
// wake on every submission: the producer sees the worker parked and
// signals, the worker wakes, runs one callback, finds nothing, and parks
// again. At most one goroutine spins at a time — a second polling worker
// adds scheduler pressure without finding work any sooner — and producers
// subtract the spinner from the wakeups they issue, so the futex stays
// untouched while the spinner is on duty.
func (l *Lattice) spin(id int) *Item {
	if !l.spinning.CompareAndSwap(0, 1) {
		return nil
	}
	defer l.spinning.Add(-1)
	for i := 0; i < spinRounds; i++ {
		if l.stopped.Load() {
			return nil
		}
		if l.ready.Load() > 0 {
			if it := l.findWork(id); it != nil {
				return it
			}
		}
		runtime.Gosched()
	}
	return nil
}

// findWork pops the highest-priority callback from the goroutine's own
// shard, stealing from the other shards when it is empty. The thief scans
// the victims' published head deadlines and takes the most-urgent one; ties
// resolve to the earliest victim in the steal order, which lists
// same-affinity shards first once pinned operators have registered
// (round-robin before), so equally urgent work rebalances onto goroutines
// whose caches already hold its operators' state.
func (l *Lattice) findWork(id int) *Item {
	if it := l.popShard(id); it != nil {
		return it
	}
	if ord := l.stealOrder.Load(); ord != nil {
		return l.steal((*ord)[id])
	}
	n := len(l.shards)
	if n == 1 {
		return nil
	}
	victims := make([]int, 0, n-1)
	for off := 1; off < n; off++ {
		victims = append(victims, (id+off)%n)
	}
	return l.steal(victims)
}

// steal picks the victim advertising the earliest head deadline and pops
// it, rescanning when a race empties the chosen shard. The scan is
// lock-free (one atomic load per victim); only the final pop locks.
func (l *Lattice) steal(victims []int) *Item {
	for !l.stopped.Load() {
		best, bestDl := -1, shardEmpty
		for _, j := range victims {
			if dl := l.shards[j].headDl.Load(); dl < bestDl {
				best, bestDl = j, dl
			}
		}
		if best < 0 {
			return nil
		}
		if it := l.popShard(best); it != nil {
			return it
		}
	}
	return nil
}

func (l *Lattice) popShard(i int) *Item {
	s := l.shards[i]
	s.mu.Lock()
	if len(s.q) == 0 {
		// Re-publish emptiness defensively: a stale non-empty headDl would
		// make every thief rescan this shard forever.
		s.publishHead()
		s.mu.Unlock()
		return nil
	}
	it := heap.Pop(&s.q).(*Item)
	s.publishHead()
	s.mu.Unlock()
	l.ready.Add(-1)
	return it
}

// park blocks until new work is promoted or the lattice stops. The parked
// counter is published before the final emptiness check so a producer that
// promotes work concurrently either sees us parked (and signals under
// parkMu) or we see its ready increment (and skip the wait).
func (l *Lattice) park() {
	l.parkMu.Lock()
	l.parked.Add(1)
	for l.ready.Load() == 0 && !l.stopped.Load() {
		l.parkCond.Wait()
	}
	l.parked.Add(-1)
	l.parkMu.Unlock()
}

// wake signals up to n parked goroutines, one per promoted callback. An
// active spinner absorbs one callback without a futex, so it is deducted
// from n. The no-lost-wakeup argument: a spinner leaves the spinning count
// only before entering park, and park re-checks ready under parkMu, so a
// producer that skipped a signal on the spinner's account either has its
// item taken by the spinner or observed by the park re-check.
func (l *Lattice) wake(n int) {
	n -= int(l.spinning.Load())
	if n <= 0 || l.parked.Load() == 0 {
		return
	}
	l.parkMu.Lock()
	for i := 0; i < n; i++ {
		l.parkCond.Signal()
	}
	l.parkMu.Unlock()
}

// complete retires a finished callback: it clears the operator's running
// state, promotes newly dispatchable work, recycles the Item and wakes the
// idle waiters when the lattice drained.
func (l *Lattice) complete(it *Item) {
	op := it.op
	op.mu.Lock()
	op.completeLocked(it)
	woke := l.promoteLocked(op)
	op.mu.Unlock()
	l.recycle(it)
	if l.pending.Add(-1) == 0 {
		l.idleMu.Lock()
		l.idleCond.Broadcast()
		l.idleMu.Unlock()
	}
	l.wake(woke)
}

func (l *Lattice) recycle(it *Item) {
	*it = Item{idx: -1, runIdx: -1}
	l.itemPool.Put(it)
}

// promoteLocked moves every dispatchable item of op from its pending heap
// onto op's home shard, returning how many were promoted. Caller holds
// op.mu; the shard lock nests inside it (never the reverse).
func (l *Lattice) promoteLocked(op *OpQueue) int {
	if l.stopped.Load() {
		return 0
	}
	n := 0
	for len(op.pendingHeap) > 0 {
		head := op.pendingHeap[0]
		if !op.canDispatchLocked(head) {
			break
		}
		heap.Pop(&op.pendingHeap)
		op.noteDispatchLocked(head)
		// EDF on the shard heap cannot break an operator's ordering
		// guarantees: canDispatchLocked admits at most one item of a
		// sequential operator (and never a watermark concurrently with
		// anything), so only parallel message callbacks — which may legally
		// run out of order — ever coexist on shard heaps.
		l.pushShard(op.home, head)
		n++
	}
	return n
}

func (l *Lattice) pushShard(home int, it *Item) {
	s := l.shards[home]
	s.mu.Lock()
	if l.stopped.Load() {
		// Stop already drained this shard; drop the item like the rest of
		// the undispatched work (its operator never runs again).
		s.mu.Unlock()
		if l.pending.Add(-1) == 0 {
			l.idleMu.Lock()
			l.idleCond.Broadcast()
			l.idleMu.Unlock()
		}
		return
	}
	heap.Push(&s.q, it)
	s.publishHead()
	s.mu.Unlock()
	l.ready.Add(1)
}

// Depth reports the lattice's instantaneous queue depths: ready callbacks
// sitting in shard run queues and pending callbacks submitted but not yet
// completed. Heartbeats ship both as congestion signals for the leader's
// placement decisions.
func (l *Lattice) Depth() (ready, pending int64) {
	return l.ready.Load(), l.pending.Load()
}

// OpQueue tracks one operator's pending and running callbacks under its own
// lock; operators never contend with each other on submission or completion.
type OpQueue struct {
	lat  *Lattice
	mode Mode
	home int // preferred shard for this operator's callbacks

	mu          sync.Mutex
	pendingHeap itemHeap
	running     runningHeap // running message callbacks, min timestamp at root
	runningWM   bool
}

// canDispatchLocked reports whether it (the head of the pending heap) may
// run now. Caller holds q.mu.
func (q *OpQueue) canDispatchLocked(it *Item) bool {
	switch q.mode {
	case ModeSequential:
		return len(q.running) == 0 && !q.runningWM
	case ModeParallelMessages:
		if q.runningWM {
			return false // watermark callbacks are barriers
		}
		if it.kind == KindMessage {
			return true
		}
		// A watermark callback for t waits for running message callbacks
		// with timestamp <= t. Queued ones with ts <= t order before it in
		// the heap, so head position already implies they were dispatched;
		// the running heap's root is the minimum running timestamp.
		return len(q.running) == 0 || !q.running[0].ts.LessEq(it.ts)
	default:
		return false
	}
}

func (q *OpQueue) noteDispatchLocked(it *Item) {
	if it.kind == KindWatermark {
		q.runningWM = true
	} else {
		heap.Push(&q.running, it)
	}
}

func (q *OpQueue) completeLocked(it *Item) {
	if it.kind == KindWatermark {
		q.runningWM = false
		return
	}
	if it.runIdx >= 0 {
		heap.Remove(&q.running, it.runIdx)
	}
}

// less orders items: lower logical time first; within a logical time,
// watermark callbacks after message callbacks; higher accuracy coordinates
// first among data callbacks of the same logical time (§5.3); FIFO ties.
func less(a, b *Item) bool {
	if a.ts.L != b.ts.L {
		return a.ts.L < b.ts.L
	}
	if a.ts.IsTop() != b.ts.IsTop() {
		return !a.ts.IsTop()
	}
	if a.kind != b.kind {
		return a.kind == KindMessage // messages before the watermark barrier
	}
	if a.kind == KindMessage {
		// Prefer higher ĉ (more accurate input) first.
		c := a.ts.Cmp(b.ts)
		if c != 0 {
			return c > 0
		}
	} else if c := a.ts.Cmp(b.ts); c != 0 {
		return c < 0 // watermarks strictly in timestamp order
	}
	return a.seq < b.seq
}

// itemHeap is the per-operator pending heap: timestamp priority only, since
// everything in it belongs to one operator and shares its deadline pressure.
type itemHeap []*Item

func (h itemHeap) Len() int           { return len(h) }
func (h itemHeap) Less(i, j int) bool { return less(h[i], h[j]) }
func (h itemHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx, h[j].idx = i, j }
func (h *itemHeap) Push(x any)        { it := x.(*Item); it.idx = len(*h); *h = append(*h, it) }
func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.idx = -1
	*h = old[:n-1]
	return it
}

// shardHeap is a shard's run queue: earliest absolute deadline first (EDF),
// then the lattice's timestamp priority, then FIFO by submission sequence.
// It shares Item.idx with itemHeap — an item is only ever in one of the two.
type shardHeap []*Item

func (h shardHeap) Len() int { return len(h) }
func (h shardHeap) Less(i, j int) bool {
	if h[i].dl != h[j].dl {
		return h[i].dl < h[j].dl
	}
	return less(h[i], h[j])
}
func (h shardHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i]; h[i].idx, h[j].idx = i, j }
func (h *shardHeap) Push(x any)   { it := x.(*Item); it.idx = len(*h); *h = append(*h, it) }
func (h *shardHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.idx = -1
	*h = old[:n-1]
	return it
}

// runningHeap indexes an operator's in-flight message callbacks by
// timestamp: the root is the minimum running timestamp (O(1) watermark
// barrier check) and completion removes by stored index (O(log n)),
// replacing the former linear scan of a slice.
type runningHeap []*Item

func (h runningHeap) Len() int           { return len(h) }
func (h runningHeap) Less(i, j int) bool { return h[i].ts.Less(h[j].ts) }
func (h runningHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].runIdx, h[j].runIdx = i, j }
func (h *runningHeap) Push(x any)        { it := x.(*Item); it.runIdx = len(*h); *h = append(*h, it) }
func (h *runningHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.runIdx = -1
	*h = old[:n-1]
	return it
}
