// Package lattice implements the execution lattice of §6.2: a dependency
// graph of bound callbacks that serves as the run queue for a worker's
// multi-threaded runtime.
//
// The lattice guarantees, per operator:
//
//   - watermark callbacks execute sequentially in timestamp order;
//   - a watermark callback for t executes only after every already-enqueued
//     message callback with timestamp <= t of the same operator completes;
//   - message callbacks may execute out of order — concurrently when the
//     operator opts into ModeParallelMessages, otherwise serialized with
//     every other callback of the operator (lock-free state access).
//
// Across operators the lattice is fully parallel. Ready callbacks are
// dispatched to a fixed pool of goroutines; among ready callbacks the
// lattice prioritizes lower logical times first and, within a logical time,
// higher accuracy coordinates ĉ first, implementing §5.3's preference for
// higher-accuracy intermediate results.
package lattice

import (
	"container/heap"
	"sync"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// Kind classifies a bound callback.
type Kind uint8

const (
	// KindMessage is an out-of-order data-message callback.
	KindMessage Kind = iota
	// KindWatermark is a timestamp-ordered watermark callback.
	KindWatermark
)

// Mode selects an operator's intra-operator parallelism.
type Mode uint8

const (
	// ModeSequential serializes all of the operator's callbacks; this is
	// the default and provides lock-free access to operator state.
	ModeSequential Mode = iota
	// ModeParallelMessages lets message callbacks run concurrently with
	// one another; watermark callbacks remain timestamp-ordered barriers.
	ModeParallelMessages
)

// Item is one bound callback.
type Item struct {
	op   *OpQueue
	ts   timestamp.Timestamp
	kind Kind
	run  func()
	seq  uint64
	idx  int // heap index within the op's pending heap, -1 when dispatched
}

// Lattice is the worker-wide run queue.
type Lattice struct {
	mu       sync.Mutex
	cond     *sync.Cond
	ready    readyHeap
	stopped  bool
	inflight int
	pending  int
	idleCond *sync.Cond
	seq      uint64
	wg       sync.WaitGroup
}

// New returns a lattice executing callbacks on `workers` goroutines.
func New(workers int) *Lattice {
	if workers < 1 {
		workers = 1
	}
	l := &Lattice{}
	l.cond = sync.NewCond(&l.mu)
	l.idleCond = sync.NewCond(&l.mu)
	l.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go l.worker()
	}
	return l
}

// NewOpQueue registers a new operator with the given parallelism mode.
func (l *Lattice) NewOpQueue(mode Mode) *OpQueue {
	return &OpQueue{lat: l, mode: mode}
}

// Submit enqueues a bound callback for op at timestamp ts.
func (l *Lattice) Submit(op *OpQueue, kind Kind, ts timestamp.Timestamp, run func()) {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.seq++
	it := &Item{op: op, ts: ts, kind: kind, run: run, seq: l.seq, idx: -1}
	l.pending++
	heap.Push(&op.pendingHeap, it)
	l.promoteLocked(op)
	l.mu.Unlock()
}

// Quiesce blocks until every submitted callback has completed.
func (l *Lattice) Quiesce() {
	l.mu.Lock()
	for l.pending > 0 || l.inflight > 0 {
		l.idleCond.Wait()
	}
	l.mu.Unlock()
}

// Stop drains in-flight callbacks and shuts the worker pool down. Pending
// callbacks that were not yet dispatched are dropped.
func (l *Lattice) Stop() {
	l.mu.Lock()
	l.stopped = true
	l.pending -= len(l.ready)
	l.ready = l.ready[:0]
	l.cond.Broadcast()
	l.idleCond.Broadcast()
	l.mu.Unlock()
	l.wg.Wait()
}

func (l *Lattice) worker() {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		for len(l.ready) == 0 && !l.stopped {
			l.cond.Wait()
		}
		if l.stopped && len(l.ready) == 0 {
			l.mu.Unlock()
			return
		}
		it := heap.Pop(&l.ready).(*Item)
		l.inflight++
		l.mu.Unlock()

		it.run()

		l.mu.Lock()
		l.inflight--
		l.pending--
		it.op.completeLocked(it)
		l.promoteLocked(it.op)
		if l.pending == 0 && l.inflight == 0 {
			l.idleCond.Broadcast()
		}
		l.mu.Unlock()
	}
}

// promoteLocked moves every dispatchable item of op from its pending heap
// onto the global ready heap. Caller holds l.mu.
func (l *Lattice) promoteLocked(op *OpQueue) {
	if l.stopped {
		return
	}
	promoted := false
	for len(op.pendingHeap) > 0 {
		head := op.pendingHeap[0]
		if !op.canDispatchLocked(head) {
			break
		}
		heap.Pop(&op.pendingHeap)
		op.noteDispatchLocked(head)
		heap.Push(&l.ready, head)
		promoted = true
	}
	if promoted {
		l.cond.Broadcast()
	}
}

// OpQueue tracks one operator's pending and running callbacks.
type OpQueue struct {
	lat         *Lattice
	mode        Mode
	pendingHeap opHeap
	runningMsgs []timestamp.Timestamp
	runningWM   bool
}

// canDispatchLocked reports whether it (the head of the pending heap) may
// run now. Caller holds the lattice mutex.
func (q *OpQueue) canDispatchLocked(it *Item) bool {
	switch q.mode {
	case ModeSequential:
		return len(q.runningMsgs) == 0 && !q.runningWM
	case ModeParallelMessages:
		if q.runningWM {
			return false // watermark callbacks are barriers
		}
		if it.kind == KindMessage {
			return true
		}
		// A watermark callback for t waits for running message callbacks
		// with timestamp <= t. Queued ones with ts <= t order before it in
		// the heap, so head position already implies they were dispatched.
		for _, ts := range q.runningMsgs {
			if ts.LessEq(it.ts) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func (q *OpQueue) noteDispatchLocked(it *Item) {
	if it.kind == KindWatermark {
		q.runningWM = true
	} else {
		q.runningMsgs = append(q.runningMsgs, it.ts)
	}
}

func (q *OpQueue) completeLocked(it *Item) {
	if it.kind == KindWatermark {
		q.runningWM = false
		return
	}
	for i, ts := range q.runningMsgs {
		if ts.Equal(it.ts) {
			q.runningMsgs = append(q.runningMsgs[:i], q.runningMsgs[i+1:]...)
			return
		}
	}
}

// less orders items: lower logical time first; within a logical time,
// watermark callbacks after message callbacks; higher accuracy coordinates
// first among data callbacks of the same logical time (§5.3); FIFO ties.
func less(a, b *Item) bool {
	if a.ts.L != b.ts.L {
		return a.ts.L < b.ts.L
	}
	if a.ts.IsTop() != b.ts.IsTop() {
		return !a.ts.IsTop()
	}
	if a.kind != b.kind {
		return a.kind == KindMessage // messages before the watermark barrier
	}
	if a.kind == KindMessage {
		// Prefer higher ĉ (more accurate input) first.
		c := a.ts.Cmp(b.ts)
		if c != 0 {
			return c > 0
		}
	} else if c := a.ts.Cmp(b.ts); c != 0 {
		return c < 0 // watermarks strictly in timestamp order
	}
	return a.seq < b.seq
}

// opHeap is the per-operator pending heap.
type opHeap []*Item

func (h opHeap) Len() int           { return len(h) }
func (h opHeap) Less(i, j int) bool { return less(h[i], h[j]) }
func (h opHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx, h[j].idx = i, j }
func (h *opHeap) Push(x any)        { it := x.(*Item); it.idx = len(*h); *h = append(*h, it) }
func (h *opHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.idx = -1
	*h = old[:n-1]
	return it
}

// readyHeap is the worker-wide ready heap.
type readyHeap []*Item

func (h readyHeap) Len() int           { return len(h) }
func (h readyHeap) Less(i, j int) bool { return less(h[i], h[j]) }
func (h readyHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)        { *h = append(*h, x.(*Item)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}
