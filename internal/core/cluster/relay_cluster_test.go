package cluster

import (
	"sync"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/state"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/worker"
)

// buildRelayGraph is a cross-host fanout pipeline: src on w1 echoes each
// ingested payload onto "fan" (size preserved, so the test controls the
// wire frame size), one stage per stageWorker consumes fan and reports the
// received payload length on its own output, extracted on w1.
func buildRelayGraph(t *testing.T, stageWorkers []string) (g *graph.Graph, in stream.ID, outs map[string]stream.ID) {
	t.Helper()
	g = graph.New()
	in = g.AddStream("in", "bytes")
	fan := g.AddStream("fan", "bytes")
	if err := g.MarkIngest(in); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOperator(&operator.Spec{
		Name: "src", Placement: "w1",
		Inputs: []stream.ID{in}, Outputs: []stream.ID{fan},
		AutoWatermark: true,
		OnData: func(ctx *operator.Context, _ int, m message.Message) {
			b := m.Payload.([]byte)
			p := make([]byte, len(b))
			p[0] = b[0]
			_ = ctx.Send(0, m.Timestamp, p)
		},
		OnWatermark: func(ctx *operator.Context) {},
	}); err != nil {
		t.Fatal(err)
	}
	outs = make(map[string]stream.ID, len(stageWorkers))
	for _, w := range stageWorkers {
		out := g.AddStream("out-"+w, "int")
		outs[w] = out
		if err := g.AddOperator(&operator.Spec{
			Name: "stage-" + w, Placement: w,
			Inputs: []stream.ID{fan}, Outputs: []stream.ID{out},
			AutoWatermark: true,
			OnData: func(ctx *operator.Context, _ int, m message.Message) {
				_ = ctx.Send(0, m.Timestamp, len(m.Payload.([]byte)))
			},
			OnWatermark: func(ctx *operator.Context) {},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return g, in, outs
}

// TestRelayMulticastCluster is the tentpole's counter-asserted test: a
// fanout to four consumers spread over two remote hosts costs the
// producer exactly one wire frame per remote host (the tagRelay envelope
// to each elected relay) and zero frames on the covered consumers' own
// links; every consumer still receives every message exactly once. A
// second phase ships a frame bigger than 4x the relay's broadcast ring
// and asserts it streams through the relay as a chunked ring train
// instead of falling back to per-consumer pairwise links.
func TestRelayMulticastCluster(t *testing.T) {
	stageWorkers := []string{"w2", "w3", "w4", "w5"}
	g, in, outs := buildRelayGraph(t, stageWorkers)
	hosts := map[string]string{"w1": "hostA", "w2": "hostB", "w3": "hostB", "w4": "hostC", "w5": "hostC"}

	extractAt := make(map[stream.ID][]string, len(outs))
	for _, id := range outs {
		extractAt[id] = []string{"w1"}
	}
	names := []string{"w1", "w2", "w3", "w4", "w5"}
	l, err := NewLeader("127.0.0.1:0", names, g, map[stream.ID]string{in: "w1"}, extractAt)
	if err != nil {
		t.Fatal(err)
	}

	nodes := make([]*Node, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			nodes[i], errs[i] = Join(l.Addr(), name, g, worker.Options{},
				WithHostLocality(hosts[name], t.TempDir()))
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	for _, n := range nodes {
		defer n.Close()
	}
	if err := l.Wait(); err != nil {
		t.Fatal(err)
	}

	// The schedule elected one relay per remote host for the fan stream —
	// the lexicographically-first consumer on each host, since no
	// congestion reports have arrived yet.
	sched := nodes[0].Schedule()
	var fanStream uint64
	for _, r := range sched.Routes {
		if len(r.Consumers) == 4 {
			fanStream = r.Stream
		}
	}
	if fanStream == 0 {
		t.Fatalf("no fanout route in %+v", sched.Routes)
	}
	relays := sched.PeerRelay[fanStream]
	if relays["hostB"] != "w2" || relays["hostC"] != "w4" {
		t.Fatalf("PeerRelay = %v, want hostB->w2 hostC->w4", relays)
	}
	if !nodes[0].Transport.RelayCapable("w2") || !nodes[0].Transport.RelayCapable("w4") {
		t.Fatal("relay capability not negotiated in the data-plane handshake")
	}

	var mu sync.Mutex
	lengths := make(map[string]map[uint64]int)
	delivered := make(map[string]map[uint64]int)
	for _, w := range stageWorkers {
		w := w
		lengths[w] = make(map[uint64]int)
		delivered[w] = make(map[uint64]int)
		if err := nodes[0].Worker.Subscribe(outs[w], func(m message.Message) {
			if m.IsData() {
				mu.Lock()
				lengths[w][m.Timestamp.L] = m.Payload.(int)
				delivered[w][m.Timestamp.L]++
				mu.Unlock()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}

	inject := func(l uint64, size int) {
		p := make([]byte, size)
		p[0] = byte(l)
		if err := nodes[0].Worker.Inject(in, message.Data(ts(l), p)); err != nil {
			t.Fatal(err)
		}
		if err := nodes[0].Worker.Inject(in, message.Watermark(ts(l))); err != nil {
			t.Fatal(err)
		}
	}
	await := func(want int) {
		deadline := time.Now().Add(30 * time.Second)
		for {
			mu.Lock()
			done := true
			for _, w := range stageWorkers {
				if len(lengths[w]) < want {
					done = false
				}
			}
			mu.Unlock()
			if done {
				return
			}
			if time.Now().After(deadline) {
				mu.Lock()
				defer mu.Unlock()
				t.Fatalf("timed out: got %d/%d/%d/%d results, want %d",
					len(lengths["w2"]), len(lengths["w3"]), len(lengths["w4"]), len(lengths["w5"]), want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Phase 1: steady fanout of 2KB frames.
	const phase1 = 30
	for l := uint64(1); l <= phase1; l++ {
		inject(l, 2048)
	}
	await(phase1)

	st := nodes[0].Transport.PeerCoalesceStats()
	// Covered consumers got nothing on their direct links: the fanout's
	// cross-host wire cost is per host, not per consumer.
	for _, cover := range []string{"w3", "w5"} {
		if f := st[cover].Frames; f != 0 {
			t.Fatalf("producer shipped %d frames directly to covered consumer %s, want 0", f, cover)
		}
	}
	// Exactly one envelope per remote host per multicast: both relay links
	// carried the same envelope count, and together they account for every
	// relayed send the producer made.
	if st["w2"].RelayFrames == 0 || st["w2"].RelayFrames != st["w4"].RelayFrames {
		t.Fatalf("relay envelope counts diverge: w2=%d w4=%d", st["w2"].RelayFrames, st["w4"].RelayFrames)
	}
	if sent, _, _ := nodes[0].Transport.RelayStats(); sent != st["w2"].RelayFrames+st["w4"].RelayFrames {
		t.Fatalf("relaySent=%d but link counters sum to %d", sent, st["w2"].RelayFrames+st["w4"].RelayFrames)
	}
	// The relays actually republished (and their rings carried frames).
	if _, recv, repub := nodes[1].Transport.RelayStats(); recv == 0 || repub == 0 {
		t.Fatalf("w2 relay stats: received=%d republished=%d, want both > 0", recv, repub)
	}
	if frames, _ := nodes[1].bus.Stats(); frames == 0 {
		t.Fatal("relay republish never rode w2's broadcast ring")
	}

	// Phase 2: a frame beyond 4x the relay's ring must stream through the
	// relay as a chunked train — one producer-side wire copy per host,
	// still no pairwise fallback to the covered consumers.
	const oversize = 5 << 20 // default ring is 1MB; the bus caps at 4MB
	inject(phase1+1, oversize)
	await(phase1 + 1)

	mu.Lock()
	for _, w := range stageWorkers {
		if got := lengths[w][phase1+1]; got != oversize {
			mu.Unlock()
			t.Fatalf("%s received %d bytes of the oversize frame, want %d", w, got, oversize)
		}
		for l := uint64(1); l <= phase1+1; l++ {
			if delivered[w][l] != 1 {
				mu.Unlock()
				t.Fatalf("%s saw timestamp %d %d times, want exactly once", w, l, delivered[w][l])
			}
		}
	}
	mu.Unlock()

	st = nodes[0].Transport.PeerCoalesceStats()
	for _, cover := range []string{"w3", "w5"} {
		if f := st[cover].Frames; f != 0 {
			t.Fatalf("oversize frame fell back to pairwise: %d frames on the %s link", st[cover].Frames, cover)
		}
	}
	spilled := false
	for _, i := range []int{1, 3} { // w2, w4
		if sc, ok := nodes[i].bgroup.Sink().(comm.SpillCounter); ok && sc.Spills() > 0 {
			spilled = true
		}
	}
	if !spilled {
		t.Fatal("oversize frame never streamed through a relay ring as a chunked train")
	}
	// Relay pressure is visible to placement: the congestion report carries
	// the republish count and ring spills.
	if r := nodes[1].congestionReport(); r.RelayRepublished == 0 {
		t.Fatalf("congestion report hides relay pressure: %+v", r)
	}
}

// relaySum mirrors failover_test's countState for the relay chaos test.
type relaySum struct{ Sum int }

func init() { state.RegisterState(&relaySum{}) }

// buildRelayFailoverGraph fans src(w1)'s stream out to one stateful
// counter per stage worker; each counter's running sum is recorded by a
// fenced sink operator on w1 (exactly-once at watermark granularity), so
// the ledger catches both lost and duplicated deliveries across the
// relay's death.
func buildRelayFailoverGraph(t *testing.T, stageWorkers []string, record func(w string, l uint64, sum int)) (*graph.Graph, stream.ID) {
	t.Helper()
	g := graph.New()
	in := g.AddStream("in", "bytes")
	fan := g.AddStream("fan", "bytes")
	if err := g.MarkIngest(in); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOperator(&operator.Spec{
		Name: "src", Placement: "w1",
		Inputs: []stream.ID{in}, Outputs: []stream.ID{fan},
		AutoWatermark: true,
		OnData: func(ctx *operator.Context, _ int, m message.Message) {
			b := m.Payload.([]byte)
			p := make([]byte, fanPayloadBytes)
			p[0] = b[0]
			_ = ctx.Send(0, m.Timestamp, p)
		},
		OnWatermark: func(ctx *operator.Context) {},
	}); err != nil {
		t.Fatal(err)
	}
	for _, w := range stageWorkers {
		w := w
		mid := g.AddStream("mid-"+w, "int")
		if err := g.AddOperator(&operator.Spec{
			Name: "count-" + w, Placement: w,
			Inputs: []stream.ID{fan}, Outputs: []stream.ID{mid},
			AutoWatermark: true,
			NewState: func() state.Store {
				return state.NewVersioned(&relaySum{}, func(v any) any {
					c := *v.(*relaySum)
					return &c
				})
			},
			OnData: func(ctx *operator.Context, _ int, m message.Message) {
				ctx.State().(*relaySum).Sum += int(m.Payload.([]byte)[0])
			},
			OnWatermark: func(ctx *operator.Context) {
				_ = ctx.Send(0, ctx.Timestamp, ctx.State().(*relaySum).Sum)
			},
		}); err != nil {
			t.Fatal(err)
		}
		type sinkState struct{ Last int }
		if err := g.AddOperator(&operator.Spec{
			Name: "sink-" + w, Placement: "w1",
			Inputs:        []stream.ID{mid},
			AutoWatermark: true,
			NewState: func() state.Store {
				return state.NewVersioned(&sinkState{}, func(v any) any {
					c := *v.(*sinkState)
					return &c
				})
			},
			OnData: func(ctx *operator.Context, _ int, m message.Message) {
				ctx.State().(*sinkState).Last = m.Payload.(int)
			},
			OnWatermark: func(ctx *operator.Context) {
				record(w, ctx.Timestamp.L, ctx.State().(*sinkState).Last)
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return g, in
}

// TestRelayFailoverMidFanout kills the elected relay while the fanout is
// live: the leader must detect the death within 2x the heartbeat period,
// re-elect a relay on the same host in the reschedule delta, force-replay
// the retained window to the consumers the dead relay covered, and keep
// every stage's running sum exactly-once — frames that died in the
// relay's republish queue are recovered, recovered frames that raced the
// live path are fenced off.
func TestRelayFailoverMidFanout(t *testing.T) {
	const hb = 100 * time.Millisecond
	stageWorkers := []string{"w2", "w3", "w4"}
	hosts := map[string]string{"w1": "hostA", "w2": "hostB", "w3": "hostB", "w4": "hostB"}

	var mu sync.Mutex
	sums := make(map[string]map[uint64][]int)
	for _, w := range stageWorkers {
		sums[w] = make(map[uint64][]int)
	}
	g, in := buildRelayFailoverGraph(t, stageWorkers, func(w string, l uint64, sum int) {
		mu.Lock()
		sums[w][l] = append(sums[w][l], sum)
		mu.Unlock()
	})

	names := []string{"w1", "w2", "w3", "w4"}
	l, err := NewLeader("127.0.0.1:0", names, g,
		map[stream.ID]string{in: "w1"}, nil,
		WithHeartbeat(hb, 3*hb/2))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Stop()

	nodes := make([]*Node, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			nodes[i], errs[i] = Join(l.Addr(), name, g, worker.Options{},
				WithHostLocality(hosts[name], t.TempDir()))
		}(i, name)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("join %d: %v", i, errs[i])
		}
		defer nodes[i].Close()
	}
	if err := l.Wait(); err != nil {
		t.Fatal(err)
	}

	var fanStream uint64
	for _, r := range nodes[0].Schedule().Routes {
		if len(r.Consumers) == 3 {
			fanStream = r.Stream
		}
	}
	if got := nodes[0].Schedule().PeerRelay[fanStream]["hostB"]; got != "w2" {
		t.Fatalf("initial relay = %q, want w2", got)
	}

	inject := func(from, to uint64) {
		for l := from; l <= to; l++ {
			if err := nodes[0].Worker.Inject(in, message.Data(ts(l), []byte{byte(l%251) + 1})); err != nil {
				t.Fatal(err)
			}
			if err := nodes[0].Worker.Inject(in, message.Watermark(ts(l))); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor := func(what string, d time.Duration, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(d)
		for !ok() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; events: %+v", what, l.Events())
			}
			time.Sleep(time.Millisecond)
		}
	}
	recorded := func(w string, upTo uint64) bool {
		mu.Lock()
		defer mu.Unlock()
		for l := uint64(1); l <= upTo; l++ {
			if len(sums[w][l]) == 0 {
				return false
			}
		}
		return true
	}

	// Phase 1: steady state through the relay, then let heartbeats ship
	// the counters' checkpoints and frontiers.
	inject(1, 20)
	waitFor("phase-1 sums", 10*time.Second, func() bool {
		return recorded("w2", 20) && recorded("w3", 20) && recorded("w4", 20)
	})
	time.Sleep(2 * hb)

	// Phase 2: kill the relay mid-fanout and keep injecting into the
	// outage — some of these frames die in w2's republish queue, and only
	// the forced replay at the barrier can recover them for w3/w4.
	killed := time.Now()
	nodes[1].Kill()
	inject(21, 30)

	waitFor("recovery", 15*time.Second, func() bool {
		for _, e := range l.Events() {
			if e.Kind == EventRecovered {
				return true
			}
		}
		return false
	})
	var detected time.Time
	for _, e := range l.Events() {
		if e.Kind == EventFailureDetected && e.Worker == "w2" {
			detected = e.At
		}
	}
	if detected.IsZero() {
		t.Fatal("no failure-detected event for w2")
	}
	if lat := detected.Sub(killed); lat > 2*hb {
		t.Fatalf("detection latency %v exceeds 2x heartbeat period (%v)", lat, 2*hb)
	}

	// The reschedule delta re-elected a surviving relay on hostB.
	sched := nodes[2].Schedule()
	if got := sched.PeerRelay[fanStream]["hostB"]; got == "" || got == "w2" {
		t.Fatalf("relay not re-elected away from the dead worker: %q (PeerRelay=%v)", got, sched.PeerRelay)
	}

	// Phase 3: post-recovery traffic through the new relay, then audit the
	// ledger: every timestamp recorded exactly once per stage, every sum
	// exact — nothing lost in the dead relay's queue, nothing double-applied
	// by the forced replay.
	inject(31, 40)
	waitFor("phase-3 sums", 30*time.Second, func() bool {
		return recorded("w2", 40) && recorded("w3", 40) && recorded("w4", 40)
	})

	mu.Lock()
	defer mu.Unlock()
	want := 0
	for l := uint64(1); l <= 40; l++ {
		want += int(byte(l%251)) + 1
		for _, w := range stageWorkers {
			got := sums[w][l]
			if len(got) != 1 {
				t.Fatalf("stage %s timestamp %d recorded %d times (%v), want exactly once", w, l, len(got), got)
			}
			if got[0] != want {
				t.Fatalf("stage %s sum at %d = %d, want %d", w, l, got[0], want)
			}
		}
	}
}
