package cluster

import (
	"math"
	"sync"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/worker"
)

// buildTriGraph is a three-stage pipeline pinned across three workers:
// ingest -> double(w1) -> addTen(w2) -> negate(w3) -> out, extracted on w1.
func buildTriGraph(t *testing.T) (*graph.Graph, stream.ID, stream.ID) {
	t.Helper()
	g := graph.New()
	in := g.AddStream("in", "int")
	mid := g.AddStream("mid", "int")
	mid2 := g.AddStream("mid2", "int")
	out := g.AddStream("out", "int")
	if err := g.MarkIngest(in); err != nil {
		t.Fatal(err)
	}
	// Payloads are []byte so every data frame rides the raw path — the
	// test asserts the whole mesh, ring and TCP edges alike, is gob-free.
	stage := func(name, placement string, from, to stream.ID, f func(byte) byte) {
		err := g.AddOperator(&operator.Spec{
			Name: name, Placement: placement,
			Inputs: []stream.ID{from}, Outputs: []stream.ID{to},
			AutoWatermark: true,
			OnData: func(ctx *operator.Context, _ int, m message.Message) {
				_ = ctx.Send(0, m.Timestamp, []byte{f(m.Payload.([]byte)[0])})
			},
			OnWatermark: func(ctx *operator.Context) {},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	stage("double", "w1", in, mid, func(v byte) byte { return v * 2 })
	stage("addTen", "w2", mid, mid2, func(v byte) byte { return v + 10 })
	stage("flip", "w3", mid2, out, func(v byte) byte { return v ^ 0xFF })
	return g, in, out
}

// TestMixedBackendCluster runs a cluster where two workers share a host
// (ring links) and a third does not (TCP links): the w1-w2 edge must come
// up as scheme "shm" on both sides, every w3 edge as "tcp", with zero gob
// data-plane frames anywhere and exactly-once results end to end.
func TestMixedBackendCluster(t *testing.T) {
	g, in, out := buildTriGraph(t)
	ingestAt := map[stream.ID]string{in: "w1"}
	extractAt := map[stream.ID][]string{out: {"w1"}}
	l, err := NewLeader("127.0.0.1:0", []string{"w1", "w2", "w3"}, g, ingestAt, extractAt)
	if err != nil {
		t.Fatal(err)
	}

	jopts := map[string][]JoinOption{
		"w1": {WithHostLocality("hostA", t.TempDir())},
		"w2": {WithHostLocality("hostA", t.TempDir())},
		"w3": nil, // different host: TCP everywhere
	}
	var nodes [3]*Node
	var wg sync.WaitGroup
	var errs [3]error
	for i, name := range []string{"w1", "w2", "w3"} {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			nodes[i], errs[i] = Join(l.Addr(), name, g, worker.Options{}, jopts[name]...)
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	for _, n := range nodes {
		defer n.Close()
	}
	if err := l.Wait(); err != nil {
		t.Fatal(err)
	}

	wantSchemes := map[string]map[string]string{
		"w1": {"w2": "shm", "w3": "tcp"},
		"w2": {"w1": "shm", "w3": "tcp"},
		"w3": {"w1": "tcp", "w2": "tcp"},
	}
	for i, name := range []string{"w1", "w2", "w3"} {
		got := nodes[i].Transport.PeerSchemes()
		for peer, scheme := range wantSchemes[name] {
			if got[peer] != scheme {
				t.Fatalf("%s->%s scheme = %q, want %q (all: %v)", name, peer, got[peer], scheme, got)
			}
		}
	}

	var mu sync.Mutex
	var results []byte
	if err := nodes[0].Worker.Subscribe(out, func(m message.Message) {
		if m.IsData() {
			mu.Lock()
			results = append(results, m.Payload.([]byte)[0])
			mu.Unlock()
		}
	}); err != nil {
		t.Fatal(err)
	}
	const n = 20
	for l := uint64(1); l <= n; l++ {
		if err := nodes[0].Worker.Inject(in, message.Data(ts(l), []byte{byte(l)})); err != nil {
			t.Fatal(err)
		}
		if err := nodes[0].Worker.Inject(in, message.Watermark(ts(l))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		k := len(results)
		mu.Unlock()
		if k >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("got %d results, want %d", k, n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(results) != n {
		t.Fatalf("results = %d, want exactly %d (duplicates?)", len(results), n)
	}
	for i, v := range results {
		if want := byte((i+1)*2+10) ^ 0xFF; v != want {
			t.Fatalf("result[%d] = %d, want %d", i, v, want)
		}
	}
	// The data plane must stay zero-gob on ring and TCP links alike.
	for i, name := range []string{"w1", "w2", "w3"} {
		s, r := nodes[i].Transport.SentFrames(), nodes[i].Transport.ReceivedFrames()
		if s.Gob != 0 || r.Gob != 0 {
			t.Fatalf("%s: gob data-plane frames: sent %+v recv %+v", name, s, r)
		}
	}
}

// TestFailoverRingSeverTCPFallback severs a live ring link mid-run and
// requires the heartbeat-tick link repair to re-dial the peer over TCP
// (the ring is suspect after a sever), with traffic flowing end to end
// both before and after, each message delivered exactly once.
func TestFailoverRingSeverTCPFallback(t *testing.T) {
	g, in, out := buildGraph(t)
	ingestAt := map[stream.ID]string{in: "w1"}
	extractAt := map[stream.ID][]string{out: {"w1"}}
	l, err := NewLeader("127.0.0.1:0", []string{"w1", "w2"}, g, ingestAt, extractAt,
		WithHeartbeat(50*time.Millisecond, 10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Stop()

	dir := t.TempDir()
	var nodes [2]*Node
	var wg sync.WaitGroup
	var errs [2]error
	for i, name := range []string{"w1", "w2"} {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			nodes[i], errs[i] = Join(l.Addr(), name, g, worker.Options{},
				WithHostLocality("hostA", dir))
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	defer nodes[0].Close()
	defer nodes[1].Close()
	if err := l.Wait(); err != nil {
		t.Fatal(err)
	}
	if s := nodes[1].Transport.PeerSchemes()["w1"]; s != "shm" {
		t.Fatalf("pre-sever scheme = %q, want shm", s)
	}

	var mu sync.Mutex
	var results []int
	if err := nodes[0].Worker.Subscribe(out, func(m message.Message) {
		if m.IsData() {
			mu.Lock()
			results = append(results, m.Payload.(int))
			mu.Unlock()
		}
	}); err != nil {
		t.Fatal(err)
	}
	inject := func(from, to uint64) {
		for l := from; l <= to; l++ {
			if err := nodes[0].Worker.Inject(in, message.Data(ts(l), int(l))); err != nil {
				t.Fatal(err)
			}
			if err := nodes[0].Worker.Inject(in, message.Watermark(ts(l))); err != nil {
				t.Fatal(err)
			}
		}
	}
	await := func(want int) {
		deadline := time.Now().Add(5 * time.Second)
		for {
			mu.Lock()
			k := len(results)
			mu.Unlock()
			if k >= want {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("got %d results, want %d", k, want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	inject(1, 5)
	await(5)

	// Sever the ring from the accept side; the dialer (w2, the larger
	// name) must notice on a heartbeat tick, mark the ring suspect, and
	// come back over TCP.
	nodes[0].Transport.Disconnect("w2")
	// Wait until both ends agree the link is back over TCP, and stably so
	// (two observations a heartbeat apart): mid-repair there are transient
	// windows where one side holds a conn the other has already dropped,
	// and messages forwarded into such a window are lost exactly as they
	// would be on a TCP-only cluster.
	deadline := time.Now().Add(5 * time.Second)
	for stable := 0; stable < 2; {
		a := nodes[0].Transport.PeerSchemes()["w2"]
		b := nodes[1].Transport.PeerSchemes()["w1"]
		if a == "tcp" && b == "tcp" {
			stable++
		} else {
			stable = 0
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-sever schemes = %q/%q, want tcp/tcp", a, b)
		}
		time.Sleep(50 * time.Millisecond)
	}
	inject(6, 10)
	await(10)
	mu.Lock()
	defer mu.Unlock()
	if len(results) != 10 {
		t.Fatalf("results = %d, want exactly 10 (duplicates after repair?)", len(results))
	}
	seen := make(map[int]bool)
	for _, v := range results {
		if seen[v] {
			t.Fatalf("duplicate result %d after ring repair", v)
		}
		seen[v] = true
	}
}

// TestRestoreCutIncludesExtractPoints: an orphaned producer whose only
// reader is a subscription-only extraction point must restore at the
// extracting worker's reported frontier, not unconstrained — otherwise a
// failover could skip outputs the application never received.
func TestRestoreCutIncludesExtractPoints(t *testing.T) {
	g := graph.New()
	in := g.AddStream("in", "int")
	out := g.AddStream("out", "int")
	if err := g.MarkIngest(in); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOperator(&operator.Spec{
		Name: "prod", Placement: "w1",
		Inputs: []stream.ID{in}, Outputs: []stream.ID{out},
	}); err != nil {
		t.Fatal(err)
	}
	assign := map[string]string{"prod": "w1"}
	frontiers := map[string]map[stream.ID]uint64{"w2": {out: 7}}

	// No extract info: the producer has no operator readers, so the old
	// behavior let it restore unconstrained.
	cuts := restoreCuts(g, assign, "w1", frontiers, nil, nil)
	if cuts["prod"] != math.MaxUint64 {
		t.Fatalf("cut without extract readers = %d, want unconstrained", cuts["prod"])
	}
	// With the extraction point as a reader, its frontier bounds the cut.
	cuts = restoreCuts(g, assign, "w1", frontiers, nil,
		map[stream.ID][]string{out: {"w2"}})
	if cuts["prod"] != 7 {
		t.Fatalf("cut with extract reader = %d, want 7", cuts["prod"])
	}
	// A dead extraction point contributes nothing (it is being re-homed).
	cuts = restoreCuts(g, assign, "w1", frontiers, nil,
		map[stream.ID][]string{out: {"w1"}})
	if cuts["prod"] != math.MaxUint64 {
		t.Fatalf("cut with dead extractor = %d, want unconstrained", cuts["prod"])
	}
}
