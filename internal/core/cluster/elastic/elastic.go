// Package elastic holds the pure policy layer of elastic cluster
// membership: autoscale hysteresis over congestion scores, tenant
// admission control, and worker selection for tenant placement and
// drain. The package is deliberately free of clocks, randomness and I/O —
// every decision is a deterministic function of the inputs the leader
// feeds it (it is a wallclock deterministic domain under erdos-vet), so
// scale decisions are replayable from a recorded score stream.
package elastic

import (
	"fmt"
	"sort"
)

// Config tunes the autoscaler's hysteresis.
type Config struct {
	// HighWater is the congestion score above which a worker counts as
	// hot; LowWater the score below which every worker must sit for the
	// cluster to count as cold. HighWater must exceed LowWater or every
	// oscillation between them thrashes.
	HighWater int64
	LowWater  int64
	// SustainTicks is how many consecutive observations the hot (or cold)
	// condition must hold before a decision fires; transient spikes
	// shorter than that are absorbed.
	SustainTicks int
	// CooldownTicks is how many observations after a decision the scaler
	// holds regardless of scores, giving a migration time to land before
	// its effect is judged.
	CooldownTicks int
	// MinWorkers/MaxWorkers clamp the fleet size; ScaleDown never drops
	// below MinWorkers, ScaleUp never exceeds MaxWorkers (0 = unbounded).
	MinWorkers int
	MaxWorkers int
}

// Norm returns cfg with zero fields replaced by defaults.
func (cfg Config) Norm() Config {
	if cfg.HighWater <= 0 {
		cfg.HighWater = 64
	}
	if cfg.LowWater < 0 {
		cfg.LowWater = 0
	}
	if cfg.LowWater >= cfg.HighWater {
		cfg.LowWater = cfg.HighWater / 2
	}
	if cfg.SustainTicks <= 0 {
		cfg.SustainTicks = 3
	}
	if cfg.CooldownTicks <= 0 {
		cfg.CooldownTicks = 4
	}
	if cfg.MinWorkers <= 0 {
		cfg.MinWorkers = 1
	}
	return cfg
}

// Kind is an autoscale decision.
type Kind int

const (
	Hold Kind = iota
	ScaleUp
	ScaleDown
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case ScaleUp:
		return "scale-up"
	case ScaleDown:
		return "scale-down"
	default:
		return "hold"
	}
}

// Decision is the autoscaler's verdict for one observation.
type Decision struct {
	Kind Kind
	// Hot names the worker whose sustained score triggered a ScaleUp (the
	// migration donor); empty otherwise.
	Hot string
	// Peak is the maximum score observed this tick.
	Peak int64
}

// Autoscaler converts a stream of per-worker congestion scores into scale
// decisions with hysteresis: a condition must hold SustainTicks times in a
// row to fire, and after any decision the scaler holds for CooldownTicks
// observations. Not safe for concurrent use; the leader observes from one
// monitor goroutine.
type Autoscaler struct {
	cfg      Config
	hotRun   int
	coldRun  int
	cooldown int
}

// NewAutoscaler builds an autoscaler with cfg (normalized via Norm).
func NewAutoscaler(cfg Config) *Autoscaler {
	return &Autoscaler{cfg: cfg.Norm()}
}

// Config returns the normalized configuration.
func (a *Autoscaler) Config() Config { return a.cfg }

// Observe feeds one tick of per-worker congestion scores for the current
// candidate set (draining and dead workers excluded by the caller) and the
// current fleet size, and returns the decision for this tick.
func (a *Autoscaler) Observe(scores map[string]int64, workers int) Decision {
	var peak int64
	hot := ""
	cold := true
	for name, s := range scores {
		if s > peak || (s == peak && (hot == "" || name < hot)) {
			peak, hot = s, name
		}
		if s >= a.cfg.LowWater {
			cold = false
		}
	}
	d := Decision{Kind: Hold, Peak: peak}
	if a.cooldown > 0 {
		a.cooldown--
		a.hotRun, a.coldRun = 0, 0
		return d
	}
	if peak >= a.cfg.HighWater {
		a.hotRun++
		a.coldRun = 0
	} else if cold && len(scores) > 0 {
		a.coldRun++
		a.hotRun = 0
	} else {
		a.hotRun, a.coldRun = 0, 0
	}
	switch {
	case a.hotRun >= a.cfg.SustainTicks && (a.cfg.MaxWorkers == 0 || workers < a.cfg.MaxWorkers):
		d.Kind, d.Hot = ScaleUp, hot
		a.hotRun, a.coldRun, a.cooldown = 0, 0, a.cfg.CooldownTicks
	case a.coldRun >= a.cfg.SustainTicks && workers > a.cfg.MinWorkers:
		d.Kind = ScaleDown
		a.hotRun, a.coldRun, a.cooldown = 0, 0, a.cfg.CooldownTicks
	}
	return d
}

// Admit decides whether a tenant with predicted load `incoming` fits a
// cluster of `workers` workers, each with capacity `perWorker`, already
// carrying total load `used`. A non-positive perWorker disables admission
// control. Loads are in whatever unit the caller predicts in (operator
// count by default); the check is intentionally a linear headroom test —
// the placement layer handles the finer-grained balancing.
func Admit(used, incoming int64, workers int, perWorker int64) error {
	if perWorker <= 0 {
		return nil
	}
	capacity := int64(workers) * perWorker
	if used+incoming > capacity {
		return fmt.Errorf("elastic: admission rejected: load %d + incoming %d exceeds capacity %d (%d workers x %d)",
			used, incoming, capacity, workers, perWorker)
	}
	return nil
}

// PickTenantWorker chooses the home worker for a new tenant: fewest
// resident tenants first, then lowest congestion score, then name for
// determinism. candidates must be non-empty; tenantCount and scores may be
// missing entries (treated as zero).
func PickTenantWorker(candidates []string, tenantCount map[string]int, scores map[string]int64) string {
	best := ""
	for _, w := range candidates {
		if best == "" {
			best = w
			continue
		}
		bw, bb := tenantCount[w], tenantCount[best]
		switch {
		case bw < bb:
			best = w
		case bw == bb && scores[w] < scores[best]:
			best = w
		case bw == bb && scores[w] == scores[best] && w < best:
			best = w
		}
	}
	return best
}

// Idlest returns the candidate with the lowest score (ties broken by
// name), or "" when candidates is empty — the worker a cold cluster
// retires first.
func Idlest(candidates []string, scores map[string]int64) string {
	best := ""
	for _, w := range candidates {
		if best == "" || scores[w] < scores[best] || (scores[w] == scores[best] && w < best) {
			best = w
		}
	}
	return best
}

// Hottest returns the worker with the highest score (ties broken by name),
// or "" when scores is empty.
func Hottest(scores map[string]int64) string {
	names := make([]string, 0, len(scores))
	for w := range scores {
		names = append(names, w)
	}
	sort.Strings(names)
	best := ""
	for _, w := range names {
		if best == "" || scores[w] > scores[best] {
			best = w
		}
	}
	return best
}

// Pool spawns and retires workers on behalf of the leader's autoscale
// loop. Implementations join a new worker to the running cluster on Spawn
// and stop a worker the leader has already drained on Retire; both may
// block until the membership change lands.
type Pool interface {
	Spawn(name string) error
	Retire(name string) error
}
