package elastic

import (
	"strings"
	"testing"
)

func TestAutoscalerSustainAndCooldown(t *testing.T) {
	a := NewAutoscaler(Config{HighWater: 10, LowWater: 2, SustainTicks: 3, CooldownTicks: 2, MinWorkers: 1, MaxWorkers: 4})
	hot := map[string]int64{"w1": 20, "w2": 1}

	// A spike shorter than SustainTicks never fires.
	for i := 0; i < 2; i++ {
		if d := a.Observe(hot, 2); d.Kind != Hold {
			t.Fatalf("tick %d: got %v, want hold while sustaining", i, d.Kind)
		}
	}
	if d := a.Observe(map[string]int64{"w1": 1, "w2": 1}, 2); d.Kind != Hold {
		t.Fatalf("dip should reset the hot run, got %v", d.Kind)
	}

	// Three sustained hot ticks fire a ScaleUp naming the hot worker.
	var fired Decision
	for i := 0; i < 3; i++ {
		fired = a.Observe(hot, 2)
	}
	if fired.Kind != ScaleUp || fired.Hot != "w1" {
		t.Fatalf("got %+v, want ScaleUp on w1", fired)
	}

	// Cooldown holds even under continued heat.
	for i := 0; i < 2; i++ {
		if d := a.Observe(hot, 3); d.Kind != Hold {
			t.Fatalf("cooldown tick %d: got %v, want hold", i, d.Kind)
		}
	}
}

func TestAutoscalerScaleDownRespectsMin(t *testing.T) {
	a := NewAutoscaler(Config{HighWater: 10, LowWater: 2, SustainTicks: 2, CooldownTicks: 1, MinWorkers: 2})
	cold := map[string]int64{"w1": 0, "w2": 1, "w3": 0}
	if d := a.Observe(cold, 3); d.Kind != Hold {
		t.Fatalf("first cold tick should hold, got %v", d.Kind)
	}
	if d := a.Observe(cold, 3); d.Kind != ScaleDown {
		t.Fatalf("sustained cold should scale down, got %v", d.Kind)
	}
	// Burn the cooldown tick, then verify MinWorkers blocks further shrink.
	a.Observe(cold, 2)
	a.Observe(cold, 2)
	if d := a.Observe(cold, 2); d.Kind != Hold {
		t.Fatalf("at MinWorkers, got %v, want hold", d.Kind)
	}
}

func TestAutoscalerMaxWorkersBlocksScaleUp(t *testing.T) {
	a := NewAutoscaler(Config{HighWater: 5, LowWater: 1, SustainTicks: 1, CooldownTicks: 1, MaxWorkers: 2})
	if d := a.Observe(map[string]int64{"w1": 50}, 2); d.Kind != Hold {
		t.Fatalf("at MaxWorkers, got %v, want hold", d.Kind)
	}
}

func TestAdmit(t *testing.T) {
	if err := Admit(5, 3, 2, 5); err != nil {
		t.Fatalf("within capacity: %v", err)
	}
	err := Admit(8, 3, 2, 5)
	if err == nil || !strings.Contains(err.Error(), "admission rejected") {
		t.Fatalf("over capacity: got %v, want rejection", err)
	}
	if err := Admit(1_000_000, 1, 1, 0); err != nil {
		t.Fatalf("perWorker<=0 disables admission, got %v", err)
	}
}

func TestPickTenantWorker(t *testing.T) {
	got := PickTenantWorker([]string{"w2", "w1"}, map[string]int{"w1": 1}, nil)
	if got != "w2" {
		t.Fatalf("fewest tenants first: got %q, want w2", got)
	}
	got = PickTenantWorker([]string{"w2", "w1"}, nil, map[string]int64{"w1": 3, "w2": 9})
	if got != "w1" {
		t.Fatalf("score breaks tenant ties: got %q, want w1", got)
	}
	got = PickTenantWorker([]string{"w2", "w1"}, nil, nil)
	if got != "w1" {
		t.Fatalf("name breaks full ties: got %q, want w1", got)
	}
}

func TestIdlestAndHottest(t *testing.T) {
	scores := map[string]int64{"w1": 4, "w2": 0, "w3": 9}
	if got := Idlest([]string{"w1", "w2", "w3"}, scores); got != "w2" {
		t.Fatalf("Idlest got %q, want w2", got)
	}
	if got := Hottest(scores); got != "w3" {
		t.Fatalf("Hottest got %q, want w3", got)
	}
	if got := Idlest(nil, scores); got != "" {
		t.Fatalf("empty candidates: got %q, want empty", got)
	}
	if got := Hottest(map[string]int64{"b": 5, "a": 5}); got != "a" {
		t.Fatalf("Hottest tie-break got %q, want a", got)
	}
}
