package cluster

import (
	"testing"

	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/stream"
)

// chainGraph builds src→mid→sink with no explicit placements.
func chainGraph(t *testing.T, pin map[string]string) *graph.Graph {
	t.Helper()
	g := graph.New()
	a := g.AddStream("a", "int")
	b := g.AddStream("b", "int")
	c := g.AddStream("c", "int")
	if err := g.MarkIngest(a); err != nil {
		t.Fatal(err)
	}
	mk := func(name string, in, out []stream.ID) {
		if err := g.AddOperator(&operator.Spec{
			Name: name, Placement: pin[name],
			Inputs: in, Outputs: out,
		}); err != nil {
			t.Fatal(err)
		}
	}
	mk("src", []stream.ID{a}, []stream.ID{b})
	mk("mid", []stream.ID{b}, []stream.ID{c})
	mk("sink", []stream.ID{c}, nil)
	return g
}

func TestPlacementCoLocatesAffinityGroups(t *testing.T) {
	g := chainGraph(t, nil)
	if err := g.WithAffinity("src", "mid", "sink"); err != nil {
		t.Fatal(err)
	}
	assign, err := Placement(g, []string{"w1", "w2", "w3"})
	if err != nil {
		t.Fatal(err)
	}
	if assign["src"] != assign["mid"] || assign["src"] != assign["sink"] {
		t.Fatalf("affinity group split: %v", assign)
	}
}

func TestPlacementAffinityGroupUsesOneRoundRobinSlot(t *testing.T) {
	g := chainGraph(t, nil)
	// extra operator after the group must land on the next worker, not be
	// skewed by group members each consuming a slot.
	d := g.AddStream("d", "int")
	if err := g.MarkIngest(d); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOperator(&operator.Spec{Name: "extra", Inputs: []stream.ID{d}}); err != nil {
		t.Fatal(err)
	}
	if err := g.WithAffinity("src", "mid", "sink"); err != nil {
		t.Fatal(err)
	}
	assign, err := Placement(g, []string{"w1", "w2"})
	if err != nil {
		t.Fatal(err)
	}
	if assign["src"] != "w1" || assign["mid"] != "w1" || assign["sink"] != "w1" {
		t.Fatalf("group not on w1: %v", assign)
	}
	if assign["extra"] != "w2" {
		t.Fatalf("extra = %s, want w2 (group should consume one slot): %v", assign["extra"], assign)
	}
}

func TestPlacementExplicitPinAnchorsGroup(t *testing.T) {
	g := chainGraph(t, map[string]string{"src": "w2"})
	if err := g.WithAffinity("src", "mid"); err != nil {
		t.Fatal(err)
	}
	assign, err := Placement(g, []string{"w1", "w2"})
	if err != nil {
		t.Fatal(err)
	}
	if assign["src"] != "w2" {
		t.Fatalf("pinned src moved: %v", assign)
	}
	if assign["mid"] != "w2" {
		t.Fatalf("mid should follow src's pin: %v", assign)
	}
}
