package cluster

import (
	"testing"

	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/stream"
)

func congGraph(t *testing.T, names ...string) *graph.Graph {
	t.Helper()
	g := graph.New()
	s := g.AddStream("s", "int")
	if err := g.MarkIngest(s); err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if err := g.AddOperator(&operator.Spec{Name: name, Inputs: []stream.ID{s}}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestReassignLoadedAvoidsCongestedSurvivor: with congestion scores in
// play, an orphan lands on the quiet survivor even when the congested one
// hosts fewer operators.
func TestReassignLoadedAvoidsCongestedSurvivor(t *testing.T) {
	g := congGraph(t, "a", "b", "c", "d")
	assign := map[string]string{"a": "w1", "b": "w3", "c": "w3", "d": "w2"}

	// Least-loaded alone would pick w1 (1 op vs w3's 2).
	got := ReassignLoaded(g, assign, "w2", []string{"w1", "w3"}, nil)
	if got["d"] != "w1" {
		t.Fatalf("without scores, orphan d on %q, want least-loaded w1", got["d"])
	}

	// But w1's heartbeats show queue backlog and urgency misses: the
	// orphan must be steered to the quiet (if busier) w3.
	scores := map[string]int64{"w1": 250, "w3": 0}
	got = ReassignLoaded(g, assign, "w2", []string{"w1", "w3"}, scores)
	if got["d"] != "w3" {
		t.Fatalf("with w1 congested, orphan d on %q, want w3", got["d"])
	}
}

// TestReassignLoadedAffinityBeatsCongestion: congestion steering never
// splits an affinity group — the orphan follows its surviving partner even
// onto a congested worker.
func TestReassignLoadedAffinityBeatsCongestion(t *testing.T) {
	g := congGraph(t, "a", "b", "c")
	if err := g.WithAffinity("a", "b"); err != nil {
		t.Fatal(err)
	}
	assign := map[string]string{"a": "w1", "b": "w2", "c": "w3"}
	scores := map[string]int64{"w1": 1000, "w3": 0}
	got := ReassignLoaded(g, assign, "w2", []string{"w1", "w3"}, scores)
	if got["b"] != "w1" {
		t.Fatalf("affinity orphan b on %q, want w1 (with a) despite congestion", got["b"])
	}
}

// TestPlacementLoadedSteersOffCongested: initial placement overrides a
// round-robin slot when a strictly less-congested worker exists, and
// reduces to plain round-robin with uniform scores.
func TestPlacementLoadedSteersOffCongested(t *testing.T) {
	g := congGraph(t, "a", "b")
	workers := []string{"w1", "w2"}

	assign, err := PlacementLoaded(g, workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if assign["a"] != "w1" || assign["b"] != "w2" {
		t.Fatalf("nil scores should round-robin: %v", assign)
	}

	assign, err = PlacementLoaded(g, workers, map[string]int64{"w1": 40, "w2": 0})
	if err != nil {
		t.Fatal(err)
	}
	if assign["a"] != "w2" || assign["b"] != "w2" {
		t.Fatalf("congested w1 should be avoided: %v", assign)
	}
}

// TestCongestionScoreWeighsRecentMisses: blown deadlines dominate mere
// backlog in the placement score.
func TestCongestionScoreWeighsRecentMisses(t *testing.T) {
	backlogged := CongestionReport{Ready: 10, Pending: 20}
	missing := CongestionReport{Ready: 1, Pending: 2, UrgencyMisses: 500}
	if s := backlogged.Score(0); s != 30 {
		t.Fatalf("backlog-only score = %d, want 30", s)
	}
	// Cumulative misses contribute only through the per-heartbeat delta.
	if s := missing.Score(0); s != 3 {
		t.Fatalf("stale-miss score = %d, want 3", s)
	}
	if s := missing.Score(5); s != 43 {
		t.Fatalf("recent-miss score = %d, want 43", s)
	}
	if missing.Score(5) <= backlogged.Score(0)/2 {
		t.Fatalf("five fresh misses should rival a 30-deep backlog")
	}
}
