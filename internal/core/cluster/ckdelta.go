// Checkpoint delta shipping: heartbeats carry only the committed versions
// the leader has not acknowledged yet. The worker trims against the acked
// version watermark (checkpointAckMsg) before encoding; the leader splices
// incoming deltas onto its retained snapshots. Both directions are pure
// value transforms on state.Checkpoint, collected here.
//
// Safety: a trim can only remove versions the leader provably retains (it
// acked them on this ordered control stream), and a splice only ever adds
// versions below what the delta carries — so the leader's retained
// checkpoint is always a superset of what a full heartbeat would have
// shipped, bounded by the same version cap the worker applies.
package cluster

import "github.com/erdos-go/erdos/internal/core/state"

// trimCheckpoints returns cps reduced to what the leader has not seen:
// operators whose newest commit is already acked are dropped entirely, and
// the surviving checkpoints lose every Older version at or below the acked
// watermark. Checkpoints are values, so trimming never aliases into the
// worker's own snapshots.
func trimCheckpoints(cps map[string]state.Checkpoint, acked map[string]uint64) map[string]state.Checkpoint {
	if len(acked) == 0 {
		return cps
	}
	out := make(map[string]state.Checkpoint, len(cps))
	for op, cp := range cps {
		a, ok := acked[op]
		if !ok {
			out[op] = cp
			continue
		}
		if cp.L <= a {
			// Nothing committed since the ack: the leader's retained
			// snapshot is already current, skip the operator.
			continue
		}
		var older []state.Version
		for _, v := range cp.Older {
			if v.L > a {
				older = append(older, v)
			}
		}
		cp.Older = older
		out[op] = cp
	}
	return out
}

// mergeCheckpoint splices a trimmed delta onto the retained checkpoint:
// retained versions strictly below the delta's oldest carried version are
// kept underneath it, bounded by the same cap state.Snapshot applies so the
// leader's copy never outgrows what a full heartbeat would have shipped.
func mergeCheckpoint(old, delta state.Checkpoint) state.Checkpoint {
	if delta.L < old.L {
		// Heartbeats are ordered on one TCP stream, so a regressing delta
		// means the operator was re-adopted with rewound state; the fresh
		// snapshot is authoritative.
		return delta
	}
	oldest := delta.L
	if len(delta.Older) > 0 {
		oldest = delta.Older[0].L
	}
	var tail []state.Version
	for _, v := range old.Older {
		if v.L < oldest {
			tail = append(tail, v)
		}
	}
	if old.HasState && old.L < oldest {
		tail = append(tail, state.Version{L: old.L, State: old.State})
	}
	merged := delta
	merged.Older = append(tail, delta.Older...)
	if limit := state.MaxCheckpointVersions - 1; len(merged.Older) > limit {
		merged.Older = merged.Older[len(merged.Older)-limit:]
	}
	return merged
}

// mergeCheckpoints folds a heartbeat's checkpoint delta into the leader's
// retained map. Operators absent from the delta keep their retained
// snapshot — that is exactly the steady-state case the trim creates.
func mergeCheckpoints(retained, delta map[string]state.Checkpoint) map[string]state.Checkpoint {
	out := make(map[string]state.Checkpoint, len(retained)+len(delta))
	for op, cp := range retained {
		out[op] = cp
	}
	for op, cp := range delta {
		if old, ok := retained[op]; ok {
			cp = mergeCheckpoint(old, cp)
		}
		out[op] = cp
	}
	return out
}
