package cluster

import (
	"bytes"
	"encoding/gob"
	"sync"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/state"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/worker"
)

// mkCheckpoint builds a multi-version checkpoint with one fat blob per
// logical time, newest last.
func mkCheckpoint(blob int, ls ...uint64) state.Checkpoint {
	cp := state.Checkpoint{HasState: true}
	for i, l := range ls {
		b := bytes.Repeat([]byte{byte(l)}, blob)
		if i == len(ls)-1 {
			cp.L, cp.State = l, b
		} else {
			cp.Older = append(cp.Older, state.Version{L: l, State: b})
		}
	}
	return cp
}

func versionLs(cp state.Checkpoint) []uint64 {
	var ls []uint64
	for _, v := range cp.Older {
		ls = append(ls, v.L)
	}
	return append(ls, cp.L)
}

// TestTrimAndMergeCheckpoints: trimming against an acked watermark plus the
// leader-side splice must reconstruct exactly the checkpoint a full
// heartbeat would have shipped — and the trimmed wire message must be a
// small fraction of the full one.
func TestTrimAndMergeCheckpoints(t *testing.T) {
	const blob = 4 << 10
	full := mkCheckpoint(blob, 1, 2, 3, 4, 5)

	// Nothing acked: the checkpoint ships untouched.
	got := trimCheckpoints(map[string]state.Checkpoint{"op": full}, nil)
	if len(got["op"].Older) != 4 {
		t.Fatalf("unacked trim dropped versions: %v", versionLs(got["op"]))
	}

	// Acked through 3: only versions 4 and 5 travel.
	delta := trimCheckpoints(map[string]state.Checkpoint{"op": full}, map[string]uint64{"op": 3})
	if ls := versionLs(delta["op"]); len(ls) != 2 || ls[0] != 4 || ls[1] != 5 {
		t.Fatalf("trimmed versions = %v, want [4 5]", ls)
	}

	// The leader retains through 3; splicing the delta must reconstruct
	// the full version set, byte for byte.
	retained := mkCheckpoint(blob, 1, 2, 3)
	merged := mergeCheckpoints(map[string]state.Checkpoint{"op": retained}, delta)
	mls := versionLs(merged["op"])
	fls := versionLs(full)
	if len(mls) != len(fls) {
		t.Fatalf("merged versions = %v, want %v", mls, fls)
	}
	for i := range mls {
		if mls[i] != fls[i] {
			t.Fatalf("merged versions = %v, want %v", mls, fls)
		}
	}
	if !bytes.Equal(merged["op"].Older[0].State, full.Older[0].State) ||
		!bytes.Equal(merged["op"].State, full.State) {
		t.Fatal("merged state bytes differ from the full checkpoint")
	}

	// Everything acked: the operator drops out of the heartbeat entirely.
	if got := trimCheckpoints(map[string]state.Checkpoint{"op": full}, map[string]uint64{"op": 5}); len(got) != 0 {
		t.Fatalf("fully-acked checkpoint still shipped: %v", got)
	}

	// A rewound delta (re-adopted operator) replaces the retained copy
	// outright rather than splicing a bogus newer tail underneath.
	rewound := mkCheckpoint(blob, 2)
	m := mergeCheckpoint(full, rewound)
	if ls := versionLs(m); len(ls) != 1 || ls[0] != 2 {
		t.Fatalf("rewound merge kept stale versions: %v", ls)
	}

	// The steady-state wire payload must collapse: compare encoded
	// heartbeats with full checkpoints vs fully-trimmed ones.
	encode := func(cps map[string]state.Checkpoint) int {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(ctrlMsg{M: heartbeatMsg{Name: "w", Checkpoints: cps}}); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	fullSz := encode(map[string]state.Checkpoint{"op": full})
	steadySz := encode(trimCheckpoints(map[string]state.Checkpoint{"op": full}, map[string]uint64{"op": 5}))
	if steadySz*8 > fullSz {
		t.Fatalf("steady-state heartbeat %dB vs full %dB, want <1/8", steadySz, fullSz)
	}

	// The splice is bounded like state.Snapshot: merging a long retained
	// tail under a delta never exceeds the version cap.
	var many []uint64
	for l := uint64(1); l <= state.MaxCheckpointVersions+5; l++ {
		many = append(many, l)
	}
	wide := mkCheckpoint(16, many...)
	d := trimCheckpoints(map[string]state.Checkpoint{"op": wide}, map[string]uint64{"op": many[len(many)-2]})
	bounded := mergeCheckpoints(map[string]state.Checkpoint{"op": wide}, d)
	if n := len(bounded["op"].Older); n > state.MaxCheckpointVersions-1 {
		t.Fatalf("merged Older has %d versions, cap is %d", n, state.MaxCheckpointVersions-1)
	}
}

// blobState is deliberately fat so checkpoint payload dominates heartbeat
// size and the steady-state drop is unmistakable.
type blobState struct {
	N    int
	Data []byte
}

func init() { state.RegisterState(&blobState{}) }

// TestHeartbeatPayloadShrinksAtSteadyState runs a live cluster with a
// stateful operator carrying ~8KB per committed version and asserts the
// delta machinery end to end: heartbeats are fat only while new versions
// exist, collapse once the leader has acked them, and the leader's retained
// checkpoint still accumulates the full version tail for failover.
func TestHeartbeatPayloadShrinksAtSteadyState(t *testing.T) {
	const hb = 50 * time.Millisecond

	g := graph.New()
	in := g.AddStream("in", "int")
	out := g.AddStream("out", "int")
	if err := g.MarkIngest(in); err != nil {
		t.Fatal(err)
	}
	err := g.AddOperator(&operator.Spec{
		Name: "blob", Placement: "w2",
		Inputs: []stream.ID{in}, Outputs: []stream.ID{out},
		AutoWatermark: true,
		NewState: func() state.Store {
			return state.NewVersioned(&blobState{}, func(v any) any {
				c := *v.(*blobState)
				c.Data = append([]byte(nil), c.Data...)
				return &c
			})
		},
		OnData: func(ctx *operator.Context, _ int, m message.Message) {
			s := ctx.State().(*blobState)
			s.N += m.Payload.(int)
			s.Data = bytes.Repeat([]byte{byte(s.N)}, 8<<10)
		},
		OnWatermark: func(ctx *operator.Context) {
			_ = ctx.Send(0, ctx.Timestamp, ctx.State().(*blobState).N)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	names := []string{"w1", "w2"}
	l, err := NewLeader("127.0.0.1:0", names, g,
		map[stream.ID]string{in: "w1"}, nil,
		WithHeartbeat(hb, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Stop()

	nodes := make([]*Node, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			nodes[i], errs[i] = Join(l.Addr(), name, g, worker.Options{})
		}(i, name)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("join %d: %v", i, errs[i])
		}
		defer nodes[i].Close()
	}
	if err := l.Wait(); err != nil {
		t.Fatal(err)
	}

	const versions = 10
	for l := uint64(1); l <= versions; l++ {
		if err := nodes[0].Worker.Inject(in, message.Data(ts(l), 1)); err != nil {
			t.Fatal(err)
		}
		if err := nodes[0].Worker.Inject(in, message.Watermark(ts(l))); err != nil {
			t.Fatal(err)
		}
	}

	// Track the fattest heartbeat w2 sends while the leader catches up to
	// the newest committed version.
	var peak uint64
	deadline := time.Now().Add(5 * time.Second)
	for {
		if b := nodes[1].HeartbeatBytes(); b > peak {
			peak = b
		}
		l.mu.Lock()
		cp, ok := l.checkpoints["w2"]["blob"]
		l.mu.Unlock()
		if ok && cp.L == versions {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leader never retained version %d (have %+v)", versions, ok)
		}
		time.Sleep(time.Millisecond)
	}
	if peak < 8<<10 {
		t.Fatalf("peak heartbeat only %dB — fat checkpoints never shipped?", peak)
	}

	// Steady state: no new commits, so after the ack round-trip every
	// subsequent heartbeat must carry no checkpoint payload at all.
	deadline = time.Now().Add(5 * time.Second)
	for {
		b := nodes[1].HeartbeatBytes()
		if b > 0 && b < peak/8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("steady-state heartbeat still %dB (peak %dB), want <1/8 of peak", b, peak)
		}
		time.Sleep(hb / 2)
	}

	// Despite never re-shipping, the leader's retained checkpoint holds
	// the accumulated version tail — the failover path sees exactly what
	// full heartbeats would have given it.
	l.mu.Lock()
	cp := l.checkpoints["w2"]["blob"]
	l.mu.Unlock()
	if cp.L != versions || len(cp.Older) < versions-2 {
		t.Fatalf("retained checkpoint L=%d with %d older versions, want L=%d with a near-full tail",
			cp.L, len(cp.Older), versions)
	}
}
