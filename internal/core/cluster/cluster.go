// Package cluster implements ERDOS' leader-worker architecture (§6 of the
// paper). The leader owns a TCP control plane over which workers register;
// it partitions the operator graph, distributes the schedule and stream
// routing table, synchronizes initialization so every operator is ready
// before any message flows, and then gets out of the way — the data plane
// (package comm) runs worker-to-worker, keeping the leader off the critical
// path.
package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"sync"

	"github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/worker"
)

// Route describes where one stream's messages are produced and which remote
// workers need them forwarded.
type Route struct {
	Stream    uint64
	Producer  string
	Consumers []string
}

// Schedule is the leader's placement decision.
type Schedule struct {
	// Assignments maps operator name to worker name.
	Assignments map[string]string
	// Routes lists cross-worker forwarding rules.
	Routes []Route
	// PeerAddrs maps worker name to its data-plane address.
	PeerAddrs map[string]string
}

// control plane message types
type registerMsg struct {
	Name     string
	DataAddr string
}
type scheduleMsg struct{ Schedule Schedule }
type readyMsg struct{ Name string }
type startMsg struct{}

func init() {
	gob.Register(registerMsg{})
	gob.Register(scheduleMsg{})
	gob.Register(readyMsg{})
	gob.Register(startMsg{})
}

// Placement computes the operator assignment for a graph: an operator's
// explicit Placement wins; unplaced operators in an affinity group follow
// the group's first assigned member (the whole group consumes one
// round-robin slot); remaining operators are assigned round-robin.
func Placement(g *graph.Graph, workers []string) (map[string]string, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers")
	}
	valid := make(map[string]bool, len(workers))
	for _, w := range workers {
		valid[w] = true
	}
	assign := make(map[string]string)
	groupWorker := make(map[int]string)
	next := 0
	for _, op := range g.Operators() {
		gid, grouped := g.AffinityOf(op.Name)
		if op.Placement != "" {
			if !valid[op.Placement] {
				return nil, fmt.Errorf("cluster: operator %q pinned to unknown worker %q", op.Name, op.Placement)
			}
			assign[op.Name] = op.Placement
			if grouped {
				if _, ok := groupWorker[gid]; !ok {
					groupWorker[gid] = op.Placement
				}
			}
			continue
		}
		if grouped {
			if w, ok := groupWorker[gid]; ok {
				assign[op.Name] = w
				continue
			}
		}
		w := workers[next%len(workers)]
		next++
		assign[op.Name] = w
		if grouped {
			groupWorker[gid] = w
		}
	}
	return assign, nil
}

// Routes computes the cross-worker forwarding table. ingestAt names the
// worker on which the application injects each ingest stream (defaulting to
// the first worker); extractAt lists extra workers that need a stream
// forwarded for extraction. Deadline-feed streams (pDP's allocations) are
// forwarded to every other worker: each worker subscribes its local
// dynamic-deadline sources to its own broadcaster, so all of them need the
// updates regardless of operator placement.
func Routes(g *graph.Graph, assign map[string]string, workers []string, ingestAt map[stream.ID]string, extractAt map[stream.ID][]string) []Route {
	feeds := make(map[stream.ID]bool)
	for _, f := range g.DeadlineFeeds() {
		feeds[f.Stream] = true
	}
	var routes []Route
	for _, s := range g.Streams() {
		producer := ""
		if w, ok := g.Writer(s.ID); ok {
			producer = assign[w]
		} else if s.Ingest {
			if w, ok := ingestAt[s.ID]; ok {
				producer = w
			} else {
				producer = workers[0]
			}
		} else {
			continue
		}
		consumers := make(map[string]bool)
		for _, r := range g.Readers(s.ID) {
			if w := assign[r]; w != producer {
				consumers[w] = true
			}
		}
		for _, w := range extractAt[s.ID] {
			if w != producer {
				consumers[w] = true
			}
		}
		if feeds[s.ID] {
			for _, w := range workers {
				if w != producer {
					consumers[w] = true
				}
			}
		}
		if len(consumers) == 0 {
			continue
		}
		list := make([]string, 0, len(consumers))
		for w := range consumers {
			list = append(list, w)
		}
		sort.Strings(list)
		routes = append(routes, Route{Stream: uint64(s.ID), Producer: producer, Consumers: list})
	}
	return routes
}

// Leader runs the control plane for a fixed set of workers.
type Leader struct {
	ln      net.Listener
	workers []string
	g       *graph.Graph
	ingest  map[stream.ID]string
	extract map[stream.ID][]string

	err  error
	done chan struct{}
}

// NewLeader starts a leader on addr expecting the named workers to join.
func NewLeader(addr string, workers []string, g *graph.Graph, ingestAt map[stream.ID]string, extractAt map[stream.ID][]string) (*Leader, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &Leader{
		ln: ln, workers: workers, g: g,
		ingest: ingestAt, extract: extractAt,
		done: make(chan struct{}),
	}
	go l.run()
	return l, nil
}

// Addr returns the leader's control-plane address.
func (l *Leader) Addr() string { return l.ln.Addr().String() }

// Wait blocks until the cluster is started (or the leader failed).
func (l *Leader) Wait() error {
	<-l.done
	return l.err
}

func (l *Leader) run() {
	defer close(l.done)
	defer l.ln.Close()
	type session struct {
		conn net.Conn
		enc  *gob.Encoder
		dec  *gob.Decoder
		reg  registerMsg
	}
	sessions := make(map[string]*session)
	for len(sessions) < len(l.workers) {
		conn, err := l.ln.Accept()
		if err != nil {
			l.err = err
			return
		}
		s := &session{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
		if err := s.dec.Decode(&s.reg); err != nil {
			l.err = fmt.Errorf("cluster: register decode: %w", err)
			return
		}
		sessions[s.reg.Name] = s
	}
	defer func() {
		for _, s := range sessions {
			s.conn.Close()
		}
	}()
	assign, err := Placement(l.g, l.workers)
	if err != nil {
		l.err = err
		return
	}
	peerAddrs := make(map[string]string, len(sessions))
	for name, s := range sessions {
		peerAddrs[name] = s.reg.DataAddr
	}
	sched := Schedule{
		Assignments: assign,
		Routes:      Routes(l.g, assign, l.workers, l.ingest, l.extract),
		PeerAddrs:   peerAddrs,
	}
	for _, s := range sessions {
		if err := s.enc.Encode(scheduleMsg{Schedule: sched}); err != nil {
			l.err = err
			return
		}
	}
	for _, s := range sessions {
		var r readyMsg
		if err := s.dec.Decode(&r); err != nil {
			l.err = fmt.Errorf("cluster: ready decode: %w", err)
			return
		}
	}
	for _, s := range sessions {
		if err := s.enc.Encode(startMsg{}); err != nil {
			l.err = err
			return
		}
	}
}

// Node is one worker process: its runtime, its data-plane transport, and
// the forwarding rules installed from the leader's schedule.
type Node struct {
	Name      string
	Worker    *worker.Worker
	Transport *comm.Transport
	Schedule  Schedule

	mu        sync.Mutex
	forwarded uint64
}

// Join connects to the leader at addr, registers, builds the local worker
// for graph g, wires the data plane per the schedule, and returns once the
// leader starts the cluster.
func Join(addr, name string, g *graph.Graph, opts worker.Options) (*Node, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)

	n := &Node{Name: name}
	tr, err := comm.Listen(name, "127.0.0.1:0", func(_ string, id stream.ID, m message.Message) {
		if n.Worker != nil {
			_ = n.Worker.Inject(id, m)
		}
	})
	if err != nil {
		return nil, err
	}
	n.Transport = tr

	if err := enc.Encode(registerMsg{Name: name, DataAddr: tr.Addr()}); err != nil {
		tr.Close()
		return nil, err
	}
	var sm scheduleMsg
	if err := dec.Decode(&sm); err != nil {
		tr.Close()
		return nil, fmt.Errorf("cluster: schedule decode: %w", err)
	}
	n.Schedule = sm.Schedule

	opts.Name = name
	assign := sm.Schedule.Assignments
	opts.Owns = func(op string) bool { return assign[op] == name }
	w, err := worker.New(g, opts)
	if err != nil {
		tr.Close()
		return nil, err
	}
	n.Worker = w

	// Establish the data-plane mesh: dial every peer whose name orders
	// after ours; the accept side completes the other half of each pair.
	for peerName, peerAddr := range sm.Schedule.PeerAddrs {
		if peerName <= name {
			continue
		}
		if err := tr.Dial(peerAddr); err != nil {
			n.Close()
			return nil, fmt.Errorf("cluster: dial %s: %w", peerName, err)
		}
	}

	// Install forwarding for streams produced here with remote readers.
	for _, r := range sm.Schedule.Routes {
		if r.Producer != name {
			continue
		}
		consumers := append([]string(nil), r.Consumers...)
		id := stream.ID(r.Stream)
		err := w.Subscribe(id, func(m message.Message) {
			// The producing operator's deadline slack bounds how long the
			// transport may hold the frame for coalescing; messages with no
			// armed deadline flush on queue drain as before.
			var hint comm.FlushHint
			if dl, ok := w.SendDeadline(id, m.Timestamp); ok {
				hint.FlushBy = dl
			}
			for _, c := range consumers {
				if err := tr.SendWithHint(c, id, m, hint); err == nil {
					n.mu.Lock()
					n.forwarded++
					n.mu.Unlock()
				}
			}
		})
		if err != nil {
			n.Close()
			return nil, err
		}
	}

	if err := enc.Encode(readyMsg{Name: name}); err != nil {
		n.Close()
		return nil, err
	}
	var st startMsg
	if err := dec.Decode(&st); err != nil {
		n.Close()
		return nil, fmt.Errorf("cluster: start decode: %w", err)
	}
	return n, nil
}

// Forwarded returns how many messages this node shipped to remote peers.
func (n *Node) Forwarded() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.forwarded
}

// Close tears the node down.
func (n *Node) Close() {
	if n.Transport != nil {
		n.Transport.Close()
	}
	if n.Worker != nil {
		n.Worker.Stop()
	}
}
