// Package cluster implements ERDOS' leader-worker architecture (§6 of the
// paper). The leader owns a TCP control plane over which workers register;
// it partitions the operator graph, distributes the schedule and stream
// routing table, and synchronizes initialization so every operator is ready
// before any message flows. The data plane (package comm) runs
// worker-to-worker, keeping the leader off the critical path.
//
// With a heartbeat period configured the leader stays resident after start
// (§3.4): workers send periodic heartbeats carrying lazy state checkpoints,
// the leader declares a worker dead after a configurable silence, re-places
// its operators onto survivors (affinity groups intact), and pushes an
// updated Schedule/Routes delta; survivors adopt the orphaned operators,
// restore their time-versioned state at the last consistent watermark, and
// replay recent traffic to the new owners, while the outage itself surfaces
// to the application as deadline misses handled by the existing DEH
// policies. With a zero heartbeat period the leader behaves exactly as
// before: register → schedule → start → get out of the way.
package cluster

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/erdos-go/erdos/internal/core/cluster/elastic"
	"github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/comm/shm"
	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/state"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/worker"
)

// Route describes where one stream's messages are produced and which remote
// workers need them forwarded.
type Route struct {
	Stream    uint64
	Producer  string
	Consumers []string
	// Broadcast marks a fanout edge (two or more consumers): the producer
	// may cover same-host consumers with a single publish onto its
	// shared-memory broadcast ring instead of one send per link.
	Broadcast bool
}

// Schedule is the leader's placement decision.
type Schedule struct {
	// Assignments maps operator name to worker name.
	Assignments map[string]string
	// Routes lists cross-worker forwarding rules.
	Routes []Route
	// PeerAddrs maps worker name to its data-plane address.
	PeerAddrs map[string]string
	// PeerHosts maps worker name to its advertised host identity; two
	// workers sharing an entry are candidates for the shared-memory ring
	// backend. Workers that did not advertise a host are absent.
	PeerHosts map[string]string
	// PeerShm maps worker name to its shared-memory rendezvous address,
	// dialable as "shm://<addr>" by peers on the same host.
	PeerShm map[string]string
	// PeerBShm maps worker name to its SPMC broadcast-ring rendezvous
	// address: same-host consumers of that worker's Broadcast routes join
	// the ring and receive every fanout frame from one publish.
	PeerBShm map[string]string
	// PeerRelay maps stream → remote host → the worker designated to relay
	// that stream's fanout on that host: the producer ships one tagRelay
	// envelope to the relay, which republishes locally (its broadcast ring
	// for ring members, pairwise shared-frame for the rest), so cross-host
	// wire cost is one frame per host instead of one per consumer. Elected
	// per Broadcast route, recomputed on every join/drain/failover.
	PeerRelay map[uint64]map[string]string
	// Heartbeat is the worker heartbeat period; zero disables the
	// resident control plane (one-shot leader).
	Heartbeat time.Duration
	// FailAfter is the heartbeat silence after which the leader declares
	// a worker dead.
	FailAfter time.Duration
	// Epoch increments with every reschedule; workers ignore deltas for
	// epochs they have already applied.
	Epoch uint64
	// Tenants lists the admitted tenant pipelines (sorted). A node seeing
	// an unfamiliar name resolves the tenant's graph locally (the graphs
	// carry Go callbacks, so they cannot travel over gob) and extends its
	// worker before adopting any of the tenant's operators.
	Tenants []string
}

// Control plane message types. The registration/start phase exchanges the
// typed messages directly; after start, the resident control plane wraps
// every message in ctrlMsg so both directions can carry multiple types over
// the same gob stream.
type registerMsg struct {
	Name     string
	DataAddr string
	// HostID is the worker's host identity (empty when host locality is
	// off); workers advertising the same HostID get ring links. ShmAddr is
	// the worker's shared-memory rendezvous address for those links.
	// BShmAddr is the rendezvous address of the worker's SPMC broadcast
	// ring, joined by same-host consumers of its Broadcast routes.
	HostID   string
	ShmAddr  string
	BShmAddr string
}
type scheduleMsg struct{ Schedule Schedule }
type readyMsg struct{ Name string }
type startMsg struct{}

// ctrlMsg is the post-start envelope.
type ctrlMsg struct{ M any }

// heartbeatMsg is sent worker→leader every Schedule.Heartbeat. Checkpoints
// carries the worker's operator state snapshots (lazy checkpointing: the
// recent committed versions per operator ride along with the heartbeat).
// Checkpoints are shipped as deltas against the leader's acknowledged
// version watermark (checkpointAckMsg): versions the leader already retains
// are trimmed, and operators with nothing new are omitted entirely, so a
// steady-state heartbeat carries no state payload at all. Frontiers carries
// the worker's per-input-stream received watermarks, the raw material for
// the consistent restore cut on failover. A stale frontier only understates
// progress, so the cut it produces is conservative — never unsafe.
type heartbeatMsg struct {
	Name        string
	Seq         uint64
	Checkpoints map[string]state.Checkpoint
	Frontiers   map[stream.ID]uint64
	Congestion  CongestionReport
	// OpMisses is the cumulative urgency-miss count per local operator,
	// the per-tenant slice of Congestion.UrgencyMisses: the leader
	// differences consecutive values and aggregates by tenant so one
	// tenant's blown deadlines are attributable to it alone.
	OpMisses map[string]uint64
}

// CongestionReport is a worker's queueing-pressure snapshot, shipped in
// every heartbeat: instantaneous lattice queue depths, the cumulative count
// of callbacks dispatched after their deadline had already expired, and the
// per-peer data-plane coalescing stats. The leader folds these into its
// placement decisions so orphans land away from saturated workers.
type CongestionReport struct {
	// Ready/Pending are the worker's lattice queue depths at snapshot time.
	Ready   int64
	Pending int64
	// UrgencyMisses is cumulative; the leader differences consecutive
	// heartbeats to get a rate.
	UrgencyMisses uint64
	// Peers carries per-link coalescing telemetry keyed by peer name — the
	// raw material for spotting hot edges.
	Peers map[string]comm.PeerCoalesceStats
	// RelayRepublished is the cumulative count of local deliveries this
	// worker performed as a relay (fanout copies it absorbed on behalf of
	// remote producers); RelayRingSpills counts records its broadcast ring
	// force-published mid-train while republishing oversized frames. High
	// values mark the worker as a fanout trunk for placement scoring.
	RelayRepublished uint64
	RelayRingSpills  uint64
}

// Score collapses a report into a single placement-ranking pressure value:
// instantaneous queue depth plus a heavily weighted recent urgency-miss
// rate (missDelta is the miss-count increase since the previous heartbeat —
// each one is a deadline the scheduler already blew, so it dominates mere
// backlog).
func (r CongestionReport) Score(missDelta uint64) int64 {
	return r.Ready + r.Pending + 8*int64(missDelta)
}

// rescheduleMsg is pushed leader→workers after a failure: the dead worker,
// the new schedule, the last known checkpoints of the orphaned operators
// for restore-on-migration, and per-orphan restore cuts (the newest
// watermark each may restore at so that no output a surviving consumer
// still needs is skipped; absent means unconstrained).
type rescheduleMsg struct {
	Dead        string
	Schedule    Schedule
	Checkpoints map[string]state.Checkpoint
	RestoreAt   map[string]uint64
}

// rescheduleAckMsg confirms a worker applied the delta for Epoch.
type rescheduleAckMsg struct {
	Name  string
	Epoch uint64
}

// checkpointAckMsg is the leader's version watermark, pushed back after a
// heartbeat that carried checkpoint payload: Acked[op] is the newest
// committed version L the leader now retains for op. The worker trims
// everything at or below the watermark from subsequent heartbeats — the
// leader splices those deltas onto its retained snapshots — so unchanged
// versions cross the control stream exactly once. A lost or stale ack only
// makes the next heartbeat larger than necessary, never incorrect.
type checkpointAckMsg struct {
	Acked map[string]uint64
}

// replayMsg is the leader's barrier release: every survivor has applied
// the Epoch delta (adopted operators are subscribed and fenced), so
// producers may now replay their retained windows and start forwarding to
// the new consumers. Without the barrier a replayed window could reach a
// worker before it adopts the consuming operator and be lost.
type replayMsg struct {
	Epoch uint64
}

// drainMsg is pushed leader→worker to freeze operators on a live donor:
// the named operators (nil means every local operator — a full drain) are
// retired, snapshotted, and removed, and the worker answers with
// drainReadyMsg carrying the fresh checkpoints. Unlike failover, the
// donor participates: its state is captured at the instant of the freeze
// rather than at the last heartbeat.
type drainMsg struct {
	Ops []string
}

// drainReadyMsg is the donor's answer to drainMsg: checkpoints of the
// released operators taken at the freeze, plus the donor's current
// frontiers (retained operators and extraction taps), fresher than any
// heartbeat the leader holds.
type drainReadyMsg struct {
	Name        string
	Checkpoints map[string]state.Checkpoint
	Frontiers   map[stream.ID]uint64
}

// drainDoneMsg tells a fully-drained worker that its operators live
// elsewhere and the replay barrier has released: it may now exit without
// losing anything.
type drainDoneMsg struct{}

func init() {
	gob.Register(registerMsg{})
	gob.Register(scheduleMsg{})
	gob.Register(readyMsg{})
	gob.Register(startMsg{})
	gob.Register(heartbeatMsg{})
	gob.Register(rescheduleMsg{})
	gob.Register(rescheduleAckMsg{})
	gob.Register(checkpointAckMsg{})
	gob.Register(replayMsg{})
	gob.Register(drainMsg{})
	gob.Register(drainReadyMsg{})
	gob.Register(drainDoneMsg{})
}

// Placement computes the operator assignment for a graph: an operator's
// explicit Placement wins; unplaced operators in an affinity group follow
// the group's first assigned member (the whole group consumes one
// round-robin slot); remaining operators are assigned round-robin.
func Placement(g graph.View, workers []string) (map[string]string, error) {
	return PlacementLoaded(g, workers, nil)
}

// PlacementLoaded is Placement with congestion steering: each round-robin
// slot is overridden when a strictly less-congested worker exists (score is
// the leader's per-worker CongestionReport.Score), so a restarted or
// re-planned graph keeps its hot operators off workers that are already
// saturated. Affinity grouping and explicit pins always win over steering;
// with nil or uniform scores the result is exactly Placement's.
func PlacementLoaded(g graph.View, workers []string, score map[string]int64) (map[string]string, error) {
	return PlacementTopo(g, workers, score, nil)
}

// opNeighbors is the operator adjacency of g: for each operator, the
// operators it exchanges stream traffic with (producers of its inputs and
// consumers of its outputs) — the edges whose transport cost placement can
// influence.
func opNeighbors(g graph.View) map[string][]string {
	producer := make(map[stream.ID]string)
	for _, op := range g.Operators() {
		for _, out := range op.Outputs {
			producer[out] = op.Name
		}
	}
	nb := make(map[string][]string)
	for _, op := range g.Operators() {
		for _, in := range op.Inputs {
			if p, ok := producer[in]; ok && p != op.Name {
				nb[op.Name] = append(nb[op.Name], p)
				nb[p] = append(nb[p], op.Name)
			}
		}
	}
	return nb
}

// neighborHosts collects the advertised hosts of op's already-placed graph
// neighbors: the hosts on which a ring edge (rather than a TCP edge) to
// this operator could exist. Workers without a host advert contribute
// nothing.
func neighborHosts(neighbors map[string][]string, assign, hosts map[string]string, op string) map[string]bool {
	var nb map[string]bool
	for _, peer := range neighbors[op] {
		w, placed := assign[peer]
		if !placed {
			continue
		}
		if h := hosts[w]; h != "" {
			if nb == nil {
				nb = make(map[string]bool)
			}
			nb[h] = true
		}
	}
	return nb
}

// PlacementTopo is PlacementLoaded with host topology: hosts maps worker
// name to its advertised host identity (from registration), and a stream
// edge between two workers on the same host rides a shared-memory ring —
// several times cheaper than loopback TCP. Congestion still dominates:
// host locality only re-breaks ties among equally-scored workers, pulling
// an operator onto a host where one of its graph neighbors already landed.
// With nil hosts the result is exactly PlacementLoaded's.
func PlacementTopo(g graph.View, workers []string, score map[string]int64, hosts map[string]string) (map[string]string, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers")
	}
	valid := make(map[string]bool, len(workers))
	for _, w := range workers {
		valid[w] = true
	}
	assign := make(map[string]string)
	groupWorker := make(map[int]string)
	var neighbors map[string][]string
	if len(hosts) > 0 {
		neighbors = opNeighbors(g)
	}
	next := 0
	pickWorker := func(nbHosts map[string]bool) string {
		w := workers[next%len(workers)]
		next++
		// Congestion steering: keep the rotation's choice unless some
		// worker is strictly less congested (first such worker in
		// registration order, so the result stays deterministic).
		for _, c := range workers {
			if score[c] < score[w] {
				w = c
			}
		}
		// Host-local steering: among equally congested workers, prefer
		// the first (registration order) on a host where a neighbor of
		// this operator already lives, so the edge becomes a ring edge.
		if len(nbHosts) > 0 && !nbHosts[hosts[w]] {
			for _, c := range workers {
				if score[c] == score[w] && nbHosts[hosts[c]] {
					w = c
					break
				}
			}
		}
		return w
	}
	for _, op := range g.Operators() {
		gid, grouped := g.AffinityOf(op.Name)
		if op.Placement != "" {
			if !valid[op.Placement] {
				return nil, fmt.Errorf("cluster: operator %q pinned to unknown worker %q", op.Name, op.Placement)
			}
			assign[op.Name] = op.Placement
			if grouped {
				if _, ok := groupWorker[gid]; !ok {
					groupWorker[gid] = op.Placement
				}
			}
			continue
		}
		if grouped {
			if w, ok := groupWorker[gid]; ok {
				assign[op.Name] = w
				continue
			}
		}
		w := pickWorker(neighborHosts(neighbors, assign, hosts, op.Name))
		assign[op.Name] = w
		if grouped {
			groupWorker[gid] = w
		}
	}
	return assign, nil
}

// Reassign re-places a dead worker's operators onto the survivors: affinity
// groups move as a unit (following any surviving member's worker when one
// exists), pins to the dead worker are treated as unpinned, and each orphan
// lands on the least-loaded survivor at that point (ties break
// lexicographically), keeping the result deterministic.
func Reassign(g graph.View, assign map[string]string, dead string, survivors []string) map[string]string {
	return ReassignLoaded(g, assign, dead, survivors, nil)
}

// ReassignLoaded is Reassign with congestion awareness: orphans still follow
// their affinity group's surviving worker when one exists (splitting a
// co-located chain would cost more than any queueing relief buys), but
// otherwise land on the survivor with the lowest congestion score — the
// leader's per-worker CongestionReport.Score from the latest heartbeats —
// breaking score ties by operator load and then name. A hot edge whose dead
// endpoint would re-land next to a saturated peer is thereby steered to a
// quieter worker, affinity permitting. With nil scores this is exactly
// Reassign's least-loaded placement, so the result stays deterministic for
// a given score snapshot.
func ReassignLoaded(g graph.View, assign map[string]string, dead string, survivors []string, score map[string]int64) map[string]string {
	return ReassignTopo(g, assign, dead, survivors, score, nil)
}

// ReassignTopo is ReassignLoaded with host topology (see PlacementTopo):
// an orphan whose congestion-score candidates tie lands on the survivor
// sharing a host with one of its graph neighbors, so the rescued edge comes
// back as a ring edge instead of a TCP edge. Affinity and congestion still
// rank first; with nil hosts the result is exactly ReassignLoaded's.
func ReassignTopo(g graph.View, assign map[string]string, dead string, survivors []string, score map[string]int64, hosts map[string]string) map[string]string {
	next := make(map[string]string, len(assign))
	load := make(map[string]int, len(survivors))
	for _, w := range survivors {
		load[w] = 0
	}
	groupWorker := make(map[int]string)
	for op, w := range assign {
		if w == dead {
			continue
		}
		next[op] = w
		load[w]++
		if gid, ok := g.AffinityOf(op); ok {
			groupWorker[gid] = w
		}
	}
	var neighbors map[string][]string
	if len(hosts) > 0 {
		neighbors = opNeighbors(g)
	}
	leastLoaded := func(nbHosts map[string]bool) string {
		best := ""
		for _, w := range survivors {
			switch {
			case best == "":
				best = w
			case score[w] != score[best]:
				if score[w] < score[best] {
					best = w
				}
			case nbHosts[hosts[w]] != nbHosts[hosts[best]]:
				// Equal congestion: prefer the survivor whose host
				// carries one of the orphan's neighbors (ring edge).
				if nbHosts[hosts[w]] {
					best = w
				}
			case load[w] != load[best]:
				if load[w] < load[best] {
					best = w
				}
			case w < best:
				best = w
			}
		}
		return best
	}
	for _, op := range g.Operators() {
		if assign[op.Name] != dead {
			continue
		}
		gid, grouped := g.AffinityOf(op.Name)
		var target string
		if grouped {
			if w, ok := groupWorker[gid]; ok {
				target = w
			}
		}
		if target == "" {
			target = leastLoaded(neighborHosts(neighbors, next, hosts, op.Name))
		}
		next[op.Name] = target
		load[target]++
		if grouped {
			groupWorker[gid] = target
		}
	}
	return next
}

// Routes computes the cross-worker forwarding table. ingestAt names the
// worker on which the application injects each ingest stream (defaulting to
// the first worker); extractAt lists extra workers that need a stream
// forwarded for extraction. Deadline-feed streams (pDP's allocations) are
// forwarded to every other worker: each worker subscribes its local
// dynamic-deadline sources to its own broadcaster, so all of them need the
// updates regardless of operator placement.
func Routes(g graph.View, assign map[string]string, workers []string, ingestAt map[stream.ID]string, extractAt map[stream.ID][]string) []Route {
	feeds := make(map[stream.ID]bool)
	for _, f := range g.DeadlineFeeds() {
		feeds[f.Stream] = true
	}
	var routes []Route
	for _, s := range g.Streams() {
		producer := ""
		if w, ok := g.Writer(s.ID); ok {
			producer = assign[w]
		} else if s.Ingest {
			if w, ok := ingestAt[s.ID]; ok {
				producer = w
			} else {
				producer = workers[0]
			}
		} else {
			continue
		}
		consumers := make(map[string]bool)
		for _, r := range g.Readers(s.ID) {
			if w := assign[r]; w != producer {
				consumers[w] = true
			}
		}
		for _, w := range extractAt[s.ID] {
			if w != producer {
				consumers[w] = true
			}
		}
		if feeds[s.ID] {
			for _, w := range workers {
				if w != producer {
					consumers[w] = true
				}
			}
		}
		if len(consumers) == 0 {
			continue
		}
		list := make([]string, 0, len(consumers))
		for w := range consumers {
			list = append(list, w)
		}
		sort.Strings(list)
		routes = append(routes, Route{Stream: uint64(s.ID), Producer: producer,
			Consumers: list, Broadcast: len(list) >= 2})
	}
	return routes
}

// session is the leader's view of one worker's control connection. After
// the start phase the monitor goroutine is the only writer, so enc needs no
// extra locking.
type session struct {
	name string
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	reg  registerMsg
	// encMu serializes post-start writers on enc: the failover path pushes
	// reschedule and replay-barrier messages from the monitor goroutine
	// while readSession pushes checkpoint acks from the session reader.
	encMu sync.Mutex
}

// send encodes m under the session's writer lock.
func (s *session) send(m ctrlMsg) error {
	s.encMu.Lock()
	defer s.encMu.Unlock() //erdos:allow lockhold encMu exists to serialize writers on the single control stream
	return s.enc.Encode(m)
}

// Leader runs the control plane for a fixed set of workers.
type Leader struct {
	ln        net.Listener
	workers   []string
	gm        *graph.Multi
	heartbeat time.Duration
	failAfter time.Duration

	started chan struct{}
	done    chan struct{}
	quit    chan struct{}
	quitSet sync.Once
	wg      sync.WaitGroup

	// reconfigMu serializes every membership/placement reconfiguration —
	// failover, join admission, drain, migration, tenant submission — so
	// two epochs never build concurrently from the same base. Always
	// acquired before l.mu, never while holding it.
	reconfigMu sync.Mutex

	// autoscale policy (nil without WithAutoscale). The scaler is only
	// touched by the monitor goroutine; pool spawn/retire runs in a
	// detached goroutine guarded by scaleBusy so a slow migration never
	// wedges failure detection.
	pool   elastic.Pool
	scaler *elastic.Autoscaler

	mu          sync.Mutex
	err         error
	sessions    map[string]*session
	alive       map[string]bool
	lastBeat    map[string]time.Time
	ackEpoch    map[string]uint64
	checkpoints map[string]map[string]state.Checkpoint
	frontiers   map[string]map[stream.ID]uint64
	// congestion is each worker's latest heartbeat report; missBase and
	// missDelta turn the cumulative urgency-miss counter into a recent
	// rate (the increase over the previous heartbeat).
	congestion map[string]CongestionReport
	missBase   map[string]uint64
	missDelta  map[string]uint64
	assign     map[string]string
	sched      Schedule
	ingest     map[stream.ID]string
	extract    map[stream.ID][]string
	// events is a fixed-depth ring (evStart/evCount index it) so a
	// long-running elastic cluster's log cannot grow without bound.
	events  []Event
	evStart int
	evCount int
	evDepth int
	// members is the current scheduled worker set (sorted): joiners are
	// appended, drained and dead workers removed. draining marks workers
	// mid-drain — still heartbeating, excluded from placement candidate
	// sets and failure detection. drainWait routes each donor's
	// drainReadyMsg to the reconfiguration waiting on it.
	members   []string
	draining  map[string]bool
	drainWait map[string]chan drainReadyMsg
	// Tenancy: tenantOf tags each tenant operator with its tenant,
	// tenantLoad records declared admission loads, tenantCap is the
	// per-worker capacity (0 = admission off). opMissBase differences each
	// operator's cumulative urgency-miss counter per worker; tenantMiss
	// accumulates the deltas per tenant.
	tenantOf   map[string]string
	tenantLoad map[string]int64
	tenantCap  int64
	opMissBase map[string]map[string]uint64
	tenantMiss map[string]uint64
	// scaleBusy gates the autoscale loop to one reconfiguration in
	// flight; spawned tracks pool-created workers (the only ones a
	// scale-down may retire) and autoName numbers them.
	scaleBusy bool
	spawned   map[string]bool
	autoName  int
}

// LeaderOption configures NewLeader.
type LeaderOption func(*Leader)

// WithHeartbeat keeps the leader resident after start: workers heartbeat
// every period, and a worker silent for failAfter is declared dead and its
// operators re-placed. failAfter <= 0 defaults to 2x the period.
func WithHeartbeat(period, failAfter time.Duration) LeaderOption {
	return func(l *Leader) {
		l.heartbeat = period
		if failAfter <= 0 {
			failAfter = 2 * period
		}
		l.failAfter = failAfter
	}
}

// defaultEventDepth bounds Events() history when WithEventHistory is not
// given.
const defaultEventDepth = 1024

// WithEventHistory bounds the leader's event log to the most recent depth
// entries (default 1024). depth <= 0 keeps the default.
func WithEventHistory(depth int) LeaderOption {
	return func(l *Leader) {
		if depth > 0 {
			l.evDepth = depth
		}
	}
}

// WithTenantCapacity enables admission control: a tenant whose declared
// load would push the cluster's total tenant load beyond
// perWorker x (non-draining workers) is rejected by Submit. perWorker <= 0
// disables the check.
func WithTenantCapacity(perWorker int64) LeaderOption {
	return func(l *Leader) { l.tenantCap = perWorker }
}

// WithAutoscale attaches a worker pool and hysteresis config to the
// resident leader: sustained congestion above cfg.HighWater spawns a
// worker and migrates the hottest tenant onto it; a sustained idle
// cluster drains and retires the idlest pool-spawned worker.
func WithAutoscale(pool elastic.Pool, cfg elastic.Config) LeaderOption {
	return func(l *Leader) {
		l.pool = pool
		l.scaler = elastic.NewAutoscaler(cfg)
	}
}

// NewLeader starts a leader on addr expecting the named workers to join.
func NewLeader(addr string, workers []string, g *graph.Graph, ingestAt map[stream.ID]string, extractAt map[stream.ID][]string, opts ...LeaderOption) (*Leader, error) {
	gm, err := graph.NewMulti(g)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &Leader{
		ln: ln, workers: workers, gm: gm,
		ingest: ingestAt, extract: extractAt,
		started:     make(chan struct{}),
		done:        make(chan struct{}),
		quit:        make(chan struct{}),
		sessions:    make(map[string]*session),
		alive:       make(map[string]bool),
		lastBeat:    make(map[string]time.Time),
		ackEpoch:    make(map[string]uint64),
		checkpoints: make(map[string]map[string]state.Checkpoint),
		frontiers:   make(map[string]map[stream.ID]uint64),
		congestion:  make(map[string]CongestionReport),
		missBase:    make(map[string]uint64),
		missDelta:   make(map[string]uint64),
		evDepth:     defaultEventDepth,
		draining:    make(map[string]bool),
		drainWait:   make(map[string]chan drainReadyMsg),
		tenantOf:    make(map[string]string),
		tenantLoad:  make(map[string]int64),
		opMissBase:  make(map[string]map[string]uint64),
		tenantMiss:  make(map[string]uint64),
		spawned:     make(map[string]bool),
	}
	for _, o := range opts {
		o(l)
	}
	go l.run()
	return l, nil
}

// Addr returns the leader's control-plane address.
func (l *Leader) Addr() string { return l.ln.Addr().String() }

// scores folds the latest congestion reports into per-worker placement
// scores. Workers that never reported score zero.
func (l *Leader) scores() map[string]int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.scoresLocked()
}

// hostsLocked folds the workers' registration-time host adverts into the
// worker→host map the topology-aware placement variants consume. Workers
// that advertised no host are absent. Caller holds l.mu.
func (l *Leader) hostsLocked() map[string]string {
	var hosts map[string]string
	for name, s := range l.sessions {
		if s.reg.HostID == "" {
			continue
		}
		if hosts == nil {
			hosts = make(map[string]string)
		}
		hosts[name] = s.reg.HostID
	}
	return hosts
}

func (l *Leader) scoresLocked() map[string]int64 {
	if len(l.congestion) == 0 {
		return nil
	}
	out := make(map[string]int64, len(l.congestion))
	for w, r := range l.congestion {
		out[w] = r.Score(l.missDelta[w])
	}
	return out
}

// Congestion returns the latest congestion report heartbeat from each
// worker, for diagnostics and tests.
func (l *Leader) Congestion() map[string]CongestionReport {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]CongestionReport, len(l.congestion))
	for w, r := range l.congestion {
		out[w] = r
	}
	return out
}

// Wait blocks until the cluster is started (or the leader failed). A
// resident leader keeps running after Wait returns; use Stop to shut it
// down.
func (l *Leader) Wait() error {
	<-l.started
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Stop shuts a resident leader down and waits for its goroutines. One-shot
// leaders (no heartbeat) stop on their own; calling Stop is still safe.
func (l *Leader) Stop() {
	l.quitSet.Do(func() { close(l.quit) })
	<-l.done
}

func (l *Leader) setErr(err error) {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
}

func (l *Leader) run() {
	defer close(l.done)
	err := l.startPhase()
	if err != nil {
		l.setErr(err)
	}
	close(l.started)
	if err != nil || l.heartbeat <= 0 {
		l.closeSessions()
		l.ln.Close()
		return
	}
	// Resident mode: one reader per session keeps heartbeats and acks
	// flowing in; the monitor turns heartbeat silence into failover.
	now := time.Now()
	l.mu.Lock()
	sessions := make([]*session, 0, len(l.sessions))
	for _, s := range l.sessions {
		l.alive[s.name] = true
		l.lastBeat[s.name] = now
		sessions = append(sessions, s)
	}
	l.mu.Unlock()
	for _, s := range sessions {
		s := s
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			l.readSession(s)
		}()
	}
	// Elastic membership: late joiners dial the same control address the
	// initial workers did; each admission runs the join protocol off the
	// accept loop so a slow joiner never blocks the next one.
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		l.acceptLoop()
	}()
	l.monitor()
	l.closeSessions()
	l.ln.Close()
	l.wg.Wait()
}

// startPhase runs the original one-shot protocol: collect registrations,
// push the schedule, collect readies, broadcast start.
func (l *Leader) startPhase() error {
	registered := 0
	for registered < len(l.workers) {
		conn, err := l.ln.Accept()
		if err != nil {
			return err
		}
		s := &session{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
		if err := s.dec.Decode(&s.reg); err != nil {
			return fmt.Errorf("cluster: register decode: %w", err)
		}
		s.name = s.reg.Name
		l.mu.Lock()
		l.sessions[s.name] = s
		registered = len(l.sessions)
		l.mu.Unlock()
	}
	// At first start no heartbeats have arrived and the scores are empty —
	// pure round-robin — but a leader re-planning after congestion reports
	// came in steers the initial assignment away from saturated workers.
	// Host adverts bias score ties toward ring edges (see PlacementTopo).
	l.mu.Lock()
	l.members = append([]string(nil), l.workers...)
	sort.Strings(l.members)
	hosts := l.hostsLocked()
	l.mu.Unlock()
	assign, err := PlacementTopo(l.gm, l.workers, l.scores(), hosts)
	if err != nil {
		return err
	}
	l.mu.Lock()
	sched := l.buildScheduleLocked(assign, 0)
	l.assign, l.sched = assign, sched
	sessions := make([]*session, 0, len(l.sessions))
	for _, s := range l.sessions {
		sessions = append(sessions, s)
	}
	l.mu.Unlock()
	for _, s := range sessions {
		if err := s.enc.Encode(scheduleMsg{Schedule: sched}); err != nil {
			return err
		}
	}
	for _, s := range sessions {
		var r readyMsg
		if err := s.dec.Decode(&r); err != nil {
			return fmt.Errorf("cluster: ready decode: %w", err)
		}
	}
	for _, s := range sessions {
		if err := s.enc.Encode(startMsg{}); err != nil {
			return err
		}
	}
	return nil
}

func (l *Leader) closeSessions() {
	l.mu.Lock()
	sessions := make([]*session, 0, len(l.sessions))
	for _, s := range l.sessions {
		sessions = append(sessions, s)
	}
	l.mu.Unlock()
	for _, s := range sessions {
		s.conn.Close()
	}
}

// Node is one worker process: its runtime, its data-plane transport, and
// the forwarding rules installed from the leader's schedule.
type Node struct {
	Name      string
	Worker    *worker.Worker
	Transport *comm.Transport

	g        *graph.Graph
	ctrlConn net.Conn
	enc      *gob.Encoder
	encMu    sync.Mutex

	mu       sync.Mutex
	schedule Schedule
	epoch    uint64
	// hostID is this node's advertised host identity ("" when host
	// locality is off). lastScheme remembers each live peer's transport
	// scheme so a vanished ring link can be told apart from a vanished TCP
	// link; shmSuspect marks peers whose ring was severed — re-dials of a
	// suspect go straight to TCP (a fresh ring to a peer that just tore
	// one down is more likely to tear again than the socket path is).
	// repairing guards against stacking dials for the same peer across
	// heartbeat ticks. All four are guarded by mu.
	hostID     string
	lastScheme map[string]string
	shmSuspect map[string]bool
	repairing  map[string]bool
	// ckAcked is the leader's checkpoint version watermark per operator
	// (from checkpointAckMsg, guarded by mu): heartbeats trim everything at
	// or below it, so unchanged state versions ship exactly once.
	ckAcked map[string]uint64
	// hbBytes is the encoded size of the most recent heartbeat, measured on
	// the control stream — the observable the delta machinery shrinks.
	hbBytes atomic.Uint64
	// ctrlOut counts bytes written to the control stream (written only
	// under encMu once the heartbeat loop is running).
	ctrlOut *countingWriter
	// fwd holds per-stream forwarding state for locally-produced streams
	// (map guarded by mu; each entry has its own lock serializing sends).
	fwd map[stream.ID]*fwdState
	// bgroup is this node's SPMC broadcast ring (nil without host
	// locality); bus wraps its sink for single-publish fanout. busIn maps
	// producer peer name to the subscription on *its* broadcast ring
	// (guarded by mu).
	bgroup *shm.BroadcastGroup
	bus    *comm.Bus
	busIn  map[string]*busSub
	// pending are replay obligations deferred to the leader's replay
	// barrier for the pendingEpoch reschedule.
	pending      []pendingReplay
	pendingEpoch uint64
	// relayQ feeds the relay republish loop: tagRelay envelopes arriving
	// on the read goroutines are handed off here so republish fan-out
	// (ring publish + pairwise sends + local inject) never blocks the
	// producer link longer than an enqueue. Bounded, so a saturated relay
	// backpressures producers instead of buffering without limit;
	// relayed counts local deliveries performed on behalf of remote
	// producers, shipped in the heartbeat congestion report.
	relayQ  chan relayItem
	relayed atomic.Uint64

	// dialAttempts/dialBase parameterize the exponential backoff used by
	// every recovery dial (peer re-dials after a reschedule, heartbeat
	// link repair) and by the join rendezvous dial itself.
	dialAttempts int
	dialBase     time.Duration
	// resolver maps a tenant name from Schedule.Tenants to its locally
	// built graph (tenant graphs carry Go callbacks and cannot travel
	// over gob); tenantsKnown marks tenants already extended into the
	// worker (guarded by mu). drained closes when the leader confirms a
	// full drain's handoff is complete.
	resolver     func(tenant string) *graph.Graph
	tenantsKnown map[string]bool
	drained      chan struct{}
	drainedOnce  sync.Once

	forwarded atomic.Uint64
	stop      chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
}

// countingWriter counts bytes flowing to the wrapped writer. With writes
// serialized by the encoder's lock, before/after deltas yield exact
// encoded-message sizes on the live control stream.
type countingWriter struct {
	w io.Writer
	n uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	k, err := c.w.Write(p)
	c.n += uint64(k)
	return k, err
}

// HeartbeatBytes reports the encoded size of this node's most recent
// heartbeat. Delta shipping shrinks it to a small fixed envelope at steady
// state, independent of operator state size.
func (n *Node) HeartbeatBytes() uint64 { return n.hbBytes.Load() }

// fwdState is one locally-produced stream's forwarding state. Its mutex
// serializes live forwarding with reschedule-time replay, so a retained
// window is always delivered to a new consumer before any newer message.
type fwdState struct {
	mu        sync.Mutex
	consumers []string
	ring      *replayRing
	// broadcast marks the stream's route as fanout-eligible: same-host
	// consumers attached to the node's broadcast ring are covered by one
	// bus publish instead of one send per link.
	broadcast bool
	// relays/local split consumers per the schedule's relay election:
	// each RelayDest is a remote host reached through one tagRelay
	// envelope to its designated relay, local is everyone else (same
	// host, hostless, or relay-less). Recomputed with every consumer-list
	// change under mu — always from the then-effective consumer set, so a
	// consumer parked behind a replay barrier is never named in a cover.
	relays []comm.RelayDest
	local  []string
}

// setPlanLocked installs consumers and recomputes the relay split from
// sched. Caller holds fs.mu.
func (fs *fwdState) setPlanLocked(sched Schedule, producer string, id stream.ID, consumers []string) {
	fs.consumers = consumers
	fs.relays, fs.local = planFanout(sched, producer, id, consumers)
	// Ring-backed streams mark their relay routes retained: a dead relay
	// link withholds its cover instead of folding pairwise (which would
	// reorder around the lost suffix), and the reschedule's forced replay
	// delivers the gap from the ring.
	if fs.ring != nil {
		for i := range fs.relays {
			fs.relays[i].Retained = true
		}
	}
}

// planFanout groups a stream's consumers by their schedule-elected relay.
// Consumers sharing the producer's host (the broadcast ring covers those),
// hostless consumers, and hosts the election skipped stay local. Relay
// order is sorted so forwarding is deterministic.
func planFanout(sched Schedule, producer string, id stream.ID, consumers []string) (relays []comm.RelayDest, local []string) {
	hostRelay := sched.PeerRelay[uint64(id)]
	if len(hostRelay) == 0 {
		return nil, consumers
	}
	prodHost := sched.PeerHosts[producer]
	var byRelay map[string][]string
	for _, c := range consumers {
		r := ""
		if h := sched.PeerHosts[c]; h != "" && h != prodHost {
			r = hostRelay[h]
		}
		if r == "" {
			local = append(local, c)
			continue
		}
		if byRelay == nil {
			byRelay = make(map[string][]string)
		}
		byRelay[r] = append(byRelay[r], c)
	}
	if byRelay == nil {
		return nil, local
	}
	names := make([]string, 0, len(byRelay))
	for r := range byRelay {
		names = append(names, r)
	}
	sort.Strings(names)
	for _, r := range names {
		relays = append(relays, comm.RelayDest{Relay: r, Cover: byRelay[r]})
	}
	return relays, local
}

// pendingReplay is a deferred ring replay: once the leader confirms every
// survivor applied the epoch, the stream's retained window is sent to the
// added consumers and the full consumer list takes effect. forced names
// consumers that are not new but whose relay died with frames possibly
// queued: their live path was intact on paper, yet anything buffered at
// the dead relay is gone, so the retained window is replayed to them too
// (receivers drop everything at or below their restored watermark, so the
// overlap is exactly-once from the application's point of view).
type pendingReplay struct {
	id        stream.ID
	consumers []string
	forced    []string
}

// Schedule returns the node's current schedule (updated on reschedule).
func (n *Node) Schedule() Schedule {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.schedule
}

// Epoch returns the newest schedule epoch the node has applied.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// joinCfg carries Join's optional knobs.
type joinCfg struct {
	commOpts     []comm.Option
	hostID       string
	shmDir       string
	dialAttempts int
	dialBase     time.Duration
	resolver     func(tenant string) *graph.Graph
}

// JoinOption configures Join.
type JoinOption func(*joinCfg)

// WithCommOptions passes transport options (fault-injection hooks, codec
// filters) through to the node's data-plane transport.
func WithCommOptions(opts ...comm.Option) JoinOption {
	return func(c *joinCfg) { c.commOpts = append(c.commOpts, opts...) }
}

// WithDialBackoff parameterizes the node's recovery dials: attempts and
// base delay of the exponential backoff used when re-dialing peers after a
// reschedule, when repairing severed links at heartbeat ticks, and for the
// join rendezvous dial to the leader itself. Defaults: 8 attempts, 5ms
// base. Non-positive values keep the defaults.
func WithDialBackoff(attempts int, base time.Duration) JoinOption {
	return func(c *joinCfg) {
		if attempts > 0 {
			c.dialAttempts = attempts
		}
		if base > 0 {
			c.dialBase = base
		}
	}
}

// WithTenantResolver installs the node's tenant-graph lookup: when a
// schedule lists a tenant this node has not seen, resolve(name) supplies
// the tenant's locally built graph (nil when this node cannot host it) and
// the worker is extended with its streams before any of its operators are
// adopted. Tenant graphs carry Go callbacks, so they cannot travel over
// the control stream; every worker that may host a tenant needs a
// resolver producing a graph with identical stream IDs — in-process, share
// the *graph.Graph itself.
func WithTenantResolver(resolve func(tenant string) *graph.Graph) JoinOption {
	return func(c *joinCfg) { c.resolver = resolve }
}

// WithHostLocality advertises hostID as this worker's host identity and
// attaches a shared-memory ring backend to its data-plane transport: links
// to peers advertising the same hostID are dialed "shm://" first (several
// times cheaper than loopback TCP), falling back to TCP when ring setup
// fails. dir is where ring files and the rendezvous socket live; empty
// means the system temp dir. Workers on genuinely different hosts must use
// different hostIDs — the rings are mmap files, so a false match would
// dial a path the peer cannot share.
func WithHostLocality(hostID, dir string) JoinOption {
	return func(c *joinCfg) {
		c.hostID = hostID
		c.shmDir = dir
	}
}

// Join connects to the leader at addr, registers, builds the local worker
// for graph g, wires the data plane per the schedule, and returns once the
// leader starts the cluster. When the schedule carries a heartbeat period
// the node stays attached to the leader: it heartbeats with lazy state
// checkpoints and applies reschedule deltas after failures.
func Join(addr, name string, g *graph.Graph, opts worker.Options, jopts ...JoinOption) (*Node, error) {
	cfg := joinCfg{dialAttempts: defaultDialAttempts, dialBase: defaultDialBase}
	for _, o := range jopts {
		o(&cfg)
	}
	// The rendezvous dial rides the same backoff policy as peer recovery
	// dials: a worker joining concurrently with leader startup (or
	// spawned by the autoscaler mid-reconfiguration) retries instead of
	// failing on the first connection refusal.
	var conn net.Conn
	var err error
	delay := cfg.dialBase
	for attempt := 0; ; attempt++ {
		conn, err = net.Dial("tcp", addr)
		if err == nil || attempt >= cfg.dialAttempts-1 {
			break
		}
		time.Sleep(delay)
		delay *= 2
	}
	if err != nil {
		return nil, err
	}
	cw := &countingWriter{w: conn}
	enc := gob.NewEncoder(cw)
	dec := gob.NewDecoder(conn)

	n := &Node{
		Name:         name,
		g:            g,
		ctrlConn:     conn,
		enc:          enc,
		ctrlOut:      cw,
		fwd:          make(map[stream.ID]*fwdState),
		hostID:       cfg.hostID,
		lastScheme:   make(map[string]string),
		shmSuspect:   make(map[string]bool),
		repairing:    make(map[string]bool),
		ckAcked:      make(map[string]uint64),
		busIn:        make(map[string]*busSub),
		dialAttempts: cfg.dialAttempts,
		dialBase:     cfg.dialBase,
		resolver:     cfg.resolver,
		tenantsKnown: make(map[string]bool),
		drained:      make(chan struct{}),
		stop:         make(chan struct{}),
	}
	n.relayQ = make(chan relayItem, relayQueueDepth)
	fail := func(err error) (*Node, error) {
		n.Close()
		return nil, err
	}
	// Every node is relay-capable: the handshake advertises it, and the
	// leader may elect this worker to republish a stream to its co-host
	// consumers. Envelopes arriving before the republish loop starts just
	// queue.
	commOpts := append(cfg.commOpts[:len(cfg.commOpts):len(cfg.commOpts)],
		comm.WithRelayHandler(n.enqueueRelay))
	if cfg.hostID != "" {
		b := shm.New()
		b.Dir = cfg.shmDir
		commOpts = append(commOpts[:len(commOpts):len(commOpts)], comm.WithBackend(b, ""))
		// The node's own SPMC broadcast ring: same-host consumers of its
		// fanout routes join it and one publish covers them all. Ring
		// setup failure is not fatal — fanout falls back to pairwise
		// sends, the same degradation as a failed shm dial.
		if bg, err := b.NewBroadcastGroup(busReaderSlots); err == nil {
			n.bgroup = bg
			n.bus = comm.NewBus(bg.Sink(), busMaxBytes(b))
		}
	}
	tr, err := comm.Listen(name, "127.0.0.1:0", func(_ string, id stream.ID, m message.Message) {
		if n.Worker != nil {
			_ = n.Worker.Inject(id, m)
		}
	}, commOpts...)
	if err != nil {
		conn.Close()
		return nil, err
	}
	n.Transport = tr

	bshmAddr := ""
	if n.bgroup != nil {
		bshmAddr = n.bgroup.Addr()
	}
	if err := enc.Encode(registerMsg{
		Name: name, DataAddr: tr.Addr(),
		HostID: cfg.hostID, ShmAddr: tr.AddrOf("shm"), BShmAddr: bshmAddr,
	}); err != nil {
		return fail(err)
	}
	var sm scheduleMsg
	if err := dec.Decode(&sm); err != nil {
		return fail(fmt.Errorf("cluster: schedule decode: %w", err))
	}
	// A late joiner receives the cluster's current epoch with its initial
	// schedule; recording it keeps the epoch guard monotonic (at first
	// start it is simply zero).
	n.schedule = sm.Schedule
	n.epoch = sm.Schedule.Epoch

	opts.Name = name
	assign := sm.Schedule.Assignments
	opts.Owns = func(op string) bool { return assign[op] == name }
	w, err := worker.New(g, opts)
	if err != nil {
		return fail(err)
	}
	n.Worker = w

	// The republish loop runs for every node, resident or not: relay
	// envelopes can arrive as soon as peers dial us.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.relayLoop()
	}()

	// Extend the worker with any tenants already admitted, before the
	// forwarding/tracking loops below: tenant streams need broadcasters
	// for routes that name this node.
	n.syncTenants(sm.Schedule)

	// Establish the data-plane mesh: dial every peer whose name orders
	// after ours; the accept side completes the other half of each pair.
	// Same-host peers are dialed over their shared-memory ring first,
	// with TCP as the fallback when ring setup fails.
	for peerName := range sm.Schedule.PeerAddrs {
		if peerName <= name {
			continue
		}
		if err := n.dialPeer(sm.Schedule, peerName); err != nil {
			return fail(fmt.Errorf("cluster: dial %s: %w", peerName, err))
		}
	}

	// Join the broadcast rings of same-host producers whose fanout routes
	// we consume, before forwarding starts anywhere: membership must be
	// visible to a producer before its first publish or the first frames
	// arrive pairwise (harmless, but not the fast path).
	n.syncBusReaders(sm.Schedule)

	// Install forwarding for streams produced here with remote readers,
	// and frontier tracking for streams forwarded here: consumers without
	// a local operator (extraction points) otherwise report no frontier,
	// and their producer would restore unconstrained after a failover.
	resident := sm.Schedule.Heartbeat > 0
	for _, r := range sm.Schedule.Routes {
		if r.Producer == name {
			if err := n.setForwarding(stream.ID(r.Stream), r.Consumers, resident, r.Broadcast); err != nil {
				return fail(err)
			}
		}
		for _, c := range r.Consumers {
			if c == name {
				if err := n.Worker.TrackFrontier(stream.ID(r.Stream)); err != nil {
					return fail(err)
				}
			}
		}
	}

	if err := enc.Encode(readyMsg{Name: name}); err != nil {
		return fail(err)
	}
	var st startMsg
	if err := dec.Decode(&st); err != nil {
		return fail(fmt.Errorf("cluster: start decode: %w", err))
	}

	if resident {
		n.wg.Add(2)
		go func() {
			defer n.wg.Done()
			n.heartbeatLoop(sm.Schedule.Heartbeat)
		}()
		go func() {
			defer n.wg.Done()
			n.controlLoop(dec)
		}()
	} else {
		conn.Close()
		n.ctrlConn = nil
	}
	return n, nil
}

// setForwarding installs or updates the remote consumer list of a
// locally-produced stream, subscribing the forwarding tap on first use.
// Ring buffering is enabled for resident clusters so a reschedule can
// replay the recent window to a new consumer.
func (n *Node) setForwarding(id stream.ID, consumers []string, ring, broadcast bool) error {
	n.mu.Lock()
	fs := n.fwd[id]
	needSub := fs == nil
	if needSub {
		fs = &fwdState{}
		n.fwd[id] = fs
	}
	sched := n.schedule
	n.mu.Unlock()
	fs.mu.Lock()
	if ring && fs.ring == nil {
		fs.ring = newReplayRing(replayDepth)
	}
	fs.setPlanLocked(sched, n.Name, id, append([]string(nil), consumers...))
	fs.broadcast = broadcast
	fs.mu.Unlock()
	if !needSub {
		return nil
	}
	w := n.Worker
	return w.Subscribe(id, func(m message.Message) {
		// The producing operator's deadline slack bounds how long the
		// transport may hold the frame for coalescing; messages with no
		// armed deadline flush on queue drain as before.
		var hint comm.FlushHint
		if dl, ok := w.SendDeadline(id, m.Timestamp); ok {
			hint.FlushBy = dl
		}
		// Ring append and sends happen under the stream lock: a replay in
		// progress finishes delivering the retained window to a new
		// consumer before this (newer) message can reach it.
		fs.mu.Lock()
		if fs.ring != nil {
			fs.ring.add(m)
		}
		n.forward(fs, id, m, hint)
		fs.mu.Unlock()
	})
}

// forward ships one message to the stream's remote consumers, called with
// fs.mu held so replays cannot be overtaken. Fanout edges take the
// single-encode multicast path; consumers attached to this node's
// broadcast ring are covered by one ring publish, remote hosts with an
// elected relay by one tagRelay envelope each, and the rest by refcounted
// shared frames. A single consumer keeps the plain per-link send.
func (n *Node) forward(fs *fwdState, id stream.ID, m message.Message, hint comm.FlushHint) {
	cons := fs.consumers
	switch {
	case len(cons) == 0:
		return
	case len(cons) == 1 && len(fs.relays) == 0:
		// Sends stay under fs.mu so an in-progress replay cannot be
		// overtaken by newer frames.
		if err := n.Transport.SendWithHint(cons[0], id, m, hint); err == nil {
			n.forwarded.Add(1)
		}
		return
	}
	// Consumers not behind a relay split between this node's broadcast
	// ring and pairwise links.
	local := fs.local
	var busPeers, pairPeers []string
	var bus *comm.Bus
	if fs.broadcast && n.bus != nil && len(local) > 0 {
		members := n.bgroup.MemberSet()
		for _, c := range local {
			if members[c] {
				busPeers = append(busPeers, c)
			} else {
				pairPeers = append(pairPeers, c)
			}
		}
		if len(busPeers) > 0 {
			bus = n.bus
		}
	} else {
		pairPeers = local
	}
	// Sends stay under fs.mu so an in-progress replay cannot be
	// overtaken by newer frames. MulticastTree degrades gracefully: a
	// relay the handshake shows incapable folds its cover back into
	// pairwise sends inside the transport.
	sent, _ := n.Transport.MulticastTree(bus, busPeers, pairPeers, fs.relays, id, m, hint)
	n.forwarded.Add(uint64(sent))
}

// relayItem is one tagRelay envelope handed from a read goroutine to the
// republish loop. The loop owns frame (pooled) and m.
type relayItem struct {
	from   string
	id     stream.ID
	cover  []string
	decode func() (message.Message, error)
	frame  []byte
	typed  bool
	hint   comm.FlushHint
}

// relayQueueDepth bounds the republish backlog; a full queue blocks the
// producer link's read goroutine, which is exactly the backpressure a
// saturated relay should exert.
const relayQueueDepth = 256

// enqueueRelay is the transport's RelayHandler: hand the envelope to the
// republish loop, or recycle it if the node is shutting down.
func (n *Node) enqueueRelay(from string, id stream.ID, cover []string, decode func() (message.Message, error), frame []byte, typed bool, hint comm.FlushHint) {
	select {
	case n.relayQ <- relayItem{from: from, id: id, cover: cover, decode: decode, frame: frame, typed: typed, hint: hint}:
	case <-n.stop:
		comm.RecyclePayload(frame)
	}
}

// relayLoop republishes relay envelopes in arrival order (per-stream FIFO:
// one producer link, one queue, one loop) until the node stops, then
// drains the queue so pooled frames are returned.
func (n *Node) relayLoop() {
	for {
		select {
		case it := <-n.relayQ:
			n.republishRelay(it)
		case <-n.stop:
			for {
				select {
				case it := <-n.relayQ:
					comm.RecyclePayload(it.frame)
				default:
					return
				}
			}
		}
	}
}

// republishRelay fans one relayed frame out to the producer's cover list:
// members of this node's broadcast ring by one unbounded ring publish
// (oversized frames stream as chunked trains — the relay hop is what keeps
// them off O(consumers) pairwise links), the rest by refcounted shared
// frames, and this worker itself by direct injection. The hint was
// re-derived at arrival, so relay queueing time has already been charged
// against the producer's slack.
func (n *Node) republishRelay(it relayItem) {
	selfConsumes := false
	cover := make([]string, 0, len(it.cover))
	for _, c := range it.cover {
		if c == n.Name {
			selfConsumes = true
			continue
		}
		cover = append(cover, c)
	}
	var busPeers, pairPeers []string
	var bus *comm.Bus
	if n.bus != nil && n.bgroup != nil && len(cover) > 0 {
		members := n.bgroup.MemberSet()
		for _, c := range cover {
			if members[c] {
				busPeers = append(busPeers, c)
			} else {
				pairPeers = append(pairPeers, c)
			}
		}
		if len(busPeers) > 0 {
			bus = n.bus
		}
	} else {
		pairPeers = cover
	}
	// A self-consuming relay decodes before the republish: RepublishWithHint
	// takes ownership of the frame the decoder reads from (and may recycle
	// it). A relay that only forwards never decodes at all — the verbatim
	// bytes go straight back out.
	var m message.Message
	injectSelf := false
	if selfConsumes && n.Worker != nil {
		if dm, err := it.decode(); err == nil {
			m, injectSelf = dm, true
		}
	}
	sent, _ := n.Transport.RepublishWithHint(bus, busPeers, pairPeers, it.frame, it.typed, it.id, it.hint)
	n.relayed.Add(uint64(sent))
	if injectSelf {
		_ = n.Worker.Inject(it.id, m)
	}
}

// Forwarded returns how many messages this node shipped to remote peers.
func (n *Node) Forwarded() uint64 { return n.forwarded.Load() }

// Close tears the node down gracefully.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	if n.ctrlConn != nil {
		n.ctrlConn.Close()
	}
	n.mu.Lock()
	subs := make([]*busSub, 0, len(n.busIn))
	for _, s := range n.busIn {
		subs = append(subs, s)
	}
	n.mu.Unlock()
	for _, s := range subs {
		s.close()
	}
	if n.bgroup != nil {
		n.bgroup.Close()
	}
	if n.Transport != nil {
		n.Transport.Close()
	}
	if n.Worker != nil {
		n.Worker.Stop()
	}
	n.wg.Wait()
}

// Kill tears the node down ungracefully — no deregistration, no draining —
// emulating a crashed worker process. The leader only learns of the death
// through heartbeat silence, exactly as it would for a real crash.
func (n *Node) Kill() { n.Close() }
