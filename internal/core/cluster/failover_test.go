package cluster

import (
	"sync"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/state"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/worker"
)

// countState is the running input sum — restored from a checkpoint, the
// sum for timestamp t must equal t regardless of where the operator runs.
type countState struct{ Sum int }

func init() { state.RegisterState(&countState{}) }

// buildFailoverGraph: in (ingest, w1) -> count (stateful, w2) -> mid ->
// sink (w1). The sink records (timestamp, sum) pairs on its watermark
// callback, so its input fence makes the recording exactly-once.
func buildFailoverGraph(t *testing.T, record func(l uint64, sum int)) (*graph.Graph, stream.ID) {
	t.Helper()
	g := graph.New()
	in := g.AddStream("in", "int")
	mid := g.AddStream("mid", "int")
	if err := g.MarkIngest(in); err != nil {
		t.Fatal(err)
	}
	err := g.AddOperator(&operator.Spec{
		Name: "count", Placement: "w2",
		Inputs: []stream.ID{in}, Outputs: []stream.ID{mid},
		AutoWatermark: true,
		NewState: func() state.Store {
			return state.NewVersioned(&countState{}, func(v any) any {
				c := *v.(*countState)
				return &c
			})
		},
		OnData: func(ctx *operator.Context, _ int, m message.Message) {
			ctx.State().(*countState).Sum += m.Payload.(int)
		},
		OnWatermark: func(ctx *operator.Context) {
			_ = ctx.Send(0, ctx.Timestamp, ctx.State().(*countState).Sum)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	type sinkState struct{ Last int }
	err = g.AddOperator(&operator.Spec{
		Name: "sink", Placement: "w1",
		Inputs:        []stream.ID{mid},
		AutoWatermark: true,
		NewState: func() state.Store {
			return state.NewVersioned(&sinkState{}, func(v any) any {
				c := *v.(*sinkState)
				return &c
			})
		},
		OnData: func(ctx *operator.Context, _ int, m message.Message) {
			ctx.State().(*sinkState).Last = m.Payload.(int)
		},
		OnWatermark: func(ctx *operator.Context) {
			record(ctx.Timestamp.L, ctx.State().(*sinkState).Last)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, in
}

// TestFailoverExactlyOnce kills the worker running the stateful operator
// mid-stream and asserts the full recovery contract: failure detected
// within the configured window, the operator re-placed onto the idle
// survivor, its state restored from the heartbeat-shipped checkpoint, the
// producer's retained window replayed — and every timestamp observed by
// the downstream sink exactly once with the exact running sum.
func TestFailoverExactlyOnce(t *testing.T) {
	const hb = 100 * time.Millisecond

	var mu sync.Mutex
	sums := make(map[uint64][]int)
	g, in := buildFailoverGraph(t, func(l uint64, sum int) {
		mu.Lock()
		sums[l] = append(sums[l], sum)
		mu.Unlock()
	})

	names := []string{"w1", "w2", "w3"}
	// FailAfter at 1.5x the period tolerates heartbeat jitter up to half a
	// period while keeping worst-case detection (FailAfter + monitor tick)
	// inside the 2x-period budget asserted below.
	l, err := NewLeader("127.0.0.1:0", names, g,
		map[stream.ID]string{in: "w1"}, nil,
		WithHeartbeat(hb, 3*hb/2))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Stop()

	nodes := make([]*Node, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			nodes[i], errs[i] = Join(l.Addr(), name, g, worker.Options{})
		}(i, name)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("join %d: %v", i, errs[i])
		}
		defer nodes[i].Close()
	}
	if err := l.Wait(); err != nil {
		t.Fatal(err)
	}

	inject := func(from, to uint64) {
		for l := from; l <= to; l++ {
			if err := nodes[0].Worker.Inject(in, message.Data(ts(l), 1)); err != nil {
				t.Fatal(err)
			}
			if err := nodes[0].Worker.Inject(in, message.Watermark(ts(l))); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor := func(what string, d time.Duration, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(d)
		for !ok() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; events: %+v", what, l.Events())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Phase 1: steady state, then let a heartbeat ship count's checkpoint.
	inject(1, 8)
	waitFor("pre-kill sums", 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(sums) >= 8
	})
	time.Sleep(2 * hb)

	// Phase 2: crash w2 ungracefully and keep the stream flowing into the
	// outage; the producer's ring retains what the dead worker never saw.
	killed := time.Now()
	nodes[1].Kill()
	inject(9, 20)

	waitFor("recovery", 10*time.Second, func() bool {
		for _, e := range l.Events() {
			if e.Kind == EventRecovered {
				return true
			}
		}
		return false
	})

	var detected time.Time
	for _, e := range l.Events() {
		if e.Kind == EventFailureDetected && e.Worker == "w2" {
			detected = e.At
		}
	}
	if detected.IsZero() {
		t.Fatal("no failure-detected event for w2")
	}
	// FailAfter is one heartbeat period here, the monitor polls at a
	// quarter period, and the last heartbeat predates the kill — so
	// detection must land within 2x the heartbeat period of the kill.
	if lat := detected.Sub(killed); lat > 2*hb {
		t.Fatalf("detection latency %v exceeds 2x heartbeat period (%v)", lat, 2*hb)
	}

	// The orphan lands on the idle survivor (w3 has no operators; w1 has
	// the sink), and the epoch advanced everywhere.
	if got := nodes[2].Schedule().Assignments["count"]; got != "w3" {
		t.Fatalf("count re-placed on %q, want w3", got)
	}
	if !nodes[2].Worker.Has("count") {
		t.Fatal("w3 did not adopt count")
	}
	if e := nodes[0].Epoch(); e != 1 {
		t.Fatalf("w1 epoch = %d, want 1", e)
	}

	// Phase 3: post-recovery traffic, then check the ledger.
	inject(21, 25)
	waitFor("all sums", 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(sums) >= 25
	})

	mu.Lock()
	defer mu.Unlock()
	for l := uint64(1); l <= 25; l++ {
		got := sums[l]
		if len(got) != 1 {
			t.Fatalf("timestamp %d observed %d times (%v), want exactly once", l, len(got), got)
		}
		// Sum == l proves no input was lost, none was double-applied, and
		// the adopted operator resumed from restored state rather than
		// from zero.
		if got[0] != int(l) {
			t.Fatalf("sum at %d = %d, want %d", l, got[0], l)
		}
	}
}

// TestReassignAffinityAndLoad: affinity groups move as a unit onto the
// worker of a surviving member; free orphans go to the least-loaded
// survivor deterministically.
func TestReassignAffinityAndLoad(t *testing.T) {
	g := graph.New()
	s := g.AddStream("s", "int")
	_ = g.MarkIngest(s)
	for _, name := range []string{"a", "b", "c", "d"} {
		_ = g.AddOperator(&operator.Spec{Name: name, Inputs: []stream.ID{s}})
	}
	_ = g.WithAffinity("a", "b")

	assign := map[string]string{"a": "w1", "b": "w2", "c": "w2", "d": "w3"}
	got := Reassign(g, assign, "w2", []string{"w1", "w3"})
	// b follows its affinity partner a to w1; c goes to the less loaded
	// survivor (w3 has 1 op, w1 has a+b after the group move).
	if got["b"] != "w1" {
		t.Fatalf("affinity orphan b on %q, want w1 (with a)", got["b"])
	}
	if got["c"] != "w3" {
		t.Fatalf("free orphan c on %q, want least-loaded w3", got["c"])
	}
	if got["a"] != "w1" || got["d"] != "w3" {
		t.Fatalf("surviving assignments disturbed: %v", got)
	}
}
