package cluster

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/state"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/worker"
)

// startElastic boots a resident leader plus the named workers on the
// failover test graph and returns everything the elastic tests reuse.
func startElastic(t *testing.T, names []string, hb time.Duration, record func(l uint64, sum int), opts ...LeaderOption) (*Leader, []*Node, stream.ID) {
	t.Helper()
	g, in := buildFailoverGraph(t, record)
	opts = append([]LeaderOption{WithHeartbeat(hb, 3*hb/2)}, opts...)
	l, err := NewLeader("127.0.0.1:0", names, g, map[stream.ID]string{in: "w1"}, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Stop)
	nodes := make([]*Node, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			nodes[i], errs[i] = Join(l.Addr(), name, g, worker.Options{})
		}(i, name)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("join %d: %v", i, errs[i])
		}
		i := i
		t.Cleanup(nodes[i].Close)
	}
	if err := l.Wait(); err != nil {
		t.Fatal(err)
	}
	return l, nodes, in
}

func waitForEvent(t *testing.T, l *Leader, kind EventKind, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		for _, e := range l.Events() {
			if e.Kind == kind {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %v; events: %+v", kind, l.Events())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGracefulJoinAndMigrate admits a third worker into a running
// two-worker cluster mid-stream, migrates the stateful operator onto it
// live, and asserts the ledger stays exactly-once: the donor's freeze-time
// checkpoint restores on the joiner, the producer's retained window
// replays past the cut, and the downstream fence drops regenerated
// duplicates.
func TestGracefulJoinAndMigrate(t *testing.T) {
	const hb = 100 * time.Millisecond
	var mu sync.Mutex
	sums := make(map[uint64][]int)
	l, nodes, in := startElastic(t, []string{"w1", "w2"}, hb, func(l uint64, sum int) {
		mu.Lock()
		sums[l] = append(sums[l], sum)
		mu.Unlock()
	})

	inject := func(from, to uint64) {
		for l := from; l <= to; l++ {
			if err := nodes[0].Worker.Inject(in, message.Data(ts(l), 1)); err != nil {
				t.Error(err)
				return
			}
			if err := nodes[0].Worker.Inject(in, message.Watermark(ts(l))); err != nil {
				t.Error(err)
				return
			}
		}
	}
	waitSums := func(n int, d time.Duration) {
		t.Helper()
		deadline := time.Now().Add(d)
		for {
			mu.Lock()
			got := len(sums)
			mu.Unlock()
			if got >= n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out at %d/%d sums; events: %+v", got, n, l.Events())
			}
			time.Sleep(time.Millisecond)
		}
	}

	inject(1, 8)
	waitSums(8, 5*time.Second)

	// Runtime join: the late worker dials the same control address the
	// static workers did and is admitted without disturbing the stream.
	n3, err := Join(l.Addr(), "w3", g3(t, nodes[0]), worker.Options{})
	if err != nil {
		t.Fatalf("runtime join: %v", err)
	}
	defer n3.Close()
	waitForEvent(t, l, EventJoined, 5*time.Second)
	if got := l.Members(); len(got) != 3 || got[2] != "w3" {
		t.Fatalf("members after join = %v, want [w1 w2 w3]", got)
	}

	// Live migration concurrent with traffic.
	done := make(chan struct{})
	go func() {
		defer close(done)
		inject(9, 20)
	}()
	if err := l.Migrate("w2", []string{"count"}, "w3"); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	<-done
	waitForEvent(t, l, EventMigrated, 5*time.Second)

	if !n3.Worker.Has("count") {
		t.Fatal("w3 did not adopt count after migration")
	}
	if got := n3.Schedule().Assignments["count"]; got != "w3" {
		t.Fatalf("count assigned to %q after migration, want w3", got)
	}
	// The donor applied the same epoch (it must retarget forwarding) and
	// no longer runs the operator.
	if nodes[1].Worker.Has("count") {
		t.Fatal("donor w2 still runs count after migration")
	}

	inject(21, 25)
	waitSums(25, 10*time.Second)
	mu.Lock()
	defer mu.Unlock()
	for l := uint64(1); l <= 25; l++ {
		got := sums[l]
		if len(got) != 1 {
			t.Fatalf("timestamp %d observed %d times (%v), want exactly once", l, len(got), got)
		}
		if got[0] != int(l) {
			t.Fatalf("sum at %d = %d, want %d", l, got[0], l)
		}
	}
}

// g3 returns the same graph the cluster was built over: joiners must be
// constructed over an identical base graph (same stream IDs), which
// in-process means the same *graph.Graph.
func g3(t *testing.T, n *Node) *graph.Graph {
	t.Helper()
	g, ok := n.Worker.View().(*graph.Multi)
	if !ok {
		t.Fatalf("worker view is %T, want *graph.Multi", n.Worker.View())
	}
	return g.Parts()[0]
}

// TestDrainExactlyOnce gracefully drains the worker running the stateful
// operator while traffic flows and asserts the handoff contract: the
// drain freezes the operator at a consistent point, re-places it, the
// ledger stays exactly-once, the donor learns it may exit (Drained
// closes), and the leader never declares the donor dead.
func TestDrainExactlyOnce(t *testing.T) {
	const hb = 100 * time.Millisecond
	var mu sync.Mutex
	sums := make(map[uint64][]int)
	l, nodes, in := startElastic(t, []string{"w1", "w2", "w3"}, hb, func(l uint64, sum int) {
		mu.Lock()
		sums[l] = append(sums[l], sum)
		mu.Unlock()
	})

	inject := func(from, to uint64) {
		for l := from; l <= to; l++ {
			if err := nodes[0].Worker.Inject(in, message.Data(ts(l), 1)); err != nil {
				t.Error(err)
				return
			}
			if err := nodes[0].Worker.Inject(in, message.Watermark(ts(l))); err != nil {
				t.Error(err)
				return
			}
		}
	}
	inject(1, 8)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(sums)
		mu.Unlock()
		if n >= 8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out pre-drain; events %+v", l.Events())
		}
		time.Sleep(time.Millisecond)
	}

	// Drain with traffic in flight: messages the frozen operator never saw
	// are re-delivered to the adopter from the producer's retained window.
	done := make(chan struct{})
	go func() {
		defer close(done)
		inject(9, 20)
	}()
	if err := l.Drain("w2"); err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-done

	select {
	case <-nodes[1].Drained():
	case <-time.After(5 * time.Second):
		t.Fatal("donor never saw drain confirmation")
	}
	nodes[1].Close()

	if got := l.Members(); len(got) != 2 || got[0] != "w1" || got[1] != "w3" {
		t.Fatalf("members after drain = %v, want [w1 w3]", got)
	}
	if !nodes[2].Worker.Has("count") {
		t.Fatal("w3 did not adopt count after drain")
	}
	for _, e := range l.Events() {
		if e.Kind == EventFailureDetected && e.Worker == "w2" {
			t.Fatalf("drain was treated as a failure: %+v", l.Events())
		}
	}
	waitForEvent(t, l, EventDrained, time.Second)

	inject(21, 25)
	deadline = time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(sums)
		mu.Unlock()
		if n >= 25 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out post-drain; events %+v", l.Events())
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for l := uint64(1); l <= 25; l++ {
		got := sums[l]
		if len(got) != 1 {
			t.Fatalf("timestamp %d observed %d times (%v), want exactly once", l, len(got), got)
		}
		if got[0] != int(l) {
			t.Fatalf("sum at %d = %d, want %d", l, got[0], l)
		}
	}
}

// tenantRecorder builds a tiny two-operator tenant pipeline (src stream ->
// add -> out -> sink) whose sink records observed timestamps from its
// watermark callback (exactly-once by the input fence).
func tenantRecorder(t *testing.T, prefix string, record func(l uint64)) (*graph.Graph, stream.ID) {
	t.Helper()
	g := graph.New()
	in := g.AddStream(prefix+"in", "int")
	out := g.AddStream(prefix+"out", "int")
	if err := g.MarkIngest(in); err != nil {
		t.Fatal(err)
	}
	err := g.AddOperator(&operator.Spec{
		Name:   prefix + "add",
		Inputs: []stream.ID{in}, Outputs: []stream.ID{out},
		AutoWatermark: true,
		NewState: func() state.Store {
			return state.NewVersioned(&countState{}, func(v any) any {
				c := *v.(*countState)
				return &c
			})
		},
		OnData: func(ctx *operator.Context, _ int, m message.Message) {
			ctx.State().(*countState).Sum += m.Payload.(int)
		},
		OnWatermark: func(ctx *operator.Context) {
			_ = ctx.Send(0, ctx.Timestamp, ctx.State().(*countState).Sum)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = g.AddOperator(&operator.Spec{
		Name:          prefix + "sink",
		Inputs:        []stream.ID{out},
		AutoWatermark: true,
		OnWatermark: func(ctx *operator.Context) {
			record(ctx.Timestamp.L)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, in
}

// TestSubmitTenantsAndAdmission exercises multi-tenant admission: a tenant
// is admitted, resolved and extended on every node, runs end to end; a
// duplicate name and an over-capacity tenant are rejected.
func TestSubmitTenantsAndAdmission(t *testing.T) {
	const hb = 100 * time.Millisecond
	g, in := buildFailoverGraph(t, func(uint64, int) {})

	// Tenant graphs are resolved locally per node; in-process the registry
	// shares the *graph.Graph itself.
	var regMu sync.Mutex
	registry := make(map[string]*graph.Graph)
	resolve := func(name string) *graph.Graph {
		regMu.Lock()
		defer regMu.Unlock()
		return registry[name]
	}

	names := []string{"w1", "w2"}
	l, err := NewLeader("127.0.0.1:0", names, g, map[stream.ID]string{in: "w1"}, nil,
		WithHeartbeat(hb, 3*hb/2), WithTenantCapacity(3))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Stop()
	nodes := make([]*Node, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			nodes[i], errs[i] = Join(l.Addr(), name, g, worker.Options{},
				WithTenantResolver(resolve))
		}(i, name)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("join %d: %v", i, errs[i])
		}
		defer nodes[i].Close()
	}
	if err := l.Wait(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	seen := make(map[uint64]int)
	tg, tin := tenantRecorder(t, "tA-", func(l uint64) {
		mu.Lock()
		seen[l]++
		mu.Unlock()
	})
	regMu.Lock()
	registry["tA"] = tg
	regMu.Unlock()

	if err := l.Submit(Tenant{Name: "tA", Graph: tg, IngestAt: map[stream.ID]string{tin: "w1"}}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if got := l.Tenants(); len(got) != 1 || got[0] != "tA" {
		t.Fatalf("tenants = %v, want [tA]", got)
	}

	// The tenant pipeline runs end to end through its injected stream.
	for i := uint64(1); i <= 5; i++ {
		if err := nodes[0].Worker.Inject(tin, message.Data(ts(i), 1)); err != nil {
			t.Fatal(err)
		}
		if err := nodes[0].Worker.Inject(tin, message.Watermark(ts(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant pipeline produced %d/5 outputs; events %+v", n, l.Events())
		}
		time.Sleep(time.Millisecond)
	}

	if err := l.Submit(Tenant{Name: "tA", Graph: tg}); err == nil {
		t.Fatal("duplicate tenant admitted")
	}
	// Capacity is 3 per worker x 2 workers = 6; tA used 2, so a declared
	// load of 5 must be rejected.
	bg, _ := tenantRecorder(t, "tB-", func(uint64) {})
	err = l.Submit(Tenant{Name: "tB", Graph: bg, Load: 5})
	if err == nil || !strings.Contains(err.Error(), "admission rejected") {
		t.Fatalf("over-capacity tenant: got %v, want admission rejection", err)
	}
	if got := l.Tenants(); len(got) != 1 {
		t.Fatalf("tenants after rejection = %v, want [tA]", got)
	}
}

// TestDrainedExcludedFromPlacement drains a worker, then checks both
// placement paths never use it again: a tenant submitted afterwards lands
// elsewhere, and a subsequent failover re-places orphans only onto live
// members — the drained worker appears in no assignment and no route.
func TestDrainedExcludedFromPlacement(t *testing.T) {
	const hb = 100 * time.Millisecond
	var mu sync.Mutex
	sums := make(map[uint64][]int)
	l, nodes, _ := startElastic(t, []string{"w1", "w2", "w3"}, hb, func(l uint64, sum int) {
		mu.Lock()
		sums[l] = append(sums[l], sum)
		mu.Unlock()
	})
	// w3 is idle (count on w2, sink on w1): drain it first.
	if err := l.Drain("w3"); err != nil {
		t.Fatalf("drain w3: %v", err)
	}
	nodes[2].Close()

	// A tenant submitted now must not touch the drained worker. The nodes
	// have no resolver, so only placement is being asserted — operators
	// land on live members but cannot be materialized, which is fine: the
	// test only reads the schedule.
	tg, _ := tenantRecorder(t, "tX-", func(uint64) {})
	if err := l.Submit(Tenant{Name: "tX", Graph: tg}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	sched := nodes[0].Schedule()
	for op, w := range sched.Assignments {
		if w == "w3" {
			t.Fatalf("operator %s placed on drained worker w3 (%v)", op, sched.Assignments)
		}
	}

	// Failover of w2 must re-place count onto w1 — the only live member —
	// never the drained w3.
	nodes[1].Kill()
	waitForEvent(t, l, EventRecovered, 10*time.Second)
	sched = nodes[0].Schedule()
	if got := sched.Assignments["count"]; got != "w1" {
		t.Fatalf("count re-placed on %q, want w1 (w3 is drained)", got)
	}
	for _, r := range sched.Routes {
		if r.Producer == "w3" {
			t.Fatalf("route produced by drained worker: %+v", r)
		}
		for _, c := range r.Consumers {
			if c == "w3" {
				t.Fatalf("route consumed by drained worker: %+v", r)
			}
		}
	}
}

// TestEventsRingBound: the leader's event log is a bounded ring — the
// oldest entries are evicted once the configured depth is exceeded, and
// Events returns the retained window oldest-first.
func TestEventsRingBound(t *testing.T) {
	l := &Leader{}
	WithEventHistory(3)(l)
	for i := 0; i < 10; i++ {
		l.pushEventLocked(Event{Kind: EventJoined, Epoch: uint64(i)})
	}
	got := l.Events()
	if len(got) != 3 {
		t.Fatalf("ring returned %d events, want 3", len(got))
	}
	for i, e := range got {
		if want := uint64(7 + i); e.Epoch != want {
			t.Fatalf("event %d epoch = %d, want %d (oldest-first window)", i, e.Epoch, want)
		}
	}
	// Non-positive depth keeps the default.
	d := &Leader{evDepth: defaultEventDepth}
	WithEventHistory(0)(d)
	if d.evDepth != defaultEventDepth {
		t.Fatalf("depth 0 overrode default: %d", d.evDepth)
	}
}

// TestJoinDialBackoffConfigurable: the rendezvous dial honors the
// configured attempt budget — one attempt against a dead address fails
// immediately instead of retrying through the default backoff.
func TestJoinDialBackoffConfigurable(t *testing.T) {
	// Grab a port that is certainly closed.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	g := graph.New()
	start := time.Now()
	_, err = Join(addr, "w", g, worker.Options{}, WithDialBackoff(1, time.Millisecond))
	if err == nil {
		t.Fatal("join to dead address succeeded")
	}
	// One attempt means no backoff sleeps: even a conservative bound shows
	// the retry loop was skipped (default is 8 attempts over >600ms).
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("single-attempt join took %v, backoff not honored", d)
	}
}
