// Broadcast-ring plumbing for the data plane: each host-local worker owns
// one SPMC broadcast ring (created at Join), and consumers of its fanout
// routes attach as readers. One publish by the producer covers every
// attached consumer; consumers the ring cannot serve — different host, no
// ring, or evicted for lagging — are covered by the pairwise shared-frame
// path, so the ring is purely an optimization over an always-correct
// fallback.
package cluster

import (
	"sync"

	"github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/comm/shm"
	"github.com/erdos-go/erdos/internal/core/stream"
)

// busReaderSlots is the reader capacity of a node's broadcast ring. The
// ring format supports up to 64; a worker rarely has more same-host
// consumers than this.
const busReaderSlots = 16

// busMaxBytes is the largest frame the node publishes onto its broadcast
// ring: the writer chunks frames larger than a quarter ring, so frames up
// to 4x the ring still stream through it, and anything bigger spills to
// pairwise links (counted by the Bus).
func busMaxBytes(b *shm.Backend) int {
	n := b.RingBytes
	if n == 0 {
		n = shm.DefaultRingBytes
	}
	return 4 * n
}

// busSub is this node's subscription on one producer's broadcast ring.
// The ring carries every fanout frame the producer publishes, including
// streams this node does not consume; want filters delivery.
type busSub struct {
	reader *shm.BusReader
	want   streamSet
}

func (s *busSub) close() { s.reader.Close() }

// streamSet is a mutex-guarded stream-ID set: the read loop consults it
// per frame, reschedules swap in a rebuilt set.
type streamSet struct {
	mu sync.Mutex
	v  map[stream.ID]bool
}

func (a *streamSet) set(m map[stream.ID]bool) {
	a.mu.Lock()
	a.v = m
	a.mu.Unlock()
}

func (a *streamSet) has(id stream.ID) bool {
	a.mu.Lock()
	ok := a.v[id]
	a.mu.Unlock()
	return ok
}

// syncBusReaders reconciles the node's ring subscriptions with sched:
// join the broadcast ring of every same-host producer whose fanout routes
// we consume, update the wanted-stream filter of rings we already sit on,
// and detach from rings the schedule no longer routes to us. A failed
// join is not an error — the producer's pairwise fallback covers us.
func (n *Node) syncBusReaders(sched Schedule) {
	if n.hostID == "" {
		return
	}
	want := make(map[string]map[stream.ID]bool)
	for _, r := range sched.Routes {
		if !r.Broadcast || r.Producer == n.Name {
			continue
		}
		mine := false
		for _, c := range r.Consumers {
			if c == n.Name {
				mine = true
				break
			}
		}
		if !mine {
			continue
		}
		// The stream's ring source on this host: the producer itself when
		// it lives here, otherwise the relay elected to republish it (the
		// relay's own ring carries the republished frames). No source, no
		// ring membership — the pairwise path covers us either way.
		src := ""
		if sched.PeerHosts[r.Producer] == n.hostID {
			src = r.Producer
		} else if rel := sched.PeerRelay[r.Stream][n.hostID]; rel != "" && rel != n.Name {
			src = rel
		}
		if src == "" || sched.PeerBShm[src] == "" {
			continue
		}
		m := want[src]
		if m == nil {
			m = make(map[stream.ID]bool)
			want[src] = m
		}
		m[stream.ID(r.Stream)] = true
	}

	n.mu.Lock()
	var drop []*busSub
	for p, sub := range n.busIn {
		if streams, ok := want[p]; ok {
			sub.want.set(streams)
			delete(want, p)
		} else {
			drop = append(drop, sub)
			delete(n.busIn, p)
		}
	}
	n.mu.Unlock()
	for _, sub := range drop {
		sub.close()
	}

	for p, streams := range want {
		rd, err := shm.JoinBroadcast(sched.PeerBShm[p], n.Name)
		if err != nil {
			continue
		}
		sub := &busSub{reader: rd}
		sub.want.set(streams)
		n.mu.Lock()
		n.busIn[p] = sub
		n.mu.Unlock()
		n.wg.Add(1)
		go func(p string, sub *busSub) {
			defer n.wg.Done()
			n.busReadLoop(p, sub)
		}(p, sub)
	}
}

// busReadLoop decodes frames off one producer's broadcast ring and
// injects the streams this node consumes. It exits when the ring dies —
// producer gone, node closing, or this reader evicted for lagging — and
// detaches, at which point the producer's MemberSet no longer lists us
// and its very next fanout falls back to our pairwise link.
func (n *Node) busReadLoop(producer string, sub *busSub) {
	for {
		id, m, err := comm.ReadFrame(sub.reader)
		if err != nil {
			break
		}
		if !sub.want.has(id) {
			comm.ReleaseMessage(m)
			continue
		}
		_ = n.Worker.Inject(id, m)
	}
	sub.reader.Close()
	n.mu.Lock()
	if n.busIn[producer] == sub {
		delete(n.busIn, producer)
	}
	n.mu.Unlock()
}
