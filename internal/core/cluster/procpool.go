// ProcPool: the in-process elastic.Pool used by tests, the chaos suite and
// cmd/av-sim — spawned workers are goroutine-hosted Nodes joining the
// leader over loopback, exercising the full join/drain protocol without
// separate processes.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/worker"
)

// ProcPool spawns in-process workers that Join the leader at Addr with the
// base graph and options given. It satisfies elastic.Pool: Spawn blocks
// until the worker is admitted and started; Retire waits for the leader's
// drain confirmation (Node.Drained) and then closes the node.
type ProcPool struct {
	// Addr is the leader's control address.
	Addr string
	// Graph is the base graph every spawned worker is built over (the same
	// one the static workers joined with). Tenants extend it at admission
	// via the join options' resolver.
	Graph *graph.Graph
	// Opts is the worker option template; Name and Owns are set per spawn.
	Opts worker.Options
	// JoinOpts are appended to every spawn's Join call — install
	// WithTenantResolver here so pool workers can host tenants.
	JoinOpts []JoinOption
	// RetireTimeout bounds how long Retire waits for the drain
	// confirmation before closing anyway (default 10s).
	RetireTimeout time.Duration

	mu    sync.Mutex
	nodes map[string]*Node
}

// Spawn joins a new worker named name to the cluster, blocking until the
// leader has admitted and started it.
func (p *ProcPool) Spawn(name string) error {
	n, err := Join(p.Addr, name, p.Graph, p.Opts, p.JoinOpts...)
	if err != nil {
		return fmt.Errorf("procpool: spawn %s: %w", name, err)
	}
	p.mu.Lock()
	if p.nodes == nil {
		p.nodes = make(map[string]*Node)
	}
	p.nodes[name] = n
	p.mu.Unlock()
	return nil
}

// Retire stops a spawned worker the leader has already drained: it waits
// for the drain confirmation (bounded by RetireTimeout) and closes the
// node. Retiring an unknown worker is an error.
func (p *ProcPool) Retire(name string) error {
	p.mu.Lock()
	n := p.nodes[name]
	delete(p.nodes, name)
	p.mu.Unlock()
	if n == nil {
		return fmt.Errorf("procpool: retire %s: not a pool worker", name)
	}
	timeout := p.RetireTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	select {
	case <-n.Drained():
	case <-time.After(timeout):
	}
	n.Close()
	return nil
}

// Node returns the live node for a spawned worker (nil once retired), for
// tests that assert on the worker's state.
func (p *ProcPool) Node(name string) *Node {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nodes[name]
}

// Close force-closes every remaining spawned worker (test teardown).
func (p *ProcPool) Close() {
	p.mu.Lock()
	nodes := make([]*Node, 0, len(p.nodes))
	for _, n := range p.nodes {
		nodes = append(nodes, n)
	}
	p.nodes = nil
	p.mu.Unlock()
	for _, n := range nodes {
		n.Close()
	}
}
