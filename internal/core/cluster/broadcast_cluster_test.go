package cluster

import (
	"sync"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/comm/shm"
	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/worker"
)

// buildFanGraph is a fanout pipeline across three workers: src(w1)
// produces "fan", consumed by left(w2) and right(w3), whose outputs are
// extracted on w1. The fan payload is padded to fanPayloadBytes so the
// broadcast ring carries real volume.
const fanPayloadBytes = 2048

func buildFanGraph(t *testing.T) (g *graph.Graph, in, outL, outR stream.ID) {
	t.Helper()
	g = graph.New()
	in = g.AddStream("in", "bytes")
	fan := g.AddStream("fan", "bytes")
	outL = g.AddStream("outL", "bytes")
	outR = g.AddStream("outR", "bytes")
	if err := g.MarkIngest(in); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOperator(&operator.Spec{
		Name: "src", Placement: "w1",
		Inputs: []stream.ID{in}, Outputs: []stream.ID{fan},
		AutoWatermark: true,
		OnData: func(ctx *operator.Context, _ int, m message.Message) {
			p := make([]byte, fanPayloadBytes)
			p[0] = m.Payload.([]byte)[0]
			_ = ctx.Send(0, m.Timestamp, p)
		},
		OnWatermark: func(ctx *operator.Context) {},
	}); err != nil {
		t.Fatal(err)
	}
	stage := func(name, placement string, out stream.ID, f func(byte) byte) {
		if err := g.AddOperator(&operator.Spec{
			Name: name, Placement: placement,
			Inputs: []stream.ID{fan}, Outputs: []stream.ID{out},
			AutoWatermark: true,
			OnData: func(ctx *operator.Context, _ int, m message.Message) {
				_ = ctx.Send(0, m.Timestamp, []byte{f(m.Payload.([]byte)[0])})
			},
			OnWatermark: func(ctx *operator.Context) {},
		}); err != nil {
			t.Fatal(err)
		}
	}
	stage("left", "w2", outL, func(v byte) byte { return v * 2 })
	stage("right", "w3", outR, func(v byte) byte { return v + 1 })
	return g, in, outL, outR
}

// TestBroadcastRingClusterFanout runs a same-host cluster whose fanout
// edge rides the producer's SPMC broadcast ring, then drives the two
// degradation paths: a lagging reader is evicted so the ring never stalls
// the producer, and a consumer that detaches falls back to its pairwise
// link — with every message delivered exactly once throughout.
func TestBroadcastRingClusterFanout(t *testing.T) {
	g, in, outL, outR := buildFanGraph(t)
	ingestAt := map[stream.ID]string{in: "w1"}
	extractAt := map[stream.ID][]string{outL: {"w1"}, outR: {"w1"}}
	l, err := NewLeader("127.0.0.1:0", []string{"w1", "w2", "w3"}, g, ingestAt, extractAt)
	if err != nil {
		t.Fatal(err)
	}

	var nodes [3]*Node
	var wg sync.WaitGroup
	var errs [3]error
	for i, name := range []string{"w1", "w2", "w3"} {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			nodes[i], errs[i] = Join(l.Addr(), name, g, worker.Options{},
				WithHostLocality("hostA", t.TempDir()))
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	for _, n := range nodes {
		defer n.Close()
	}
	if err := l.Wait(); err != nil {
		t.Fatal(err)
	}
	if nodes[0].bgroup == nil {
		t.Fatal("w1 has no broadcast group despite host locality")
	}
	// Evict a reader that pins the ring for 50ms instead of the default
	// 200ms, keeping the chaos phase quick. Set before any fanout flows.
	nodes[0].bgroup.EvictAfter = 50 * time.Millisecond

	// The fan stream's route must be marked broadcast-eligible, and both
	// consumers must already sit on w1's ring (membership is established
	// during Join, before forwarding starts).
	var fanRoute *Route
	sched := nodes[0].Schedule()
	for i := range sched.Routes {
		if len(sched.Routes[i].Consumers) == 2 {
			fanRoute = &sched.Routes[i]
		}
	}
	if fanRoute == nil || !fanRoute.Broadcast {
		t.Fatalf("fan route not broadcast-eligible: %+v", sched.Routes)
	}
	members := nodes[0].bgroup.MemberSet()
	if !members["w2"] || !members["w3"] {
		t.Fatalf("ring members = %v, want w2 and w3", members)
	}

	var mu sync.Mutex
	countL := make(map[uint64]int)
	countR := make(map[uint64]int)
	subscribe := func(id stream.ID, counts map[uint64]int) {
		if err := nodes[0].Worker.Subscribe(id, func(m message.Message) {
			if m.IsData() {
				mu.Lock()
				counts[m.Timestamp.L]++
				mu.Unlock()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	subscribe(outL, countL)
	subscribe(outR, countR)

	inject := func(from, to uint64) {
		for l := from; l <= to; l++ {
			if err := nodes[0].Worker.Inject(in, message.Data(ts(l), []byte{byte(l)})); err != nil {
				t.Fatal(err)
			}
			if err := nodes[0].Worker.Inject(in, message.Watermark(ts(l))); err != nil {
				t.Fatal(err)
			}
		}
	}
	await := func(want int) {
		deadline := time.Now().Add(20 * time.Second)
		for {
			mu.Lock()
			kl, kr := len(countL), len(countR)
			mu.Unlock()
			if kl >= want && kr >= want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("got %d/%d results, want %d", kl, kr, want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Phase 1: the happy path — fanout rides the ring.
	inject(1, 20)
	await(20)
	if frames, _ := nodes[0].bus.Stats(); frames == 0 {
		t.Fatal("fanout ran but the broadcast ring carried no frames")
	}

	// Phase 2: a lagging reader attaches and never reads. Enough volume
	// to lap the ring must get it evicted rather than stall the cluster,
	// while the real consumers keep receiving everything.
	lagger, err := shm.JoinBroadcast(nodes[0].bgroup.Addr(), "lagger")
	if err != nil {
		t.Fatal(err)
	}
	defer lagger.Close()
	const fill = 620 // ~1.2MB of fan payload through a 1MB ring
	inject(21, fill)
	await(fill)
	if ev := nodes[0].bgroup.Evictions(); ev == 0 {
		t.Fatal("lagging reader was never evicted")
	}
	if m := nodes[0].bgroup.MemberSet(); m["lagger"] {
		t.Fatalf("evicted reader still a member: %v", m)
	}

	// Phase 3: w2 detaches from the ring; once the producer notices, its
	// fanout must fall back to w2's pairwise link with no loss.
	nodes[1].mu.Lock()
	sub := nodes[1].busIn["w1"]
	nodes[1].mu.Unlock()
	if sub == nil {
		t.Fatal("w2 has no ring subscription on w1")
	}
	sub.close()
	deadline := time.Now().Add(5 * time.Second)
	for nodes[0].bgroup.MemberSet()["w2"] {
		if time.Now().After(deadline) {
			t.Fatal("producer never noticed the detached reader")
		}
		time.Sleep(time.Millisecond)
	}
	inject(fill+1, fill+20)
	await(fill + 20)

	// Exactly-once end to end, across ring, eviction, and fallback.
	mu.Lock()
	defer mu.Unlock()
	for l := uint64(1); l <= fill+20; l++ {
		if countL[l] != 1 || countR[l] != 1 {
			t.Fatalf("timestamp %d delivered L=%d R=%d times, want exactly once",
				l, countL[l], countR[l])
		}
	}
	// And the whole data plane stayed gob-free.
	for i, name := range []string{"w1", "w2", "w3"} {
		s, r := nodes[i].Transport.SentFrames(), nodes[i].Transport.ReceivedFrames()
		if s.Gob != 0 || r.Gob != 0 {
			t.Fatalf("%s: gob data-plane frames: sent %+v recv %+v", name, s, r)
		}
	}
}
