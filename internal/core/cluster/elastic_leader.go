// Elastic membership: the leader-side protocol for graceful join, planned
// drain, live migration, multi-tenant admission, and the autoscale loop
// that drives all of them from congestion reports.
//
// Every reconfiguration here reuses the failover machinery — consistent
// restore cuts (restoreCutsFor), the reschedule push, the ack barrier, and
// the replay release — so elastic changes inherit failover's exactly-once
// guarantee at watermark granularity. The difference from failover is only
// where the checkpoints come from: a live donor freezes its operators and
// hands a fresh snapshot over (drainMsg/drainReadyMsg) instead of the
// leader falling back to the last heartbeat of a dead worker.
package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"sort"
	"time"

	"github.com/erdos-go/erdos/internal/core/cluster/elastic"
	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/state"
	"github.com/erdos-go/erdos/internal/core/stream"
)

// Default recovery-dial backoff (see WithDialBackoff).
const (
	defaultDialAttempts = 8
	defaultDialBase     = 5 * time.Millisecond
)

// joinHandshakeTimeout bounds the pre-start exchange with a joiner while
// admitJoin holds reconfigMu; a wedged joiner aborts its own admission
// instead of freezing drains and failovers behind the lock.
const joinHandshakeTimeout = 10 * time.Second

// buildScheduleLocked assembles the schedule for the current member set
// and the given assignment: peer maps from registration adverts, routes
// from the composite graph, tenants sorted for deterministic sync on the
// nodes. Caller holds l.mu.
func (l *Leader) buildScheduleLocked(assign map[string]string, epoch uint64) Schedule {
	workers := append([]string(nil), l.members...)
	sort.Strings(workers)
	peerAddrs := make(map[string]string, len(workers))
	var peerHosts, peerShm, peerBShm map[string]string
	for _, w := range workers {
		s, ok := l.sessions[w]
		if !ok {
			continue
		}
		peerAddrs[w] = s.reg.DataAddr
		if s.reg.HostID != "" {
			if peerHosts == nil {
				peerHosts = make(map[string]string)
			}
			peerHosts[w] = s.reg.HostID
		}
		if s.reg.ShmAddr != "" {
			if peerShm == nil {
				peerShm = make(map[string]string)
			}
			peerShm[w] = s.reg.ShmAddr
		}
		if s.reg.BShmAddr != "" {
			if peerBShm == nil {
				peerBShm = make(map[string]string)
			}
			peerBShm[w] = s.reg.BShmAddr
		}
	}
	tenants := make([]string, 0, len(l.tenantLoad))
	for t := range l.tenantLoad {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	if len(tenants) == 0 {
		tenants = nil
	}
	routes := Routes(l.gm, assign, workers, l.ingest, l.extract)
	return Schedule{
		Assignments: assign,
		Routes:      routes,
		PeerAddrs:   peerAddrs,
		PeerHosts:   peerHosts,
		PeerShm:     peerShm,
		PeerBShm:    peerBShm,
		PeerRelay:   electRelays(routes, peerHosts, l.scoresLocked()),
		Heartbeat:   l.heartbeat,
		FailAfter:   l.failAfter,
		Epoch:       epoch,
		Tenants:     tenants,
	}
}

// electRelays designates, for every Broadcast route and every remote host
// holding two or more of its consumers, the consumer on that host that
// relays the stream: the producer ships it one wire frame and it
// republishes locally. Hosts with a single consumer gain nothing from a
// relay hop (one wire frame either way, minus a queue traversal) and stay
// pairwise; so do hostless consumers and consumers sharing the producer's
// host (the broadcast ring already covers those). Among candidates the
// least-loaded wins by congestion score, ties broken lexicographically so
// every schedule build is deterministic. Recomputed on every reschedule —
// join, drain, failover — so a dead relay is re-elected in the same delta
// that announces its death.
func electRelays(routes []Route, peerHosts map[string]string, scores map[string]int64) map[uint64]map[string]string {
	if len(peerHosts) == 0 {
		return nil
	}
	var out map[uint64]map[string]string
	for _, r := range routes {
		if !r.Broadcast {
			continue
		}
		prodHost := peerHosts[r.Producer]
		byHost := make(map[string][]string)
		for _, c := range r.Consumers {
			h := peerHosts[c]
			if h == "" || h == prodHost {
				continue
			}
			byHost[h] = append(byHost[h], c)
		}
		for h, cands := range byHost {
			if len(cands) < 2 {
				continue
			}
			best := cands[0]
			for _, c := range cands[1:] {
				if scores[c] < scores[best] || (scores[c] == scores[best] && c < best) {
					best = c
				}
			}
			if out == nil {
				out = make(map[uint64]map[string]string)
			}
			if out[r.Stream] == nil {
				out[r.Stream] = make(map[string]string)
			}
			out[r.Stream][h] = best
		}
	}
	return out
}

// acceptLoop admits late joiners on the leader's control listener. Each
// admission runs in its own goroutine so a slow joiner never blocks the
// next; reconfigMu serializes the actual membership change.
func (l *Leader) acceptLoop() {
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return
		}
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			l.admitJoin(conn)
		}()
	}
}

// admitJoin runs the join protocol for one connection: register, extend the
// member set, send the joiner its initial schedule (current epoch + 1),
// push the membership delta to the existing workers, and only then start
// the joiner. The joiner hosts no operators at admission — assignments are
// unchanged, so no checkpoints or restore cuts travel; the autoscaler (or
// an explicit Migrate) moves load onto it afterwards.
func (l *Leader) admitJoin(conn net.Conn) {
	s := &session{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	if err := s.dec.Decode(&s.reg); err != nil {
		conn.Close()
		return
	}
	s.name = s.reg.Name

	l.reconfigMu.Lock()
	defer l.reconfigMu.Unlock()
	l.mu.Lock()
	if _, dup := l.sessions[s.name]; dup {
		l.mu.Unlock()
		conn.Close()
		return
	}
	l.sessions[s.name] = s
	l.members = append(l.members, s.name)
	sort.Strings(l.members)
	epoch := l.sched.Epoch + 1
	sched := l.buildScheduleLocked(l.assign, epoch)
	l.sched = sched
	var existing []string
	var sessions []*session
	for _, w := range l.members {
		if w != s.name && l.alive[w] {
			existing = append(existing, w)
			sessions = append(sessions, l.sessions[w])
		}
	}
	l.mu.Unlock()

	abort := func() {
		l.mu.Lock()
		delete(l.sessions, s.name)
		l.members = removeMember(l.members, s.name)
		l.mu.Unlock()
		conn.Close()
	}
	// Pre-start protocol with the joiner mirrors the initial startPhase:
	// plain schedule, ready, start. Its data plane is already listening
	// (the transport binds before registration), so existing workers can
	// dial it as soon as they apply the delta. The exchange stays under
	// reconfigMu on purpose — a drain or failover interleaving with a
	// half-admitted member would ship schedules that disagree about the
	// member set — and the conn deadline bounds how long a wedged joiner
	// can hold the lock.
	_ = conn.SetDeadline(time.Now().Add(joinHandshakeTimeout))
	//erdos:allow lockhold admission must be atomic under reconfigMu (same contract as drain/failover); the handshake conn deadline bounds the hold
	if err := s.enc.Encode(scheduleMsg{Schedule: sched}); err != nil {
		abort()
		return
	}
	var r readyMsg
	//erdos:allow lockhold admission must be atomic under reconfigMu (same contract as drain/failover); the handshake conn deadline bounds the hold
	if err := s.dec.Decode(&r); err != nil {
		abort()
		return
	}
	rm := rescheduleMsg{Schedule: sched}
	for _, es := range sessions {
		_ = es.send(ctrlMsg{M: rm})
	}
	acked := l.awaitAcks(existing, epoch)
	l.mu.Lock()
	l.alive[s.name] = true
	l.lastBeat[s.name] = time.Now()
	l.pushEventLocked(Event{Kind: EventJoined, Worker: s.name, At: time.Now(), Epoch: epoch})
	l.mu.Unlock()
	//erdos:allow lockhold admission must be atomic under reconfigMu (same contract as drain/failover); the handshake conn deadline bounds the hold
	if err := s.enc.Encode(startMsg{}); err != nil {
		l.mu.Lock()
		l.alive[s.name] = false
		delete(l.sessions, s.name)
		l.members = removeMember(l.members, s.name)
		l.mu.Unlock()
		conn.Close()
		return
	}
	_ = conn.SetDeadline(time.Time{})
	if acked {
		for _, es := range sessions {
			_ = es.send(ctrlMsg{M: replayMsg{Epoch: epoch}})
		}
	}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		l.readSession(s)
	}()
}

// Drain gracefully removes a live worker: its operators are frozen at a
// consistent point, their checkpoints handed to the leader, re-placed onto
// the remaining workers with the same restore-cut/replay-barrier protocol
// failover uses, and the donor is finally told it may exit (Node.Drained
// closes). Unlike failover, nothing is lost in flight — the donor's
// freeze-time checkpoints are exact, so adopters restore at the newest
// consumer-confirmed watermark and regeneration covers the rest.
func (l *Leader) Drain(name string) error {
	l.reconfigMu.Lock()
	defer l.reconfigMu.Unlock()

	l.mu.Lock()
	s, ok := l.sessions[name]
	switch {
	case !ok || !l.alive[name]:
		l.mu.Unlock()
		return fmt.Errorf("cluster: drain %s: no such live worker", name)
	case l.draining[name]:
		l.mu.Unlock()
		return fmt.Errorf("cluster: drain %s: already draining", name)
	}
	others := 0
	for _, w := range l.members {
		if w != name && l.alive[w] && !l.draining[w] {
			others++
		}
	}
	if others == 0 {
		l.mu.Unlock()
		return fmt.Errorf("cluster: drain %s: no destination workers", name)
	}
	l.draining[name] = true
	ch := make(chan drainReadyMsg, 1)
	l.drainWait[name] = ch
	epochHint := l.sched.Epoch + 1
	l.pushEventLocked(Event{Kind: EventDrainStarted, Worker: name, At: time.Now(), Epoch: epochHint})
	l.mu.Unlock()

	ready, err := l.awaitDrainReady(s, ch, nil, name)
	if err != nil {
		l.mu.Lock()
		delete(l.draining, name)
		delete(l.drainWait, name)
		l.mu.Unlock()
		return err
	}

	l.mu.Lock()
	delete(l.drainWait, name)
	l.checkpoints[name] = mergeCheckpoints(l.checkpoints[name], ready.Checkpoints)
	if ready.Frontiers != nil {
		l.frontiers[name] = ready.Frontiers
	}
	l.members = removeMember(l.members, name)
	epoch := l.sched.Epoch + 1
	var survivors, candidates []string
	for _, w := range l.members {
		if !l.alive[w] {
			continue
		}
		survivors = append(survivors, w)
		if !l.draining[w] {
			candidates = append(candidates, w)
		}
	}
	if len(candidates) == 0 {
		candidates = survivors
	}
	assign := ReassignTopo(l.gm, l.assign, name, candidates, l.scoresLocked(), l.hostsLocked())
	l.rehomeLocked(name, candidates[0])
	cps := make(map[string]state.Checkpoint)
	for op, cp := range l.checkpoints[name] {
		if l.assign[op] == name {
			cps[op] = cp
		}
	}
	// A full drain orphans the donor's entire operator set, exactly like a
	// failure does — restoreCuts' dead-worker semantics apply verbatim,
	// with fresher inputs: freeze-time checkpoints and frontiers.
	cuts := restoreCuts(l.gm, l.assign, name, l.frontiers, cps, l.extract)
	sched := l.buildScheduleLocked(assign, epoch)
	l.assign, l.sched = assign, sched
	var sessions []*session
	for _, w := range survivors {
		if es, ok := l.sessions[w]; ok {
			sessions = append(sessions, es)
		}
	}
	l.pushEventLocked(Event{Kind: EventRescheduled, Worker: name, At: time.Now(), Epoch: epoch})
	l.mu.Unlock()

	// The donor does not receive this reschedule: its operators are gone
	// and survivors Disconnect it on apply. It waits on drainDoneMsg.
	rm := rescheduleMsg{Dead: name, Schedule: sched, Checkpoints: cps, RestoreAt: cuts}
	for _, es := range sessions {
		_ = es.send(ctrlMsg{M: rm})
	}
	if l.awaitAcks(survivors, epoch) {
		for _, es := range sessions {
			_ = es.send(ctrlMsg{M: replayMsg{Epoch: epoch}})
		}
	}
	_ = s.send(ctrlMsg{M: drainDoneMsg{}})

	l.mu.Lock()
	l.alive[name] = false
	delete(l.draining, name)
	delete(l.sessions, name)
	delete(l.lastBeat, name)
	delete(l.checkpoints, name)
	delete(l.frontiers, name)
	delete(l.congestion, name)
	delete(l.missBase, name)
	delete(l.missDelta, name)
	delete(l.opMissBase, name)
	l.pushEventLocked(Event{Kind: EventDrained, Worker: name, At: time.Now(), Epoch: epoch})
	l.mu.Unlock()
	return nil
}

// awaitDrainReady waits for the donor's freeze-time snapshot, bounded by
// 4x the fail window (the same budget as the ack barrier). ops narrows the
// freeze to the named operators (nil = all).
func (l *Leader) awaitDrainReady(s *session, ch chan drainReadyMsg, ops []string, name string) (drainReadyMsg, error) {
	if err := s.send(ctrlMsg{M: drainMsg{Ops: ops}}); err != nil {
		return drainReadyMsg{}, fmt.Errorf("cluster: drain %s: %w", name, err)
	}
	select {
	case ready := <-ch:
		return ready, nil
	case <-time.After(4 * l.failAfter):
		return drainReadyMsg{}, fmt.Errorf("cluster: drain %s: timed out waiting for checkpoint handoff", name)
	case <-l.quit:
		return drainReadyMsg{}, fmt.Errorf("cluster: drain %s: leader stopping", name)
	}
}

// Migrate moves the named operators from a live donor to target: the donor
// freezes just those operators and hands their checkpoints over; everyone
// (donor included — it must retarget forwarding) applies the new routes
// under the usual ack/replay barrier. Restore cuts treat only the moved
// set as orphans, so the donor's retained operators keep constraining the
// cut like any surviving consumer.
//
// Callers should move a consumer-closed producer set — in practice a whole
// tenant, which is what the autoscaler does. Inputs fed by retained
// co-located producers have no replay ring on the donor (local delivery
// never crossed the forwarding layer), so messages in flight between a
// retained producer and a moved consumer at freeze time would be
// regenerated only as far back as the producer's retained window.
func (l *Leader) Migrate(donor string, ops []string, target string) error {
	if len(ops) == 0 {
		return fmt.Errorf("cluster: migrate: no operators named")
	}
	if donor == target {
		return fmt.Errorf("cluster: migrate: donor and target are both %s", donor)
	}
	l.reconfigMu.Lock()
	defer l.reconfigMu.Unlock()

	l.mu.Lock()
	s, ok := l.sessions[donor]
	switch {
	case !ok || !l.alive[donor]:
		l.mu.Unlock()
		return fmt.Errorf("cluster: migrate: no such live donor %s", donor)
	case !l.alive[target] || l.draining[target]:
		l.mu.Unlock()
		return fmt.Errorf("cluster: migrate: target %s not a live schedulable worker", target)
	case l.draining[donor]:
		l.mu.Unlock()
		return fmt.Errorf("cluster: migrate: donor %s is draining", donor)
	}
	for _, op := range ops {
		if l.assign[op] != donor {
			l.mu.Unlock()
			return fmt.Errorf("cluster: migrate: %s is not on %s", op, donor)
		}
	}
	ch := make(chan drainReadyMsg, 1)
	l.drainWait[donor] = ch
	l.mu.Unlock()

	ready, err := l.awaitDrainReady(s, ch, ops, donor)
	l.mu.Lock()
	delete(l.drainWait, donor)
	if err != nil {
		l.mu.Unlock()
		return err
	}
	l.checkpoints[donor] = mergeCheckpoints(l.checkpoints[donor], ready.Checkpoints)
	if ready.Frontiers != nil {
		l.frontiers[donor] = ready.Frontiers
	}
	epoch := l.sched.Epoch + 1
	orphans := make(map[string]bool, len(ops))
	assign := make(map[string]string, len(l.assign))
	for op, w := range l.assign {
		assign[op] = w
	}
	for _, op := range ops {
		orphans[op] = true
		assign[op] = target
	}
	cps := make(map[string]state.Checkpoint, len(ops))
	for _, op := range ops {
		if cp, ok := l.checkpoints[donor][op]; ok {
			cps[op] = cp
		}
	}
	// gone is "" — the donor stays alive, so its frontier reports (and its
	// retained operators) remain trustworthy constraints on the cut.
	cuts := restoreCutsFor(l.gm, l.assign, orphans, "", l.frontiers, cps, l.extract)
	sched := l.buildScheduleLocked(assign, epoch)
	l.assign, l.sched = assign, sched
	var recipients []string
	var sessions []*session
	for _, w := range l.members {
		if l.alive[w] {
			recipients = append(recipients, w)
			sessions = append(sessions, l.sessions[w])
		}
	}
	l.pushEventLocked(Event{Kind: EventRescheduled, Worker: donor, At: time.Now(), Epoch: epoch})
	l.mu.Unlock()

	rm := rescheduleMsg{Schedule: sched, Checkpoints: cps, RestoreAt: cuts}
	for _, es := range sessions {
		_ = es.send(ctrlMsg{M: rm})
	}
	if l.awaitAcks(recipients, epoch) {
		for _, es := range sessions {
			_ = es.send(ctrlMsg{M: replayMsg{Epoch: epoch}})
		}
	}
	l.mu.Lock()
	l.pushEventLocked(Event{Kind: EventMigrated, Worker: target, At: time.Now(), Epoch: epoch})
	l.mu.Unlock()
	return nil
}

// Tenant is one pipeline submitted to a running cluster.
type Tenant struct {
	// Name tags the tenant's operators for deadline isolation accounting
	// and names it in Schedule.Tenants; must be unique across the cluster.
	Name string
	// Graph is the tenant's dataflow. Every node that may host it needs a
	// resolver (WithTenantResolver) returning a graph with identical
	// stream IDs — in-process, share this *graph.Graph itself.
	Graph *graph.Graph
	// IngestAt names the worker where each externally-injected stream
	// enters ("" = the tenant's home worker). Prefer a stable worker: an
	// injection point rides the leader's re-homing on drain/failover, but
	// messages in flight to it are only covered by forwarding replay
	// rings, which injection at the producer-side worker guarantees.
	IngestAt map[stream.ID]string
	// ExtractAt lists workers whose applications subscribe to each stream
	// without a local operator (extraction points).
	ExtractAt map[stream.ID][]string
	// Load is the tenant's declared admission load (operator count when
	// zero), in the same unit as WithTenantCapacity's per-worker budget.
	Load int64
}

// Submit admits a tenant pipeline into the running cluster: admission
// control against declared loads, home-worker selection (fewest tenants,
// then lowest congestion), graph extension on every node via the schedule's
// tenant list, and a reschedule placing the tenant's operators on its home.
// Per-tenant urgency-miss accounting (TenantMisses) starts at admission.
func (l *Leader) Submit(t Tenant) error {
	if t.Name == "" || t.Graph == nil {
		return fmt.Errorf("cluster: submit: tenant needs a name and a graph")
	}
	specs := t.Graph.Operators()
	load := t.Load
	if load <= 0 {
		load = int64(len(specs))
	}
	l.reconfigMu.Lock()
	defer l.reconfigMu.Unlock()

	l.mu.Lock()
	if _, dup := l.tenantLoad[t.Name]; dup {
		l.mu.Unlock()
		return fmt.Errorf("cluster: submit: tenant %s already admitted", t.Name)
	}
	var candidates []string
	for _, w := range l.members {
		if l.alive[w] && !l.draining[w] {
			candidates = append(candidates, w)
		}
	}
	if len(candidates) == 0 {
		l.mu.Unlock()
		return fmt.Errorf("cluster: submit %s: no schedulable workers", t.Name)
	}
	var used int64
	for _, v := range l.tenantLoad {
		used += v
	}
	if err := elastic.Admit(used, load, len(candidates), l.tenantCap); err != nil {
		l.mu.Unlock()
		return fmt.Errorf("cluster: submit %s: %w", t.Name, err)
	}
	byWorker := make(map[string]map[string]bool)
	for op, tn := range l.tenantOf {
		w := l.assign[op]
		if byWorker[w] == nil {
			byWorker[w] = make(map[string]bool)
		}
		byWorker[w][tn] = true
	}
	counts := make(map[string]int, len(byWorker))
	for w, ts := range byWorker {
		counts[w] = len(ts)
	}
	home := elastic.PickTenantWorker(candidates, counts, l.scoresLocked())
	l.mu.Unlock()

	// Extending the composite graph validates the tenant (unique operator
	// and stream names) before any shared state changes.
	if err := l.gm.Add(t.Graph); err != nil {
		return fmt.Errorf("cluster: submit %s: %w", t.Name, err)
	}

	l.mu.Lock()
	assign := make(map[string]string, len(l.assign)+len(specs))
	for op, w := range l.assign {
		assign[op] = w
	}
	for _, spec := range specs {
		assign[spec.Name] = home
		l.tenantOf[spec.Name] = t.Name
	}
	l.tenantLoad[t.Name] = load
	for id, w := range t.IngestAt {
		if w == "" {
			w = home
		}
		if l.ingest == nil {
			l.ingest = make(map[stream.ID]string)
		}
		l.ingest[id] = w
	}
	for id, ws := range t.ExtractAt {
		if l.extract == nil {
			l.extract = make(map[stream.ID][]string)
		}
		l.extract[id] = append(append([]string(nil), l.extract[id]...), ws...)
	}
	epoch := l.sched.Epoch + 1
	sched := l.buildScheduleLocked(assign, epoch)
	l.assign, l.sched = assign, sched
	var recipients []string
	var sessions []*session
	for _, w := range l.members {
		if l.alive[w] {
			recipients = append(recipients, w)
			sessions = append(sessions, l.sessions[w])
		}
	}
	l.pushEventLocked(Event{Kind: EventTenantAdmitted, Worker: home, At: time.Now(), Epoch: epoch})
	l.mu.Unlock()

	// Fresh operators carry no checkpoints and no restore cuts: they adopt
	// unfenced and process from the first message their producers emit.
	rm := rescheduleMsg{Schedule: sched}
	for _, es := range sessions {
		_ = es.send(ctrlMsg{M: rm})
	}
	if l.awaitAcks(recipients, epoch) {
		for _, es := range sessions {
			_ = es.send(ctrlMsg{M: replayMsg{Epoch: epoch}})
		}
	}
	return nil
}

// autoscaleTick runs one autoscaler observation from the monitor loop and,
// when a decision fires, launches the scale action in a detached goroutine
// (gated to one in flight by scaleBusy) so a slow spawn or migration never
// wedges failure detection.
func (l *Leader) autoscaleTick() {
	if l.scaler == nil || l.pool == nil {
		return
	}
	l.mu.Lock()
	if l.scaleBusy {
		l.mu.Unlock()
		return
	}
	scores := l.scoresLocked()
	// Candidate scores default to zero for workers that have not reported
	// yet, so a joiner immediately counts toward cold detection.
	cand := make(map[string]int64)
	for _, w := range l.members {
		if l.alive[w] && !l.draining[w] {
			cand[w] = scores[w]
		}
	}
	d := l.scaler.Observe(cand, len(cand))
	switch d.Kind {
	case elastic.ScaleUp:
		l.scaleBusy = true
		l.autoName++
		name := fmt.Sprintf("w-elastic-%d", l.autoName)
		l.pushEventLocked(Event{Kind: EventScaleUp, Worker: d.Hot, At: time.Now(), Epoch: l.sched.Epoch})
		l.mu.Unlock()
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			l.scaleUp(d.Hot, name)
		}()
	case elastic.ScaleDown:
		var pool []string
		for w := range cand {
			if l.spawned[w] {
				pool = append(pool, w)
			}
		}
		victim := elastic.Idlest(pool, scores)
		if victim == "" {
			// Nothing pool-spawned to retire; statically provisioned
			// workers are never scaled away.
			l.mu.Unlock()
			return
		}
		l.scaleBusy = true
		l.pushEventLocked(Event{Kind: EventScaleDown, Worker: victim, At: time.Now(), Epoch: l.sched.Epoch})
		l.mu.Unlock()
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			l.scaleDown(victim)
		}()
	default:
		l.mu.Unlock()
	}
}

// scaleUp spawns a worker through the pool (which joins it via the normal
// admission path) and rebalances by migrating one whole tenant — the one
// with the worst urgency-miss record — off the hot worker onto the new
// one. Moving a whole tenant keeps the migrated producer set closed (see
// Migrate) and is exactly the isolation lever: the overloaded tenant's
// pressure leaves with it.
func (l *Leader) scaleUp(hot, name string) {
	defer func() {
		l.mu.Lock()
		l.scaleBusy = false
		l.mu.Unlock()
	}()
	// reconfigMu is NOT held here: Spawn blocks until the worker's Join
	// completes, and admission itself takes reconfigMu.
	if err := l.pool.Spawn(name); err != nil {
		return
	}
	l.mu.Lock()
	l.spawned[name] = true
	tenant := ""
	opsOnHot := make(map[string][]string)
	for op, tn := range l.tenantOf {
		if l.assign[op] == hot {
			opsOnHot[tn] = append(opsOnHot[tn], op)
		}
	}
	for tn, ops := range opsOnHot {
		switch {
		case tenant == "",
			l.tenantMiss[tn] > l.tenantMiss[tenant],
			l.tenantMiss[tn] == l.tenantMiss[tenant] && len(ops) > len(opsOnHot[tenant]),
			l.tenantMiss[tn] == l.tenantMiss[tenant] && len(ops) == len(opsOnHot[tenant]) && tn < tenant:
			tenant = tn
		}
	}
	ops := append([]string(nil), opsOnHot[tenant]...)
	l.mu.Unlock()
	if tenant == "" || len(ops) == 0 {
		// No tenant lives on the hot worker — the joiner still relieves it
		// indirectly (future placement prefers the idle member).
		return
	}
	sort.Strings(ops)
	_ = l.Migrate(hot, ops, name)
}

// scaleDown drains the chosen pool-spawned worker (moving its operators
// back onto the remaining members) and then asks the pool to stop it. The
// pool only stops a worker the leader has already drained.
func (l *Leader) scaleDown(victim string) {
	defer func() {
		l.mu.Lock()
		l.scaleBusy = false
		l.mu.Unlock()
	}()
	if err := l.Drain(victim); err != nil {
		return
	}
	_ = l.pool.Retire(victim)
	l.mu.Lock()
	delete(l.spawned, victim)
	l.mu.Unlock()
}

// Members returns the current scheduled worker set, sorted.
func (l *Leader) Members() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := append([]string(nil), l.members...)
	sort.Strings(out)
	return out
}

// Draining reports the workers currently mid-drain, sorted.
func (l *Leader) Draining() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.draining))
	for w := range l.draining {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Tenants returns the admitted tenant names, sorted.
func (l *Leader) Tenants() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.tenantLoad))
	for t := range l.tenantLoad {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// TenantMisses returns the cumulative urgency-miss count per tenant since
// admission, accumulated from per-operator heartbeat deltas. Operators
// outside any tenant (the leader's base graph) aggregate under "".
func (l *Leader) TenantMisses() map[string]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]uint64, len(l.tenantMiss))
	for t, n := range l.tenantMiss {
		out[t] = n
	}
	return out
}
