package cluster

import (
	"sync"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/operator"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
	"github.com/erdos-go/erdos/internal/core/worker"
)

func ts(l uint64) timestamp.Timestamp { return timestamp.New(l) }

// buildGraph returns a two-stage pipeline: ingest -> double(w1) ->
// addTen(w2) -> out, exercising a cross-worker stream.
func buildGraph(t *testing.T) (*graph.Graph, stream.ID, stream.ID) {
	t.Helper()
	g := graph.New()
	in := g.AddStream("in", "int")
	mid := g.AddStream("mid", "int")
	out := g.AddStream("out", "int")
	if err := g.MarkIngest(in); err != nil {
		t.Fatal(err)
	}
	err := g.AddOperator(&operator.Spec{
		Name: "double", Placement: "w1",
		Inputs: []stream.ID{in}, Outputs: []stream.ID{mid},
		AutoWatermark: true,
		OnData: func(ctx *operator.Context, _ int, m message.Message) {
			_ = ctx.Send(0, m.Timestamp, m.Payload.(int)*2)
		},
		OnWatermark: func(ctx *operator.Context) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = g.AddOperator(&operator.Spec{
		Name: "addTen", Placement: "w2",
		Inputs: []stream.ID{mid}, Outputs: []stream.ID{out},
		AutoWatermark: true,
		OnData: func(ctx *operator.Context, _ int, m message.Message) {
			_ = ctx.Send(0, m.Timestamp, m.Payload.(int)+10)
		},
		OnWatermark: func(ctx *operator.Context) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, in, out
}

func TestPlacementRespectsPinsAndRoundRobins(t *testing.T) {
	g := graph.New()
	s := g.AddStream("s", "int")
	_ = g.MarkIngest(s)
	_ = g.AddOperator(&operator.Spec{Name: "pinned", Placement: "w2", Inputs: []stream.ID{s}})
	_ = g.AddOperator(&operator.Spec{Name: "free1", Inputs: []stream.ID{s}})
	_ = g.AddOperator(&operator.Spec{Name: "free2", Inputs: []stream.ID{s}})
	assign, err := Placement(g, []string{"w1", "w2"})
	if err != nil {
		t.Fatal(err)
	}
	if assign["pinned"] != "w2" {
		t.Fatalf("pinned operator placed on %q", assign["pinned"])
	}
	if assign["free1"] == assign["free2"] {
		t.Fatalf("round-robin placed both free operators on %q", assign["free1"])
	}

	_ = g.AddOperator(&operator.Spec{Name: "bad", Placement: "nope", Inputs: []stream.ID{s}})
	if _, err := Placement(g, []string{"w1", "w2"}); err == nil {
		t.Fatal("unknown pinned worker must error")
	}
}

func TestRoutesCrossWorkerOnly(t *testing.T) {
	g, in, out := buildGraph(t)
	assign := map[string]string{"double": "w1", "addTen": "w2"}
	routes := Routes(g, assign, []string{"w1", "w2"},
		map[stream.ID]string{in: "w1"},
		map[stream.ID][]string{out: {"w1"}})
	// Expect: mid w1->w2, out w2->w1 (for extraction). in stays local.
	if len(routes) != 2 {
		t.Fatalf("routes = %+v, want 2 cross-worker routes", routes)
	}
	byStream := map[uint64]Route{}
	for _, r := range routes {
		byStream[r.Stream] = r
	}
	if r := byStream[uint64(out)]; r.Producer != "w2" || len(r.Consumers) != 1 || r.Consumers[0] != "w1" {
		t.Fatalf("out route = %+v", r)
	}
}

func TestTwoWorkerClusterEndToEnd(t *testing.T) {
	g, in, out := buildGraph(t)
	ingestAt := map[stream.ID]string{in: "w1"}
	extractAt := map[stream.ID][]string{out: {"w1"}}
	l, err := NewLeader("127.0.0.1:0", []string{"w1", "w2"}, g, ingestAt, extractAt)
	if err != nil {
		t.Fatal(err)
	}

	var nodes [2]*Node
	var wg sync.WaitGroup
	var errs [2]error
	for i, name := range []string{"w1", "w2"} {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			nodes[i], errs[i] = Join(l.Addr(), name, g, worker.Options{})
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	defer nodes[0].Close()
	defer nodes[1].Close()
	if err := l.Wait(); err != nil {
		t.Fatal(err)
	}

	// Collect results on w1 (the out stream is routed back for extraction).
	var mu sync.Mutex
	var results []int
	var wms int
	if err := nodes[0].Worker.Subscribe(out, func(m message.Message) {
		mu.Lock()
		defer mu.Unlock()
		if m.IsData() {
			results = append(results, m.Payload.(int))
		} else {
			wms++
		}
	}); err != nil {
		t.Fatal(err)
	}

	for l := uint64(1); l <= 5; l++ {
		if err := nodes[0].Worker.Inject(in, message.Data(ts(l), int(l))); err != nil {
			t.Fatal(err)
		}
		if err := nodes[0].Worker.Inject(in, message.Watermark(ts(l))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n, w := len(results), wms
		mu.Unlock()
		if n == 5 && w == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("got %d results, %d watermarks; want 5 and 5", n, w)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, v := range results {
		want := (i+1)*2 + 10
		if v != want {
			t.Fatalf("result[%d] = %d, want %d", i, v, want)
		}
	}
	if nodes[0].Forwarded() == 0 || nodes[1].Forwarded() == 0 {
		t.Fatalf("expected cross-worker forwarding on both nodes: %d, %d",
			nodes[0].Forwarded(), nodes[1].Forwarded())
	}
}

func TestThreeWorkerFanout(t *testing.T) {
	g := graph.New()
	in := g.AddStream("in", "[]byte")
	_ = g.MarkIngest(in)
	outs := make([]stream.ID, 3)
	for i, name := range []string{"p0", "p1", "p2"} {
		outs[i] = g.AddStream("out-"+name, "int")
		err := g.AddOperator(&operator.Spec{
			Name: name, Placement: []string{"w1", "w2", "w3"}[i],
			Inputs: []stream.ID{in}, Outputs: []stream.ID{outs[i]},
			AutoWatermark: true,
			OnData: func(ctx *operator.Context, _ int, m message.Message) {
				_ = ctx.Send(0, m.Timestamp, len(m.Payload.([]byte)))
			},
			OnWatermark: func(ctx *operator.Context) {},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	names := []string{"w1", "w2", "w3"}
	extractAt := map[stream.ID][]string{}
	for _, o := range outs {
		extractAt[o] = []string{"w1"}
	}
	l, err := NewLeader("127.0.0.1:0", names, g, map[stream.ID]string{in: "w1"}, extractAt)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, 3)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			nodes[i], errs[i] = Join(l.Addr(), name, g, worker.Options{})
		}(i, name)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("join %d: %v", i, errs[i])
		}
		defer nodes[i].Close()
	}
	if err := l.Wait(); err != nil {
		t.Fatal(err)
	}

	got := make(chan int, 3)
	for _, o := range outs {
		if err := nodes[0].Worker.Subscribe(o, func(m message.Message) {
			if m.IsData() {
				got <- m.Payload.(int)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	payload := make([]byte, 4096)
	_ = nodes[0].Worker.Inject(in, message.Data(ts(1), payload))
	_ = nodes[0].Worker.Inject(in, message.Watermark(ts(1)))
	for i := 0; i < 3; i++ {
		select {
		case v := <-got:
			if v != 4096 {
				t.Fatalf("broadcast result = %d", v)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("fanout result %d never arrived", i)
		}
	}
}
