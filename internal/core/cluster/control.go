// Resident control plane: heartbeat-driven failure detection on the leader
// and reschedule application on the nodes. See the package comment for the
// protocol overview.
package cluster

import (
	"encoding/gob"
	"math"
	"sort"
	"time"

	"github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/graph"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/state"
	"github.com/erdos-go/erdos/internal/core/stream"
)

// EventKind enumerates the leader's failover log entries.
type EventKind int

const (
	// EventFailureDetected marks the instant heartbeat silence crossed
	// FailAfter for a worker.
	EventFailureDetected EventKind = iota
	// EventRescheduled marks the reschedule delta being pushed.
	EventRescheduled
	// EventRecovered marks all surviving workers acknowledging the delta.
	EventRecovered
	// EventClusterLost marks a failure with no survivors to fail over to.
	EventClusterLost
	// EventJoined marks a worker admitted into a running cluster.
	EventJoined
	// EventDrainStarted marks the leader freezing a live donor's operators.
	EventDrainStarted
	// EventDrained marks a drain's handoff completing (replay barrier
	// released, donor told it may exit).
	EventDrained
	// EventMigrated marks a live operator migration (scale-up rebalance or
	// explicit Migrate) completing.
	EventMigrated
	// EventTenantAdmitted marks Submit accepting a tenant pipeline.
	EventTenantAdmitted
	// EventScaleUp / EventScaleDown mark autoscale decisions being acted
	// on (the spawn or retire that follows may still fail; the
	// join/drain events tell the rest of the story).
	EventScaleUp
	EventScaleDown
)

func (k EventKind) String() string {
	switch k {
	case EventFailureDetected:
		return "failure-detected"
	case EventRescheduled:
		return "rescheduled"
	case EventRecovered:
		return "recovered"
	case EventClusterLost:
		return "cluster-lost"
	case EventJoined:
		return "joined"
	case EventDrainStarted:
		return "drain-started"
	case EventDrained:
		return "drained"
	case EventMigrated:
		return "migrated"
	case EventTenantAdmitted:
		return "tenant-admitted"
	case EventScaleUp:
		return "scale-up"
	case EventScaleDown:
		return "scale-down"
	}
	return "unknown"
}

// Event is one entry in the leader's failover log.
type Event struct {
	Kind EventKind
	// Worker is the dead worker the event concerns.
	Worker string
	// At is the wall clock of the event.
	At time.Time
	// Epoch is the schedule epoch the event belongs to (the new epoch for
	// reschedule/recovery events).
	Epoch uint64
}

// pushEventLocked appends to the bounded event ring, evicting the oldest
// entry once the configured depth is reached. Caller holds l.mu.
func (l *Leader) pushEventLocked(e Event) {
	if l.evDepth <= 0 {
		l.evDepth = defaultEventDepth
	}
	if l.events == nil {
		l.events = make([]Event, l.evDepth)
	}
	if l.evCount < l.evDepth {
		l.events[(l.evStart+l.evCount)%l.evDepth] = e
		l.evCount++
		return
	}
	l.events[l.evStart] = e
	l.evStart = (l.evStart + 1) % l.evDepth
}

// Events returns a copy of the leader's event log: the most recent entries
// up to the configured history depth (WithEventHistory), oldest first.
func (l *Leader) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, l.evCount)
	for i := 0; i < l.evCount; i++ {
		out[i] = l.events[(l.evStart+i)%l.evDepth]
	}
	return out
}

// readSession drains one worker's control connection after start:
// heartbeats refresh the liveness clock and stash the worker's lazy
// checkpoints; acks advance the worker's applied epoch.
func (l *Leader) readSession(s *session) {
	for {
		var cm ctrlMsg
		if err := s.dec.Decode(&cm); err != nil {
			return
		}
		switch m := cm.M.(type) {
		case heartbeatMsg:
			var ack checkpointAckMsg
			l.mu.Lock()
			l.lastBeat[m.Name] = time.Now()
			if len(m.Checkpoints) > 0 {
				// Checkpoints arrive as deltas against the last acked
				// version watermark: splice them onto the retained
				// snapshots and ack the new watermark so the worker can
				// trim the next heartbeat further.
				merged := mergeCheckpoints(l.checkpoints[m.Name], m.Checkpoints)
				l.checkpoints[m.Name] = merged
				ack.Acked = make(map[string]uint64, len(merged))
				for op, cp := range merged {
					ack.Acked[op] = cp.L
				}
			}
			if m.Frontiers != nil {
				l.frontiers[m.Name] = m.Frontiers
			}
			// Difference the cumulative urgency-miss counter against the
			// previous heartbeat so placement scores react to *recent*
			// pressure, not a worker's whole history.
			l.missDelta[m.Name] = m.Congestion.UrgencyMisses - l.missBase[m.Name]
			l.missBase[m.Name] = m.Congestion.UrgencyMisses
			l.congestion[m.Name] = m.Congestion
			// Per-operator miss deltas accumulate into per-tenant totals.
			// An operator that migrated here restarts its counter at zero;
			// the cum < base guard treats that as a reset, not underflow.
			if len(m.OpMisses) > 0 {
				base := l.opMissBase[m.Name]
				if base == nil {
					base = make(map[string]uint64)
					l.opMissBase[m.Name] = base
				}
				for op, cum := range m.OpMisses {
					d := cum - base[op]
					if cum < base[op] {
						d = cum
					}
					base[op] = cum
					if d > 0 {
						l.tenantMiss[l.tenantOf[op]] += d
					}
				}
			}
			l.mu.Unlock()
			if ack.Acked != nil {
				_ = s.send(ctrlMsg{M: ack})
			}
		case rescheduleAckMsg:
			l.mu.Lock()
			if m.Epoch > l.ackEpoch[m.Name] {
				l.ackEpoch[m.Name] = m.Epoch
			}
			l.mu.Unlock()
		case drainReadyMsg:
			// Route the donor's freeze-time snapshot to the drain or
			// migration waiting on it.
			l.mu.Lock()
			ch := l.drainWait[m.Name]
			l.mu.Unlock()
			if ch != nil {
				select {
				case ch <- m:
				default:
				}
			}
		}
	}
}

// monitor polls heartbeat ages and runs failover when one crosses
// FailAfter. Polling at a quarter of the fail window keeps worst-case
// detection latency at FailAfter + FailAfter/4 past the last heartbeat.
func (l *Leader) monitor() {
	tick := l.failAfter / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-l.quit:
			return
		case <-t.C:
		}
		now := time.Now()
		var dead []string
		l.mu.Lock()
		for w, up := range l.alive {
			// A draining worker has stopped being schedulable; its drain
			// completes (or times out) under reconfigMu — declaring it
			// dead mid-handoff would race the drain's own reschedule.
			if up && !l.draining[w] && now.Sub(l.lastBeat[w]) > l.failAfter {
				dead = append(dead, w)
			}
		}
		l.mu.Unlock()
		sort.Strings(dead)
		for _, d := range dead {
			l.failover(d)
		}
		l.autoscaleTick()
	}
}

// failover re-places a dead worker's operators onto the survivors and
// pushes the new schedule, shipping the dead worker's last known
// checkpoints so the adopters can restore state at the last consistent
// watermark.
func (l *Leader) failover(dead string) {
	l.reconfigMu.Lock()
	defer l.reconfigMu.Unlock()
	detected := time.Now()
	l.mu.Lock()
	if !l.alive[dead] {
		l.mu.Unlock()
		return
	}
	l.alive[dead] = false
	// A worker that died mid-drain is simply dead; the drain waiter times
	// out on its own.
	delete(l.draining, dead)
	l.members = removeMember(l.members, dead)
	var survivors []string
	for _, w := range l.members {
		if l.alive[w] {
			survivors = append(survivors, w)
		}
	}
	epoch := l.sched.Epoch + 1
	l.pushEventLocked(Event{Kind: EventFailureDetected, Worker: dead, At: detected, Epoch: epoch})
	if len(survivors) == 0 {
		l.pushEventLocked(Event{Kind: EventClusterLost, Worker: dead, At: time.Now(), Epoch: epoch})
		l.mu.Unlock()
		return
	}
	// Draining workers are mid-handoff: they must not receive new
	// orphans (their own operators are leaving). They still participate
	// in the protocol — routes, acks, replay — until their drain
	// completes. With nothing but draining survivors left, fall back to
	// using them rather than losing the cluster.
	candidates := make([]string, 0, len(survivors))
	for _, w := range survivors {
		if !l.draining[w] {
			candidates = append(candidates, w)
		}
	}
	if len(candidates) == 0 {
		candidates = survivors
	}

	// Congestion-fed re-placement: orphans avoid survivors whose latest
	// heartbeats show queue backlog or urgency misses, affinity
	// permitting; host adverts re-break score ties toward survivors whose
	// host carries a neighbor, so rescued edges come back as ring edges.
	assign := ReassignTopo(l.gm, l.assign, dead, candidates, l.scoresLocked(), l.hostsLocked())
	// Re-home ingest injection and extraction points that lived on the
	// dead worker so the routing table never names it.
	l.rehomeLocked(dead, candidates[0])
	// Only checkpoints for operators that actually lived on the dead
	// worker travel with the delta.
	cps := make(map[string]state.Checkpoint)
	for op, cp := range l.checkpoints[dead] {
		if l.assign[op] == dead {
			cps[op] = cp
		}
	}
	// The consistent restore cut: each orphan may only restore as far
	// forward as every consumer of its outputs has provably received —
	// anything newer the dead worker produced may have been lost in flight
	// and must be regenerated by re-processing past the cut.
	cuts := restoreCuts(l.gm, l.assign, dead, l.frontiers, cps, l.extract)
	sched := l.buildScheduleLocked(assign, epoch)
	l.assign, l.sched = assign, sched
	var sessions []*session
	for _, w := range survivors {
		if s, ok := l.sessions[w]; ok {
			sessions = append(sessions, s)
		}
	}
	l.pushEventLocked(Event{Kind: EventRescheduled, Worker: dead, At: time.Now(), Epoch: epoch})
	l.mu.Unlock()

	rm := rescheduleMsg{Dead: dead, Schedule: sched, Checkpoints: cps, RestoreAt: cuts}
	for _, s := range sessions {
		_ = s.send(ctrlMsg{M: rm})
	}
	if !l.awaitAcks(survivors, epoch) {
		return
	}
	// Barrier release: every survivor has adopted and fenced its share of
	// the orphans, so producers can replay retained windows without racing
	// a not-yet-subscribed consumer.
	for _, s := range sessions {
		_ = s.send(ctrlMsg{M: replayMsg{Epoch: epoch}})
	}
	l.mu.Lock()
	l.pushEventLocked(Event{Kind: EventRecovered, Worker: dead, At: time.Now(), Epoch: epoch})
	l.mu.Unlock()
}

// removeMember returns members without name, preserving order.
func removeMember(members []string, name string) []string {
	out := members[:0]
	for _, w := range members {
		if w != name {
			out = append(out, w)
		}
	}
	return out
}

// rehomeLocked moves ingest injection points off a departing worker and
// drops it from extraction lists. Caller holds l.mu.
func (l *Leader) rehomeLocked(gone, to string) {
	ingest := make(map[stream.ID]string, len(l.ingest))
	for id, w := range l.ingest {
		if w == gone {
			w = to
		}
		ingest[id] = w
	}
	extract := make(map[stream.ID][]string, len(l.extract))
	for id, ws := range l.extract {
		keep := make([]string, 0, len(ws))
		for _, w := range ws {
			if w != gone {
				keep = append(keep, w)
			}
		}
		extract[id] = keep
	}
	l.ingest, l.extract = ingest, extract
}

// restoreCuts computes, per orphaned operator, the newest watermark it may
// be restored at without skipping an output some consumer still needs: the
// minimum over its output streams of (a) every surviving reader's reported
// frontier on that stream — everything at or below a frontier has reached
// the reader, anything newer may have died in flight with the worker — and
// (b) every co-orphaned reader's own predicted restore point, since a
// restored consumer re-processes past its fence and needs those inputs
// regenerated. (b) makes this a fixpoint over the orphan set; it converges
// in at most one pass per orphan because cuts only decrease. A reader with
// no reported frontier yet contributes zero (restore at the oldest retained
// version — conservative, never unsafe: over-regenerated outputs are
// stale-dropped at consumer fences). Operators with no readers are
// unconstrained.
//
// extract lists the workers extracting each stream: a subscription-only
// extraction point is a reader too — it has no operator runtime, so its
// worker's reported frontier (tracked by the node's extraction tap) stands
// in for an input watermark. Without this an orphaned producer whose only
// consumer is an extraction point would restore unconstrained and skip
// outputs the application never received.
func restoreCuts(g graph.View, assign map[string]string, dead string,
	frontiers map[string]map[stream.ID]uint64, cps map[string]state.Checkpoint,
	extract map[stream.ID][]string) map[string]uint64 {
	orphans := make(map[string]bool)
	for op, w := range assign {
		if w == dead {
			orphans[op] = true
		}
	}
	return restoreCutsFor(g, assign, orphans, dead, frontiers, cps, extract)
}

// restoreCutsFor is restoreCuts generalized over an explicit orphan set:
// orphans lists the operators being re-placed, and gone names a worker
// whose frontier reports must be ignored (the dead worker in failover, ""
// for a live migration where the donor's retained operators keep reporting
// trustworthy frontiers). Failover passes orphans = everything assigned to
// the dead worker; a drain passes the donor's whole operator set; a
// partial migration passes just the moved operators, so retained readers
// on the donor constrain the cut like any other surviving consumer.
func restoreCutsFor(g graph.View, assign map[string]string, orphans map[string]bool, gone string,
	frontiers map[string]map[stream.ID]uint64, cps map[string]state.Checkpoint,
	extract map[stream.ID][]string) map[string]uint64 {
	readers := make(map[stream.ID][]string)
	outputs := make(map[string][]stream.ID)
	cuts := make(map[string]uint64)
	for _, spec := range g.Operators() {
		for _, in := range spec.Inputs {
			readers[in] = append(readers[in], spec.Name)
		}
		if orphans[spec.Name] {
			outputs[spec.Name] = spec.Outputs
			cuts[spec.Name] = math.MaxUint64
		}
	}
	// predicted restore point of an orphaned reader: what its checkpoint
	// will actually fence at for the current cut (possibly older than the
	// cut itself when no version lands exactly on it).
	fence := func(op string) uint64 {
		if cp, ok := cps[op]; ok {
			return cp.PickL(cuts[op])
		}
		return cuts[op]
	}
	for changed := true; changed; {
		changed = false
		for op, outs := range outputs {
			cut := cuts[op]
			for _, out := range outs {
				for _, r := range readers[out] {
					var c uint64
					if orphans[r] {
						c = fence(r)
					} else if assign[r] == gone && gone != "" {
						// A non-orphan reader on the departed worker no
						// longer exists; it cannot constrain the cut.
						continue
					} else {
						c = frontiers[assign[r]][out]
					}
					if c < cut {
						cut = c
					}
				}
				for _, w := range extract[out] {
					if w == gone && gone != "" {
						continue
					}
					if c := frontiers[w][out]; c < cut {
						cut = c
					}
				}
			}
			if cut < cuts[op] {
				cuts[op] = cut
				changed = true
			}
		}
	}
	return cuts
}

// awaitAcks waits until every survivor has acknowledged epoch (bounded by
// 4x the fail window so a wedged survivor cannot stall the monitor
// forever). A survivor that dies mid-recovery is excused — it gets its own
// failover pass.
func (l *Leader) awaitAcks(survivors []string, epoch uint64) bool {
	deadline := time.Now().Add(4 * l.failAfter)
	for time.Now().Before(deadline) {
		select {
		case <-l.quit:
			return false
		case <-time.After(time.Millisecond):
		}
		l.mu.Lock()
		acked := 0
		for _, w := range survivors {
			if !l.alive[w] || l.ackEpoch[w] >= epoch {
				acked++
			}
		}
		done := acked == len(survivors)
		l.mu.Unlock()
		if done {
			return true
		}
	}
	return false
}

// replayDepth bounds how many recent messages per stream a node retains
// for re-delivery to a reassigned consumer. The receiver's restored
// watermark stale-drops anything already applied, so replaying too much is
// merely redundant, never incorrect.
const replayDepth = 512

// replayRing is a fixed-size ring of a stream's most recent messages
// (data and watermarks, in send order).
type replayRing struct {
	buf   []message.Message
	start int
	n     int
}

func newReplayRing(depth int) *replayRing {
	return &replayRing{buf: make([]message.Message, depth)}
}

func (r *replayRing) add(m message.Message) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = m
		r.n++
		return
	}
	r.buf[r.start] = m
	r.start = (r.start + 1) % len(r.buf)
}

func (r *replayRing) snapshot() []message.Message {
	out := make([]message.Message, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// congestionReport snapshots the node's scheduler and data-plane pressure
// for the next heartbeat.
func (n *Node) congestionReport() CongestionReport {
	c := n.Worker.Congestion()
	r := CongestionReport{Ready: c.Ready, Pending: c.Pending, UrgencyMisses: c.UrgencyMisses}
	if n.Transport != nil {
		r.Peers = n.Transport.PeerCoalesceStats()
	}
	r.RelayRepublished = n.relayed.Load()
	if n.bgroup != nil {
		if sc, ok := n.bgroup.Sink().(comm.SpillCounter); ok {
			r.RelayRingSpills = sc.Spills()
		}
	}
	return r
}

// heartbeatLoop ships heartbeats (with the worker's current operator
// checkpoints) until the node stops or the leader goes away.
func (n *Node) heartbeatLoop(period time.Duration) {
	t := time.NewTicker(period)
	defer t.Stop()
	var seq uint64
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		seq++
		n.repairLinks()
		n.mu.Lock()
		acked := make(map[string]uint64, len(n.ckAcked))
		for op, a := range n.ckAcked {
			acked[op] = a
		}
		n.mu.Unlock()
		hb := heartbeatMsg{Name: n.Name, Seq: seq,
			Checkpoints: trimCheckpoints(n.Worker.Checkpoints(), acked),
			Frontiers:   n.Worker.Frontiers(),
			Congestion:  n.congestionReport(),
			OpMisses:    n.Worker.OpUrgencyMisses()}
		n.encMu.Lock()
		before := n.ctrlOut.n
		err := n.enc.Encode(ctrlMsg{M: hb}) //erdos:allow lockhold encMu exists to serialize writers on the single control stream
		n.hbBytes.Store(n.ctrlOut.n - before)
		n.encMu.Unlock()
		if err != nil {
			return
		}
	}
}

// shmTarget reports the "shm://" dial target for peer when a ring link is
// both possible (matching host adverts, peer published a ring rendezvous)
// and advisable (the peer's ring is not suspect after a sever).
func (n *Node) shmTarget(sched Schedule, peer string) (string, bool) {
	if n.hostID == "" || sched.PeerHosts[peer] != n.hostID || sched.PeerShm[peer] == "" {
		return "", false
	}
	n.mu.Lock()
	suspect := n.shmSuspect[peer]
	n.mu.Unlock()
	if suspect {
		return "", false
	}
	return "shm://" + sched.PeerShm[peer], true
}

// noteScheme records the scheme a live link to peer came up with — at
// dial time, not just at heartbeat ticks, so a link severed before its
// first tick is still recognized as a ring link by repairLinks.
func (n *Node) noteScheme(peer, scheme string) {
	n.mu.Lock()
	n.lastScheme[peer] = scheme
	n.mu.Unlock()
}

// dialPeer opens the data-plane link to peer per the schedule: the peer's
// shared-memory ring when both sides advertise the same host, TCP
// otherwise — and TCP as the fallback when the ring dial fails, so host
// locality can never make a cluster less available than plain TCP was.
func (n *Node) dialPeer(sched Schedule, peer string) error {
	if addr, ok := n.shmTarget(sched, peer); ok {
		if err := n.Transport.Dial(addr); err == nil {
			n.noteScheme(peer, "shm")
			return nil
		}
		n.mu.Lock()
		n.shmSuspect[peer] = true
		n.mu.Unlock()
	}
	err := n.Transport.Dial(sched.PeerAddrs[peer])
	if err == nil {
		n.noteScheme(peer, "tcp")
	}
	return err
}

// dialPeerBackoff is dialPeer for recovery paths: one ring attempt (the
// listener either exists or it does not — retrying a broken ring only
// delays repair), then TCP with comm's exponential backoff riding over
// peers that are themselves mid-recovery.
func (n *Node) dialPeerBackoff(sched Schedule, peer string, attempts int, base time.Duration) error {
	if addr, ok := n.shmTarget(sched, peer); ok {
		if err := n.Transport.Dial(addr); err == nil {
			n.noteScheme(peer, "shm")
			return nil
		}
		n.mu.Lock()
		n.shmSuspect[peer] = true
		n.mu.Unlock()
	}
	err := n.Transport.DialBackoff(sched.PeerAddrs[peer], attempts, base)
	if err == nil {
		n.noteScheme(peer, "tcp")
	}
	return err
}

// repairLinks runs every heartbeat tick: any scheduled peer missing from
// the live peer set is re-dialed, with the same dial-side ordering as Join
// so only one side of a severed pair reconnects. A peer whose last live
// link was a ring is marked shm-suspect first — whatever severed the ring
// (a torn-down mmap, a fault injection) would sever a fresh one too — so
// its repair dial goes straight to TCP. Dials run in goroutines bounded by
// the repairing set, one in flight per peer.
func (n *Node) repairLinks() {
	schemes := n.Transport.PeerSchemes()
	n.mu.Lock()
	sched := n.schedule
	for p, s := range schemes {
		n.lastScheme[p] = s
	}
	var dials []string
	for peer := range sched.PeerAddrs {
		if peer <= n.Name {
			continue
		}
		if _, up := schemes[peer]; up {
			continue
		}
		if n.lastScheme[peer] == "shm" {
			n.shmSuspect[peer] = true
		}
		delete(n.lastScheme, peer)
		if n.repairing[peer] {
			continue
		}
		n.repairing[peer] = true
		dials = append(dials, peer)
	}
	n.mu.Unlock()
	for _, peer := range dials {
		peer := peer
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			_ = n.dialPeerBackoff(sched, peer, n.dialAttempts, n.dialBase)
			n.mu.Lock()
			delete(n.repairing, peer)
			n.mu.Unlock()
		}()
	}
}

// controlLoop applies leader pushes (reschedule deltas and replay-barrier
// releases) until the control connection drops.
func (n *Node) controlLoop(dec *gob.Decoder) {
	for {
		var cm ctrlMsg
		if err := dec.Decode(&cm); err != nil {
			return
		}
		switch m := cm.M.(type) {
		case rescheduleMsg:
			n.applyReschedule(m)
		case replayMsg:
			n.runReplay(m.Epoch)
		case checkpointAckMsg:
			n.mu.Lock()
			for op, a := range m.Acked {
				if a > n.ckAcked[op] {
					n.ckAcked[op] = a
				}
			}
			n.mu.Unlock()
		case drainMsg:
			// Freeze the named operators (nil = all) and answer with
			// their checkpoints plus current frontiers — the donor side
			// of a drain or migration. Release is synchronous and cheap
			// (flag + snapshot), so the leader's wait stays short.
			cps := n.Worker.Release(m.Ops)
			fr := n.Worker.Frontiers()
			n.encMu.Lock()
			_ = n.enc.Encode(ctrlMsg{M: drainReadyMsg{Name: n.Name, Checkpoints: cps, Frontiers: fr}}) //erdos:allow lockhold encMu exists to serialize writers on the single control stream
			n.encMu.Unlock()
		case drainDoneMsg:
			// Full drain complete: operators live elsewhere, replay
			// barrier released. Signal the application it may Close.
			n.drainedOnce.Do(func() { close(n.drained) })
		}
	}
}

// Drained reports a full drain's completion: the channel closes when the
// leader confirms every operator this worker hosted has been handed off
// and the replay barrier released, so Close loses nothing.
func (n *Node) Drained() <-chan struct{} { return n.drained }

// syncTenants extends the worker with any tenant graphs named by the
// schedule that this node has not seen yet. Resolution failures (no
// resolver, or the resolver returns nil) skip the tenant: this node
// cannot host it, and the leader's placement must keep its operators
// elsewhere.
func (n *Node) syncTenants(sched Schedule) {
	for _, t := range sched.Tenants {
		n.mu.Lock()
		known := n.tenantsKnown[t]
		n.mu.Unlock()
		if known {
			continue
		}
		var sub *graph.Graph
		if n.resolver != nil {
			sub = n.resolver(t)
		}
		if sub == nil {
			continue
		}
		if err := n.Worker.Extend(sub); err != nil {
			continue
		}
		n.mu.Lock()
		n.tenantsKnown[t] = true
		n.mu.Unlock()
	}
}

// applyReschedule is the survivor side of failover:
//
//  1. drop the dead peer's data-plane connection;
//  2. adopt orphaned operators assigned here, restoring their
//     time-versioned state from the shipped checkpoints (the restored
//     watermark fences out replayed duplicates) and replaying
//     locally-produced input windows inside the adoption window;
//  3. retarget forwarding: dropped consumers stop immediately, while
//     additions are deferred to the leader's replay barrier so the
//     retained window reaches the new consumer first;
//  4. re-dial any peer the mesh lost (exponential backoff), and
//  5. ack the epoch to the leader.
func (n *Node) applyReschedule(rm rescheduleMsg) {
	n.mu.Lock()
	if rm.Schedule.Epoch <= n.epoch {
		n.mu.Unlock()
		n.ack(rm.Schedule.Epoch)
		return
	}
	n.epoch = rm.Schedule.Epoch
	// A dead relay is a loss channel the consistent cut cannot see: frames
	// this node shipped to it may have died in its republish queue while
	// the co-host consumers' own links stayed healthy. Remember which of
	// our streams routed through the dead worker so the retained window is
	// force-replayed to the consumers it covered.
	oldRelay := n.schedule.PeerRelay
	n.schedule = rm.Schedule
	// Forget the leader's checkpoint acks: operators may arrive (or return)
	// with rewound state, so the next heartbeat ships full snapshots and
	// the ack watermark rebuilds from there. One oversized heartbeat per
	// reschedule is the price of never trimming against a stale ack.
	n.ckAcked = make(map[string]uint64)
	n.mu.Unlock()

	// Membership-change reschedules (join, drain, migrate, submit) carry
	// Dead == "": nothing to disconnect, and the schedule may name tenant
	// graphs this node has not materialized yet.
	if rm.Dead != "" {
		n.Transport.Disconnect(rm.Dead)
	}
	n.syncTenants(rm.Schedule)

	// Reconcile broadcast-ring subscriptions with the new routes: detach
	// from the dead producer's ring (its group died with it) and join any
	// ring a rescued fanout edge now runs through.
	n.syncBusReaders(rm.Schedule)

	// Consumer half of relay-failure recovery: if the dead worker relayed
	// streams to this host, the tail of what arrived here may sit partially
	// applied in open ticks — data landed, closing watermark died in the
	// relay's queue. Discard those open views now, before acking: the
	// producer parks us until the barrier and then force-replays the
	// retained window from our last closed tick, rebuilding the open ticks
	// from committed state instead of double-applying into dirty views.
	// Only operators all of whose inputs rode the dead relay rewind — an
	// unaffected input's open contributions have no replay to rebuild them.
	if rm.Dead != "" && n.hostID != "" {
		affected := make(map[stream.ID]bool)
		for s, hostRelay := range oldRelay {
			if hostRelay[n.hostID] == rm.Dead {
				affected[stream.ID(s)] = true
			}
		}
		if len(affected) > 0 {
			for _, spec := range n.Worker.View().Operators() {
				if !n.Worker.Has(spec.Name) || len(spec.Inputs) == 0 {
					continue
				}
				all := true
				for _, in := range spec.Inputs {
					if !affected[in] {
						all = false
						break
					}
				}
				if all {
					n.Worker.RewindOpen(spec.Name)
				}
			}
		}
	}

	// Adopt orphans assigned here. Inputs produced on this node have
	// their retained windows replayed atomically with the adoption: the
	// forwarding locks are held across the ring snapshot and the
	// operator's input subscription, so no live message can overtake the
	// replayed window.
	for _, spec := range n.Worker.View().Operators() {
		if rm.Schedule.Assignments[spec.Name] != n.Name || n.Worker.Has(spec.Name) {
			continue
		}
		var cp *state.Checkpoint
		if c, ok := rm.Checkpoints[spec.Name]; ok {
			c := c
			cp = &c
		}
		replay := make(map[stream.ID][]message.Message)
		var locked []*fwdState
		n.mu.Lock()
		local := make(map[stream.ID]*fwdState)
		for _, in := range spec.Inputs {
			if fs := n.fwd[in]; fs != nil {
				local[in] = fs
			}
		}
		n.mu.Unlock()
		for in, fs := range local {
			fs.mu.Lock()
			locked = append(locked, fs)
			if fs.ring != nil {
				replay[in] = fs.ring.snapshot()
			}
		}
		restoreAt := uint64(math.MaxUint64)
		if r, ok := rm.RestoreAt[spec.Name]; ok {
			restoreAt = r
		}
		_ = n.Worker.Adopt(spec.Name, cp, restoreAt, replay)
		for _, fs := range locked {
			fs.mu.Unlock()
		}
	}

	// Retarget forwarding. Streams newly produced here (adopted
	// operators' outputs) have no history and subscribe immediately;
	// existing streams shrink to the consumers they keep, with additions
	// parked until the barrier.
	routed := make(map[stream.ID]Route)
	for _, r := range rm.Schedule.Routes {
		if r.Producer == n.Name {
			routed[stream.ID(r.Stream)] = r
		}
		// Streams newly forwarded here (re-homed extraction points)
		// start frontier tracking now, before the replay barrier, so the
		// next heartbeat already constrains their producer's restore.
		for _, c := range r.Consumers {
			if c == n.Name {
				_ = n.Worker.TrackFrontier(stream.ID(r.Stream))
			}
		}
	}
	n.mu.Lock()
	for id := range n.fwd {
		if _, ok := routed[id]; !ok {
			routed[id] = Route{}
		}
	}
	n.mu.Unlock()
	var pend []pendingReplay
	for id, r := range routed {
		consumers := r.Consumers
		n.mu.Lock()
		fs := n.fwd[id]
		n.mu.Unlock()
		if fs == nil {
			_ = n.setForwarding(id, consumers, true, r.Broadcast)
			continue
		}
		next := make(map[string]bool, len(consumers))
		for _, c := range consumers {
			next[c] = true
		}
		// Consumers whose relay was the dead worker: their own links never
		// broke, but frames in the dead relay's republish queue are gone.
		// The retained window is force-replayed to them at the barrier;
		// their stale fence drops what they already processed.
		var forced []string
		if rm.Dead != "" {
			for host, relay := range oldRelay[uint64(id)] {
				if relay != rm.Dead {
					continue
				}
				for _, c := range consumers {
					if c != rm.Dead && rm.Schedule.PeerHosts[c] == host {
						forced = append(forced, c)
					}
				}
			}
		}
		inForced := make(map[string]bool, len(forced))
		for _, c := range forced {
			inForced[c] = true
		}
		fs.mu.Lock()
		keep := fs.consumers[:0]
		prev := make(map[string]bool, len(fs.consumers))
		for _, c := range fs.consumers {
			prev[c] = true
			if next[c] && !inForced[c] {
				keep = append(keep, c)
			}
		}
		// Replan against the new schedule: covers shrink to the kept set,
		// and every envelope from here on names the re-elected relays.
		// Forced consumers (their relay died mid-fanout) are parked out of
		// the live plan alongside additions: the dead relay lost a suffix
		// of their stream, so live frames must not resume until the barrier
		// replay has delivered the gap in order. The ring keeps retaining
		// everything forwarded meanwhile.
		fs.setPlanLocked(rm.Schedule, n.Name, id, keep)
		fs.broadcast = r.Broadcast
		fs.mu.Unlock()
		added := false
		for _, c := range consumers {
			if !prev[c] {
				added = true
				break
			}
		}
		if added || len(forced) > 0 {
			pend = append(pend, pendingReplay{id: id, consumers: consumers, forced: forced})
		}
	}
	n.mu.Lock()
	n.pending, n.pendingEpoch = pend, rm.Schedule.Epoch
	n.mu.Unlock()

	// Re-dial missing peers. The same ordering rule as Join avoids both
	// sides of a pair racing to reconnect; backoff rides over peers that
	// are themselves mid-recovery.
	known := make(map[string]bool)
	for _, p := range n.Transport.Peers() {
		known[p] = true
	}
	for peerName := range rm.Schedule.PeerAddrs {
		if peerName <= n.Name || known[peerName] {
			continue
		}
		peer := peerName
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			_ = n.dialPeerBackoff(rm.Schedule, peer, n.dialAttempts, n.dialBase)
		}()
	}

	n.ack(rm.Schedule.Epoch)
}

// runReplay delivers the parked windows once the leader's barrier
// confirms every survivor is fenced and subscribed. Receivers restored at
// watermark L drop everything at or below L, so replaying the whole ring
// is exactly-once from the application's point of view.
func (n *Node) runReplay(epoch uint64) {
	n.mu.Lock()
	if epoch != n.pendingEpoch {
		n.mu.Unlock()
		return
	}
	pend := n.pending
	n.pending = nil
	sched := n.schedule
	n.mu.Unlock()
	for _, p := range pend {
		n.mu.Lock()
		fs := n.fwd[p.id]
		n.mu.Unlock()
		if fs == nil {
			continue
		}
		fs.mu.Lock()
		prev := make(map[string]bool, len(fs.consumers))
		for _, c := range fs.consumers {
			prev[c] = true
		}
		var added []string
		for _, c := range p.consumers {
			if !prev[c] {
				added = append(added, c)
			}
		}
		// Forced targets (survivors whose relay died mid-fanout) get the
		// window too, provided the new schedule still routes them here.
		// Their fence drops the prefix they already saw; only the suffix
		// that may have died in the relay's queue is genuinely new.
		inAdded := make(map[string]bool, len(added))
		for _, c := range added {
			inAdded[c] = true
		}
		targets := added
		for _, c := range p.forced {
			if prev[c] && !inAdded[c] {
				targets = append(targets, c)
			}
		}
		if fs.ring != nil && len(targets) > 0 {
			for _, m := range fs.ring.snapshot() {
				// Replayed frames carry no deadline; an empty hint still
				// lets the coalescer batch the retained window. Multiple
				// adopters share one encode per retained frame.
				// Replay must finish under fs.mu so newer frames cannot
				// overtake the retained window. Replay is deliberately
				// pairwise — no relay hop — since the point is to bypass
				// the channel that just died.
				sent, _ := n.Transport.MulticastWithHint(targets, p.id, m, comm.FlushHint{})
				n.forwarded.Add(uint64(sent))
			}
		}
		fs.setPlanLocked(sched, n.Name, p.id, append([]string(nil), p.consumers...))
		fs.mu.Unlock()
	}
}

func (n *Node) ack(epoch uint64) {
	n.encMu.Lock()
	_ = n.enc.Encode(ctrlMsg{M: rescheduleAckMsg{Name: n.Name, Epoch: epoch}}) //erdos:allow lockhold encMu exists to serialize writers on the single control stream
	n.encMu.Unlock()
}
