package comm

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

func TestEnvelopeRoundTripBytes(t *testing.T) {
	id := stream.NewID()
	payload := []byte("sensor frame")
	m := message.Data(timestamp.New(7, 2), payload)
	gotID, gotM := FromEnvelope(ToEnvelope(id, m))
	if gotID != id {
		t.Fatalf("stream id = %d, want %d", gotID, id)
	}
	if !gotM.Timestamp.Equal(m.Timestamp) || !gotM.IsData() {
		t.Fatalf("message = %v", gotM)
	}
	if !bytes.Equal(gotM.Payload.([]byte), payload) {
		t.Fatalf("payload = %v", gotM.Payload)
	}
}

func TestEnvelopeRoundTripWatermarkAndTop(t *testing.T) {
	id := stream.NewID()
	_, w := FromEnvelope(ToEnvelope(id, message.Watermark(timestamp.New(4))))
	if !w.IsWatermark() || w.Timestamp.L != 4 {
		t.Fatalf("watermark = %v", w)
	}
	_, top := FromEnvelope(ToEnvelope(id, message.Top()))
	if !top.IsTop() {
		t.Fatalf("top = %v", top)
	}
}

type obstacle struct {
	X, Y float64
	Tag  string
}

func TestTransportDeliversStructs(t *testing.T) {
	RegisterPayload(obstacle{})
	type rcv struct {
		id stream.ID
		m  message.Message
	}
	got := make(chan rcv, 10)
	a, err := Listen("a", "127.0.0.1:0", func(_ string, id stream.ID, m message.Message) {
		got <- rcv{id, m}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Dial(a.Addr()); err != nil {
		t.Fatal(err)
	}
	id := stream.NewID()
	want := obstacle{X: 1.5, Y: -2, Tag: "ped"}
	if err := b.Send("a", id, message.Data(timestamp.New(3), want)); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.id != id {
			t.Fatalf("stream id = %d, want %d", r.id, id)
		}
		if o := r.m.Payload.(obstacle); o != want {
			t.Fatalf("payload = %+v", o)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never arrived")
	}
}

func TestTransportBidirectional(t *testing.T) {
	gotA := make(chan message.Message, 1)
	gotB := make(chan message.Message, 1)
	a, err := Listen("a", "127.0.0.1:0", func(_ string, _ stream.ID, m message.Message) { gotA <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("b", "127.0.0.1:0", func(_ string, _ stream.ID, m message.Message) { gotB <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Dial(a.Addr()); err != nil {
		t.Fatal(err)
	}
	id := stream.NewID()
	if err := b.Send("a", id, message.Data(timestamp.New(1), []byte("to-a"))); err != nil {
		t.Fatal(err)
	}
	select {
	case <-gotA:
	case <-time.After(2 * time.Second):
		t.Fatal("a never received")
	}
	// The accept side registered b as a peer too: reply over the same
	// session.
	if err := a.Send("b", id, message.Data(timestamp.New(2), []byte("to-b"))); err != nil {
		t.Fatal(err)
	}
	select {
	case <-gotB:
	case <-time.After(2 * time.Second):
		t.Fatal("b never received")
	}
}

func TestTransportOrderingPerPeer(t *testing.T) {
	var mu sync.Mutex
	var seen []uint64
	a, err := Listen("a", "127.0.0.1:0", func(_ string, _ stream.ID, m message.Message) {
		mu.Lock()
		seen = append(seen, m.Timestamp.L)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Dial(a.Addr()); err != nil {
		t.Fatal(err)
	}
	id := stream.NewID()
	const n = 500
	for i := 0; i < n; i++ {
		if err := b.Send("a", id, message.Data(timestamp.New(uint64(i)), []byte{1})); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		cnt := len(seen)
		mu.Unlock()
		if cnt == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d", cnt, n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := range seen {
		if seen[i] != uint64(i) {
			t.Fatalf("out-of-order delivery at %d: %d", i, seen[i])
		}
	}
	if sent, _ := b.Counters(); sent != n {
		t.Fatalf("sent counter = %d", sent)
	}
	if _, recv := a.Counters(); recv != n {
		t.Fatalf("received counter = %d", recv)
	}
}

// TestRawFastPathRoundTrip drives []byte payloads and watermarks — the
// binary fast path — over a real TCP connection, interleaved with gob-path
// struct payloads to prove both framings coexist on one gob-initialized
// stream. None of the raw frames touch reflection.
func TestRawFastPathRoundTrip(t *testing.T) {
	RegisterPayload(obstacle{})
	got := make(chan message.Message, 16)
	a, err := Listen("a", "127.0.0.1:0", func(_ string, _ stream.ID, m message.Message) {
		got <- m
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Dial(a.Addr()); err != nil {
		t.Fatal(err)
	}
	id := stream.NewID()
	sent := []message.Message{
		message.Data(timestamp.New(7, 3, 1), []byte("camera-frame")),
		message.Watermark(timestamp.New(7, 3, 1)),
		message.Data(timestamp.New(8), obstacle{X: 1, Tag: "gob"}), // gob fallback
		message.Data(timestamp.New(9, 2), []byte{}),                // empty raw payload
		message.Data(timestamp.New(10), obstacle{X: 2, Tag: "gob2"}),
		message.Data(timestamp.New(11), []byte("after-gob")),
		message.Top(),
	}
	for _, m := range sent {
		if err := b.Send("a", id, m); err != nil {
			t.Fatalf("send %v: %v", m, err)
		}
	}
	for i, want := range sent {
		var m message.Message
		select {
		case m = <-got:
		case <-time.After(2 * time.Second):
			t.Fatalf("message %d never arrived", i)
		}
		if m.Kind != want.Kind || !m.Timestamp.Equal(want.Timestamp) || m.Timestamp.IsTop() != want.Timestamp.IsTop() {
			t.Fatalf("message %d = %v, want %v", i, m, want)
		}
		switch wp := want.Payload.(type) {
		case []byte:
			if !bytes.Equal(m.Payload.([]byte), wp) {
				t.Fatalf("message %d payload = %q, want %q", i, m.Payload, wp)
			}
		case obstacle:
			if m.Payload.(obstacle) != wp {
				t.Fatalf("message %d payload = %+v, want %+v", i, m.Payload, wp)
			}
		}
	}
	// Coordinates must survive the binary timestamp codec exactly.
	if ts := sent[0].Timestamp; ts.Coordinate(0) != 3 || ts.Coordinate(1) != 1 {
		t.Fatalf("test corrupted its own fixture: %v", ts)
	}
	if sentN, _ := b.Counters(); sentN != uint64(len(sent)) {
		t.Fatalf("sent counter = %d, want %d", sentN, len(sent))
	}
	if _, recv := a.Counters(); recv != uint64(len(sent)) {
		t.Fatalf("received counter = %d, want %d", recv, len(sent))
	}
}

// Regression for the sent-counter overcount: a Send that fails because the
// connection closed underneath it must not bump the counter. The remote
// handler blocks so TCP backpressure fills the outbound queue, the sender
// wedges in Send, and Close fails that Send via the done channel.
func TestSendFailureDoesNotCountAsSent(t *testing.T) {
	unblock := make(chan struct{})
	a, err := Listen("a", "127.0.0.1:0", func(string, stream.ID, message.Message) {
		<-unblock
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer close(unblock) // runs before a.Close, releasing a's readLoop
	c, err := Listen("c", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Dial(a.Addr()); err != nil {
		t.Fatal(err)
	}
	id := stream.NewID()
	payload := make([]byte, 64<<10)
	progress := make(chan struct{}, 1)
	var okSends atomic.Uint64
	var failedSends atomic.Uint64
	go func() {
		for i := 0; ; i++ {
			if err := c.Send("a", id, message.Data(timestamp.New(uint64(i+1)), payload)); err != nil {
				failedSends.Add(1)
				return
			}
			okSends.Add(1)
			select {
			case progress <- struct{}{}:
			default:
			}
		}
	}()
	// Wait until the sender makes no progress for a while: it is wedged in
	// Send with the queue and socket buffers full.
	idle := 0
	for idle < 5 {
		select {
		case <-progress:
			idle = 0
		case <-time.After(100 * time.Millisecond):
			idle++
		}
	}
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for failedSends.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sender never observed the closed connection")
		}
		time.Sleep(time.Millisecond)
	}
	if sent, _ := c.Counters(); sent != okSends.Load() {
		t.Fatalf("sent counter = %d, want %d successful sends (failed send was counted)",
			sent, okSends.Load())
	}
}

func TestSendToUnknownPeer(t *testing.T) {
	a, err := Listen("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send("ghost", stream.NewID(), message.Top()); err == nil {
		t.Fatal("send to unknown peer must fail")
	}
}

func TestCloseStopsCleanly(t *testing.T) {
	a, err := Listen("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen("b", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Dial(a.Addr()); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		a.Close()
		b.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung")
	}
}

func TestManyPeers(t *testing.T) {
	hub, err := Listen("hub", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	var spokes []*Transport
	counts := make([]chan struct{}, 5)
	for i := 0; i < 5; i++ {
		ch := make(chan struct{}, 1)
		counts[i] = ch
		s, err := Listen(fmt.Sprintf("s%d", i), "127.0.0.1:0", func(_ string, _ stream.ID, _ message.Message) {
			ch <- struct{}{}
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.Dial(hub.Addr()); err != nil {
			t.Fatal(err)
		}
		spokes = append(spokes, s)
	}
	// Wait for the hub's accept side to register all spokes.
	deadline := time.Now().Add(2 * time.Second)
	for len(hub.Peers()) < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("hub registered %d peers", len(hub.Peers()))
		}
		time.Sleep(time.Millisecond)
	}
	id := stream.NewID()
	for i := 0; i < 5; i++ {
		if err := hub.Send(fmt.Sprintf("s%d", i), id, message.Data(timestamp.New(0), []byte("x"))); err != nil {
			t.Fatal(err)
		}
	}
	for i, ch := range counts {
		select {
		case <-ch:
		case <-time.After(2 * time.Second):
			t.Fatalf("spoke %d never received", i)
		}
	}
	_ = spokes
}
