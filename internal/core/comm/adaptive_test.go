package comm

import (
	"bytes"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// TestCoalesceTunerAdaptsToSlack: hinted traffic grows the flush budget and
// hold cap toward the observed slack window; unhinted traffic keeps the
// fixed defaults; a link that stops hinting decays back to them.
func TestCoalesceTunerAdaptsToSlack(t *testing.T) {
	var c coalesceTuner
	if c.budget() != flushBudget || c.hold() != maxCoalesceHold {
		t.Fatalf("zero-state tuner changed the defaults: budget %d hold %v", c.budget(), c.hold())
	}

	// 1 KB frames every ~50µs carrying 2ms of slack: the slack window fits
	// ~40 frames, so the budget should grow past the 32 KB floor.
	base := time.Unix(0, 0)
	for i := 0; i < 64; i++ {
		now := base.Add(time.Duration(i) * 50 * time.Microsecond)
		c.observe(now, 1024, now.Add(2*time.Millisecond))
	}
	if b := c.budget(); b <= flushBudget {
		t.Fatalf("hinted budget %d, want > %d", b, flushBudget)
	}
	if b := c.budget(); b > maxFlushBudget {
		t.Fatalf("budget %d exceeds cap %d", b, maxFlushBudget)
	}
	if h := c.hold(); h <= maxCoalesceHold || h > maxAdaptiveHold {
		t.Fatalf("hinted hold %v, want in (%v, %v]", h, maxCoalesceHold, maxAdaptiveHold)
	}

	// The same link going unhinted decays slack back toward zero and the
	// knobs return to their floors.
	for i := 64; i < 256; i++ {
		now := base.Add(time.Duration(i) * 50 * time.Microsecond)
		c.observe(now, 1024, time.Time{})
	}
	if b := c.budget(); b != flushBudget {
		t.Fatalf("post-decay budget %d, want floor %d", b, flushBudget)
	}
}

// TestCoalesceTunerIgnoresExpiredHints: a FlushBy already in the past is no
// slack at all and must not inflate the budget.
func TestCoalesceTunerIgnoresExpiredHints(t *testing.T) {
	var c coalesceTuner
	base := time.Unix(0, 0).Add(time.Second)
	for i := 0; i < 32; i++ {
		now := base.Add(time.Duration(i) * 50 * time.Microsecond)
		c.observe(now, 1024, now.Add(-time.Millisecond))
	}
	if b := c.budget(); b != flushBudget {
		t.Fatalf("expired hints grew the budget to %d", b)
	}
}

// TestSendBytesRoundtrip: the no-boxing send path delivers byte-for-byte
// what SendWithHint would, and records per-peer coalescing telemetry.
func TestSendBytesRoundtrip(t *testing.T) {
	got := make(chan message.Message, 1)
	a, err := Listen("sb-a", "127.0.0.1:0", func(_ string, _ stream.ID, m message.Message) {
		got <- m
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	c, err := Listen("sb-c", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Dial(a.Addr()); err != nil {
		t.Fatal(err)
	}

	payload := []byte("deadline-driven")
	ts := timestamp.New(7, 3)
	if err := c.SendBytes("sb-a", 42, ts, payload, FlushHint{}, false); err != nil {
		t.Fatal(err)
	}
	m := <-got
	if !m.IsData() || !m.Timestamp.Equal(ts) {
		t.Fatalf("bad message %v", m)
	}
	if b, ok := m.Payload.([]byte); !ok || !bytes.Equal(b, payload) {
		t.Fatalf("payload %v, want %q", m.Payload, payload)
	}

	stats := c.PeerCoalesceStats()
	ps, ok := stats["sb-a"]
	if !ok {
		t.Fatalf("no per-peer stats for sb-a: %v", stats)
	}
	if ps.Frames == 0 || ps.Bytes == 0 {
		t.Fatalf("per-peer counters empty: %+v", ps)
	}

	// The release variant recycles a pooled payload after the write.
	rp := AcquirePayload(9)
	copy(rp, "recycled!")
	if err := c.SendBytes("sb-a", 42, timestamp.New(8), rp, FlushHint{}, true); err != nil {
		t.Fatal(err)
	}
	m = <-got
	if b, ok := m.Payload.([]byte); !ok || string(b) != "recycled!" {
		t.Fatalf("release payload %v", m.Payload)
	}
}
