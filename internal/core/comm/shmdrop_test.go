package comm_test

import (
	"testing"
	"time"

	comm "github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

func TestShmDisconnectPropagates(t *testing.T) {
	a, err := comm.Listen("a", "127.0.0.1:0", nil, comm.WithBackend(shmBackend(t), ""))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := comm.Listen("b", "127.0.0.1:0", nil, comm.WithBackend(shmBackend(t), ""))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Dial("shm://" + a.AddrOf("shm")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("a", stream.NewID(), message.Data(timestamp.New(1), []byte("x"))); err != nil {
		t.Fatal(err)
	}
	a.Disconnect("b")
	deadline := time.Now().Add(3 * time.Second)
	for {
		if len(b.Peers()) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dialer still sees peers %v after acceptor disconnect", b.Peers())
		}
		time.Sleep(time.Millisecond)
	}
}
