//go:build race

package comm

// raceEnabled reports whether the race detector is active; sync.Pool
// randomly drops Puts under race, so pool-identity tests skip themselves.
const raceEnabled = true
