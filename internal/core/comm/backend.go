// The transport backend seam: everything above it — framing, codec
// negotiation, coalescing, payload pooling, ConnHook fault injection — is
// byte-transport agnostic, and everything below it is a dumb byte pipe.
// TCP is the default backend; same-host peers can ride a shared-memory
// SPSC-ring backend (comm/shm) that plugs in through the same three
// interfaces. Backends carry no framing and no codecs: a backend that
// re-introduced reflection-based encoding below this seam would undo the
// zero-gob data plane, which erdos-vet's zerogob analyzer enforces.
package comm

import (
	"bufio"
	"io"
	"net"
	"strings"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
)

// Backend is a byte-transport provider: it listens for and dials raw
// connections that the Transport layers framing and codec negotiation on
// top of. Implementations must be safe for concurrent Dial calls.
type Backend interface {
	// Scheme names the backend ("tcp", "shm"). Dial targets select a
	// backend with a "scheme://" address prefix; no prefix means tcp.
	Scheme() string
	// Listen binds the backend to addr and returns its listener. The
	// address format is backend-specific (host:port for tcp, a socket
	// path — empty for auto — for shm).
	Listen(addr string) (Listener, error)
	// Dial opens a connection to a peer backend listening on addr.
	Dial(addr string) (net.Conn, error)
}

// Listener accepts inbound backend connections.
type Listener interface {
	Accept() (net.Conn, error)
	// Addr is the dialable address of this listener, without the scheme
	// prefix.
	Addr() string
	Close() error
}

// FrameSink is the buffered byte sink frames are encoded into. A Flush
// marks a frame-train boundary: on TCP it writes the buffered bytes to the
// socket in one syscall, on a shared-memory ring it publishes the staged
// bytes as one record. bufio.Writer satisfies it.
type FrameSink interface {
	io.Writer
	io.ByteWriter
	Flush() error
}

// FrameSource is the buffered byte source frames are decoded from.
// bufio.Reader satisfies it.
type FrameSource interface {
	io.Reader
	io.ByteReader
}

// BufferedConn is an optional connection capability: a conn that provides
// its own frame buffers (a shared-memory ring conn encodes frames directly
// into the mapped ring, skipping the intermediate bufio copy). The
// Transport uses the capability only on unwrapped connections — once a
// ConnHook wraps the conn, framing goes through bufio over the wrapper so
// injected faults see every byte.
type BufferedConn interface {
	net.Conn
	FrameBuffers() (FrameSink, FrameSource)
}

// ValueConn is an optional connection capability for same-process
// backends (inproc): instead of encoding frames to bytes, the transport
// hands whole (stream, message) values to SendValue, which delivers them
// to the peer transport through a lock-free handoff queue with no
// serialization at all. Ownership transfers with the value: once
// SendValue returns nil the receiver owns the payload (including pooled
// []byte payloads — the receiving handler recycles or keeps them under
// the same contract as the byte receive path), and the sender must not
// touch it again. RecvValue blocks until a value arrives or the
// connection dies.
//
// The byte-stream side of the connection still carries the gob handshake
// and provides EOF liveness; the codec registry stays authoritative for
// cross-process links. The Transport uses the capability only on
// unwrapped connections, so ConnHook fault injection keeps seeing a byte
// pipe.
type ValueConn interface {
	net.Conn
	SendValue(id stream.ID, m message.Message) error
	RecvValue() (stream.ID, message.Message, error)
}

// SpillCounter is an optional FrameSink capability: sinks that must chunk
// oversized frame trains through a bounded medium (a shm ring forced to
// publish mid-train) report how many chunked spills occurred. Surfaced
// per link as PeerCoalesceStats.ShmSpillCount.
type SpillCounter interface {
	Spills() uint64
}

// splitScheme separates an optional "scheme://" prefix from a dial target.
// No prefix means tcp, preserving pre-seam Dial("host:port") call sites.
func splitScheme(addr string) (scheme, rest string) {
	if i := strings.Index(addr, "://"); i >= 0 {
		return addr[:i], addr[i+3:]
	}
	return "tcp", addr
}

// frameBuffers picks the encode/decode surfaces for a handshaken conn:
// the conn's own ring buffers when it offers them, bufio otherwise.
func frameBuffers(conn net.Conn) (fw FrameSink, fr FrameSource, direct bool) {
	if bc, ok := conn.(BufferedConn); ok {
		fw, fr = bc.FrameBuffers()
		return fw, fr, true
	}
	return bufio.NewWriterSize(conn, 1<<16), bufio.NewReaderSize(conn, 1<<16), false
}

// tcpBackend is the default byte transport: plain TCP with Nagle disabled,
// exactly the pre-seam behavior.
type tcpBackend struct{}

func (tcpBackend) Scheme() string { return "tcp" }

func (tcpBackend) Listen(addr string) (Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return tcpListener{ln}, nil
}

func (tcpBackend) Dial(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return conn, nil
}

type tcpListener struct {
	ln net.Listener
}

func (l tcpListener) Accept() (net.Conn, error) {
	conn, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return conn, nil
}

func (l tcpListener) Addr() string { return l.ln.Addr().String() }
func (l tcpListener) Close() error { return l.ln.Close() }
