// Single-encode fanout. D3's pipelines are fan-out heavy — one sensor
// frame feeds perception, prediction, logging and recording — yet a naive
// data plane encodes and copies the frame once per subscriber link.
// Multicast makes a one-to-many send cost one encode and ~one copy:
//
//   - the frame is encoded once into a pooled, atomically refcounted
//     buffer (broadcastFrame) shared by every destination's write loop;
//     each write loop treats it as a borrowed segment — it writes the
//     bytes into its sink and drops its reference — and the last release
//     returns the buffer to the payload pool;
//   - same-host destinations attached to a shared-memory broadcast ring
//     (a Bus) are covered by a single ring publish instead of one write
//     per link (MulticastBus);
//   - same-process destinations whose connection offers the ValueConn
//     capability (the inproc backend) receive the message *value* with no
//     serialization at all.
//
// Ownership rules: a broadcastFrame is created with one reference per
// sharing destination. A destination's reference is consumed either by
// its write loop (after the bytes reach the sink, successfully or not) or
// by the sender when the destination cannot be enqueued. Frames stranded
// in a dead peer's queue are released by the queue drain that follows the
// write loop's exit, and Close sweeps anything the drain raced with, so
// pool accounting balances deterministically once senders are quiescent.
package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
)

// broadcastFrame is one encoded wire frame shared across every destination
// of a fanout send. buf comes from AcquirePayload; refs counts the
// destinations that have not yet written (or abandoned) it.
type broadcastFrame struct {
	buf   []byte
	typed bool
	refs  atomic.Int32
}

var (
	bcastPool StructPool[broadcastFrame]
	// bcastAcquired/bcastReleased count frames created and fully released.
	// The -race refcount stress test asserts they balance after all links
	// drain: a deficit is a leaked pooled buffer, a surplus would have
	// panicked as a double release.
	bcastAcquired atomic.Uint64
	bcastReleased atomic.Uint64
)

// BroadcastFrameStats reports how many shared fanout frames have been
// created and how many have been fully released back to the pool. With no
// multicast in flight the two are equal.
func BroadcastFrameStats() (acquired, released uint64) {
	return bcastAcquired.Load(), bcastReleased.Load()
}

func newBroadcastFrame(buf []byte, typed bool, refs int32) *broadcastFrame {
	f := bcastPool.Get()
	f.buf, f.typed = buf, typed
	f.refs.Store(refs)
	bcastAcquired.Add(1)
	return f
}

// release drops one destination's reference; the last one recycles the
// buffer. Releasing more references than were acquired is a programming
// error that would hand the pooled buffer to two owners, so it panics
// instead of corrupting a later frame.
func (f *broadcastFrame) release() {
	n := f.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("comm: broadcast frame released more times than acquired")
	}
	RecyclePayload(f.buf)
	f.buf = nil
	bcastReleased.Add(1)
	bcastPool.Put(f)
}

// frameBuf is a FrameSink over a growable slice, used to capture one
// frame's wire encoding for sharing. Flush is a no-op: the capture is the
// frame-train boundary.
type frameBuf struct{ b []byte }

func (s *frameBuf) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

func (s *frameBuf) WriteByte(c byte) error {
	s.b = append(s.b, c)
	return nil
}

func (s *frameBuf) Flush() error { return nil }

// ReadFrame decodes one binary frame (tagRaw or tagTyped) from fr — the
// same decoding the transport's read loop applies, exported for broadcast
// ring readers that consume a shared frame stream outside a peer
// connection. Gob frames never travel on broadcast rings (they are
// per-peer downgrades), so a tagGob byte is a protocol error here.
func ReadFrame(fr FrameSource) (stream.ID, message.Message, error) {
	tag, err := fr.ReadByte()
	if err != nil {
		return 0, message.Message{}, err
	}
	switch tag {
	case tagRaw:
		return readRawFrame(fr)
	case tagTyped:
		return readTypedFrame(fr)
	}
	return 0, message.Message{}, fmt.Errorf("comm: unexpected frame tag %#x on broadcast stream", tag)
}

// errBusOversize marks a frame too large for a Bus; the sender folds the
// bus destinations back into pairwise sends.
var errBusOversize = errors.New("comm: frame exceeds bus size limit")

// Bus is a shared broadcast sink: one frame written to it reaches every
// reader attached to the underlying medium (a shm SPMC broadcast ring).
// The bus carries binary frames only and performs no per-reader codec
// negotiation, so it must only bridge same-build readers — the cluster
// only attaches its own workers. MaxBytes bounds the frame size the bus
// accepts (0 means unlimited); larger frames spill back to pairwise links
// and are counted.
type Bus struct {
	mu   sync.Mutex
	sink FrameSink
	max  int
	err  error

	spills atomic.Uint64
	frames atomic.Uint64
	bytes  atomic.Uint64
}

// NewBus wraps sink as a broadcast bus. maxBytes caps the frame size the
// bus carries; pass the ring's spill threshold (0 for no cap).
func NewBus(sink FrameSink, maxBytes int) *Bus {
	return &Bus{sink: sink, max: maxBytes}
}

// Spills returns how many frames were too large for the bus and fell back
// to pairwise sends.
func (b *Bus) Spills() uint64 { return b.spills.Load() }

// Stats returns frames and bytes published onto the bus.
func (b *Bus) Stats() (frames, bytes uint64) {
	return b.frames.Load(), b.bytes.Load()
}

// Err returns the sticky write error, if the bus medium has failed.
func (b *Bus) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// write publishes one encoded frame. The error is sticky: once the
// medium fails every later write fails, and the caller falls back to
// pairwise delivery.
func (b *Bus) write(frame []byte) error {
	if b.max > 0 && len(frame) > b.max {
		b.spills.Add(1)
		return errBusOversize
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	if _, err := b.sink.Write(frame); err != nil {
		b.err = err
		return err
	}
	if err := b.sink.Flush(); err != nil {
		b.err = err
		return err
	}
	b.frames.Add(1)
	b.bytes.Add(uint64(len(frame)))
	return nil
}

// Multicast sends m on stream id to every named peer with one encode and
// a shared buffer, with no coalescing hint: every copy flushes on queue
// drain. Prefer MulticastWithHint on deadline-carrying paths.
// It returns how many destinations accepted the message and the first
// error encountered; delivery to the remaining destinations is still
// attempted after an error (fanout consumers fail independently).
func (t *Transport) Multicast(peerNames []string, id stream.ID, m message.Message) (int, error) {
	return t.multicast(nil, nil, peerNames, id, m, FlushHint{})
}

// MulticastWithHint is Multicast with a coalescing deadline shared by
// every copy.
func (t *Transport) MulticastWithHint(peerNames []string, id stream.ID, m message.Message, hint FlushHint) (int, error) {
	return t.multicast(nil, nil, peerNames, id, m, hint)
}

// MulticastBus is MulticastWithHint where busPeers are additionally
// reachable through bus: one publish onto the bus covers all of them,
// and peerNames get the shared-frame pairwise path. When the frame
// cannot ride the bus (too large, bus medium dead, or a payload with no
// binary encoding), busPeers fold into the pairwise set — every bus
// destination must therefore also be a connected peer.
func (t *Transport) MulticastBus(bus *Bus, busPeers, peerNames []string, id stream.ID, m message.Message, hint FlushHint) (int, error) {
	return t.multicast(bus, busPeers, peerNames, id, m, hint)
}

func (t *Transport) multicast(bus *Bus, busPeers, peerNames []string, id stream.ID, m message.Message, hint FlushHint) (int, error) {
	if bus == nil && len(busPeers) > 0 {
		peerNames = append(append(make([]string, 0, len(peerNames)+len(busPeers)), peerNames...), busPeers...)
		busPeers = nil
	}
	if len(peerNames) == 0 && len(busPeers) == 0 {
		return 0, nil
	}

	// Choose the shared encoding, mirroring writeMsg: raw binary frames
	// are universal; typed frames are shared with peers that advertised
	// the codec (others downgrade to per-peer gob); payloads with no
	// binary encoding have nothing to share.
	var (
		typed   bool
		codecID uint64
		version uint8
		marshal func([]byte) []byte
		rawBody []byte
	)
	shareable := true
	switch {
	case rawEligible(m):
		rawBody, _ = m.Payload.([]byte)
	default:
		if fp, ok := m.Payload.(FramePayload); ok {
			if c := lookupCodec(fp.FrameCodec()); c != nil {
				typed, codecID, version, marshal = true, c.ID, c.Version, fp.MarshalFrame
			} else {
				shareable = false
			}
		} else if d, ok := m.Payload.(time.Duration); ok {
			typed, codecID, version = true, DurationCodecID, 1
			marshal = func(dst []byte) []byte { return AppendVarint(dst, int64(d)) }
		} else {
			shareable = false
		}
	}

	var delivered int
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	sendSolo := func(name string) {
		if err := t.send(name, outMsg{id: id, m: m, flushBy: hint.FlushBy}); err != nil {
			fail(err)
		} else {
			delivered++
		}
	}

	if !shareable {
		// No peer-independent encoding exists (gob-only payload): every
		// destination pays its own encode, and the bus cannot carry it.
		for _, name := range busPeers {
			sendSolo(name)
		}
		for _, name := range peerNames {
			sendSolo(name)
		}
		return delivered, firstErr
	}

	// The shared encode is lazy: a fanout whose destinations are all
	// ValueConn peers (same-process links) never needs wire bytes at all.
	var sink frameBuf
	encoded := false
	encode := func() error {
		if encoded {
			return nil
		}
		sink.b = AcquirePayload(96 + len(rawBody))[:0]
		var err error
		if typed {
			_, err = writeTypedFrame(&sink, id, m, codecID, version, marshal)
		} else {
			_, err = writeRawFrame(&sink, id, m)
		}
		if err != nil {
			RecyclePayload(sink.b)
			return err
		}
		encoded = true
		return nil
	}

	// One bus publish covers every bus destination; a frame the bus
	// cannot carry spills its destinations into the pairwise set.
	if bus != nil && len(busPeers) > 0 {
		if err := encode(); err != nil {
			return 0, err
		}
		if berr := bus.write(sink.b); berr == nil {
			delivered += len(busPeers)
			t.sent.Add(uint64(len(busPeers)))
			if typed {
				t.typedSent.Add(1)
			} else {
				t.rawSent.Add(1)
			}
		} else {
			peerNames = append(append(make([]string, 0, len(peerNames)+len(busPeers)), peerNames...), busPeers...)
			if !errors.Is(berr, errBusOversize) {
				fail(berr)
			}
		}
	}

	// Partition the pairwise destinations: peers that decode the shared
	// encoding take the refcounted frame; ValueConn peers take the value
	// with no bytes at all; codec-skewed peers downgrade to their own
	// gob envelope.
	peers := *t.peers.Load()
	share := make([]*peer, 0, len(peerNames))
	origTaken := false
	for _, name := range peerNames {
		p := peers[name]
		switch {
		case p == nil:
			fail(fmt.Errorf("comm: %s has no peer %q", t.name, name))
		case p.vc != nil:
			// Value delivery transfers payload ownership to the receiver,
			// and a pooled []byte cannot have two owners: the first value
			// destination takes the original, later ones take a pooled
			// copy. (Typed payloads are shared by value and treated as
			// immutable per the ValueConn contract.)
			mv := m
			copied := false
			if b, ok := m.Payload.([]byte); ok && origTaken {
				mv.Payload = append(AcquirePayload(len(b))[:0], b...)
				copied = true
			}
			if err := t.sendValue(p, outMsg{id: id, m: mv, flushBy: hint.FlushBy}); err != nil {
				if copied {
					RecyclePayload(mv.Payload.([]byte))
				}
				fail(err)
			} else {
				delivered++
				if !copied {
					origTaken = true
				}
			}
		case typed && !p.decodes(codecID, version):
			sendSolo(name)
		default:
			share = append(share, p)
		}
	}
	if len(share) == 0 {
		if encoded {
			RecyclePayload(sink.b)
		}
		return delivered, firstErr
	}
	if err := encode(); err != nil {
		fail(err)
		return delivered, firstErr
	}

	bf := newBroadcastFrame(sink.b, typed, int32(len(share)))
	for _, p := range share {
		o := outMsg{id: id, bcast: bf, flushBy: hint.FlushBy}
		if err := t.sendShared(p, o); err != nil {
			// The destination never took ownership: this reference is
			// still the sender's to drop.
			bf.release()
			fail(err)
		} else {
			delivered++
		}
	}
	// bufown's single-owner model cannot see refcounts: bf starts with
	// len(share) references (share is non-empty, guarded above) and every
	// loop iteration transfers one to the destination or releases it on
	// send failure, so nothing is live here.
	//erdos:allow bufown frame refs equal len(share); each iteration transfers or releases exactly one
	return delivered, firstErr
}

// sendShared dispatches a shared-frame message to p. On success the
// destination owns one reference (its write loop — or the drain that
// follows its death — releases it); on error the caller still does.
func (t *Transport) sendShared(p *peer, o outMsg) error {
	if p.direct {
		return t.sendDirect(p, o)
	}
	select {
	case p.out <- o:
		t.sent.Add(1)
		return nil
	case <-p.done:
		return errors.New("comm: peer connection closed")
	}
}
