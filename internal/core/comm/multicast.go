// Single-encode fanout. D3's pipelines are fan-out heavy — one sensor
// frame feeds perception, prediction, logging and recording — yet a naive
// data plane encodes and copies the frame once per subscriber link.
// Multicast makes a one-to-many send cost one encode and ~one copy:
//
//   - the frame is encoded once into a pooled, atomically refcounted
//     buffer (broadcastFrame) shared by every destination's write loop;
//     each write loop treats it as a borrowed segment — it writes the
//     bytes into its sink and drops its reference — and the last release
//     returns the buffer to the payload pool;
//   - same-host destinations attached to a shared-memory broadcast ring
//     (a Bus) are covered by a single ring publish instead of one write
//     per link (MulticastBus);
//   - same-process destinations whose connection offers the ValueConn
//     capability (the inproc backend) receive the message *value* with no
//     serialization at all.
//
// Ownership rules: a broadcastFrame is created with one reference per
// sharing destination. A destination's reference is consumed either by
// its write loop (after the bytes reach the sink, successfully or not) or
// by the sender when the destination cannot be enqueued. Frames stranded
// in a dead peer's queue are released by the queue drain that follows the
// write loop's exit, and Close sweeps anything the drain raced with, so
// pool accounting balances deterministically once senders are quiescent.
package comm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
)

// broadcastFrame is one encoded wire frame shared across every destination
// of a fanout send. buf comes from AcquirePayload; refs counts the
// destinations that have not yet written (or abandoned) it.
type broadcastFrame struct {
	buf   []byte
	typed bool
	refs  atomic.Int32
}

var (
	bcastPool StructPool[broadcastFrame]
	// bcastAcquired/bcastReleased count frames created and fully released.
	// The -race refcount stress test asserts they balance after all links
	// drain: a deficit is a leaked pooled buffer, a surplus would have
	// panicked as a double release.
	bcastAcquired atomic.Uint64
	bcastReleased atomic.Uint64
)

// BroadcastFrameStats reports how many shared fanout frames have been
// created and how many have been fully released back to the pool. With no
// multicast in flight the two are equal.
func BroadcastFrameStats() (acquired, released uint64) {
	return bcastAcquired.Load(), bcastReleased.Load()
}

func newBroadcastFrame(buf []byte, typed bool, refs int32) *broadcastFrame {
	f := bcastPool.Get()
	f.buf, f.typed = buf, typed
	f.refs.Store(refs)
	bcastAcquired.Add(1)
	return f
}

// release drops one destination's reference; the last one recycles the
// buffer. Releasing more references than were acquired is a programming
// error that would hand the pooled buffer to two owners, so it panics
// instead of corrupting a later frame.
func (f *broadcastFrame) release() {
	n := f.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("comm: broadcast frame released more times than acquired")
	}
	RecyclePayload(f.buf)
	f.buf = nil
	bcastReleased.Add(1)
	bcastPool.Put(f)
}

// frameBuf is a FrameSink over a growable slice, used to capture one
// frame's wire encoding for sharing. Flush is a no-op: the capture is the
// frame-train boundary.
type frameBuf struct{ b []byte }

func (s *frameBuf) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

func (s *frameBuf) WriteByte(c byte) error {
	s.b = append(s.b, c)
	return nil
}

func (s *frameBuf) Flush() error { return nil }

// ReadFrame decodes one binary frame (tagRaw or tagTyped) from fr — the
// same decoding the transport's read loop applies, exported for broadcast
// ring readers that consume a shared frame stream outside a peer
// connection. Gob frames never travel on broadcast rings (they are
// per-peer downgrades), so a tagGob byte is a protocol error here.
func ReadFrame(fr FrameSource) (stream.ID, message.Message, error) {
	tag, err := fr.ReadByte()
	if err != nil {
		return 0, message.Message{}, err
	}
	switch tag {
	case tagRaw:
		return readRawFrame(fr)
	case tagTyped:
		return readTypedFrame(fr)
	}
	return 0, message.Message{}, fmt.Errorf("comm: unexpected frame tag %#x on broadcast stream", tag)
}

// errBusOversize marks a frame too large for a Bus; the sender folds the
// bus destinations back into pairwise sends.
var errBusOversize = errors.New("comm: frame exceeds bus size limit")

// Bus is a shared broadcast sink: one frame written to it reaches every
// reader attached to the underlying medium (a shm SPMC broadcast ring).
// The bus carries binary frames only and performs no per-reader codec
// negotiation, so it must only bridge same-build readers — the cluster
// only attaches its own workers. MaxBytes bounds the frame size the bus
// accepts (0 means unlimited); larger frames spill back to pairwise links
// and are counted.
type Bus struct {
	mu   sync.Mutex
	sink FrameSink
	max  int
	err  error

	spills atomic.Uint64
	frames atomic.Uint64
	bytes  atomic.Uint64
}

// NewBus wraps sink as a broadcast bus. maxBytes caps the frame size the
// bus carries; pass the ring's spill threshold (0 for no cap).
func NewBus(sink FrameSink, maxBytes int) *Bus {
	return &Bus{sink: sink, max: maxBytes}
}

// Spills returns how many frames were too large for the bus and fell back
// to pairwise sends.
func (b *Bus) Spills() uint64 { return b.spills.Load() }

// Stats returns frames and bytes published onto the bus.
func (b *Bus) Stats() (frames, bytes uint64) {
	return b.frames.Load(), b.bytes.Load()
}

// Err returns the sticky write error, if the bus medium has failed.
func (b *Bus) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// write publishes one encoded frame. The error is sticky: once the
// medium fails every later write fails, and the caller falls back to
// pairwise delivery.
func (b *Bus) write(frame []byte) error {
	if b.max > 0 && len(frame) > b.max {
		b.spills.Add(1)
		return errBusOversize
	}
	return b.writeUnbounded(frame)
}

// writeUnbounded is write without the size cap: the frame is published
// however large it is, relying on the underlying sink to chunk it (the shm
// broadcast ring streams oversized trains record by record, counting them
// as spills). Relay republish uses it so a frame beyond the producer-side
// bus cap still rides the ring in a chunked train at the relay instead of
// degrading to per-peer pairwise copies.
func (b *Bus) writeUnbounded(frame []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	if _, err := b.sink.Write(frame); err != nil {
		b.err = err
		return err
	}
	if err := b.sink.Flush(); err != nil {
		b.err = err
		return err
	}
	b.frames.Add(1)
	b.bytes.Add(uint64(len(frame)))
	return nil
}

// Multicast sends m on stream id to every named peer with one encode and
// a shared buffer, with no coalescing hint: every copy flushes on queue
// drain. Prefer MulticastWithHint on deadline-carrying paths.
// It returns how many destinations accepted the message and the first
// error encountered; delivery to the remaining destinations is still
// attempted after an error (fanout consumers fail independently).
func (t *Transport) Multicast(peerNames []string, id stream.ID, m message.Message) (int, error) {
	return t.multicast(nil, nil, peerNames, nil, id, m, FlushHint{})
}

// MulticastWithHint is Multicast with a coalescing deadline shared by
// every copy.
func (t *Transport) MulticastWithHint(peerNames []string, id stream.ID, m message.Message, hint FlushHint) (int, error) {
	return t.multicast(nil, nil, peerNames, nil, id, m, hint)
}

// MulticastBus is MulticastWithHint where busPeers are additionally
// reachable through bus: one publish onto the bus covers all of them,
// and peerNames get the shared-frame pairwise path. When the frame
// cannot ride the bus (too large, bus medium dead, or a payload with no
// binary encoding), busPeers fold into the pairwise set — every bus
// destination must therefore also be a connected peer.
func (t *Transport) MulticastBus(bus *Bus, busPeers, peerNames []string, id stream.ID, m message.Message, hint FlushHint) (int, error) {
	return t.multicast(bus, busPeers, peerNames, nil, id, m, hint)
}

// RelayDest is one remote host's share of a relay multicast: Relay names
// the designated relay worker on that host and Cover lists every consumer
// it republishes to (the relay itself included when it consumes the
// stream). Every Cover member must also be a connected peer of the sender:
// when the relay path is unusable — relay disconnected, no capability
// advertised, or the payload has no shareable encoding — the Cover folds
// back into pairwise sends with no loss.
//
// Retained marks a route whose caller keeps a replay window and will
// force-replay it when a schedule change re-elects the relay. For such
// routes a dead relay link does NOT fold into pairwise sends: the relay's
// loss is a contiguous suffix of the stream (TCP and the republish queue
// are FIFO), and folding later frames around it would advance the
// consumers' watermark past the gap, fencing the eventual replay out.
// Static ineligibility (no capability, value link, codec skew) still
// folds — those routes never carried a frame through the relay, so
// ordering is consistent.
type RelayDest struct {
	Relay    string
	Cover    []string
	Retained bool
}

// MulticastTree is MulticastBus extended with host-aware relays: each
// RelayDest receives exactly one tagRelay envelope (the shared refcounted
// frame wrapped with its remaining deadline slack) and republishes it to
// its Cover, so the sender's wire cost is one frame per remote host
// instead of one per consumer. The returned delivered count includes
// relay-covered consumers.
func (t *Transport) MulticastTree(bus *Bus, busPeers, peerNames []string, relays []RelayDest, id stream.ID, m message.Message, hint FlushHint) (int, error) {
	return t.multicast(bus, busPeers, peerNames, relays, id, m, hint)
}

func (t *Transport) multicast(bus *Bus, busPeers, peerNames []string, relays []RelayDest, id stream.ID, m message.Message, hint FlushHint) (int, error) {
	if bus == nil && len(busPeers) > 0 {
		peerNames = append(append(make([]string, 0, len(peerNames)+len(busPeers)), peerNames...), busPeers...)
		busPeers = nil
	}
	if len(peerNames) == 0 && len(busPeers) == 0 && len(relays) == 0 {
		return 0, nil
	}

	// Choose the shared encoding, mirroring writeMsg: raw binary frames
	// are universal; typed frames are shared with peers that advertised
	// the codec (others downgrade to per-peer gob); payloads with no
	// binary encoding have nothing to share.
	var (
		typed   bool
		codecID uint64
		version uint8
		marshal func([]byte) []byte
		rawBody []byte
	)
	shareable := true
	switch {
	case rawEligible(m):
		rawBody, _ = m.Payload.([]byte)
	default:
		if fp, ok := m.Payload.(FramePayload); ok {
			if c := lookupCodec(fp.FrameCodec()); c != nil {
				typed, codecID, version, marshal = true, c.ID, c.Version, fp.MarshalFrame
			} else {
				shareable = false
			}
		} else if d, ok := m.Payload.(time.Duration); ok {
			typed, codecID, version = true, DurationCodecID, 1
			marshal = func(dst []byte) []byte { return AppendVarint(dst, int64(d)) }
		} else {
			shareable = false
		}
	}

	var delivered int
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	sendSolo := func(name string) {
		if err := t.send(name, outMsg{id: id, m: m, flushBy: hint.FlushBy}); err != nil {
			fail(err)
		} else {
			delivered++
		}
	}

	if !shareable {
		// No peer-independent encoding exists (gob-only payload): every
		// destination pays its own encode, the bus cannot carry it, and a
		// relay has no verbatim bytes to republish (gob encoder state is
		// per-connection) — covered consumers fold into pairwise sends.
		for _, name := range busPeers {
			sendSolo(name)
		}
		for _, name := range peerNames {
			sendSolo(name)
		}
		for _, rd := range relays {
			for _, name := range rd.Cover {
				sendSolo(name)
			}
		}
		return delivered, firstErr
	}

	// The shared encode is lazy: a fanout whose destinations are all
	// ValueConn peers (same-process links) never needs wire bytes at all.
	var sink frameBuf
	encoded := false
	encode := func() error {
		if encoded {
			return nil
		}
		sink.b = AcquirePayload(96 + len(rawBody))[:0]
		var err error
		if typed {
			_, err = writeTypedFrame(&sink, id, m, codecID, version, marshal)
		} else {
			_, err = writeRawFrame(&sink, id, m)
		}
		if err != nil {
			RecyclePayload(sink.b)
			return err
		}
		encoded = true
		return nil
	}

	// One bus publish covers every bus destination; a frame the bus
	// cannot carry spills its destinations into the pairwise set.
	if bus != nil && len(busPeers) > 0 {
		if err := encode(); err != nil {
			return 0, err
		}
		if berr := bus.write(sink.b); berr == nil {
			delivered += len(busPeers)
			t.sent.Add(uint64(len(busPeers)))
			if typed {
				t.typedSent.Add(1)
			} else {
				t.rawSent.Add(1)
			}
		} else {
			peerNames = append(append(make([]string, 0, len(peerNames)+len(busPeers)), peerNames...), busPeers...)
			if !errors.Is(berr, errBusOversize) {
				fail(berr)
			}
		}
	}

	// Partition the relay destinations: a usable relay takes one tagRelay
	// envelope covering its whole host; anything else — relay missing, no
	// capability advertised, a value link (no bytes to wrap), or a typed
	// frame the relay cannot decode — folds its Cover back into the
	// pairwise set, the exact pre-relay behavior.
	peers := *t.peers.Load()
	var relayPeers []*peer
	var relayDests []RelayDest
	var fold []string
	for _, rd := range relays {
		p := peers[rd.Relay]
		if p == nil {
			// The relay link is gone. Retained routes withhold the covered
			// consumers — the caller's replay window recovers the suffix in
			// order once a new relay is elected — while best-effort routes
			// fold into pairwise sends.
			if rd.Retained {
				fail(fmt.Errorf("comm: %s relay %q unreachable, cover deferred to replay", t.name, rd.Relay))
				continue
			}
			fold = append(fold, rd.Cover...)
			continue
		}
		if !p.relay || p.vc != nil || (typed && !p.decodes(codecID, version)) {
			fold = append(fold, rd.Cover...)
			continue
		}
		relayPeers = append(relayPeers, p)
		relayDests = append(relayDests, rd)
	}
	if len(fold) > 0 {
		peerNames = append(append(make([]string, 0, len(peerNames)+len(fold)), peerNames...), fold...)
	}

	// Partition the pairwise destinations: peers that decode the shared
	// encoding take the refcounted frame; ValueConn peers take the value
	// with no bytes at all; codec-skewed peers downgrade to their own
	// gob envelope.
	share := make([]*peer, 0, len(peerNames))
	origTaken := false
	for _, name := range peerNames {
		p := peers[name]
		switch {
		case p == nil:
			fail(fmt.Errorf("comm: %s has no peer %q", t.name, name))
		case p.vc != nil:
			// Value delivery transfers payload ownership to the receiver,
			// and a pooled []byte cannot have two owners: the first value
			// destination takes the original, later ones take a pooled
			// copy. (Typed payloads are shared by value and treated as
			// immutable per the ValueConn contract.)
			mv := m
			copied := false
			if b, ok := m.Payload.([]byte); ok && origTaken {
				mv.Payload = append(AcquirePayload(len(b))[:0], b...)
				copied = true
			}
			if err := t.sendValue(p, outMsg{id: id, m: mv, flushBy: hint.FlushBy}); err != nil {
				if copied {
					RecyclePayload(mv.Payload.([]byte))
				}
				fail(err)
			} else {
				delivered++
				if !copied {
					origTaken = true
				}
			}
		case typed && !p.decodes(codecID, version):
			sendSolo(name)
		default:
			share = append(share, p)
		}
	}
	if len(share) == 0 && len(relayPeers) == 0 {
		if encoded {
			RecyclePayload(sink.b)
		}
		return delivered, firstErr
	}
	if err := encode(); err != nil {
		fail(err)
		return delivered, firstErr
	}

	bf := newBroadcastFrame(sink.b, typed, int32(len(share)+len(relayPeers)))
	for _, p := range share {
		o := outMsg{id: id, bcast: bf, flushBy: hint.FlushBy}
		if err := t.sendShared(p, o); err != nil {
			// The destination never took ownership: this reference is
			// still the sender's to drop.
			bf.release()
			fail(err)
		} else {
			delivered++
		}
	}
	// Each relay takes one reference and one wire frame — a tagRelay
	// envelope whose remaining slack is stamped at write time — and covers
	// its whole host. When a send fails, best-effort routes fall back to
	// pairwise sends for their Cover; retained routes withhold the Cover
	// instead (see RelayDest), deferring the suffix to the caller's replay.
	for i, p := range relayPeers {
		o := outMsg{id: id, bcast: bf, flushBy: hint.FlushBy, relay: true, cover: relayDests[i].Cover}
		if err := t.sendShared(p, o); err != nil {
			bf.release()
			fail(err)
			if !relayDests[i].Retained {
				for _, name := range relayDests[i].Cover {
					sendSolo(name)
				}
			}
		} else {
			delivered += len(relayDests[i].Cover)
		}
	}
	// bufown's single-owner model cannot see refcounts: bf starts with
	// len(share)+len(relayPeers) references (at least one, guarded above)
	// and every loop iteration transfers one to the destination or
	// releases it on send failure, so nothing is live here.
	//erdos:allow bufown frame refs equal share+relay count; each iteration transfers or releases exactly one
	return delivered, firstErr
}

// Republish re-broadcasts one received wire frame to local consumers at a
// relay: ring members are covered by a single unbounded bus publish (a
// frame beyond the producer-side cap streams as a chunked train), the rest
// take the refcounted shared-frame pairwise path. It takes ownership of
// frame (a pooled buffer, the complete tagRaw/tagTyped encoding) and
// carries no deadline hint: every copy flushes on queue drain. Prefer
// RepublishWithHint on deadline-carrying paths.
func (t *Transport) Republish(bus *Bus, busPeers, peerNames []string, frame []byte, typed bool, id stream.ID) (int, error) {
	return t.republish(bus, busPeers, peerNames, frame, typed, id, FlushHint{})
}

// RepublishWithHint is Republish with a coalescing deadline shared by
// every copy — at a relay, the envelope's remaining slack minus time
// spent queued.
func (t *Transport) RepublishWithHint(bus *Bus, busPeers, peerNames []string, frame []byte, typed bool, id stream.ID, hint FlushHint) (int, error) {
	return t.republish(bus, busPeers, peerNames, frame, typed, id, hint)
}

// republish fans a verbatim wire frame out locally. Unlike multicast it
// never re-encodes: the frame is the producer's shared encoding, so every
// destination must speak it — a missing peer, a ValueConn link, or codec
// skew is an error rather than a downgrade (the cluster only relays
// between same-build workers).
func (t *Transport) republish(bus *Bus, busPeers, peerNames []string, frame []byte, typed bool, id stream.ID, hint FlushHint) (int, error) {
	var delivered int
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}

	if bus == nil && len(busPeers) > 0 {
		peerNames = append(append(make([]string, 0, len(peerNames)+len(busPeers)), peerNames...), busPeers...)
		busPeers = nil
	}
	if bus != nil && len(busPeers) > 0 {
		// writeUnbounded, not write: the relay's ring chunks any size into
		// a spill train, so an oversize frame still costs one wire copy
		// from the producer and rides the ring here.
		if berr := bus.writeUnbounded(frame); berr == nil {
			delivered += len(busPeers)
			t.sent.Add(uint64(len(busPeers)))
		} else {
			peerNames = append(append(make([]string, 0, len(peerNames)+len(busPeers)), peerNames...), busPeers...)
			fail(berr)
		}
	}

	peers := *t.peers.Load()
	share := make([]*peer, 0, len(peerNames))
	for _, name := range peerNames {
		p := peers[name]
		switch {
		case p == nil:
			fail(fmt.Errorf("comm: %s has no peer %q", t.name, name))
		case p.vc != nil:
			fail(fmt.Errorf("comm: relay republish to value link %q", name))
		default:
			share = append(share, p)
		}
	}

	bf := newBroadcastFrame(frame, typed, int32(len(share))+1)
	for _, p := range share {
		o := outMsg{id: id, bcast: bf, flushBy: hint.FlushBy}
		if err := t.sendShared(p, o); err != nil {
			bf.release()
			fail(err)
		} else {
			delivered++
		}
	}
	// The +1 reference is the caller's: releasing it here frees the frame
	// when share is empty (bus-only republish) and otherwise defers the
	// recycle to the last write loop — uniform ownership either way.
	bf.release()
	t.republished.Add(uint64(delivered))
	return delivered, firstErr
}

// sendShared dispatches a shared-frame message to p. On success the
// destination owns one reference (its write loop — or the drain that
// follows its death — releases it); on error the caller still does.
func (t *Transport) sendShared(p *peer, o outMsg) error {
	if p.direct {
		return t.sendDirect(p, o)
	}
	select {
	case p.out <- o:
		t.sent.Add(1)
		return nil
	case <-p.done:
		return errors.New("comm: peer connection closed")
	}
}
