package comm_test

import (
	"testing"
	"time"

	comm "github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/comm/inproc"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// TestTransportOverInproc runs the full transport handshake over the
// in-process backend and verifies the data plane moves values with zero
// serialization: no gob, no raw frames, no typed frames — only the
// handshake crosses the byte pipe.
func TestTransportOverInproc(t *testing.T) {
	gotA := make(chan message.Message, 16)
	gotB := make(chan message.Message, 16)
	a, err := comm.Listen("a", "127.0.0.1:0", func(_ string, _ stream.ID, m message.Message) { gotA <- m },
		comm.WithBackend(inproc.New(), ""))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := comm.Listen("b", "127.0.0.1:0", func(_ string, _ stream.ID, m message.Message) { gotB <- m },
		comm.WithBackend(inproc.New(), ""))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	addr := a.AddrOf("inproc")
	if addr == "" {
		t.Fatal("transport with inproc backend advertises no inproc address")
	}
	if err := b.Dial("inproc://" + addr); err != nil {
		t.Fatal(err)
	}
	if s := b.PeerSchemes()["a"]; s != "inproc" {
		t.Fatalf("dialer peer scheme = %q, want inproc", s)
	}
	// The acceptor registers the peer after flushing its hello, which on
	// a synchronous pipe can land just after Dial returns.
	deadline := time.Now().Add(2 * time.Second)
	for a.PeerSchemes()["b"] != "inproc" {
		if time.Now().After(deadline) {
			t.Fatalf("acceptor peer scheme = %q, want inproc", a.PeerSchemes()["b"])
		}
		time.Sleep(time.Millisecond)
	}

	// A payload type with no codec and no gob registration: only a
	// zero-serialization path can carry it, and the receiver must see the
	// very same pointer — the proof there was no encode/decode cycle.
	type opaque struct{ n int }
	sent := &opaque{n: 42}
	id := stream.NewID()
	if err := b.Send("a", id, message.Message{Kind: message.KindData, Timestamp: timestamp.New(1), Payload: sent}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-gotA:
		if got, ok := m.Payload.(*opaque); !ok || got != sent {
			t.Fatalf("payload = %#v, want the identical *opaque pointer", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("value never crossed the inproc link")
	}

	// Reply over the accept side, plus a watermark.
	if err := a.Send("b", id, message.Data(timestamp.New(2), []byte("reply"))); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", id, message.Watermark(timestamp.New(2))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-gotB:
		case <-time.After(2 * time.Second):
			t.Fatal("reply never crossed the inproc link")
		}
	}

	for name, tr := range map[string]*comm.Transport{"a": a, "b": b} {
		s, r := tr.SentFrames(), tr.ReceivedFrames()
		if s.Gob != 0 || r.Gob != 0 {
			t.Fatalf("%s: gob frames over inproc: sent %+v recv %+v", name, s, r)
		}
		if s.Raw != 0 || s.Typed != 0 {
			t.Fatalf("%s: serialized frames over inproc: sent %+v", name, s)
		}
	}
}

// TestInprocMulticastPayloadOwnership fans one pooled []byte payload out
// to two same-process receivers that both exercise their right to
// recycle it. The two delivered slices must not share a backing array —
// otherwise the pool would hand one buffer to two later owners.
func TestInprocMulticastPayloadOwnership(t *testing.T) {
	got := make(chan []byte, 2)
	handler := func(_ string, _ stream.ID, m message.Message) {
		b := m.Payload.([]byte)
		cp := append([]byte(nil), b...)
		comm.ReleaseMessage(m)
		got <- cp
	}
	var receivers []*comm.Transport
	src, err := comm.Listen("src", "127.0.0.1:0", nil, comm.WithBackend(inproc.New(), ""))
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for _, name := range []string{"r1", "r2"} {
		r, err := comm.Listen(name, "127.0.0.1:0", handler, comm.WithBackend(inproc.New(), ""))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if err := src.Dial("inproc://" + r.AddrOf("inproc")); err != nil {
			t.Fatal(err)
		}
		receivers = append(receivers, r)
	}

	payload := comm.AcquirePayload(256)
	for i := range payload {
		payload[i] = byte(i)
	}
	n, err := src.Multicast([]string{"r1", "r2"}, stream.NewID(),
		message.Data(timestamp.New(1), payload))
	if err != nil || n != 2 {
		t.Fatalf("Multicast = (%d, %v), want (2, nil)", n, err)
	}
	for i := 0; i < 2; i++ {
		select {
		case b := <-got:
			if len(b) != 256 || b[10] != 10 {
				t.Fatalf("receiver %d got corrupted payload (len %d)", i, len(b))
			}
		case <-time.After(2 * time.Second):
			t.Fatal("fanout value never arrived")
		}
	}
	_ = receivers
}

// TestInprocPeerDeathUnblocks closes one side mid-conversation and
// requires the peer to notice promptly through the value plane.
func TestInprocPeerDeathUnblocks(t *testing.T) {
	a, err := comm.Listen("a", "127.0.0.1:0", nil, comm.WithBackend(inproc.New(), ""))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := comm.Listen("b", "127.0.0.1:0", nil, comm.WithBackend(inproc.New(), ""))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Dial("inproc://" + a.AddrOf("inproc")); err != nil {
		t.Fatal(err)
	}
	b.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := a.Send("b", stream.NewID(), message.Data(timestamp.New(1), []byte("x"))); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sends to a closed inproc peer kept succeeding")
		}
		time.Sleep(time.Millisecond)
	}
}
