package comm

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// fanoutRig is a source transport connected to n receiver transports over
// TCP, each delivering into its own channel.
type fanoutRig struct {
	src   *Transport
	recv  []*Transport
	got   []chan message.Message
	names []string
}

func newFanoutRig(t testing.TB, n int, opts ...func(i int) []Option) *fanoutRig {
	t.Helper()
	rig := &fanoutRig{}
	src, err := Listen("src", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	rig.src = src
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("r%d", i)
		ch := make(chan message.Message, 1024)
		var extra []Option
		if len(opts) > 0 {
			extra = opts[0](i)
		}
		r, err := Listen(name, "127.0.0.1:0",
			func(_ string, _ stream.ID, m message.Message) { ch <- m }, extra...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		if err := src.Dial(r.Addr()); err != nil {
			t.Fatal(err)
		}
		rig.recv = append(rig.recv, r)
		rig.got = append(rig.got, ch)
		rig.names = append(rig.names, name)
	}
	return rig
}

func waitFrameBalance(t testing.TB) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		acq, rel := BroadcastFrameStats()
		if acq == rel {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("broadcast frames leaked: acquired %d, released %d", acq, rel)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMulticastSingleEncode fans a typed payload out to three peers and
// proves the single-encode property: exactly one shared frame is
// acquired for the whole fanout, every receiver decodes the same value,
// and the frame is released back to the pool once all write loops drain.
func TestMulticastSingleEncode(t *testing.T) {
	rig := newFanoutRig(t, 3)
	acq0, _ := BroadcastFrameStats()

	v := testVec{X: 2.5, S: "fanout", Ns: []uint64{7, 11, 13}}
	n, err := rig.src.Multicast(rig.names, stream.NewID(),
		message.Data(timestamp.New(1), v))
	if err != nil || n != 3 {
		t.Fatalf("Multicast = (%d, %v), want (3, nil)", n, err)
	}
	for i, ch := range rig.got {
		select {
		case m := <-ch:
			got, ok := m.Payload.(testVec)
			if !ok || got.X != v.X || got.S != v.S || len(got.Ns) != 3 {
				t.Fatalf("receiver %d decoded %#v", i, m.Payload)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("receiver %d never got the fanout frame", i)
		}
	}
	acq1, _ := BroadcastFrameStats()
	if d := acq1 - acq0; d != 1 {
		t.Fatalf("fanout to 3 peers acquired %d shared frames, want 1", d)
	}
	waitFrameBalance(t)
}

// TestMulticastCodecSkewDowngrade gives one of three receivers a build
// that lacks the testVec codec. The fanout must deliver to all three —
// two through the shared typed frame, the skewed one through its own gob
// envelope — without poisoning the shared path.
func TestMulticastCodecSkewDowngrade(t *testing.T) {
	RegisterPayload(testVec{}) // the downgrade path carries it by gob
	rig := newFanoutRig(t, 3, func(i int) []Option {
		if i == 1 {
			return []Option{WithCodecFilter(func(id uint64) bool { return id != testVecCodecID })}
		}
		return nil
	})

	v := testVec{X: -1, S: "skew", Ns: []uint64{1}}
	n, err := rig.src.Multicast(rig.names, stream.NewID(),
		message.Data(timestamp.New(1), v))
	if err != nil || n != 3 {
		t.Fatalf("Multicast = (%d, %v), want (3, nil)", n, err)
	}
	for i, ch := range rig.got {
		select {
		case m := <-ch:
			got, ok := m.Payload.(testVec)
			if !ok || got.S != v.S {
				t.Fatalf("receiver %d decoded %#v", i, m.Payload)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("receiver %d never got the frame", i)
		}
	}
	if g := rig.recv[1].ReceivedFrames().Gob; g == 0 {
		t.Fatal("codec-skewed receiver saw no gob downgrade")
	}
	for _, i := range []int{0, 2} {
		if ty := rig.recv[i].ReceivedFrames().Typed; ty == 0 {
			t.Fatalf("receiver %d saw no typed frame", i)
		}
	}
	waitFrameBalance(t)
}

// TestMulticastBusOversizeFoldsPairwise publishes through a bus whose
// MaxBytes is below the frame size: the bus must count a spill and the
// destinations must still be covered by the pairwise shared-frame path.
func TestMulticastBusOversizeFoldsPairwise(t *testing.T) {
	rig := newFanoutRig(t, 2)
	bus := NewBus(&frameBuf{}, 8) // every realistic frame exceeds 8 bytes

	payload := make([]byte, 1024)
	n, err := rig.src.MulticastBus(bus, rig.names, nil, stream.NewID(),
		message.Data(timestamp.New(1), payload), FlushHint{})
	if err != nil || n != 2 {
		t.Fatalf("MulticastBus = (%d, %v), want (2, nil)", n, err)
	}
	if bus.Spills() != 1 {
		t.Fatalf("bus spills = %d, want 1", bus.Spills())
	}
	if frames, _ := bus.Stats(); frames != 0 {
		t.Fatalf("bus carried %d frames, want 0", frames)
	}
	for i, ch := range rig.got {
		select {
		case m := <-ch:
			if len(m.Payload.([]byte)) != len(payload) {
				t.Fatalf("receiver %d payload truncated", i)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("receiver %d never got the folded frame", i)
		}
	}
	waitFrameBalance(t)
}

// TestMulticastMissingPeerStillDeliversRest asserts fanout destinations
// fail independently: one bogus name errors, the realpeers still get the
// frame, and no shared-frame reference leaks.
func TestMulticastMissingPeerStillDeliversRest(t *testing.T) {
	rig := newFanoutRig(t, 2)
	names := append([]string{"ghost"}, rig.names...)
	n, err := rig.src.Multicast(names, stream.NewID(),
		message.Data(timestamp.New(1), []byte("partial")))
	if err == nil {
		t.Fatal("Multicast with a missing peer returned nil error")
	}
	if n != 2 {
		t.Fatalf("delivered = %d, want 2", n)
	}
	for i, ch := range rig.got {
		select {
		case <-ch:
		case <-time.After(2 * time.Second):
			t.Fatalf("receiver %d never got the frame", i)
		}
	}
	waitFrameBalance(t)
}

// TestMulticastRefcountStress exercises the shared-frame ownership
// protocol under -race: concurrent multicasters, a peer dying
// mid-stream, and transport close racing queued frames. The invariant is
// exact pool accounting — every acquired broadcast frame is released
// exactly once (a double release panics in the frame itself).
func TestMulticastRefcountStress(t *testing.T) {
	rig := newFanoutRig(t, 3)

	// Drain every receiver continuously: each receiver sees more frames
	// than its channel buffers, and a blocked handler would stall the whole
	// pipeline back to the senders.
	drained := make(chan struct{})
	var drainWG sync.WaitGroup
	for _, ch := range rig.got {
		ch := ch
		drainWG.Add(1)
		go func() {
			defer drainWG.Done()
			for {
				select {
				case <-ch:
				case <-drained:
					return
				}
			}
		}()
	}
	defer func() {
		close(drained)
		drainWG.Wait()
	}()

	const senders = 4
	const perSender = 300
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := stream.NewID()
			for i := 0; i < perSender; i++ {
				payload := make([]byte, 64+(i%1024))
				// Errors are expected once the dying peer drops out;
				// fanout destinations fail independently.
				_, _ = rig.src.MulticastWithHint(rig.names, id,
					message.Data(timestamp.New(uint64(i)), payload),
					FlushHint{FlushBy: time.Now().Add(time.Duration(s) * time.Millisecond)})
			}
		}()
	}
	// Kill one receiver mid-stream: its write loop must drain queued
	// shared frames, and frames enqueued after the drain are swept at the
	// sender's Close.
	time.Sleep(5 * time.Millisecond)
	rig.recv[1].Close()
	wg.Wait()

	// Senders have quiesced (wg.Wait above), so Close's final sweep — the
	// graveyard plus the live-at-Close peers — must leave the accounting
	// exact the moment it returns: no polling, no grace period. A drift
	// here means a frame was stranded in a queue the sweep missed.
	rig.src.Close()
	if acq, rel := BroadcastFrameStats(); acq != rel {
		t.Fatalf("frame accounting drifted across Close: acquired %d, released %d", acq, rel)
	}
}
