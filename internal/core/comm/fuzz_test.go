package comm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// fuzzSeedRaw encodes one valid raw frame (tag byte stripped, as the read
// path sees it after dispatching on the tag).
func fuzzSeedRaw(m message.Message) []byte {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if _, err := writeRawFrame(bw, 9, m); err != nil {
		panic(err)
	}
	if err := bw.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()[1:]
}

// fuzzSeedTyped encodes one valid typed frame body for the Duration codec.
func fuzzSeedTyped(ns int64, version uint8) []byte {
	var body []byte
	body = binary.AppendUvarint(body, 9) // stream id
	body = timestamp.New(4).AppendBinary(body)
	body = binary.AppendUvarint(body, DurationCodecID)
	body = append(body, version)
	var enc []byte
	enc = binary.AppendVarint(enc, ns)
	body = binary.AppendUvarint(body, uint64(len(enc)))
	return append(body, enc...)
}

// FuzzFrameDecode drives both tagged-frame decoders over arbitrary bytes:
// truncation, length-prefix overflow, unknown codecs, and version skew must
// all surface as errors, never panics or unbounded allocations. The first
// input byte selects the decoder so one corpus covers both formats.
func FuzzFrameDecode(f *testing.F) {
	f.Add(append([]byte{0}, fuzzSeedRaw(message.Data(timestamp.New(7), []byte("abc")))...))
	f.Add(append([]byte{0}, fuzzSeedRaw(message.Watermark(timestamp.New(3, 1)))...))
	f.Add(append([]byte{1}, fuzzSeedTyped(1500, 1)...))
	f.Add(append([]byte{1}, fuzzSeedTyped(-42, 1)...))
	// Version from the future: must be rejected.
	f.Add(append([]byte{1}, fuzzSeedTyped(1500, 99)...))
	// Raw frame claiming a payload longer than maxFramePayload.
	overflow := []byte{9, byte(message.KindData), 0, 1, 0}
	overflow = binary.AppendUvarint(overflow, maxFramePayload+1)
	f.Add(append([]byte{0}, overflow...))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		br := bufio.NewReader(bytes.NewReader(data[1:]))
		if data[0]%2 == 0 {
			if _, m, err := readRawFrame(br); err == nil && m.IsData() {
				if _, ok := m.Payload.([]byte); !ok {
					t.Fatalf("raw data frame decoded to %T, want []byte", m.Payload)
				}
			}
		} else {
			if _, m, err := readTypedFrame(br); err == nil {
				if m.Payload == nil {
					t.Fatal("typed frame decoded with nil payload")
				}
			}
		}
	})
}
