package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// FramePayload is implemented by payload types that travel as tagTyped
// binary frames instead of gob Envelopes. MarshalFrame appends the body
// encoding to dst and returns the extended slice; the codec named by
// FrameCodec (registered via RegisterCodec) decodes it on the far side.
type FramePayload interface {
	// FrameCodec returns the registered codec ID for this type.
	FrameCodec() uint64
	// MarshalFrame appends the frame body to dst and returns it.
	MarshalFrame(dst []byte) []byte
}

// Codec describes one typed frame encoding. Version is the newest body
// layout the local build writes; Unmarshal must accept every version up to
// and including it, so old peers can be decoded after a layout change.
type Codec struct {
	// ID is the wire identifier; it must be stable across builds and
	// unique across the process.
	ID uint64
	// Name is used in diagnostics only.
	Name string
	// Version is written into every outbound frame of this codec.
	Version uint8
	// Unmarshal decodes a frame body produced by MarshalFrame at the
	// given version and returns the payload value (not a pointer) so it
	// round-trips identically to the gob path. The body slice is pooled
	// and reused after Unmarshal returns: implementations must copy any
	// bytes they keep (FrameReader.String already copies).
	Unmarshal func(body []byte, version uint8) (any, error)
}

// codecs is a copy-on-write snapshot: the hot send/receive paths look a
// codec up without any lock; codecMu serializes registration.
var (
	codecMu sync.Mutex
	codecs  atomic.Pointer[map[uint64]*Codec]
)

func init() {
	m := map[uint64]*Codec{}
	codecs.Store(&m)
	RegisterCodec(Codec{
		ID:      DurationCodecID,
		Name:    "time.Duration",
		Version: 1,
		Unmarshal: func(body []byte, _ uint8) (any, error) {
			r := ReaderOf(body)
			d := time.Duration(r.Varint())
			return d, r.Err()
		},
	})
}

// DurationCodecID is the built-in codec for time.Duration payloads (the
// pDP deadline stream); the body is one varint of nanoseconds.
const DurationCodecID uint64 = 1

// RegisterCodec installs a typed frame codec. It panics on a zero ID, a
// duplicate ID, or a nil Unmarshal — all programming errors that would
// otherwise surface as undecodable frames on a remote worker.
func RegisterCodec(c Codec) {
	if c.ID == 0 {
		panic("comm: codec ID 0 is reserved")
	}
	if c.Unmarshal == nil {
		panic(fmt.Sprintf("comm: codec %d (%s) has no Unmarshal", c.ID, c.Name))
	}
	codecMu.Lock()
	defer codecMu.Unlock()
	old := *codecs.Load()
	if prev, dup := old[c.ID]; dup {
		panic(fmt.Sprintf("comm: codec ID %d already registered as %s", c.ID, prev.Name))
	}
	next := make(map[uint64]*Codec, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[c.ID] = &c
	codecs.Store(&next)
}

// lookupCodec returns the registered codec for id, lock-free.
func lookupCodec(id uint64) *Codec { return (*codecs.Load())[id] }

// DecodeFrameBody decodes a typed frame body through the codec registry —
// the same path the transport's receive loop uses. Unknown codec IDs and
// versions newer than the local codec are errors.
func DecodeFrameBody(codecID uint64, version uint8, body []byte) (any, error) {
	c := lookupCodec(codecID)
	if c == nil {
		return nil, fmt.Errorf("comm: unknown codec %d", codecID)
	}
	if version > c.Version {
		return nil, fmt.Errorf("comm: codec %s version %d newer than local %d", c.Name, version, c.Version)
	}
	v, err := c.Unmarshal(body, version)
	if err != nil {
		return nil, fmt.Errorf("comm: codec %s: %w", c.Name, err)
	}
	return v, nil
}

// Append helpers shared by per-type MarshalFrame implementations. Varints
// follow encoding/binary; floats are fixed 8-byte little-endian IEEE 754.

// AppendUvarint appends v as a uvarint.
func AppendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

// AppendVarint appends v as a zig-zag varint.
func AppendVarint(dst []byte, v int64) []byte { return binary.AppendVarint(dst, v) }

// AppendFloat64 appends f as 8 little-endian bytes.
func AppendFloat64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// AppendBool appends b as one byte (0 or 1).
func AppendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendString appends s as a uvarint length prefix followed by its bytes.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ErrShortFrame is reported by FrameReader when a frame body ends before
// the value being decoded.
var ErrShortFrame = fmt.Errorf("comm: truncated frame body")

// FrameReader is a sticky-error cursor over a typed frame body: decode
// calls after the first failure return zero values, so Unmarshal
// implementations can decode a whole struct and check Err once.
type FrameReader struct {
	b   []byte
	off int
	err error
}

// NewFrameReader returns a reader over body. Prefer ReaderOf in codec hot
// paths: the pointer returned here escapes and costs one heap allocation
// per decoded frame.
func NewFrameReader(body []byte) *FrameReader { return &FrameReader{b: body} }

// ReaderOf returns a by-value FrameReader over body. Kept on the caller's
// stack it makes typed-frame decoding allocation-free apart from the
// payload itself.
func ReaderOf(body []byte) FrameReader { return FrameReader{b: body} }

// Err returns the first decode error, or nil.
func (r *FrameReader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *FrameReader) Remaining() int { return len(r.b) - r.off }

func (r *FrameReader) fail() {
	if r.err == nil {
		r.err = ErrShortFrame
	}
}

// Uvarint decodes a uvarint.
func (r *FrameReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Varint decodes a zig-zag varint.
func (r *FrameReader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Float64 decodes 8 little-endian bytes as a float64.
func (r *FrameReader) Float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// Byte decodes one byte.
func (r *FrameReader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Bool decodes one byte as a bool.
func (r *FrameReader) Bool() bool { return r.Byte() != 0 }

// String decodes a uvarint length prefix followed by that many bytes.
// The returned string copies out of the frame body.
func (r *FrameReader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Len is a bounds-checked element count for decoding slices: it rejects
// counts that could not possibly fit in the remaining body (each element
// needs at least min bytes), so a corrupt length prefix cannot drive a
// huge allocation.
func (r *FrameReader) Len(min int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64(r.Remaining()/min) {
		r.fail()
		return 0
	}
	return int(n)
}
