package comm_test

import (
	"testing"
	"time"

	comm "github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/comm/shm"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// TestShmSpillChunkedOversizeFrame pushes a frame four times the ring
// capacity through a tiny shm link: the chunked spill path must stream it
// in ring-sized pieces (counted per link as ShmSpillCount) and the
// receiver must reassemble it intact.
func TestShmSpillChunkedOversizeFrame(t *testing.T) {
	got := make(chan message.Message, 4)
	mk := func(name string, h func(string, stream.ID, message.Message)) *comm.Transport {
		b := shm.New()
		b.Dir = t.TempDir()
		b.RingBytes = 4096
		tr, err := comm.Listen(name, "127.0.0.1:0", h, comm.WithBackend(b, ""))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		return tr
	}
	a := mk("a", func(_ string, _ stream.ID, m message.Message) { got <- m })
	b := mk("b", nil)
	if err := b.Dial("shm://" + a.AddrOf("shm")); err != nil {
		t.Fatal(err)
	}

	payload := make([]byte, 16<<10) // 4x the ring
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := b.SendBytes("a", stream.NewID(), timestamp.New(1), payload, comm.FlushHint{}, false); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		g := m.Payload.([]byte)
		if len(g) != len(payload) {
			t.Fatalf("oversize frame truncated: %d of %d bytes", len(g), len(payload))
		}
		for i := range g {
			if g[i] != payload[i] {
				t.Fatalf("oversize frame corrupted at byte %d", i)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("oversize frame never crossed the ring")
	}

	stats := b.PeerCoalesceStats()["a"]
	if stats.ShmSpillCount == 0 {
		t.Fatalf("16KB frame through a 4KB ring recorded no spills: %+v", stats)
	}
}

// TestMulticastBusOverBroadcastGroup publishes a fanout through a real
// SPMC broadcast ring: two attached readers each decode the one published
// frame with comm.ReadFrame, the pairwise links carry nothing, and when
// the bus medium dies the same call falls back to the pairwise path.
func TestMulticastBusOverBroadcastGroup(t *testing.T) {
	b := shm.New()
	b.Dir = t.TempDir()
	group, err := b.NewBroadcastGroup(4)
	if err != nil {
		t.Fatal(err)
	}
	defer group.Close()
	bus := comm.NewBus(group.Sink(), 0)

	// The bus destinations must also be connected peers (the fallback
	// path); their handlers record link-delivered frames.
	linkGot := make(chan message.Message, 16)
	src, err := comm.Listen("src", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	names := []string{"r0", "r1"}
	for _, name := range names {
		r, err := comm.Listen(name, "127.0.0.1:0",
			func(_ string, _ stream.ID, m message.Message) { linkGot <- m })
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if err := src.Dial(r.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	var readers []*shm.BusReader
	for _, name := range names {
		rd, err := shm.JoinBroadcast(group.Addr(), name)
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		readers = append(readers, rd)
	}

	id := stream.NewID()
	payload := []byte("one publish, many readers")
	n, err := src.MulticastBus(bus, names, nil, id,
		message.Data(timestamp.New(7), payload), comm.FlushHint{})
	if err != nil || n != 2 {
		t.Fatalf("MulticastBus = (%d, %v), want (2, nil)", n, err)
	}
	if frames, _ := bus.Stats(); frames != 1 {
		t.Fatalf("bus carried %d frames, want 1", frames)
	}
	for i, rd := range readers {
		gid, m, err := comm.ReadFrame(rd)
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
		if gid != id || string(m.Payload.([]byte)) != string(payload) {
			t.Fatalf("reader %d decoded (%v, %#v)", i, gid, m.Payload)
		}
		comm.ReleaseMessage(m)
	}
	select {
	case <-linkGot:
		t.Fatal("bus fanout leaked a frame onto a pairwise link")
	case <-time.After(50 * time.Millisecond):
	}

	// Kill the medium: the sticky bus error must fold the destinations
	// back into the pairwise shared-frame path.
	group.Close()
	n, err = src.MulticastBus(bus, names, nil, id,
		message.Data(timestamp.New(8), payload), comm.FlushHint{})
	if n != 2 {
		t.Fatalf("post-close MulticastBus delivered %d, want 2 (err %v)", n, err)
	}
	for i := 0; i < 2; i++ {
		select {
		case m := <-linkGot:
			if string(m.Payload.([]byte)) != string(payload) {
				t.Fatalf("fallback payload = %q", m.Payload)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("fallback frame never arrived pairwise")
		}
	}
}
