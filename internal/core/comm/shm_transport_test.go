package comm_test

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	comm "github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/comm/shm"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

func shmBackend(t testing.TB) *shm.Backend {
	t.Helper()
	b := shm.New()
	b.Dir = t.TempDir()
	return b
}

// TestTransportOverShm runs the full framed transport — handshake, typed
// and raw frames, coalescing — over the shared-memory backend and checks
// both sides classify the peer link as scheme "shm" with zero gob frames.
func TestTransportOverShm(t *testing.T) {
	gotA := make(chan message.Message, 16)
	gotB := make(chan message.Message, 16)
	a, err := comm.Listen("a", "127.0.0.1:0", func(_ string, _ stream.ID, m message.Message) { gotA <- m },
		comm.WithBackend(shmBackend(t), ""))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := comm.Listen("b", "127.0.0.1:0", func(_ string, _ stream.ID, m message.Message) { gotB <- m },
		comm.WithBackend(shmBackend(t), ""))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ringAddr := a.AddrOf("shm")
	if ringAddr == "" {
		t.Fatal("transport with shm backend advertises no shm address")
	}
	if err := b.Dial("shm://" + ringAddr); err != nil {
		t.Fatal(err)
	}
	if s := b.PeerSchemes()["a"]; s != "shm" {
		t.Fatalf("dialer peer scheme = %q, want shm", s)
	}
	if s := a.PeerSchemes()["b"]; s != "shm" {
		t.Fatalf("acceptor peer scheme = %q, want shm", s)
	}

	id := stream.NewID()
	payload := []byte("over shared memory")
	if err := b.Send("a", id, message.Data(timestamp.New(1), payload)); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-gotA:
		if string(m.Payload.([]byte)) != string(payload) {
			t.Fatalf("payload = %q", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never crossed the ring")
	}
	// Reply over the accept-side session, plus a watermark to exercise
	// the non-data raw path.
	if err := a.Send("b", id, message.Data(timestamp.New(2), []byte("reply"))); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", id, message.Watermark(timestamp.New(2))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-gotB:
		case <-time.After(2 * time.Second):
			t.Fatal("reply never crossed the ring")
		}
	}
	for name, tr := range map[string]*comm.Transport{"a": a, "b": b} {
		if s, r := tr.SentFrames(), tr.ReceivedFrames(); s.Gob != 0 || r.Gob != 0 {
			t.Fatalf("%s: gob frames over shm: sent %+v recv %+v", name, s, r)
		}
	}
}

// TestTransportShmPooledRoundtrip pushes a burst of pooled raw sends
// through a ring link with the same SendBytes/ReleaseMessage discipline
// the data plane uses, verifying ordering survives ring wraparound.
func TestTransportShmPooledRoundtrip(t *testing.T) {
	type rec struct {
		seq  uint64
		body []byte
	}
	// Buffers the whole burst: sends on a ring link apply backpressure
	// synchronously, so a handler blocked on this channel would stall the
	// single-goroutine send loop below.
	got := make(chan rec, 512)
	a, err := comm.Listen("a", "127.0.0.1:0", func(_ string, _ stream.ID, m message.Message) {
		body := append([]byte(nil), m.Payload.([]byte)...)
		got <- rec{m.Timestamp.L, body}
		comm.ReleaseMessage(m)
	}, comm.WithBackend(shmBackend(t), ""))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := comm.Listen("b", "127.0.0.1:0", nil, comm.WithBackend(shmBackend(t), ""))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Dial("shm://" + a.AddrOf("shm")); err != nil {
		t.Fatal(err)
	}

	id := stream.NewID()
	const n = 512
	for i := 0; i < n; i++ {
		// 4KB frames: n of them wrap the 1MB default ring several times.
		// SendBytes enqueues the slice without copying, so each frame
		// gets its own buffer, recycled via release=true once written.
		payload := comm.AcquirePayload(4096)
		payload[0] = byte(i)
		if err := b.SendBytes("a", id, timestamp.New(uint64(i)), payload, comm.FlushHint{}, true); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case r := <-got:
			if r.seq != uint64(i) || r.body[0] != byte(i) || len(r.body) != 4096 {
				t.Fatalf("frame %d: got seq %d first byte %d len %d", i, r.seq, r.body[0], len(r.body))
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("frame %d never arrived", i)
		}
	}
}

// countingHook wraps conns and counts the bytes flowing through the
// wrapper, proving ConnHook fault injection sits in the byte path even on
// ring links (a wrapped conn must lose its BufferedConn fast path).
type countingHook struct{ read, wrote atomic.Uint64 }

type countingConn struct {
	net.Conn
	h *countingHook
}

func (h *countingHook) WrapConn(c net.Conn) net.Conn { return &countingConn{Conn: c, h: h} }

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.h.read.Add(uint64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.h.wrote.Add(uint64(n))
	return n, err
}

// TestConnHookSeesShmBytes dials a ring link with a ConnHook installed and
// requires every handshake and data byte to pass through the hook wrapper.
func TestConnHookSeesShmBytes(t *testing.T) {
	hook := &countingHook{}
	got := make(chan message.Message, 1)
	a, err := comm.Listen("a", "127.0.0.1:0", func(_ string, _ stream.ID, m message.Message) { got <- m },
		comm.WithBackend(shmBackend(t), ""))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := comm.Listen("b", "127.0.0.1:0", nil, comm.WithConnHook(hook),
		comm.WithBackend(shmBackend(t), ""))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Dial("shm://" + a.AddrOf("shm")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("a", stream.NewID(), message.Data(timestamp.New(1), []byte("audited"))); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("message never arrived through hooked ring")
	}
	if hook.wrote.Load() == 0 || hook.read.Load() == 0 {
		t.Fatalf("hook saw wrote=%d read=%d bytes; ring bypassed the ConnHook seam",
			hook.wrote.Load(), hook.read.Load())
	}
}

// BenchmarkShmRawRoundtrip measures the same 4KB echo as
// BenchmarkCommRawRoundtrip but over the shared-memory ring backend with
// the pooled send/receive discipline: encode into the ring, hand the
// received body out of the pool, release it after consumption.
func BenchmarkShmRawRoundtrip(b *testing.B) {
	var echoTo atomic.Pointer[comm.Transport]
	done := make(chan struct{}, 1)
	a, err := comm.Listen("a", "127.0.0.1:0", func(_ string, id stream.ID, m message.Message) {
		_ = echoTo.Load().SendRelease("c", id, m, comm.FlushHint{})
	}, comm.WithBackend(shmBackend(b), ""))
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	echoTo.Store(a)
	c, err := comm.Listen("c", "127.0.0.1:0", func(_ string, _ stream.ID, m message.Message) {
		comm.ReleaseMessage(m)
		done <- struct{}{}
	}, comm.WithBackend(shmBackend(b), ""))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Dial("shm://" + a.AddrOf("shm")); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096)
	id := stream.NewID()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.SendBytes("a", id, timestamp.New(uint64(i+1)), payload, comm.FlushHint{}, false); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}
