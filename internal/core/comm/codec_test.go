package comm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// testVec is a typed-frame payload used only by tests; codec IDs >= 900
// are reserved for test codecs.
type testVec struct {
	X  float64
	S  string
	Ns []uint64
}

const testVecCodecID uint64 = 900

func (v testVec) FrameCodec() uint64 { return testVecCodecID }

func (v testVec) MarshalFrame(dst []byte) []byte {
	dst = AppendFloat64(dst, v.X)
	dst = AppendString(dst, v.S)
	dst = AppendUvarint(dst, uint64(len(v.Ns)))
	for _, n := range v.Ns {
		dst = AppendUvarint(dst, n)
	}
	return dst
}

func init() {
	RegisterCodec(Codec{
		ID:      testVecCodecID,
		Name:    "comm.testVec",
		Version: 1,
		Unmarshal: func(body []byte, _ uint8) (any, error) {
			r := NewFrameReader(body)
			var v testVec
			v.X = r.Float64()
			v.S = r.String()
			if n := r.Len(1); n > 0 {
				v.Ns = make([]uint64, n)
				for i := range v.Ns {
					v.Ns[i] = r.Uvarint()
				}
			}
			return v, r.Err()
		},
	})
}

func TestFrameReaderStickyError(t *testing.T) {
	r := NewFrameReader([]byte{0x01, 0x02})
	if got := r.Float64(); got != 0 {
		t.Fatalf("truncated Float64 = %v, want 0", got)
	}
	if r.Err() == nil {
		t.Fatal("expected error after truncated read")
	}
	// Every subsequent read stays zero-valued without panicking.
	if r.Uvarint() != 0 || r.Varint() != 0 || r.Byte() != 0 || r.Bool() || r.String() != "" {
		t.Fatal("sticky-error reader returned non-zero values")
	}
}

func TestFrameReaderLenRejectsOversizedCount(t *testing.T) {
	// A count claiming more elements than the remaining bytes could hold
	// must fail instead of driving a huge allocation.
	body := binary.AppendUvarint(nil, 1<<40)
	r := NewFrameReader(body)
	if n := r.Len(8); n != 0 {
		t.Fatalf("Len = %d, want 0", n)
	}
	if r.Err() == nil {
		t.Fatal("expected error for oversized element count")
	}
}

func TestRegisterCodecRejectsDuplicatesAndZero(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero ID", func() {
		RegisterCodec(Codec{ID: 0, Unmarshal: func([]byte, uint8) (any, error) { return nil, nil }})
	})
	mustPanic("nil Unmarshal", func() {
		RegisterCodec(Codec{ID: 901})
	})
	mustPanic("duplicate", func() {
		RegisterCodec(Codec{ID: testVecCodecID, Unmarshal: func([]byte, uint8) (any, error) { return nil, nil }})
	})
}

// encodeTypedFrame renders one tagTyped frame to bytes for decode tests.
func encodeTypedFrame(t *testing.T, id stream.ID, m message.Message, codecID uint64, version uint8, marshal func([]byte) []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if _, err := writeTypedFrame(bw, id, m, codecID, version, marshal); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTypedFrameRoundTrip(t *testing.T) {
	want := testVec{X: 3.25, S: "edet4", Ns: []uint64{1, 1 << 40, 7}}
	m := message.Data(timestamp.New(42, 3), want)
	frame := encodeTypedFrame(t, 7, m, testVecCodecID, 1, want.MarshalFrame)
	if frame[0] != tagTyped {
		t.Fatalf("tag = %#x, want %#x", frame[0], tagTyped)
	}
	br := bufio.NewReader(bytes.NewReader(frame[1:]))
	id, got, err := readTypedFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 || !got.Timestamp.Equal(m.Timestamp) || !got.IsData() {
		t.Fatalf("frame header mismatch: id=%d m=%+v", id, got)
	}
	if !reflect.DeepEqual(got.Payload, want) {
		t.Fatalf("payload = %+v, want %+v", got.Payload, want)
	}
}

func TestTypedFrameVersionSkew(t *testing.T) {
	v := testVec{X: 1}
	m := message.Data(timestamp.New(1), v)
	// A version newer than the local codec must be rejected (the local
	// build cannot know the layout), not mis-decoded.
	frame := encodeTypedFrame(t, 1, m, testVecCodecID, 99, v.MarshalFrame)
	if _, _, err := readTypedFrame(bufio.NewReader(bytes.NewReader(frame[1:]))); err == nil {
		t.Fatal("expected error for newer codec version")
	}
	// Older versions decode: the codec's Unmarshal receives the frame's
	// version byte to pick the right layout.
	frame = encodeTypedFrame(t, 1, m, testVecCodecID, 0, v.MarshalFrame)
	if _, _, err := readTypedFrame(bufio.NewReader(bytes.NewReader(frame[1:]))); err != nil {
		t.Fatalf("version 0 frame rejected: %v", err)
	}
}

func TestTypedFrameUnknownCodec(t *testing.T) {
	v := testVec{X: 1}
	m := message.Data(timestamp.New(1), v)
	frame := encodeTypedFrame(t, 1, m, 9999999, 1, v.MarshalFrame)
	if _, _, err := readTypedFrame(bufio.NewReader(bytes.NewReader(frame[1:]))); err == nil {
		t.Fatal("expected error for unregistered codec")
	}
}

func TestTypedFrameLengthPrefixOverflow(t *testing.T) {
	// Hand-craft a frame whose declared body length exceeds the limit: the
	// reader must fail before allocating.
	buf := binary.AppendUvarint(nil, 1) // stream id
	buf = timestamp.New(1).AppendBinary(buf)
	buf = binary.AppendUvarint(buf, testVecCodecID)
	buf = append(buf, 1)                               // version
	buf = binary.AppendUvarint(buf, maxFramePayload+1) // body length
	if _, _, err := readTypedFrame(bufio.NewReader(bytes.NewReader(buf))); err == nil {
		t.Fatal("expected error for oversized body length")
	}
}

func TestRawFrameLengthPrefixOverflow(t *testing.T) {
	buf := binary.AppendUvarint(nil, 1) // stream id
	buf = append(buf, byte(message.KindData))
	buf = timestamp.New(1).AppendBinary(buf)
	buf = binary.AppendUvarint(buf, maxFramePayload+1)
	if _, _, err := readRawFrame(bufio.NewReader(bytes.NewReader(buf))); err == nil {
		t.Fatal("expected error for oversized raw payload length")
	}
}

// unregisteredPayload implements FramePayload but has no registered codec:
// the transport must fall back to gob rather than emit an undecodable frame.
type unregisteredPayload struct{ V int }

func (unregisteredPayload) FrameCodec() uint64           { return 987654 }
func (unregisteredPayload) MarshalFrame(d []byte) []byte { return d }

// gobOnlyPayload exercises the gob fallback path alongside typed frames.
type gobOnlyPayload struct {
	Label string
	Vals  []float64
}

func collectTransportPair(t *testing.T, aName, bName string, handler Handler) (*Transport, *Transport) {
	t.Helper()
	a, err := Listen(aName, "127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	b, err := Listen(bName, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	if err := b.Dial(a.Addr()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestTransportTypedEndToEnd(t *testing.T) {
	type rec struct {
		id stream.ID
		m  message.Message
	}
	var mu sync.Mutex
	var got []rec
	a, b := collectTransportPair(t, "typed-a", "typed-b", func(_ string, id stream.ID, m message.Message) {
		mu.Lock()
		got = append(got, rec{id, m})
		mu.Unlock()
	})
	want := testVec{X: -2.5, S: "vec", Ns: []uint64{9}}
	if err := b.Send("typed-a", 3, message.Data(timestamp.New(1), want)); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("typed-a", 4, message.Data(timestamp.New(2), 150*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out: got %d messages", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(got[0].m.Payload, want) {
		t.Fatalf("payload 0 = %+v, want %+v", got[0].m.Payload, want)
	}
	if d, ok := got[1].m.Payload.(time.Duration); !ok || d != 150*time.Millisecond {
		t.Fatalf("payload 1 = %+v, want 150ms", got[1].m.Payload)
	}
	sent := b.SentFrames()
	if sent.Typed != 2 || sent.Gob != 0 {
		t.Fatalf("sender frames = %+v, want 2 typed / 0 gob", sent)
	}
	recv := a.ReceivedFrames()
	if recv.Typed != 2 || recv.Gob != 0 {
		t.Fatalf("receiver frames = %+v, want 2 typed / 0 gob", recv)
	}
}

func TestUnregisteredFramePayloadFallsBackToGob(t *testing.T) {
	RegisterPayload(unregisteredPayload{})
	done := make(chan message.Message, 1)
	a, b := collectTransportPair(t, "fb-a", "fb-b", func(_ string, _ stream.ID, m message.Message) {
		done <- m
	})
	_ = a
	if err := b.Send("fb-a", 1, message.Data(timestamp.New(1), unregisteredPayload{V: 5})); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-done:
		if p, ok := m.Payload.(unregisteredPayload); !ok || p.V != 5 {
			t.Fatalf("payload = %+v", m.Payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
	if sent := b.SentFrames(); sent.Gob != 1 || sent.Typed != 0 {
		t.Fatalf("frames = %+v, want 1 gob / 0 typed", sent)
	}
}

// TestMixedCodecsOneConnection interleaves every wire encoding — typed
// frames, raw []byte frames, watermarks, and gob-fallback payloads — on a
// single connection and checks per-stream content and ordering.
func TestMixedCodecsOneConnection(t *testing.T) {
	RegisterPayload(gobOnlyPayload{})
	type rec struct {
		id stream.ID
		m  message.Message
	}
	var mu sync.Mutex
	var got []rec
	a, b := collectTransportPair(t, "mixed-a", "mixed-b", func(_ string, id stream.ID, m message.Message) {
		mu.Lock()
		got = append(got, rec{id, m})
		mu.Unlock()
	})
	_ = a

	const rounds = 50
	var want []rec
	for i := 0; i < rounds; i++ {
		ts := timestamp.New(uint64(i + 1))
		raw := []byte(fmt.Sprintf("frame-%d", i))
		vec := testVec{X: float64(i), S: "mixed", Ns: []uint64{uint64(i), uint64(i * i)}}
		gobbed := gobOnlyPayload{Label: fmt.Sprintf("g%d", i), Vals: []float64{float64(i), 0.5}}
		batch := []rec{
			{1, message.Data(ts, raw)},
			{2, message.Data(ts, vec)},
			{3, message.Data(ts, 10*time.Millisecond*time.Duration(i+1))},
			{4, message.Data(ts, gobbed)},
			{1, message.Watermark(ts)},
		}
		for _, r := range batch {
			if err := b.Send("mixed-a", r.id, r.m); err != nil {
				t.Fatal(err)
			}
		}
		want = append(want, batch...)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == len(want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out: got %d of %d messages", n, len(want))
		}
		time.Sleep(time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	for i, w := range want {
		g := got[i]
		if g.id != w.id || g.m.Kind != w.m.Kind || !g.m.Timestamp.Equal(w.m.Timestamp) {
			t.Fatalf("message %d: got (%d, %v, %v), want (%d, %v, %v)",
				i, g.id, g.m.Kind, g.m.Timestamp, w.id, w.m.Kind, w.m.Timestamp)
		}
		if !reflect.DeepEqual(g.m.Payload, w.m.Payload) {
			t.Fatalf("message %d payload = %+v, want %+v", i, g.m.Payload, w.m.Payload)
		}
	}
	sent := b.SentFrames()
	if sent.Raw != 2*rounds || sent.Typed != 2*rounds || sent.Gob != rounds {
		t.Fatalf("sent frames = %+v, want %d raw / %d typed / %d gob", sent, 2*rounds, 2*rounds, rounds)
	}
}

// TestCoalescingHonorsFlushDeadlines is the deadline-stress test: bursts of
// hinted small frames must coalesce into shared flushes without any flush
// completing past a held frame's FlushBy.
func TestCoalescingHonorsFlushDeadlines(t *testing.T) {
	var received atomic.Int64
	a, b := collectTransportPair(t, "dl-a", "dl-b", func(string, stream.ID, message.Message) {
		received.Add(1)
	})
	_ = a
	const bursts, perBurst = 40, 16
	payload := make([]byte, 512)
	seq := uint64(0)
	for i := 0; i < bursts; i++ {
		// Generous slack (50ms) on every frame of the burst: the write loop
		// may hold them up to maxCoalesceHold to share a flush, and the
		// lateFlushes counter proves no hold ever crossed a FlushBy.
		hint := FlushHint{FlushBy: time.Now().Add(50 * time.Millisecond)}
		for j := 0; j < perBurst; j++ {
			seq++
			if err := b.SendWithHint("dl-a", 1, message.Data(timestamp.New(seq), payload), hint); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(2 * time.Millisecond) // let the hold window close between bursts
	}
	deadline := time.Now().Add(10 * time.Second)
	for received.Load() < bursts*perBurst {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: received %d of %d", received.Load(), bursts*perBurst)
		}
		time.Sleep(time.Millisecond)
	}
	flushes, coalesced, late := b.CoalesceStats()
	if late != 0 {
		t.Fatalf("lateFlushes = %d, want 0 (coalescing violated deadline slack)", late)
	}
	if coalesced == 0 {
		t.Fatalf("coalesced = 0, want > 0 (flushes=%d); hinted bursts should share flushes", flushes)
	}
	if flushes >= bursts*perBurst {
		t.Fatalf("flushes = %d for %d frames: no batching happened", flushes, bursts*perBurst)
	}
}

// TestUnhintedFramesFlushPromptly guards the latency of hint-free traffic:
// a lone unhinted frame must reach the peer without waiting out any
// coalescing hold.
func TestUnhintedFramesFlushPromptly(t *testing.T) {
	done := make(chan struct{}, 1)
	a, b := collectTransportPair(t, "pr-a", "pr-b", func(string, stream.ID, message.Message) {
		done <- struct{}{}
	})
	_ = a
	start := time.Now()
	if err := b.Send("pr-a", 1, message.Data(timestamp.New(1), []byte("x"))); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
	// Loopback delivery is microseconds; anything near maxCoalesceHold
	// means the unhinted frame sat in the coalescing buffer.
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("unhinted frame took %v", d)
	}
}
