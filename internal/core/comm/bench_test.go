package comm

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// BenchmarkInterWorkerSend measures the data plane's per-message cost for a
// 64KB payload over loopback TCP with gob framing.
func BenchmarkInterWorkerSend(b *testing.B) {
	var received atomic.Int64
	a, err := Listen("a", "127.0.0.1:0", func(string, stream.ID, message.Message) {
		received.Add(1)
	})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	c, err := Listen("c", "127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Dial(a.Addr()); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	id := stream.NewID()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send("a", id, message.Data(timestamp.New(uint64(i+1)), payload)); err != nil {
			b.Fatal(err)
		}
	}
	for received.Load() < int64(b.N) {
		time.Sleep(100 * time.Microsecond)
	}
}

// BenchmarkCommRawRoundtrip measures the full request/response latency of a
// 4KB []byte payload over loopback TCP: c -> a (echo) -> c. This is the
// data-plane path a remote sensor frame takes, and it exercises the
// []byte fast path end to end.
func BenchmarkCommRawRoundtrip(b *testing.B) {
	var echoTo atomic.Pointer[Transport]
	done := make(chan struct{}, 1)
	a, err := Listen("a", "127.0.0.1:0", func(_ string, id stream.ID, m message.Message) {
		_ = echoTo.Load().Send("c", id, m)
	})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	echoTo.Store(a)
	c, err := Listen("c", "127.0.0.1:0", func(string, stream.ID, message.Message) {
		done <- struct{}{}
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Dial(a.Addr()); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096)
	id := stream.NewID()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send("a", id, message.Data(timestamp.New(uint64(i+1)), payload)); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}
