// Payload pooling for the receive path. Before this existed every received
// frame made one allocation for its body ([]byte payload on the raw path,
// transient codec input on the typed path) — the dominant cost of the 4 KB
// round-trip profile. Bodies now come from size-classed pools:
//
//   - typed-frame bodies are provably transient (codecs must copy anything
//     they keep — see Codec.Unmarshal), so the read loop recycles them as
//     soon as the body is decoded;
//   - raw []byte payloads escape into handlers, so ownership is explicit:
//     handlers that fully consume a payload call RecyclePayload, and
//     senders that relinquish a pooled buffer use Transport.SendRelease,
//     which recycles it once the frame is on the wire.
//
// Pooling is safe-by-default: a payload that is never recycled is simply
// garbage-collected, exactly as before.
package comm

import (
	"math/bits"
	"sync"

	"github.com/erdos-go/erdos/internal/core/message"
)

// Payload size classes are powers of two from 512 B up to maxFramePayload;
// smaller requests round up to the smallest class, larger ones bypass the
// pool entirely.
const (
	minPayloadClass = 9  // 512 B
	maxPayloadClass = 26 // 64 MiB == maxFramePayload
)

var payloadPools [maxPayloadClass + 1]sync.Pool

// headerPool recycles the *[]byte boxes the payload pools store. Without it
// every RecyclePayload heap-allocates a fresh slice header just to Put it
// (the classic sync.Pool-of-slices escape): one alloc per received frame.
// Headers circulate between the two pools instead — Acquire frees one here,
// Recycle takes it back — so the steady-state receive path allocates
// nothing.
var headerPool sync.Pool

func payloadClass(n int) int {
	c := bits.Len(uint(n - 1))
	if c < minPayloadClass {
		c = minPayloadClass
	}
	return c
}

// AcquirePayload returns a []byte of length n backed by a pooled buffer
// whose capacity is the next power-of-two size class. Contents are not
// zeroed — callers overwrite the full length (io.ReadFull on the receive
// path). Requests beyond the frame size limit fall back to plain make.
func AcquirePayload(n int) []byte {
	if n <= 0 {
		return []byte{}
	}
	if n > maxFramePayload {
		return make([]byte, n)
	}
	c := payloadClass(n)
	if v := payloadPools[c].Get(); v != nil {
		h := v.(*[]byte)
		b := *h
		*h = nil
		headerPool.Put(h)
		return b[:n]
	}
	return make([]byte, n, 1<<c)
}

// RecyclePayload returns a buffer obtained from AcquirePayload to its size
// class. Buffers with a capacity that is not one of the pool's classes
// (including any slice not from AcquirePayload) are silently dropped, so
// calling it on a foreign []byte is harmless. The caller must not touch the
// slice afterwards.
func RecyclePayload(b []byte) {
	c := cap(b)
	if c < 1<<minPayloadClass || c > 1<<maxPayloadClass || c&(c-1) != 0 {
		return
	}
	h, _ := headerPool.Get().(*[]byte)
	if h == nil {
		h = new([]byte)
	}
	*h = b[:c]
	payloadPools[bits.TrailingZeros(uint(c))].Put(h)
}

// ReleaseMessage recycles m's payload if it is a pooled []byte; other
// payload kinds are untouched. Handlers that fully consume a raw frame can
// call this to return the body to the pool.
func ReleaseMessage(m message.Message) {
	if b, ok := m.Payload.([]byte); ok {
		RecyclePayload(b)
	}
}

// StructPool recycles decoded payload structs for codecs and handlers that
// manage payload ownership explicitly (the decoded-value analogue of
// AcquirePayload/RecyclePayload). Get returns a zero or previously-Put
// value; Put stores it for reuse. The caller is responsible for resetting
// any state it does not overwrite.
type StructPool[T any] struct {
	p sync.Pool
}

// Get returns a pooled *T, allocating when the pool is empty.
func (sp *StructPool[T]) Get() *T {
	if v := sp.p.Get(); v != nil {
		return v.(*T)
	}
	return new(T)
}

// Put returns v for reuse by a later Get.
func (sp *StructPool[T]) Put(v *T) {
	if v != nil {
		sp.p.Put(v)
	}
}
