package comm

import (
	"bytes"
	"encoding/binary"
	"io"
	"runtime/debug"
	"testing"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// TestReadRawFrameTruncatedRecyclesPayload pins the error path the bufown
// analyzer flagged: a raw frame whose payload is cut short must return the
// pooled buffer it acquired, not drop it. The test proves the recycle by
// pointer identity — seed the size class with a marked buffer, fail a read,
// and require the next acquire of that class to hand the same array back.
func TestReadRawFrameTruncatedRecyclesPayload(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomly drops Puts under the race detector; pool identity is not observable")
	}
	// sync.Pool empties on GC; hold it off so the round trip is deterministic.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	// 3MiB rounds up to the 4MiB class. Drain whatever earlier tests left
	// in that class (holding the refs so they cannot be re-pooled), then
	// seed it with exactly one marked buffer.
	const plen = 3 << 20
	hold := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		hold = append(hold, AcquirePayload(plen))
	}
	_ = hold
	marked := make([]byte, 1<<22)
	RecyclePayload(marked)

	// A raw frame body (tag already consumed): stream id, kind, timestamp,
	// declared payload length — then a single payload byte, so io.ReadFull
	// fails partway with ErrUnexpectedEOF.
	var frame []byte
	frame = binary.AppendUvarint(frame, 42)
	frame = append(frame, byte(message.KindData))
	frame = timestamp.New(7).AppendBinary(frame)
	frame = binary.AppendUvarint(frame, plen)
	frame = append(frame, 0xAB)

	_, _, err := readRawFrame(bytes.NewReader(frame))
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("readRawFrame on truncated payload = %v, want %v", err, io.ErrUnexpectedEOF)
	}

	// Deliberately not recycled: leaving the class empty keeps repeated
	// runs (-count) from finding a stale buffer ahead of the seeded one.
	got := AcquirePayload(plen)
	if &got[0] != &marked[0] {
		t.Fatal("truncated read did not recycle its pooled payload: next acquire got a different buffer")
	}
}
