// The inproc backend: a comm.Backend for peers living in the same
// process. Workers colocated in one address space (embedded pipelines,
// single-process deployments, benchmarks) have no reason to serialize at
// all — the backend's connections offer the comm.ValueConn capability,
// so the transport hands whole (stream, message) values across a
// lock-free queue and the receiver gets the very same value, zero encode
// and zero copy.
//
// Ownership transfers with the value: once SendValue returns nil the
// receiving transport owns the payload under the same contract as the
// byte receive path (pooled []byte payloads are the receiver's to
// recycle; typed payloads must be treated as immutable, since fanout may
// share one value across receivers). The byte side of each connection is
// a net.Pipe that carries only the gob handshake and EOF liveness; the
// codec registry stays authoritative for every cross-process link, and
// no frame ever needs encoding here — which is why this package imports
// no codecs and no gob.
package inproc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/erdos-go/erdos/internal/core/comm"
	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
)

// Backend implements comm.Backend over a process-global address
// registry. The zero value is ready to use; all Backend values share the
// same namespace (addresses are process-global by nature).
type Backend struct{}

// New returns the inproc backend.
func New() *Backend { return &Backend{} }

// Scheme implements comm.Backend.
func (*Backend) Scheme() string { return "inproc" }

var (
	regMu    sync.Mutex
	registry = map[string]*listener{}
	autoSeq  atomic.Uint64
)

// Listen implements comm.Backend. addr is any process-unique name; empty
// picks a fresh one.
func (*Backend) Listen(addr string) (comm.Listener, error) {
	if addr == "" {
		addr = fmt.Sprintf("auto-%d", autoSeq.Add(1))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, taken := registry[addr]; taken {
		return nil, fmt.Errorf("inproc: address %q already bound", addr)
	}
	ln := &listener{name: addr, ch: make(chan net.Conn, 16), done: make(chan struct{})}
	registry[addr] = ln
	return ln, nil
}

// Dial implements comm.Backend: build the connection pair — a pipe for
// the handshake-and-liveness byte side, two value queues for the data
// plane — and hand the accept side to the listener.
func (*Backend) Dial(addr string) (net.Conn, error) {
	regMu.Lock()
	ln := registry[addr]
	regMu.Unlock()
	if ln == nil {
		return nil, fmt.Errorf("inproc: no listener at %q", addr)
	}
	dp, ap := net.Pipe()
	d2a := newQueue(queueCap)
	a2d := newQueue(queueCap)
	dc := &Conn{Conn: dp, tx: d2a, rx: a2d}
	ac := &Conn{Conn: ap, tx: a2d, rx: d2a}
	select {
	case ln.ch <- ac:
		return dc, nil
	case <-ln.done:
		dc.Close()
		ac.Close()
		return nil, fmt.Errorf("inproc: listener %q closed", addr)
	}
}

type listener struct {
	name      string
	ch        chan net.Conn
	done      chan struct{}
	closeOnce sync.Once
}

func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, errors.New("inproc: listener closed")
	}
}

func (l *listener) Addr() string { return l.name }

func (l *listener) Close() error {
	l.closeOnce.Do(func() {
		regMu.Lock()
		delete(registry, l.name)
		regMu.Unlock()
		close(l.done)
	})
	return nil
}

// Conn is one same-process connection: the embedded pipe end implements
// net.Conn (handshake bytes, EOF liveness, deadline plumbing), and the
// queues implement comm.ValueConn. It deliberately does NOT implement
// comm.BufferedConn — a wrapped (fault-injected) conn falls back to the
// byte path over the pipe, so ConnHook harnesses keep seeing every byte.
type Conn struct {
	net.Conn
	tx, rx    *queue
	closeOnce sync.Once
	closeErr  error
}

// SendValue implements comm.ValueConn. Ownership of m transfers iff the
// return is nil.
func (c *Conn) SendValue(id stream.ID, m message.Message) error {
	return c.tx.enqueue(id, m)
}

// RecvValue implements comm.ValueConn.
func (c *Conn) RecvValue() (stream.ID, message.Message, error) {
	return c.rx.dequeue()
}

// Close implements net.Conn: both value queues die with the byte pipe,
// so a peer blocked in either plane unblocks promptly.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.tx.close()
		c.rx.close()
		c.closeErr = c.Conn.Close()
	})
	return c.closeErr
}
