package inproc

import (
	"errors"
	"sync"
	"testing"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// TestQueueConcurrentProducers hammers the handoff queue with several
// producers and one consumer (the transport's actual shape) across a
// capacity small enough to force full-queue parking, and verifies
// nothing is lost, duplicated, or reordered per producer.
func TestQueueConcurrentProducers(t *testing.T) {
	q := newQueue(16)
	const producers = 4
	const perProducer = 2000

	var wg sync.WaitGroup
	for pi := 0; pi < producers; pi++ {
		pi := pi
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				m := message.Data(timestamp.New(uint64(i)), nil)
				if err := q.enqueue(stream.ID(pi), m); err != nil {
					t.Errorf("producer %d: %v", pi, err)
					return
				}
			}
		}()
	}

	lastSeen := make([]int, producers)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	for n := 0; n < producers*perProducer; n++ {
		id, m, err := q.dequeue()
		if err != nil {
			t.Fatalf("dequeue %d: %v", n, err)
		}
		pi := int(id)
		seq := int(m.Timestamp.L)
		if seq != lastSeen[pi]+1 {
			t.Fatalf("producer %d: got seq %d after %d", pi, seq, lastSeen[pi])
		}
		lastSeen[pi] = seq
	}
	wg.Wait()
	for pi, last := range lastSeen {
		if last != perProducer-1 {
			t.Fatalf("producer %d: consumed through %d, want %d", pi, last, perProducer-1)
		}
	}
}

// TestQueueCloseDrainsThenErrors requires close() to let the consumer
// drain everything already accepted before surfacing the closed error,
// and to fail further enqueues immediately.
func TestQueueCloseDrainsThenErrors(t *testing.T) {
	q := newQueue(16)
	for i := 0; i < 5; i++ {
		if err := q.enqueue(stream.ID(i), message.Message{}); err != nil {
			t.Fatal(err)
		}
	}
	q.close()
	if err := q.enqueue(99, message.Message{}); !errors.Is(err, errConnClosed) {
		t.Fatalf("enqueue after close = %v, want errConnClosed", err)
	}
	for i := 0; i < 5; i++ {
		id, _, err := q.dequeue()
		if err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
		if int(id) != i {
			t.Fatalf("drain %d: got id %d", i, id)
		}
	}
	if _, _, err := q.dequeue(); !errors.Is(err, errConnClosed) {
		t.Fatalf("dequeue after drain = %v, want errConnClosed", err)
	}
}

// TestQueueCloseUnblocksParkedConsumer parks a consumer on an empty
// queue and requires close() to unblock it promptly.
func TestQueueCloseUnblocksParkedConsumer(t *testing.T) {
	q := newQueue(16)
	done := make(chan error, 1)
	go func() {
		_, _, err := q.dequeue()
		done <- err
	}()
	q.close()
	if err := <-done; !errors.Is(err, errConnClosed) {
		t.Fatalf("parked dequeue = %v, want errConnClosed", err)
	}
}

// TestListenerRegistry exercises the process-global address namespace:
// duplicate binds fail, dialing a missing address fails, and close
// releases the name.
func TestListenerRegistry(t *testing.T) {
	b := New()
	ln, err := b.Listen("reg-test")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Listen("reg-test"); err == nil {
		t.Fatal("duplicate bind succeeded")
	}
	if _, err := b.Dial("no-such-address"); err == nil {
		t.Fatal("dial of an unbound address succeeded")
	}
	ln.Close()
	ln2, err := b.Listen("reg-test")
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	ln2.Close()
}
