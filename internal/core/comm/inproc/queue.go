package inproc

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
)

// queueCap is the per-direction handoff depth, matching the transport's
// per-peer outbound queue so the value path and the byte path exert the
// same backpressure.
const queueCap = 1024

// spinYields bounds the lock-free fast path before a blocked side parks
// on its wake channel.
const spinYields = 128

// parkPoll is the parked sides' safety re-check period; wakes are
// best-effort (a full wake channel drops the signal), and the poll
// guarantees progress anyway.
const parkPoll = 2 * time.Millisecond

var errConnClosed = errors.New("inproc: connection closed")

// cell is one queue slot. seq is the Vyukov sequence word: it equals the
// slot's ticket when the slot is free for that ticket's producer, and
// ticket+1 once the value is published for the consumer.
type cell struct {
	seq atomic.Uint64
	id  stream.ID
	m   message.Message
}

// queue is a bounded lock-free MPMC handoff queue (Vyukov's bounded
// queue) carrying whole (stream, message) values between two transports
// in the same process — the zero-serialization data plane of the inproc
// backend. Producers are the sender's goroutines (Send, Multicast,
// forwarding taps); the single consumer is the receiving transport's
// value loop. Blocking is spin-then-park with best-effort wake channels
// and a poll safety net, mirroring the shm rings.
type queue struct {
	cells []cell
	mask  uint64

	enq atomic.Uint64
	deq atomic.Uint64

	closed    atomic.Bool
	closeCh   chan struct{}
	closeOnce sync.Once

	// sendWake is signaled when a dequeue frees a slot; recvWake when an
	// enqueue publishes a value. Both are best-effort (capacity 1).
	sendWake chan struct{}
	recvWake chan struct{}
}

func newQueue(capacity int) *queue {
	q := &queue{
		cells:    make([]cell, capacity),
		mask:     uint64(capacity - 1),
		closeCh:  make(chan struct{}),
		sendWake: make(chan struct{}, 1),
		recvWake: make(chan struct{}, 1),
	}
	for i := range q.cells {
		q.cells[i].seq.Store(uint64(i))
	}
	return q
}

// close marks the queue dead and unblocks both sides. Values already
// published remain readable: the consumer drains them before seeing the
// error, so a clean shutdown loses nothing that was accepted.
func (q *queue) close() {
	q.closeOnce.Do(func() {
		q.closed.Store(true)
		close(q.closeCh)
	})
}

// enqueue publishes one value, blocking while the queue is full.
// Ownership of m (including pooled payloads) transfers to the consumer
// iff the return is nil.
func (q *queue) enqueue(id stream.ID, m message.Message) error {
	spins := 0
	for {
		if q.closed.Load() {
			return errConnClosed
		}
		pos := q.enq.Load()
		c := &q.cells[pos&q.mask]
		seq := c.seq.Load()
		switch {
		case seq == pos:
			if q.enq.CompareAndSwap(pos, pos+1) {
				c.id, c.m = id, m
				c.seq.Store(pos + 1)
				select {
				case q.recvWake <- struct{}{}:
				default:
				}
				return nil
			}
		case seq < pos:
			// Queue full: the consumer has not recycled this slot yet.
			if spins++; spins < spinYields {
				runtime.Gosched()
				continue
			}
			spins = 0
			if err := q.park(q.sendWake); err != nil {
				return err
			}
		default:
			// Lost the ticket race to another producer; retry.
			runtime.Gosched()
		}
	}
}

// dequeue takes the next value, blocking while the queue is empty. After
// close it drains the values already published, then reports the closed
// error.
func (q *queue) dequeue() (stream.ID, message.Message, error) {
	spins := 0
	for {
		pos := q.deq.Load()
		c := &q.cells[pos&q.mask]
		seq := c.seq.Load()
		switch {
		case seq == pos+1:
			if q.deq.CompareAndSwap(pos, pos+1) {
				id, m := c.id, c.m
				c.id, c.m = 0, message.Message{}
				c.seq.Store(pos + q.mask + 1)
				select {
				case q.sendWake <- struct{}{}:
				default:
				}
				return id, m, nil
			}
		case seq <= pos:
			// Empty. Only report closed once everything accepted has been
			// drained (enq == pos means no published value remains).
			if q.closed.Load() && q.enq.Load() == pos {
				return 0, message.Message{}, errConnClosed
			}
			if spins++; spins < spinYields {
				runtime.Gosched()
				continue
			}
			spins = 0
			if err := q.parkRecv(); err != nil {
				return 0, message.Message{}, err
			}
		default:
			runtime.Gosched()
		}
	}
}

// park blocks on wake with the poll safety net. Close does not surface
// as an error here — the caller re-checks its own closed/drain
// condition, which differs between the two sides.
func (q *queue) park(wake chan struct{}) error {
	timer := time.NewTimer(parkPoll)
	defer timer.Stop()
	select {
	case <-wake:
	case <-q.closeCh:
	case <-timer.C:
	}
	return nil
}

func (q *queue) parkRecv() error { return q.park(q.recvWake) }
