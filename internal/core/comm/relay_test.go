package comm

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// relayRig is a producer, one relay transport (registered relay handler),
// and n consumer transports. The producer is connected to everything (the
// fallback contract requires Cover members to be reachable pairwise); the
// relay is connected to every consumer for republish.
type relayRig struct {
	src, relay *Transport
	recv       []*Transport
	got        []chan message.Message
	names      []string
	envelopes  atomic.Uint64
	hints      chan FlushHint
	handler    atomic.Pointer[RelayHandler]
}

func newRelayRig(t testing.TB, n int) *relayRig {
	t.Helper()
	rig := &relayRig{hints: make(chan FlushHint, 16)}

	src, err := Listen("src", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	rig.src = src

	relay, err := Listen("relay", "127.0.0.1:0", nil,
		WithRelayHandler(func(from string, id stream.ID, cover []string, decode func() (message.Message, error), frame []byte, typed bool, hint FlushHint) {
			rig.envelopes.Add(1)
			select {
			case rig.hints <- hint:
			default:
			}
			(*rig.handler.Load())(from, id, cover, decode, frame, typed, hint)
		}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { relay.Close() })
	rig.relay = relay

	// Default handler: republish the verbatim frame pairwise to the
	// producer's cover list, propagating the re-derived hint. The relay is
	// not a consumer here, so the lazy decoder is never invoked and the
	// payload copy never happens.
	h := RelayHandler(func(_ string, id stream.ID, cover []string, _ func() (message.Message, error), frame []byte, typed bool, hint FlushHint) {
		if _, err := relay.RepublishWithHint(nil, nil, cover, frame, typed, id, hint); err != nil {
			t.Errorf("republish: %v", err)
		}
	})
	rig.handler.Store(&h)

	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		ch := make(chan message.Message, 1024)
		r, err := Listen(name, "127.0.0.1:0",
			func(_ string, _ stream.ID, m message.Message) { ch <- m })
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		for _, dialer := range []*Transport{src, relay} {
			if err := dialer.Dial(r.Addr()); err != nil {
				t.Fatal(err)
			}
		}
		rig.recv = append(rig.recv, r)
		rig.got = append(rig.got, ch)
		rig.names = append(rig.names, name)
	}
	if err := src.Dial(relay.Addr()); err != nil {
		t.Fatal(err)
	}
	return rig
}

func (rig *relayRig) await(t testing.TB, want int) []message.Message {
	t.Helper()
	out := make([]message.Message, 0, want*len(rig.got))
	for i, ch := range rig.got {
		for k := 0; k < want; k++ {
			select {
			case m := <-ch:
				out = append(out, m)
			case <-time.After(2 * time.Second):
				t.Fatalf("consumer %d got %d/%d messages", i, k, want)
			}
		}
	}
	return out
}

// TestRelayMulticastTreeSingleWireFrame proves the tentpole invariant at
// the transport layer: a fanout to K consumers behind one relay costs the
// producer exactly one wire frame (the tagRelay envelope to the relay),
// zero frames on the producer→consumer links, and every consumer decodes
// the same payload from the relay's republish.
func TestRelayMulticastTreeSingleWireFrame(t *testing.T) {
	rig := newRelayRig(t, 3)

	if !rig.src.RelayCapable("relay") {
		t.Fatal("relay handshake did not advertise relay capability")
	}
	if rig.src.RelayCapable(rig.names[0]) {
		t.Fatal("plain consumer claims relay capability")
	}

	v := testVec{X: 4.25, S: "tree", Ns: []uint64{3, 5}}
	n, err := rig.src.MulticastTree(nil, nil, nil,
		[]RelayDest{{Relay: "relay", Cover: rig.names}},
		stream.NewID(), message.Data(timestamp.New(1), v), FlushHint{})
	if err != nil || n != 3 {
		t.Fatalf("MulticastTree = (%d, %v), want (3, nil)", n, err)
	}
	for i, m := range rig.await(t, 1) {
		got, ok := m.Payload.(testVec)
		if !ok || got.X != v.X || got.S != v.S {
			t.Fatalf("consumer %d decoded %#v", i, m.Payload)
		}
	}

	stats := rig.src.PeerCoalesceStats()
	if rf := stats["relay"].RelayFrames; rf != 1 {
		t.Fatalf("relay link carried %d tagRelay envelopes, want 1", rf)
	}
	for _, name := range rig.names {
		if f := stats[name].Frames; f != 0 {
			t.Fatalf("producer wrote %d frames directly to covered consumer %s, want 0", f, name)
		}
	}
	if sent, _, _ := rig.src.RelayStats(); sent != 1 {
		t.Fatalf("producer relaySent = %d, want 1", sent)
	}
	waitFor(t, "relay republish telemetry", 2*time.Second, func() bool {
		_, recv, repub := rig.relay.RelayStats()
		return recv == 1 && repub == 3
	})
	waitFrameBalance(t)
}

// TestRelayHintRederivation checks the deadline contract: the envelope
// carries remaining slack, not a wall-clock deadline, so the hint the
// relay sees is re-derived against its own clock and never exceeds the
// slack the producer had left.
func TestRelayHintRederivation(t *testing.T) {
	rig := newRelayRig(t, 1)

	slack := 500 * time.Millisecond
	before := time.Now()
	_, err := rig.src.MulticastTree(nil, nil, nil,
		[]RelayDest{{Relay: "relay", Cover: rig.names}},
		stream.NewID(), message.Data(timestamp.New(1), []byte("hinted")),
		FlushHint{FlushBy: before.Add(slack)})
	if err != nil {
		t.Fatal(err)
	}
	rig.await(t, 1)

	select {
	case hint := <-rig.hints:
		if hint.FlushBy.IsZero() {
			t.Fatal("relay saw a zero hint for a hinted send")
		}
		if hint.FlushBy.After(before.Add(slack + 50*time.Millisecond)) {
			t.Fatalf("relay hint %v extends past the producer's deadline %v", hint.FlushBy, before.Add(slack))
		}
		if !hint.FlushBy.After(before) {
			t.Fatalf("relay hint %v lost all slack immediately", hint.FlushBy)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("relay handler never ran")
	}

	// A hintless send must arrive hintless: zero slack is "flush now",
	// not "flush at now+0 wall clock".
	_, err = rig.src.MulticastTree(nil, nil, nil,
		[]RelayDest{{Relay: "relay", Cover: rig.names}},
		stream.NewID(), message.Data(timestamp.New(2), []byte("bare")), FlushHint{})
	if err != nil {
		t.Fatal(err)
	}
	rig.await(t, 1)
	select {
	case hint := <-rig.hints:
		if !hint.FlushBy.IsZero() {
			t.Fatalf("hintless relay send arrived with hint %v", hint.FlushBy)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("relay handler never ran for the hintless send")
	}
	waitFrameBalance(t)
}

// TestRelayFallbackToPairwise sends through a RelayDest whose relay never
// registered a handler: the capability is absent from the handshake, so
// the Cover folds back into pairwise sends and nothing is lost.
func TestRelayFallbackToPairwise(t *testing.T) {
	rig := newFanoutRig(t, 3)
	// r0 plays "relay" but advertised no handler; r1, r2 are its cover.
	cover := []string{rig.names[1], rig.names[2]}

	if rig.src.RelayCapable(rig.names[0]) {
		t.Fatal("handler-less peer claims relay capability")
	}
	n, err := rig.src.MulticastTree(nil, nil, nil,
		[]RelayDest{{Relay: rig.names[0], Cover: cover}},
		stream.NewID(), message.Data(timestamp.New(1), []byte("fallback")), FlushHint{})
	if err != nil || n != 2 {
		t.Fatalf("MulticastTree = (%d, %v), want (2, nil)", n, err)
	}
	for i := 1; i <= 2; i++ {
		select {
		case m := <-rig.got[i]:
			if !bytes.Equal(m.Payload.([]byte), []byte("fallback")) {
				t.Fatalf("consumer %d decoded %q", i, m.Payload)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("cover consumer %d never got the fallback send", i)
		}
	}
	if sent, _, _ := rig.src.RelayStats(); sent != 0 {
		t.Fatalf("producer shipped %d tagRelay envelopes to a non-relay, want 0", sent)
	}
	waitFrameBalance(t)
}

// TestRepublishDeliversVerbatimFrame republishes a captured wire frame
// directly and checks the consumer decodes it and the caller's reference
// is released even when there are no pairwise destinations.
func TestRepublishDeliversVerbatimFrame(t *testing.T) {
	rig := newFanoutRig(t, 2)

	// Capture a typed frame the same way the relay read loop would hold it.
	v := testVec{X: 9, S: "verbatim", Ns: []uint64{1, 2, 3}}
	m := message.Data(timestamp.New(7), v)
	var sink frameBuf
	sink.b = AcquirePayload(256)[:0]
	c := lookupCodec(v.FrameCodec())
	if c == nil {
		t.Fatal("testVec codec not registered")
	}
	id := stream.NewID()
	if _, err := writeTypedFrame(&sink, id, m, c.ID, c.Version, v.MarshalFrame); err != nil {
		t.Fatal(err)
	}

	n, err := rig.src.Republish(nil, nil, rig.names[:2], sink.b, true, id)
	if err != nil || n != 2 {
		t.Fatalf("Republish = (%d, %v), want (2, nil)", n, err)
	}
	for i := 0; i < 2; i++ {
		select {
		case got := <-rig.got[i]:
			pv, ok := got.Payload.(testVec)
			if !ok || pv.X != v.X || pv.S != v.S {
				t.Fatalf("consumer %d decoded %#v", i, got.Payload)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("consumer %d never got the republished frame", i)
		}
	}
	if _, _, repub := rig.src.RelayStats(); repub != 2 {
		t.Fatalf("republished counter = %d, want 2", repub)
	}
	waitFrameBalance(t)
}

func waitFor(t testing.TB, what string, d time.Duration, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
