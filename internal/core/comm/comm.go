// Package comm implements ERDOS' data plane (§6.1 of the paper): workers
// exchange stream messages over TCP sessions established amongst themselves,
// while operators colocated on a worker communicate references through the
// in-process broadcaster (zero copy).
//
// Wire format: after a gob handshake, each connection carries a sequence of
// tagged frames. Watermarks and []byte data payloads — the sensor-frame hot
// path — travel as length-prefixed binary frames with no reflection at all;
// any other payload type falls back to a gob-encoded Envelope frame and must
// be registered with RegisterPayload. Header encoding uses pooled scratch
// buffers and payload bytes are written straight from the message, so the
// fast path costs one allocation on the receive side (the payload) and none
// on the send side.
package comm

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// RegisterPayload registers a payload type for transmission between
// workers. []byte and time.Duration are pre-registered.
func RegisterPayload(v any) { gob.Register(v) }

func init() {
	gob.Register(time.Duration(0))
}

// Frame tags. tagRaw frames carry watermarks and []byte data payloads in
// plain binary; tagGob frames carry an Envelope through gob's type registry.
const (
	tagRaw byte = 0x01
	tagGob byte = 0x02
)

// Envelope is the gob wire representation of one stream message; only
// messages that cannot take the binary fast path travel as Envelopes.
type Envelope struct {
	Stream uint64
	Kind   uint8
	L      uint64
	C      []uint64
	Top    bool
	// Raw carries []byte payloads directly.
	Raw    []byte
	HasRaw bool
	// Obj carries any other payload via gob's type registry.
	Obj    any
	HasObj bool
}

// ToEnvelope converts a stream message for the wire.
func ToEnvelope(id stream.ID, m message.Message) Envelope {
	env := Envelope{
		Stream: uint64(id),
		Kind:   uint8(m.Kind),
		L:      m.Timestamp.L,
		C:      m.Timestamp.C,
		Top:    m.Timestamp.IsTop(),
	}
	if m.IsData() {
		if b, ok := m.Payload.([]byte); ok {
			env.Raw, env.HasRaw = b, true
		} else {
			env.Obj, env.HasObj = m.Payload, true
		}
	}
	return env
}

// FromEnvelope reconstructs the stream ID and message.
func FromEnvelope(env Envelope) (stream.ID, message.Message) {
	var ts timestamp.Timestamp
	if env.Top {
		ts = timestamp.Top()
	} else {
		ts = timestamp.New(env.L, env.C...)
	}
	m := message.Message{Kind: message.Kind(env.Kind), Timestamp: ts}
	switch {
	case env.HasRaw:
		m.Payload = env.Raw
	case env.HasObj:
		m.Payload = env.Obj
	}
	return stream.ID(env.Stream), m
}

// Handler consumes messages received from remote workers.
type Handler func(from string, id stream.ID, m message.Message)

// Transport is one worker's endpoint in the data plane mesh.
type Transport struct {
	name    string
	ln      net.Listener
	handler Handler // immutable after Listen

	// peers is a copy-on-write snapshot: Send looks a peer up without any
	// lock; mu serializes snapshot replacement (connect/close only).
	peers  atomic.Pointer[map[string]*peer]
	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	sent, received atomic.Uint64
}

type outMsg struct {
	id stream.ID
	m  message.Message
}

type peer struct {
	name string
	conn net.Conn
	enc  *gob.Encoder
	bw   *bufio.Writer
	out  chan outMsg
	done chan struct{}
}

type hello struct{ Name string }

// Listen starts a transport for worker name on addr (use "127.0.0.1:0" to
// pick a free port). handler receives every inbound message.
func Listen(name, addr string, handler Handler) (*Transport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &Transport{name: name, ln: ln, handler: handler}
	empty := map[string]*peer{}
	t.peers.Store(&empty)
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Name returns the worker name.
func (t *Transport) Name() string { return t.name }

// Addr returns the listening address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// Dial connects to a peer transport.
func (t *Transport) Dial(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	bw := bufio.NewWriterSize(conn, 1<<16)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(hello{Name: t.name}); err != nil {
		conn.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return err
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	dec := gob.NewDecoder(br)
	var h hello
	if err := dec.Decode(&h); err != nil {
		conn.Close()
		return fmt.Errorf("comm: handshake with %s: %w", addr, err)
	}
	p := t.addPeer(h.Name, conn, enc, bw)
	if p == nil {
		conn.Close()
		return fmt.Errorf("comm: duplicate peer %q", h.Name)
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.readLoop(p, br, dec)
	}()
	return nil
}

// Send transmits m on stream id to the named peer. The lookup is lock-free
// and the sent counter is only incremented once the message is actually
// queued on a live connection.
func (t *Transport) Send(peerName string, id stream.ID, m message.Message) error {
	p := (*t.peers.Load())[peerName]
	if p == nil {
		return fmt.Errorf("comm: %s has no peer %q", t.name, peerName)
	}
	select {
	case p.out <- outMsg{id: id, m: m}:
		t.sent.Add(1)
		return nil
	case <-p.done:
		return errors.New("comm: peer connection closed")
	}
}

// Peers returns the connected peer names.
func (t *Transport) Peers() []string {
	peers := *t.peers.Load()
	out := make([]string, 0, len(peers))
	for n := range peers {
		out = append(out, n)
	}
	return out
}

// Counters returns messages sent and received.
func (t *Transport) Counters() (sent, received uint64) {
	return t.sent.Load(), t.received.Load()
}

// Close tears down every connection and stops the accept loop.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	peers := *t.peers.Load()
	empty := map[string]*peer{}
	t.peers.Store(&empty)
	t.mu.Unlock()
	t.ln.Close()
	for _, p := range peers {
		close(p.done)
		p.conn.Close()
	}
	t.wg.Wait()
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			br := bufio.NewReaderSize(conn, 1<<16)
			dec := gob.NewDecoder(br)
			var h hello
			if err := dec.Decode(&h); err != nil {
				conn.Close()
				return
			}
			bw := bufio.NewWriterSize(conn, 1<<16)
			enc := gob.NewEncoder(bw)
			if err := enc.Encode(hello{Name: t.name}); err != nil {
				conn.Close()
				return
			}
			if err := bw.Flush(); err != nil {
				conn.Close()
				return
			}
			p := t.addPeer(h.Name, conn, enc, bw)
			if p == nil {
				conn.Close()
				return
			}
			t.readLoop(p, br, dec)
		}()
	}
}

func (t *Transport) addPeer(name string, conn net.Conn, enc *gob.Encoder, bw *bufio.Writer) *peer {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	old := *t.peers.Load()
	if _, dup := old[name]; dup {
		return nil
	}
	p := &peer{
		name: name,
		conn: conn,
		enc:  enc,
		bw:   bw,
		out:  make(chan outMsg, 1024),
		done: make(chan struct{}),
	}
	next := make(map[string]*peer, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = p
	t.peers.Store(&next)
	t.wg.Add(1)
	go t.writeLoop(p)
	return p
}

// scratchPool recycles the header buffers of binary frames.
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 128)
		return &b
	},
}

// rawEligible reports whether m can take the reflection-free binary path:
// watermarks always can, data messages when the payload is []byte.
func rawEligible(m message.Message) bool {
	if !m.IsData() {
		return true
	}
	_, ok := m.Payload.([]byte)
	return ok
}

// writeRawFrame emits a tagRaw frame: uvarint stream id, kind byte, binary
// timestamp, and for data messages a uvarint length-prefixed payload written
// directly from the message (no intermediate copy).
func writeRawFrame(bw *bufio.Writer, id stream.ID, m message.Message) error {
	sp := scratchPool.Get().(*[]byte)
	buf := append((*sp)[:0], tagRaw)
	buf = binary.AppendUvarint(buf, uint64(id))
	buf = append(buf, byte(m.Kind))
	buf = m.Timestamp.AppendBinary(buf)
	var raw []byte
	if m.IsData() {
		raw, _ = m.Payload.([]byte)
		buf = binary.AppendUvarint(buf, uint64(len(raw)))
	}
	_, err := bw.Write(buf)
	*sp = buf
	scratchPool.Put(sp)
	if err == nil && len(raw) > 0 {
		_, err = bw.Write(raw)
	}
	return err
}

// readRawFrame decodes the body of a tagRaw frame (the tag byte has been
// consumed). The payload allocation is the only one on this path.
func readRawFrame(br *bufio.Reader) (stream.ID, message.Message, error) {
	sid, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, message.Message{}, err
	}
	kind, err := br.ReadByte()
	if err != nil {
		return 0, message.Message{}, err
	}
	ts, err := timestamp.ReadBinary(br)
	if err != nil {
		return 0, message.Message{}, err
	}
	m := message.Message{Kind: message.Kind(kind), Timestamp: ts}
	if m.IsData() {
		plen, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, message.Message{}, err
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return 0, message.Message{}, err
		}
		m.Payload = payload
	}
	return stream.ID(sid), m, nil
}

// writeMsg frames one message: binary fast path when eligible, gob Envelope
// otherwise.
func (p *peer) writeMsg(o outMsg) error {
	if rawEligible(o.m) {
		return writeRawFrame(p.bw, o.id, o.m)
	}
	if err := p.bw.WriteByte(tagGob); err != nil {
		return err
	}
	env := ToEnvelope(o.id, o.m)
	return p.enc.Encode(&env)
}

// writeLoop serializes frame encoding per connection and batches flushes:
// it drains whatever is queued, encoding each message, and flushes once the
// queue momentarily empties.
func (t *Transport) writeLoop(p *peer) {
	defer t.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case o := <-p.out:
			if err := p.writeMsg(o); err != nil {
				return
			}
		drain:
			for {
				select {
				case o = <-p.out:
					if err := p.writeMsg(o); err != nil {
						return
					}
				default:
					break drain
				}
			}
			if err := p.bw.Flush(); err != nil {
				return
			}
		}
	}
}

// readLoop decodes frames until the connection fails; callers own the
// goroutine accounting.
func (t *Transport) readLoop(p *peer, br *bufio.Reader, dec *gob.Decoder) {
	for {
		tag, err := br.ReadByte()
		if err != nil {
			return
		}
		var id stream.ID
		var m message.Message
		switch tag {
		case tagRaw:
			if id, m, err = readRawFrame(br); err != nil {
				return
			}
		case tagGob:
			var env Envelope
			if err := dec.Decode(&env); err != nil {
				return
			}
			id, m = FromEnvelope(env)
		default:
			return // protocol corruption; drop the connection
		}
		t.received.Add(1)
		if t.handler != nil {
			t.handler(p.name, id, m)
		}
	}
}
