// Package comm implements ERDOS' data plane (§6.1 of the paper): workers
// exchange stream messages over TCP sessions established amongst themselves,
// while operators colocated on a worker communicate references through the
// in-process broadcaster (zero copy).
//
// Wire format: after a gob handshake, each connection carries a sequence of
// tagged frames. Watermarks and []byte data payloads — the sensor-frame hot
// path — travel as length-prefixed binary frames with no reflection at all;
// payload types implementing FramePayload (with a codec registered via
// RegisterCodec) travel as versioned typed frames, also reflection-free; any
// other payload type falls back to a gob-encoded Envelope frame and must be
// registered with RegisterPayload. Header encoding uses pooled scratch
// buffers and payload bytes are written straight from the message, so the
// fast path costs one allocation on the receive side (the payload) and none
// on the send side.
//
// The write loop coalesces small frames per peer into one flush, bounded by
// a byte budget and — for frames carrying a FlushHint — the minimum deadline
// slack of the queued streams; frames without a hint flush as soon as the
// queue drains, exactly like the pre-coalescing behavior.
//
// The handshake carries codec negotiation: each side advertises its
// registered typed-frame codec IDs and versions, and the sender downgrades a
// payload to the gob Envelope path per peer when the receiver cannot decode
// the local typed encoding (unknown codec or older version) — version-skewed
// builds interoperate instead of dropping the connection. Connections are
// removed from the peer table when they die, so a later Dial (reconnect with
// backoff after a failure) can re-establish the pair.
package comm

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// RegisterPayload registers a payload type for transmission between
// workers. []byte and time.Duration are pre-registered.
func RegisterPayload(v any) { gob.Register(v) }

func init() {
	gob.Register(time.Duration(0))
}

// Frame tags. tagRaw frames carry watermarks and []byte data payloads in
// plain binary; tagGob frames carry an Envelope through gob's type registry;
// tagTyped frames carry a FramePayload body encoded by a registered Codec;
// tagRelay frames wrap a complete tagRaw/tagTyped frame together with its
// remaining deadline slack, addressed to a relay worker that republishes
// the inner frame to its co-host consumers (one wire copy per remote host
// instead of one per consumer).
const (
	tagRaw   byte = 0x01
	tagGob   byte = 0x02
	tagTyped byte = 0x03
	tagRelay byte = 0x04
)

// maxFramePayload bounds the declared body length of raw and typed frames
// so a corrupt length prefix cannot drive an arbitrarily large allocation.
const maxFramePayload = 64 << 20

// Envelope is the gob wire representation of one stream message; only
// messages that cannot take the binary fast path travel as Envelopes.
type Envelope struct {
	Stream uint64
	Kind   uint8
	L      uint64
	C      []uint64
	Top    bool
	// Raw carries []byte payloads directly.
	Raw    []byte
	HasRaw bool
	// Obj carries any other payload via gob's type registry.
	Obj    any
	HasObj bool
}

// ToEnvelope converts a stream message for the wire.
func ToEnvelope(id stream.ID, m message.Message) Envelope {
	env := Envelope{
		Stream: uint64(id),
		Kind:   uint8(m.Kind),
		L:      m.Timestamp.L,
		C:      m.Timestamp.C,
		Top:    m.Timestamp.IsTop(),
	}
	if m.IsData() {
		if b, ok := m.Payload.([]byte); ok {
			env.Raw, env.HasRaw = b, true
		} else {
			env.Obj, env.HasObj = m.Payload, true
		}
	}
	return env
}

// FromEnvelope reconstructs the stream ID and message.
func FromEnvelope(env Envelope) (stream.ID, message.Message) {
	var ts timestamp.Timestamp
	if env.Top {
		ts = timestamp.Top()
	} else {
		ts = timestamp.New(env.L, env.C...)
	}
	m := message.Message{Kind: message.Kind(env.Kind), Timestamp: ts}
	switch {
	case env.HasRaw:
		m.Payload = env.Raw
	case env.HasObj:
		m.Payload = env.Obj
	}
	return stream.ID(env.Stream), m
}

// Handler consumes messages received from remote workers.
type Handler func(from string, id stream.ID, m message.Message)

// Transport is one worker's endpoint in the data plane mesh.
type Transport struct {
	name    string
	handler Handler // immutable after Listen

	// listeners holds one bound listener per backend; addrs maps each
	// backend scheme to its dialable address and backends to its Backend.
	// All three are immutable after Listen.
	listeners []Listener
	addrs     map[string]string
	backends  map[string]Backend

	// peers is a copy-on-write snapshot: Send looks a peer up without any
	// lock; mu serializes snapshot replacement (connect/close only).
	peers  atomic.Pointer[map[string]*peer]
	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
	opts   options

	// graveyard holds dead queued peers whose out channel may still
	// receive a racing enqueue after the write-loop drain (the sender's
	// select can commit against a closed done). Close sweeps it so
	// broadcast-frame and pool accounting balances once senders are
	// quiescent.
	graveyard []*peer

	sent, received atomic.Uint64

	// Per-frame-kind counters: the data plane is gob-free exactly when
	// gobSent/gobRecv stay at zero after the handshake.
	rawSent, typedSent, gobSent atomic.Uint64
	rawRecv, typedRecv, gobRecv atomic.Uint64

	// Relay telemetry: relaySent counts tagRelay envelopes shipped to relay
	// peers, relayRecv envelopes received, and republished counts the
	// destinations covered by Republish* calls on this transport (the relay
	// side's fanout contribution).
	relaySent, relayRecv, republished atomic.Uint64

	// Coalescing telemetry: flushes counts bw.Flush calls, coalesced
	// counts frames that shared a flush with an earlier frame, and
	// lateFlushes counts flushes that completed after the earliest
	// FlushBy of a held frame — i.e. deadline-slack violations caused by
	// holding, which the deadline-stress test asserts never happen.
	flushes, coalesced, lateFlushes atomic.Uint64
}

// FrameStats breaks the frame counters down by wire encoding.
type FrameStats struct {
	Raw   uint64
	Typed uint64
	Gob   uint64
}

// SentFrames returns how many frames of each encoding were written.
func (t *Transport) SentFrames() FrameStats {
	return FrameStats{Raw: t.rawSent.Load(), Typed: t.typedSent.Load(), Gob: t.gobSent.Load()}
}

// ReceivedFrames returns how many frames of each encoding were decoded.
func (t *Transport) ReceivedFrames() FrameStats {
	return FrameStats{Raw: t.rawRecv.Load(), Typed: t.typedRecv.Load(), Gob: t.gobRecv.Load()}
}

// CoalesceStats returns flush batching telemetry: total flushes, frames
// that rode along with an earlier frame in the same flush, and flushes
// that completed after a held frame's FlushBy.
func (t *Transport) CoalesceStats() (flushes, coalesced, lateFlushes uint64) {
	return t.flushes.Load(), t.coalesced.Load(), t.lateFlushes.Load()
}

// RelayStats returns relay-multicast telemetry: tagRelay envelopes sent to
// relay peers, envelopes received for republish, and the cumulative count
// of destinations this transport covered via Republish*.
func (t *Transport) RelayStats() (sent, received, republished uint64) {
	return t.relaySent.Load(), t.relayRecv.Load(), t.republished.Load()
}

// PeerCoalesceStats is one peer link's coalescing telemetry: cumulative
// frame and flush counters plus the adaptive tuner's current operating
// point. Heartbeats ship these to the leader, which uses them as the
// data-plane congestion signal when placing operators.
type PeerCoalesceStats struct {
	Frames    uint64 // frames encoded onto this link
	Bytes     uint64 // encoded bytes
	Flushes   uint64 // bw.Flush calls
	Coalesced uint64 // frames that shared a flush with an earlier frame
	Budget    int64  // current adaptive flush budget, bytes
	HoldNs    int64  // current adaptive hold cap, nanoseconds
	SlackNs   int64  // EWMA of observed FlushHint slack, nanoseconds
	// ShmSpillCount counts ring records force-published mid-train on this
	// link — frame trains larger than the ring's chunk budget streaming
	// through in pieces. Zero on non-ring links.
	ShmSpillCount uint64
	// RelayFrames counts tagRelay envelopes shipped on this link: each one
	// is a whole remote host's fanout riding a single wire copy, so a hot
	// value here marks the link as a fanout trunk.
	RelayFrames uint64
}

// PeerCoalesceStats returns per-link coalescing telemetry keyed by peer
// name. The snapshot is lock-free and monotonic per counter, but not
// atomic across fields.
func (t *Transport) PeerCoalesceStats() map[string]PeerCoalesceStats {
	peers := *t.peers.Load()
	out := make(map[string]PeerCoalesceStats, len(peers))
	for name, p := range peers {
		st := PeerCoalesceStats{
			Frames:      p.statFrames.Load(),
			Bytes:       p.statBytes.Load(),
			Flushes:     p.statFlushes.Load(),
			Coalesced:   p.statCoalesced.Load(),
			Budget:      p.statBudget.Load(),
			HoldNs:      p.statHoldNs.Load(),
			SlackNs:     p.statSlackNs.Load(),
			RelayFrames: p.statRelay.Load(),
		}
		if sc, ok := p.fw.(SpillCounter); ok {
			st.ShmSpillCount = sc.Spills()
		}
		out[name] = st
	}
	return out
}

// FlushHint bounds how long the transport may hold a frame in the per-peer
// coalescing buffer. The zero hint means "no slack": the frame is flushed
// as soon as the write queue drains.
type FlushHint struct {
	// FlushBy is the absolute instant by which the frame must be on the
	// wire, typically the producing operator's timestamp deadline.
	FlushBy time.Time
}

type outMsg struct {
	id stream.ID
	m  message.Message
	// raw, when rawSet, is the data payload of a SendBytes message. It
	// travels in its own field instead of m.Payload so the hot burst path
	// never boxes the slice into an interface (one heap allocation per
	// frame otherwise).
	raw    []byte
	rawSet bool
	// flushBy is the frame's coalescing deadline; zero means flush on
	// queue drain.
	flushBy time.Time
	// release marks a SendRelease message: once the frame is on the wire
	// the []byte payload is recycled into the payload pool.
	release bool
	// bcast, when set, is a pre-encoded fanout frame shared with other
	// destinations: the write loop copies its bytes into the sink as a
	// borrowed segment and releases this destination's reference.
	bcast *broadcastFrame
	// relay marks a bcast frame addressed to a relay worker: the write
	// loop wraps the shared bytes in a tagRelay envelope carrying the
	// remaining deadline slack and the cover list — the consumers the
	// relay republishes to. Addressing explicitly (instead of letting the
	// relay consult its own schedule) keeps delivery exact across epoch
	// skew: a consumer parked behind a replay barrier is simply absent
	// from the cover until the producer includes it.
	relay bool
	cover []string
}

type peer struct {
	name string
	conn net.Conn
	enc  *gob.Encoder
	fw   FrameSink
	// scheme names the backend this link rides ("tcp", "shm"); immutable.
	scheme string
	// direct marks a link whose conn provides its own frame buffers (an
	// unwrapped ring conn): sends are framed synchronously in the caller
	// under wmu instead of hopping through out and the writeLoop.
	direct bool
	// vc, when non-nil, is the connection's same-process value capability:
	// sends hand message values through it with no serialization, and a
	// value loop (not the byte read loop) delivers inbound values.
	vc   ValueConn
	wmu  sync.Mutex
	out  chan outMsg
	done chan struct{}
	// codecs is the remote side's codec advertisement from the handshake
	// (id -> newest version it decodes); immutable after the handshake.
	// nil means the peer predates negotiation and is assumed to share our
	// registry (same-build cluster).
	codecs map[uint64]uint8
	// relay records the peer's hello.Relay advertisement: it registered a
	// relay handler, so tagRelay envelopes sent to it will be republished
	// rather than dropped. Immutable after the handshake.
	relay bool
	once  sync.Once

	// tuner adapts this link's flush budget and hold cap to its observed
	// traffic; it is owned by the writeLoop goroutine and unsynchronized.
	tuner coalesceTuner
	// Published telemetry for PeerCoalesceStats readers (heartbeats): the
	// writeLoop stores, anyone loads.
	statFrames, statBytes, statFlushes, statCoalesced atomic.Uint64
	statBudget, statHoldNs, statSlackNs               atomic.Int64
	// statRelay counts tagRelay envelopes written on this link.
	statRelay atomic.Uint64
}

// close is idempotent: the read loop, the write loop, Disconnect and Close
// can all race to tear a connection down.
func (p *peer) close() {
	p.once.Do(func() {
		close(p.done)
		p.conn.Close()
	})
}

// CodecAd advertises one registered codec in the hello handshake.
type CodecAd struct {
	ID  uint64
	Ver uint8
}

type hello struct {
	Name string
	// Codecs lists the typed-frame codecs this build decodes. A sender
	// consults the peer's advertisement before choosing the typed path and
	// downgrades to gob when the peer lacks the codec or runs an older
	// version — mixed builds interoperate instead of dropping frames.
	Codecs []CodecAd
	// Relay advertises that this transport registered a RelayHandler and
	// will republish tagRelay envelopes to its co-host consumers. Builds
	// that predate relay multicast decode hello through gob, which ignores
	// unknown fields, and simply never advertise — senders fold their
	// covered consumers back into pairwise links.
	Relay bool
}

// ConnHook observes and may wrap data-plane connections as they are
// established, before the handshake runs. Fault-injection harnesses use it
// to sever, delay or corrupt specific links; a hook that also implements
// PeerNamer learns which worker each connection belongs to.
type ConnHook interface {
	WrapConn(c net.Conn) net.Conn
}

// PeerNamer is an optional ConnHook extension: NamePeer is called after the
// handshake with the wrapped connection and the remote worker's name.
type PeerNamer interface {
	NamePeer(c net.Conn, peer string)
}

// extraBackend is one WithBackend registration: a backend plus the address
// its listener binds.
type extraBackend struct {
	b    Backend
	addr string
}

type options struct {
	hook ConnHook
	// codecOK filters which registered codecs are advertised; nil means
	// all of them. Tests use it to simulate a build missing a codec.
	codecOK func(id uint64) bool
	// backends are additional byte transports to listen on besides tcp.
	backends []extraBackend
	// relayHandler, when set, receives tagRelay envelopes and owns their
	// republish; its presence is what the hello advertises as Relay.
	relayHandler RelayHandler
}

// Option configures Listen.
type Option func(*options)

// WithConnHook installs a fault-injection hook on every connection the
// transport establishes or accepts.
func WithConnHook(h ConnHook) Option {
	return func(o *options) { o.hook = h }
}

// WithCodecFilter restricts which registered codecs the transport
// advertises in its handshake, simulating a build without them. Frames for
// filtered codecs still decode locally if received; the filter only shapes
// what remote senders are told.
func WithCodecFilter(ok func(id uint64) bool) Option {
	return func(o *options) { o.codecOK = ok }
}

// WithBackend adds a byte-transport backend besides the default TCP one:
// the transport listens on it at addr (backend-specific format; "" lets
// the backend pick) and Dial targets prefixed with its scheme ride it.
func WithBackend(b Backend, addr string) Option {
	return func(o *options) { o.backends = append(o.backends, extraBackend{b: b, addr: addr}) }
}

// RelayHandler consumes one relay envelope: the producer's cover list (the
// consumers — this worker possibly among them — the envelope must reach),
// a lazy decoder for the inner stream message, the complete inner wire
// frame (tagRaw or tagTyped, from the payload pool) for verbatim
// republish, whether it is typed, and the re-derived coalescing hint — the
// producer's remaining slack measured against this worker's clock at
// arrival, so time spent inside the relay automatically shrinks the
// downstream hint. The message is decoded on demand rather than eagerly: a
// relay that is not itself a consumer republishes the verbatim bytes
// without ever paying the payload copy, so decode is only called when the
// cover includes the relay. decode reads from frame, so it must be called
// before frame's ownership is transferred (Republish* may recycle it); the
// returned message is the caller's to release or deliver. The handler owns
// frame (recycle or hand it to Republish*); it runs on the connection's
// read goroutine, so a slow handler backpressures the producer link.
type RelayHandler func(from string, id stream.ID, cover []string, decode func() (message.Message, error), frame []byte, typed bool, hint FlushHint)

// WithRelayHandler registers the transport as a relay: its hello advertises
// the capability, and inbound tagRelay envelopes are handed to h instead of
// the ordinary message handler.
func WithRelayHandler(h RelayHandler) Option {
	return func(o *options) { o.relayHandler = h }
}

// Listen starts a transport for worker name on addr (use "127.0.0.1:0" to
// pick a free port). handler receives every inbound message.
func Listen(name, addr string, handler Handler, opts ...Option) (*Transport, error) {
	t := &Transport{name: name, handler: handler}
	for _, o := range opts {
		o(&t.opts)
	}
	t.addrs = make(map[string]string, 1+len(t.opts.backends))
	t.backends = make(map[string]Backend, 1+len(t.opts.backends))
	schemes := make([]string, 0, 1+len(t.opts.backends))
	bind := func(b Backend, addr string) error {
		ln, err := b.Listen(addr)
		if err != nil {
			return err
		}
		t.listeners = append(t.listeners, ln)
		t.addrs[b.Scheme()] = ln.Addr()
		t.backends[b.Scheme()] = b
		schemes = append(schemes, b.Scheme())
		return nil
	}
	if err := bind(tcpBackend{}, addr); err != nil {
		return nil, err
	}
	for _, eb := range t.opts.backends {
		if err := bind(eb.b, eb.addr); err != nil {
			for _, ln := range t.listeners {
				ln.Close()
			}
			return nil, err
		}
	}
	empty := map[string]*peer{}
	t.peers.Store(&empty)
	for i, ln := range t.listeners {
		t.wg.Add(1)
		go t.acceptLoop(ln, schemes[i])
	}
	return t, nil
}

// Name returns the worker name.
func (t *Transport) Name() string { return t.name }

// Addr returns the TCP listening address.
func (t *Transport) Addr() string { return t.addrs["tcp"] }

// AddrOf returns the listening address for the named backend scheme, or ""
// when the transport has no such backend.
func (t *Transport) AddrOf(scheme string) string { return t.addrs[scheme] }

// Dial connects to a peer transport. The target may carry a "scheme://"
// prefix selecting a non-TCP backend registered via WithBackend; a bare
// host:port dials TCP as before.
func (t *Transport) Dial(addr string) error {
	scheme, target := splitScheme(addr)
	b := t.backends[scheme]
	if b == nil {
		return fmt.Errorf("comm: %s has no %q backend", t.name, scheme)
	}
	conn, err := b.Dial(target)
	if err != nil {
		return err
	}
	if t.opts.hook != nil {
		conn = t.opts.hook.WrapConn(conn)
	}
	fw, fr, direct := frameBuffers(conn)
	enc := gob.NewEncoder(fw)
	if err := enc.Encode(t.hello()); err != nil {
		conn.Close()
		return err
	}
	if err := fw.Flush(); err != nil {
		conn.Close()
		return err
	}
	dec := gob.NewDecoder(fr)
	var h hello
	if err := dec.Decode(&h); err != nil {
		conn.Close()
		return fmt.Errorf("comm: handshake with %s: %w", addr, err)
	}
	if pn, ok := t.opts.hook.(PeerNamer); ok {
		pn.NamePeer(conn, h.Name)
	}
	p := t.addPeer(h.Name, conn, enc, fw, scheme, direct, h.Codecs, h.Relay)
	if p == nil {
		conn.Close()
		return fmt.Errorf("comm: duplicate peer %q", h.Name)
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.readLoop(p, fr, dec)
	}()
	return nil
}

// DialBackoff dials addr with exponential backoff (base, doubling, capped
// at 32x) until the connection is established, attempts are exhausted, or
// the transport closes. Peers that lost a connection to a failed or
// rescheduled worker use it to re-establish the link once the survivor is
// reachable again.
func (t *Transport) DialBackoff(addr string, attempts int, base time.Duration) error {
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	wait := base
	var err error
	for i := 0; i < attempts; i++ {
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return errors.New("comm: transport closed")
		}
		if err = t.Dial(addr); err == nil {
			return nil
		}
		time.Sleep(wait)
		if wait < 32*base {
			wait *= 2
		}
	}
	return fmt.Errorf("comm: dial %s: %w", addr, err)
}

// hello builds this transport's handshake message, advertising the codecs
// it can decode (optionally filtered to simulate a mixed-build cluster).
func (t *Transport) hello() hello {
	h := hello{Name: t.name, Relay: t.opts.relayHandler != nil}
	for id, c := range *codecs.Load() {
		if t.opts.codecOK != nil && !t.opts.codecOK(id) {
			continue
		}
		h.Codecs = append(h.Codecs, CodecAd{ID: id, Ver: c.Version})
	}
	return h
}

// Disconnect drops the connection to the named peer, if any. It is used
// when the leader reports a peer dead: pending writes are abandoned and a
// later Dial/DialBackoff may re-establish the pair.
func (t *Transport) Disconnect(name string) {
	if p := (*t.peers.Load())[name]; p != nil {
		t.dropPeer(p)
	}
}

// dropPeer removes p from the peer table (if it is still the registered
// connection for its name) and closes it. Safe to call from multiple
// goroutines; the read and write loops both call it on exit so a dead
// connection never lingers in the table blocking a reconnect.
func (t *Transport) dropPeer(p *peer) {
	t.mu.Lock()
	old := *t.peers.Load()
	if old[p.name] == p {
		next := make(map[string]*peer, len(old))
		for k, v := range old {
			if v != p {
				next[k] = v
			}
		}
		t.peers.Store(&next)
	}
	t.mu.Unlock()
	p.close()
}

// releaseOut returns the pooled resources an undelivered queued message
// holds: a shared fanout frame's reference, or a relinquished
// SendRelease payload.
func releaseOut(o outMsg) {
	if o.bcast != nil {
		o.bcast.release()
		return
	}
	if o.release {
		if o.rawSet {
			RecyclePayload(o.raw)
		} else {
			ReleaseMessage(o.m)
		}
	}
}

func drainQueue(out chan outMsg) {
	for {
		select {
		case o := <-out:
			releaseOut(o)
		default:
			return
		}
	}
}

// drainPeer releases the resources of messages stranded in a dead peer's
// out queue. A sender's select can still commit an enqueue after done
// closes (both cases ready, runtime picks either), so the peer is parked
// in the graveyard for a final sweep at Close — after which accounting is
// exact provided senders have quiesced.
func (t *Transport) drainPeer(p *peer) {
	drainQueue(p.out)
	t.mu.Lock()
	if !t.closed {
		t.graveyard = append(t.graveyard, p)
	}
	t.mu.Unlock()
}

// Send transmits m on stream id to the named peer. The lookup is lock-free
// and the sent counter is only incremented once the message is actually
// queued on a live connection.
func (t *Transport) Send(peerName string, id stream.ID, m message.Message) error {
	return t.SendWithHint(peerName, id, m, FlushHint{})
}

// SendWithHint is Send with a coalescing deadline: the transport may hold
// the frame in the peer's write buffer until hint.FlushBy (bounded by the
// byte budget and maximum hold time) to batch it with neighboring frames.
func (t *Transport) SendWithHint(peerName string, id stream.ID, m message.Message, hint FlushHint) error {
	return t.send(peerName, outMsg{id: id, m: m, flushBy: hint.FlushBy})
}

// SendRelease is SendWithHint for messages whose []byte payload came from
// AcquirePayload and is handed off with the call: once the frame is on the
// wire the payload is recycled into the pool. The caller must not touch
// m.Payload afterwards. Non-[]byte payloads are sent normally.
func (t *Transport) SendRelease(peerName string, id stream.ID, m message.Message, hint FlushHint) error {
	return t.send(peerName, outMsg{id: id, m: m, flushBy: hint.FlushBy, release: true})
}

// SendBytes transmits a data message whose payload is payload's raw bytes.
// Unlike Send/SendWithHint with a []byte payload, the slice never rides the
// message's any-typed field, so the hot burst path makes no per-frame boxing
// allocation. The caller must keep payload untouched until the frame is on
// the wire (release semantics as in Send); pass release=true for a slice
// from AcquirePayload that the transport should recycle once written.
func (t *Transport) SendBytes(peerName string, id stream.ID, ts timestamp.Timestamp, payload []byte, hint FlushHint, release bool) error {
	return t.send(peerName, outMsg{
		id:      id,
		m:       message.Message{Kind: message.KindData, Timestamp: ts},
		raw:     payload,
		rawSet:  true,
		flushBy: hint.FlushBy,
		release: release,
	})
}

func (t *Transport) send(peerName string, o outMsg) error {
	p := (*t.peers.Load())[peerName]
	if p == nil {
		return fmt.Errorf("comm: %s has no peer %q", t.name, peerName)
	}
	if p.vc != nil {
		return t.sendValue(p, o)
	}
	if p.direct {
		return t.sendDirect(p, o)
	}
	select {
	case p.out <- o:
		t.sent.Add(1)
		return nil
	case <-p.done:
		return errors.New("comm: peer connection closed")
	}
}

// sendValue hands the message value to a same-process peer through the
// connection's ValueConn capability: no framing, no codec, no copy.
// Ownership of the payload transfers to the receiver, which makes the
// release flag moot — the receiving handler recycles pooled payloads
// under the ordinary receive-path contract.
func (t *Transport) sendValue(p *peer, o outMsg) error {
	m := o.m
	if o.rawSet {
		m.Payload = o.raw
	}
	if err := p.vc.SendValue(o.id, m); err != nil {
		t.dropPeer(p)
		return err
	}
	t.sent.Add(1)
	p.statFrames.Add(1)
	return nil
}

// sendDirect frames and publishes o synchronously in the caller's
// goroutine. Ring-backed links take this path: the ring itself is the
// coalescing buffer and a publish is an atomic store plus a conditional
// wake, so the out-queue handoff and flush batching the writeLoop exists
// for would only add scheduler hops to a same-host send. Backpressure is
// the ring running full, which blocks the sender until the consumer
// drains — the same stall a full out queue imposes on queued links.
func (t *Transport) sendDirect(p *peer, o outMsg) error {
	p.wmu.Lock()
	select {
	case <-p.done:
		p.wmu.Unlock()
		return errors.New("comm: peer connection closed")
	default:
	}
	n, _, err := t.writeMsg(p, o)
	if err == nil {
		err = p.fw.Flush()
	}
	if err == nil && o.release {
		// The bytes are already staged in the ring, so the relinquished
		// payload recycles immediately.
		if o.rawSet {
			RecyclePayload(o.raw)
		} else {
			ReleaseMessage(o.m)
		}
	}
	if err == nil && o.bcast != nil {
		// This destination's bytes are staged; its reference to the
		// shared frame is consumed. (On error the caller still owns it.)
		o.bcast.release()
	}
	if err == nil {
		p.statFrames.Add(1)
		p.statBytes.Add(uint64(n))
		p.statFlushes.Add(1)
	}
	p.wmu.Unlock()
	if err != nil {
		t.dropPeer(p)
		return err
	}
	t.sent.Add(1)
	t.flushes.Add(1)
	return nil
}

// Peers returns the connected peer names.
func (t *Transport) Peers() []string {
	peers := *t.peers.Load()
	out := make([]string, 0, len(peers))
	for n := range peers {
		out = append(out, n)
	}
	return out
}

// RelayCapable reports whether the named peer advertised a relay handler
// in its handshake: tagRelay envelopes sent to it will be republished to
// its co-host consumers rather than dropped. False for unknown peers.
func (t *Transport) RelayCapable(name string) bool {
	p := (*t.peers.Load())[name]
	return p != nil && p.relay
}

// PeerSchemes reports which backend each connected peer link rides, keyed
// by peer name ("tcp", "shm"). Tests and placement telemetry use it to
// verify locality negotiation picked the intended backend.
func (t *Transport) PeerSchemes() map[string]string {
	peers := *t.peers.Load()
	out := make(map[string]string, len(peers))
	for n, p := range peers {
		out[n] = p.scheme
	}
	return out
}

// Counters returns messages sent and received.
func (t *Transport) Counters() (sent, received uint64) {
	return t.sent.Load(), t.received.Load()
}

// Close tears down every connection and stops the accept loop.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	peers := *t.peers.Load()
	empty := map[string]*peer{}
	t.peers.Store(&empty)
	t.mu.Unlock()
	for _, ln := range t.listeners {
		ln.Close()
	}
	for _, p := range peers {
		p.close()
	}
	t.wg.Wait()
	// Every write loop has exited; sweep the queues one last time so
	// enqueues that raced the per-loop drains release their frames too. A
	// sender's select can commit an enqueue after done closes (both cases
	// ready, runtime picks either) even though the per-loop drain already
	// ran, and that applies to live-at-Close peers just as much as to
	// graveyard ones — drainPeer skips the graveyard once t.closed is set,
	// so those peers are swept from the map snapshot instead. After this,
	// frame accounting is exact provided senders have quiesced.
	t.mu.Lock()
	gy := t.graveyard
	t.graveyard = nil
	t.mu.Unlock()
	for _, p := range gy {
		drainQueue(p.out)
	}
	for _, p := range peers {
		drainQueue(p.out)
	}
}

func (t *Transport) acceptLoop(ln Listener, scheme string) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if t.opts.hook != nil {
			conn = t.opts.hook.WrapConn(conn)
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			fw, fr, direct := frameBuffers(conn)
			dec := gob.NewDecoder(fr)
			var h hello
			if err := dec.Decode(&h); err != nil {
				conn.Close()
				return
			}
			enc := gob.NewEncoder(fw)
			if err := enc.Encode(t.hello()); err != nil {
				conn.Close()
				return
			}
			if err := fw.Flush(); err != nil {
				conn.Close()
				return
			}
			if pn, ok := t.opts.hook.(PeerNamer); ok {
				pn.NamePeer(conn, h.Name)
			}
			p := t.addPeer(h.Name, conn, enc, fw, scheme, direct, h.Codecs, h.Relay)
			if p == nil {
				conn.Close()
				return
			}
			t.readLoop(p, fr, dec)
		}()
	}
}

func (t *Transport) addPeer(name string, conn net.Conn, enc *gob.Encoder, fw FrameSink, scheme string, direct bool, ads []CodecAd, relay bool) *peer {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	old := *t.peers.Load()
	if _, dup := old[name]; dup {
		return nil
	}
	var remote map[uint64]uint8
	if len(ads) > 0 {
		remote = make(map[uint64]uint8, len(ads))
		for _, ad := range ads {
			remote[ad.ID] = ad.Ver
		}
	}
	vc, _ := conn.(ValueConn)
	p := &peer{
		name:   name,
		conn:   conn,
		enc:    enc,
		fw:     fw,
		scheme: scheme,
		direct: direct,
		vc:     vc,
		out:    make(chan outMsg, 1024),
		done:   make(chan struct{}),
		codecs: remote,
		relay:  relay,
	}
	next := make(map[string]*peer, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = p
	t.peers.Store(&next)
	if p.vc != nil {
		// Value links deliver through the value loop; the byte write
		// loop would only idle (the byte stream carries nothing after
		// the handshake, serving as the liveness signal).
		t.wg.Add(1)
		go t.valueLoop(p)
	} else if !p.direct {
		t.wg.Add(1)
		go t.writeLoop(p)
	}
	return p
}

// valueLoop delivers inbound message values from a same-process peer —
// the value-path analogue of readLoop, with no decoding at all.
func (t *Transport) valueLoop(p *peer) {
	defer t.wg.Done()
	defer t.dropPeer(p)
	for {
		id, m, err := p.vc.RecvValue()
		if err != nil {
			return
		}
		t.received.Add(1)
		if t.handler != nil {
			t.handler(p.name, id, m)
		}
	}
}

// scratchPool recycles the header buffers of binary frames.
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 128)
		return &b
	},
}

// rawEligible reports whether m can take the reflection-free binary path:
// watermarks always can, data messages when the payload is []byte.
func rawEligible(m message.Message) bool {
	if !m.IsData() {
		return true
	}
	_, ok := m.Payload.([]byte)
	return ok
}

// writeRawFrame emits a tagRaw frame: uvarint stream id, kind byte, binary
// timestamp, and for data messages a uvarint length-prefixed payload written
// directly from the message (no intermediate copy). Returns bytes written.
func writeRawFrame(fw FrameSink, id stream.ID, m message.Message) (int, error) {
	raw, _ := m.Payload.([]byte)
	return writeRawParts(fw, id, m.Kind, m.Timestamp, raw, m.IsData())
}

// writeRawParts is writeRawFrame with the payload already unboxed — the
// SendBytes path hands the slice directly so framing never touches an
// interface value.
func writeRawParts(fw FrameSink, id stream.ID, kind message.Kind, ts timestamp.Timestamp, raw []byte, data bool) (int, error) {
	sp := scratchPool.Get().(*[]byte)
	buf := append((*sp)[:0], tagRaw)
	buf = binary.AppendUvarint(buf, uint64(id))
	buf = append(buf, byte(kind))
	buf = ts.AppendBinary(buf)
	if !data {
		raw = nil
	} else {
		buf = binary.AppendUvarint(buf, uint64(len(raw)))
	}
	n := len(buf) + len(raw)
	_, err := fw.Write(buf)
	*sp = buf
	scratchPool.Put(sp)
	if err == nil && len(raw) > 0 {
		_, err = fw.Write(raw)
	}
	return n, err
}

// writeTypedFrame emits a tagTyped frame: uvarint stream id, binary
// timestamp, uvarint codec id, codec version byte, and a uvarint
// length-prefixed body appended by the payload's MarshalFrame. Typed
// frames always carry data messages, so no kind byte is needed. The body
// is marshaled into the pooled scratch after the header so its length
// prefix can be written without a second pass; nothing escapes, so the
// send side stays allocation-free in steady state.
func writeTypedFrame(fw FrameSink, id stream.ID, m message.Message, codecID uint64, version uint8, marshal func([]byte) []byte) (int, error) {
	sp := scratchPool.Get().(*[]byte)
	buf := append((*sp)[:0], tagTyped)
	buf = binary.AppendUvarint(buf, uint64(id))
	buf = m.Timestamp.AppendBinary(buf)
	buf = binary.AppendUvarint(buf, codecID)
	buf = append(buf, version)
	bodyAt := len(buf)
	buf = marshal(buf)
	body := buf[bodyAt:]
	// Length prefix goes between header and body: encode it into spare
	// capacity and shift the body up by its width.
	var lp [binary.MaxVarintLen64]byte
	w := binary.PutUvarint(lp[:], uint64(len(body)))
	buf = append(buf, lp[:w]...)
	copy(buf[bodyAt+w:], body)
	copy(buf[bodyAt:], lp[:w])
	_, err := fw.Write(buf)
	*sp = buf
	scratchPool.Put(sp)
	return len(buf), err
}

// readRawFrame decodes the body of a tagRaw frame (the tag byte has been
// consumed). The payload comes from the size-classed pool; handlers that
// fully consume it may RecyclePayload it, otherwise it is GC'd as before.
func readRawFrame(fr FrameSource) (stream.ID, message.Message, error) {
	sid, err := binary.ReadUvarint(fr)
	if err != nil {
		return 0, message.Message{}, err
	}
	kind, err := fr.ReadByte()
	if err != nil {
		return 0, message.Message{}, err
	}
	ts, err := timestamp.ReadBinary(fr)
	if err != nil {
		return 0, message.Message{}, err
	}
	m := message.Message{Kind: message.Kind(kind), Timestamp: ts}
	if m.IsData() {
		plen, err := binary.ReadUvarint(fr)
		if err != nil {
			return 0, message.Message{}, err
		}
		if plen > maxFramePayload {
			return 0, message.Message{}, fmt.Errorf("comm: raw frame of %d bytes exceeds limit", plen)
		}
		payload := AcquirePayload(int(plen))
		if _, err := io.ReadFull(fr, payload); err != nil {
			// A truncated frame kills the connection, but the pooled buffer
			// is still this function's to return.
			RecyclePayload(payload)
			return 0, message.Message{}, err
		}
		m.Payload = payload
	}
	return stream.ID(sid), m, nil
}

// readTypedFrame decodes the body of a tagTyped frame (the tag byte has
// been consumed). Unknown codec IDs and versions newer than the local
// codec are protocol errors: the caller drops the connection rather than
// silently losing data.
func readTypedFrame(fr FrameSource) (stream.ID, message.Message, error) {
	sid, err := binary.ReadUvarint(fr)
	if err != nil {
		return 0, message.Message{}, err
	}
	ts, err := timestamp.ReadBinary(fr)
	if err != nil {
		return 0, message.Message{}, err
	}
	codecID, err := binary.ReadUvarint(fr)
	if err != nil {
		return 0, message.Message{}, err
	}
	version, err := fr.ReadByte()
	if err != nil {
		return 0, message.Message{}, err
	}
	blen, err := binary.ReadUvarint(fr)
	if err != nil {
		return 0, message.Message{}, err
	}
	if blen > maxFramePayload {
		return 0, message.Message{}, fmt.Errorf("comm: typed frame of %d bytes exceeds limit", blen)
	}
	// Typed bodies are transient: Codec.Unmarshal must copy anything it
	// keeps, so the buffer goes straight back to the pool after decoding
	// and steady-state receive makes no per-frame body allocation.
	body := AcquirePayload(int(blen))
	if _, err := io.ReadFull(fr, body); err != nil {
		RecyclePayload(body)
		return 0, message.Message{}, err
	}
	payload, err := DecodeFrameBody(codecID, version, body)
	RecyclePayload(body)
	if err != nil {
		return 0, message.Message{}, err
	}
	return stream.ID(sid), message.Message{
		Kind:      message.KindData,
		Timestamp: ts,
		Payload:   payload,
	}, nil
}

// maxRelayCover bounds the declared cover-list size of a relay envelope so
// a corrupt count cannot drive an arbitrarily large allocation.
const maxRelayCover = 1 << 16

// coverCache interns a connection's cover lists: a producer ships the same
// cover on every envelope of a route until the schedule changes, so the
// read loop keeps the last decoded []string and reuses it when the raw
// bytes match — steady state, a relay link parses covers with zero
// allocations. The cached slice is shared with handlers that may still
// hold it (the cluster's relay queue), so it is never mutated in place: a
// mismatch builds a fresh slice and replaces the cache. Owned by a single
// read goroutine; no locking.
type coverCache struct {
	scratch []byte // concatenated name bytes of the current envelope
	ends    []int  // scratch end offset of each name
	cover   []string
}

// readRelayEnvelope decodes the body of a tagRelay frame (the tag byte has
// been consumed): a hint-presence byte, the producer's remaining slack as a
// signed varint of nanoseconds, the cover list (the consumer names this
// relay republishes to), and the uvarint length-prefixed inner wire frame,
// returned as a pooled buffer the caller owns. FlushBy is re-derived
// against the local clock at arrival, so relay-side queueing and handler
// time count against the producer's slack without any cross-host clock.
// cc, when non-nil, interns repeated cover lists across the connection.
func readRelayEnvelope(fr FrameSource, cc *coverCache) (cover []string, frame []byte, typed bool, hint FlushHint, err error) {
	hb, err := fr.ReadByte()
	if err != nil {
		return nil, nil, false, hint, err
	}
	if hb != 0 {
		slack, err := binary.ReadVarint(fr)
		if err != nil {
			return nil, nil, false, hint, err
		}
		hint.FlushBy = time.Now().Add(time.Duration(slack))
	}
	nc, err := binary.ReadUvarint(fr)
	if err != nil {
		return nil, nil, false, hint, err
	}
	if nc > maxRelayCover {
		return nil, nil, false, hint, fmt.Errorf("comm: relay cover of %d names exceeds limit", nc)
	}
	if nc > 0 {
		if cc == nil {
			cc = &coverCache{}
		}
		// Read every name into one reusable scratch buffer first, then
		// decide whether the cached slice already spells the same list.
		cc.scratch, cc.ends = cc.scratch[:0], cc.ends[:0]
		for i := 0; i < int(nc); i++ {
			nl, err := binary.ReadUvarint(fr)
			if err != nil {
				return nil, nil, false, hint, err
			}
			if nl > 4096 {
				return nil, nil, false, hint, fmt.Errorf("comm: relay cover name of %d bytes exceeds limit", nl)
			}
			at, need := len(cc.scratch), len(cc.scratch)+int(nl)
			if cap(cc.scratch) >= need {
				cc.scratch = cc.scratch[:need]
			} else {
				grown := make([]byte, need, 2*need)
				copy(grown, cc.scratch)
				cc.scratch = grown
			}
			if _, err := io.ReadFull(fr, cc.scratch[at:]); err != nil {
				return nil, nil, false, hint, err
			}
			cc.ends = append(cc.ends, len(cc.scratch))
		}
		match := len(cc.cover) == int(nc)
		for i, at := 0, 0; match && i < int(nc); i++ {
			if cc.cover[i] != string(cc.scratch[at:cc.ends[i]]) {
				match = false
			}
			at = cc.ends[i]
		}
		if !match {
			fresh := make([]string, nc)
			for i, at := 0, 0; i < int(nc); i++ {
				fresh[i] = string(cc.scratch[at:cc.ends[i]])
				at = cc.ends[i]
			}
			cc.cover = fresh
		}
		cover = cc.cover
	}
	blen, err := binary.ReadUvarint(fr)
	if err != nil {
		return nil, nil, false, hint, err
	}
	if blen > maxFramePayload {
		return nil, nil, false, hint, fmt.Errorf("comm: relay envelope of %d bytes exceeds limit", blen)
	}
	frame = AcquirePayload(int(blen))
	if _, err := io.ReadFull(fr, frame); err != nil {
		RecyclePayload(frame)
		return nil, nil, false, hint, err
	}
	typed = len(frame) > 0 && frame[0] == tagTyped
	return cover, frame, typed, hint, nil
}

// frameStreamID reads the stream id out of a complete tagRaw/tagTyped wire
// frame without decoding the message: both layouts put a uvarint stream id
// immediately after the tag byte. This is what lets the relay read path
// defer the payload copy to RelayHandler's lazy decoder.
func frameStreamID(frame []byte) (stream.ID, error) {
	if len(frame) < 2 {
		return 0, fmt.Errorf("comm: relay inner frame of %d bytes has no header", len(frame))
	}
	sid, n := binary.Uvarint(frame[1:])
	if n <= 0 {
		return 0, fmt.Errorf("comm: relay inner frame has a malformed stream id")
	}
	return stream.ID(sid), nil
}

// decodes reports whether the peer advertised it can decode frames of the
// given codec at the version the local build writes. A peer with no
// advertisement (pre-negotiation build) is assumed to share our registry.
func (p *peer) decodes(id uint64, version uint8) bool {
	if p.codecs == nil {
		return true
	}
	v, ok := p.codecs[id]
	return ok && v >= version
}

// writeMsg frames one message — raw binary, typed binary, or gob Envelope —
// and returns the encoded size plus whether the frame must be flushed on
// queue drain regardless of hints (gob frames report a nominal size since
// the encoder writes through the frame writer directly; they are rare by construction).
// The typed path is taken only when the handshake advertisement says the
// peer decodes this codec at our version; otherwise the payload downgrades
// to the gob Envelope for this peer while same-build peers stay typed.
func (t *Transport) writeMsg(p *peer, o outMsg) (n int, mustFlush bool, err error) {
	if o.bcast != nil {
		n = len(o.bcast.buf)
		if o.relay {
			// Relay envelope: remaining slack (measured now, so queueing on
			// this link has already been charged against it), the cover
			// list, and the inner frame's length, then the shared bytes
			// verbatim. The receiver re-derives FlushBy as its own arrival
			// time plus this slack.
			sp := scratchPool.Get().(*[]byte)
			hdr := append((*sp)[:0], tagRelay)
			if o.flushBy.IsZero() {
				hdr = append(hdr, 0)
			} else {
				hdr = append(hdr, 1)
				hdr = binary.AppendVarint(hdr, int64(time.Until(o.flushBy)))
			}
			hdr = binary.AppendUvarint(hdr, uint64(len(o.cover)))
			for _, name := range o.cover {
				hdr = binary.AppendUvarint(hdr, uint64(len(name)))
				hdr = append(hdr, name...)
			}
			hdr = binary.AppendUvarint(hdr, uint64(len(o.bcast.buf)))
			_, err = p.fw.Write(hdr)
			n += len(hdr)
			*sp = hdr
			scratchPool.Put(sp)
			if err == nil {
				_, err = p.fw.Write(o.bcast.buf)
			}
			if err == nil {
				t.relaySent.Add(1)
				p.statRelay.Add(1)
			}
		} else {
			// Pre-encoded fanout frame: the bytes were laid out once by
			// multicast; this link only pays the sink copy.
			_, err = p.fw.Write(o.bcast.buf)
		}
		if err == nil {
			if o.bcast.typed {
				t.typedSent.Add(1)
			} else {
				t.rawSent.Add(1)
			}
		}
		return n, o.flushBy.IsZero(), err
	}
	if o.rawSet {
		n, err = writeRawParts(p.fw, o.id, message.KindData, o.m.Timestamp, o.raw, true)
		if err == nil {
			t.rawSent.Add(1)
		}
		return n, o.flushBy.IsZero(), err
	}
	if rawEligible(o.m) {
		n, err = writeRawFrame(p.fw, o.id, o.m)
		if err == nil {
			t.rawSent.Add(1)
		}
		return n, o.flushBy.IsZero(), err
	}
	if fp, ok := o.m.Payload.(FramePayload); ok {
		if c := lookupCodec(fp.FrameCodec()); c != nil && p.decodes(c.ID, c.Version) {
			n, err = writeTypedFrame(p.fw, o.id, o.m, c.ID, c.Version, fp.MarshalFrame)
			if err == nil {
				t.typedSent.Add(1)
			}
			return n, o.flushBy.IsZero(), err
		}
	} else if d, ok := o.m.Payload.(time.Duration); ok && p.decodes(DurationCodecID, 1) {
		n, err = writeTypedFrame(p.fw, o.id, o.m, DurationCodecID, 1, func(dst []byte) []byte {
			return binary.AppendVarint(dst, int64(d))
		})
		if err == nil {
			t.typedSent.Add(1)
		}
		return n, o.flushBy.IsZero(), err
	}
	if err := p.fw.WriteByte(tagGob); err != nil {
		return 1, true, err
	}
	env := ToEnvelope(o.id, o.m)
	if err := p.enc.Encode(&env); err != nil {
		return 1, true, err
	}
	t.gobSent.Add(1)
	return 256, true, nil
}

// Coalescing knobs. flushBudget and maxCoalesceHold are the *floors* the
// per-peer tuner starts from (and the fixed values unhinted traffic keeps):
// a flush is forced once the adaptive budget is buffered, hinted frames may
// be held up to the adaptive hold cap past their arrival waiting for
// companions, but never later than flushGuard before the earliest FlushBy
// among held frames. maxFlushBudget and maxAdaptiveHold bound how far the
// tuner may grow either knob on a slack-rich link.
//
// Slack bounds how long a held frame MAY wait; the gap EWMA bounds how long
// waiting is WORTH it. Once the producer has been idle for companyGaps
// expected inter-arrival gaps the burst is over and the buffer flushes
// rather than spending the slack the hint promised to protect. When that
// patience window is shorter than spinPatience the producer is burst-rate
// and a timer is too blunt: the loop yields the processor up to
// companySpins times (letting a descheduled sender finish enqueueing) and
// flushes the whole burst as one frame train.
const (
	flushBudget     = 32 << 10
	maxFlushBudget  = 256 << 10
	maxCoalesceHold = time.Millisecond
	maxAdaptiveHold = 4 * time.Millisecond
	flushGuard      = 500 * time.Microsecond
	ewmaAlpha       = 0.125
	companyGaps     = 8
	spinPatience    = 50 * time.Microsecond
	companySpins    = 4
)

// coalesceTuner sizes one peer link's coalescing knobs from the traffic it
// actually carries: EWMAs of frame size, inter-arrival gap, and FlushHint
// slack. Unhinted links decay the slack estimate back to zero and keep the
// fixed defaults, so latency-sensitive traffic never pays for adaptation;
// hinted links grow the budget toward the bytes expected to arrive within
// the observed slack window, so a hinted burst rides the wire in one flush
// instead of fragmenting at the fixed 32 KB boundary.
type coalesceTuner struct {
	frameBytes float64 // EWMA of encoded frame sizes (bytes)
	gapNs      float64 // EWMA of frame inter-arrival gaps (ns)
	slackNs    float64 // EWMA of FlushHint slack (ns); 0 while unhinted
	last       time.Time
}

func ewma(prev, sample float64) float64 {
	if prev == 0 {
		return sample
	}
	return prev + ewmaAlpha*(sample-prev)
}

// observe folds one encoded frame into the estimates. Frames without a hint
// contribute zero slack, decaying slackNs so a link that stops hinting
// reverts to the fixed knobs.
func (c *coalesceTuner) observe(now time.Time, n int, flushBy time.Time) {
	if !c.last.IsZero() {
		if gap := float64(now.Sub(c.last)); gap > 0 {
			c.gapNs = ewma(c.gapNs, gap)
		}
	}
	c.last = now
	c.frameBytes = ewma(c.frameBytes, float64(n))
	var slack float64
	if !flushBy.IsZero() {
		if s := flushBy.Sub(now); s > 0 {
			slack = float64(s)
		}
	}
	c.slackNs = ewma(c.slackNs, slack)
}

// budget returns the byte threshold that forces a flush: the fixed default
// while the link shows no usable slack, otherwise the bytes expected to
// arrive within the slack window (slack/gap frames of the running mean
// size), floored at the default and capped at maxFlushBudget.
func (c *coalesceTuner) budget() int {
	if c.slackNs <= float64(flushGuard) {
		return flushBudget
	}
	gap := c.gapNs
	if gap < 1 {
		gap = 1
	}
	b := int(c.slackNs / gap * c.frameBytes)
	if b < flushBudget {
		b = flushBudget
	}
	if b > maxFlushBudget {
		b = maxFlushBudget
	}
	return b
}

// hold returns how long the oldest held frame may wait for companions:
// the fixed cap while unhinted, otherwise the observed slack minus the
// scheduling guard, clamped to [maxCoalesceHold, maxAdaptiveHold].
func (c *coalesceTuner) hold() time.Duration {
	if c.slackNs == 0 {
		return maxCoalesceHold
	}
	h := time.Duration(c.slackNs) - flushGuard
	if h < maxCoalesceHold {
		h = maxCoalesceHold
	}
	if h > maxAdaptiveHold {
		h = maxAdaptiveHold
	}
	return h
}

// writeLoop serializes frame encoding per connection and batches flushes.
// It drains whatever is queued, encoding each message; if every buffered
// frame carries deadline slack (a FlushHint) it holds the buffer — bounded
// by the peer's adaptive budget and hold cap, the minimum FlushBy minus
// flushGuard, and the producer going idle for companyGaps expected
// inter-arrival gaps — waiting for more frames to share the flush. Any
// unhinted frame forces the pre-coalescing behavior: flush as soon as the
// queue drains.
func (t *Transport) writeLoop(p *peer) {
	defer t.wg.Done()
	// Exit order (LIFO): dropPeer first — closing done so senders start
	// failing — then drainPeer releasing whatever was already queued.
	defer t.drainPeer(p)
	defer t.dropPeer(p)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	var (
		buffered  int       // bytes encoded since the last flush
		held      int       // frames encoded since the last flush
		holdBy    time.Time // earliest FlushBy among held hinted frames
		holdSince time.Time // when the oldest held frame was encoded
		mustFlush bool      // a held frame has no slack
	)
	flush := func() bool {
		err := p.fw.Flush()
		t.flushes.Add(1)
		p.statFlushes.Add(1)
		if held > 1 {
			t.coalesced.Add(uint64(held - 1))
			p.statCoalesced.Add(uint64(held - 1))
		}
		if !holdBy.IsZero() && time.Now().After(holdBy) {
			t.lateFlushes.Add(1)
		}
		// Publish the tuner's operating point once per flush — cheap enough
		// to keep off the per-frame path, fresh enough for heartbeats.
		p.statBudget.Store(int64(p.tuner.budget()))
		p.statHoldNs.Store(int64(p.tuner.hold()))
		p.statSlackNs.Store(int64(p.tuner.slackNs))
		buffered, held, mustFlush = 0, 0, false
		holdBy, holdSince = time.Time{}, time.Time{}
		return err == nil
	}
	write := func(o outMsg) bool {
		now := time.Now()
		n, force, err := t.writeMsg(p, o)
		if o.bcast != nil {
			// Whether the bytes landed or the link just died, this
			// destination is done with the shared frame.
			o.bcast.release()
		}
		if err != nil {
			return false
		}
		if o.release {
			// The frame is in the write buffer (bufio copied the bytes),
			// so the caller-relinquished payload can be recycled now.
			if o.rawSet {
				RecyclePayload(o.raw)
			} else {
				ReleaseMessage(o.m)
			}
		}
		p.tuner.observe(now, n, o.flushBy)
		p.statFrames.Add(1)
		p.statBytes.Add(uint64(n))
		buffered += n
		held++
		if holdSince.IsZero() {
			holdSince = now
		}
		if force {
			mustFlush = true
		} else if holdBy.IsZero() || o.flushBy.Before(holdBy) {
			holdBy = o.flushBy
		}
		return true
	}
	for {
		select {
		case <-p.done:
			return
		case o := <-p.out:
			if !write(o) {
				return
			}
			for held > 0 {
				budget := p.tuner.budget()
			drain:
				for buffered < budget {
					select {
					case o = <-p.out:
						if !write(o) {
							return
						}
					default:
						break drain
					}
				}
				if mustFlush || buffered >= budget {
					if !flush() {
						return
					}
					continue
				}
				// Every held frame has slack: wait for company until the
				// earliest deadline (minus a scheduling guard), capped by
				// the adaptive maximum hold — and by the producer going
				// idle: after companyGaps expected inter-arrival gaps with
				// nothing new, more company is not coming and holding
				// further only taxes the deadline the hint protects.
				patience := time.Duration(companyGaps * p.tuner.gapNs)
				if patience > 0 && patience < spinPatience {
					// Burst-rate producer: a timer is too coarse for a
					// sub-50µs window. Yield the processor a few times so
					// a descheduled sender can finish enqueueing, then
					// flush the burst as one frame train.
					more := false
					for i := 0; i < companySpins && !more; i++ {
						runtime.Gosched()
						select {
						case o = <-p.out:
							if !write(o) {
								return
							}
							more = true
						default:
						}
					}
					if more {
						continue
					}
					if !flush() {
						return
					}
					continue
				}
				until := holdBy.Add(-flushGuard)
				if holdCap := holdSince.Add(p.tuner.hold()); holdCap.Before(until) {
					until = holdCap
				}
				if patience > 0 {
					if idleBy := p.tuner.last.Add(patience); idleBy.Before(until) {
						until = idleBy
					}
				}
				wait := time.Until(until)
				if wait <= 0 {
					if !flush() {
						return
					}
					continue
				}
				timer.Reset(wait)
				select {
				case <-p.done:
					timer.Stop()
					return
				case o = <-p.out:
					if !timer.Stop() {
						<-timer.C
					}
					if !write(o) {
						return
					}
				case <-timer.C:
					if !flush() {
						return
					}
				}
			}
		}
	}
}

// readLoop decodes frames until the connection fails; callers own the
// goroutine accounting. On exit the peer is dropped from the table so a
// reconnect can register a fresh connection under the same name.
func (t *Transport) readLoop(p *peer, fr FrameSource, dec *gob.Decoder) {
	defer t.dropPeer(p)
	var covers coverCache
	for {
		tag, err := fr.ReadByte()
		if err != nil {
			return
		}
		var id stream.ID
		var m message.Message
		switch tag {
		case tagRaw:
			if id, m, err = readRawFrame(fr); err != nil {
				return
			}
			t.rawRecv.Add(1)
		case tagTyped:
			if id, m, err = readTypedFrame(fr); err != nil {
				return
			}
			t.typedRecv.Add(1)
		case tagGob:
			var env Envelope
			if err := dec.Decode(&env); err != nil {
				return
			}
			id, m = FromEnvelope(env)
			t.gobRecv.Add(1)
		case tagRelay:
			cover, frame, typed, hint, rerr := readRelayEnvelope(fr, &covers)
			if rerr != nil {
				return
			}
			if typed {
				t.typedRecv.Add(1)
			} else {
				t.rawRecv.Add(1)
			}
			t.relayRecv.Add(1)
			t.received.Add(1)
			if rh := t.opts.relayHandler; rh != nil {
				// Only the stream id is parsed eagerly (it sits in the
				// inner frame header); the message decodes lazily so a
				// relay that just republishes the verbatim bytes never
				// pays the payload copy.
				rid, iderr := frameStreamID(frame)
				if iderr != nil {
					RecyclePayload(frame)
					err = iderr
					return
				}
				decode := func() (message.Message, error) {
					_, dm, derr := ReadFrame(bytes.NewReader(frame))
					return dm, derr
				}
				rh(p.name, rid, cover, decode, frame, typed, hint)
			} else {
				// No relay handler (capability was never advertised, but a
				// misdirected envelope is still a valid frame): deliver
				// locally and drop the republish.
				if id, m, err = ReadFrame(bytes.NewReader(frame)); err != nil {
					RecyclePayload(frame)
					return
				}
				RecyclePayload(frame)
				if t.handler != nil {
					t.handler(p.name, id, m)
				}
			}
			continue
		default:
			return // protocol corruption; drop the connection
		}
		t.received.Add(1)
		if t.handler != nil {
			t.handler(p.name, id, m)
		}
	}
}
