// Package comm implements ERDOS' data plane (§6.1 of the paper): workers
// exchange stream messages over TCP sessions established amongst themselves,
// while operators colocated on a worker communicate references through the
// in-process broadcaster (zero copy).
//
// Wire format: each connection carries a gob stream of Envelope values. A
// fast path ships []byte payloads without per-message reflection; other
// payload types must be registered with RegisterPayload (gob registration).
package comm

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/erdos-go/erdos/internal/core/message"
	"github.com/erdos-go/erdos/internal/core/stream"
	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// RegisterPayload registers a payload type for transmission between
// workers. []byte and time.Duration are pre-registered.
func RegisterPayload(v any) { gob.Register(v) }

func init() {
	gob.Register(time.Duration(0))
}

// Envelope is the wire representation of one stream message.
type Envelope struct {
	Stream uint64
	Kind   uint8
	L      uint64
	C      []uint64
	Top    bool
	// Raw carries []byte payloads directly.
	Raw    []byte
	HasRaw bool
	// Obj carries any other payload via gob's type registry.
	Obj    any
	HasObj bool
}

// ToEnvelope converts a stream message for the wire.
func ToEnvelope(id stream.ID, m message.Message) Envelope {
	env := Envelope{
		Stream: uint64(id),
		Kind:   uint8(m.Kind),
		L:      m.Timestamp.L,
		C:      m.Timestamp.C,
		Top:    m.Timestamp.IsTop(),
	}
	if m.IsData() {
		if b, ok := m.Payload.([]byte); ok {
			env.Raw, env.HasRaw = b, true
		} else {
			env.Obj, env.HasObj = m.Payload, true
		}
	}
	return env
}

// FromEnvelope reconstructs the stream ID and message.
func FromEnvelope(env Envelope) (stream.ID, message.Message) {
	var ts timestamp.Timestamp
	if env.Top {
		ts = timestamp.Top()
	} else {
		ts = timestamp.New(env.L, env.C...)
	}
	m := message.Message{Kind: message.Kind(env.Kind), Timestamp: ts}
	switch {
	case env.HasRaw:
		m.Payload = env.Raw
	case env.HasObj:
		m.Payload = env.Obj
	}
	return stream.ID(env.Stream), m
}

// Handler consumes messages received from remote workers.
type Handler func(from string, id stream.ID, m message.Message)

// Transport is one worker's endpoint in the data plane mesh.
type Transport struct {
	name    string
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	peers  map[string]*peer
	closed bool
	wg     sync.WaitGroup

	sent, received uint64
}

type peer struct {
	name string
	conn net.Conn
	enc  *gob.Encoder
	bw   *bufio.Writer
	out  chan Envelope
	done chan struct{}
}

type hello struct{ Name string }

// Listen starts a transport for worker name on addr (use "127.0.0.1:0" to
// pick a free port). handler receives every inbound message.
func Listen(name, addr string, handler Handler) (*Transport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &Transport{name: name, ln: ln, handler: handler, peers: make(map[string]*peer)}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Name returns the worker name.
func (t *Transport) Name() string { return t.name }

// Addr returns the listening address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// Dial connects to a peer transport.
func (t *Transport) Dial(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	bw := bufio.NewWriterSize(conn, 1<<16)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(hello{Name: t.name}); err != nil {
		conn.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return err
	}
	dec := gob.NewDecoder(bufio.NewReaderSize(conn, 1<<16))
	var h hello
	if err := dec.Decode(&h); err != nil {
		conn.Close()
		return fmt.Errorf("comm: handshake with %s: %w", addr, err)
	}
	p := t.addPeer(h.Name, conn, enc, bw)
	if p == nil {
		conn.Close()
		return fmt.Errorf("comm: duplicate peer %q", h.Name)
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.readLoop(p, dec)
	}()
	return nil
}

// Send transmits m on stream id to the named peer.
func (t *Transport) Send(peerName string, id stream.ID, m message.Message) error {
	t.mu.Lock()
	p, ok := t.peers[peerName]
	if !ok || t.closed {
		t.mu.Unlock()
		return fmt.Errorf("comm: %s has no peer %q", t.name, peerName)
	}
	t.sent++
	t.mu.Unlock()
	env := ToEnvelope(id, m)
	select {
	case p.out <- env:
		return nil
	case <-p.done:
		return errors.New("comm: peer connection closed")
	}
}

// Peers returns the connected peer names.
func (t *Transport) Peers() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.peers))
	for n := range t.peers {
		out = append(out, n)
	}
	return out
}

// Counters returns messages sent and received.
func (t *Transport) Counters() (sent, received uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sent, t.received
}

// Close tears down every connection and stops the accept loop.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	peers := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	t.ln.Close()
	for _, p := range peers {
		close(p.done)
		p.conn.Close()
	}
	t.wg.Wait()
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			dec := gob.NewDecoder(bufio.NewReaderSize(conn, 1<<16))
			var h hello
			if err := dec.Decode(&h); err != nil {
				conn.Close()
				return
			}
			bw := bufio.NewWriterSize(conn, 1<<16)
			enc := gob.NewEncoder(bw)
			if err := enc.Encode(hello{Name: t.name}); err != nil {
				conn.Close()
				return
			}
			if err := bw.Flush(); err != nil {
				conn.Close()
				return
			}
			p := t.addPeer(h.Name, conn, enc, bw)
			if p == nil {
				conn.Close()
				return
			}
			t.readLoop(p, dec)
		}()
	}
}

func (t *Transport) addPeer(name string, conn net.Conn, enc *gob.Encoder, bw *bufio.Writer) *peer {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if _, dup := t.peers[name]; dup {
		return nil
	}
	p := &peer{
		name: name,
		conn: conn,
		enc:  enc,
		bw:   bw,
		out:  make(chan Envelope, 1024),
		done: make(chan struct{}),
	}
	t.peers[name] = p
	t.wg.Add(1)
	go t.writeLoop(p)
	return p
}

// writeLoop serializes envelope encoding per connection and batches flushes:
// it drains whatever is queued, encoding each envelope, and flushes once the
// queue momentarily empties.
func (t *Transport) writeLoop(p *peer) {
	defer t.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case env := <-p.out:
			if err := p.enc.Encode(&env); err != nil {
				return
			}
		drain:
			for {
				select {
				case env = <-p.out:
					if err := p.enc.Encode(&env); err != nil {
						return
					}
				default:
					break drain
				}
			}
			if err := p.bw.Flush(); err != nil {
				return
			}
		}
	}
}

// readLoop decodes envelopes until the connection fails; callers own the
// goroutine accounting.
func (t *Transport) readLoop(p *peer, dec *gob.Decoder) {
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		t.mu.Lock()
		t.received++
		handler := t.handler
		t.mu.Unlock()
		if handler != nil {
			id, m := FromEnvelope(env)
			handler(p.name, id, m)
		}
	}
}
