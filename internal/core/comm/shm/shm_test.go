package shm

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

func testRing(t *testing.T, capacity uint64) *ring {
	t.Helper()
	mem := make([]byte, ringDataOff+capacity)
	r, err := initRing(mem, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRingRoundtripWraparound streams far more data than the ring holds
// through a writer/reader pair on two goroutines, with record sizes chosen
// to land on every wraparound seam, and verifies the byte stream survives
// intact.
func TestRingRoundtripWraparound(t *testing.T) {
	r := testRing(t, minRingBytes)
	w := newRingWriter(r)
	rd := newRingReader(r)

	rng := rand.New(rand.NewSource(7))
	var sent []byte
	for len(sent) < 64<<10 {
		n := 1 + rng.Intn(3000)
		chunk := make([]byte, n)
		rng.Read(chunk)
		sent = append(sent, chunk...)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Vary write sizes so records split at odd offsets relative to
		// the capacity.
		rem := sent
		rng := rand.New(rand.NewSource(8))
		for len(rem) > 0 {
			n := 1 + rng.Intn(2500)
			if n > len(rem) {
				n = len(rem)
			}
			if _, err := w.Write(rem[:n]); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			if rng.Intn(3) == 0 {
				if err := w.Flush(); err != nil {
					t.Errorf("flush: %v", err)
					return
				}
			}
			rem = rem[n:]
		}
		if err := w.Flush(); err != nil {
			t.Errorf("final flush: %v", err)
		}
	}()

	got := make([]byte, len(sent))
	if _, err := io.ReadFull(rd, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	wg.Wait()
	if !bytes.Equal(sent, got) {
		t.Fatal("byte stream corrupted through the ring")
	}
}

// TestRingTrainLargerThanRing proves a single frame train bigger than the
// whole ring streams through chunked records instead of deadlocking.
func TestRingTrainLargerThanRing(t *testing.T) {
	r := testRing(t, minRingBytes)
	w := newRingWriter(r)
	rd := newRingReader(r)

	payload := make([]byte, 3*minRingBytes)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go func() {
		if _, err := w.Write(payload); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := w.Flush(); err != nil {
			t.Errorf("flush: %v", err)
		}
	}()
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(rd, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(payload, got) {
		t.Fatal("oversized train corrupted")
	}
}

// TestRingSequenceSkewDetected corrupts a record's sequence number in
// place and asserts the reader refuses it instead of delivering bytes.
func TestRingSequenceSkewDetected(t *testing.T) {
	r := testRing(t, minRingBytes)
	w := newRingWriter(r)
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Sequence lives at bytes 4..8 of the record header, at offset 0.
	r.data[4] ^= 0xff
	rd := newRingReader(r)
	if _, err := rd.Read(make([]byte, 8)); !errors.Is(err, ErrRingCorrupt) {
		t.Fatalf("corrupted sequence read err = %v, want ErrRingCorrupt", err)
	}
}

// TestRingCorruptLengthDetected corrupts a record's length prefix and
// asserts the reader reports corruption rather than overrunning the
// published tail.
func TestRingCorruptLengthDetected(t *testing.T) {
	r := testRing(t, minRingBytes)
	w := newRingWriter(r)
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r.data[0] = 0xff // declared length now far past the published tail
	rd := newRingReader(r)
	if _, err := rd.Read(make([]byte, 8)); !errors.Is(err, ErrRingCorrupt) {
		t.Fatalf("corrupted length read err = %v, want ErrRingCorrupt", err)
	}
}

func connPair(t *testing.T) (dialer, acceptor net.Conn) {
	t.Helper()
	b := New()
	b.Dir = t.TempDir()
	ln, err := b.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	type res struct {
		c   net.Conn
		err error
	}
	acc := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		acc <- res{c, err}
	}()
	dc, err := b.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ar := <-acc
	if ar.err != nil {
		t.Fatal(ar.err)
	}
	t.Cleanup(func() { dc.Close(); ar.c.Close() })
	return dc, ar.c
}

// TestConnRendezvousRoundtrip drives the full Listen/Dial rendezvous and
// exchanges data both directions through the net.Conn surface.
func TestConnRendezvousRoundtrip(t *testing.T) {
	dc, ac := connPair(t)
	msg := []byte("ping over shared memory")
	if _, err := dc.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(ac, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg, got) {
		t.Fatalf("got %q, want %q", got, msg)
	}
	reply := []byte("pong")
	if _, err := ac.Write(reply); err != nil {
		t.Fatal(err)
	}
	got = make([]byte, len(reply))
	if _, err := io.ReadFull(dc, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reply, got) {
		t.Fatalf("got %q, want %q", got, reply)
	}
}

// TestConnCloseUnblocksReader parks a reader on an empty ring, closes the
// peer, and requires the read to return an error promptly instead of
// hanging.
func TestConnCloseUnblocksReader(t *testing.T) {
	dc, ac := connPair(t)
	errCh := make(chan error, 1)
	go func() {
		_, err := ac.Read(make([]byte, 16))
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the reader park
	dc.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("read after peer close returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader still blocked after peer close")
	}
}

// TestDialFallbackOnBadListener asserts a failed rendezvous (nobody
// listening) surfaces as a plain error — the cluster layer's cue to fall
// back to TCP.
func TestDialFallbackOnBadListener(t *testing.T) {
	b := New()
	b.Dir = t.TempDir()
	if _, err := b.Dial(b.Dir + "/nonexistent.sock"); err == nil {
		t.Fatal("dial of a dead socket path succeeded")
	}
}

// TestVersionSkewRefused speaks the rendezvous protocol with a wrong
// version byte and asserts the acceptor refuses rather than mapping
// rings it may misinterpret.
func TestVersionSkewRefused(t *testing.T) {
	b := New()
	b.Dir = t.TempDir()
	ln, err := b.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accErr := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		accErr <- err
	}()
	sock, err := net.Dial("unix", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()
	var msg []byte
	msg = append(msg, 0x31, 0x30, 0x4d, 0x48, 0x53, 0x44, 0x52, 0x45) // magic LE
	msg = append(msg, RingVersion+1)
	msg = append(msg, make([]byte, 8)...)
	if _, err := sock.Write(msg); err != nil {
		t.Fatal(err)
	}
	if err := <-accErr; err == nil {
		t.Fatal("acceptor accepted a version-skewed rendezvous")
	}
}
