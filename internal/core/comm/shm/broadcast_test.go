package shm

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func testBring(t *testing.T, capacity uint64, nslots int) *bring {
	t.Helper()
	mem := make([]byte, bringSize(capacity, nslots))
	b, err := initBring(mem, capacity, nslots)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBringFanoutIdenticalStreams attaches three readers before any
// publish, streams far more data than the ring holds, and requires every
// reader to observe the identical byte stream — the single-encode fanout
// invariant at the ring level.
func TestBringFanoutIdenticalStreams(t *testing.T) {
	b := testBring(t, minRingBytes, 4)
	const readers = 3
	slots := make([]int, readers)
	for i := range slots {
		slot, ok := b.attach(0)
		if !ok {
			t.Fatal("attach failed with free slots available")
		}
		slots[i] = slot
	}
	w := newBringWriter(b)

	rng := rand.New(rand.NewSource(11))
	var sent []byte
	for len(sent) < 48<<10 {
		n := 1 + rng.Intn(2000)
		chunk := make([]byte, n)
		rng.Read(chunk)
		sent = append(sent, chunk...)
	}

	var wg sync.WaitGroup
	got := make([][]byte, readers)
	for i := 0; i < readers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rd := newBringReader(b, slots[i])
			buf := make([]byte, len(sent))
			if _, err := io.ReadFull(rd, buf); err != nil {
				t.Errorf("reader %d: %v", i, err)
				return
			}
			got[i] = buf
		}()
	}
	rem := sent
	for len(rem) > 0 {
		n := 1 + rng.Intn(1500)
		if n > len(rem) {
			n = len(rem)
		}
		if _, err := w.Write(rem[:n]); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		rem = rem[n:]
	}
	wg.Wait()
	for i := 0; i < readers; i++ {
		if !bytes.Equal(sent, got[i]) {
			t.Fatalf("reader %d saw a corrupted stream", i)
		}
	}
}

// TestBringLateJoinAdoptsSequence publishes records into the void, then
// attaches a reader at the published tail and requires it to see exactly
// the post-join records — adopting the mid-stream sequence number rather
// than rejecting it.
func TestBringLateJoinAdoptsSequence(t *testing.T) {
	b := testBring(t, minRingBytes, 2)
	w := newBringWriter(b)
	for _, rec := range [][]byte{[]byte("before-1"), []byte("before-2")} {
		w.Write(rec)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	slot, ok := b.attach(b.tail.Load())
	if !ok {
		t.Fatal("attach failed")
	}
	after := []byte("after-the-join")
	w.Write(after)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd := newBringReader(b, slot)
	got := make([]byte, len(after))
	if _, err := io.ReadFull(rd, got); err != nil {
		t.Fatalf("late joiner read: %v", err)
	}
	if !bytes.Equal(after, got) {
		t.Fatalf("late joiner got %q, want %q", got, after)
	}
}

// TestBringEvictSlowestFreesWriter stalls one of two readers, lets the
// writer's waitSpace evict it, and requires (a) the fast reader's stream
// to stay intact and (b) the stalled reader to surface ErrEvicted rather
// than garbage bytes.
func TestBringEvictSlowestFreesWriter(t *testing.T) {
	b := testBring(t, minRingBytes, 2)
	fastSlot, _ := b.attach(0)
	stallSlot, _ := b.attach(0)
	w := newBringWriter(b)
	evicted := false
	w.waitSpace = func(need uint64) error {
		if b.minHead(b.tail.Load()) >= need {
			return nil
		}
		slot, ok := b.evictSlowest()
		if !ok {
			t.Fatal("waitSpace starved with no reader to evict")
		}
		if slot != stallSlot {
			t.Fatalf("evicted slot %d, want stalled slot %d", slot, stallSlot)
		}
		evicted = true
		return nil
	}

	fast := newBringReader(b, fastSlot)
	rec := bytes.Repeat([]byte{0x5a}, 512)
	for i := 0; i < 20; i++ { // 20 records ≈ 2.5× the ring
		if _, err := w.Write(rec); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
		got := make([]byte, len(rec))
		if _, err := io.ReadFull(fast, got); err != nil {
			t.Fatalf("fast read %d: %v", i, err)
		}
		if !bytes.Equal(rec, got) {
			t.Fatalf("fast reader corrupted at record %d", i)
		}
	}
	if !evicted {
		t.Fatal("stalled reader was never evicted")
	}
	stalled := newBringReader(b, stallSlot)
	for i := 0; i < 64; i++ {
		if _, err := stalled.Read(make([]byte, 512)); err != nil {
			if !errors.Is(err, ErrEvicted) && !errors.Is(err, ErrRingCorrupt) {
				t.Fatalf("stalled reader err = %v, want ErrEvicted or ErrRingCorrupt", err)
			}
			return
		}
	}
	t.Fatal("stalled reader kept reading past its eviction")
}

func testGroup(t *testing.T, ringBytes int) *BroadcastGroup {
	t.Helper()
	b := New()
	b.Dir = t.TempDir()
	b.RingBytes = ringBytes
	g, err := b.NewBroadcastGroup(4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

// TestBroadcastGroupFanout drives the full rendezvous: three readers join
// over the socket, the producer publishes through Sink once per record,
// and every reader decodes the identical stream. Leaving readers drop out
// of Members.
func TestBroadcastGroupFanout(t *testing.T) {
	g := testGroup(t, minRingBytes)
	const readers = 3
	rs := make([]*BusReader, readers)
	names := []string{"alpha", "beta", "gamma"}
	for i := range rs {
		r, err := JoinBroadcast(g.Addr(), names[i])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		rs[i] = r
	}
	if n := len(g.Members()); n != readers {
		t.Fatalf("Members() = %d, want %d", n, readers)
	}

	sink := g.Sink()
	var sent []byte
	rng := rand.New(rand.NewSource(23))
	for len(sent) < 32<<10 {
		rec := make([]byte, 1+rng.Intn(1200))
		rng.Read(rec)
		sent = append(sent, rec...)
	}

	var wg sync.WaitGroup
	got := make([][]byte, readers)
	for i := range rs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, len(sent))
			if _, err := io.ReadFull(rs[i], buf); err != nil {
				t.Errorf("reader %s: %v", names[i], err)
				return
			}
			got[i] = buf
		}()
	}
	rem := sent
	for len(rem) > 0 {
		n := 1 + rng.Intn(900)
		if n > len(rem) {
			n = len(rem)
		}
		if _, err := sink.Write(rem[:n]); err != nil {
			t.Fatalf("sink write: %v", err)
		}
		if err := sink.Flush(); err != nil {
			t.Fatalf("sink flush: %v", err)
		}
		rem = rem[n:]
	}
	wg.Wait()
	for i := range got {
		if !bytes.Equal(sent, got[i]) {
			t.Fatalf("reader %s saw a corrupted stream", names[i])
		}
	}

	rs[1].Close()
	deadline := time.Now().Add(5 * time.Second)
	for len(g.Members()) != readers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("Members() = %v after a reader left", g.Members())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBroadcastEvictionOfStalledReader wedges one of two joined readers
// and keeps publishing past the ring capacity. The writer must evict the
// stalled reader within EvictAfter instead of blocking the whole fanout,
// the fast reader's stream must stay intact, and the evicted reader must
// surface a clean error — its cue to fall back to per-link delivery.
func TestBroadcastEvictionOfStalledReader(t *testing.T) {
	g := testGroup(t, minRingBytes)
	g.EvictAfter = 30 * time.Millisecond

	fast, err := JoinBroadcast(g.Addr(), "fast")
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	stalled, err := JoinBroadcast(g.Addr(), "stalled")
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()

	rec := bytes.Repeat([]byte{0xcd}, 512)
	total := 24 * len(rec) // 3× the ring capacity
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, total)
		if _, err := io.ReadFull(fast, buf); err != nil {
			t.Errorf("fast reader: %v", err)
			return
		}
		for i, c := range buf {
			if c != 0xcd {
				t.Errorf("fast reader corrupted at byte %d", i)
				return
			}
		}
	}()

	sink := g.Sink()
	for i := 0; i < total/len(rec); i++ {
		if _, err := sink.Write(rec); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if err := sink.Flush(); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
	}
	wg.Wait()

	if ev := g.Evictions(); ev == 0 {
		t.Fatal("stalled reader was never evicted")
	}
	set := g.MemberSet()
	if set["stalled"] || !set["fast"] {
		t.Fatalf("MemberSet() = %v, want fast only", set)
	}
	// The evicted reader must fail cleanly — ErrEvicted from its slot
	// state or torn-read check, EOF from the severed socket, or corrupt
	// if it trips on an overwritten header — never hang or return junk
	// silently.
	for i := 0; i < 64; i++ {
		if _, err := stalled.Read(make([]byte, 512)); err != nil {
			if !errors.Is(err, ErrEvicted) && !errors.Is(err, io.EOF) &&
				!errors.Is(err, ErrRingCorrupt) {
				t.Fatalf("evicted reader err = %v", err)
			}
			return
		}
	}
	t.Fatal("evicted reader kept reading indefinitely")
}

// TestBroadcastJoinRefusedWhenFull fills every reader slot and asserts
// the next join fails cleanly — the caller's cue to stay on per-link
// delivery.
func TestBroadcastJoinRefusedWhenFull(t *testing.T) {
	b := New()
	b.Dir = t.TempDir()
	g, err := b.NewBroadcastGroup(1)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	r, err := JoinBroadcast(g.Addr(), "only")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := JoinBroadcast(g.Addr(), "overflow"); err == nil {
		t.Fatal("join succeeded with no free slots")
	}
}
