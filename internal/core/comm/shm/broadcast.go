// BroadcastGroup and JoinBroadcast: the OS-facing half of the SPMC
// broadcast ring. A producer creates one group per host for its
// broadcast-eligible streams; each same-host consumer joins over a unix
// rendezvous socket and maps the shared ring file. The producer encodes
// every fanout frame into the ring exactly once; N readers copy it out
// through their own cursors. The per-member socket carries the park/wake
// protocol and liveness, exactly like the SPSC Conn — and doubles as the
// eviction signal: when a lagging reader is cut loose the producer closes
// its socket, and the reader surfaces ErrEvicted (or EOF) so the layer
// above falls back to its per-link connection.
//
// Unlike the SPSC rendezvous, the ring file is NOT unlinked after setup:
// late joiners must still be able to map it, so it lives until the group
// closes.
package shm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/erdos-go/erdos/internal/core/comm"
)

// DefaultEvictAfter is how long the broadcast writer will block on a
// full ring waiting for its slowest reader before evicting it. Short
// enough that one wedged consumer cannot stall the whole fanout; long
// enough that a reader merely descheduled for a tick survives.
const DefaultEvictAfter = 200 * time.Millisecond

// BroadcastGroup is the producer's end of an SPMC broadcast ring: one
// shared ring file plus a rendezvous socket that same-host consumers
// join through. Sink() exposes the ring as a comm.FrameSink suitable
// for comm.NewBus; all sink and membership operations serialize on the
// group's publish lock.
type BroadcastGroup struct {
	b        *Backend
	ln       net.Listener
	sockPath string
	ringPath string
	mem      []byte
	br       *bring
	w        *bringWriter

	// mu is the publish lock: it covers every sink operation and every
	// slot attach/evict, so a new reader's head is always installed at a
	// stable published tail.
	mu sync.Mutex

	// memMu guards members only. Lock order: mu before memMu; the member
	// sockLoops take memMu alone, so a parked writer holding mu never
	// blocks them.
	memMu   sync.Mutex
	members map[int]*busMember

	spaceWake chan struct{}
	dead      chan struct{}
	deadOnce  sync.Once
	closeOnce sync.Once
	closeErr  error
	wg        sync.WaitGroup

	evictions atomic.Uint64

	// EvictAfter overrides DefaultEvictAfter when set before first use.
	EvictAfter time.Duration
}

type busMember struct {
	name string
	slot int
	sock net.Conn
}

// NewBroadcastGroup creates a broadcast ring with maxReaders slots
// (DefaultBroadcastReaders if <= 0) and starts accepting joiners on a
// fresh rendezvous socket under the backend's Dir.
func (b *Backend) NewBroadcastGroup(maxReaders int) (*BroadcastGroup, error) {
	capacity, err := b.ringBytes()
	if err != nil {
		return nil, err
	}
	if maxReaders <= 0 {
		maxReaders = DefaultBroadcastReaders
	}
	if maxReaders > maxBroadcastReaders {
		return nil, fmt.Errorf("shm: %d broadcast readers exceeds limit %d",
			maxReaders, maxBroadcastReaders)
	}
	size := bringSize(capacity, maxReaders)
	f, err := os.CreateTemp(b.dir(), "erdos-bring-*")
	if err != nil {
		return nil, err
	}
	ringPath := f.Name()
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		os.Remove(ringPath)
		return nil, err
	}
	mem, err := mapFile(f, size)
	f.Close()
	if err != nil {
		os.Remove(ringPath)
		return nil, err
	}
	br, err := initBring(mem, capacity, maxReaders)
	if err != nil {
		unmap(mem)
		os.Remove(ringPath)
		return nil, err
	}
	ln, err := b.Listen("")
	if err != nil {
		unmap(mem)
		os.Remove(ringPath)
		return nil, err
	}
	ul := ln.(*listener)
	g := &BroadcastGroup{
		b:         b,
		ln:        ul.ln,
		sockPath:  ul.path,
		ringPath:  ringPath,
		mem:       mem,
		br:        br,
		members:   map[int]*busMember{},
		spaceWake: make(chan struct{}, 1),
		dead:      make(chan struct{}),
	}
	g.w = newBringWriter(br)
	g.w.waitSpace = g.waitSpace
	g.w.wakeData = g.wakeMember
	g.wg.Add(1)
	go g.acceptLoop()
	runtime.SetFinalizer(g, (*BroadcastGroup).unmapRing)
	return g, nil
}

func (g *BroadcastGroup) unmapRing() {
	if g.mem != nil {
		unmap(g.mem)
		g.mem = nil
	}
}

// Addr is the rendezvous socket path consumers pass to JoinBroadcast.
func (g *BroadcastGroup) Addr() string { return g.sockPath }

// Sink returns the group's FrameSink: every Write/Flush publishes to all
// active readers at once. It also implements comm.SpillCounter.
func (g *BroadcastGroup) Sink() comm.FrameSink { return groupSink{g} }

// groupSink serializes sink access on the group's publish lock so
// attach/evict always observe a stable published tail.
type groupSink struct{ g *BroadcastGroup }

func (s groupSink) Write(p []byte) (int, error) {
	s.g.mu.Lock()
	defer s.g.mu.Unlock()
	return s.g.w.Write(p)
}

func (s groupSink) WriteByte(c byte) error {
	s.g.mu.Lock()
	defer s.g.mu.Unlock()
	return s.g.w.WriteByte(c)
}

func (s groupSink) Flush() error {
	s.g.mu.Lock()
	defer s.g.mu.Unlock()
	return s.g.w.Flush()
}

func (s groupSink) Spills() uint64 { return s.g.w.Spills() }

// Members returns the names of currently active readers. A reader that
// was evicted or died is gone from the snapshot, so the caller's next
// fanout partitions it back onto per-link delivery.
func (g *BroadcastGroup) Members() []string {
	g.memMu.Lock()
	defer g.memMu.Unlock()
	names := make([]string, 0, len(g.members))
	for _, m := range g.members {
		if g.br.slotState(m.slot).Load() == slotActive {
			names = append(names, m.name)
		}
	}
	return names
}

// MemberSet is Members as a set, for fanout partitioning.
func (g *BroadcastGroup) MemberSet() map[string]bool {
	g.memMu.Lock()
	defer g.memMu.Unlock()
	set := make(map[string]bool, len(g.members))
	for _, m := range g.members {
		if g.br.slotState(m.slot).Load() == slotActive {
			set[m.name] = true
		}
	}
	return set
}

// Evictions reports how many lagging readers the writer has cut loose.
func (g *BroadcastGroup) Evictions() uint64 { return g.evictions.Load() }

func (g *BroadcastGroup) markDead() {
	g.deadOnce.Do(func() { close(g.dead) })
}

// Close marks the ring closed (readers drain what is published, then see
// EOF), stops the accept loop, severs every member socket, and removes
// the ring file. The mapping itself outlives Close — a reader goroutine
// mid-copy must never touch unmapped pages — and is released when the
// group is collected.
func (g *BroadcastGroup) Close() error {
	g.closeOnce.Do(func() {
		g.br.closed.Store(1)
		g.markDead()
		g.closeErr = g.ln.Close()
		g.memMu.Lock()
		for _, m := range g.members {
			m.sock.Close()
		}
		g.memMu.Unlock()
		os.Remove(g.ringPath)
		g.wg.Wait()
	})
	return g.closeErr
}

func (g *BroadcastGroup) acceptLoop() {
	defer g.wg.Done()
	for {
		sock, err := g.ln.Accept()
		if err != nil {
			return
		}
		if err := g.acceptJoin(sock); err != nil {
			sock.Close()
		}
	}
}

// acceptJoin runs the join rendezvous: validate the hello, attach a slot
// at the current published tail, and send the reader everything it needs
// to map the ring.
func (g *BroadcastGroup) acceptJoin(sock net.Conn) error {
	_ = sock.SetDeadline(time.Now().Add(rendezvousTimeout))
	var fixed [8 + 1 + 2]byte
	if _, err := io.ReadFull(sock, fixed[:]); err != nil {
		return err
	}
	if binary.LittleEndian.Uint64(fixed[0:8]) != bringMagic {
		return errors.New("shm: broadcast join: bad magic")
	}
	if v := fixed[8]; v != RingVersion {
		return fmt.Errorf("shm: broadcast join: protocol version %d, want %d", v, RingVersion)
	}
	nameLen := binary.LittleEndian.Uint16(fixed[9:11])
	if nameLen == 0 || nameLen > 1024 {
		return fmt.Errorf("shm: broadcast join: bad name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(sock, nameBuf); err != nil {
		return err
	}

	g.mu.Lock()
	slot, ok := g.br.attach(g.br.tail.Load())
	g.mu.Unlock()
	if !ok {
		_, _ = sock.Write([]byte{0})
		return errors.New("shm: broadcast ring has no free reader slots")
	}

	reply := make([]byte, 0, 1+4+8+4+2+len(g.ringPath))
	reply = append(reply, 1)
	reply = binary.LittleEndian.AppendUint32(reply, uint32(slot))
	reply = binary.LittleEndian.AppendUint64(reply, g.br.cap)
	reply = binary.LittleEndian.AppendUint32(reply, uint32(g.br.nslots))
	reply = binary.LittleEndian.AppendUint16(reply, uint16(len(g.ringPath)))
	reply = append(reply, g.ringPath...)
	if _, err := sock.Write(reply); err != nil {
		g.br.freeSlot(slot)
		return err
	}
	_ = sock.SetDeadline(time.Time{})

	m := &busMember{name: string(nameBuf), slot: slot, sock: sock}
	g.memMu.Lock()
	g.members[slot] = m
	g.memMu.Unlock()
	g.wg.Add(1)
	go g.memberLoop(m)
	return nil
}

// memberLoop drains a member's wake bytes ("I freed space") and recycles
// its slot when the socket dies — clean leave and eviction both end
// here. A freed slot may be re-attached while the departed reader's last
// in-flight release is still landing; that stale head store is always
// <= the new reader's join position, so reclaim only ever errs
// conservative (the writer waits on a too-small head, never overwrites
// live bytes).
func (g *BroadcastGroup) memberLoop(m *busMember) {
	defer g.wg.Done()
	buf := make([]byte, 64)
	for {
		n, err := m.sock.Read(buf)
		for _, c := range buf[:n] {
			if c == wakeSpaceByte {
				select {
				case g.spaceWake <- struct{}{}:
				default:
				}
			}
		}
		if err != nil {
			g.memMu.Lock()
			delete(g.members, m.slot)
			g.memMu.Unlock()
			g.br.freeSlot(m.slot)
			// The departed reader's head no longer bounds reclaim;
			// unblock a writer that was waiting on it.
			select {
			case g.spaceWake <- struct{}{}:
			default:
			}
			m.sock.Close()
			return
		}
	}
}

// wakeMember delivers a data wake to the parked reader in slot.
func (g *BroadcastGroup) wakeMember(slot int) {
	g.memMu.Lock()
	m := g.members[slot]
	g.memMu.Unlock()
	if m != nil {
		_, _ = m.sock.Write([]byte{wakeDataByte})
	}
}

// waitSpace blocks until the slowest active reader frees enough ring
// space, evicting it if it stays the bottleneck past EvictAfter. Called
// with the publish lock held (sink ops own it), which is exactly what
// evictSlowest requires.
func (g *BroadcastGroup) waitSpace(need uint64) error {
	br := g.br
	for i := 0; i < spinYields; i++ {
		if br.minHead(br.tail.Load()) >= need {
			return nil
		}
		runtime.Gosched()
	}
	evictAfter := g.EvictAfter
	if evictAfter <= 0 {
		evictAfter = DefaultEvictAfter
	}
	poll := time.NewTimer(parkPoll)
	defer poll.Stop()
	evict := time.NewTimer(evictAfter)
	defer evict.Stop()
	for {
		br.wrPark.Store(1)
		if br.minHead(br.tail.Load()) >= need {
			br.wrPark.Store(0)
			return nil
		}
		if br.closed.Load() != 0 {
			return errRingClosed
		}
		select {
		case <-g.dead:
			return errRingClosed
		default:
		}
		select {
		case <-g.spaceWake:
		case <-g.dead:
		case <-poll.C:
			poll.Reset(parkPoll)
		case <-evict.C:
			if slot, ok := br.evictSlowest(); ok {
				g.evictions.Add(1)
				g.memMu.Lock()
				m := g.members[slot]
				g.memMu.Unlock()
				if m != nil {
					// memberLoop sees the close, frees the slot, and
					// signals spaceWake; the reader surfaces ErrEvicted.
					m.sock.Close()
				} else {
					g.br.freeSlot(slot)
				}
			}
			evict.Reset(evictAfter)
		}
	}
}

// BusReader is a consumer's end of a broadcast ring: a comm.FrameSource
// over the shared record stream. Decode frames from it with
// comm.ReadFrame. A reader that lags until eviction gets a sticky
// ErrEvicted; the caller then falls back to its per-link connection.
type BusReader struct {
	sock net.Conn
	mem  []byte
	br   *bring
	rd   *bringReader

	dataWake  chan struct{}
	dead      chan struct{}
	deadOnce  sync.Once
	closeOnce sync.Once
	closeErr  error
	// loopWG tracks sockLoop so Close can wait for it: closing the socket
	// fails the loop's blocking Read, and waiting here guarantees a closed
	// reader leaves nothing running.
	loopWG sync.WaitGroup
}

// JoinBroadcast attaches to the broadcast group listening at the
// rendezvous socket addr, identifying as name.
func JoinBroadcast(addr, name string) (*BusReader, error) {
	sock, err := net.Dial("unix", addr)
	if err != nil {
		return nil, err
	}
	r, err := joinBroadcast(sock, name)
	if err != nil {
		sock.Close()
		return nil, fmt.Errorf("shm: join broadcast %s: %w", addr, err)
	}
	return r, nil
}

func joinBroadcast(sock net.Conn, name string) (*BusReader, error) {
	if name == "" || len(name) > 1024 {
		return nil, fmt.Errorf("bad reader name %q", name)
	}
	_ = sock.SetDeadline(time.Now().Add(rendezvousTimeout))
	msg := make([]byte, 0, 8+1+2+len(name))
	msg = binary.LittleEndian.AppendUint64(msg, bringMagic)
	msg = append(msg, RingVersion)
	msg = binary.LittleEndian.AppendUint16(msg, uint16(len(name)))
	msg = append(msg, name...)
	if _, err := sock.Write(msg); err != nil {
		return nil, err
	}
	var status [1]byte
	if _, err := io.ReadFull(sock, status[:]); err != nil {
		return nil, err
	}
	if status[0] != 1 {
		return nil, fmt.Errorf("join refused (status %d)", status[0])
	}
	var hdr [4 + 8 + 4 + 2]byte
	if _, err := io.ReadFull(sock, hdr[:]); err != nil {
		return nil, err
	}
	slot := binary.LittleEndian.Uint32(hdr[0:4])
	capacity := binary.LittleEndian.Uint64(hdr[4:12])
	nslots := binary.LittleEndian.Uint32(hdr[12:16])
	pathLen := binary.LittleEndian.Uint16(hdr[16:18])
	if capacity < minRingBytes || capacity > maxRingBytes || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("bad ring capacity %d", capacity)
	}
	if nslots < 1 || nslots > maxBroadcastReaders || slot >= nslots {
		return nil, fmt.Errorf("bad slot %d of %d", slot, nslots)
	}
	if pathLen == 0 || pathLen > 4096 {
		return nil, fmt.Errorf("bad path length %d", pathLen)
	}
	pathBuf := make([]byte, pathLen)
	if _, err := io.ReadFull(sock, pathBuf); err != nil {
		return nil, err
	}
	mem, err := mapRingFile(string(pathBuf), bringSize(capacity, int(nslots)))
	if err != nil {
		return nil, err
	}
	br, err := openBring(mem)
	if err != nil {
		unmap(mem)
		return nil, err
	}
	_ = sock.SetDeadline(time.Time{})
	r := &BusReader{
		sock:     sock,
		mem:      mem,
		br:       br,
		rd:       newBringReader(br, int(slot)),
		dataWake: make(chan struct{}, 1),
		dead:     make(chan struct{}),
	}
	r.rd.waitData = r.waitData
	r.rd.wakeSpace = func() { _, _ = r.sock.Write([]byte{wakeSpaceByte}) }
	r.loopWG.Add(1)
	go r.sockLoop()
	runtime.SetFinalizer(r, (*BusReader).unmapRing)
	return r, nil
}

func (r *BusReader) unmapRing() {
	if r.mem != nil {
		unmap(r.mem)
		r.mem = nil
	}
}

func (r *BusReader) sockLoop() {
	defer r.loopWG.Done()
	buf := make([]byte, 64)
	for {
		n, err := r.sock.Read(buf)
		for _, c := range buf[:n] {
			if c == wakeDataByte {
				select {
				case r.dataWake <- struct{}{}:
				default:
				}
			}
		}
		if err != nil {
			r.markDead()
			return
		}
	}
}

func (r *BusReader) markDead() {
	r.deadOnce.Do(func() { close(r.dead) })
}

// waitData blocks until the writer publishes past pos: bounded spin,
// then park on this reader's slot flag with the recheck protocol and a
// safety poll. Eviction (slot state flipped, or the socket severed by
// the producer) surfaces as ErrEvicted/EOF.
func (r *BusReader) waitData(pos uint64) error {
	br := r.br
	slot := r.rd.slot
	for i := 0; i < spinYields; i++ {
		if br.tail.Load() > pos {
			return nil
		}
		runtime.Gosched()
	}
	timer := time.NewTimer(parkPoll)
	defer timer.Stop()
	for {
		br.slotPark(slot).Store(1)
		if br.tail.Load() > pos {
			br.slotPark(slot).Store(0)
			return nil
		}
		if br.slotState(slot).Load() != slotActive {
			return ErrEvicted
		}
		if br.closed.Load() != 0 {
			if br.tail.Load() > pos {
				return nil
			}
			return io.EOF
		}
		select {
		case <-r.dead:
			if br.tail.Load() > pos {
				return nil
			}
			return io.EOF
		default:
		}
		select {
		case <-r.dataWake:
		case <-r.dead:
		case <-timer.C:
			timer.Reset(parkPoll)
		}
	}
}

// Read implements comm.FrameSource (io.Reader half).
func (r *BusReader) Read(p []byte) (int, error) { return r.rd.Read(p) }

// ReadByte implements comm.FrameSource (io.ByteReader half).
func (r *BusReader) ReadByte() (byte, error) { return r.rd.ReadByte() }

// Close leaves the group: the producer sees the socket EOF and frees
// this reader's slot. The mapping is released when the reader is
// collected, never under a goroutine mid-copy.
func (r *BusReader) Close() error {
	r.closeOnce.Do(func() {
		r.markDead()
		r.closeErr = r.sock.Close()
		// The closed socket fails the loop's pending Read; reap it so a
		// closed reader leaves nothing running.
		r.loopWG.Wait()
	})
	return r.closeErr
}
