// Package shm is the shared-memory byte-transport backend for same-host
// peers: each direction of a connection is one mmap-backed SPSC ring
// buffer, so a frame send is a memcpy into the ring plus one atomic store,
// with no syscall on the hot path. The rendezvous and park/wake channel is
// a unix-domain socket: ring file paths travel over it at setup, single
// wake bytes travel over it when a parked side must be unblocked
// (futex-style: bounded spin first, kernel block after), and its EOF is
// the liveness signal when a peer dies without closing cleanly.
//
// This file is the ring itself — layout, record framing, producer and
// consumer cursors — over a plain []byte, with no OS dependencies, so the
// wraparound and corruption paths are unit- and fuzz-testable without
// mmap.
package shm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Ring file layout. The control fields producers and consumers ping-pong
// on live on separate cache lines: head and the consumer's park flag are
// written by the consumer, tail and the producer's park flag by the
// producer, so neither side's hot stores invalidate the other's line.
//
//	offset 0    magic  u64
//	offset 8    capacity u64 (power of two, data-region bytes)
//	offset 16   closed u32 (either side sets; sticky)
//	offset 64   head   u64 (consumer cursor, free-running)   ┐ consumer line
//	offset 72   rdPark u32 (consumer parked, wants data wake)┘
//	offset 128  tail   u64 (producer cursor, free-running)   ┐ producer line
//	offset 136  wrPark u32 (producer parked, wants space wake)┘
//	offset 256  data region (capacity bytes)
//
// Records are [u32 length][u32 sequence][length body bytes], wrapping
// byte-wise at the data-region edge. A record is one published frame
// train (everything between two FrameSink flushes), chunked at
// capacity/4 so frame trains larger than the ring stream through it.
// The sequence number is validated by the consumer: a reused, torn, or
// corrupted ring surfaces as a sequence/length error that drops the
// connection instead of delivering garbage frames.
const (
	ringMagic = 0x45524453484d3031 // "ERDSHM01"

	// RingVersion is the rendezvous protocol version; a mismatch refuses
	// the shm connection and the dialer falls back to TCP.
	RingVersion = 1

	offCapacity = 8
	offClosed   = 16
	offHead     = 64
	offRdPark   = 72
	offTail     = 128
	offWrPark   = 136
	ringDataOff = 256

	recHdrSize = 8

	// minRingBytes/maxRingBytes bound the capacities accepted from a
	// rendezvous peer, so a corrupt or hostile setup message cannot make
	// us map an absurd region.
	minRingBytes = 4 << 10
	maxRingBytes = 1 << 30
)

// spinYields is how many scheduler yields a waiting side burns before
// parking: cheap enough to stay out of the kernel across a ping-pong
// exchange, bounded so an idle link blocks instead of spinning. Yields,
// not busy-spins, because single-CPU hosts need the peer goroutine to
// actually run.
const spinYields = 128

var (
	errRingLayout = errors.New("shm: ring buffer has invalid layout")
	// ErrRingCorrupt is the sticky consumer error for sequence or length
	// validation failures; the transport treats it like any read error
	// and drops the peer.
	ErrRingCorrupt = errors.New("shm: ring record corrupt")
	errRingClosed  = errors.New("shm: ring closed")
)

// ring is one direction's shared region. The atomic fields point into the
// mapped memory, so stores are visible to the peer process.
type ring struct {
	mem  []byte
	data []byte
	cap  uint64
	mask uint64

	head   *atomic.Uint64
	tail   *atomic.Uint64
	closed *atomic.Uint32
	rdPark *atomic.Uint32
	wrPark *atomic.Uint32
}

// initRing stamps a fresh ring header into mem (the creating side calls
// it once before the peer maps the file).
func initRing(mem []byte, capacity uint64) (*ring, error) {
	if uint64(len(mem)) != ringDataOff+capacity {
		return nil, errRingLayout
	}
	for i := range mem[:ringDataOff] {
		mem[i] = 0
	}
	binary.LittleEndian.PutUint64(mem[0:8], ringMagic)
	binary.LittleEndian.PutUint64(mem[offCapacity:], capacity)
	return openRing(mem)
}

// openRing validates mem's header and returns cursors over it. It accepts
// arbitrary bytes (the fuzz target feeds it hostile headers), so every
// field is range-checked before use.
func openRing(mem []byte) (*ring, error) {
	if len(mem) < ringDataOff {
		return nil, errRingLayout
	}
	if uintptr(unsafe.Pointer(&mem[0]))%8 != 0 {
		return nil, errRingLayout
	}
	if binary.LittleEndian.Uint64(mem[0:8]) != ringMagic {
		return nil, errRingLayout
	}
	capacity := binary.LittleEndian.Uint64(mem[offCapacity:])
	if capacity < minRingBytes || capacity > maxRingBytes || capacity&(capacity-1) != 0 {
		return nil, errRingLayout
	}
	if uint64(len(mem)) != ringDataOff+capacity {
		return nil, errRingLayout
	}
	r := &ring{
		mem:    mem,
		data:   mem[ringDataOff:],
		cap:    capacity,
		mask:   capacity - 1,
		head:   (*atomic.Uint64)(unsafe.Pointer(&mem[offHead])),
		tail:   (*atomic.Uint64)(unsafe.Pointer(&mem[offTail])),
		closed: (*atomic.Uint32)(unsafe.Pointer(&mem[offClosed])),
		rdPark: (*atomic.Uint32)(unsafe.Pointer(&mem[offRdPark])),
		wrPark: (*atomic.Uint32)(unsafe.Pointer(&mem[offWrPark])),
	}
	return r, nil
}

// copyIn writes b into the data region at free-running offset pos,
// wrapping at the edge.
func (r *ring) copyIn(pos uint64, b []byte) {
	i := pos & r.mask
	n := copy(r.data[i:], b)
	if n < len(b) {
		copy(r.data, b[n:])
	}
}

// copyOut reads len(b) bytes from free-running offset pos into b.
func (r *ring) copyOut(pos uint64, b []byte) {
	i := pos & r.mask
	n := copy(b, r.data[i:])
	if n < len(b) {
		copy(b[n:], r.data[:len(b)-n])
	}
}

// ringWriter is the producer cursor: a comm.FrameSink that stages frame
// bytes directly into the ring and publishes one record per Flush
// (chunked at chunk bytes so oversized trains stream). Single-producer:
// exactly one goroutine may use it at a time.
type ringWriter struct {
	r      *ring
	tail   uint64 // published producer offset (mirrors r.tail)
	staged uint64 // body bytes staged past tail+recHdrSize
	seq    uint32
	chunk  uint64
	err    error

	// spills counts records force-published mid-train: frame trains
	// larger than the chunk budget (or the free space) streaming through
	// the ring in pieces. Written by the single producer, read by stats
	// snapshots (comm.SpillCounter), hence atomic.
	spills atomic.Uint64

	// waitSpace blocks until head >= minHead (enough freed space) or the
	// link dies; wakeData unparks a consumer after a publish. Wired to
	// the Conn's park/wake machinery; tests use spinning defaults.
	waitSpace func(minHead uint64) error
	wakeData  func()
}

func newRingWriter(r *ring) *ringWriter {
	w := &ringWriter{r: r, tail: r.tail.Load(), chunk: r.cap / 4}
	w.waitSpace = func(minHead uint64) error {
		for r.head.Load() < minHead {
			if r.closed.Load() != 0 {
				return errRingClosed
			}
			runtime.Gosched()
		}
		return nil
	}
	w.wakeData = func() {}
	return w
}

// free returns how many body bytes may be staged right now (the record
// header space is already accounted for).
func (w *ringWriter) free() int64 {
	return int64(w.r.cap) - int64(w.tail+recHdrSize+w.staged-w.r.head.Load())
}

func (w *ringWriter) Write(b []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	total := len(b)
	for len(b) > 0 {
		if w.staged >= w.chunk {
			w.spills.Add(1)
			if err := w.publish(); err != nil {
				return total - len(b), err
			}
		}
		avail := w.free()
		if avail <= 0 {
			// Publish what is staged so the consumer can drain it —
			// otherwise a train larger than the free space deadlocks —
			// then block until at least one byte of space frees up.
			if w.staged > 0 {
				w.spills.Add(1)
			}
			if err := w.publish(); err != nil {
				return total - len(b), err
			}
			minHead := w.tail + recHdrSize + 1
			if minHead < w.r.cap {
				minHead = 0
			} else {
				minHead -= w.r.cap
			}
			if err := w.waitSpace(minHead); err != nil {
				w.err = err
				return total - len(b), err
			}
			continue
		}
		n := uint64(len(b))
		if n > uint64(avail) {
			n = uint64(avail)
		}
		if rem := w.chunk - w.staged; n > rem {
			n = rem
		}
		w.r.copyIn(w.tail+recHdrSize+w.staged, b[:n])
		w.staged += n
		b = b[n:]
	}
	return total, nil
}

func (w *ringWriter) WriteByte(c byte) error {
	if w.err == nil && w.staged < w.chunk && w.free() > 0 {
		w.r.data[(w.tail+recHdrSize+w.staged)&w.mask()] = c
		w.staged++
		return nil
	}
	var buf [1]byte
	buf[0] = c
	_, err := w.Write(buf[:])
	return err
}

func (w *ringWriter) mask() uint64 { return w.r.mask }

// publish seals the staged bytes as one record: backfill the length and
// sequence header, advance the shared tail (the atomic store is the
// release barrier that makes the body visible), and wake a parked
// consumer.
func (w *ringWriter) publish() error {
	if w.err != nil {
		return w.err
	}
	if w.r.closed.Load() != 0 {
		w.err = errRingClosed
		return w.err
	}
	if w.staged == 0 {
		return nil
	}
	var hdr [recHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(w.staged))
	binary.LittleEndian.PutUint32(hdr[4:8], w.seq)
	w.r.copyIn(w.tail, hdr[:])
	w.tail += recHdrSize + w.staged
	w.staged = 0
	w.seq++
	w.r.tail.Store(w.tail)
	if w.r.rdPark.Load() != 0 && w.r.rdPark.Swap(0) != 0 {
		w.wakeData()
	}
	return nil
}

// Flush publishes the staged record; it is the FrameSink frame-train
// boundary.
func (w *ringWriter) Flush() error { return w.publish() }

// Spills implements comm.SpillCounter: how many records were
// force-published mid-train because the train outgrew the chunk budget
// or the free space. comm surfaces it per link as
// PeerCoalesceStats.ShmSpillCount.
func (w *ringWriter) Spills() uint64 { return w.spills.Load() }

// ringReader is the consumer cursor: a comm.FrameSource that validates
// record headers and hands out the byte stream records carry.
// Single-consumer: exactly one goroutine may use it at a time.
type ringReader struct {
	r         *ring
	pos       uint64 // consumed offset, including record headers
	remaining uint64 // unread body bytes of the current record
	seq       uint32
	err       error

	// waitData blocks until tail > pos (a record is published) or the
	// link dies; wakeSpace unparks a producer after space is freed.
	waitData  func(pos uint64) error
	wakeSpace func()
}

func newRingReader(r *ring) *ringReader {
	rd := &ringReader{r: r, pos: r.head.Load()}
	rd.waitData = func(pos uint64) error {
		for r.tail.Load() <= pos {
			if r.closed.Load() != 0 {
				if r.tail.Load() > pos {
					return nil
				}
				return io.EOF
			}
			runtime.Gosched()
		}
		return nil
	}
	rd.wakeSpace = func() {}
	return rd
}

// readHeader consumes and validates the next record header. The sequence
// check catches torn or replayed wraparounds; the length checks catch
// corrupt prefixes before they can drive a huge wait or a bogus cursor
// advance.
func (rd *ringReader) readHeader() error {
	if err := rd.waitData(rd.pos); err != nil {
		rd.err = err
		return err
	}
	var hdr [recHdrSize]byte
	rd.r.copyOut(rd.pos, hdr[:])
	ln := binary.LittleEndian.Uint32(hdr[0:4])
	seq := binary.LittleEndian.Uint32(hdr[4:8])
	if seq != rd.seq {
		rd.err = fmt.Errorf("%w: sequence %d, want %d", ErrRingCorrupt, seq, rd.seq)
		return rd.err
	}
	if ln == 0 || uint64(ln) > rd.r.cap-recHdrSize {
		rd.err = fmt.Errorf("%w: record length %d", ErrRingCorrupt, ln)
		return rd.err
	}
	if rd.pos+recHdrSize+uint64(ln) > rd.r.tail.Load() {
		rd.err = fmt.Errorf("%w: record overruns published tail", ErrRingCorrupt)
		return rd.err
	}
	rd.pos += recHdrSize
	rd.remaining = uint64(ln)
	rd.seq++
	return nil
}

// release publishes the new head (freeing ring space) and wakes a parked
// producer.
func (rd *ringReader) release() {
	rd.r.head.Store(rd.pos)
	if rd.r.wrPark.Load() != 0 && rd.r.wrPark.Swap(0) != 0 {
		rd.wakeSpace()
	}
}

func (rd *ringReader) Read(p []byte) (int, error) {
	if rd.err != nil {
		return 0, rd.err
	}
	if len(p) == 0 {
		return 0, nil
	}
	if rd.remaining == 0 {
		if err := rd.readHeader(); err != nil {
			return 0, err
		}
	}
	n := uint64(len(p))
	if n > rd.remaining {
		n = rd.remaining
	}
	rd.r.copyOut(rd.pos, p[:n])
	rd.pos += n
	rd.remaining -= n
	// Publish the consumed space only at record boundaries: a head store
	// per byte would bounce the consumer cache line on every uvarint of
	// the frame decoder, and records are capped at a quarter ring so the
	// producer never starves waiting for an end-of-record release.
	if rd.remaining == 0 {
		rd.release()
	}
	return int(n), nil
}

func (rd *ringReader) ReadByte() (byte, error) {
	if rd.err != nil {
		return 0, rd.err
	}
	if rd.remaining == 0 {
		if err := rd.readHeader(); err != nil {
			return 0, err
		}
	}
	c := rd.r.data[rd.pos&rd.r.mask]
	rd.pos++
	rd.remaining--
	if rd.remaining == 0 {
		rd.release()
	}
	return c, nil
}
