package shm

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzShmRingDecode feeds the consumer cursor hostile ring images:
// truncated records, corrupted length prefixes, wraparound seams and
// version/sequence skew. The invariant is memory safety plus bounded
// behavior — every outcome must be clean bytes or a clean error, never a
// panic, an overrun of the published tail, or an unbounded wait.
func FuzzShmRingDecode(f *testing.F) {
	// Seed 1: a well-formed two-record ring.
	seed := func(records ...[]byte) []byte {
		mem := make([]byte, ringDataOff+minRingBytes)
		r, err := initRing(mem, minRingBytes)
		if err != nil {
			f.Fatal(err)
		}
		w := newRingWriter(r)
		for _, rec := range records {
			w.Write(rec)
			w.Flush()
		}
		return mem
	}
	f.Add(seed([]byte("hello"), bytes.Repeat([]byte{0xab}, 300)))
	// Seed 2: a record published across the wraparound seam.
	{
		mem := make([]byte, ringDataOff+minRingBytes)
		r, _ := initRing(mem, minRingBytes)
		w := newRingWriter(r)
		rd := newRingReader(r)
		pre := bytes.Repeat([]byte{1}, minRingBytes-300)
		w.Write(pre)
		w.Flush()
		io.ReadFull(rd, make([]byte, len(pre)))
		w.Write(bytes.Repeat([]byte{2}, 600)) // wraps
		w.Flush()
		f.Add(mem)
	}
	// Seed 3: corrupted sequence number.
	{
		mem := seed([]byte("skewed"))
		mem[ringDataOff+4] ^= 0xff
		f.Add(mem)
	}
	// Seed 4: oversized length prefix.
	{
		mem := seed([]byte("x"))
		binary.LittleEndian.PutUint32(mem[ringDataOff:], 0xffffffff)
		f.Add(mem)
	}

	f.Fuzz(func(t *testing.T, mem []byte) {
		// Copy into an aligned, exactly-sized buffer: openRing validates
		// layout, so only the header/data bytes are fuzz-controlled.
		buf := make([]byte, len(mem))
		copy(buf, mem)
		r, err := openRing(buf)
		if err != nil {
			return // invalid layout must be rejected, and was
		}
		// Clamp the cursors into a consistent starting state: head at 0,
		// park flags clear, closed set so a starved reader terminates
		// instead of spinning on fuzz-controlled emptiness.
		r.head.Store(0)
		r.rdPark.Store(0)
		r.wrPark.Store(0)
		r.closed.Store(1)
		if tail := r.tail.Load(); tail > r.cap {
			r.tail.Store(tail & r.mask) // keep the published window sane
		}
		rd := newRingReader(r)
		total := 0
		iters := 0
		var chunk [512]byte
		for total <= int(r.cap)+recHdrSize {
			iters++
			if iters > 1<<20 {
				t.Fatalf("decoder looped %d times (cap %d, total %d, pos %d, tail %d)",
					iters, r.cap, total, rd.pos, r.tail.Load())
			}
			n, err := rd.Read(chunk[:])
			if err != nil {
				break
			}
			if n <= 0 {
				t.Fatalf("Read returned %d with nil error", n)
			}
			total += n
		}
		if total > int(r.cap) {
			t.Fatalf("decoded %d bytes from a %d-byte ring window", total, r.cap)
		}
	})
}

// FuzzShmBroadcastRingDecode feeds a broadcast-ring reader hostile ring
// images: corrupted headers, hostile slot tables, truncated and
// overwritten records. The invariant matches the SPSC fuzz target —
// every outcome is clean bytes or a clean error (ErrRingCorrupt,
// ErrEvicted, close), never a panic, a tail overrun, or an unbounded
// wait.
func FuzzShmBroadcastRingDecode(f *testing.F) {
	const nslots = 2
	seed := func(records ...[]byte) []byte {
		mem := make([]byte, bringSize(minRingBytes, nslots))
		b, err := initBring(mem, minRingBytes, nslots)
		if err != nil {
			f.Fatal(err)
		}
		w := newBringWriter(b)
		for _, rec := range records {
			w.Write(rec)
			w.Flush()
		}
		return mem
	}
	f.Add(seed([]byte("fanout"), bytes.Repeat([]byte{0xcd}, 400)))
	// A record across the wraparound seam: fill, drain via one reader,
	// then publish past the end.
	{
		mem := make([]byte, bringSize(minRingBytes, nslots))
		b, _ := initBring(mem, minRingBytes, nslots)
		slot, _ := b.attach(0)
		w := newBringWriter(b)
		rd := newBringReader(b, slot)
		pre := bytes.Repeat([]byte{1}, minRingBytes-300)
		w.Write(pre)
		w.Flush()
		io.ReadFull(rd, make([]byte, len(pre)))
		w.Write(bytes.Repeat([]byte{2}, 600)) // wraps
		w.Flush()
		f.Add(mem)
	}
	// Corrupted sequence and oversized length prefix.
	{
		mem := seed([]byte("skewed"))
		mem[bringSize(minRingBytes, nslots)-int(minRingBytes)+4] ^= 0xff
		f.Add(mem)
	}
	{
		mem := seed([]byte("x"))
		dataOff := bringSize(minRingBytes, nslots) - int(minRingBytes)
		binary.LittleEndian.PutUint32(mem[dataOff:], 0xffffffff)
		f.Add(mem)
	}

	f.Fuzz(func(t *testing.T, mem []byte) {
		buf := make([]byte, len(mem))
		copy(buf, mem)
		b, err := openBring(buf)
		if err != nil {
			return // invalid layout must be rejected, and was
		}
		// Clamp into a consistent start state: reader in slot 0 at head 0,
		// every park flag clear, ring closed so a starved reader
		// terminates instead of spinning on fuzz-controlled emptiness.
		b.slotHead(0).Store(0)
		b.slotState(0).Store(slotActive)
		for i := 0; i < b.nslots; i++ {
			b.slotPark(i).Store(0)
		}
		b.wrPark.Store(0)
		b.closed.Store(1)
		if tail := b.tail.Load(); tail > b.cap {
			b.tail.Store(tail & b.mask)
		}
		b.frontier.Store(b.tail.Load())
		rd := newBringReader(b, 0)
		total := 0
		iters := 0
		var chunk [512]byte
		for total <= int(b.cap)+recHdrSize {
			iters++
			if iters > 1<<20 {
				t.Fatalf("decoder looped %d times (cap %d, total %d, pos %d, tail %d)",
					iters, b.cap, total, rd.pos, b.tail.Load())
			}
			n, err := rd.Read(chunk[:])
			if err != nil {
				break
			}
			if n <= 0 {
				t.Fatalf("Read returned %d with nil error", n)
			}
			total += n
		}
		if total > int(b.cap) {
			t.Fatalf("decoded %d bytes from a %d-byte ring window", total, b.cap)
		}
	})
}
