// The SPMC broadcast ring: a single-writer, multi-reader variant of the
// SPSC ring for same-host fanout. One producer publishes each frame into
// shared memory exactly once; every attached reader consumes the same
// record stream through its own cursor. Space reclamation is governed by
// the slowest reader's watermark — the writer may only overwrite bytes
// every active reader has released — and a reader that lags so far the
// writer starves is *evicted*: its slot is marked, its frames stop, and
// the producer falls back to per-link delivery for it (the same fault
// model as a severed link).
//
// Like ring.go, this file is the pure in-memory core — layout, cursors,
// reclaim and eviction — over a plain []byte with no OS dependencies, so
// wraparound, late-join, lag and corruption paths are unit- and
// fuzz-testable without mmap. broadcast.go adds the mmap/rendezvous glue.
package shm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Broadcast ring file layout. The writer's cursor line and each reader's
// slot live on separate cache lines so one side's hot stores do not
// invalidate another's line.
//
//	offset 0    magic      u64 ("ERDSHM02")
//	offset 8    capacity   u64 (power of two, data-region bytes)
//	offset 16   closed     u32 (writer sets; sticky)
//	offset 20   maxReaders u32
//	offset 64   tail       u64 (writer cursor, free-running) ┐
//	offset 72   wrPark     u32 (writer parked)               │ writer line
//	offset 80   frontier   u64 (furthest staged write, see below)
//	offset 128  reader slots, maxReaders × 64 bytes:
//	              +0  head  u64 (reader cursor, free-running)
//	              +8  state u32 (free / active / evicted)
//	              +12 park  u32 (reader parked, wants data wake)
//	offset 128 + maxReaders*64   data region (capacity bytes)
//
// Records are the same [u32 length][u32 sequence][body] trains as the
// SPSC ring, chunked at capacity/4. Sequence numbers are global to the
// ring; a reader attaching mid-stream adopts the first sequence it sees
// and validates strict increments from there.
const (
	bringMagic = 0x45524453484d3032 // "ERDSHM02"

	offBMaxReaders = 20
	offBTail       = 64
	offBWrPark     = 72
	offBFrontier   = 80
	bringSlotsOff  = 128
	bringSlotSize  = 64
	slotHeadOff    = 0
	slotStateOff   = 8
	slotParkOff    = 12

	// Reader slot states. free→active happens at attach (head is
	// initialized first, under the group's publish lock); active→evicted
	// is the writer cutting a lagging reader loose; evicted→free (and
	// active→free on clean detach) happens once the reader's rendezvous
	// socket closes.
	slotFree    = 0
	slotActive  = 1
	slotEvicted = 2

	// maxBroadcastReaders bounds the slot count accepted from a mapped
	// header, like min/maxRingBytes bound capacity.
	maxBroadcastReaders = 64

	// DefaultBroadcastReaders is the slot count NewBroadcastGroup
	// allocates: enough for every same-host consumer of a fanout-heavy
	// pipeline stage, cheap enough (64 B/slot) to never matter.
	DefaultBroadcastReaders = 8
)

// ErrEvicted is the sticky reader error after the writer cut this reader
// loose for lagging (or its record stream was overwritten mid-read, the
// detectable symptom of the same condition). The consumer falls back to
// its per-link connection.
var ErrEvicted = errors.New("shm: broadcast reader evicted")

// bring is the mapped SPMC ring. Atomic fields point into the mapped
// memory, visible to every attached process.
type bring struct {
	mem    []byte
	data   []byte
	cap    uint64
	mask   uint64
	nslots int

	tail   *atomic.Uint64
	closed *atomic.Uint32
	wrPark *atomic.Uint32

	// frontier is the exclusive end of the furthest byte the writer has
	// staged or published, stored BEFORE the bytes themselves are copied
	// in (a seqlock-style write-begin marker). A reader validates each
	// copy-out after the fact: bytes at [start, start+n) were overwritten
	// iff frontier > start+capacity. For active readers this can never
	// fire — the writer's space constraint keeps frontier <= minHead +
	// capacity — so it exactly detects the lap an evicted reader takes.
	frontier *atomic.Uint64
}

func bringSize(capacity uint64, nslots int) int {
	return bringSlotsOff + nslots*bringSlotSize + int(capacity)
}

func (b *bring) slot(i int) []byte {
	off := bringSlotsOff + i*bringSlotSize
	return b.mem[off : off+bringSlotSize]
}

func (b *bring) slotHead(i int) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&b.slot(i)[slotHeadOff]))
}

func (b *bring) slotState(i int) *atomic.Uint32 {
	return (*atomic.Uint32)(unsafe.Pointer(&b.slot(i)[slotStateOff]))
}

func (b *bring) slotPark(i int) *atomic.Uint32 {
	return (*atomic.Uint32)(unsafe.Pointer(&b.slot(i)[slotParkOff]))
}

// initBring stamps a fresh broadcast ring header into mem.
func initBring(mem []byte, capacity uint64, nslots int) (*bring, error) {
	if nslots < 1 || nslots > maxBroadcastReaders ||
		len(mem) != bringSize(capacity, nslots) {
		return nil, errRingLayout
	}
	dataOff := bringSlotsOff + nslots*bringSlotSize
	for i := range mem[:dataOff] {
		mem[i] = 0
	}
	binary.LittleEndian.PutUint64(mem[0:8], bringMagic)
	binary.LittleEndian.PutUint64(mem[offCapacity:], capacity)
	binary.LittleEndian.PutUint32(mem[offBMaxReaders:], uint32(nslots))
	return openBring(mem)
}

// openBring validates mem's header and returns cursors over it. Like
// openRing it accepts arbitrary bytes (the fuzz target feeds it hostile
// headers), so every field is range-checked before use.
func openBring(mem []byte) (*bring, error) {
	if len(mem) < bringSlotsOff+bringSlotSize {
		return nil, errRingLayout
	}
	if uintptr(unsafe.Pointer(&mem[0]))%8 != 0 {
		return nil, errRingLayout
	}
	if binary.LittleEndian.Uint64(mem[0:8]) != bringMagic {
		return nil, errRingLayout
	}
	capacity := binary.LittleEndian.Uint64(mem[offCapacity:])
	if capacity < minRingBytes || capacity > maxRingBytes || capacity&(capacity-1) != 0 {
		return nil, errRingLayout
	}
	nslots := binary.LittleEndian.Uint32(mem[offBMaxReaders:])
	if nslots < 1 || nslots > maxBroadcastReaders {
		return nil, errRingLayout
	}
	if len(mem) != bringSize(capacity, int(nslots)) {
		return nil, errRingLayout
	}
	dataOff := bringSlotsOff + int(nslots)*bringSlotSize
	b := &bring{
		mem:      mem,
		data:     mem[dataOff:],
		cap:      capacity,
		mask:     capacity - 1,
		nslots:   int(nslots),
		tail:     (*atomic.Uint64)(unsafe.Pointer(&mem[offBTail])),
		closed:   (*atomic.Uint32)(unsafe.Pointer(&mem[offClosed])),
		wrPark:   (*atomic.Uint32)(unsafe.Pointer(&mem[offBWrPark])),
		frontier: (*atomic.Uint64)(unsafe.Pointer(&mem[offBFrontier])),
	}
	return b, nil
}

func (b *bring) copyIn(pos uint64, p []byte) {
	i := pos & b.mask
	n := copy(b.data[i:], p)
	if n < len(p) {
		copy(b.data, p[n:])
	}
}

func (b *bring) copyOut(pos uint64, p []byte) {
	i := pos & b.mask
	n := copy(p, b.data[i:])
	if n < len(p) {
		copy(p[n:], b.data[:len(p)-n])
	}
}

// minHead returns the slowest active reader's cursor — the writer's
// reclaim bound. With no active readers everything up to tail is
// reclaimable (records are published into the void; a later attacher
// starts at the current tail).
func (b *bring) minHead(tail uint64) uint64 {
	min := tail
	for i := 0; i < b.nslots; i++ {
		if b.slotState(i).Load() == slotActive {
			if h := b.slotHead(i).Load(); h < min {
				min = h
			}
		}
	}
	return min
}

// attach claims a free slot for a new reader joining at tail (the
// writer's *published* cursor). The caller must hold the group's publish
// lock so the writer cannot reclaim past the new head between the head
// store and the state store. Returns false when every slot is taken.
func (b *bring) attach(tail uint64) (int, bool) {
	for i := 0; i < b.nslots; i++ {
		if b.slotState(i).Load() == slotFree {
			b.slotHead(i).Store(tail)
			b.slotPark(i).Store(0)
			b.slotState(i).Store(slotActive)
			return i, true
		}
	}
	return 0, false
}

// evictSlowest marks the active reader with the smallest head evicted and
// returns its slot. The caller must hold the group's publish lock.
func (b *bring) evictSlowest() (int, bool) {
	slot, found := -1, false
	var min uint64
	for i := 0; i < b.nslots; i++ {
		if b.slotState(i).Load() != slotActive {
			continue
		}
		if h := b.slotHead(i).Load(); !found || h < min {
			slot, min, found = i, h, true
		}
	}
	if !found {
		return 0, false
	}
	b.slotState(slot).Store(slotEvicted)
	return slot, true
}

// freeSlot recycles a slot once its reader's rendezvous socket has
// closed — the reader can no longer be mid-copy by the time its socket
// EOF is observed on the writer side, and even if it were, the torn-read
// check catches an overwrite.
func (b *bring) freeSlot(i int) {
	if i >= 0 && i < b.nslots {
		b.slotState(i).Store(slotFree)
	}
}

// bringWriter is the producer cursor: a comm.FrameSink publishing one
// record per Flush, chunked at capacity/4, exactly like ringWriter — but
// bounded by the slowest active reader instead of a single consumer.
// Single-producer; the BroadcastGroup serializes access.
type bringWriter struct {
	b      *bring
	tail   uint64
	staged uint64
	seq    uint32
	chunk  uint64
	err    error
	spills atomic.Uint64

	// waitSpace blocks until minHead(tail) >= need or the ring dies; the
	// OS layer's implementation evicts the slowest reader after a grace
	// period instead of blocking forever. wakeData wakes parked readers
	// after a publish.
	waitSpace func(need uint64) error
	wakeData  func(slot int)
}

func newBringWriter(b *bring) *bringWriter {
	w := &bringWriter{b: b, tail: b.tail.Load(), chunk: b.cap / 4}
	w.waitSpace = func(need uint64) error {
		for b.minHead(b.tail.Load()) < need {
			if b.closed.Load() != 0 {
				return errRingClosed
			}
			runtime.Gosched()
		}
		return nil
	}
	w.wakeData = func(int) {}
	return w
}

func (w *bringWriter) free() int64 {
	minHead := w.b.minHead(w.tail)
	return int64(w.b.cap) - int64(w.tail+recHdrSize+w.staged-minHead)
}

func (w *bringWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	total := len(p)
	for len(p) > 0 {
		if w.staged >= w.chunk {
			w.spills.Add(1)
			if err := w.publish(); err != nil {
				return total - len(p), err
			}
		}
		avail := w.free()
		if avail <= 0 {
			if w.staged > 0 {
				w.spills.Add(1)
			}
			if err := w.publish(); err != nil {
				return total - len(p), err
			}
			need := w.tail + recHdrSize + 1
			if need < w.b.cap {
				need = 0
			} else {
				need -= w.b.cap
			}
			if err := w.waitSpace(need); err != nil {
				w.err = err
				return total - len(p), err
			}
			continue
		}
		n := uint64(len(p))
		if n > uint64(avail) {
			n = uint64(avail)
		}
		if rem := w.chunk - w.staged; n > rem {
			n = rem
		}
		w.b.frontier.Store(w.tail + recHdrSize + w.staged + n)
		w.b.copyIn(w.tail+recHdrSize+w.staged, p[:n])
		w.staged += n
		p = p[n:]
	}
	return total, nil
}

func (w *bringWriter) WriteByte(c byte) error {
	if w.err == nil && w.staged < w.chunk && w.free() > 0 {
		w.b.frontier.Store(w.tail + recHdrSize + w.staged + 1)
		w.b.data[(w.tail+recHdrSize+w.staged)&w.b.mask] = c
		w.staged++
		return nil
	}
	var buf [1]byte
	buf[0] = c
	_, err := w.Write(buf[:])
	return err
}

// publish seals the staged bytes as one record and wakes every parked
// active reader.
func (w *bringWriter) publish() error {
	if w.err != nil {
		return w.err
	}
	if w.b.closed.Load() != 0 {
		w.err = errRingClosed
		return w.err
	}
	if w.staged == 0 {
		return nil
	}
	var hdr [recHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(w.staged))
	binary.LittleEndian.PutUint32(hdr[4:8], w.seq)
	w.b.copyIn(w.tail, hdr[:])
	w.tail += recHdrSize + w.staged
	w.staged = 0
	w.seq++
	w.b.tail.Store(w.tail)
	for i := 0; i < w.b.nslots; i++ {
		if w.b.slotState(i).Load() == slotActive &&
			w.b.slotPark(i).Load() != 0 && w.b.slotPark(i).Swap(0) != 0 {
			w.wakeData(i)
		}
	}
	return nil
}

// Flush publishes the staged record; the FrameSink frame-train boundary.
func (w *bringWriter) Flush() error { return w.publish() }

// Spills implements comm.SpillCounter for the broadcast ring.
func (w *bringWriter) Spills() uint64 { return w.spills.Load() }

// bringReader is one reader's cursor. Unlike the SPSC ringReader it may
// join mid-stream (adopting the first sequence it observes) and must
// tolerate the writer lapping it after an eviction: every copy out of
// the data region is followed by a torn-read check against the writer's
// furthest possible write position, so an overwritten record surfaces as
// ErrEvicted instead of garbage bytes.
type bringReader struct {
	b         *bring
	slot      int
	pos       uint64
	remaining uint64
	seq       uint32
	started   bool
	err       error

	waitData  func(pos uint64) error
	wakeSpace func()
}

func newBringReader(b *bring, slot int) *bringReader {
	rd := &bringReader{b: b, slot: slot, pos: b.slotHead(slot).Load()}
	rd.waitData = func(pos uint64) error {
		for b.tail.Load() <= pos {
			if b.slotState(slot).Load() == slotEvicted {
				return ErrEvicted
			}
			if b.closed.Load() != 0 {
				if b.tail.Load() > pos {
					return nil
				}
				return errRingClosed
			}
			runtime.Gosched()
		}
		return nil
	}
	rd.wakeSpace = func() {}
	return rd
}

// torn reports whether bytes just copied out from start may have been
// overwritten by the writer. The writer stores its write frontier before
// copying bytes in, so if any byte at or past start's ring offset was
// rewritten, the frontier observed here already exceeds start+capacity.
// For an active reader the writer's space constraint keeps the frontier
// at or below minHead+capacity <= start+capacity, so this never fires;
// after an eviction it detects the writer's lap deterministically.
func (rd *bringReader) torn(start uint64) bool {
	return rd.b.frontier.Load() > start+rd.b.cap
}

func (rd *bringReader) fail(err error) error {
	rd.err = err
	return err
}

func (rd *bringReader) readHeader() error {
	if rd.b.slotState(rd.slot).Load() == slotEvicted {
		return rd.fail(ErrEvicted)
	}
	if err := rd.waitData(rd.pos); err != nil {
		return rd.fail(err)
	}
	var hdr [recHdrSize]byte
	rd.b.copyOut(rd.pos, hdr[:])
	if rd.torn(rd.pos) {
		return rd.fail(ErrEvicted)
	}
	ln := binary.LittleEndian.Uint32(hdr[0:4])
	seq := binary.LittleEndian.Uint32(hdr[4:8])
	if !rd.started {
		// Mid-stream join: adopt the stream's sequence at our first
		// record; strict increments are enforced from here on.
		rd.seq = seq
		rd.started = true
	}
	if seq != rd.seq {
		return rd.fail(fmt.Errorf("%w: sequence %d, want %d", ErrRingCorrupt, seq, rd.seq))
	}
	if ln == 0 || uint64(ln) > rd.b.cap-recHdrSize {
		return rd.fail(fmt.Errorf("%w: record length %d", ErrRingCorrupt, ln))
	}
	if rd.pos+recHdrSize+uint64(ln) > rd.b.tail.Load() {
		return rd.fail(fmt.Errorf("%w: record overruns published tail", ErrRingCorrupt))
	}
	rd.pos += recHdrSize
	rd.remaining = uint64(ln)
	rd.seq++
	return nil
}

// release publishes the new head (freeing space behind this reader) and
// wakes a parked writer.
func (rd *bringReader) release() {
	rd.b.slotHead(rd.slot).Store(rd.pos)
	if rd.b.wrPark.Load() != 0 && rd.b.wrPark.Swap(0) != 0 {
		rd.wakeSpace()
	}
}

func (rd *bringReader) Read(p []byte) (int, error) {
	if rd.err != nil {
		return 0, rd.err
	}
	if len(p) == 0 {
		return 0, nil
	}
	if rd.remaining == 0 {
		if err := rd.readHeader(); err != nil {
			return 0, err
		}
	}
	n := uint64(len(p))
	if n > rd.remaining {
		n = rd.remaining
	}
	start := rd.pos
	rd.b.copyOut(start, p[:n])
	if rd.torn(start) {
		return 0, rd.fail(ErrEvicted)
	}
	rd.pos += n
	rd.remaining -= n
	if rd.remaining == 0 {
		rd.release()
	}
	return int(n), nil
}

func (rd *bringReader) ReadByte() (byte, error) {
	if rd.err != nil {
		return 0, rd.err
	}
	if rd.remaining == 0 {
		if err := rd.readHeader(); err != nil {
			return 0, err
		}
	}
	start := rd.pos
	c := rd.b.data[start&rd.b.mask]
	if rd.torn(start) {
		return 0, rd.fail(ErrEvicted)
	}
	rd.pos++
	rd.remaining--
	if rd.remaining == 0 {
		rd.release()
	}
	return c, nil
}
