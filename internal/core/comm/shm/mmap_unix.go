//go:build unix

package shm

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f shared and read-write.
func mapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func unmap(b []byte) error { return syscall.Munmap(b) }
