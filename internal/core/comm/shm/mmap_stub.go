//go:build !unix

package shm

import (
	"errors"
	"os"
)

var errUnsupported = errors.New("shm: shared-memory transport requires a unix platform")

func mapFile(f *os.File, size int) ([]byte, error) { return nil, errUnsupported }

func unmap(b []byte) error { return nil }
