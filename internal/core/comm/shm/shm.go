// Backend, Listener and Conn: the OS-facing half of the shm transport.
// The rendezvous runs over a unix-domain socket with a hand-rolled binary
// setup message — no gob below the backend seam, which erdos-vet's
// zerogob analyzer enforces — and the same socket then carries single
// wake bytes for the park/wake protocol and doubles as the liveness
// signal (EOF means the peer died).
package shm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/erdos-go/erdos/internal/core/comm"
)

const (
	// DefaultRingBytes is the per-direction ring capacity when the
	// Backend does not override it: large enough that a coalesced
	// 256 KB frame train is one record, small enough to stay cheap per
	// peer pair.
	DefaultRingBytes = 1 << 20

	// wakeDataByte/wakeSpaceByte are the park/wake signals: "I published
	// a record into my tx ring" and "I freed space in my rx ring".
	wakeDataByte  = 'd'
	wakeSpaceByte = 's'

	// rendezvousTimeout bounds the setup exchange so a stalled or
	// hostile dialer cannot wedge the accept loop.
	rendezvousTimeout = 2 * time.Second

	// parkPoll is the blocked sides' safety re-check period: wakes are
	// delivered over the socket, and the poll guarantees progress even
	// if a wake byte is lost to a close race.
	parkPoll = 2 * time.Millisecond
)

// Backend is a comm.Backend whose connections are shared-memory ring
// pairs, for peers on the same host. The zero value is ready to use.
type Backend struct {
	// Dir is where ring files and rendezvous sockets are created;
	// empty means os.TempDir().
	Dir string
	// RingBytes is the per-direction ring capacity (power of two,
	// >= 4 KB); 0 means DefaultRingBytes.
	RingBytes int
}

// New returns a Backend with default sizing.
func New() *Backend { return &Backend{} }

// Scheme implements comm.Backend.
func (*Backend) Scheme() string { return "shm" }

func (b *Backend) dir() string {
	if b.Dir != "" {
		return b.Dir
	}
	return os.TempDir()
}

func (b *Backend) ringBytes() (uint64, error) {
	n := uint64(DefaultRingBytes)
	if b.RingBytes != 0 {
		n = uint64(b.RingBytes)
	}
	if n < minRingBytes || n > maxRingBytes || n&(n-1) != 0 {
		return 0, fmt.Errorf("shm: ring capacity %d is not a power of two in [%d, %d]",
			n, minRingBytes, maxRingBytes)
	}
	return n, nil
}

// sockSeq disambiguates auto-generated rendezvous socket paths within a
// process.
var sockSeq atomic.Uint64

// Listen implements comm.Backend. addr is the rendezvous socket path;
// empty picks a fresh path under Dir.
func (b *Backend) Listen(addr string) (comm.Listener, error) {
	if _, err := b.ringBytes(); err != nil {
		return nil, err
	}
	if addr != "" {
		ln, err := net.Listen("unix", addr)
		if err != nil {
			return nil, err
		}
		return &listener{b: b, ln: ln, path: addr}, nil
	}
	for i := 0; i < 100; i++ {
		path := filepath.Join(b.dir(),
			fmt.Sprintf("erdos-shm-%d-%d.sock", os.Getpid(), sockSeq.Add(1)))
		ln, err := net.Listen("unix", path)
		if err == nil {
			return &listener{b: b, ln: ln, path: path}, nil
		}
	}
	return nil, errors.New("shm: could not find a free rendezvous socket path")
}

type listener struct {
	b    *Backend
	ln   net.Listener
	path string
}

func (l *listener) Addr() string { return l.path }
func (l *listener) Close() error { return l.ln.Close() }

// Accept implements comm.Listener: accept a rendezvous socket, read the
// dialer's setup message, map the ring pair it created, and acknowledge.
func (l *listener) Accept() (net.Conn, error) {
	sock, err := l.ln.Accept()
	if err != nil {
		return nil, err
	}
	c, err := l.accept(sock)
	if err != nil {
		sock.Close()
		return nil, fmt.Errorf("shm: accept rendezvous: %w", err)
	}
	return c, nil
}

func (l *listener) accept(sock net.Conn) (*Conn, error) {
	_ = sock.SetDeadline(time.Now().Add(rendezvousTimeout))
	var fixed [8 + 1 + 8]byte
	if _, err := io.ReadFull(sock, fixed[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(fixed[0:8]) != ringMagic {
		return nil, errors.New("bad magic")
	}
	if v := fixed[8]; v != RingVersion {
		return nil, fmt.Errorf("protocol version %d, want %d", v, RingVersion)
	}
	capacity := binary.LittleEndian.Uint64(fixed[9:17])
	if capacity < minRingBytes || capacity > maxRingBytes || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("bad ring capacity %d", capacity)
	}
	readPath := func() (string, error) {
		var lb [2]byte
		if _, err := io.ReadFull(sock, lb[:]); err != nil {
			return "", err
		}
		n := binary.LittleEndian.Uint16(lb[:])
		if n == 0 || n > 4096 {
			return "", fmt.Errorf("bad path length %d", n)
		}
		p := make([]byte, n)
		if _, err := io.ReadFull(sock, p); err != nil {
			return "", err
		}
		return string(p), nil
	}
	d2aPath, err := readPath()
	if err != nil {
		return nil, err
	}
	a2dPath, err := readPath()
	if err != nil {
		return nil, err
	}
	size := int(ringDataOff + capacity)
	d2a, err := mapRingFile(d2aPath, size)
	if err != nil {
		return nil, err
	}
	a2d, err := mapRingFile(a2dPath, size)
	if err != nil {
		unmap(d2a)
		return nil, err
	}
	rx, err := openRing(d2a)
	if err == nil {
		var tx *ring
		if tx, err = openRing(a2d); err == nil {
			if _, werr := sock.Write([]byte{1}); werr != nil {
				err = werr
			} else {
				_ = sock.SetDeadline(time.Time{})
				return newConn(sock, tx, rx, [][]byte{d2a, a2d}), nil
			}
		}
	}
	unmap(d2a)
	unmap(a2d)
	return nil, err
}

// mapRingFile opens and maps an existing ring file, verifying its size.
func mapRingFile(path string, size int) ([]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() != int64(size) {
		return nil, fmt.Errorf("ring file %s is %d bytes, want %d", path, st.Size(), size)
	}
	return mapFile(f, size)
}

// Dial implements comm.Backend: create the ring pair, rendezvous with
// the listener at the socket path addr, and return the connection. Any
// setup failure unwinds completely, so the caller can fall back to TCP.
func (b *Backend) Dial(addr string) (net.Conn, error) {
	capacity, err := b.ringBytes()
	if err != nil {
		return nil, err
	}
	sock, err := net.Dial("unix", addr)
	if err != nil {
		return nil, err
	}
	c, err := b.dial(sock, capacity)
	if err != nil {
		sock.Close()
		return nil, fmt.Errorf("shm: dial rendezvous %s: %w", addr, err)
	}
	return c, nil
}

func (b *Backend) dial(sock net.Conn, capacity uint64) (*Conn, error) {
	_ = sock.SetDeadline(time.Now().Add(rendezvousTimeout))
	size := int(ringDataOff + capacity)
	createRing := func() (string, []byte, *ring, error) {
		f, err := os.CreateTemp(b.dir(), "erdos-ring-*")
		if err != nil {
			return "", nil, nil, err
		}
		path := f.Name()
		if err := f.Truncate(int64(size)); err != nil {
			f.Close()
			os.Remove(path)
			return "", nil, nil, err
		}
		mem, err := mapFile(f, size)
		f.Close()
		if err != nil {
			os.Remove(path)
			return "", nil, nil, err
		}
		r, err := initRing(mem, capacity)
		if err != nil {
			unmap(mem)
			os.Remove(path)
			return "", nil, nil, err
		}
		return path, mem, r, nil
	}
	d2aPath, d2aMem, tx, err := createRing()
	if err != nil {
		return nil, err
	}
	a2dPath, a2dMem, rx, err := createRing()
	if err != nil {
		unmap(d2aMem)
		os.Remove(d2aPath)
		return nil, err
	}
	fail := func(err error) (*Conn, error) {
		unmap(d2aMem)
		unmap(a2dMem)
		os.Remove(d2aPath)
		os.Remove(a2dPath)
		return nil, err
	}
	msg := make([]byte, 0, 8+1+8+2+len(d2aPath)+2+len(a2dPath))
	msg = binary.LittleEndian.AppendUint64(msg, ringMagic)
	msg = append(msg, RingVersion)
	msg = binary.LittleEndian.AppendUint64(msg, capacity)
	msg = binary.LittleEndian.AppendUint16(msg, uint16(len(d2aPath)))
	msg = append(msg, d2aPath...)
	msg = binary.LittleEndian.AppendUint16(msg, uint16(len(a2dPath)))
	msg = append(msg, a2dPath...)
	if _, err := sock.Write(msg); err != nil {
		return fail(err)
	}
	var ack [1]byte
	if _, err := io.ReadFull(sock, ack[:]); err != nil {
		return fail(err)
	}
	if ack[0] != 1 {
		return fail(fmt.Errorf("rendezvous refused (status %d)", ack[0]))
	}
	// The acceptor has both files mapped; unlink them so the rings live
	// exactly as long as the mappings.
	os.Remove(d2aPath)
	os.Remove(a2dPath)
	_ = sock.SetDeadline(time.Time{})
	return newConn(sock, tx, rx, [][]byte{d2aMem, a2dMem}), nil
}

// Addr is the net.Addr of a shm connection: the rendezvous socket path.
type Addr struct{ Path string }

func (a Addr) Network() string { return "shm" }
func (a Addr) String() string  { return a.Path }

// Conn is one shared-memory connection: a tx ring this side produces
// into, an rx ring it consumes from, and the rendezvous socket carrying
// wakes and liveness. It implements net.Conn (so comm's ConnHook fault
// wrappers apply unchanged) and comm.BufferedConn (so unwrapped
// connections encode frames straight into the ring, skipping the bufio
// copy).
type Conn struct {
	sock net.Conn
	tx   *ring
	rx   *ring
	w    *ringWriter
	rd   *ringReader

	dataWake  chan struct{}
	spaceWake chan struct{}
	dead      chan struct{}
	deadOnce  sync.Once
	closeOnce sync.Once
	closeErr  error
	// loopWG tracks sockLoop so Close can wait for it: closing the socket
	// fails the loop's blocking Read, and waiting here guarantees no
	// goroutine survives the connection.
	loopWG sync.WaitGroup

	maps [][]byte
}

func newConn(sock net.Conn, tx, rx *ring, maps [][]byte) *Conn {
	c := &Conn{
		sock:      sock,
		tx:        tx,
		rx:        rx,
		dataWake:  make(chan struct{}, 1),
		spaceWake: make(chan struct{}, 1),
		dead:      make(chan struct{}),
		maps:      maps,
	}
	c.w = newRingWriter(tx)
	c.w.waitSpace = c.waitSpace
	c.w.wakeData = c.sendWake(wakeDataByte)
	c.rd = newRingReader(rx)
	c.rd.waitData = c.waitData
	c.rd.wakeSpace = c.sendWake(wakeSpaceByte)
	c.loopWG.Add(1)
	go c.sockLoop()
	// The mappings outlive Close on purpose: a reader blocked in the
	// ring must never touch unmapped memory, so the pages are released
	// when the Conn itself is collected.
	runtime.SetFinalizer(c, (*Conn).unmapAll)
	return c
}

func (c *Conn) unmapAll() {
	for _, m := range c.maps {
		unmap(m)
	}
	c.maps = nil
}

// sockLoop drains wake bytes, forwarding each to the matching waiter
// channel, and flags the connection dead on socket EOF or error.
func (c *Conn) sockLoop() {
	defer c.loopWG.Done()
	buf := make([]byte, 64)
	for {
		n, err := c.sock.Read(buf)
		for _, b := range buf[:n] {
			switch b {
			case wakeDataByte:
				select {
				case c.dataWake <- struct{}{}:
				default:
				}
			case wakeSpaceByte:
				select {
				case c.spaceWake <- struct{}{}:
				default:
				}
			}
		}
		if err != nil {
			c.markDead()
			return
		}
	}
}

func (c *Conn) markDead() {
	c.deadOnce.Do(func() { close(c.dead) })
}

// sendWake returns a func that writes one wake byte to the peer. Wakes
// are only sent when the peer's park flag was observed set, so the
// socket never backs up.
func (c *Conn) sendWake(b byte) func() {
	buf := []byte{b}
	return func() {
		_, _ = c.sock.Write(buf)
	}
}

// waitData blocks until the rx ring has a published record past pos:
// bounded spin (scheduler yields, so a same-CPU peer can run), then park
// on the wake channel with the flag-recheck protocol that closes the
// lost-wake race, with a safety poll underneath.
func (c *Conn) waitData(pos uint64) error {
	rx := c.rx
	for i := 0; i < spinYields; i++ {
		if rx.tail.Load() > pos {
			return nil
		}
		runtime.Gosched()
	}
	timer := time.NewTimer(parkPoll)
	defer timer.Stop()
	for {
		rx.rdPark.Store(1)
		if rx.tail.Load() > pos {
			rx.rdPark.Store(0)
			return nil
		}
		if rx.closed.Load() != 0 {
			return io.EOF
		}
		select {
		case <-c.dead:
			if rx.tail.Load() > pos {
				return nil
			}
			return io.EOF
		default:
		}
		select {
		case <-c.dataWake:
		case <-c.dead:
		case <-timer.C:
			timer.Reset(parkPoll)
		}
	}
}

// waitSpace blocks until the tx ring's head reaches minHead (the
// consumer freed enough space); same spin-then-park structure as
// waitData.
func (c *Conn) waitSpace(minHead uint64) error {
	tx := c.tx
	for i := 0; i < spinYields; i++ {
		if tx.head.Load() >= minHead {
			return nil
		}
		runtime.Gosched()
	}
	timer := time.NewTimer(parkPoll)
	defer timer.Stop()
	for {
		tx.wrPark.Store(1)
		if tx.head.Load() >= minHead {
			tx.wrPark.Store(0)
			return nil
		}
		if tx.closed.Load() != 0 {
			return errRingClosed
		}
		select {
		case <-c.dead:
			return errRingClosed
		default:
		}
		select {
		case <-c.spaceWake:
		case <-c.dead:
		case <-timer.C:
			timer.Reset(parkPoll)
		}
	}
}

// FrameBuffers implements comm.BufferedConn: the transport's framing
// writes straight into the tx ring and reads straight from the rx ring.
func (c *Conn) FrameBuffers() (comm.FrameSink, comm.FrameSource) {
	return c.w, c.rd
}

// Read implements net.Conn for wrapped (fault-injected) connections;
// unwrapped transports use FrameBuffers instead.
func (c *Conn) Read(p []byte) (int, error) { return c.rd.Read(p) }

// Write implements net.Conn: each call stages and publishes one record,
// so a bufio flush above maps to one published train.
func (c *Conn) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if err == nil {
		err = c.w.Flush()
	}
	return n, err
}

// Close implements net.Conn: mark both rings closed (visible to the
// peer), close the rendezvous socket (EOF unblocks the peer's waiters),
// and unblock local waiters. Idempotent.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.tx.closed.Store(1)
		c.rx.closed.Store(1)
		c.markDead()
		c.closeErr = c.sock.Close()
		// The closed socket fails the loop's pending Read; reap it so a
		// closed Conn leaves nothing running.
		c.loopWG.Wait()
	})
	return c.closeErr
}

func (c *Conn) LocalAddr() net.Addr  { return Addr{Path: c.sock.LocalAddr().String()} }
func (c *Conn) RemoteAddr() net.Addr { return Addr{Path: c.sock.RemoteAddr().String()} }

// Deadlines are not supported on ring connections; the transport layers
// its own liveness on heartbeats.
func (c *Conn) SetDeadline(time.Time) error      { return nil }
func (c *Conn) SetReadDeadline(time.Time) error  { return nil }
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }
