package timestamp

import (
	"bytes"
	"testing"
)

// FuzzTimestampBinary drives ReadBinary over arbitrary byte streams: it must
// never panic, and any value it accepts must survive a canonical
// AppendBinary → ReadBinary round trip unchanged.
func FuzzTimestampBinary(f *testing.F) {
	f.Add(New(0).AppendBinary(nil))
	f.Add(New(42).WithCoordinates(1, 2, 3).AppendBinary(nil))
	f.Add(Top().AppendBinary(nil))
	// Non-canonical flags byte with extra bits set.
	f.Add([]byte{0xfe, 0x07, 0x00})
	// Coordinate count just above the decoder's allocation bound.
	f.Add([]byte{0x00, 0x01, 0x41})
	// Max-length uvarint logical time.
	f.Add([]byte{0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		enc := ts.AppendBinary(nil)
		got, err := ReadBinary(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("canonical re-encoding rejected: %v (ts=%v enc=%x)", err, ts, enc)
		}
		if !got.Equal(ts) {
			t.Fatalf("round trip mismatch: decoded %v, re-decoded %v", ts, got)
		}
		if ts.IsTop() != got.IsTop() {
			t.Fatalf("top flag lost in round trip: %v vs %v", ts, got)
		}
	})
}
