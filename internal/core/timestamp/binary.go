package timestamp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary encoding of a timestamp, used by the data plane's reflection-free
// fast path. The format is a flags byte (bit 0: Top) followed, for non-Top
// timestamps, by uvarint(L), uvarint(len(C)) and one uvarint per coordinate.
const (
	flagTop = 1 << 0

	// maxCoordinates bounds the coordinate vector accepted by ReadBinary so
	// a corrupt length prefix cannot drive a huge allocation. AV pipelines
	// use one or two coordinates (§5.3); 64 is far beyond any real use.
	maxCoordinates = 64
)

// ErrBadEncoding is returned by ReadBinary for malformed input.
var ErrBadEncoding = errors.New("timestamp: malformed binary encoding")

// AppendBinary appends t's compact binary encoding to dst and returns the
// extended slice. It never allocates beyond dst's growth.
func (t Timestamp) AppendBinary(dst []byte) []byte {
	if t.top {
		return append(dst, flagTop)
	}
	dst = append(dst, 0)
	dst = binary.AppendUvarint(dst, t.L)
	dst = binary.AppendUvarint(dst, uint64(len(t.C)))
	for _, c := range t.C {
		dst = binary.AppendUvarint(dst, c)
	}
	return dst
}

// ReadBinary decodes one timestamp from r, consuming exactly the bytes
// AppendBinary produced.
func ReadBinary(r io.ByteReader) (Timestamp, error) {
	flags, err := r.ReadByte()
	if err != nil {
		return Timestamp{}, err
	}
	if flags&flagTop != 0 {
		return Top(), nil
	}
	l, err := binary.ReadUvarint(r)
	if err != nil {
		return Timestamp{}, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return Timestamp{}, err
	}
	if n == 0 {
		return Timestamp{L: l}, nil
	}
	if n > maxCoordinates {
		return Timestamp{}, fmt.Errorf("%w: %d coordinates", ErrBadEncoding, n)
	}
	c := make([]uint64, n)
	for i := range c {
		if c[i], err = binary.ReadUvarint(r); err != nil {
			return Timestamp{}, err
		}
	}
	return Timestamp{L: l, C: c}, nil
}
