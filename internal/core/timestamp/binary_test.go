package timestamp

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	cases := []Timestamp{
		Bottom(),
		New(0),
		New(1),
		New(1 << 62),
		New(7, 3),
		New(7, 3, 0, 9),
		New(42, 0),
		Top(),
	}
	var buf []byte
	for _, ts := range cases {
		buf = ts.AppendBinary(buf)
	}
	r := bytes.NewReader(buf)
	for _, want := range cases {
		got, err := ReadBinary(r)
		if err != nil {
			t.Fatalf("ReadBinary(%v): %v", want, err)
		}
		if !got.Equal(want) || got.IsTop() != want.IsTop() {
			t.Fatalf("round trip = %v, want %v", got, want)
		}
	}
	if _, err := r.ReadByte(); err != io.EOF {
		t.Fatalf("trailing bytes after decoding all timestamps")
	}
}

func TestBinaryRoundTripPreservesCoordinates(t *testing.T) {
	ts := New(5, 1, 2, 3)
	got, err := ReadBinary(bytes.NewReader(ts.AppendBinary(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.C) != 3 || got.C[0] != 1 || got.C[1] != 2 || got.C[2] != 3 {
		t.Fatalf("coordinates = %v", got.C)
	}
}

func TestReadBinaryRejectsHugeCoordinateCount(t *testing.T) {
	// flags=0, L=0, len(C) = 1<<40: must fail without allocating.
	var buf []byte
	buf = append(buf, 0, 0)
	buf = appendUvarintForTest(buf, 1<<40)
	_, err := ReadBinary(bufio.NewReader(bytes.NewReader(buf)))
	if !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("err = %v, want ErrBadEncoding", err)
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	full := New(900, 4, 5).AppendBinary(nil)
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes decoded successfully", cut)
		}
	}
}

func appendUvarintForTest(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}
