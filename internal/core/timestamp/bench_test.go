package timestamp

import "testing"

func BenchmarkCmp(b *testing.B) {
	x, y := New(5, 1, 2), New(5, 1, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Cmp(y)
	}
}

func BenchmarkKey(b *testing.B) {
	x := New(5, 1, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Key()
	}
}
