// Package timestamp implements the extended timestamps used by the D3
// execution model: t = (l, ĉ) where l is a logical time derived from an
// ordered time domain (wall-clock time on a real vehicle, simulation time in
// a simulator) and ĉ is a vector of application-specific coordinates that
// convey, e.g., the accuracy of intermediate results produced by anytime
// algorithms or speculatively-executed model variants (§4.2, §5.3 of the
// paper).
//
// Timestamps are totally ordered: first by logical time, then
// lexicographically by the coordinate vector, with missing coordinates
// treated as zero. The distinguished Top timestamp orders after every other
// timestamp and is carried by the final watermark of a stream to signal that
// no further messages will ever be sent.
package timestamp

import (
	"fmt"
	"strings"
)

// Timestamp is an ERDOS timestamp t = (l, ĉ). The zero value is the minimum
// timestamp (l = 0, no coordinates).
type Timestamp struct {
	// L is the logical time. Sources derive it from their time domain:
	// wall-clock micros on a real AV, simulator ticks in simulation.
	L uint64
	// C is the application-specific coordinate vector ĉ. Higher values
	// signify higher-accuracy results for the same logical time; the
	// runtime prioritizes computation on inputs with higher ĉ (§5.3).
	C []uint64
	// top marks the distinguished maximum timestamp.
	top bool
}

// New returns a timestamp with logical time l and coordinates c.
func New(l uint64, c ...uint64) Timestamp {
	if len(c) == 0 {
		return Timestamp{L: l}
	}
	cc := make([]uint64, len(c))
	copy(cc, c)
	return Timestamp{L: l, C: cc}
}

// Top returns the distinguished maximum timestamp. A watermark carrying Top
// closes its stream: every possible timestamp is complete.
func Top() Timestamp { return Timestamp{top: true} }

// Bottom returns the minimum timestamp (logical time zero, no coordinates).
func Bottom() Timestamp { return Timestamp{} }

// IsTop reports whether t is the distinguished maximum timestamp.
func (t Timestamp) IsTop() bool { return t.top }

// Coordinate returns the i-th coordinate of ĉ, treating missing trailing
// coordinates as zero.
func (t Timestamp) Coordinate(i int) uint64 {
	if i < len(t.C) {
		return t.C[i]
	}
	return 0
}

// Cmp compares t with u, returning -1 if t < u, 0 if t == u and +1 if t > u.
// Ordering is by (top, L, C) with C compared lexicographically and missing
// coordinates treated as zero, so New(3) == New(3, 0) and
// New(3, 1) > New(3).
func (t Timestamp) Cmp(u Timestamp) int {
	switch {
	case t.top && u.top:
		return 0
	case t.top:
		return 1
	case u.top:
		return -1
	}
	switch {
	case t.L < u.L:
		return -1
	case t.L > u.L:
		return 1
	}
	n := len(t.C)
	if len(u.C) > n {
		n = len(u.C)
	}
	for i := 0; i < n; i++ {
		a, b := t.Coordinate(i), u.Coordinate(i)
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
	}
	return 0
}

// Less reports whether t orders strictly before u.
func (t Timestamp) Less(u Timestamp) bool { return t.Cmp(u) < 0 }

// LessEq reports whether t orders before or equal to u.
func (t Timestamp) LessEq(u Timestamp) bool { return t.Cmp(u) <= 0 }

// Equal reports whether t and u denote the same point in time. Timestamps
// that differ only in trailing zero coordinates are equal.
func (t Timestamp) Equal(u Timestamp) bool { return t.Cmp(u) == 0 }

// Succ returns the immediate successor of t in the logical-time dimension,
// dropping coordinates: the earliest timestamp of the next logical time.
func (t Timestamp) Succ() Timestamp {
	if t.top {
		return t
	}
	return Timestamp{L: t.L + 1}
}

// WithCoordinates returns a copy of t with ĉ replaced by c. It is used by
// anytime algorithms and speculative execution to annotate refined results
// for the same logical time (§5.3).
func (t Timestamp) WithCoordinates(c ...uint64) Timestamp {
	if t.top {
		return t
	}
	return New(t.L, c...)
}

// Min returns the smaller of t and u.
func Min(t, u Timestamp) Timestamp {
	if t.Cmp(u) <= 0 {
		return t
	}
	return u
}

// Max returns the larger of t and u.
func Max(t, u Timestamp) Timestamp {
	if t.Cmp(u) >= 0 {
		return t
	}
	return u
}

// String renders the timestamp as "T[l|c1,c2]", "T[l]" or "T[top]".
func (t Timestamp) String() string {
	if t.top {
		return "T[top]"
	}
	if len(t.C) == 0 {
		return fmt.Sprintf("T[%d]", t.L)
	}
	parts := make([]string, len(t.C))
	for i, c := range t.C {
		parts[i] = fmt.Sprint(c)
	}
	return fmt.Sprintf("T[%d|%s]", t.L, strings.Join(parts, ","))
}

// Key returns a comparable value usable as a map key. Timestamps that are
// Equal produce identical keys (trailing zero coordinates are dropped).
func (t Timestamp) Key() Key {
	if t.top {
		return Key{top: true}
	}
	// Drop trailing zero coordinates so equal timestamps share a key.
	c := t.C
	for len(c) > 0 && c[len(c)-1] == 0 {
		c = c[:len(c)-1]
	}
	k := Key{l: t.L, n: len(c)}
	if len(c) > len(k.c) {
		// Coordinate vectors longer than the inline array fall back to a
		// string encoding; this is rare in practice (AV pipelines use one
		// or two coordinates).
		k.overflow = fmt.Sprint(c)
		k.n = -1
		return k
	}
	copy(k.c[:], c)
	return k
}

// Key is a comparable encoding of a Timestamp, suitable for use as a map key.
type Key struct {
	l        uint64
	c        [4]uint64
	n        int
	top      bool
	overflow string
}
