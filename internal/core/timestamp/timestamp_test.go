package timestamp

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestOrderingBasics(t *testing.T) {
	cases := []struct {
		a, b Timestamp
		want int
	}{
		{New(0), New(0), 0},
		{New(0), New(1), -1},
		{New(2), New(1), 1},
		{New(3), New(3, 0), 0},
		{New(3, 1), New(3), 1},
		{New(3), New(3, 0, 1), -1},
		{New(3, 1, 2), New(3, 1, 2), 0},
		{New(3, 1, 2), New(3, 1, 3), -1},
		{New(3, 2), New(3, 1, 9), 1},
		{Top(), Top(), 0},
		{Top(), New(1 << 60), 1},
		{New(0), Top(), -1},
		{Bottom(), New(0), 0},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Cmp(c.a); got != -c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestLessEqualHelpers(t *testing.T) {
	a, b := New(1, 2), New(1, 3)
	if !a.Less(b) || b.Less(a) {
		t.Fatalf("Less(%v, %v) inconsistent", a, b)
	}
	if !a.LessEq(a) || !a.LessEq(b) {
		t.Fatalf("LessEq broken for %v, %v", a, b)
	}
	if !a.Equal(New(1, 2, 0)) {
		t.Fatalf("Equal should ignore trailing zero coordinates")
	}
	if !Min(a, b).Equal(a) || !Max(a, b).Equal(b) {
		t.Fatalf("Min/Max broken")
	}
}

func TestSucc(t *testing.T) {
	if got := New(4, 7).Succ(); !got.Equal(New(5)) {
		t.Fatalf("Succ(New(4,7)) = %v, want T[5]", got)
	}
	if got := Top().Succ(); !got.IsTop() {
		t.Fatalf("Succ(Top) must remain Top, got %v", got)
	}
	a := New(4, 7)
	if !a.Less(a.Succ()) {
		t.Fatalf("t must be < t.Succ()")
	}
}

func TestWithCoordinates(t *testing.T) {
	a := New(9)
	b := a.WithCoordinates(3, 1)
	if b.L != 9 || b.Coordinate(0) != 3 || b.Coordinate(1) != 1 {
		t.Fatalf("WithCoordinates produced %v", b)
	}
	if !a.Less(b) {
		t.Fatalf("higher-accuracy coordinates must order after the base timestamp")
	}
	if got := Top().WithCoordinates(1); !got.IsTop() {
		t.Fatalf("Top().WithCoordinates must remain Top")
	}
}

func TestCoordinateOutOfRange(t *testing.T) {
	a := New(1, 5)
	if a.Coordinate(0) != 5 || a.Coordinate(1) != 0 || a.Coordinate(100) != 0 {
		t.Fatalf("Coordinate out-of-range must be zero")
	}
}

func TestString(t *testing.T) {
	if s := New(3).String(); s != "T[3]" {
		t.Fatalf("String = %q", s)
	}
	if s := New(3, 1, 2).String(); s != "T[3|1,2]" {
		t.Fatalf("String = %q", s)
	}
	if s := Top().String(); s != "T[top]" {
		t.Fatalf("String = %q", s)
	}
}

func TestKeyEquality(t *testing.T) {
	if New(3).Key() != New(3, 0, 0).Key() {
		t.Fatalf("equal timestamps must share a key")
	}
	if New(3, 1).Key() == New(3).Key() {
		t.Fatalf("distinct timestamps must not share a key")
	}
	if Top().Key() == New(0).Key() {
		t.Fatalf("Top key must be distinct")
	}
	long := New(1, 1, 2, 3, 4, 5)
	if long.Key() != New(1, 1, 2, 3, 4, 5).Key() {
		t.Fatalf("overflow keys must be stable")
	}
	if long.Key() == New(1, 1, 2, 3, 4, 6).Key() {
		t.Fatalf("overflow keys must distinguish coordinates")
	}
}

func TestNewCopiesCoordinates(t *testing.T) {
	c := []uint64{1, 2}
	ts := New(0, c...)
	c[0] = 99
	if ts.Coordinate(0) != 1 {
		t.Fatalf("New must copy the coordinate slice")
	}
}

func randTS(r *rand.Rand) Timestamp {
	if r.Intn(20) == 0 {
		return Top()
	}
	n := r.Intn(4)
	c := make([]uint64, n)
	for i := range c {
		c[i] = uint64(r.Intn(3))
	}
	return New(uint64(r.Intn(5)), c...)
}

// Property: Cmp is a total order — antisymmetric, transitive, reflexive.
func TestQuickTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		a, b, c := randTS(r), randTS(r), randTS(r)
		if a.Cmp(a) != 0 {
			t.Fatalf("not reflexive: %v", a)
		}
		if a.Cmp(b) != -b.Cmp(a) {
			t.Fatalf("not antisymmetric: %v vs %v", a, b)
		}
		if a.Cmp(b) <= 0 && b.Cmp(c) <= 0 && a.Cmp(c) > 0 {
			t.Fatalf("not transitive: %v <= %v <= %v but a > c", a, b, c)
		}
	}
}

// Property: Equal timestamps have equal Keys and Cmp-sorting is stable
// under duplicate insertion.
func TestQuickKeyConsistentWithEqual(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		a, b := randTS(r), randTS(r)
		if a.Equal(b) != (a.Key() == b.Key()) {
			t.Fatalf("Key/Equal mismatch: %v vs %v", a, b)
		}
	}
}

// Property: sorting by Less yields a monotone sequence.
func TestQuickSortMonotone(t *testing.T) {
	f := func(ls []uint64) bool {
		ts := make([]Timestamp, len(ls))
		for i, l := range ls {
			ts[i] = New(l % 100)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
		for i := 1; i < len(ts); i++ {
			if ts[i].Less(ts[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Succ is strictly increasing for non-Top timestamps.
func TestQuickSuccIncreasing(t *testing.T) {
	f := func(l uint64, c []uint64) bool {
		if l == ^uint64(0) {
			l-- // avoid overflow wrap in the property itself
		}
		ts := New(l, c...)
		return ts.Less(ts.Succ())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
