package deadline

import (
	"container/heap"
	"sync"
	"time"
)

// Monitor maintains the priority queue of armed deadlines ordered by their
// absolute expiry (§6.3) and fires handlers when deadlines expire. A single
// clock timer is kept for the earliest expiry; arming, satisfying and
// expiring are O(log n).
//
// Handlers fire on the clock's timer goroutine. The worker layer is
// responsible for any heavier orchestration (state views, output gating);
// keeping this path short is what gives ERDOS its fast handler invocation
// (Fig. 10 left).
type Monitor struct {
	clock Clock

	mu      sync.Mutex
	queue   armedHeap
	timer   TimerHandle
	stopped bool

	fired    uint64
	canceled uint64
}

// NewMonitor returns a Monitor driven by clock (use Real{} in production).
func NewMonitor(clock Clock) *Monitor {
	if clock == nil {
		clock = Real{}
	}
	return &Monitor{clock: clock}
}

// Armed is a handle to one armed deadline.
type Armed struct {
	mon      *Monitor
	expires  time.Time
	fire     func(expiredAt time.Time)
	idx      int
	resolved bool
}

// Arm schedules fire to run when the relative deadline d elapses, unless
// Satisfy is called first. It returns the handle and the absolute expiry.
func (m *Monitor) Arm(d time.Duration, fire func(expiredAt time.Time)) (*Armed, time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	abs := m.clock.Now().Add(d)
	a := &Armed{mon: m, expires: abs, fire: fire}
	if m.stopped {
		a.resolved = true
		return a, abs
	}
	heap.Push(&m.queue, a)
	m.resetTimerLocked()
	return a, abs
}

// Satisfy resolves the deadline before expiry (DEC satisfied), reporting
// whether it was still armed.
func (a *Armed) Satisfy() bool {
	m := a.mon
	m.mu.Lock()
	defer m.mu.Unlock()
	if a.resolved {
		return false
	}
	a.resolved = true
	heap.Remove(&m.queue, a.idx)
	m.canceled++
	m.resetTimerLocked()
	return true
}

// Expires returns the absolute expiry instant.
func (a *Armed) Expires() time.Time { return a.expires }

// Stop disarms every pending deadline and stops the monitor.
func (m *Monitor) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stopped = true
	for _, a := range m.queue {
		a.resolved = true
	}
	m.queue = m.queue[:0]
	if m.timer != nil {
		m.timer.Stop()
		m.timer = nil
	}
}

// Pending returns the number of armed, unresolved deadlines.
func (m *Monitor) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// Counters returns how many deadlines fired (missed) and how many were
// satisfied before expiry.
func (m *Monitor) Counters() (fired, satisfied uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fired, m.canceled
}

// resetTimerLocked re-targets the single timer at the earliest expiry.
func (m *Monitor) resetTimerLocked() {
	if m.timer != nil {
		m.timer.Stop()
		m.timer = nil
	}
	if m.stopped || len(m.queue) == 0 {
		return
	}
	d := m.queue[0].expires.Sub(m.clock.Now())
	if d < 0 {
		d = 0
	}
	m.timer = m.clock.AfterFunc(d, m.onTimer)
}

// onTimer fires every expired deadline and re-arms the timer.
func (m *Monitor) onTimer() {
	for {
		m.mu.Lock()
		if m.stopped || len(m.queue) == 0 {
			m.mu.Unlock()
			return
		}
		now := m.clock.Now()
		head := m.queue[0]
		if head.expires.After(now) {
			m.resetTimerLocked()
			m.mu.Unlock()
			return
		}
		heap.Pop(&m.queue)
		head.resolved = true
		m.fired++
		fire := head.fire
		m.mu.Unlock()
		if fire != nil {
			fire(now)
		}
	}
}

type armedHeap []*Armed

func (h armedHeap) Len() int           { return len(h) }
func (h armedHeap) Less(i, j int) bool { return h[i].expires.Before(h[j].expires) }
func (h armedHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx, h[j].idx = i, j }
func (h *armedHeap) Push(x any)        { a := x.(*Armed); a.idx = len(*h); *h = append(*h, a) }
func (h *armedHeap) Pop() any {
	old := *h
	n := len(old)
	a := old[n-1]
	old[n-1] = nil
	a.idx = -1
	*h = old[:n-1]
	return a
}
