package deadline

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

func ts(l uint64) timestamp.Timestamp { return timestamp.New(l) }

func TestConditions(t *testing.T) {
	if FirstMessage()(Stats{}) {
		t.Fatal("FirstMessage satisfied with no traffic")
	}
	if !FirstMessage()(Stats{Count: 1}) || !FirstMessage()(Stats{Watermark: true}) {
		t.Fatal("FirstMessage not satisfied by first message")
	}
	if WatermarkOnly()(Stats{Count: 5}) {
		t.Fatal("WatermarkOnly satisfied by data only")
	}
	if !WatermarkOnly()(Stats{Watermark: true}) {
		t.Fatal("WatermarkOnly not satisfied by watermark")
	}
	if MessageCount(2)(Stats{Count: 1}) || !MessageCount(2)(Stats{Count: 2}) {
		t.Fatal("MessageCount(2) broken")
	}
}

func TestStaticSource(t *testing.T) {
	s := Static(100 * time.Millisecond)
	if s.For(ts(0)) != 100*time.Millisecond || s.For(ts(99)) != 100*time.Millisecond {
		t.Fatal("Static must be constant")
	}
}

func TestDynamicSource(t *testing.T) {
	d := NewDynamic(50 * time.Millisecond)
	if d.For(ts(3)) != 50*time.Millisecond {
		t.Fatal("default must apply before updates")
	}
	d.Update(ts(10), 200*time.Millisecond)
	d.Update(ts(20), 100*time.Millisecond)
	cases := []struct {
		l    uint64
		want time.Duration
	}{
		{5, 200 * time.Millisecond}, // before first update: earliest decision applies
		{10, 200 * time.Millisecond},
		{15, 200 * time.Millisecond},
		{20, 100 * time.Millisecond},
		{99, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := d.For(ts(c.l)); got != c.want {
			t.Errorf("For(%d) = %v, want %v", c.l, got, c.want)
		}
	}
}

func TestDynamicOutOfOrderUpdates(t *testing.T) {
	d := NewDynamic(time.Millisecond)
	d.Update(ts(20), 20*time.Millisecond)
	d.Update(ts(10), 10*time.Millisecond)
	d.Update(ts(10), 11*time.Millisecond) // same-time update replaces
	if got := d.For(ts(15)); got != 11*time.Millisecond {
		t.Fatalf("For(15) = %v, want 11ms", got)
	}
	if got := d.For(ts(25)); got != 20*time.Millisecond {
		t.Fatalf("For(25) = %v, want 20ms", got)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

func TestManualClockAdvance(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	var fired []int
	c.AfterFunc(10*time.Millisecond, func() { fired = append(fired, 1) })
	c.AfterFunc(5*time.Millisecond, func() { fired = append(fired, 2) })
	h := c.AfterFunc(7*time.Millisecond, func() { fired = append(fired, 3) })
	if !h.Stop() {
		t.Fatal("Stop on pending timer must return true")
	}
	if h.Stop() {
		t.Fatal("second Stop must return false")
	}
	c.Advance(6 * time.Millisecond)
	if len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("fired = %v after 6ms", fired)
	}
	c.Advance(10 * time.Millisecond)
	if len(fired) != 2 || fired[1] != 1 {
		t.Fatalf("fired = %v after 16ms", fired)
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d", c.Pending())
	}
}

func TestMonitorFiresOnExpiry(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	m := NewMonitor(c)
	defer m.Stop()
	var fired atomic.Int32
	m.Arm(10*time.Millisecond, func(time.Time) { fired.Add(1) })
	c.Advance(9 * time.Millisecond)
	if fired.Load() != 0 {
		t.Fatal("fired early")
	}
	c.Advance(2 * time.Millisecond)
	if fired.Load() != 1 {
		t.Fatal("did not fire at expiry")
	}
	f, s := m.Counters()
	if f != 1 || s != 0 {
		t.Fatalf("Counters = (%d, %d)", f, s)
	}
}

func TestMonitorSatisfyCancels(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	m := NewMonitor(c)
	defer m.Stop()
	var fired atomic.Int32
	a, _ := m.Arm(10*time.Millisecond, func(time.Time) { fired.Add(1) })
	if !a.Satisfy() {
		t.Fatal("Satisfy must report true for an armed deadline")
	}
	if a.Satisfy() {
		t.Fatal("second Satisfy must report false")
	}
	c.Advance(20 * time.Millisecond)
	if fired.Load() != 0 {
		t.Fatal("satisfied deadline fired")
	}
	f, s := m.Counters()
	if f != 0 || s != 1 {
		t.Fatalf("Counters = (%d, %d)", f, s)
	}
}

func TestMonitorOrdering(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	m := NewMonitor(c)
	defer m.Stop()
	var mu sync.Mutex
	var order []int
	add := func(i int, d time.Duration) {
		m.Arm(d, func(time.Time) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	add(3, 30*time.Millisecond)
	add(1, 10*time.Millisecond)
	add(2, 20*time.Millisecond)
	c.Advance(40 * time.Millisecond)
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", order, want)
		}
	}
}

func TestMonitorEarliestRetarget(t *testing.T) {
	// Arming a deadline earlier than the current head must re-target the
	// timer so it still fires on time.
	c := NewManual(time.Unix(0, 0))
	m := NewMonitor(c)
	defer m.Stop()
	var fired atomic.Int32
	m.Arm(50*time.Millisecond, func(time.Time) { fired.Add(1) })
	m.Arm(5*time.Millisecond, func(time.Time) { fired.Add(1) })
	c.Advance(6 * time.Millisecond)
	if fired.Load() != 1 {
		t.Fatalf("early deadline did not fire: %d", fired.Load())
	}
}

func TestMonitorStopDisarmsAll(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	m := NewMonitor(c)
	var fired atomic.Int32
	for i := 0; i < 5; i++ {
		m.Arm(time.Millisecond, func(time.Time) { fired.Add(1) })
	}
	m.Stop()
	c.Advance(time.Second)
	if fired.Load() != 0 {
		t.Fatalf("%d deadlines fired after Stop", fired.Load())
	}
	if m.Pending() != 0 {
		t.Fatalf("Pending = %d after Stop", m.Pending())
	}
}

func TestMonitorRealClockSmoke(t *testing.T) {
	m := NewMonitor(Real{})
	defer m.Stop()
	ch := make(chan time.Time, 1)
	m.Arm(2*time.Millisecond, func(at time.Time) { ch <- at })
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("real-clock deadline never fired")
	}
}

// --- TimestampTracker ---

func TestTimestampTrackerDefaultLifecycle(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	m := NewMonitor(c)
	defer m.Stop()
	var misses []Miss
	var mu sync.Mutex
	tr := NewTimestampTracker(m, Static(10*time.Millisecond), Abort, func(ms Miss) {
		mu.Lock()
		misses = append(misses, ms)
		mu.Unlock()
	})
	// First message arms (default DSC).
	tr.ObserveReceive(ts(1), false)
	if m.Pending() != 1 {
		t.Fatalf("Pending = %d after DSC", m.Pending())
	}
	// More messages for the same time do not re-arm.
	tr.ObserveReceive(ts(1), false)
	tr.ObserveReceive(ts(1), true)
	if m.Pending() != 1 {
		t.Fatalf("Pending = %d after duplicate receipts", m.Pending())
	}
	// Sending the watermark satisfies (default DEC).
	tr.ObserveSend(ts(1), true)
	if m.Pending() != 0 {
		t.Fatalf("Pending = %d after DEC", m.Pending())
	}
	c.Advance(time.Second)
	if len(misses) != 0 {
		t.Fatalf("misses = %v, want none", misses)
	}
}

func TestTimestampTrackerMiss(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	m := NewMonitor(c)
	defer m.Stop()
	var got Miss
	var fired atomic.Int32
	tr := NewTimestampTracker(m, Static(10*time.Millisecond), Continue, func(ms Miss) {
		got = ms
		fired.Add(1)
	})
	tr.ObserveReceive(ts(7), false)
	c.Advance(11 * time.Millisecond)
	if fired.Load() != 1 {
		t.Fatal("deadline miss did not fire")
	}
	if got.Timestamp.L != 7 || got.Relative != 10*time.Millisecond || got.Policy != Continue {
		t.Fatalf("Miss = %+v", got)
	}
	if got.ExpiredAt.Sub(got.ArmedAt) != 10*time.Millisecond {
		t.Fatalf("ArmedAt/ExpiredAt inconsistent: %+v", got)
	}
	// Late completion after a miss must be a no-op.
	tr.ObserveSend(ts(7), true)
}

func TestTimestampTrackerWatermarkCoversEarlierTimes(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	m := NewMonitor(c)
	defer m.Stop()
	var fired atomic.Int32
	tr := NewTimestampTracker(m, Static(time.Second), Abort, func(Miss) { fired.Add(1) })
	tr.ObserveReceive(ts(1), false)
	tr.ObserveReceive(ts(2), false)
	tr.ObserveReceive(ts(3), false)
	if m.Pending() != 3 {
		t.Fatalf("Pending = %d", m.Pending())
	}
	// A watermark sent for t=3 completes times 1..3 (default DEC accepts
	// the first watermark with t' >= t).
	tr.ObserveSend(ts(3), true)
	if m.Pending() != 0 {
		t.Fatalf("Pending = %d after covering watermark", m.Pending())
	}
	c.Advance(2 * time.Second)
	if fired.Load() != 0 {
		t.Fatal("covered deadlines fired")
	}
}

func TestTimestampTrackerCustomConditions(t *testing.T) {
	// Lst. 1's Planner: DEC satisfied as soon as the first message for t is
	// sent (releasing a coarse plan), not only at the watermark.
	c := NewManual(time.Unix(0, 0))
	m := NewMonitor(c)
	defer m.Stop()
	var fired atomic.Int32
	tr := NewTimestampTracker(m, Static(10*time.Millisecond), Abort, func(Miss) { fired.Add(1) })
	tr.End = MessageCount(1)
	tr.ObserveReceive(ts(1), false)
	tr.ObserveSend(ts(1), false) // first data message satisfies custom DEC
	c.Advance(time.Second)
	if fired.Load() != 0 {
		t.Fatal("custom DEC did not satisfy the deadline")
	}

	// Custom DSC: arm only once 2 messages arrived.
	tr2 := NewTimestampTracker(m, Static(10*time.Millisecond), Abort, nil)
	tr2.Start = MessageCount(2)
	tr2.ObserveReceive(ts(5), false)
	if m.Pending() != 0 {
		t.Fatal("armed before custom DSC satisfied")
	}
	tr2.ObserveReceive(ts(5), false)
	if m.Pending() != 1 {
		t.Fatal("custom DSC did not arm")
	}
}

func TestTimestampTrackerDynamicValue(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	m := NewMonitor(c)
	defer m.Stop()
	var misses []Miss
	var mu sync.Mutex
	dyn := NewDynamic(100 * time.Millisecond)
	dyn.Update(ts(10), 5*time.Millisecond)
	tr := NewTimestampTracker(m, dyn, Abort, func(ms Miss) {
		mu.Lock()
		misses = append(misses, ms)
		mu.Unlock()
	})
	tr.ObserveReceive(ts(10), false)
	c.Advance(6 * time.Millisecond)
	mu.Lock()
	n := len(misses)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("dynamic 5ms deadline did not fire: %d misses", n)
	}
}

func TestTimestampTrackerGC(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	m := NewMonitor(c)
	defer m.Stop()
	tr := NewTimestampTracker(m, Static(time.Millisecond), Abort, nil)
	for l := uint64(0); l < 10; l++ {
		tr.ObserveReceive(ts(l), false)
		tr.ObserveSend(ts(l), true)
	}
	if tr.Tracked() != 10 {
		t.Fatalf("Tracked = %d", tr.Tracked())
	}
	tr.GCBelow(8)
	if tr.Tracked() != 2 {
		t.Fatalf("Tracked after GC = %d", tr.Tracked())
	}
}

// --- FrequencyTracker ---

func TestFrequencyTrackerGapFires(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	m := NewMonitor(c)
	defer m.Stop()
	var gaps []timestamp.Timestamp
	var mu sync.Mutex
	fr := NewFrequencyTracker(m, Static(30*time.Millisecond), func(last timestamp.Timestamp, _ Miss) {
		mu.Lock()
		gaps = append(gaps, last)
		mu.Unlock()
	})
	fr.ObserveWatermark(ts(1))
	c.Advance(29 * time.Millisecond)
	mu.Lock()
	n := len(gaps)
	mu.Unlock()
	if n != 0 {
		t.Fatal("gap fired early")
	}
	c.Advance(2 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if len(gaps) != 1 || gaps[0].L != 1 {
		t.Fatalf("gaps = %v", gaps)
	}
}

func TestFrequencyTrackerTimelyWatermarkSatisfies(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	m := NewMonitor(c)
	defer m.Stop()
	var fired atomic.Int32
	fr := NewFrequencyTracker(m, Static(30*time.Millisecond), func(timestamp.Timestamp, Miss) { fired.Add(1) })
	fr.ObserveWatermark(ts(1))
	c.Advance(20 * time.Millisecond)
	fr.ObserveWatermark(ts(2)) // in time: re-arms for the next gap
	c.Advance(20 * time.Millisecond)
	fr.ObserveWatermark(ts(3))
	fr.Cancel()
	c.Advance(time.Second)
	if fired.Load() != 0 {
		t.Fatalf("timely watermarks still missed %d gaps", fired.Load())
	}
}

func TestFrequencyTrackerReArmsAfterInsertedWatermark(t *testing.T) {
	// After a gap fires, the runtime inserts a watermark, which flows back
	// into ObserveWatermark and re-arms the tracker — so a silent stream
	// produces one gap per period.
	c := NewManual(time.Unix(0, 0))
	m := NewMonitor(c)
	defer m.Stop()
	var mu sync.Mutex
	count := 0
	var fr *FrequencyTracker
	fr = NewFrequencyTracker(m, Static(10*time.Millisecond), func(last timestamp.Timestamp, _ Miss) {
		mu.Lock()
		count++
		mu.Unlock()
		fr.ObserveWatermark(last.Succ()) // runtime inserts W(t+1)
	})
	fr.ObserveWatermark(ts(0))
	c.Advance(35 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if count != 3 {
		t.Fatalf("silent stream produced %d gaps in 35ms with a 10ms period, want 3", count)
	}
}

func TestFrequencyTrackerTopStopsTracking(t *testing.T) {
	c := NewManual(time.Unix(0, 0))
	m := NewMonitor(c)
	defer m.Stop()
	var fired atomic.Int32
	fr := NewFrequencyTracker(m, Static(10*time.Millisecond), func(timestamp.Timestamp, Miss) { fired.Add(1) })
	fr.ObserveWatermark(ts(1))
	fr.ObserveWatermark(timestamp.Top())
	c.Advance(time.Second)
	if fired.Load() != 0 {
		t.Fatal("gap fired after the stream closed")
	}
}
