// Package deadline implements ERDOS' deadline specification and enforcement
// machinery (§5.1, §5.2 and §6.3 of the paper).
//
// Components register relative deadlines that bound the wall-clock time
// elapsed between two fine-grained execution events. Events are described by
// boolean conditions over per-timestamp message statistics:
//
//   - the deadline start condition (DSC) is evaluated at the receipt (or,
//     for output-side conditions, generation) of every message and arms an
//     absolute deadline when it first returns true for a logical time;
//   - the deadline end condition (DEC) disarms it.
//
// If the DEC is not satisfied before the absolute deadline expires, the
// deadline exception handler runs (§5.4). Armed deadlines are kept in a
// priority queue ordered by absolute expiry (§6.3); a single timer per
// Monitor tracks the earliest expiry.
//
// Two general abstractions from §5.1 are provided on top of the raw
// machinery: TimestampTracker (bounding an operator's execution time for a
// timestamp) and FrequencyTracker (bounding the inter-arrival gap of
// watermarks on an input stream, simulating missing input on expiry).
package deadline

import (
	"fmt"
	"sync"
	"time"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// Stats is the (n, w) tuple passed to deadline conditions (§5.1): the number
// of messages received or sent for a logical time, and whether the watermark
// for that logical time was received or sent.
type Stats struct {
	Count     int
	Watermark bool
}

// Condition is a deadline start or end condition over per-timestamp Stats.
type Condition func(Stats) bool

// FirstMessage returns a condition satisfied by the first message (data or
// watermark) for a timestamp — the default DSC of a timestamp deadline.
func FirstMessage() Condition {
	return func(s Stats) bool { return s.Count > 0 || s.Watermark }
}

// WatermarkOnly returns a condition satisfied once the watermark for the
// timestamp has been observed — the default DEC of a timestamp deadline.
func WatermarkOnly() Condition {
	return func(s Stats) bool { return s.Watermark }
}

// MessageCount returns a condition satisfied once at least k messages have
// been observed for the timestamp (e.g. Lst. 1's `sent_msg_cnt > 0` DEC with
// k = 1).
func MessageCount(k int) Condition {
	return func(s Stats) bool { return s.Count >= k }
}

// Policy selects how a deadline exception handler is orchestrated relative
// to the proactive strategy it interrupts (§5.4).
type Policy uint8

const (
	// Abort terminates the proactive strategy's effects for the timestamp:
	// its output is suppressed and its state mutations are discarded; the
	// handler amends the dirty state and releases output.
	Abort Policy = iota
	// Continue runs the handler in parallel with the proactive strategy:
	// the handler quickly releases output while the strategy keeps running
	// and commits its higher-accuracy state for future timestamps.
	Continue
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Abort:
		return "abort"
	case Continue:
		return "continue"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Miss describes one missed deadline, passed to exception handlers.
type Miss struct {
	// Timestamp is the logical time whose deadline expired.
	Timestamp timestamp.Timestamp
	// Relative is the relative deadline Di that was armed.
	Relative time.Duration
	// ArmedAt is the wall-clock instant the DSC was satisfied.
	ArmedAt time.Time
	// ExpiredAt is the wall-clock instant the deadline expired.
	ExpiredAt time.Time
	// Policy is the orchestration policy of the missed deadline.
	Policy Policy
}

// Source supplies the relative deadline value Di for a logical time. It
// abstracts §5.2's static and environment-dependent (pDP-driven) deadlines.
type Source interface {
	// For returns the relative deadline for timestamp t.
	For(t timestamp.Timestamp) time.Duration
}

// Static is a Source with a fixed relative deadline.
type Static time.Duration

// For implements Source.
func (s Static) For(timestamp.Timestamp) time.Duration { return time.Duration(s) }

// Dynamic is a Source fed by a deadline stream from the deadline policy pDP
// (§5.2). pDP sends the relative deadline Di in a message Mt followed by a
// watermark Wt' (t' >= t); Di applies to logical times from t onward until a
// later update. Lookups for a time with no update at or below it fall back
// to the most recent known value, and to Default before any update arrives.
type Dynamic struct {
	// Default applies before the first update from pDP arrives.
	Default time.Duration

	mu      sync.RWMutex
	updates []dynamicUpdate // ascending by logical time
}

type dynamicUpdate struct {
	from timestamp.Timestamp
	d    time.Duration
}

// NewDynamic returns a Dynamic source with the given default.
func NewDynamic(def time.Duration) *Dynamic { return &Dynamic{Default: def} }

// Update records the relative deadline d for logical times >= t. Updates
// may arrive slightly out of order (pDP runs as an operator subgraph); the
// source keeps them sorted.
func (dv *Dynamic) Update(t timestamp.Timestamp, d time.Duration) {
	dv.mu.Lock()
	defer dv.mu.Unlock()
	i := len(dv.updates)
	for i > 0 && t.Less(dv.updates[i-1].from) {
		i--
	}
	if i > 0 && dv.updates[i-1].from.Equal(t) {
		dv.updates[i-1].d = d
		return
	}
	dv.updates = append(dv.updates, dynamicUpdate{})
	copy(dv.updates[i+1:], dv.updates[i:])
	dv.updates[i] = dynamicUpdate{from: t, d: d}
}

// For implements Source: the update with the greatest time <= t wins; with
// none at or below t, the earliest known update (pDP's first decision) or
// the default applies.
func (dv *Dynamic) For(t timestamp.Timestamp) time.Duration {
	dv.mu.RLock()
	defer dv.mu.RUnlock()
	for i := len(dv.updates) - 1; i >= 0; i-- {
		if dv.updates[i].from.LessEq(t) {
			return dv.updates[i].d
		}
	}
	if len(dv.updates) > 0 {
		return dv.updates[0].d
	}
	return dv.Default
}

// Len returns the number of retained updates.
func (dv *Dynamic) Len() int {
	dv.mu.RLock()
	defer dv.mu.RUnlock()
	return len(dv.updates)
}
