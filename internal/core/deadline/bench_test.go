package deadline

import (
	"testing"
	"time"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// BenchmarkArmSatisfy measures the §6.3 deadline queue's per-deadline cost
// when the DEC is satisfied before expiry (the common case).
func BenchmarkArmSatisfy(b *testing.B) {
	m := NewMonitor(NewManual(time.Unix(0, 0)))
	defer m.Stop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, _ := m.Arm(time.Second, nil)
		a.Satisfy()
	}
}

// BenchmarkTrackerReceiveSend measures the timestamp tracker's per-message
// condition evaluation.
func BenchmarkTrackerReceiveSend(b *testing.B) {
	m := NewMonitor(NewManual(time.Unix(0, 0)))
	defer m.Stop()
	tr := NewTimestampTracker(m, Static(time.Second), Abort, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ts := timestamp.New(uint64(i + 1))
		tr.ObserveReceive(ts, false)
		tr.ObserveSend(ts, true)
		if i%128 == 0 {
			tr.GCBelow(uint64(i))
		}
	}
}

func BenchmarkDynamicSourceLookup(b *testing.B) {
	d := NewDynamic(time.Millisecond)
	for l := uint64(0); l < 64; l++ {
		d.Update(timestamp.New(l*10), time.Duration(l)*time.Millisecond)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = d.For(timestamp.New(315))
	}
}
