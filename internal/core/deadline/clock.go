package deadline

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts wall-clock time so deadline enforcement can be tested
// deterministically and driven by a simulated clock.
type Clock interface {
	Now() time.Time
	// AfterFunc runs f after d elapses, returning a handle that can stop
	// the invocation if it has not yet fired.
	AfterFunc(d time.Duration, f func()) TimerHandle
}

// TimerHandle controls a pending AfterFunc invocation.
type TimerHandle interface {
	// Stop cancels the invocation, reporting whether it was still pending.
	Stop() bool
}

// Real is the wall-clock Clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) TimerHandle {
	return time.AfterFunc(d, f)
}

// Manual is a hand-advanced Clock for deterministic tests and simulation.
// The zero value starts at the zero time; use NewManual to pick an epoch.
type Manual struct {
	mu     sync.Mutex
	now    time.Time
	timers manualTimerHeap
	seq    uint64
}

// NewManual returns a manual clock positioned at epoch.
func NewManual(epoch time.Time) *Manual {
	return &Manual{now: epoch}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// AfterFunc implements Clock. The callback runs synchronously inside
// Advance when its due time is reached.
func (m *Manual) AfterFunc(d time.Duration, f func()) TimerHandle {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	t := &manualTimer{clock: m, due: m.now.Add(d), f: f, seq: m.seq}
	heap.Push(&m.timers, t)
	return t
}

// Advance moves the clock forward by d, firing due timers in order.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	target := m.now.Add(d)
	for {
		if len(m.timers) == 0 || m.timers[0].due.After(target) {
			break
		}
		t := heap.Pop(&m.timers).(*manualTimer)
		if t.stopped {
			continue
		}
		m.now = t.due
		f := t.f
		t.fired = true
		m.mu.Unlock()
		f()
		m.mu.Lock()
	}
	m.now = target
	m.mu.Unlock()
}

// Pending returns the number of unfired, unstopped timers.
func (m *Manual) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, t := range m.timers {
		if !t.stopped && !t.fired {
			n++
		}
	}
	return n
}

type manualTimer struct {
	clock   *Manual
	due     time.Time
	f       func()
	seq     uint64
	idx     int
	stopped bool
	fired   bool
}

// Stop implements TimerHandle.
func (t *manualTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

type manualTimerHeap []*manualTimer

func (h manualTimerHeap) Len() int { return len(h) }
func (h manualTimerHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}
func (h manualTimerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i]; h[i].idx, h[j].idx = i, j }
func (h *manualTimerHeap) Push(x any) {
	t := x.(*manualTimer)
	t.idx = len(*h)
	*h = append(*h, t)
}
func (h *manualTimerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
