package deadline

import (
	"sync"
	"time"

	"github.com/erdos-go/erdos/internal/core/timestamp"
)

// TimestampTracker enforces §5.1's timestamp deadlines: it bounds the
// wall-clock time between a deadline start condition evaluated over the
// messages an operator *receives* for a logical time and a deadline end
// condition evaluated over the messages it *sends*.
//
// The defaults match the paper: DSC = receipt of the first message for t;
// DEC = generation of the first watermark for t' >= t.
type TimestampTracker struct {
	// Start is the DSC; nil means FirstMessage().
	Start Condition
	// End is the DEC; nil means WatermarkOnly().
	End Condition
	// Value supplies the relative deadline Di per timestamp.
	Value Source
	// Policy is carried into Miss for the handler orchestration layer.
	Policy Policy
	// OnMiss runs when a deadline expires before its DEC is satisfied.
	// It runs on the monitor's timer goroutine and must be fast.
	OnMiss func(Miss)

	mon *Monitor

	mu      sync.Mutex
	entries map[uint64]*ttEntry
}

type ttState uint8

const (
	ttIdle ttState = iota
	ttArmed
	ttDone
)

type ttEntry struct {
	ts      timestamp.Timestamp
	recv    Stats
	sent    Stats
	state   ttState
	armed   *Armed
	armedAt time.Time
	rel     time.Duration
}

// NewTimestampTracker returns a tracker registered on mon. Value must be
// non-nil.
func NewTimestampTracker(mon *Monitor, value Source, policy Policy, onMiss func(Miss)) *TimestampTracker {
	if value == nil {
		panic("deadline: nil value source")
	}
	return &TimestampTracker{
		Value:   value,
		Policy:  policy,
		OnMiss:  onMiss,
		mon:     mon,
		entries: make(map[uint64]*ttEntry),
	}
}

func (tr *TimestampTracker) start() Condition {
	if tr.Start != nil {
		return tr.Start
	}
	return FirstMessage()
}

func (tr *TimestampTracker) end() Condition {
	if tr.End != nil {
		return tr.End
	}
	return WatermarkOnly()
}

func (tr *TimestampTracker) entry(l uint64, ts timestamp.Timestamp) *ttEntry {
	e, ok := tr.entries[l]
	if !ok {
		e = &ttEntry{ts: ts}
		tr.entries[l] = e
	}
	return e
}

// ObserveReceive records the receipt of a message (isWatermark selects the
// kind) for timestamp t and arms the deadline if the DSC becomes satisfied.
func (tr *TimestampTracker) ObserveReceive(t timestamp.Timestamp, isWatermark bool) {
	tr.mu.Lock()
	e := tr.entry(t.L, t)
	if isWatermark {
		e.recv.Watermark = true
	} else {
		e.recv.Count++
	}
	if e.state != ttIdle || !tr.start()(e.recv) {
		tr.mu.Unlock()
		return
	}
	e.state = ttArmed
	e.rel = tr.Value.For(t)
	ets := e.ts
	rel := e.rel
	policy := tr.Policy
	armed, _ := tr.mon.Arm(rel, func(expiredAt time.Time) {
		tr.expire(ets, rel, policy, expiredAt)
	})
	e.armed = armed
	e.armedAt = armed.Expires().Add(-rel)
	tr.mu.Unlock()
}

// ObserveSend records the generation of a message for timestamp t and
// satisfies armed deadlines whose DEC becomes true. A generated watermark
// additionally completes every earlier armed logical time (the default DEC
// accepts the first watermark with t' >= t).
func (tr *TimestampTracker) ObserveSend(t timestamp.Timestamp, isWatermark bool) {
	tr.mu.Lock()
	e := tr.entry(t.L, t)
	if isWatermark {
		e.sent.Watermark = true
	} else {
		e.sent.Count++
	}
	end := tr.end()
	var satisfy []*Armed
	if e.state == ttArmed && end(e.sent) {
		e.state = ttDone
		satisfy = append(satisfy, e.armed)
	}
	if isWatermark {
		for l, o := range tr.entries {
			if l < t.L {
				o.sent.Watermark = true
				if o.state == ttArmed && end(o.sent) {
					o.state = ttDone
					satisfy = append(satisfy, o.armed)
				}
			}
		}
	}
	tr.mu.Unlock()
	for _, a := range satisfy {
		a.Satisfy()
	}
}

// expire marks the entry missed and invokes the handler.
func (tr *TimestampTracker) expire(t timestamp.Timestamp, rel time.Duration, policy Policy, expiredAt time.Time) {
	tr.mu.Lock()
	e, ok := tr.entries[t.L]
	if !ok || e.state != ttArmed {
		tr.mu.Unlock()
		return
	}
	e.state = ttDone
	armedAt := e.armedAt
	tr.mu.Unlock()
	if tr.OnMiss != nil {
		tr.OnMiss(Miss{
			Timestamp: t,
			Relative:  rel,
			ArmedAt:   armedAt,
			ExpiredAt: expiredAt,
			Policy:    policy,
		})
	}
}

// GCBelow discards tracking entries for logical times strictly below l.
func (tr *TimestampTracker) GCBelow(l uint64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for k, e := range tr.entries {
		if k < l && e.state != ttArmed {
			delete(tr.entries, k)
		}
	}
}

// Tracked returns the number of live tracking entries.
func (tr *TimestampTracker) Tracked() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.entries)
}

// FrequencyTracker enforces §5.1's frequency deadlines on one input stream:
// the maximum wall-clock gap between the receipt of the watermark for t and
// the receipt of the next watermark (t' > t). When the gap expires, OnGap
// runs; the runtime layer responds by inserting a watermark with a low
// accuracy coordinate on the stream, simulating the arrival of the missing
// input so the operator can eagerly execute with partial input (§5.3).
type FrequencyTracker struct {
	// Value supplies the maximum gap per timestamp.
	Value Source
	// OnGap runs when no watermark follows `last` within the gap. It runs
	// on the monitor's timer goroutine and must be fast.
	OnGap func(last timestamp.Timestamp, m Miss)

	mon *Monitor

	mu       sync.Mutex
	pending  *Armed
	last     timestamp.Timestamp
	haveLast bool
}

// NewFrequencyTracker returns a tracker registered on mon.
func NewFrequencyTracker(mon *Monitor, value Source, onGap func(timestamp.Timestamp, Miss)) *FrequencyTracker {
	if value == nil {
		panic("deadline: nil value source")
	}
	return &FrequencyTracker{Value: value, OnGap: onGap, mon: mon}
}

// ObserveWatermark records the receipt of the watermark for t: it satisfies
// the pending gap deadline (the DEC) and arms a new one starting at t (the
// DSC). Watermarks inserted by the runtime in response to OnGap flow back
// through this method, which naturally re-arms the tracker.
func (fr *FrequencyTracker) ObserveWatermark(t timestamp.Timestamp) {
	fr.mu.Lock()
	if fr.pending != nil {
		fr.pending.Satisfy()
		fr.pending = nil
	}
	if t.IsTop() {
		fr.haveLast = false
		fr.mu.Unlock()
		return
	}
	fr.last, fr.haveLast = t, true
	rel := fr.Value.For(t)
	armed, _ := fr.mon.Arm(rel, func(expiredAt time.Time) {
		fr.expire(t, rel, expiredAt)
	})
	fr.pending = armed
	fr.mu.Unlock()
}

// Cancel disarms any pending gap deadline (stream closing).
func (fr *FrequencyTracker) Cancel() {
	fr.mu.Lock()
	if fr.pending != nil {
		fr.pending.Satisfy()
		fr.pending = nil
	}
	fr.mu.Unlock()
}

func (fr *FrequencyTracker) expire(t timestamp.Timestamp, rel time.Duration, expiredAt time.Time) {
	fr.mu.Lock()
	if fr.pending == nil || !fr.haveLast || !fr.last.Equal(t) {
		fr.mu.Unlock()
		return
	}
	fr.pending = nil
	fr.mu.Unlock()
	if fr.OnGap != nil {
		fr.OnGap(t, Miss{
			Timestamp: t,
			Relative:  rel,
			ArmedAt:   expiredAt.Add(-rel),
			ExpiredAt: expiredAt,
		})
	}
}
